// Repository-level benchmarks: one per table and figure of the paper
// (the E1-E21 index in DESIGN.md), plus the ablation benches DESIGN.md
// calls out. Each benchmark re-derives its table/figure from a cached
// week-45 capture, so the timings measure the analysis stage, not world
// generation. Custom metrics (servers found, clusters formed) are
// attached via b.ReportMetric where the ablation is about coverage
// rather than speed.
package ixplens_test

import (
	"context"
	"runtime"
	"testing"

	"ixplens/internal/analysis"
	"ixplens/internal/core/blindspot"
	"ixplens/internal/core/cluster"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/hetero"
	"ixplens/internal/core/metadata"
	"ixplens/internal/core/visibility"
	"ixplens/internal/core/webserver"
	"ixplens/internal/entity"
	"ixplens/internal/experiments"
	"ixplens/internal/ispview"
	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/sflow"
	"ixplens/internal/traffic"
)

// fixture holds the shared benchmark world and week-45 artifacts.
type fixture struct {
	env    *pipeline.Env
	week   *pipeline.Week
	src    *dissect.SliceSource
	agg    *visibility.Aggregator
	runner *experiments.Runner
}

var fx *fixture

func setup(b *testing.B) *fixture {
	b.Helper()
	if fx != nil {
		fx.src.Reset()
		return fx
	}
	cfg := netmodel.Tiny()
	opts := traffic.DefaultOptions()
	runner, err := experiments.New(cfg, opts)
	if err != nil {
		b.Fatal(err)
	}
	week, agg, src, err := runner.Week45()
	if err != nil {
		b.Fatal(err)
	}
	fx = &fixture{env: runner.Env, week: week, src: src, agg: agg, runner: runner}
	return fx
}

// dissectPass runs the cascade over the cached capture.
func (f *fixture) dissectPass(b *testing.B, fn func(*dissect.Record)) dissect.Counts {
	b.Helper()
	f.src.Reset()
	cls := dissect.NewClassifier(f.env.Fabric)
	counts, err := dissect.Process(f.src, cls, fn)
	if err != nil {
		b.Fatal(err)
	}
	return counts
}

// --- E1: Fig. 1 ---

func BenchmarkFig1FilterCascade(b *testing.B) {
	f := setup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		counts := f.dissectPass(b, nil)
		if counts.PeeringShare() < 0.9 {
			b.Fatal("cascade broken")
		}
	}
}

// --- E2: §2.2.2 server identification ---

func BenchmarkServerIdentification(b *testing.B) {
	f := setup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ident := webserver.NewIdentifier()
		f.dissectPass(b, ident.Observe)
		res := ident.Identify(45, f.env.Crawler)
		if len(res.Servers) == 0 {
			b.Fatal("no servers identified")
		}
	}
	b.ReportMetric(float64(len(f.week.Servers.Servers)), "servers")
}

// --- streaming vs buffered capture→analysis ---
//
// The acceptance gate of the streaming refactor: per analyzed week, the
// streaming path must allocate at least 5× less than materializing the
// capture in a SliceSource first. Compare allocated bytes/op between
// the buffered and streaming sub-benchmarks.

func BenchmarkWeekCapture(b *testing.B) {
	f := setup(b)
	env := f.env
	b.Run("buffered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src, _, err := env.CaptureWeek(context.Background(), 45)
			if err != nil {
				b.Fatal(err)
			}
			counts, err := dissect.Process(src, dissect.NewClassifier(env.Fabric), nil)
			if err != nil {
				b.Fatal(err)
			}
			if counts.Total == 0 {
				b.Fatal("empty capture")
			}
		}
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			counts, _, _, err := env.StreamWeek(context.Background(), 45, nil)
			if err != nil {
				b.Fatal(err)
			}
			if counts.Total == 0 {
				b.Fatal("empty capture")
			}
		}
	})
}

func BenchmarkWeekIdentify(b *testing.B) {
	f := setup(b)
	env := f.env
	b.Run("buffered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src, _, err := env.CaptureWeek(context.Background(), 45)
			if err != nil {
				b.Fatal(err)
			}
			ident := webserver.NewIdentifier()
			if _, err := dissect.Process(src, dissect.NewClassifier(env.Fabric), ident.Observe); err != nil {
				b.Fatal(err)
			}
			if len(ident.Identify(45, env.Crawler).Servers) == 0 {
				b.Fatal("no servers identified")
			}
		}
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ident := webserver.NewIdentifier()
			if _, _, _, err := env.StreamWeek(context.Background(), 45, ident.Observe); err != nil {
				b.Fatal(err)
			}
			if len(ident.Identify(45, env.Crawler).Servers) == 0 {
				b.Fatal("no servers identified")
			}
		}
	})
}

// --- sharded vs serial observation (interned-entity refactor gate) ---
//
// Both sub-benchmarks drive the identical cached week-45 capture, so
// the comparison isolates decode+classify+observe: "serial" is the
// pre-refactor path (single classifier goroutine feeding one
// identifier in stream order), "sharded" fans batches over a worker
// pool where each worker feeds its own identifier shard, merged
// deterministically inside Identify. The golden-equivalence test pins
// both paths to bit-identical results.

func BenchmarkIdentifyWeekSharded(b *testing.B) {
	f := setup(b)
	env := f.env
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.src.Reset()
			ident := webserver.NewIdentifier()
			if _, err := dissect.Process(f.src, dissect.NewClassifier(env.Fabric), ident.Observe); err != nil {
				b.Fatal(err)
			}
			if len(ident.Identify(45, env.Crawler).Servers) == 0 {
				b.Fatal("no servers identified")
			}
		}
	})
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	b.Run("sharded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.src.Reset()
			ident := webserver.NewSharded(workers)
			if _, err := dissect.ProcessSharded(context.Background(), f.src, env.Fabric,
				workers, ident.ObserveShard, nil); err != nil {
				b.Fatal(err)
			}
			if len(ident.Identify(45, env.Crawler).Servers) == 0 {
				b.Fatal("no servers identified")
			}
		}
	})
}

// BenchmarkEntityResolve measures the interning layer itself: "cold"
// pays the full RIB trie walk + geo binary search + intern per address
// on a fresh table, "memoized" replays the same addresses against a
// warm table (the steady state every analysis stage after the first
// runs in).
func BenchmarkEntityResolve(b *testing.B) {
	f := setup(b)
	ips := make([]packet.IPv4Addr, 0, len(f.week.Servers.Servers))
	for ip := range f.week.Servers.Servers {
		ips = append(ips, ip)
	}
	if len(ips) == 0 {
		b.Fatal("no server IPs in fixture")
	}
	rib, gdb := f.env.World.RIB(), f.env.World.GeoDB()
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tab := entity.NewTable(rib, gdb)
			for _, ip := range ips {
				tab.Resolve(ip)
			}
		}
		b.ReportMetric(float64(len(ips)), "ips/op")
	})
	b.Run("memoized", func(b *testing.B) {
		b.ReportAllocs()
		tab := entity.NewTable(rib, gdb)
		for _, ip := range ips {
			tab.Resolve(ip)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, ip := range ips {
				tab.Resolve(ip)
			}
		}
		b.ReportMetric(float64(len(ips)), "ips/op")
	})
}

// --- fused analyzer registry vs sequential per-analysis passes ---
//
// The analyzer-registry refactor's acceptance benchmark: "sequential"
// replays the pre-registry shape — one full streamed pass (traffic
// generation, sFlow export, decode, classify) per analysis product:
// server identification, visibility aggregation, link-flow roll-up —
// while "fused" drives the same three products from the single
// AnalyzeWeek pass. Both sub-benchmarks cover all 17 study weeks per
// iteration, so the comparison measures exactly what the registry
// saves: the number of times each week's stream is produced and
// decoded. The golden-equivalence test (internal/pipeline/
// fused_test.go) pins the two paths to bit-identical products.

func BenchmarkAnalyzeWeeksFused(b *testing.B) {
	cfg := netmodel.Tiny()
	opts := traffic.Options{SamplesPerWeek: 10_000, SamplingRate: 16384, SnapLen: 128}
	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	first, last := env.World.Cfg.FirstWeek, env.World.Cfg.LastWeek()

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for wk := first; wk <= last; wk++ {
				res, _, _, err := env.IdentifyWeekSerial(ctx, wk)
				if err != nil {
					b.Fatal(err)
				}
				agg := visibility.NewAggregatorWith(env.EntityTable())
				if _, err := dissect.Process(env.Replay(wk), dissect.NewClassifier(env.Fabric), agg.Observe); err != nil {
					b.Fatal(err)
				}
				flows := make(map[analysis.FlowKey]*analysis.Flow)
				if _, err := dissect.Process(env.Replay(wk), dissect.NewClassifier(env.Fabric), func(rec *dissect.Record) {
					if !rec.Class.IsPeering() {
						return
					}
					k := analysis.FlowKey{Src: rec.SrcIP, Dst: rec.DstIP, In: rec.InMember, Out: rec.OutMember}
					f := flows[k]
					if f == nil {
						f = &analysis.Flow{FlowKey: k}
						flows[k] = f
					}
					f.Bytes += rec.Bytes
					f.Samples++
				}); err != nil {
					b.Fatal(err)
				}
				if len(res.Servers) == 0 || agg.NumObservedIPs() == 0 || len(flows) == 0 {
					b.Fatal("empty sequential products")
				}
			}
		}
	})
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for wk := first; wk <= last; wk++ {
				week, _, err := env.AnalyzeWeek(ctx, wk, nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(week.Servers.Servers) == 0 ||
					week.Visibility.ObservedIPs() == 0 || len(week.Links.Flows) == 0 {
					b.Fatal("empty fused products")
				}
			}
		}
	})
}

// --- E3: Fig. 2 ---

func BenchmarkFig2RankCurve(b *testing.B) {
	f := setup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		curve := visibility.RankCurve(f.week.Servers)
		if visibility.TopShare(curve, 34) <= 0 {
			b.Fatal("empty curve")
		}
	}
}

// --- E4: Table 1 ---

func BenchmarkTable1Summary(b *testing.B) {
	f := setup(b)
	filter := func(ip packet.IPv4Addr) bool {
		_, ok := f.week.Servers.Servers[ip]
		return ok
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		all := f.agg.Summarize(nil)
		srv := f.agg.Summarize(filter)
		if all.IPs == 0 || srv.IPs == 0 {
			b.Fatal("empty summary")
		}
	}
}

// --- E5: Fig. 3 ---

func BenchmarkFig3CountryShares(b *testing.B) {
	f := setup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(f.agg.CountryShares(nil)) == 0 {
			b.Fatal("no countries")
		}
	}
}

// --- E6: Table 2 ---

func BenchmarkTable2Top10(b *testing.B) {
	f := setup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		byIPs, byBytes := f.agg.TopCountries(10, nil)
		if len(byIPs) == 0 || len(byBytes) == 0 {
			b.Fatal("no rankings")
		}
		f.agg.TopASNs(10, nil)
	}
}

// --- E7: Table 3 ---

func BenchmarkTable3LocalGlobal(b *testing.B) {
	f := setup(b)
	w := f.env.World
	var members []uint32
	for i := range w.ASes {
		if w.ASes[i].IsMemberInWeek(45) {
			members = append(members, w.ASes[i].ASN)
		}
	}
	classes := w.ASGraph().Classify(members)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd := f.agg.LocalGlobal(classes, nil)
		if bd.IPs[0]+bd.IPs[1]+bd.IPs[2] == 0 {
			b.Fatal("empty breakdown")
		}
	}
}

// --- E8: §3.3 Alexa recovery + discovery ---

func BenchmarkBlindSpotAlexa(b *testing.B) {
	f := setup(b)
	list := f.env.AlexaList(45)
	observed := blindspot.ObservedDomains(f.week.Servers)
	ixpSet := make(map[packet.IPv4Addr]bool, len(f.week.Servers.Servers))
	for ip := range f.week.Servers.Servers {
		ixpSet[ip] = true
	}
	var uncovered []string
	for _, d := range list.Domains {
		if !observed[d] {
			uncovered = append(uncovered, d)
		}
		if len(uncovered) >= 500 {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		list.Recovery(observed, len(list.Domains))
		disc := blindspot.Discover(f.env.DNS, uncovered, 10, ixpSet, 1)
		if disc.QueriedDomains == 0 {
			b.Fatal("nothing queried")
		}
	}
}

// --- E9: §3.1 ISP cross-validation ---

func BenchmarkBlindSpotISP(b *testing.B) {
	f := setup(b)
	ispAS, err := ispview.PickISP(f.env.World)
	if err != nil {
		b.Fatal(err)
	}
	ixpSet := make(map[packet.IPv4Addr]bool, len(f.week.Servers.Servers))
	for ip := range f.week.Servers.Servers {
		ixpSet[ip] = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		log := ispview.Observe(f.env.World, f.env.DNS, ispAS, 45, 10_000)
		cmp := ispview.CompareWithIXP(log, ixpSet)
		if cmp.ISPServers == 0 {
			b.Fatal("ISP saw nothing")
		}
	}
}

// --- E10-E15: the longitudinal analyses (17-week tracking) ---

// benchTracker caches the 17-week tracking for the churn benches.
var benchTrackerWeeks []int

func trackedWeeks(b *testing.B) *fixture {
	f := setup(b)
	if _, _, err := f.runner.Tracked(); err != nil {
		b.Fatal(err)
	}
	return f
}

func BenchmarkFig4aServerChurn(b *testing.B) {
	f := trackedWeeks(b)
	tracker, _, _ := f.runner.Tracked()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		weeks := tracker.Compute()
		if len(weeks) == 0 {
			b.Fatal("no weeks")
		}
	}
}

func BenchmarkFig4bRegionChurn(b *testing.B) {
	f := trackedWeeks(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.runner.Fig4bRegionChurn(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4cASChurn(b *testing.B) {
	f := trackedWeeks(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.runner.Fig4cASChurn(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5TrafficChurn(b *testing.B) {
	f := trackedWeeks(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.runner.Fig5TrafficChurn(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeeklyStability(b *testing.B) {
	f := trackedWeeks(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.runner.WeeklyStability(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEventDetection(b *testing.B) {
	f := trackedWeeks(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.runner.EventDetection(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E16: §5.1 clustering ---

func BenchmarkClusterOrganizations(b *testing.B) {
	f := setup(b)
	opts := cluster.DefaultOptions()
	opts.KnownShared = f.env.DNS.PublicDNSProviders()
	opts.ASNOf = f.env.World.RIB().LookupASN
	b.ReportAllocs()
	b.ResetTimer()
	var res *cluster.Result
	for i := 0; i < b.N; i++ {
		res = cluster.Run(f.week.Metas, opts)
	}
	b.ReportMetric(float64(len(res.Clusters)), "clusters")
}

// --- E17/E18: Fig. 6 ---

func BenchmarkFig6bOrgSpread(b *testing.B) {
	f := setup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(hetero.OrgSpread(f.week.Clusters, 10)) == 0 {
			b.Fatal("no org points")
		}
	}
}

func BenchmarkFig6cASHosting(b *testing.B) {
	f := setup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(hetero.ASHosting(f.week.Clusters, 10)) == 0 {
			b.Fatal("no AS points")
		}
	}
}

// --- E19/E20: Fig. 7 link attribution (second pass over the capture) ---

func benchLinkStudy(b *testing.B, org int32) {
	f := setup(b)
	w := f.env.World
	c := f.week.Clusters.Clusters[w.Orgs[org].Domain]
	if c == nil {
		b.Fatal("org cluster missing")
	}
	set := make(map[packet.IPv4Addr]bool, len(c.IPs))
	for _, ip := range c.IPs {
		set[ip] = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls := hetero.NewLinkStats(w.Orgs[org].HomeAS)
		f.dissectPass(b, func(rec *dissect.Record) {
			ls.Observe(rec, func(ip packet.IPv4Addr) bool { return set[ip] })
		})
		if ls.TotalBytes == 0 {
			b.Fatal("no traffic attributed")
		}
	}
}

func BenchmarkFig7bAkamaiLinks(b *testing.B) {
	f := setup(b)
	benchLinkStudy(b, f.env.World.Special.AcmeCDN)
}

func BenchmarkFig7cCloudflareLinks(b *testing.B) {
	f := setup(b)
	benchLinkStudy(b, f.env.World.Special.CloudShield)
}

// --- E21: §2.4 meta-data ---

func BenchmarkMetadataCoverage(b *testing.B) {
	f := setup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		metas, cov := metadata.Collect(f.week.Servers, f.env.DNS)
		if len(metas) == 0 || cov.Total == 0 {
			b.Fatal("no metadata")
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkHTTPDetectionMethods compares the paper's string-matching
// server identification against a naive port-based classification: the
// ports method is faster but, as the paper argues, undercounts the
// server-related traffic share. The servers metric captures coverage.
func BenchmarkHTTPDetectionMethods(b *testing.B) {
	f := setup(b)
	b.Run("string-matching", func(b *testing.B) {
		b.ReportAllocs()
		var res *webserver.Result
		for i := 0; i < b.N; i++ {
			ident := webserver.NewIdentifier()
			f.dissectPass(b, ident.Observe)
			res = ident.Identify(45, f.env.Crawler)
		}
		b.ReportMetric(float64(len(res.Servers)), "servers")
	})
	b.Run("port-based", func(b *testing.B) {
		b.ReportAllocs()
		var count int
		for i := 0; i < b.N; i++ {
			servers := make(map[packet.IPv4Addr]bool)
			f.dissectPass(b, func(rec *dissect.Record) {
				if rec.Class != dissect.ClassPeeringTCP {
					return
				}
				// Naive: the side on 80/8080/443 is "a server".
				switch {
				case rec.SrcPort == 80 || rec.SrcPort == 8080 || rec.SrcPort == 443:
					servers[rec.SrcIP] = true
				case rec.DstPort == 80 || rec.DstPort == 8080 || rec.DstPort == 443:
					servers[rec.DstIP] = true
				}
			})
			count = len(servers)
		}
		b.ReportMetric(float64(count), "servers")
	})
}

// BenchmarkClusterStepAblation compares the full three-step clustering
// against crippled variants: without shared-authority handling (DNS
// provider customers collapse) and without the footprint tie-breaker.
func BenchmarkClusterStepAblation(b *testing.B) {
	f := setup(b)
	base := cluster.DefaultOptions()
	base.KnownShared = f.env.DNS.PublicDNSProviders()
	base.ASNOf = f.env.World.RIB().LookupASN

	variants := []struct {
		name string
		opts cluster.Options
	}{
		{"full", base},
		{"no-shared-handling", cluster.Options{
			SharedDomainSpread: 1 << 30, SharedSpreadRatio: 1e18, ASNOf: base.ASNOf,
		}},
		{"no-footprint", cluster.Options{
			SharedDomainSpread: base.SharedDomainSpread,
			SharedSpreadRatio:  base.SharedSpreadRatio,
			KnownShared:        base.KnownShared,
		}},
	}
	truth := func(ip packet.IPv4Addr) (int32, bool) {
		idx, ok := f.env.World.ServerByIP(ip)
		if !ok {
			return 0, false
		}
		return f.env.World.Servers[idx].Org, true
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			var res *cluster.Result
			for i := 0; i < b.N; i++ {
				res = cluster.Run(f.week.Metas, v.opts)
			}
			val := cluster.Validate(res, truth)
			b.ReportMetric(float64(len(res.Clusters)), "clusters")
			b.ReportMetric(100*val.FalsePositiveRate, "fp%")
		})
	}
}

// BenchmarkSamplingRateSweep regenerates a week at different sFlow
// sampling rates and reports how many servers the identification
// recovers: visibility versus record volume.
func BenchmarkSamplingRateSweep(b *testing.B) {
	cfg := netmodel.Tiny()
	for _, rate := range []uint32{1024, 4096, 16384, 65536} {
		b.Run(rateName(rate), func(b *testing.B) {
			// Samples scale inversely with rate at constant traffic.
			samples := int(30_000 * 16384 / rate)
			opts := traffic.Options{SamplesPerWeek: samples, SamplingRate: rate, SnapLen: 128}
			env, err := pipeline.NewEnv(cfg, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var found int
			for i := 0; i < b.N; i++ {
				res, _, _, err := env.IdentifyWeek(context.Background(), 45)
				if err != nil {
					b.Fatal(err)
				}
				found = len(res.Servers)
			}
			b.ReportMetric(float64(found), "servers")
		})
	}
}

func rateName(rate uint32) string {
	switch rate {
	case 1024:
		return "1-in-1K"
	case 4096:
		return "1-in-4K"
	case 16384:
		return "1-in-16K"
	default:
		return "1-in-64K"
	}
}

// BenchmarkFlowAggregation measures the per-sample cost of the whole
// observation path: sFlow decode, cascade, per-IP aggregation.
func BenchmarkFlowAggregation(b *testing.B) {
	f := setup(b)
	// Pre-encode the capture so the loop exercises decode too.
	var wires [][]byte
	for i := range f.src.Datagrams {
		wires = append(wires, f.src.Datagrams[i].AppendEncode(nil))
	}
	cls := dissect.NewClassifier(f.env.Fabric)
	agg := visibility.NewAggregator(f.env.World.RIB(), f.env.World.GeoDB())
	var d sflow.Datagram
	var rec dissect.Record
	samples := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire := wires[i%len(wires)]
		if err := sflow.Decode(wire, &d); err != nil {
			b.Fatal(err)
		}
		for k := range d.Flows {
			cls.Classify(&d.Flows[k], &rec)
			agg.Observe(&rec)
			samples++
		}
	}
	b.ReportMetric(float64(samples)/float64(b.N), "samples/op")
}

// BenchmarkEndToEndWeek measures the full weekly pipeline: traffic
// generation, sFlow export, dissection, identification.
func BenchmarkEndToEndWeek(b *testing.B) {
	cfg := netmodel.Tiny()
	opts := traffic.Options{SamplesPerWeek: 10_000, SamplingRate: 16384, SnapLen: 128}
	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := env.IdentifyWeek(context.Background(), 45); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCaptureStreamRoundTrip measures the on-disk capture format:
// encode + frame + decode of the week's datagrams.
func BenchmarkCaptureStreamRoundTrip(b *testing.B) {
	f := setup(b)
	col := &countingSink{}
	sw := ixp.NewCollector(f.env.Fabric, 16384, col.add)
	_ = sw
	b.ReportAllocs()
	var d sflow.Datagram
	var buf []byte
	for i := 0; i < b.N; i++ {
		dg := &f.src.Datagrams[i%len(f.src.Datagrams)]
		buf = dg.AppendEncode(buf[:0])
		if err := sflow.Decode(buf, &d); err != nil {
			b.Fatal(err)
		}
	}
}

type countingSink struct{ n int }

func (c *countingSink) add(*sflow.Datagram) error { c.n++; return nil }
