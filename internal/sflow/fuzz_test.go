package sflow

import "testing"

// FuzzDecode feeds arbitrary bytes to the sFlow datagram decoder: it
// must never panic, and successful decodes must survive an
// encode/decode round trip with identical structure.
func FuzzDecode(f *testing.F) {
	f.Add(sampleDatagram().AppendEncode(nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 5})

	f.Fuzz(func(t *testing.T, data []byte) {
		var d Datagram
		if err := Decode(data, &d); err != nil {
			return
		}
		// A decoded datagram with no skipped content must round-trip.
		if d.SkippedSamples > 0 {
			return
		}
		for i := range d.Flows {
			if d.Flows[i].SkippedRecords > 0 || !d.Flows[i].HasRaw {
				return
			}
		}
		for i := range d.Counters {
			if d.Counters[i].SkippedRecords > 0 {
				return
			}
		}
		wire := d.AppendEncode(nil)
		var d2 Datagram
		if err := Decode(wire, &d2); err != nil {
			t.Fatalf("re-encode undecodable: %v", err)
		}
		if len(d2.Flows) != len(d.Flows) || len(d2.Counters) != len(d.Counters) ||
			d2.SequenceNum != d.SequenceNum || d2.AgentAddr != d.AgentAddr {
			t.Fatal("round trip drifted")
		}
	})
}
