package sflow

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
)

// Capture container v2 ("IXPSFLW2"). The v1 container is a magic header
// followed by naked length-prefixed datagrams: nothing detects a flipped
// bit on disk, nothing compresses the heavily redundant sampled headers,
// and a reader must walk every frame serially. v2 borrows the block model
// of production trace stores (pcap-ng, Parquet): datagrams are grouped
// into fixed-target-size blocks, each block carries a CRC32C checksum, an
// optional flate compression flag, its datagram count and the stream
// position of its first datagram, and a footer indexes block offsets so a
// reader can fan whole blocks out to a decode-worker pool. Per-block
// framing buys integrity (a damaged block is quarantined, not decoded as
// garbage), compression, seekability and parallel decode at once, and a
// crash-truncated file still yields every intact block.
//
// Layout:
//
//	file   := "IXPSFLW2" block* footer?
//	block  := "BLK2" count:u32 firstPos:u64 rawLen:u32 diskLen:u32
//	          codec:u8 crc:u32 payload[diskLen]
//	footer := "IDX2" n:u32 entry[n] icrc:u32 footLen:u32 "IXPSEND2"
//	entry  := offset:u64 count:u32 firstPos:u64
//
// All integers are big-endian. A block's crc is CRC32C over the header
// bytes before the crc field plus the payload as stored on disk, so both
// header and payload damage are caught. The payload decompresses (codec 1
// is DEFLATE; codec 0 is stored) to rawLen bytes of u32-length-prefixed
// encoded datagrams — the same framing v1 uses inside its stream. The
// footer's icrc is CRC32C over the footer bytes before it, and the fixed
// 12-byte tail (footLen plus the end magic) lets a reader seek straight
// to the index from the end of the file.

var (
	blockMagic   = [8]byte{'I', 'X', 'P', 'S', 'F', 'L', 'W', '2'}
	blockMarker  = [4]byte{'B', 'L', 'K', '2'}
	footerMarker = [4]byte{'I', 'D', 'X', '2'}
	tailMagic    = [8]byte{'I', 'X', 'P', 'S', 'E', 'N', 'D', '2'}
)

const (
	// blockHeaderLen is the fixed on-disk block header: marker(4) +
	// count(4) + firstPos(8) + rawLen(4) + diskLen(4) + codec(1) + crc(4).
	blockHeaderLen = 29
	// blockCRCOffset is where the crc field sits inside the header; the
	// checksum covers header[:blockCRCOffset] plus the payload.
	blockCRCOffset = blockHeaderLen - 4

	// blockTargetRaw is the target uncompressed payload per block: large
	// enough to amortize framing and give flate context, small enough
	// that dozens of blocks are in flight on a worker pool.
	blockTargetRaw = 256 << 10
	// maxBlockRaw bounds a declared payload so a corrupt length field
	// cannot trigger a huge allocation: the target plus one maximum
	// datagram that straddled the boundary, plus framing slack.
	maxBlockRaw = blockTargetRaw + maxDatagramLen + (1 << 12)
	// maxBlockDisk bounds the stored payload (flate can expand a little).
	maxBlockDisk = maxBlockRaw + (1 << 12)

	codecNone  = 0
	codecFlate = 1

	footerEntryLen = 20
	footerTailLen  = 12
	// maxFooterEntries bounds the index a reader will allocate for.
	maxFooterEntries = 1 << 24
)

// castagnoli is the CRC32C polynomial table; Go's crc32 package uses
// hardware CRC instructions for it where available.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DatagramReader is the common surface of the v1 and v2 capture readers:
// Next decodes the next datagram or returns io.EOF at a clean end of
// input. Decoded header bytes alias reader-owned buffers and are valid
// only until a subsequent Next call.
type DatagramReader interface {
	Next(d *Datagram) error
}

// BlockStats is a snapshot of a v2 reader's block accounting.
type BlockStats struct {
	// Blocks counts blocks that verified and decoded cleanly.
	Blocks uint64
	// CorruptBlocks counts blocks whose checksum (or framing, when the
	// footer index vouched for the extent) did not verify; their
	// datagrams are quarantined, never decoded.
	CorruptBlocks uint64
	// Datagrams counts datagrams decoded from clean blocks.
	Datagrams uint64
	// QuarantinedDatagrams estimates datagrams lost to corrupt blocks,
	// from the footer index when present and the (capped) block header
	// count otherwise.
	QuarantinedDatagrams uint64
	// RawBytes and DiskBytes total the uncompressed and on-disk payload
	// sizes of clean blocks.
	RawBytes  uint64
	DiskBytes uint64
	// Truncated reports the file ended before its footer — the signature
	// of a crash during capture. Every intact block was still delivered.
	Truncated bool
	// FooterVerified reports a footer was found and its checksum passed.
	FooterVerified bool
}

// blockIndexEntry is one footer entry.
type blockIndexEntry struct {
	offset   uint64
	count    uint32
	firstPos uint64
}

// quarantineCount estimates how many datagrams a corrupt block held from
// its (untrusted) header fields: the declared count, capped by the
// smallest datagram the declared payload size could frame.
func quarantineCount(count, rawLen uint32) uint64 {
	q := uint64(count)
	if m := uint64(rawLen) / 32; q > m {
		q = m
	}
	return q
}

// BlockWriter writes the v2 container. It buffers encoded datagrams into
// a pending block and seals the block when it reaches the target size (or
// on Flush/Close), accumulating the footer index as it goes.
type BlockWriter struct {
	w        *bufio.Writer
	compress bool

	raw      []byte // pending block payload (length-prefixed datagrams)
	count    uint32 // datagrams in the pending block
	firstPos uint64 // stream position of the pending block's first datagram
	pos      uint64 // datagrams written overall
	off      uint64 // file offset where the next block starts

	index   []blockIndexEntry
	scratch []byte // datagram encode scratch
	hdr     [blockHeaderLen]byte
	comp    bytes.Buffer
	fw      *flate.Writer
	closed  bool
}

// NewBlockWriter writes the container header and returns a writer. With
// compress set, block payloads are DEFLATE-compressed when that actually
// shrinks them (incompressible blocks are stored).
func NewBlockWriter(w io.Writer, compress bool) (*BlockWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(blockMagic[:]); err != nil {
		return nil, err
	}
	return &BlockWriter{w: bw, compress: compress, off: uint64(len(blockMagic))}, nil
}

// WriteDatagram encodes and appends one datagram, sealing a block when
// the pending payload reaches the target size.
func (bw *BlockWriter) WriteDatagram(d *Datagram) error {
	if bw.closed {
		return errors.New("sflow: write to closed BlockWriter")
	}
	bw.scratch = d.AppendEncode(bw.scratch[:0])
	if len(bw.scratch) > maxDatagramLen {
		return fmt.Errorf("sflow: datagram of %d bytes exceeds stream limit", len(bw.scratch))
	}
	if bw.count == 0 {
		bw.firstPos = bw.pos
	}
	bw.raw = binary.BigEndian.AppendUint32(bw.raw, uint32(len(bw.scratch)))
	bw.raw = append(bw.raw, bw.scratch...)
	bw.count++
	bw.pos++
	if len(bw.raw) >= blockTargetRaw {
		return bw.sealBlock()
	}
	return nil
}

// sealBlock writes the pending block (if any) and starts a fresh one.
func (bw *BlockWriter) sealBlock() error {
	if bw.count == 0 {
		return nil
	}
	payload := bw.raw
	codec := byte(codecNone)
	if bw.compress {
		bw.comp.Reset()
		if bw.fw == nil {
			fw, err := flate.NewWriter(&bw.comp, flate.BestSpeed)
			if err != nil {
				return err
			}
			bw.fw = fw
		} else {
			bw.fw.Reset(&bw.comp)
		}
		if _, err := bw.fw.Write(bw.raw); err != nil {
			return err
		}
		if err := bw.fw.Close(); err != nil {
			return err
		}
		if bw.comp.Len() < len(bw.raw) {
			payload = bw.comp.Bytes()
			codec = codecFlate
		}
	}

	h := bw.hdr[:]
	copy(h, blockMarker[:])
	binary.BigEndian.PutUint32(h[4:], bw.count)
	binary.BigEndian.PutUint64(h[8:], bw.firstPos)
	binary.BigEndian.PutUint32(h[16:], uint32(len(bw.raw)))
	binary.BigEndian.PutUint32(h[20:], uint32(len(payload)))
	h[24] = codec
	crc := crc32.Checksum(h[:blockCRCOffset], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.BigEndian.PutUint32(h[blockCRCOffset:], crc)

	if _, err := bw.w.Write(h); err != nil {
		return err
	}
	if _, err := bw.w.Write(payload); err != nil {
		return err
	}
	bw.index = append(bw.index, blockIndexEntry{offset: bw.off, count: bw.count, firstPos: bw.firstPos})
	bw.off += uint64(blockHeaderLen + len(payload))
	bw.raw = bw.raw[:0]
	bw.count = 0
	return nil
}

// Count returns the number of datagrams written so far.
func (bw *BlockWriter) Count() int { return int(bw.pos) }

// Flush seals the pending block (even if short of the target size) and
// flushes buffered bytes to the underlying writer, so a crash afterwards
// loses nothing already written. Frequent flushes trade compression ratio
// for durability.
func (bw *BlockWriter) Flush() error {
	if err := bw.sealBlock(); err != nil {
		return err
	}
	return bw.w.Flush()
}

// Close seals the pending block, writes the footer index and flushes. The
// underlying writer is not closed. A file missing its footer (Close never
// ran) is still fully readable by sequential scan.
func (bw *BlockWriter) Close() error {
	if bw.closed {
		return nil
	}
	bw.closed = true
	if err := bw.sealBlock(); err != nil {
		return err
	}
	foot := make([]byte, 0, 8+footerEntryLen*len(bw.index)+footerTailLen+4)
	foot = append(foot, footerMarker[:]...)
	foot = binary.BigEndian.AppendUint32(foot, uint32(len(bw.index)))
	for _, e := range bw.index {
		foot = binary.BigEndian.AppendUint64(foot, e.offset)
		foot = binary.BigEndian.AppendUint32(foot, e.count)
		foot = binary.BigEndian.AppendUint64(foot, e.firstPos)
	}
	foot = binary.BigEndian.AppendUint32(foot, crc32.Checksum(foot, castagnoli))
	footLen := uint32(len(foot))
	foot = binary.BigEndian.AppendUint32(foot, footLen)
	foot = append(foot, tailMagic[:]...)
	if _, err := bw.w.Write(foot); err != nil {
		return err
	}
	return bw.w.Flush()
}

// blockCodec holds per-goroutine decode state: the flate reader is
// recycled across blocks via flate.Resetter.
type blockCodec struct {
	fr io.ReadCloser
}

// inflate decompresses src into dst[:rawLen], verifying the decompressed
// size matches exactly.
func (c *blockCodec) inflate(dst, src []byte) error {
	br := bytes.NewReader(src)
	if c.fr == nil {
		c.fr = flate.NewReader(br)
	} else if err := c.fr.(flate.Resetter).Reset(br, nil); err != nil {
		return err
	}
	if _, err := io.ReadFull(c.fr, dst); err != nil {
		return fmt.Errorf("sflow: block decompression short: %w", err)
	}
	var one [1]byte
	if n, _ := c.fr.Read(one[:]); n != 0 {
		return errors.New("sflow: block decompressed past declared size")
	}
	return nil
}

// decodeBlockPayload verifies and decodes one framed block (header plus
// stored payload) into dgs, reusing dgs and the raw scratch buffer.
// c must be non-nil; its flate reader is recycled across calls.
// trusted reports whether the block's extent came from a verified footer
// index: then any damage — even to the header — quarantines the block
// (corrupt=true) instead of failing the stream. Without a trusted extent
// a checksum mismatch still quarantines (the next block is found via the
// declared diskLen, which the caller already used to frame data), but
// decode failures after a passing checksum are structural errors.
func decodeBlockPayload(data []byte, raw []byte, dgs []Datagram, c *blockCodec, trusted bool) (outDgs []Datagram, outRaw []byte, corrupt bool, rawLen, diskLen uint32, hdrCount uint32, err error) {
	dgs = dgs[:0]
	fail := func(e error) ([]Datagram, []byte, bool, uint32, uint32, uint32, error) {
		if trusted {
			return dgs, raw, true, rawLen, diskLen, hdrCount, nil
		}
		return dgs, raw, false, rawLen, diskLen, hdrCount, e
	}
	if len(data) < blockHeaderLen || !bytes.Equal(data[:4], blockMarker[:]) {
		return fail(errors.New("sflow: bad block marker"))
	}
	hdrCount = binary.BigEndian.Uint32(data[4:])
	rawLen = binary.BigEndian.Uint32(data[16:])
	diskLen = binary.BigEndian.Uint32(data[20:])
	codec := data[24]
	if rawLen > maxBlockRaw || diskLen > maxBlockDisk || int(diskLen) != len(data)-blockHeaderLen ||
		codec > codecFlate || (codec == codecNone && rawLen != diskLen) {
		return fail(errors.New("sflow: block header out of bounds"))
	}
	payload := data[blockHeaderLen:]
	crc := crc32.Checksum(data[:blockCRCOffset], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != binary.BigEndian.Uint32(data[blockCRCOffset:]) {
		// Checksum failure is never structural: quarantine and move on.
		return dgs, raw, true, rawLen, diskLen, hdrCount, nil
	}
	if codec == codecFlate {
		if cap(raw) < int(rawLen) {
			raw = make([]byte, rawLen)
		}
		raw = raw[:rawLen]
		if err := c.inflate(raw, payload); err != nil {
			return fail(err)
		}
		payload = raw
	}
	// Split the length-prefixed datagrams. The checksum passed, so any
	// inconsistency here is writer-side damage, not disk damage.
	for rest := payload; len(rest) > 0; {
		if len(rest) < 4 {
			return fail(errors.New("sflow: block payload framing damaged"))
		}
		n := binary.BigEndian.Uint32(rest)
		if n > maxDatagramLen || int(n) > len(rest)-4 {
			return fail(errors.New("sflow: block payload framing damaged"))
		}
		dgs = append(dgs, Datagram{})
		d := &dgs[len(dgs)-1]
		if derr := Decode(rest[4:4+n], d); derr != nil {
			dgs = dgs[:len(dgs)-1]
			return fail(fmt.Errorf("sflow: datagram in checksummed block: %w", derr))
		}
		rest = rest[4+n:]
	}
	return dgs, raw, false, rawLen, diskLen, hdrCount, nil
}

// frame kinds returned by readFrame.
const (
	frameBlock = iota
	frameFooter
	frameEnd
)

// truncOr classifies a short-read error: an EOF-class error means the
// file genuinely ends mid-structure (truncation), while any other error
// (EIO, a failing device) is a real I/O fault that must propagate as
// itself — relabeling it as truncation would silently degrade a
// readable file into a lossy decode instead of surfacing the failure.
func truncOr(err error, what string) error {
	if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("sflow: %s cut short: %w", what, ErrTruncated)
	}
	return fmt.Errorf("sflow: %s: %w", what, err)
}

// readFrame reads the next container frame from br into buf (reused):
// a full block (header plus payload), a footer (parsed and verified in
// place; footerOK reports the verification), or a clean end of input
// before any marker — which means the writer never wrote its footer.
func readFrame(br *bufio.Reader, buf []byte) (kind int, data []byte, footerOK bool, err error) {
	var marker [4]byte
	if _, err := io.ReadFull(br, marker[:]); err != nil {
		if err == io.EOF {
			return frameEnd, buf, false, nil
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, buf, false, fmt.Errorf("sflow: block marker cut short: %w", ErrTruncated)
		}
		return 0, buf, false, err
	}
	switch marker {
	case blockMarker:
		if cap(buf) < blockHeaderLen {
			buf = make([]byte, 0, blockHeaderLen+blockTargetRaw)
		}
		buf = buf[:blockHeaderLen]
		copy(buf, marker[:])
		if _, err := io.ReadFull(br, buf[4:]); err != nil {
			return 0, buf, false, truncOr(err, "block header")
		}
		diskLen := binary.BigEndian.Uint32(buf[20:])
		if diskLen > maxBlockDisk {
			return 0, buf, false, fmt.Errorf("sflow: block payload length %d exceeds limit", diskLen)
		}
		if cap(buf) < blockHeaderLen+int(diskLen) {
			grown := make([]byte, blockHeaderLen+int(diskLen))
			copy(grown, buf)
			buf = grown
		}
		buf = buf[:blockHeaderLen+int(diskLen)]
		if _, err := io.ReadFull(br, buf[blockHeaderLen:]); err != nil {
			return 0, buf, false, truncOr(err, "block payload")
		}
		return frameBlock, buf, false, nil
	case footerMarker:
		ok, err := readFooterStream(br)
		if err != nil {
			return 0, buf, false, err
		}
		return frameFooter, buf, ok, nil
	default:
		return 0, buf, false, fmt.Errorf("sflow: bad block marker %q", marker[:])
	}
}

// readFooterStream consumes and verifies a footer whose "IDX2" marker has
// already been read. It reports whether the index checksum and tail
// verified; damage to the footer is not fatal (every block was already
// delivered), but truncation inside it is still reported as such.
func readFooterStream(br *bufio.Reader) (ok bool, err error) {
	var nbuf [4]byte
	if _, err := io.ReadFull(br, nbuf[:]); err != nil {
		return false, truncOr(err, "footer")
	}
	n := binary.BigEndian.Uint32(nbuf[:])
	if n > maxFooterEntries {
		return false, nil
	}
	// Stream the entries through the checksum in fixed chunks: a corrupt
	// entry count must not provoke a giant allocation.
	crc := crc32.Checksum(footerMarker[:], castagnoli)
	crc = crc32.Update(crc, castagnoli, nbuf[:])
	var chunk [4096]byte
	for left := footerEntryLen * int64(n); left > 0; {
		c := int64(len(chunk))
		if c > left {
			c = left
		}
		if _, err := io.ReadFull(br, chunk[:c]); err != nil {
			return false, truncOr(err, "footer")
		}
		crc = crc32.Update(crc, castagnoli, chunk[:c])
		left -= c
	}
	var icrcb [4]byte
	if _, err := io.ReadFull(br, icrcb[:]); err != nil {
		return false, truncOr(err, "footer")
	}
	if crc != binary.BigEndian.Uint32(icrcb[:]) {
		return false, nil
	}
	var tail [footerTailLen]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return false, truncOr(err, "footer tail")
	}
	footLen := binary.BigEndian.Uint32(tail[:4])
	if footLen != uint32(8+footerEntryLen*int64(n)+4) || !bytes.Equal(tail[4:], tailMagic[:]) {
		return false, nil
	}
	return true, nil
}

// BlockReader reads a v2 container sequentially from any io.Reader,
// decoding one block at a time. Corrupt blocks are quarantined and
// skipped; a file that ends mid-structure returns an error wrapping
// ErrTruncated after delivering every intact block before the cut.
type BlockReader struct {
	r     *bufio.Reader
	buf   []byte
	raw   []byte
	dgs   []Datagram
	cur   int
	codec blockCodec
	st    BlockStats
	done  bool
}

// NewBlockReader validates the container header and returns a reader.
func NewBlockReader(r io.Reader) (*BlockReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("sflow: reading container header: %w", err)
	}
	if magic != blockMagic {
		return nil, ErrBadMagic
	}
	return newBlockReaderFrom(br), nil
}

// newBlockReaderFrom wraps a bufio.Reader positioned just past the magic.
func newBlockReaderFrom(br *bufio.Reader) *BlockReader {
	return &BlockReader{r: br}
}

// Next decodes the next datagram into d. It returns io.EOF at the end of
// the container (clean, or after a missing/damaged footer — see Stats)
// and an error wrapping ErrTruncated when the file stops mid-structure.
// The datagram's header byte slices alias reader-owned buffers valid only
// until a subsequent Next call.
func (r *BlockReader) Next(d *Datagram) error {
	for {
		if r.cur < len(r.dgs) {
			*d = r.dgs[r.cur]
			r.cur++
			r.st.Datagrams++
			return nil
		}
		if r.done {
			return io.EOF
		}
		kind, buf, footerOK, err := readFrame(r.r, r.buf)
		r.buf = buf
		if err != nil {
			r.done = true
			if errors.Is(err, ErrTruncated) {
				r.st.Truncated = true
			}
			return err
		}
		switch kind {
		case frameEnd:
			r.done = true
			r.st.Truncated = true // footer never written
			return io.EOF
		case frameFooter:
			r.done = true
			r.st.FooterVerified = footerOK
			return io.EOF
		}
		dgs, raw, corrupt, rawLen, diskLen, hdrCount, derr := decodeBlockPayload(r.buf, r.raw, r.dgs[:0], &r.codec, false)
		r.dgs, r.raw, r.cur = dgs, raw, 0
		if derr != nil {
			r.done = true
			return derr
		}
		if corrupt {
			r.dgs = r.dgs[:0]
			r.st.CorruptBlocks++
			r.st.QuarantinedDatagrams += quarantineCount(hdrCount, rawLen)
			continue
		}
		r.st.Blocks++
		r.st.RawBytes += uint64(rawLen)
		r.st.DiskBytes += uint64(blockHeaderLen) + uint64(diskLen)
	}
}

// Stats returns the block accounting so far.
func (r *BlockReader) Stats() BlockStats { return r.st }

// OpenReader sniffs the container magic and returns a sequential reader
// for either capture format: a StreamReader for v1 files, a BlockReader
// for v2. The reader consumes r from the current position.
func OpenReader(r io.Reader) (DatagramReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("sflow: reading container header: %w", err)
	}
	switch magic {
	case streamMagic:
		return &StreamReader{r: br}, nil
	case blockMagic:
		return newBlockReaderFrom(br), nil
	default:
		return nil, ErrBadMagic
	}
}

// CaptureFormat reports the container version a magic header announces:
// 1, 2, or 0 for neither.
func CaptureFormat(magic [8]byte) int {
	switch magic {
	case streamMagic:
		return 1
	case blockMagic:
		return 2
	}
	return 0
}

// pbrStats is the ParallelBlockReader's accounting, atomics because the
// producer, workers and consumer all contribute.
type pbrStats struct {
	blocks      atomic.Uint64
	corrupt     atomic.Uint64
	datagrams   atomic.Uint64
	quarantined atomic.Uint64
	rawBytes    atomic.Uint64
	diskBytes   atomic.Uint64
	truncated   atomic.Bool
	footerOK    atomic.Bool
}

func (s *pbrStats) snapshot() BlockStats {
	return BlockStats{
		Blocks:               s.blocks.Load(),
		CorruptBlocks:        s.corrupt.Load(),
		Datagrams:            s.datagrams.Load(),
		QuarantinedDatagrams: s.quarantined.Load(),
		RawBytes:             s.rawBytes.Load(),
		DiskBytes:            s.diskBytes.Load(),
		Truncated:            s.truncated.Load(),
		FooterVerified:       s.footerOK.Load(),
	}
}

// pbrSlot carries one block through the producer -> worker -> consumer
// hand-off. Slots are recycled through a free list so memory stays
// bounded at the slot count regardless of file size.
type pbrSlot struct {
	data     []byte     // block bytes as framed on disk (header + payload)
	raw      []byte     // decompression scratch
	dgs      []Datagram // decoded datagrams
	trusted  bool       // extent vouched for by a verified footer index
	idxCount uint32     // footer's datagram count (trusted extents)
	err      error      // structural decode error
	ready    chan struct{}
}

// ParallelBlockReader decodes a v2 container with a worker pool: a
// producer reads block extents off the file in order, workers verify
// checksums, decompress and decode blocks concurrently, and Next hands
// datagrams back in exact file order. When the file carries a verified
// footer index the extents come from it, so even a block whose header is
// damaged quarantines cleanly and the reader resyncs at the next indexed
// offset; otherwise it falls back to scanning headers sequentially.
type ParallelBlockReader struct {
	free chan *pbrSlot
	jobs chan *pbrSlot
	out  chan *pbrSlot
	stop chan struct{}

	cur     *pbrSlot
	curi    int
	termErr error
	finErr  error // producer's terminal error; set before out closes

	st        pbrStats
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// errReaderClosed reports Next after Close.
var errReaderClosed = errors.New("sflow: parallel block reader closed")

// NewParallelBlockReader validates the container header and starts
// workers decode goroutines (minimum 1). The reader takes over r until
// Close; the caller remains responsible for closing the underlying file.
func NewParallelBlockReader(r io.ReadSeeker, workers int) (*ParallelBlockReader, error) {
	if workers < 1 {
		workers = 1
	}
	var magic [8]byte
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("sflow: reading container header: %w", err)
	}
	if magic != blockMagic {
		return nil, ErrBadMagic
	}
	index, footerEnd := loadFooterIndex(r)

	if _, err := r.Seek(int64(len(blockMagic)), io.SeekStart); err != nil {
		return nil, err
	}

	slots := workers*2 + 2
	p := &ParallelBlockReader{
		free: make(chan *pbrSlot, slots),
		jobs: make(chan *pbrSlot, slots),
		out:  make(chan *pbrSlot, slots),
		stop: make(chan struct{}),
	}
	for i := 0; i < slots; i++ {
		p.free <- &pbrSlot{ready: make(chan struct{}, 1)}
	}
	if index != nil {
		p.st.footerOK.Store(true)
	}

	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	p.wg.Add(1)
	go p.produce(r, index, footerEnd)
	return p, nil
}

// loadFooterIndex reads and validates the footer index from the tail of
// the file. It returns nil when the footer is absent, damaged, or its
// entries do not tile the block region exactly — the reader then falls
// back to a sequential scan. The seek position is left undefined.
func loadFooterIndex(r io.ReadSeeker) (index []blockIndexEntry, footerStart int64) {
	size, err := r.Seek(0, io.SeekEnd)
	if err != nil || size < int64(len(blockMagic))+footerTailLen {
		return nil, 0
	}
	var tail [footerTailLen]byte
	if _, err := r.Seek(size-footerTailLen, io.SeekStart); err != nil {
		return nil, 0
	}
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, 0
	}
	if !bytes.Equal(tail[4:], tailMagic[:]) {
		return nil, 0
	}
	footLen := int64(binary.BigEndian.Uint32(tail[:4]))
	if footLen < 12 || footLen > size-int64(len(blockMagic))-footerTailLen {
		return nil, 0
	}
	footerStart = size - footerTailLen - footLen
	foot := make([]byte, footLen)
	if _, err := r.Seek(footerStart, io.SeekStart); err != nil {
		return nil, 0
	}
	if _, err := io.ReadFull(r, foot); err != nil {
		return nil, 0
	}
	if !bytes.Equal(foot[:4], footerMarker[:]) {
		return nil, 0
	}
	n := binary.BigEndian.Uint32(foot[4:])
	if n > maxFooterEntries || footLen != int64(12+footerEntryLen*int(n)) {
		return nil, 0
	}
	if crc32.Checksum(foot[:footLen-4], castagnoli) != binary.BigEndian.Uint32(foot[footLen-4:]) {
		return nil, 0
	}
	index = make([]blockIndexEntry, n)
	for i := range index {
		e := foot[8+footerEntryLen*i:]
		index[i] = blockIndexEntry{
			offset:   binary.BigEndian.Uint64(e),
			count:    binary.BigEndian.Uint32(e[8:]),
			firstPos: binary.BigEndian.Uint64(e[12:]),
		}
	}
	// The entries must tile [len(magic), footerStart) exactly with
	// plausible block extents, or the index cannot be trusted to frame
	// reads.
	end := uint64(len(blockMagic))
	for i, e := range index {
		if e.offset != end {
			return nil, 0
		}
		var next uint64
		if i+1 < len(index) {
			next = index[i+1].offset
		} else {
			next = uint64(footerStart)
		}
		extent := int64(next) - int64(e.offset)
		if extent < blockHeaderLen || extent > blockHeaderLen+maxBlockDisk {
			return nil, 0
		}
		end = next
	}
	if end != uint64(footerStart) {
		return nil, 0
	}
	return index, footerStart
}

// produce reads block extents in file order, dispatching each to the
// worker pool and, in the same order, to the consumer.
func (p *ParallelBlockReader) produce(r io.ReadSeeker, index []blockIndexEntry, footerEnd int64) {
	defer p.wg.Done()
	defer close(p.out)
	defer close(p.jobs)
	if index != nil {
		br := bufio.NewReaderSize(r, 1<<16)
		for i, e := range index {
			var next uint64
			if i+1 < len(index) {
				next = index[i+1].offset
			} else {
				next = uint64(footerEnd)
			}
			extent := int(next - e.offset)
			slot := p.takeSlot()
			if slot == nil {
				return
			}
			if cap(slot.data) < extent {
				slot.data = make([]byte, extent)
			}
			slot.data = slot.data[:extent]
			if _, err := io.ReadFull(br, slot.data); err != nil {
				// The footer said these bytes exist: an EOF-class error
				// means the file shrank underneath us; anything else is
				// a device fault and propagates as itself.
				err = truncOr(err, "indexed block")
				if errors.Is(err, ErrTruncated) {
					p.st.truncated.Store(true)
				}
				p.finErr = err
				return
			}
			slot.trusted = true
			slot.idxCount = e.count
			if !p.dispatch(slot) {
				return
			}
		}
		return
	}

	// Scan mode: no usable footer. Frame blocks off their own headers;
	// the footer frame, if one appears, re-verifies in stream form.
	br := bufio.NewReaderSize(r, 1<<16)
	for {
		slot := p.takeSlot()
		if slot == nil {
			return
		}
		kind, data, footerOK, err := readFrame(br, slot.data)
		slot.data = data
		if err != nil {
			p.free <- slot
			if errors.Is(err, ErrTruncated) {
				p.st.truncated.Store(true)
			}
			p.finErr = err
			return
		}
		switch kind {
		case frameEnd:
			p.free <- slot
			p.st.truncated.Store(true)
			return
		case frameFooter:
			p.free <- slot
			p.st.footerOK.Store(footerOK)
			return
		}
		slot.trusted = false
		slot.idxCount = 0
		if !p.dispatch(slot) {
			return
		}
	}
}

// takeSlot pulls a free slot, or nil if the reader is closing.
func (p *ParallelBlockReader) takeSlot() *pbrSlot {
	select {
	case s := <-p.free:
		s.err = nil
		return s
	case <-p.stop:
		return nil
	}
}

// dispatch hands a filled slot to the workers and, in order, to the
// consumer. It reports false when the reader is closing.
func (p *ParallelBlockReader) dispatch(s *pbrSlot) bool {
	select {
	case p.jobs <- s:
	case <-p.stop:
		return false
	}
	select {
	case p.out <- s:
	case <-p.stop:
		return false
	}
	return true
}

// worker verifies, decompresses and decodes blocks.
func (p *ParallelBlockReader) worker() {
	defer p.wg.Done()
	var codec blockCodec
	for slot := range p.jobs {
		dgs, raw, corrupt, rawLen, diskLen, hdrCount, err := decodeBlockPayload(slot.data, slot.raw, slot.dgs[:0], &codec, slot.trusted)
		slot.dgs, slot.raw, slot.err = dgs, raw, err
		switch {
		case err != nil:
			slot.dgs = slot.dgs[:0]
		case corrupt:
			slot.dgs = slot.dgs[:0]
			p.st.corrupt.Add(1)
			if slot.trusted {
				p.st.quarantined.Add(uint64(slot.idxCount))
			} else {
				p.st.quarantined.Add(quarantineCount(hdrCount, rawLen))
			}
		default:
			p.st.blocks.Add(1)
			p.st.datagrams.Add(uint64(len(slot.dgs)))
			p.st.rawBytes.Add(uint64(rawLen))
			p.st.diskBytes.Add(uint64(blockHeaderLen) + uint64(diskLen))
		}
		select {
		case slot.ready <- struct{}{}:
		case <-p.stop:
			return
		}
	}
}

// Next hands back the next datagram in file order. It returns io.EOF at
// the end of the container and an error wrapping ErrTruncated when the
// file stopped mid-structure (after delivering everything intact before
// the cut). Decoded header bytes alias pooled buffers valid only until a
// subsequent Next call.
func (p *ParallelBlockReader) Next(d *Datagram) error {
	if p.termErr != nil {
		return p.termErr
	}
	for {
		if p.cur != nil && p.curi < len(p.cur.dgs) {
			*d = p.cur.dgs[p.curi]
			p.curi++
			return nil
		}
		if p.cur != nil {
			p.free <- p.cur
			p.cur = nil
		}
		select {
		case slot, ok := <-p.out:
			if !ok {
				err := p.finErr
				if err == nil {
					err = io.EOF
				}
				p.termErr = err
				return err
			}
			select {
			case <-slot.ready:
			case <-p.stop:
				p.termErr = errReaderClosed
				return p.termErr
			}
			if slot.err != nil {
				p.termErr = slot.err
				return p.termErr
			}
			p.cur, p.curi = slot, 0
		case <-p.stop:
			p.termErr = errReaderClosed
			return p.termErr
		}
	}
}

// Stats returns the block accounting so far. It is safe to call
// concurrently with Next, and final once Next has returned io.EOF.
func (p *ParallelBlockReader) Stats() BlockStats { return p.st.snapshot() }

// Close stops the pipeline and releases its goroutines. It does not
// close the underlying reader.
func (p *ParallelBlockReader) Close() error {
	p.closeOnce.Do(func() { close(p.stop) })
	return nil
}
