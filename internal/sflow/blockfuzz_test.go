package sflow_test

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"ixplens/internal/faultline"
	"ixplens/internal/sflow"
)

// fuzzSeedCapture builds a small valid v2 capture for the fuzz corpus.
func fuzzSeedCapture(tb testing.TB, compress bool) []byte {
	tb.Helper()
	var buf bytes.Buffer
	bw, err := sflow.NewBlockWriter(&buf, compress)
	if err != nil {
		tb.Fatal(err)
	}
	d := &sflow.Datagram{
		AgentAddr:   [4]byte{10, 0, 0, 1},
		SequenceNum: 1,
		Flows: []sflow.FlowSample{{
			SamplingRate: 16384,
			HasRaw:       true,
			Raw: sflow.RawPacketHeader{
				Protocol:    sflow.HeaderProtoEthernet,
				FrameLength: 1514,
				Header:      bytes.Repeat([]byte{0xAB, 2, 3, 4}, 16),
			},
		}},
	}
	for i := 0; i < 120; i++ {
		d.SequenceNum = uint32(i + 1)
		if err := bw.WriteDatagram(d); err != nil {
			tb.Fatal(err)
		}
		if i%17 == 0 {
			if err := bw.Flush(); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if err := bw.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzBlockReader throws arbitrary bytes — seeded with valid captures
// mangled by faultline's truncate and bit-flip mutators — at both v2
// readers. The contract under any input: no panic, no hang, and every
// datagram handed back came from a checksummed block.
func FuzzBlockReader(f *testing.F) {
	for _, compress := range []bool{false, true} {
		valid := fuzzSeedCapture(f, compress)
		f.Add(valid)
		for _, key := range []uint64{3, 7919, 1 << 40, 0xdeadbeef} {
			f.Add(append([]byte(nil), faultline.TruncateHeader(valid, key)...))
			f.Add(faultline.FlipHeaderBit(append([]byte(nil), valid...), key))
		}
	}
	f.Add([]byte("IXPSFLW2"))
	f.Add([]byte("IXPSFLW2BLK2garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		watchdog := time.AfterFunc(5*time.Second, func() {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			panic("fuzz exec exceeded 5s:\n" + string(buf[:n]))
		})
		defer watchdog.Stop()
		const maxDatagrams = 1 << 20
		var d sflow.Datagram

		br, err := sflow.NewBlockReader(bytes.NewReader(data))
		if err == nil {
			for i := 0; ; i++ {
				if i > maxDatagrams {
					t.Fatalf("serial reader produced over %d datagrams from %d input bytes", maxDatagrams, len(data))
				}
				if err := br.Next(&d); err != nil {
					break
				}
			}
		}

		pr, err := sflow.NewParallelBlockReader(bytes.NewReader(data), 2)
		if err != nil {
			return
		}
		defer pr.Close()
		for i := 0; ; i++ {
			if i > maxDatagrams {
				t.Fatalf("parallel reader produced over %d datagrams from %d input bytes", maxDatagrams, len(data))
			}
			if err := pr.Next(&d); err != nil {
				break
			}
		}
	})
}
