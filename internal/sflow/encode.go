package sflow

// AppendEncode serializes the datagram in sFlow v5 wire format, appending
// to buf and returning the extended slice. Encoding is allocation-free
// when buf has sufficient capacity.
func (d *Datagram) AppendEncode(buf []byte) []byte {
	buf = appendUint32(buf, Version)
	buf = appendUint32(buf, 1) // address type: IPv4
	buf = append(buf, d.AgentAddr[:]...)
	buf = appendUint32(buf, d.SubAgentID)
	buf = appendUint32(buf, d.SequenceNum)
	buf = appendUint32(buf, d.Uptime)
	buf = appendUint32(buf, uint32(len(d.Flows)+len(d.Counters)))
	for i := range d.Flows {
		buf = d.Flows[i].appendEncode(buf)
	}
	for i := range d.Counters {
		buf = d.Counters[i].appendEncode(buf)
	}
	return buf
}

func (s *FlowSample) appendEncode(buf []byte) []byte {
	buf = appendUint32(buf, sampleTypeFlow)
	lenAt := len(buf)
	buf = appendUint32(buf, 0) // length placeholder
	start := len(buf)

	buf = appendUint32(buf, s.SequenceNum)
	buf = appendUint32(buf, s.SourceIDType<<24|s.SourceIDIndex&0xffffff)
	buf = appendUint32(buf, s.SamplingRate)
	buf = appendUint32(buf, s.SamplePool)
	buf = appendUint32(buf, s.Drops)
	buf = appendUint32(buf, s.InputIf)
	buf = appendUint32(buf, s.OutputIf)

	n := 0
	if s.HasRaw {
		n++
	}
	if s.HasSwitch {
		n++
	}
	buf = appendUint32(buf, uint32(n))
	if s.HasRaw {
		buf = s.Raw.appendEncode(buf)
	}
	if s.HasSwitch {
		buf = s.Switch.appendEncode(buf)
	}
	putLen(buf, lenAt, len(buf)-start)
	return buf
}

func (r *RawPacketHeader) appendEncode(buf []byte) []byte {
	buf = appendUint32(buf, recordTypeRawPacketHeader)
	body := 16 + pad4(len(r.Header))
	buf = appendUint32(buf, uint32(body))
	buf = appendUint32(buf, r.Protocol)
	buf = appendUint32(buf, r.FrameLength)
	buf = appendUint32(buf, r.Stripped)
	buf = appendUint32(buf, uint32(len(r.Header)))
	buf = append(buf, r.Header...)
	for i := len(r.Header); i%4 != 0; i++ {
		buf = append(buf, 0)
	}
	return buf
}

func (e *ExtendedSwitch) appendEncode(buf []byte) []byte {
	buf = appendUint32(buf, recordTypeExtendedSwitch)
	buf = appendUint32(buf, 16)
	buf = appendUint32(buf, e.SrcVLAN)
	buf = appendUint32(buf, e.SrcPriority)
	buf = appendUint32(buf, e.DstVLAN)
	buf = appendUint32(buf, e.DstPriority)
	return buf
}

func (s *CounterSample) appendEncode(buf []byte) []byte {
	buf = appendUint32(buf, sampleTypeCounter)
	lenAt := len(buf)
	buf = appendUint32(buf, 0)
	start := len(buf)

	buf = appendUint32(buf, s.SequenceNum)
	buf = appendUint32(buf, s.SourceIDType<<24|s.SourceIDIndex&0xffffff)
	n := 0
	if s.HasGeneric {
		n++
	}
	buf = appendUint32(buf, uint32(n))
	if s.HasGeneric {
		buf = s.Generic.appendEncode(buf)
	}
	putLen(buf, lenAt, len(buf)-start)
	return buf
}

func (g *GenericInterfaceCounters) appendEncode(buf []byte) []byte {
	buf = appendUint32(buf, counterTypeGenericInterface)
	buf = appendUint32(buf, 88)
	buf = appendUint32(buf, g.IfIndex)
	buf = appendUint32(buf, g.IfType)
	buf = appendUint64(buf, g.IfSpeed)
	buf = appendUint32(buf, g.IfDirection)
	buf = appendUint32(buf, g.IfStatus)
	buf = appendUint64(buf, g.InOctets)
	buf = appendUint32(buf, g.InUcastPkts)
	buf = appendUint32(buf, g.InMulticastPkts)
	buf = appendUint32(buf, g.InBroadcastPkts)
	buf = appendUint32(buf, g.InDiscards)
	buf = appendUint32(buf, g.InErrors)
	buf = appendUint32(buf, g.InUnknownProtos)
	buf = appendUint64(buf, g.OutOctets)
	buf = appendUint32(buf, g.OutUcastPkts)
	buf = appendUint32(buf, g.OutMulticastPkts)
	buf = appendUint32(buf, g.OutBroadcastPkts)
	buf = appendUint32(buf, g.OutDiscards)
	buf = appendUint32(buf, g.OutErrors)
	buf = appendUint32(buf, g.PromiscuousMode)
	return buf
}

// putLen writes a 32-bit big-endian length into buf at offset at.
func putLen(buf []byte, at, length int) {
	buf[at] = byte(length >> 24)
	buf[at+1] = byte(length >> 16)
	buf[at+2] = byte(length >> 8)
	buf[at+3] = byte(length)
}
