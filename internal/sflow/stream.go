package sflow

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Capture stream framing, container v1. sFlow datagrams travel over UDP
// on the wire; the original on-disk container is minimal: an 8-byte
// magic header followed by naked length-prefixed datagrams. New captures
// use the checksummed block container v2 (see block.go); this reader is
// kept so every v1 capture ever written stays readable.

var streamMagic = [8]byte{'I', 'X', 'P', 'S', 'F', 'L', 'W', '1'}

// ErrBadMagic indicates the input is not a capture stream.
var ErrBadMagic = errors.New("sflow: bad capture stream magic")

// ErrTruncated marks a capture cut off mid-structure — a frame, block or
// header that ends before its declared length, the signature of a crash
// or kill -9 during capture. Readers return it (test with errors.Is) so
// analysis can distinguish a crash-truncated capture, which degrades to
// whatever decoded cleanly, from structural corruption, which fails.
var ErrTruncated = errors.New("sflow: capture truncated mid-structure")

// maxDatagramLen bounds a single framed datagram so a corrupt length
// field cannot trigger a huge allocation.
const maxDatagramLen = 1 << 20

// StreamWriter writes a sequence of encoded datagrams to an io.Writer.
type StreamWriter struct {
	w   *bufio.Writer
	buf []byte
	n   int
}

// NewStreamWriter writes the stream header and returns a writer.
func NewStreamWriter(w io.Writer) (*StreamWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(streamMagic[:]); err != nil {
		return nil, err
	}
	return &StreamWriter{w: bw}, nil
}

// WriteDatagram encodes and appends one datagram.
func (sw *StreamWriter) WriteDatagram(d *Datagram) error {
	sw.buf = d.AppendEncode(sw.buf[:0])
	if len(sw.buf) > maxDatagramLen {
		return fmt.Errorf("sflow: datagram of %d bytes exceeds stream limit", len(sw.buf))
	}
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(sw.buf)))
	if _, err := sw.w.Write(lenbuf[:]); err != nil {
		return err
	}
	if _, err := sw.w.Write(sw.buf); err != nil {
		return err
	}
	sw.n++
	return nil
}

// Count returns the number of datagrams written so far.
func (sw *StreamWriter) Count() int { return sw.n }

// Flush flushes buffered data to the underlying writer.
func (sw *StreamWriter) Flush() error { return sw.w.Flush() }

// StreamReader reads datagrams written by StreamWriter.
type StreamReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewStreamReader validates the stream header and returns a reader.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("sflow: reading stream header: %w", err)
	}
	if magic != streamMagic {
		return nil, ErrBadMagic
	}
	return &StreamReader{r: br}, nil
}

// Next decodes the next datagram into d. It returns io.EOF at a clean end
// of stream and an error wrapping ErrTruncated when the stream stops
// mid-frame (a crash-truncated capture). The datagram's header byte
// slices alias an internal buffer that is overwritten by the following
// Next call.
func (sr *StreamReader) Next(d *Datagram) error {
	var lenbuf [4]byte
	if _, err := io.ReadFull(sr.r, lenbuf[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("sflow: frame length cut short: %w", ErrTruncated)
		}
		return fmt.Errorf("sflow: reading frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenbuf[:])
	if n > maxDatagramLen {
		return fmt.Errorf("sflow: framed datagram length %d exceeds limit", n)
	}
	if cap(sr.buf) < int(n) {
		sr.buf = make([]byte, n)
	}
	sr.buf = sr.buf[:n]
	if _, err := io.ReadFull(sr.r, sr.buf); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("sflow: framed datagram cut short: %w", ErrTruncated)
		}
		return fmt.Errorf("sflow: reading framed datagram: %w", err)
	}
	return Decode(sr.buf, d)
}
