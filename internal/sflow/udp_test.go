package sflow

import (
	"sync"
	"testing"
	"time"
)

func TestUDPExportReceive(t *testing.T) {
	recv, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	type flowKey struct {
		seq  uint32
		rate uint32
	}
	var mu sync.Mutex
	got := map[flowKey]bool{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := recv.Run(func(d *Datagram) error {
			mu.Lock()
			for i := range d.Flows {
				got[flowKey{d.Flows[i].SequenceNum, d.Flows[i].SamplingRate}] = true
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}()

	exp, err := NewExporter(recv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	const rounds = 200
	base := sampleDatagram()
	for i := 0; i < rounds; i++ {
		base.SequenceNum = uint32(i)
		base.Flows[0].SequenceNum = uint32(2 * i)
		base.Flows[1].SequenceNum = uint32(2*i + 1)
		if err := exp.Send(base); err != nil {
			t.Fatal(err)
		}
	}
	if exp.Count() != rounds {
		t.Fatalf("sent %d", exp.Count())
	}

	// UDP is lossy by design; wait briefly, then require near-complete
	// delivery on loopback.
	deadline := time.Now().Add(2 * time.Second)
	for {
		received, _ := recv.Stats()
		if received >= rounds*95/100 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	recv.Close()
	wg.Wait()

	received, malformed := recv.Stats()
	if malformed != 0 {
		t.Fatalf("%d malformed datagrams", malformed)
	}
	if received < rounds*95/100 {
		t.Fatalf("received only %d of %d datagrams", received, rounds)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) < int(received)*2 {
		t.Fatalf("flow samples lost in decode: %d keys for %d datagrams", len(got), received)
	}
}

func TestReceiverSurvivesGarbage(t *testing.T) {
	recv, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = recv.Run(func(*Datagram) error { return nil })
	}()

	exp, err := NewExporter(recv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	// Raw garbage straight onto the socket.
	if _, err := exp.conn.Write([]byte("definitely not sflow")); err != nil {
		t.Fatal(err)
	}
	if err := exp.Send(sampleDatagram()); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		received, malformed := recv.Stats()
		if (received >= 1 && malformed >= 1) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	recv.Close()
	<-done
	received, malformed := recv.Stats()
	if received < 1 || malformed < 1 {
		t.Fatalf("received=%d malformed=%d", received, malformed)
	}
}

func TestExporterRejectsOversize(t *testing.T) {
	recv, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	exp, err := NewExporter(recv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	d := sampleDatagram()
	d.Flows[0].Raw.Header = make([]byte, maxDatagramLen+1)
	if err := exp.Send(d); err == nil {
		t.Fatal("oversize datagram must be rejected")
	}
}

func TestStreamWriterRejectsOversize(t *testing.T) {
	var sink discard
	sw, err := NewStreamWriter(&sink)
	if err != nil {
		t.Fatal(err)
	}
	d := sampleDatagram()
	d.Flows[0].Raw.Header = make([]byte, maxDatagramLen+1)
	if err := sw.WriteDatagram(d); err == nil {
		t.Fatal("oversize datagram must be rejected")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
