package sflow

import (
	"context"
	"errors"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestUDPExportReceive(t *testing.T) {
	recv, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	type flowKey struct {
		seq  uint32
		rate uint32
	}
	var mu sync.Mutex
	got := map[flowKey]bool{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := recv.Run(func(d *Datagram) error {
			mu.Lock()
			for i := range d.Flows {
				got[flowKey{d.Flows[i].SequenceNum, d.Flows[i].SamplingRate}] = true
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}()

	exp, err := NewExporter(recv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	const rounds = 200
	base := sampleDatagram()
	for i := 0; i < rounds; i++ {
		base.SequenceNum = uint32(i)
		base.Flows[0].SequenceNum = uint32(2 * i)
		base.Flows[1].SequenceNum = uint32(2*i + 1)
		if err := exp.Send(base); err != nil {
			t.Fatal(err)
		}
	}
	if exp.Count() != rounds {
		t.Fatalf("sent %d", exp.Count())
	}

	// UDP is lossy by design; wait briefly, then require near-complete
	// delivery on loopback.
	deadline := time.Now().Add(2 * time.Second)
	for {
		received, _ := recv.Stats()
		if received >= rounds*95/100 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	recv.Close()
	wg.Wait()

	received, malformed := recv.Stats()
	if malformed != 0 {
		t.Fatalf("%d malformed datagrams", malformed)
	}
	if received < rounds*95/100 {
		t.Fatalf("received only %d of %d datagrams", received, rounds)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) < int(received)*2 {
		t.Fatalf("flow samples lost in decode: %d keys for %d datagrams", len(got), received)
	}
}

func TestReceiverSurvivesGarbage(t *testing.T) {
	recv, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = recv.Run(func(*Datagram) error { return nil })
	}()

	exp, err := NewExporter(recv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	// Raw garbage straight onto the socket.
	if _, err := exp.conn.Write([]byte("definitely not sflow")); err != nil {
		t.Fatal(err)
	}
	if err := exp.Send(sampleDatagram()); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		received, malformed := recv.Stats()
		if (received >= 1 && malformed >= 1) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	recv.Close()
	<-done
	received, malformed := recv.Stats()
	if received < 1 || malformed < 1 {
		t.Fatalf("received=%d malformed=%d", received, malformed)
	}
}

func TestExporterRejectsOversize(t *testing.T) {
	recv, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	exp, err := NewExporter(recv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	d := sampleDatagram()
	d.Flows[0].Raw.Header = make([]byte, maxDatagramLen+1)
	if err := exp.Send(d); err == nil {
		t.Fatal("oversize datagram must be rejected")
	}
}

func TestStreamWriterRejectsOversize(t *testing.T) {
	var sink discard
	sw, err := NewStreamWriter(&sink)
	if err != nil {
		t.Fatal(err)
	}
	d := sampleDatagram()
	d.Flows[0].Raw.Header = make([]byte, maxDatagramLen+1)
	if err := sw.WriteDatagram(d); err == nil {
		t.Fatal("oversize datagram must be rejected")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestRunContextCancelUnblocksIdleReceiver: a receiver blocked in
// ReadFrom with no traffic must notice context cancellation via its
// read-deadline liveness checks, without anyone calling Close.
func TestRunContextCancelUnblocksIdleReceiver(t *testing.T) {
	recv, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- recv.RunContext(ctx, func(*Datagram) error { return nil })
	}()
	time.Sleep(20 * time.Millisecond) // let it block in ReadFrom
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled receiver did not return within the liveness window")
	}
}

// TestCloseDuringBlockedReadIsCleanShutdown: Close racing a blocked
// ReadFrom must surface as a nil return, not an opaque net error.
func TestCloseDuringBlockedReadIsCleanShutdown(t *testing.T) {
	recv, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- recv.Run(func(*Datagram) error { return nil })
	}()
	time.Sleep(20 * time.Millisecond)
	recv.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run after Close = %v, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after Close")
	}
}

// TestReceiverTracksSequenceGaps: skipped datagram sequence numbers on
// the wire must show up in the receiver's loss estimate.
func TestReceiverTracksSequenceGaps(t *testing.T) {
	recv, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = recv.Run(func(*Datagram) error { return nil })
	}()

	exp, err := NewExporter(recv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	d := sampleDatagram()
	// Send 1..10 but skip 4 and 7: two datagrams "lost".
	sent := 0
	for seq := uint32(1); seq <= 10; seq++ {
		if seq == 4 || seq == 7 {
			continue
		}
		d.SequenceNum = seq
		if err := exp.Send(d); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got, _ := recv.Stats(); int(got) >= sent || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	recv.Close()
	<-done
	st := recv.SeqStats()
	if st.GapDatagrams != 2 {
		t.Fatalf("gap datagrams = %d, want 2 (%+v)", st.GapDatagrams, st)
	}
	if loss := recv.EstLoss(); loss < 0.1 || loss > 0.3 {
		t.Fatalf("EstLoss = %v, want ~0.2", loss)
	}
}

// TestRunQueuedDeliversAndBounds: the queued consumer must see the
// datagrams (as retainable copies) and stop cleanly on context cancel.
func TestRunQueuedDeliversAndBounds(t *testing.T) {
	recv, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const rounds = 50
	got := make(chan *Datagram, rounds)
	done := make(chan error, 1)
	go func() {
		done <- recv.RunQueued(ctx, 16, func(d *Datagram) error {
			got <- d // retained beyond the callback: must be a copy
			return nil
		})
	}()

	exp, err := NewExporter(recv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	base := sampleDatagram()
	for i := 0; i < rounds; i++ {
		base.SequenceNum = uint32(i + 1)
		if err := exp.Send(base); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond) // let the slow queue keep up
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(got) < rounds*9/10 && time.Now().After(deadline) == false {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("RunQueued = %v", err)
	}
	close(got)
	n := 0
	for d := range got {
		if len(d.Flows) != len(base.Flows) {
			t.Fatalf("queued datagram lost flows: %d", len(d.Flows))
		}
		n++
	}
	if n < rounds*9/10 {
		t.Fatalf("consumer saw %d of %d datagrams", n, rounds)
	}
}

// flakyConn fails the first write with a transient error, then behaves.
type flakyConn struct {
	net.Conn // nil; only Write/Close are called
	fails    int
	failWith error
	wrote    int
}

func (c *flakyConn) Write(p []byte) (int, error) {
	if c.fails > 0 {
		c.fails--
		return 0, &net.OpError{Op: "write", Net: "udp", Err: c.failWith}
	}
	c.wrote++
	return len(p), nil
}

func (c *flakyConn) Close() error { return nil }

func TestExporterRetriesTransientSendErrors(t *testing.T) {
	for _, transient := range []error{syscall.ENOBUFS, syscall.EINTR} {
		conn := &flakyConn{fails: 1, failWith: transient}
		exp := &Exporter{conn: conn}
		if err := exp.Send(sampleDatagram()); err != nil {
			t.Fatalf("%v: Send = %v, want retried success", transient, err)
		}
		if exp.Retries() != 1 || exp.Count() != 1 || conn.wrote != 1 {
			t.Fatalf("%v: retries=%d sent=%d wrote=%d", transient, exp.Retries(), exp.Count(), conn.wrote)
		}
	}

	// A persistent transient error still fails after the single retry.
	exp := &Exporter{conn: &flakyConn{fails: 2, failWith: syscall.ENOBUFS}}
	if err := exp.Send(sampleDatagram()); err == nil {
		t.Fatal("persistent ENOBUFS must fail after one retry")
	}

	// Non-transient errors are not retried.
	conn := &flakyConn{fails: 1, failWith: syscall.ECONNREFUSED}
	exp = &Exporter{conn: conn}
	if err := exp.Send(sampleDatagram()); err == nil {
		t.Fatal("ECONNREFUSED must fail immediately")
	}
	if exp.Retries() != 0 {
		t.Fatalf("non-transient error was retried %d times", exp.Retries())
	}
}
