// Package sflow implements encoding and decoding of sFlow version 5
// datagrams (sflow.org/sflow_version_5.txt), the measurement format the
// IXP in the paper exports from its switching fabric: every member-facing
// port samples frames at random (1 out of 16K at the IXP studied) and
// ships the first 128 bytes of each sampled frame inside a flow sample,
// alongside periodic interface counter samples.
//
// The codec is complete for the record types the study needs — flow
// samples with raw-packet-header and extended-switch records, and counter
// samples with generic interface counters — and skips unknown sample and
// record types gracefully using their length fields, as required by the
// sFlow specification.
package sflow

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the only sFlow datagram version this package speaks.
const Version = 5

// Data format identifiers: (enterprise << 12) | format. All types used
// here are in the standard enterprise (0).
const (
	sampleTypeFlow            = 1
	sampleTypeCounter         = 2
	sampleTypeExpandedFlow    = 3
	sampleTypeExpandedCounter = 4

	recordTypeRawPacketHeader = 1
	recordTypeEthernetFrame   = 2
	recordTypeIPv4            = 3
	recordTypeExtendedSwitch  = 1001

	counterTypeGenericInterface = 1
)

// HeaderProtocol values for RawPacketHeader.Protocol.
const (
	HeaderProtoEthernet = 1
	HeaderProtoIPv4     = 11
	HeaderProtoIPv6     = 12
)

// Decode errors.
var (
	ErrShortDatagram  = errors.New("sflow: datagram truncated")
	ErrBadVersion     = errors.New("sflow: unsupported datagram version")
	ErrBadAddressType = errors.New("sflow: unsupported agent address type")
)

// Datagram is one sFlow export datagram as sent by an agent (here: an
// edge switch of the IXP fabric).
type Datagram struct {
	// AgentAddr is the IPv4 management address of the exporting agent.
	AgentAddr [4]byte
	// SubAgentID distinguishes exporting processes within one agent.
	SubAgentID uint32
	// SequenceNum increments per datagram sent by this agent.
	SequenceNum uint32
	// Uptime is the agent's uptime in milliseconds.
	Uptime uint32
	// Flows and Counters hold the decoded samples, in arrival order
	// within their kind.
	Flows    []FlowSample
	Counters []CounterSample
	// SkippedSamples counts samples of unknown type that were skipped.
	SkippedSamples int
}

// FlowSample is a packet flow sample: one randomly sampled frame together
// with the sampling process state needed to scale it back up.
type FlowSample struct {
	SequenceNum uint32
	// SourceIDType/SourceIDIndex identify the sampling data source,
	// conventionally type 0 (ifIndex) and the port's interface index.
	SourceIDType  uint32
	SourceIDIndex uint32
	// SamplingRate is the configured 1-in-N rate (16384 at the IXP).
	SamplingRate uint32
	// SamplePool is the total number of frames that could have been
	// sampled since the source started.
	SamplePool uint32
	// Drops counts samples dropped due to exporter overload.
	Drops uint32
	// InputIf and OutputIf are the switch ports the frame crossed.
	InputIf, OutputIf uint32

	// Raw is the raw packet header record; present in every sample the
	// IXP exports. HasRaw guards against malformed input.
	HasRaw bool
	Raw    RawPacketHeader
	// HasSwitch indicates an extended switch record was present.
	HasSwitch bool
	Switch    ExtendedSwitch
	// SkippedRecords counts unknown flow records that were skipped.
	SkippedRecords int
}

// RawPacketHeader carries the first bytes of a sampled frame.
type RawPacketHeader struct {
	// Protocol identifies the header format (HeaderProtoEthernet here).
	Protocol uint32
	// FrameLength is the original length of the frame on the wire,
	// before snapping. Traffic volume estimates multiply this by the
	// sampling rate.
	FrameLength uint32
	// Stripped is the number of trailing bytes removed (e.g. FCS).
	Stripped uint32
	// Header holds the snapped header bytes (at most 128 at this IXP).
	Header []byte
}

// ExtendedSwitch is the extended switch data record (format 1001); the
// IXP uses the VLAN fields to tag member ports.
type ExtendedSwitch struct {
	SrcVLAN, SrcPriority uint32
	DstVLAN, DstPriority uint32
}

// CounterSample carries periodic interface counters for one data source.
type CounterSample struct {
	SequenceNum   uint32
	SourceIDType  uint32
	SourceIDIndex uint32
	// HasGeneric indicates a generic interface counters record.
	HasGeneric bool
	Generic    GenericInterfaceCounters
	// SkippedRecords counts unknown counter records that were skipped.
	SkippedRecords int
}

// GenericInterfaceCounters is counter record format 1 (a subset of
// IF-MIB), enough to cross-check sampled volume estimates against actual
// port byte counters.
type GenericInterfaceCounters struct {
	IfIndex          uint32
	IfType           uint32
	IfSpeed          uint64
	IfDirection      uint32
	IfStatus         uint32
	InOctets         uint64
	InUcastPkts      uint32
	InMulticastPkts  uint32
	InBroadcastPkts  uint32
	InDiscards       uint32
	InErrors         uint32
	InUnknownProtos  uint32
	OutOctets        uint64
	OutUcastPkts     uint32
	OutMulticastPkts uint32
	OutBroadcastPkts uint32
	OutDiscards      uint32
	OutErrors        uint32
	PromiscuousMode  uint32
}

// Clone returns a deep copy of the datagram: the Flows and Counters
// slices and every Raw.Header they point to get fresh backing arrays, so
// the copy stays valid however the original's buffers are recycled.
// Consumers that must hold a datagram beyond the producer's aliasing
// window (queued receivers, fault injectors that delay delivery) clone.
func (d *Datagram) Clone() *Datagram {
	c := *d
	if d.Flows != nil {
		c.Flows = make([]FlowSample, len(d.Flows))
		copy(c.Flows, d.Flows)
		for i := range c.Flows {
			if h := c.Flows[i].Raw.Header; h != nil {
				c.Flows[i].Raw.Header = append([]byte(nil), h...)
			}
		}
	}
	if d.Counters != nil {
		c.Counters = append([]CounterSample(nil), d.Counters...)
	}
	return &c
}

// String summarizes a datagram for logs.
func (d *Datagram) String() string {
	return fmt.Sprintf("sflow{agent=%d.%d.%d.%d seq=%d flows=%d counters=%d}",
		d.AgentAddr[0], d.AgentAddr[1], d.AgentAddr[2], d.AgentAddr[3],
		d.SequenceNum, len(d.Flows), len(d.Counters))
}

// pad4 returns n rounded up to a multiple of 4 (XDR opaque padding).
func pad4(n int) int { return (n + 3) &^ 3 }

// appendUint32 is a local alias to keep the encoder readable.
func appendUint32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

func appendUint64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
