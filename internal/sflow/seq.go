package sflow

import "sync"

// Sequence-gap loss detection. sFlow is lossy by design: agents fire
// datagrams over UDP and never retransmit, so the only way a collector
// can know what it missed is the per-agent SequenceNum every datagram
// carries. A SeqTracker folds those numbers into a loss estimate — the
// data-quality annotation the analysis pipeline attaches to its weekly
// results, in the spirit of quantifying the vantage point's own blind
// spots rather than pretending the capture is complete.

// maxSeqGap bounds a believable forward jump. A larger jump means the
// agent restarted (sequence numbers reset), not that thousands of
// datagrams vanished; counting it as loss would wreck the estimate.
const maxSeqGap = 1 << 12

// maxReorderWindow bounds a believable backward step. Network reordering
// displaces a datagram by a handful of positions; a datagram arriving
// hundreds of sequence numbers late is an agent that restarted its
// numbering (a per-week exporter reconnecting, say), and treating it as
// a reorder would both misreport the stream and wrongly reclaim real
// gaps. Restarts resync tracking to the new numbering instead.
const maxReorderWindow = 16

// SeqStats is a snapshot of a SeqTracker's accounting.
type SeqStats struct {
	// Received counts observed datagrams (including duplicates).
	Received uint64
	// GapDatagrams counts datagrams inferred lost from sequence gaps.
	GapDatagrams uint64
	// Duplicates counts datagrams whose sequence number was already
	// delivered for that agent (duplicated in flight, or a late datagram
	// arriving more than once).
	Duplicates uint64
	// Reordered counts datagrams that arrived after a successor already
	// had (their provisional gap is reclaimed when they show up).
	Reordered uint64
	// Restarts counts sequence discontinuities attributed to an agent
	// restart rather than loss.
	Restarts uint64
}

// EstLoss estimates the fraction of datagrams the stream is missing:
// gaps over the distinct datagrams the stream should have delivered.
// Duplicate deliveries add nothing to the stream's coverage — counting
// them in the denominator would deflate the estimate on duplicate-heavy
// streams — so the estimate is gaps / (received − duplicates + gaps).
// Zero when nothing was observed.
func (s SeqStats) EstLoss() float64 {
	distinct := s.Received - s.Duplicates // first arrival is never a duplicate
	total := distinct + s.GapDatagrams
	if total == 0 {
		return 0
	}
	return float64(s.GapDatagrams) / float64(total)
}

// SeqTracker tracks per-agent datagram sequence numbers and estimates
// the loss fraction of an sFlow stream. The zero value is ready to use;
// a nil *SeqTracker ignores observations and reports zero loss. Safe for
// concurrent use.
type SeqTracker struct {
	mu     sync.Mutex
	agents map[seqKey]*agentSeq
	stats  SeqStats
}

// seqKey identifies one exporting process: agents number datagrams per
// (agent address, sub-agent) pair.
type seqKey struct {
	addr [4]byte
	sub  uint32
}

// agentSeq is one exporting process's tracking state: the highest
// in-order sequence number plus a small ring of recently reclaimed
// (late-arrival) sequence numbers. The ring is what stops a late
// datagram that arrives twice from reclaiming the same provisional gap
// twice — the repeat is a duplicate, not another reorder.
type agentSeq struct {
	last      uint32
	reclaimed [maxReorderWindow]uint32
	nreclaim  uint8 // valid entries in reclaimed
	wreclaim  uint8 // next ring write slot
}

func (a *agentSeq) wasReclaimed(seq uint32) bool {
	for i := uint8(0); i < a.nreclaim; i++ {
		if a.reclaimed[i] == seq {
			return true
		}
	}
	return false
}

func (a *agentSeq) noteReclaimed(seq uint32) {
	a.reclaimed[a.wreclaim] = seq
	a.wreclaim = (a.wreclaim + 1) % maxReorderWindow
	if a.nreclaim < maxReorderWindow {
		a.nreclaim++
	}
}

// resync points the tracking at a restarted numbering; reclaim history
// from the old numbering no longer means anything.
func (a *agentSeq) resync(seq uint32) {
	a.last = seq
	a.nreclaim = 0
	a.wreclaim = 0
}

// Observe folds one datagram's sequence number into the tracker.
func (t *SeqTracker) Observe(d *Datagram) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.agents == nil {
		t.agents = make(map[seqKey]*agentSeq)
	}
	t.stats.Received++
	k := seqKey{d.AgentAddr, d.SubAgentID}
	a, seen := t.agents[k]
	if !seen {
		t.agents[k] = &agentSeq{last: d.SequenceNum}
		return
	}
	switch {
	case d.SequenceNum == a.last+1:
		a.last = d.SequenceNum
	case d.SequenceNum > a.last+1:
		gap := uint64(d.SequenceNum - a.last - 1)
		if gap > maxSeqGap {
			t.stats.Restarts++
			a.resync(d.SequenceNum)
		} else {
			t.stats.GapDatagrams += gap
			a.last = d.SequenceNum
		}
	case d.SequenceNum == a.last:
		t.stats.Duplicates++
	default:
		// An older sequence number. Within the window it is a late
		// (reordered) datagram whose absence was provisionally booked as
		// a gap — reclaim it, once: a repeat of an already-reclaimed
		// number is a duplicate delivery, and reclaiming again would
		// under-report loss. Beyond the window it is a restart to a
		// lower numbering: resync so the new stream tracks forward.
		switch {
		case a.last-d.SequenceNum > maxReorderWindow:
			t.stats.Restarts++
			a.resync(d.SequenceNum)
		case a.wasReclaimed(d.SequenceNum):
			t.stats.Duplicates++
		default:
			t.stats.Reordered++
			if t.stats.GapDatagrams > 0 {
				t.stats.GapDatagrams--
			}
			a.noteReclaimed(d.SequenceNum)
		}
	}
}

// Stats returns a snapshot of the accounting so far.
func (t *SeqTracker) Stats() SeqStats {
	if t == nil {
		return SeqStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// EstLoss is shorthand for Stats().EstLoss().
func (t *SeqTracker) EstLoss() float64 { return t.Stats().EstLoss() }
