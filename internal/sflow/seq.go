package sflow

import "sync"

// Sequence-gap loss detection. sFlow is lossy by design: agents fire
// datagrams over UDP and never retransmit, so the only way a collector
// can know what it missed is the per-agent SequenceNum every datagram
// carries. A SeqTracker folds those numbers into a loss estimate — the
// data-quality annotation the analysis pipeline attaches to its weekly
// results, in the spirit of quantifying the vantage point's own blind
// spots rather than pretending the capture is complete.

// maxSeqGap bounds a believable forward jump. A larger jump means the
// agent restarted (sequence numbers reset), not that thousands of
// datagrams vanished; counting it as loss would wreck the estimate.
const maxSeqGap = 1 << 12

// maxReorderWindow bounds a believable backward step. Network reordering
// displaces a datagram by a handful of positions; a datagram arriving
// hundreds of sequence numbers late is an agent that restarted its
// numbering (a per-week exporter reconnecting, say), and treating it as
// a reorder would both misreport the stream and wrongly reclaim real
// gaps. Restarts resync tracking to the new numbering instead.
const maxReorderWindow = 16

// SeqStats is a snapshot of a SeqTracker's accounting.
type SeqStats struct {
	// Received counts observed datagrams (including duplicates).
	Received uint64
	// GapDatagrams counts datagrams inferred lost from sequence gaps.
	GapDatagrams uint64
	// Duplicates counts datagrams whose sequence number repeated the
	// previous one for that agent (duplicated in flight).
	Duplicates uint64
	// Reordered counts datagrams that arrived after a successor already
	// had (their provisional gap is reclaimed when they show up).
	Reordered uint64
	// Restarts counts sequence discontinuities attributed to an agent
	// restart rather than loss.
	Restarts uint64
}

// EstLoss estimates the fraction of datagrams the stream is missing:
// gaps / (received + gaps). Zero when nothing was observed.
func (s SeqStats) EstLoss() float64 {
	total := s.Received + s.GapDatagrams
	if total == 0 {
		return 0
	}
	return float64(s.GapDatagrams) / float64(total)
}

// SeqTracker tracks per-agent datagram sequence numbers and estimates
// the loss fraction of an sFlow stream. The zero value is ready to use;
// a nil *SeqTracker ignores observations and reports zero loss. Safe for
// concurrent use.
type SeqTracker struct {
	mu    sync.Mutex
	last  map[seqKey]uint32
	stats SeqStats
}

// seqKey identifies one exporting process: agents number datagrams per
// (agent address, sub-agent) pair.
type seqKey struct {
	addr [4]byte
	sub  uint32
}

// Observe folds one datagram's sequence number into the tracker.
func (t *SeqTracker) Observe(d *Datagram) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.last == nil {
		t.last = make(map[seqKey]uint32)
	}
	t.stats.Received++
	k := seqKey{d.AgentAddr, d.SubAgentID}
	last, seen := t.last[k]
	if !seen {
		t.last[k] = d.SequenceNum
		return
	}
	switch {
	case d.SequenceNum == last+1:
		t.last[k] = d.SequenceNum
	case d.SequenceNum > last+1:
		gap := uint64(d.SequenceNum - last - 1)
		if gap > maxSeqGap {
			t.stats.Restarts++
		} else {
			t.stats.GapDatagrams += gap
		}
		t.last[k] = d.SequenceNum
	case d.SequenceNum == last:
		t.stats.Duplicates++
	default:
		// An older sequence number. Within the window it is a late
		// (reordered) datagram whose absence was provisionally booked as
		// a gap — reclaim it. Beyond the window it is a restart to a
		// lower numbering: resync so the new stream tracks forward.
		if last-d.SequenceNum <= maxReorderWindow {
			t.stats.Reordered++
			if t.stats.GapDatagrams > 0 {
				t.stats.GapDatagrams--
			}
		} else {
			t.stats.Restarts++
			t.last[k] = d.SequenceNum
		}
	}
}

// Stats returns a snapshot of the accounting so far.
func (t *SeqTracker) Stats() SeqStats {
	if t == nil {
		return SeqStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// EstLoss is shorthand for Stats().EstLoss().
func (t *SeqTracker) EstLoss() float64 { return t.Stats().EstLoss() }
