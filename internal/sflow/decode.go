package sflow

import (
	"encoding/binary"
	"fmt"
)

// reader is a bounds-checked big-endian cursor over a datagram.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("sflow: %s at offset %d: %w", what, r.off, ErrShortDatagram)
	}
}

func (r *reader) uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.data) {
		r.fail("uint32")
		return 0
	}
	v := binary.BigEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *reader) uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail("uint64")
		return 0
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

// bytes returns n bytes (no padding) aliasing the input buffer.
func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.fail("bytes")
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) skip(n int) {
	if r.err != nil {
		return
	}
	if n < 0 || r.off+n > len(r.data) {
		r.fail("skip")
		return
	}
	r.off += n
}

// Decode parses one sFlow v5 datagram. Header bytes in flow samples alias
// data; copy them if data is reused. Unknown sample and record types are
// skipped and counted, per the sFlow robustness rules.
func Decode(data []byte, d *Datagram) error {
	*d = Datagram{Flows: d.Flows[:0], Counters: d.Counters[:0]}
	r := reader{data: data}

	if v := r.uint32(); r.err == nil && v != Version {
		return fmt.Errorf("%w: got %d", ErrBadVersion, v)
	}
	if at := r.uint32(); r.err == nil && at != 1 {
		return fmt.Errorf("%w: got %d", ErrBadAddressType, at)
	}
	copy(d.AgentAddr[:], r.bytes(4))
	d.SubAgentID = r.uint32()
	d.SequenceNum = r.uint32()
	d.Uptime = r.uint32()
	n := r.uint32()
	if r.err != nil {
		return r.err
	}
	for i := uint32(0); i < n; i++ {
		sampleType := r.uint32()
		sampleLen := int(r.uint32())
		if r.err != nil {
			return r.err
		}
		body := r.bytes(sampleLen)
		if r.err != nil {
			return r.err
		}
		switch sampleType {
		case sampleTypeFlow:
			var fs FlowSample
			if err := decodeFlowSample(body, &fs); err != nil {
				return err
			}
			d.Flows = append(d.Flows, fs)
		case sampleTypeCounter:
			var cs CounterSample
			if err := decodeCounterSample(body, &cs); err != nil {
				return err
			}
			d.Counters = append(d.Counters, cs)
		default:
			d.SkippedSamples++
		}
	}
	return nil
}

func decodeFlowSample(body []byte, fs *FlowSample) error {
	r := reader{data: body}
	fs.SequenceNum = r.uint32()
	src := r.uint32()
	fs.SourceIDType = src >> 24
	fs.SourceIDIndex = src & 0xffffff
	fs.SamplingRate = r.uint32()
	fs.SamplePool = r.uint32()
	fs.Drops = r.uint32()
	fs.InputIf = r.uint32()
	fs.OutputIf = r.uint32()
	nrec := r.uint32()
	if r.err != nil {
		return r.err
	}
	for i := uint32(0); i < nrec; i++ {
		recType := r.uint32()
		recLen := int(r.uint32())
		if r.err != nil {
			return r.err
		}
		recBody := r.bytes(recLen)
		if r.err != nil {
			return r.err
		}
		switch recType {
		case recordTypeRawPacketHeader:
			rr := reader{data: recBody}
			fs.Raw.Protocol = rr.uint32()
			fs.Raw.FrameLength = rr.uint32()
			fs.Raw.Stripped = rr.uint32()
			hlen := int(rr.uint32())
			fs.Raw.Header = rr.bytes(hlen)
			if rr.err != nil {
				return rr.err
			}
			fs.HasRaw = true
		case recordTypeExtendedSwitch:
			rr := reader{data: recBody}
			fs.Switch.SrcVLAN = rr.uint32()
			fs.Switch.SrcPriority = rr.uint32()
			fs.Switch.DstVLAN = rr.uint32()
			fs.Switch.DstPriority = rr.uint32()
			if rr.err != nil {
				return rr.err
			}
			fs.HasSwitch = true
		default:
			fs.SkippedRecords++
		}
	}
	return nil
}

func decodeCounterSample(body []byte, cs *CounterSample) error {
	r := reader{data: body}
	cs.SequenceNum = r.uint32()
	src := r.uint32()
	cs.SourceIDType = src >> 24
	cs.SourceIDIndex = src & 0xffffff
	nrec := r.uint32()
	if r.err != nil {
		return r.err
	}
	for i := uint32(0); i < nrec; i++ {
		recType := r.uint32()
		recLen := int(r.uint32())
		if r.err != nil {
			return r.err
		}
		recBody := r.bytes(recLen)
		if r.err != nil {
			return r.err
		}
		switch recType {
		case counterTypeGenericInterface:
			rr := reader{data: recBody}
			g := &cs.Generic
			g.IfIndex = rr.uint32()
			g.IfType = rr.uint32()
			g.IfSpeed = rr.uint64()
			g.IfDirection = rr.uint32()
			g.IfStatus = rr.uint32()
			g.InOctets = rr.uint64()
			g.InUcastPkts = rr.uint32()
			g.InMulticastPkts = rr.uint32()
			g.InBroadcastPkts = rr.uint32()
			g.InDiscards = rr.uint32()
			g.InErrors = rr.uint32()
			g.InUnknownProtos = rr.uint32()
			g.OutOctets = rr.uint64()
			g.OutUcastPkts = rr.uint32()
			g.OutMulticastPkts = rr.uint32()
			g.OutBroadcastPkts = rr.uint32()
			g.OutDiscards = rr.uint32()
			g.OutErrors = rr.uint32()
			g.PromiscuousMode = rr.uint32()
			if rr.err != nil {
				return rr.err
			}
			cs.HasGeneric = true
		default:
			cs.SkippedRecords++
		}
	}
	return nil
}
