package sflow

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

// blockTestDatagram builds the i-th of a deterministic, varied sequence
// of datagrams: different agents, growing headers, interleaved counter
// samples — enough shape to exercise framing, padding and compression.
func blockTestDatagram(i int) *Datagram {
	hdr := make([]byte, 20+(i%97))
	for j := range hdr {
		hdr[j] = byte(i + j*7)
	}
	d := &Datagram{
		AgentAddr:   [4]byte{10, 0, byte(i % 5), byte(i % 251)},
		SubAgentID:  uint32(i % 3),
		SequenceNum: uint32(i + 1),
		Uptime:      uint32(1000 * i),
		Flows: []FlowSample{{
			SequenceNum:   uint32(i),
			SourceIDIndex: uint32(i % 64),
			SamplingRate:  16384,
			SamplePool:    uint32(i) * 16384,
			InputIf:       uint32(i % 48),
			OutputIf:      uint32((i + 7) % 48),
			HasRaw:        true,
			Raw: RawPacketHeader{
				Protocol:    HeaderProtoEthernet,
				FrameLength: uint32(64 + i%1450),
				Header:      hdr,
			},
			HasSwitch: true,
			Switch:    ExtendedSwitch{SrcVLAN: uint32(i % 7), DstVLAN: uint32(i % 11)},
		}},
	}
	if i%13 == 0 {
		d.Counters = []CounterSample{{
			SequenceNum:   uint32(i / 13),
			SourceIDIndex: uint32(i % 64),
			HasGeneric:    true,
			Generic:       GenericInterfaceCounters{IfIndex: uint32(i % 64), InOctets: uint64(i) * 999},
		}}
	}
	return d
}

// writeBlockCapture writes n deterministic datagrams into a v2 container,
// sealing a block every flushEvery datagrams (0 = only at target size),
// and returns the file bytes plus every datagram's encoding in order.
func writeBlockCapture(t *testing.T, n int, compress bool, flushEvery int) ([]byte, [][]byte) {
	t.Helper()
	var buf bytes.Buffer
	bw, err := NewBlockWriter(&buf, compress)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < n; i++ {
		d := blockTestDatagram(i)
		want = append(want, d.AppendEncode(nil))
		if err := bw.WriteDatagram(d); err != nil {
			t.Fatal(err)
		}
		if flushEvery > 0 && (i+1)%flushEvery == 0 {
			if err := bw.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if bw.Count() != n {
		t.Fatalf("writer count = %d, want %d", bw.Count(), n)
	}
	return buf.Bytes(), want
}

// drainEncoded reads r to its end, returning each datagram re-encoded
// (the decoded form aliases reader buffers, so encoding snapshots it).
func drainEncoded(r DatagramReader) ([][]byte, error) {
	var got [][]byte
	var d Datagram
	for {
		err := r.Next(&d)
		if err == io.EOF {
			return got, nil
		}
		if err != nil {
			return got, err
		}
		got = append(got, d.AppendEncode(nil))
	}
}

func mustEqualEncodings(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d datagrams, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("datagram %d round-trip mismatch", i)
		}
	}
}

func TestBlockRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			data, want := writeBlockCapture(t, 500, compress, 37)
			br, err := NewBlockReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			got, err := drainEncoded(br)
			if err != nil {
				t.Fatal(err)
			}
			mustEqualEncodings(t, got, want)
			st := br.Stats()
			if st.Datagrams != 500 || st.Blocks < 2 || st.CorruptBlocks != 0 {
				t.Fatalf("stats = %+v", st)
			}
			if !st.FooterVerified || st.Truncated {
				t.Fatalf("footer not verified or truncated: %+v", st)
			}
			if compress && st.DiskBytes >= st.RawBytes {
				t.Fatalf("compression did not shrink redundant payloads: %+v", st)
			}
		})
	}
}

func TestBlockParallelMatchesSerial(t *testing.T) {
	for _, compress := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("compress=%v/workers=%d", compress, workers), func(t *testing.T) {
				data, want := writeBlockCapture(t, 700, compress, 53)
				pr, err := NewParallelBlockReader(bytes.NewReader(data), workers)
				if err != nil {
					t.Fatal(err)
				}
				defer pr.Close()
				got, err := drainEncoded(pr)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualEncodings(t, got, want)
				st := pr.Stats()
				if st.Datagrams != 700 || st.CorruptBlocks != 0 || !st.FooterVerified {
					t.Fatalf("stats = %+v", st)
				}
			})
		}
	}
}

// TestBlockTruncationSweep cuts a capture at every stride-th byte and
// checks the contract at each cut: the reader must deliver a strict
// prefix of the original datagrams and then either finish cleanly with
// the Truncated flag, or fail with an error wrapping ErrTruncated —
// never garbage, never a panic.
func TestBlockTruncationSweep(t *testing.T) {
	data, want := writeBlockCapture(t, 300, true, 41)
	for cut := 8; cut < len(data); cut += 397 {
		check := func(name string, r DatagramReader, stats func() BlockStats) {
			got, err := drainEncoded(r)
			if err != nil && !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut=%d %s: unexpected error %v", cut, name, err)
			}
			if len(got) > len(want) {
				t.Fatalf("cut=%d %s: decoded %d datagrams from a %d-datagram capture", cut, name, len(got), len(want))
			}
			mustEqualEncodings(t, got, want[:len(got)])
			if err == nil && !stats().Truncated {
				t.Fatalf("cut=%d %s: clean EOF on a cut file without Truncated", cut, name)
			}
		}
		br, err := NewBlockReader(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		check("serial", br, br.Stats)
		pr, err := NewParallelBlockReader(bytes.NewReader(data[:cut]), 2)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		check("parallel", pr, pr.Stats)
		pr.Close()
	}
}

// TestBlockTruncationAtBoundary removes exactly the footer: everything
// written before the crash must decode, with only the Truncated flag
// raised.
func TestBlockTruncationAtBoundary(t *testing.T) {
	data, want := writeBlockCapture(t, 200, false, 29)
	// Find the footer start from the self-describing tail.
	footLen := int(data[len(data)-12])<<24 | int(data[len(data)-11])<<16 |
		int(data[len(data)-10])<<8 | int(data[len(data)-9])
	cut := len(data) - 12 - footLen
	br, err := NewBlockReader(bytes.NewReader(data[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	got, err := drainEncoded(br)
	if err != nil {
		t.Fatalf("boundary truncation must be a clean degrade, got %v", err)
	}
	mustEqualEncodings(t, got, want)
	st := br.Stats()
	if !st.Truncated || st.FooterVerified {
		t.Fatalf("stats = %+v, want Truncated without FooterVerified", st)
	}
}

// TestBlockBitFlipQuarantine flips a single payload bit: the checksum
// must catch it, the block must be quarantined (not decoded as garbage),
// and every other block must still come through.
func TestBlockBitFlipQuarantine(t *testing.T) {
	data, want := writeBlockCapture(t, 400, true, 67)
	flipped := append([]byte(nil), data...)
	flipped[8+blockHeaderLen+11] ^= 0x10 // inside the first block's payload

	for _, mode := range []string{"serial", "parallel"} {
		var r DatagramReader
		var stats func() BlockStats
		switch mode {
		case "serial":
			br, err := NewBlockReader(bytes.NewReader(flipped))
			if err != nil {
				t.Fatal(err)
			}
			r, stats = br, br.Stats
		case "parallel":
			pr, err := NewParallelBlockReader(bytes.NewReader(flipped), 3)
			if err != nil {
				t.Fatal(err)
			}
			defer pr.Close()
			r, stats = pr, pr.Stats
		}
		got, err := drainEncoded(r)
		if err != nil {
			t.Fatalf("%s: corrupt block must quarantine, not fail: %v", mode, err)
		}
		st := stats()
		if st.CorruptBlocks != 1 {
			t.Fatalf("%s: corrupt blocks = %d, want 1 (%+v)", mode, st.CorruptBlocks, st)
		}
		if st.QuarantinedDatagrams == 0 {
			t.Fatalf("%s: no datagrams quarantined (%+v)", mode, st)
		}
		// The surviving datagrams are exactly the tail after the first
		// (quarantined) block.
		lost := len(want) - len(got)
		if lost <= 0 {
			t.Fatalf("%s: nothing lost despite a corrupt block", mode)
		}
		mustEqualEncodings(t, got, want[lost:])
	}
}

// TestBlockHeaderFlipIndexedResync damages a block *header* length field
// — fatal to a sequential scan, which loses framing — and checks the
// footer-indexed parallel reader still quarantines just that block and
// resyncs at the next indexed offset.
func TestBlockHeaderFlipIndexedResync(t *testing.T) {
	data, want := writeBlockCapture(t, 400, false, 67)
	flipped := append([]byte(nil), data...)
	flipped[8+20] ^= 0x40 // first block's diskLen field

	pr, err := NewParallelBlockReader(bytes.NewReader(flipped), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	got, err := drainEncoded(pr)
	if err != nil {
		t.Fatalf("indexed reader must resync past a damaged header: %v", err)
	}
	st := pr.Stats()
	if !st.FooterVerified || st.CorruptBlocks != 1 || st.QuarantinedDatagrams != 67 {
		t.Fatalf("stats = %+v, want verified footer, 1 corrupt block, 67 quarantined", st)
	}
	mustEqualEncodings(t, got, want[len(want)-len(got):])
}

func TestOpenReaderBothFormats(t *testing.T) {
	// v1 container through the sniffing opener.
	var v1 bytes.Buffer
	sw, err := NewStreamWriter(&v1)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		d := blockTestDatagram(i)
		want = append(want, d.AppendEncode(nil))
		if err := sw.WriteDatagram(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	r1, err := OpenReader(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r1.(*StreamReader); !ok {
		t.Fatalf("v1 bytes opened as %T", r1)
	}
	got, err := drainEncoded(r1)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualEncodings(t, got, want)

	// v2 container through the same opener.
	v2, want2 := writeBlockCapture(t, 50, true, 0)
	r2, err := OpenReader(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r2.(*BlockReader); !ok {
		t.Fatalf("v2 bytes opened as %T", r2)
	}
	got2, err := drainEncoded(r2)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualEncodings(t, got2, want2)

	if _, err := OpenReader(bytes.NewReader([]byte("NOTACAPTstuff"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("garbage magic: %v", err)
	}
}

func TestCaptureFormat(t *testing.T) {
	if got := CaptureFormat(streamMagic); got != 1 {
		t.Fatalf("v1 magic = %d", got)
	}
	if got := CaptureFormat(blockMagic); got != 2 {
		t.Fatalf("v2 magic = %d", got)
	}
	if got := CaptureFormat([8]byte{1, 2, 3}); got != 0 {
		t.Fatalf("junk magic = %d", got)
	}
}

func TestBlockWriterEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBlockWriter(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	br, err := NewBlockReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var d Datagram
	if err := br.Next(&d); err != io.EOF {
		t.Fatalf("empty capture Next = %v, want EOF", err)
	}
	if st := br.Stats(); !st.FooterVerified || st.Truncated || st.Datagrams != 0 {
		t.Fatalf("stats = %+v", st)
	}
	pr, err := NewParallelBlockReader(bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	if err := pr.Next(&d); err != io.EOF {
		t.Fatalf("empty capture parallel Next = %v, want EOF", err)
	}
}

func TestStreamReaderTruncatedTyped(t *testing.T) {
	var v1 bytes.Buffer
	sw, err := NewStreamWriter(&v1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := sw.WriteDatagram(blockTestDatagram(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	data := v1.Bytes()
	for _, cut := range []int{len(data) - 3, len(data) / 2, 10} {
		sr, err := NewStreamReader(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		_, err = drainEncoded(sr)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestParallelBlockReaderClose(t *testing.T) {
	data, _ := writeBlockCapture(t, 300, false, 31)
	pr, err := NewParallelBlockReader(bytes.NewReader(data), 2)
	if err != nil {
		t.Fatal(err)
	}
	var d Datagram
	if err := pr.Next(&d); err != nil {
		t.Fatal(err)
	}
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	// Next after Close terminates rather than hanging on a dead pool.
	for i := 0; i < 10_000; i++ {
		if err := pr.Next(&d); err != nil {
			return
		}
	}
	t.Fatal("Next kept succeeding after Close")
}
