package sflow

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleDatagram() *Datagram {
	return &Datagram{
		AgentAddr:   [4]byte{10, 0, 0, 1},
		SubAgentID:  3,
		SequenceNum: 77,
		Uptime:      123456,
		Flows: []FlowSample{
			{
				SequenceNum:   9,
				SourceIDIndex: 42,
				SamplingRate:  16384,
				SamplePool:    9 * 16384,
				InputIf:       42,
				OutputIf:      57,
				HasRaw:        true,
				Raw: RawPacketHeader{
					Protocol:    HeaderProtoEthernet,
					FrameLength: 1514,
					Header:      []byte("0123456789abcdefXYZ"), // odd length: exercises padding
				},
				HasSwitch: true,
				Switch:    ExtendedSwitch{SrcVLAN: 100, DstVLAN: 200},
			},
			{
				SequenceNum:   10,
				SourceIDIndex: 42,
				SamplingRate:  16384,
				HasRaw:        true,
				Raw: RawPacketHeader{
					Protocol:    HeaderProtoEthernet,
					FrameLength: 64,
					Header:      []byte{1, 2, 3, 4},
				},
			},
		},
		Counters: []CounterSample{
			{
				SequenceNum:   5,
				SourceIDIndex: 42,
				HasGeneric:    true,
				Generic: GenericInterfaceCounters{
					IfIndex: 42, IfSpeed: 10_000_000_000,
					InOctets: 1 << 40, OutOctets: 1 << 41,
					InUcastPkts: 12345, OutUcastPkts: 54321,
				},
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	d := sampleDatagram()
	wire := d.AppendEncode(nil)

	var got Datagram
	if err := Decode(wire, &got); err != nil {
		t.Fatal(err)
	}
	if got.AgentAddr != d.AgentAddr || got.SubAgentID != 3 || got.SequenceNum != 77 || got.Uptime != 123456 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Flows) != 2 || len(got.Counters) != 1 {
		t.Fatalf("sample counts: %d flows %d counters", len(got.Flows), len(got.Counters))
	}
	f := got.Flows[0]
	if f.SamplingRate != 16384 || f.InputIf != 42 || f.OutputIf != 57 {
		t.Fatalf("flow sample mismatch: %+v", f)
	}
	if !f.HasRaw || f.Raw.FrameLength != 1514 || !bytes.Equal(f.Raw.Header, []byte("0123456789abcdefXYZ")) {
		t.Fatalf("raw record mismatch: %+v", f.Raw)
	}
	if !f.HasSwitch || f.Switch.SrcVLAN != 100 || f.Switch.DstVLAN != 200 {
		t.Fatalf("switch record mismatch: %+v", f.Switch)
	}
	if !reflect.DeepEqual(got.Counters[0].Generic, d.Counters[0].Generic) {
		t.Fatalf("counters mismatch:\n got %+v\nwant %+v", got.Counters[0].Generic, d.Counters[0].Generic)
	}
}

func TestEncodeIsPadded(t *testing.T) {
	d := sampleDatagram()
	wire := d.AppendEncode(nil)
	if len(wire)%4 != 0 {
		t.Fatalf("encoded length %d is not 4-byte aligned", len(wire))
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	d := sampleDatagram()
	wire := d.AppendEncode(nil)
	binary.BigEndian.PutUint32(wire, 4)
	var got Datagram
	if err := Decode(wire, &got); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

func TestDecodeRejectsBadAddressType(t *testing.T) {
	d := sampleDatagram()
	wire := d.AppendEncode(nil)
	binary.BigEndian.PutUint32(wire[4:], 2) // IPv6 agent address: unsupported
	var got Datagram
	if err := Decode(wire, &got); err == nil {
		t.Fatal("want address type error")
	}
}

func TestDecodeSkipsUnknownSampleType(t *testing.T) {
	d := &Datagram{AgentAddr: [4]byte{1, 2, 3, 4}}
	wire := d.AppendEncode(nil)
	// Patch sample count to 1 and append an unknown (type 999) sample.
	binary.BigEndian.PutUint32(wire[24:], 1)
	wire = appendUint32(wire, 999)
	wire = appendUint32(wire, 8)
	wire = appendUint32(wire, 0xdead)
	wire = appendUint32(wire, 0xbeef)

	var got Datagram
	if err := Decode(wire, &got); err != nil {
		t.Fatal(err)
	}
	if got.SkippedSamples != 1 {
		t.Fatalf("SkippedSamples = %d, want 1", got.SkippedSamples)
	}
}

func TestDecodeSkipsUnknownFlowRecord(t *testing.T) {
	// Hand-encode a flow sample with one unknown record type.
	var body []byte
	body = appendUint32(body, 1)     // seq
	body = appendUint32(body, 7)     // source id
	body = appendUint32(body, 16384) // rate
	body = appendUint32(body, 0)     // pool
	body = appendUint32(body, 0)     // drops
	body = appendUint32(body, 7)     // in if
	body = appendUint32(body, 9)     // out if
	body = appendUint32(body, 1)     // record count
	body = appendUint32(body, 4242)  // unknown record type
	body = appendUint32(body, 4)
	body = appendUint32(body, 0xffffffff)

	var wire []byte
	wire = appendUint32(wire, Version)
	wire = appendUint32(wire, 1)
	wire = append(wire, 10, 0, 0, 9)
	wire = appendUint32(wire, 0) // sub agent
	wire = appendUint32(wire, 0) // seq
	wire = appendUint32(wire, 0) // uptime
	wire = appendUint32(wire, 1) // one sample
	wire = appendUint32(wire, sampleTypeFlow)
	wire = appendUint32(wire, uint32(len(body)))
	wire = append(wire, body...)

	var got Datagram
	if err := Decode(wire, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Flows) != 1 || got.Flows[0].SkippedRecords != 1 || got.Flows[0].HasRaw {
		t.Fatalf("unexpected decode: %+v", got.Flows)
	}
}

// TestDecodeTruncationNeverPanics truncates a valid datagram at every
// byte offset; Decode must fail cleanly or succeed, never panic.
func TestDecodeTruncationNeverPanics(t *testing.T) {
	wire := sampleDatagram().AppendEncode(nil)
	var got Datagram
	for n := 0; n < len(wire); n++ {
		if err := Decode(wire[:n], &got); err == nil {
			t.Fatalf("truncated datagram of %d bytes decoded successfully", n)
		}
	}
}

// TestDecodeRandomBytesNeverPanics throws fuzz-like garbage at Decode.
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var got Datagram
	for i := 0; i < 3000; i++ {
		buf := make([]byte, rng.Intn(400))
		rng.Read(buf)
		_ = Decode(buf, &got)
	}
	// Also corrupt valid datagrams in-place.
	base := sampleDatagram().AppendEncode(nil)
	for i := 0; i < 3000; i++ {
		buf := append([]byte(nil), base...)
		buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
		_ = Decode(buf, &got)
	}
}

// TestQuickFlowSampleRoundTrip checks that arbitrary flow sample fields
// survive the round trip.
func TestQuickFlowSampleRoundTrip(t *testing.T) {
	prop := func(seq, pool, drops, inIf, outIf uint32, rate uint32, hdr []byte) bool {
		if len(hdr) > 128 {
			hdr = hdr[:128]
		}
		d := &Datagram{
			AgentAddr: [4]byte{192, 0, 2, 1},
			Flows: []FlowSample{{
				SequenceNum: seq, SamplingRate: rate, SamplePool: pool,
				Drops: drops, InputIf: inIf, OutputIf: outIf,
				SourceIDIndex: inIf & 0xffffff,
				HasRaw:        true,
				Raw:           RawPacketHeader{Protocol: HeaderProtoEthernet, FrameLength: 1000, Header: hdr},
			}},
		}
		wire := d.AppendEncode(nil)
		var got Datagram
		if err := Decode(wire, &got); err != nil || len(got.Flows) != 1 {
			return false
		}
		f := got.Flows[0]
		return f.SequenceNum == seq && f.SamplingRate == rate && f.SamplePool == pool &&
			f.Drops == drops && f.InputIf == inIf && f.OutputIf == outIf &&
			f.SourceIDIndex == inIf&0xffffff && bytes.Equal(f.Raw.Header, hdr)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleDatagram()
	const rounds = 17
	for i := 0; i < rounds; i++ {
		want.SequenceNum = uint32(i)
		if err := sw.WriteDatagram(want); err != nil {
			t.Fatal(err)
		}
	}
	if sw.Count() != rounds {
		t.Fatalf("Count = %d", sw.Count())
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}

	sr, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Datagram
	for i := 0; i < rounds; i++ {
		if err := sr.Next(&got); err != nil {
			t.Fatalf("datagram %d: %v", i, err)
		}
		if got.SequenceNum != uint32(i) || len(got.Flows) != 2 {
			t.Fatalf("datagram %d content mismatch: %+v", i, got)
		}
	}
	if err := sr.Next(&got); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestStreamReaderBadMagic(t *testing.T) {
	if _, err := NewStreamReader(strings.NewReader("NOTMAGIC")); err != ErrBadMagic {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	if _, err := NewStreamReader(strings.NewReader("xx")); err == nil {
		t.Fatal("short header must fail")
	}
}

func TestDatagramString(t *testing.T) {
	s := sampleDatagram().String()
	if !strings.Contains(s, "agent=10.0.0.1") || !strings.Contains(s, "flows=2") {
		t.Fatalf("String() = %q", s)
	}
}

func TestDecodeReusesSlices(t *testing.T) {
	wire := sampleDatagram().AppendEncode(nil)
	var d Datagram
	if err := Decode(wire, &d); err != nil {
		t.Fatal(err)
	}
	first := &d.Flows[0]
	_ = first
	// Decoding again into the same value must not grow unboundedly.
	for i := 0; i < 100; i++ {
		if err := Decode(wire, &d); err != nil {
			t.Fatal(err)
		}
	}
	if len(d.Flows) != 2 || len(d.Counters) != 1 {
		t.Fatalf("reuse broke decode: %d flows %d counters", len(d.Flows), len(d.Counters))
	}
}

func BenchmarkEncodeDatagram(b *testing.B) {
	d := sampleDatagram()
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = d.AppendEncode(buf[:0])
	}
}

func BenchmarkDecodeDatagram(b *testing.B) {
	wire := sampleDatagram().AppendEncode(nil)
	var d Datagram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Decode(wire, &d); err != nil {
			b.Fatal(err)
		}
	}
}
