package sflow

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"syscall"
	"time"
)

// sFlow's native transport is UDP (conventionally port 6343): agents
// fire datagrams at a collector, losses are tolerated by design. The
// Exporter and Receiver below implement that path over the standard
// library's net package, so a generated campaign can be shipped across a
// real socket into the analysis pipeline.

// DefaultPort is the IANA-assigned sFlow collector port.
const DefaultPort = 6343

// sendRetryBackoff is how long Send waits before its single retry of a
// transiently failed transmit.
const sendRetryBackoff = time.Millisecond

// Exporter ships encoded datagrams to a collector address over UDP.
// It is not safe for concurrent use.
type Exporter struct {
	conn    net.Conn
	buf     []byte
	sent    int
	retries int
}

// NewExporter dials the collector. addr is "host:port".
func NewExporter(addr string) (*Exporter, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("sflow: dialing collector: %w", err)
	}
	return &Exporter{conn: conn}, nil
}

// transientSendError reports whether a transmit failure is worth one
// retry: the kernel ran out of socket buffers (ENOBUFS/ENOMEM, common
// under export bursts) or the write was interrupted by a signal
// (EINTR), as opposed to a dead socket or an unreachable peer.
func transientSendError(err error) bool {
	return errors.Is(err, syscall.ENOBUFS) ||
		errors.Is(err, syscall.ENOMEM) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN)
}

// Send encodes and transmits one datagram. A transient transmit failure
// (buffer exhaustion, interrupted syscall) is retried once after a tiny
// backoff instead of failing the whole export — agents drop, they do
// not abort.
func (e *Exporter) Send(d *Datagram) error {
	e.buf = d.AppendEncode(e.buf[:0])
	if len(e.buf) > maxDatagramLen {
		return fmt.Errorf("sflow: datagram of %d bytes exceeds transport limit", len(e.buf))
	}
	if _, err := e.conn.Write(e.buf); err != nil {
		if !transientSendError(err) {
			return fmt.Errorf("sflow: sending datagram: %w", err)
		}
		time.Sleep(sendRetryBackoff)
		e.retries++
		if _, err := e.conn.Write(e.buf); err != nil {
			return fmt.Errorf("sflow: sending datagram (after retry): %w", err)
		}
	}
	e.sent++
	return nil
}

// Count returns the number of datagrams sent.
func (e *Exporter) Count() int { return e.sent }

// Retries returns how many transmits needed the transient-error retry.
func (e *Exporter) Retries() int { return e.retries }

// Close releases the socket.
func (e *Exporter) Close() error { return e.conn.Close() }

// livenessInterval is the read-deadline granularity of the receiver's
// loop: how often a blocked ReadFrom wakes up to notice a cancelled
// context even when no traffic arrives.
const livenessInterval = 250 * time.Millisecond

// Receiver consumes sFlow datagrams from a UDP socket. Decode failures
// are counted and skipped, never fatal — a collector must survive
// malformed input from the network. Every decoded datagram additionally
// feeds a sequence tracker, so the receiver can estimate how much of the
// stream it lost (socket overruns, network drops).
type Receiver struct {
	pc           net.PacketConn
	received     atomic.Int64
	malformed    atomic.Int64
	queueDropped atomic.Int64
	seq          SeqTracker
}

// NewReceiver binds a UDP listening socket. addr like "127.0.0.1:0"
// (port 0 picks a free port; see Addr).
func NewReceiver(addr string) (*Receiver, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("sflow: binding collector socket: %w", err)
	}
	// Collectors face bursty agents; a deep socket buffer absorbs the
	// bursts the read loop cannot keep up with instantaneously.
	if uc, ok := pc.(*net.UDPConn); ok {
		_ = uc.SetReadBuffer(4 << 20)
	}
	return &Receiver{pc: pc}, nil
}

// Addr returns the bound address (useful after binding port 0).
func (r *Receiver) Addr() net.Addr { return r.pc.LocalAddr() }

// Run reads datagrams until the socket is closed (call Close from
// another goroutine to stop) and invokes fn for each decoded datagram.
// The datagram passed to fn aliases an internal buffer and is only
// valid during the call. A non-nil error from fn stops the loop.
func (r *Receiver) Run(fn func(*Datagram) error) error {
	return r.RunContext(context.Background(), fn)
}

// RunContext is Run with cancellation: the read loop sets periodic read
// deadlines as a liveness check, so a cancelled context stops a receiver
// that is blocked waiting for traffic within livenessInterval even if
// nobody calls Close. Close during a blocked read still works and is
// reported as a clean shutdown (nil), not an opaque net error; context
// cancellation returns ctx.Err().
func (r *Receiver) RunContext(ctx context.Context, fn func(*Datagram) error) error {
	buf := make([]byte, 1<<16)
	var d Datagram
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		_ = r.pc.SetReadDeadline(time.Now().Add(livenessInterval))
		n, _, err := r.pc.ReadFrom(buf)
		if err != nil {
			switch {
			case errors.Is(err, os.ErrDeadlineExceeded):
				// Liveness tick: nothing arrived, recheck the context.
				continue
			case errors.Is(err, net.ErrClosed):
				// Close raced the read — a deliberate shutdown, not a
				// transport failure.
				return nil
			default:
				return fmt.Errorf("sflow: reading socket: %w", err)
			}
		}
		if err := Decode(buf[:n], &d); err != nil {
			r.malformed.Add(1)
			continue
		}
		r.received.Add(1)
		r.seq.Observe(&d)
		if err := fn(&d); err != nil {
			return err
		}
	}
}

// RunQueued is RunContext with a bounded hand-off queue between the
// socket read loop and the consumer: a dedicated goroutine reads and
// decodes as fast as the socket delivers, and fn consumes from a queue
// of at most depth datagrams. When the consumer falls behind, the oldest
// unconsumed backlog is preserved and NEW datagrams are dropped and
// counted (QueueDrops) — bounded memory and an honest loss figure
// instead of unbounded blocking back into the kernel. Queued datagrams
// are deep copies, so fn may retain them.
func (r *Receiver) RunQueued(ctx context.Context, depth int, fn func(*Datagram) error) error {
	if depth < 1 {
		depth = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	ch := make(chan *Datagram, depth)
	readErr := make(chan error, 1)
	go func() {
		defer close(ch)
		readErr <- r.RunContext(ctx, func(d *Datagram) error {
			select {
			case ch <- d.Clone():
			default:
				r.queueDropped.Add(1)
			}
			return nil
		})
	}()

	var consumeErr error
	for d := range ch {
		if consumeErr != nil {
			continue // drain so the reader can exit
		}
		if err := fn(d); err != nil {
			consumeErr = err
			cancel()
		}
	}
	err := <-readErr
	if consumeErr != nil {
		// The consumer failed; the reader's context.Canceled is just the
		// shutdown we triggered.
		return consumeErr
	}
	return err
}

// Stats returns the number of decoded and malformed datagrams so far.
// Safe to call concurrently with Run.
func (r *Receiver) Stats() (received, malformed int64) {
	return r.received.Load(), r.malformed.Load()
}

// QueueDrops returns how many datagrams RunQueued discarded because the
// consumer queue was full.
func (r *Receiver) QueueDrops() int64 { return r.queueDropped.Load() }

// SeqStats returns the receiver's sequence-gap accounting: what the
// datagram sequence numbers say about datagrams that never arrived.
func (r *Receiver) SeqStats() SeqStats { return r.seq.Stats() }

// EstLoss estimates the fraction of the stream the receiver missed,
// derived from per-agent sequence gaps. Safe to call concurrently with
// Run.
func (r *Receiver) EstLoss() float64 { return r.seq.EstLoss() }

// Close shuts the socket down, stopping Run.
func (r *Receiver) Close() error { return r.pc.Close() }
