package sflow

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
)

// sFlow's native transport is UDP (conventionally port 6343): agents
// fire datagrams at a collector, losses are tolerated by design. The
// Exporter and Receiver below implement that path over the standard
// library's net package, so a generated campaign can be shipped across a
// real socket into the analysis pipeline.

// DefaultPort is the IANA-assigned sFlow collector port.
const DefaultPort = 6343

// Exporter ships encoded datagrams to a collector address over UDP.
// It is not safe for concurrent use.
type Exporter struct {
	conn net.Conn
	buf  []byte
	sent int
}

// NewExporter dials the collector. addr is "host:port".
func NewExporter(addr string) (*Exporter, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("sflow: dialing collector: %w", err)
	}
	return &Exporter{conn: conn}, nil
}

// Send encodes and transmits one datagram.
func (e *Exporter) Send(d *Datagram) error {
	e.buf = d.AppendEncode(e.buf[:0])
	if len(e.buf) > maxDatagramLen {
		return fmt.Errorf("sflow: datagram of %d bytes exceeds transport limit", len(e.buf))
	}
	if _, err := e.conn.Write(e.buf); err != nil {
		return fmt.Errorf("sflow: sending datagram: %w", err)
	}
	e.sent++
	return nil
}

// Count returns the number of datagrams sent.
func (e *Exporter) Count() int { return e.sent }

// Close releases the socket.
func (e *Exporter) Close() error { return e.conn.Close() }

// Receiver consumes sFlow datagrams from a UDP socket. Decode failures
// are counted and skipped, never fatal — a collector must survive
// malformed input from the network.
type Receiver struct {
	pc        net.PacketConn
	received  atomic.Int64
	malformed atomic.Int64
}

// NewReceiver binds a UDP listening socket. addr like "127.0.0.1:0"
// (port 0 picks a free port; see Addr).
func NewReceiver(addr string) (*Receiver, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("sflow: binding collector socket: %w", err)
	}
	// Collectors face bursty agents; a deep socket buffer absorbs the
	// bursts the read loop cannot keep up with instantaneously.
	if uc, ok := pc.(*net.UDPConn); ok {
		_ = uc.SetReadBuffer(4 << 20)
	}
	return &Receiver{pc: pc}, nil
}

// Addr returns the bound address (useful after binding port 0).
func (r *Receiver) Addr() net.Addr { return r.pc.LocalAddr() }

// Run reads datagrams until the socket is closed (call Close from
// another goroutine to stop) and invokes fn for each decoded datagram.
// The datagram passed to fn aliases an internal buffer and is only
// valid during the call. A non-nil error from fn stops the loop.
func (r *Receiver) Run(fn func(*Datagram) error) error {
	buf := make([]byte, 1<<16)
	var d Datagram
	for {
		n, _, err := r.pc.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("sflow: reading socket: %w", err)
		}
		if err := Decode(buf[:n], &d); err != nil {
			r.malformed.Add(1)
			continue
		}
		r.received.Add(1)
		if err := fn(&d); err != nil {
			return err
		}
	}
}

// Stats returns the number of decoded and malformed datagrams so far.
// Safe to call concurrently with Run.
func (r *Receiver) Stats() (received, malformed int64) {
	return r.received.Load(), r.malformed.Load()
}

// Close shuts the socket down, stopping Run.
func (r *Receiver) Close() error { return r.pc.Close() }
