package sflow

import (
	"math"
	"testing"
)

func seqDatagram(agent byte, seq uint32) *Datagram {
	return &Datagram{AgentAddr: [4]byte{10, 0, 0, agent}, SequenceNum: seq}
}

func TestSeqTrackerGapAccounting(t *testing.T) {
	var tr SeqTracker
	// Agent 1 delivers 1,2,3, skips 4-5, delivers 6.
	for _, s := range []uint32{1, 2, 3, 6} {
		tr.Observe(seqDatagram(1, s))
	}
	st := tr.Stats()
	if st.Received != 4 || st.GapDatagrams != 2 {
		t.Fatalf("stats = %+v, want 4 received / 2 gap", st)
	}
	want := 2.0 / 6.0
	if got := st.EstLoss(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("EstLoss = %v, want %v", got, want)
	}
}

func TestSeqTrackerPerAgentIndependence(t *testing.T) {
	var tr SeqTracker
	// Interleaved agents each counting cleanly: no gaps.
	for i := uint32(1); i <= 10; i++ {
		tr.Observe(seqDatagram(1, i))
		tr.Observe(seqDatagram(2, i))
	}
	// Same agent address, different sub-agent: also independent.
	d := seqDatagram(1, 1)
	d.SubAgentID = 7
	tr.Observe(d)
	if st := tr.Stats(); st.GapDatagrams != 0 || st.Restarts != 0 {
		t.Fatalf("clean interleaving produced %+v", st)
	}
}

func TestSeqTrackerDuplicateAndReorder(t *testing.T) {
	var tr SeqTracker
	tr.Observe(seqDatagram(1, 1))
	tr.Observe(seqDatagram(1, 1)) // duplicate
	tr.Observe(seqDatagram(1, 3)) // 2 missing so far
	tr.Observe(seqDatagram(1, 2)) // ...no: it was just late
	tr.Observe(seqDatagram(1, 4))
	st := tr.Stats()
	if st.Duplicates != 1 {
		t.Fatalf("duplicates = %d", st.Duplicates)
	}
	if st.Reordered != 1 {
		t.Fatalf("reordered = %d", st.Reordered)
	}
	if st.GapDatagrams != 0 {
		t.Fatalf("reorder left a phantom gap: %+v", st)
	}
}

func TestSeqTrackerDoubleReclaim(t *testing.T) {
	var tr SeqTracker
	// 1,2 then 5: datagrams 3 and 4 provisionally lost. 3 arrives late —
	// one reclaim — then arrives twice more. The repeats are duplicate
	// deliveries and must not reclaim 4's slot too.
	for _, s := range []uint32{1, 2, 5, 3, 3, 3} {
		tr.Observe(seqDatagram(1, s))
	}
	st := tr.Stats()
	if st.Reordered != 1 {
		t.Fatalf("reordered = %d, want 1 (%+v)", st.Reordered, st)
	}
	if st.Duplicates != 2 {
		t.Fatalf("duplicates = %d, want 2 (%+v)", st.Duplicates, st)
	}
	if st.GapDatagrams != 1 {
		t.Fatalf("gap datagrams = %d, want 1 — datagram 4 is still missing (%+v)", st.GapDatagrams, st)
	}
}

func TestSeqTrackerEstLossDuplicateStorm(t *testing.T) {
	var tr SeqTracker
	// 4 distinct datagrams (1,2,3,6) with 2 lost (4,5) — a 1/3 loss rate —
	// plus a storm of duplicate deliveries of datagram 1 that must not
	// dilute the estimate.
	tr.Observe(seqDatagram(1, 1))
	for i := 0; i < 10; i++ {
		tr.Observe(seqDatagram(1, 1))
	}
	for _, s := range []uint32{2, 3, 6} {
		tr.Observe(seqDatagram(1, s))
	}
	st := tr.Stats()
	if st.Received != 14 || st.Duplicates != 10 || st.GapDatagrams != 2 {
		t.Fatalf("stats = %+v, want 14 received / 10 dup / 2 gap", st)
	}
	want := 2.0 / 6.0
	if got := st.EstLoss(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("EstLoss = %v, want %v (duplicates must not deflate it)", got, want)
	}
}

func TestSeqTrackerRestartNotLoss(t *testing.T) {
	var tr SeqTracker
	tr.Observe(seqDatagram(1, 500_000))
	tr.Observe(seqDatagram(1, 1)) // agent rebooted
	tr.Observe(seqDatagram(1, 2))
	st := tr.Stats()
	if st.Restarts != 1 {
		t.Fatalf("restarts = %d", st.Restarts)
	}
	if st.GapDatagrams != 0 {
		t.Fatalf("restart was booked as loss: %+v", st)
	}
	// A huge forward jump is also a restart, not half a million drops.
	tr.Observe(seqDatagram(1, 900_000))
	if st := tr.Stats(); st.GapDatagrams != 0 || st.Restarts != 2 {
		t.Fatalf("forward restart mis-booked: %+v", st)
	}
}

func TestSeqTrackerNilSafe(t *testing.T) {
	var tr *SeqTracker
	tr.Observe(seqDatagram(1, 1))
	if tr.EstLoss() != 0 {
		t.Fatal("nil tracker reported loss")
	}
	if st := tr.Stats(); st != (SeqStats{}) {
		t.Fatalf("nil tracker stats = %+v", st)
	}
}

func TestDatagramClone(t *testing.T) {
	d := sampleDatagram()
	c := d.Clone()
	// Mutate the original's backing arrays; the clone must not move.
	origHdr := append([]byte(nil), d.Flows[0].Raw.Header...)
	for i := range d.Flows[0].Raw.Header {
		d.Flows[0].Raw.Header[i] = 0xFF
	}
	d.Flows[0].SequenceNum = 999999
	d.Counters[0].SourceIDIndex = 424242
	if string(c.Flows[0].Raw.Header) != string(origHdr) {
		t.Fatal("clone header aliases the original")
	}
	if c.Flows[0].SequenceNum == 999999 || c.Counters[0].SourceIDIndex == 424242 {
		t.Fatal("clone slices alias the original")
	}
	// Round-trip equality: a clone encodes identically to its source's
	// pristine state.
	d2 := sampleDatagram()
	if string(d2.AppendEncode(nil)) != string(c.AppendEncode(nil)) {
		t.Fatal("clone encoding drifted")
	}
}
