package sflow_test

import (
	"fmt"

	"ixplens/internal/sflow"
)

// Example shows the encode/decode round trip of an sFlow v5 datagram
// carrying one sampled frame header.
func Example() {
	d := &sflow.Datagram{
		AgentAddr:   [4]byte{10, 99, 0, 1},
		SequenceNum: 1,
		Flows: []sflow.FlowSample{{
			SequenceNum:  1,
			SamplingRate: 16384,
			InputIf:      1001,
			OutputIf:     1002,
			HasRaw:       true,
			Raw: sflow.RawPacketHeader{
				Protocol:    sflow.HeaderProtoEthernet,
				FrameLength: 1514,
				Header:      []byte{0x02, 0x49, 0x58, 0x00, 0x00, 0x01},
			},
		}},
	}
	wire := d.AppendEncode(nil)

	var got sflow.Datagram
	if err := sflow.Decode(wire, &got); err != nil {
		panic(err)
	}
	fs := got.Flows[0]
	fmt.Printf("rate=1/%d ports=%d->%d frame=%dB captured=%dB\n",
		fs.SamplingRate, fs.InputIf, fs.OutputIf, fs.Raw.FrameLength, len(fs.Raw.Header))
	// Output: rate=1/16384 ports=1001->1002 frame=1514B captured=6B
}
