package serve

import (
	"container/list"
	"context"
	"sync"

	"ixplens/internal/snapshot"
)

// loadFunc materializes one week (the Store's Load).
type loadFunc func(ctx context.Context, isoWeek int) (*snapshot.Snapshot, error)

// Cache is the serving layer's bounded in-memory week cache with
// single-flight deduplication: concurrent requests for the same
// un-analyzed week trigger exactly one load, every waiter shares its
// outcome, and the least recently used week is evicted once capacity
// is reached.
//
// Loads run on a private goroutine whose context descends from the
// cache's base context, not from any single request: a request that
// gives up (client disconnect, per-request timeout) detaches without
// killing the analysis other waiters are sharing. Only when the LAST
// waiter detaches is the load cancelled, so an abandoned analysis
// stops promptly and leaves no goroutine behind. Closing the cache
// cancels every in-flight load.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[int]*list.Element
	order   *list.List // front = most recently used
	flights map[int]*flight
	load    loadFunc
	m       *Metrics

	base   context.Context
	cancel context.CancelFunc
	// loads tracks in-flight load goroutines so Close can wait for
	// them — a drained server leaves nothing running.
	loads sync.WaitGroup
}

type cacheEntry struct {
	week int
	snap *snapshot.Snapshot
}

// flight is one in-progress load and its waiters.
type flight struct {
	cancel  context.CancelFunc
	waiters int
	done    chan struct{}
	snap    *snapshot.Snapshot
	err     error
}

// NewCache builds a cache of at most capacity weeks (minimum 1) over
// load. m must be non-nil (use NewMetrics(nil) for no-ops).
func NewCache(capacity int, load loadFunc, m *Metrics) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	base, cancel := context.WithCancel(context.Background())
	return &Cache{
		cap:     capacity,
		entries: make(map[int]*list.Element),
		order:   list.New(),
		flights: make(map[int]*flight),
		load:    load,
		m:       m,
		base:    base,
		cancel:  cancel,
	}
}

// Close cancels every in-flight load and waits for their goroutines to
// finish. Get calls racing Close fail with context.Canceled.
func (c *Cache) Close() {
	c.cancel()
	c.loads.Wait()
}

// Get returns the cached week, joining or starting a load on a miss.
// Cancelling ctx abandons the wait (and the load itself, if this was
// its last waiter); the load's outcome still reaches waiters that
// stayed.
func (c *Cache) Get(ctx context.Context, isoWeek int) (*snapshot.Snapshot, error) {
	c.mu.Lock()
	if el, ok := c.entries[isoWeek]; ok {
		c.order.MoveToFront(el)
		snap := el.Value.(*cacheEntry).snap
		c.mu.Unlock()
		c.m.CacheHits.Inc()
		return snap, nil
	}
	c.m.CacheMisses.Inc()
	f, ok := c.flights[isoWeek]
	if ok {
		c.m.FlightJoins.Inc()
	} else {
		fctx, cancel := context.WithCancel(c.base)
		f = &flight{cancel: cancel, done: make(chan struct{})}
		c.flights[isoWeek] = f
		c.loads.Add(1)
		go c.run(fctx, isoWeek, f)
	}
	f.waiters++
	c.mu.Unlock()

	select {
	case <-f.done:
		return f.snap, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		abandoned := f.waiters == 0
		c.mu.Unlock()
		if abandoned {
			f.cancel()
		}
		return nil, ctx.Err()
	}
}

// run performs one load and publishes its outcome. A failed load (an
// analysis error, or cancellation after every waiter left) is not
// cached; the next request retries.
func (c *Cache) run(ctx context.Context, isoWeek int, f *flight) {
	defer c.loads.Done()
	defer f.cancel()
	snap, err := c.load(ctx, isoWeek)

	c.mu.Lock()
	delete(c.flights, isoWeek)
	f.snap, f.err = snap, err
	if err == nil {
		c.insertLocked(isoWeek, snap)
	}
	close(f.done)
	c.mu.Unlock()
}

// insertLocked adds a week, evicting from the LRU tail past capacity.
func (c *Cache) insertLocked(isoWeek int, snap *snapshot.Snapshot) {
	if el, ok := c.entries[isoWeek]; ok {
		el.Value.(*cacheEntry).snap = snap
		c.order.MoveToFront(el)
		return
	}
	c.entries[isoWeek] = c.order.PushFront(&cacheEntry{week: isoWeek, snap: snap})
	for c.order.Len() > c.cap {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).week)
		c.m.Evictions.Inc()
	}
}

// Has reports whether a week is currently cached, without touching
// the LRU order.
func (c *Cache) Has(isoWeek int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[isoWeek]
	return ok
}

// Len returns the number of cached weeks.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
