package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ixplens/internal/analysis"
	"ixplens/internal/capture"
	"ixplens/internal/core/webserver"
	"ixplens/internal/netmodel"
	"ixplens/internal/obs"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/snapshot"
	"ixplens/internal/traffic"
)

// fakeSnap builds a minimal distinct snapshot for cache unit tests.
func fakeSnap(week int) *snapshot.Snapshot {
	return &snapshot.Snapshot{Result: &webserver.Result{
		Week:    week,
		Servers: map[packet.IPv4Addr]*webserver.Server{},
	}}
}

func TestCacheSingleFlight(t *testing.T) {
	var loads atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	load := func(ctx context.Context, wk int) (*snapshot.Snapshot, error) {
		loads.Add(1)
		close(started)
		<-release
		return fakeSnap(wk), nil
	}
	c := NewCache(4, load, NewMetrics(nil))
	defer c.Close()

	const waiters = 8
	var wg sync.WaitGroup
	snaps := make([]*snapshot.Snapshot, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snap, err := c.Get(context.Background(), 45)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			snaps[i] = snap
		}(i)
	}
	<-started
	// All waiters are either attached to the single flight or about to
	// attach; releasing the load must complete every one of them.
	close(release)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("%d loads for %d concurrent identical requests, want exactly 1", n, waiters)
	}
	for i, snap := range snaps {
		if snap != snaps[0] {
			t.Fatalf("waiter %d got a different snapshot instance", i)
		}
	}
	// A later request hits the cache, not the loader.
	if _, err := c.Get(context.Background(), 45); err != nil {
		t.Fatal(err)
	}
	if n := loads.Load(); n != 1 {
		t.Fatalf("cache hit triggered load (%d total)", n)
	}
}

func TestCacheAbandonedLoadIsCancelled(t *testing.T) {
	baseline := runtime.NumGoroutine()
	loadDone := make(chan error, 1)
	load := func(ctx context.Context, wk int) (*snapshot.Snapshot, error) {
		// Simulate an analysis that honors cancellation, as
		// AnalyzeWeekFile does (within one datagram batch).
		<-ctx.Done()
		loadDone <- ctx.Err()
		return nil, ctx.Err()
	}
	c := NewCache(4, load, NewMetrics(nil))
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Get(ctx, 45)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the flight start
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("abandoned Get returned %v, want context.Canceled", err)
	}
	// The last waiter leaving must cancel the load itself.
	select {
	case err := <-loadDone:
		if err != context.Canceled {
			t.Fatalf("load finished with %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abandoned load was never cancelled")
	}
	// No goroutines left behind.
	waitGoroutines(t, baseline)
	// The failed load is not cached; a retry starts fresh.
	if c.Len() != 0 {
		t.Fatalf("cancelled load was cached (%d entries)", c.Len())
	}
}

func TestCacheWaiterSurvivesOtherWaiterCancelling(t *testing.T) {
	release := make(chan struct{})
	load := func(ctx context.Context, wk int) (*snapshot.Snapshot, error) {
		select {
		case <-release:
			return fakeSnap(wk), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := NewCache(4, load, NewMetrics(nil))
	defer c.Close()

	ctx1, cancel1 := context.WithCancel(context.Background())
	err1 := make(chan error, 1)
	go func() {
		_, err := c.Get(ctx1, 45)
		err1 <- err
	}()
	ok2 := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), 45)
		ok2 <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel1() // first waiter leaves; the second must keep the flight alive
	if err := <-err1; err != context.Canceled {
		t.Fatalf("cancelled waiter got %v", err)
	}
	close(release)
	if err := <-ok2; err != nil {
		t.Fatalf("surviving waiter got %v, want success", err)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	load := func(ctx context.Context, wk int) (*snapshot.Snapshot, error) {
		return fakeSnap(wk), nil
	}
	m := NewMetrics(obs.NewRegistry())
	c := NewCache(2, load, m)
	defer c.Close()
	for wk := 1; wk <= 3; wk++ {
		if _, err := c.Get(context.Background(), wk); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d weeks, capacity 2", c.Len())
	}
	if c.Has(1) {
		t.Fatal("least recently used week survived eviction")
	}
	if !c.Has(2) || !c.Has(3) {
		t.Fatal("recently used weeks were evicted")
	}
	if m.Evictions.Value() != 1 {
		t.Fatalf("evictions counter %d, want 1", m.Evictions.Value())
	}
}

func TestCacheCloseCancelsInflight(t *testing.T) {
	load := func(ctx context.Context, wk int) (*snapshot.Snapshot, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	c := NewCache(4, load, NewMetrics(nil))
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), 45)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		c.Close() // must cancel the load and wait for its goroutine
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not drain in-flight loads")
	}
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("in-flight Get after Close got %v", err)
	}
}

// waitGoroutines polls until the goroutine count returns to (or below)
// baseline, failing after a deadline.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not return to baseline %d (now %d)", baseline, runtime.NumGoroutine())
}

// campaign writes a small campaign to a temp dir and returns its path.
func campaign(t testing.TB, weeks, samples int) string {
	t.Helper()
	cfg := netmodel.Tiny()
	cfg.Weeks = weeks
	env, err := pipeline.NewEnv(cfg, traffic.Options{SamplesPerWeek: samples, SamplingRate: 16384, SnapLen: 128})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := capture.WriteCampaign(context.Background(), env, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestServerEndpoints(t *testing.T) {
	dir := campaign(t, 3, 2000)
	store, err := OpenStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(store, Config{}, reg)
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := get("/healthz"); code != 200 || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	code, body := get("/weeks")
	if code != 200 {
		t.Fatalf("weeks: %d %s", code, body)
	}
	var infos []WeekInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 || infos[0].Week != store.Weeks()[0] {
		t.Fatalf("weeks inventory wrong: %+v", infos)
	}

	first := store.Weeks()[0]
	code, body = get(fmt.Sprintf("/week/%d", first))
	if code != 200 {
		t.Fatalf("week: %d %s", code, body)
	}
	var sum WeekSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Week != first || sum.Servers == 0 || sum.Samples == 0 {
		t.Fatalf("summary empty: %+v", sum)
	}

	if code, body = get(fmt.Sprintf("/week/%d/servers?k=5", first)); code != 200 {
		t.Fatalf("servers: %d %s", code, body)
	}
	var servers []ServerEntry
	if err := json.Unmarshal(body, &servers); err != nil {
		t.Fatal(err)
	}
	if len(servers) == 0 || len(servers) > 5 {
		t.Fatalf("top servers wrong: %d entries", len(servers))
	}

	if code, body = get(fmt.Sprintf("/week/%d/ases?k=5", first)); code != 200 {
		t.Fatalf("ases: %d %s", code, body)
	}
	var ases []ASEntry
	if err := json.Unmarshal(body, &ases); err != nil {
		t.Fatal(err)
	}
	if len(ases) == 0 {
		t.Fatal("no top ASes")
	}

	if code, body = get(fmt.Sprintf("/week/%d/visibility?k=5", first)); code != 200 {
		t.Fatalf("visibility: %d %s", code, body)
	}
	var vis VisibilitySummary
	if err := json.Unmarshal(body, &vis); err != nil {
		t.Fatal(err)
	}
	if vis.Week != first || vis.ObservedIPs == 0 || vis.TotalBytes == 0 {
		t.Fatalf("visibility summary empty: %+v", vis)
	}
	if len(vis.ByIPs) == 0 || len(vis.ByIPs) > 5 || len(vis.ByBytes) > 5 {
		t.Fatalf("visibility rankings wrong: %d by IPs, %d by bytes", len(vis.ByIPs), len(vis.ByBytes))
	}

	if code, body = get(fmt.Sprintf("/week/%d/links?k=5", first)); code != 200 {
		t.Fatalf("links: %d %s", code, body)
	}
	var links []LinkEntry
	if err := json.Unmarshal(body, &links); err != nil {
		t.Fatal(err)
	}
	if len(links) == 0 || len(links) > 5 {
		t.Fatalf("top links wrong: %d entries", len(links))
	}
	for i := 1; i < len(links); i++ {
		if links[i].Bytes > links[i-1].Bytes {
			t.Fatalf("links not bytes-descending at %d", i)
		}
	}

	if code, body = get("/churn"); code != 200 {
		t.Fatalf("churn: %d %s", code, body)
	}
	var series []ChurnWeek
	if err := json.Unmarshal(body, &series); err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("churn series has %d weeks", len(series))
	}

	if code, _ := get("/week/99"); code != 404 {
		t.Fatalf("unknown week: %d, want 404", code)
	}
	if code, _ := get("/week/notanumber"); code != 400 {
		t.Fatalf("bad week: %d, want 400", code)
	}
	if code, _ := get("/metrics"); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	if reg.Counters()["serve_cache_misses_total"] == 0 {
		t.Fatal("cache miss counter never moved")
	}
}

// TestServerSingleFlightColdCache is the concurrency acceptance test:
// 8 concurrent clients against one cold week must trigger exactly one
// analysis, and every client gets byte-identical bytes.
func TestServerSingleFlightColdCache(t *testing.T) {
	dir := campaign(t, 3, 2000)
	store, err := OpenStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(store, Config{}, reg)
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	first := store.Weeks()[0]
	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/week/%d", ts.URL, first))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d saw different bytes than client 0", i)
		}
	}
	counters := reg.Counters()
	if n := counters["serve_analyses_total"]; n != 1 {
		t.Fatalf("%d analyses for one cold week under concurrent load, want exactly 1", n)
	}
	if counters["serve_flight_joins_total"] == 0 && counters["serve_cache_hits_total"] == 0 {
		t.Fatal("no request joined the flight or hit the cache")
	}
}

// TestServerShedsPastInFlightLimit fills the in-flight semaphore and
// verifies excess requests get an immediate 503 with the shed counter
// incremented, instead of queueing.
func TestServerShedsPastInFlightLimit(t *testing.T) {
	dir := campaign(t, 3, 2000)
	store, err := OpenStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(store, Config{MaxInFlight: 2}, reg)
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Occupy the whole in-flight budget.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	resp, err := http.Get(ts.URL + "/weeks")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503", resp.StatusCode)
	}
	if n := reg.Counters()["serve_shed_total"]; n != 1 {
		t.Fatalf("shed counter %d, want 1", n)
	}
	// Liveness is exempt from shedding.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz shed with %d", resp.StatusCode)
	}
	<-s.sem
	<-s.sem
	// Capacity released: requests flow again.
	resp, err = http.Get(ts.URL + "/weeks")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("drained server answered %d", resp.StatusCode)
	}
}

// TestServerCancelledAnalysisLeavesNothingBehind cancels a request
// mid-analysis and verifies the analysis goroutine unwinds and a
// retry succeeds.
func TestServerCancelledAnalysisLeavesNothingBehind(t *testing.T) {
	dir := campaign(t, 3, 2000)
	store, err := OpenStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(store, Config{}, reg)
	defer s.Close()

	baseline := runtime.NumGoroutine()
	first := store.Weeks()[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the wait aborts immediately
	if _, err := s.cache.Get(ctx, first); err != context.Canceled {
		t.Fatalf("cancelled request got %v", err)
	}
	waitGoroutines(t, baseline)
	if n := reg.Counters()["serve_analyses_total"]; n != 0 {
		t.Fatalf("cancelled request completed %d analyses", n)
	}
	// The week is not poisoned: a live retry succeeds.
	snap, err := s.cache.Get(context.Background(), first)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Result.Week != first {
		t.Fatalf("retry returned week %d", snap.Result.Week)
	}
}

// TestGoldenServedAllWeeks is the serving acceptance criterion: for
// every one of the 17 study weeks, the directly analyzed result, its
// snapshot round trip, and the served /week/{n} response agree byte
// for byte — aggregates, EstLoss and all.
func TestGoldenServedAllWeeks(t *testing.T) {
	cfg := netmodel.Tiny()
	if cfg.Weeks != 17 {
		t.Fatalf("study has %d weeks, want 17", cfg.Weeks)
	}
	opts := traffic.Options{SamplesPerWeek: 2000, SamplingRate: 16384, SnapLen: 128}
	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := capture.WriteCampaign(context.Background(), env, dir); err != nil {
		t.Fatal(err)
	}
	man, err := capture.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Direct path: analyze every week from the capture files, render
	// the summary bytes, and persist a snapshot for each.
	direct := make(map[int]*snapshot.Snapshot, len(man.Weeks))
	wantBody := make(map[int][]byte, len(man.Weeks))
	for i, wk := range man.Weeks {
		snap, err := capture.AnalyzeWeekSnapshot(context.Background(), env, filepath.Join(dir, man.Files[i]), wk)
		if err != nil {
			t.Fatalf("week %d: %v", wk, err)
		}
		snap.SourceDigest = man.Digests[i]
		direct[wk] = snap
		buf, err := json.Marshal(Summarize(snap))
		if err != nil {
			t.Fatal(err)
		}
		wantBody[wk] = append(buf, '\n')
		if err := snapshot.SaveFile(filepath.Join(dir, snapshot.FileName(wk)), snap); err != nil {
			t.Fatalf("week %d: %v", wk, err)
		}
	}

	// Serving path: a fresh store over the same directory must reload
	// every week from its snapshot and serve identical bytes.
	store, err := OpenStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(store, Config{}, reg)
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, wk := range man.Weeks {
		resp, err := http.Get(fmt.Sprintf("%s/week/%d", ts.URL, wk))
		if err != nil {
			t.Fatalf("week %d: %v", wk, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("week %d: status %d: %s", wk, resp.StatusCode, body)
		}
		if !bytes.Equal(body, wantBody[wk]) {
			t.Fatalf("week %d: served response diverged from direct analysis:\nwant %s\ngot  %s",
				wk, wantBody[wk], body)
		}
		// The snapshot reload itself must reproduce the direct result
		// exactly, EstLoss included.
		snap, err := s.cache.Get(context.Background(), wk)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(snap.Result, direct[wk].Result) {
			t.Fatalf("week %d: snapshot-reloaded result diverged from direct analysis", wk)
		}
		if snap.Counts != direct[wk].Counts {
			t.Fatalf("week %d: snapshot-reloaded counts diverged", wk)
		}
	}
	counters := reg.Counters()
	if n := counters["serve_analyses_total"]; n != 0 {
		t.Fatalf("served weeks re-ran %d analyses despite snapshots", n)
	}
	if n := counters["serve_snapshot_loads_total"]; n != uint64(len(man.Weeks)) {
		t.Fatalf("snapshot loads %d, want %d", n, len(man.Weeks))
	}

	// The longitudinal series served over HTTP must match the series
	// computed from the direct results.
	snaps := make([]*snapshot.Snapshot, len(man.Weeks))
	for i, wk := range man.Weeks {
		snaps[i] = direct[wk]
	}
	series, err := ChurnSeries(env, man.Weeks, snaps)
	if err != nil {
		t.Fatal(err)
	}
	wantChurn, err := json.Marshal(series)
	if err != nil {
		t.Fatal(err)
	}
	wantChurn = append(wantChurn, '\n')
	resp, err := http.Get(ts.URL + "/churn")
	if err != nil {
		t.Fatal(err)
	}
	gotChurn, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("churn: status %d", resp.StatusCode)
	}
	if !bytes.Equal(gotChurn, wantChurn) {
		t.Fatal("served churn series diverged from directly computed series")
	}
}

// TestStoreWriteSnapshots verifies analyze-then-persist: the first load
// analyzes and writes a snapshot, a fresh store then loads it without
// re-analyzing, and a stale snapshot (digest mismatch) is re-analyzed.
func TestStoreWriteSnapshots(t *testing.T) {
	dir := campaign(t, 3, 2000)
	store, err := OpenStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics(obs.NewRegistry())
	store.SetMetrics(m)
	first := store.Weeks()[0]
	snap1, err := store.Load(context.Background(), first)
	if err != nil {
		t.Fatal(err)
	}
	if m.Analyses.Value() != 1 || m.SnapshotWrites.Value() != 1 {
		t.Fatalf("first load: analyses=%d writes=%d", m.Analyses.Value(), m.SnapshotWrites.Value())
	}

	store2, err := OpenStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMetrics(obs.NewRegistry())
	store2.SetMetrics(m2)
	snap2, err := store2.Load(context.Background(), first)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Analyses.Value() != 0 || m2.SnapshotLoads.Value() != 1 {
		t.Fatalf("second load: analyses=%d snapLoads=%d", m2.Analyses.Value(), m2.SnapshotLoads.Value())
	}
	if !reflect.DeepEqual(snap1.Result, snap2.Result) || snap1.Counts != snap2.Counts {
		t.Fatal("snapshot-loaded week diverged from analyzed week")
	}

	// Poison the snapshot's digest binding: the store must detect the
	// stale snapshot and re-analyze.
	stale := &snapshot.Snapshot{Result: snap1.Result, Counts: snap1.Counts, SourceDigest: "deadbeef"}
	if err := snapshot.SaveFile(filepath.Join(dir, snapshot.FileName(first)), stale); err != nil {
		t.Fatal(err)
	}
	store3, err := OpenStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	m3 := NewMetrics(obs.NewRegistry())
	store3.SetMetrics(m3)
	if _, err := store3.Load(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	if m3.Analyses.Value() != 1 {
		t.Fatalf("stale snapshot was served (analyses=%d)", m3.Analyses.Value())
	}
}

// TestProductEndpointsServedFromSnapshot pins the multi-section serving
// criterion: /visibility and /links answer from a persisted snapshot's
// products without a single re-analysis, byte-identical to views built
// from the direct analysis.
func TestProductEndpointsServedFromSnapshot(t *testing.T) {
	dir := campaign(t, 3, 2000)
	man, err := capture.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	env, err := man.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	first := man.Weeks[0]
	snap, err := capture.AnalyzeWeekSnapshot(context.Background(), env, filepath.Join(dir, man.Files[0]), first)
	if err != nil {
		t.Fatal(err)
	}
	snap.SourceDigest = man.Digests[0]
	if err := snapshot.SaveFile(filepath.Join(dir, snapshot.FileName(first)), snap); err != nil {
		t.Fatal(err)
	}

	store, err := OpenStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(store, Config{}, reg)
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	wantVis, err := VisibilityView(store.Env(), snap, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantVisBody, _ := json.Marshal(wantVis)
	wantLinks, err := TopLinks(snap, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantLinksBody, _ := json.Marshal(wantLinks)

	for path, want := range map[string][]byte{
		fmt.Sprintf("/week/%d/visibility?k=7", first): append(wantVisBody, '\n'),
		fmt.Sprintf("/week/%d/links?k=7", first):      append(wantLinksBody, '\n'),
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("%s: served bytes diverged from direct view:\nwant %s\ngot  %s", path, want, body)
		}
	}
	if n := reg.Counters()["serve_analyses_total"]; n != 0 {
		t.Fatalf("product endpoints triggered %d analyses despite a complete snapshot", n)
	}
	if n := reg.Counters()["serve_snapshot_loads_total"]; n == 0 {
		t.Fatal("snapshot never loaded")
	}
}

// TestProductEndpointsWithoutAnalyzer404 narrows the serving registry to
// the webserver analyzer alone: the product endpoints must answer 404
// (ErrNoProduct), not crash or re-analyze into existence.
func TestProductEndpointsWithoutAnalyzer404(t *testing.T) {
	dir := campaign(t, 3, 2000)
	store, err := OpenStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	narrowed, err := analysis.Select("webserver")
	if err != nil {
		t.Fatal(err)
	}
	store.Env().Analyzers = narrowed
	s := New(store, Config{}, obs.NewRegistry())
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	first := store.Weeks()[0]
	for _, path := range []string{
		fmt.Sprintf("/week/%d/visibility", first),
		fmt.Sprintf("/week/%d/links", first),
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Fatalf("%s: status %d, want 404: %s", path, resp.StatusCode, body)
		}
	}
	// The summary endpoint still works: the webserver product exists.
	resp, err := http.Get(fmt.Sprintf("%s/week/%d", ts.URL, first))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("summary under narrowed registry: %d", resp.StatusCode)
	}
}
