package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"ixplens/internal/capture"
	"ixplens/internal/pipeline"
	"ixplens/internal/snapshot"
	"ixplens/internal/supervise"
)

// ErrUnknownWeek marks a request for a week the campaign does not
// contain. Test with errors.Is.
var ErrUnknownWeek = errors.New("serve: week not in campaign")

// ErrQuarantinedWeek marks a request for a week the supervised campaign
// runner quarantined: its data never passed the pipeline, so serving it
// would present a hole as a measurement. Test with errors.Is.
var ErrQuarantinedWeek = errors.New("serve: week quarantined by campaign supervisor")

// Store materializes analyzed weeks from a campaign directory. A week
// loads from its on-disk snapshot when one exists and still matches
// the manifest's capture digest (milliseconds), and falls back to the
// full capture→dissect→identify pipeline otherwise (minutes at paper
// scale). With WriteSnapshots set, every analysis persists its result,
// so the first request for a week pays for all later ones.
//
// Load is safe for concurrent use with distinct weeks; the serving
// cache's single-flight layer guarantees one Load per week at a time.
type Store struct {
	dir            string
	env            *pipeline.Env
	man            *capture.Manifest
	writeSnapshots bool
	quarantined    map[int]bool
	m              *Metrics
}

// OpenStore rebuilds the campaign's measurement substrates from its
// manifest and returns a store over dir. writeSnapshots persists a
// snapshot after every full analysis.
func OpenStore(dir string, writeSnapshots bool) (*Store, error) {
	man, err := capture.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	env, err := man.Rebuild()
	if err != nil {
		return nil, err
	}
	st := NewStore(dir, env, man, writeSnapshots)
	// A supervise journal in the campaign directory tells us which weeks
	// the runner quarantined. A missing journal means an unsupervised
	// campaign (nothing quarantined); a damaged one is ignored — the
	// journal is the supervisor's ledger, not a serving dependency.
	if jst, err := supervise.ReadState(dir); err == nil {
		st.SetQuarantined(jst.QuarantinedWeeks())
	}
	return st, nil
}

// NewStore wraps an already rebuilt environment. Callers that need to
// instrument or configure env (Instrument, MaxLoss) use this form.
func NewStore(dir string, env *pipeline.Env, man *capture.Manifest, writeSnapshots bool) *Store {
	return &Store{dir: dir, env: env, man: man, writeSnapshots: writeSnapshots, m: NewMetrics(nil)}
}

// SetMetrics attaches the serving metrics bundle (never nil after
// NewStore; call before the store is shared).
func (st *Store) SetMetrics(m *Metrics) {
	if m != nil {
		st.m = m
	}
}

// SetQuarantined records the weeks the campaign supervisor quarantined.
// Load refuses them with ErrQuarantinedWeek and the serving layer
// reports them through /healthz and as gaps in /churn. Call before the
// store is shared.
func (st *Store) SetQuarantined(weeks []int) {
	st.quarantined = make(map[int]bool, len(weeks))
	for _, wk := range weeks {
		st.quarantined[wk] = true
	}
}

// Quarantined lists the quarantined weeks in chronological (manifest)
// order.
func (st *Store) Quarantined() []int {
	var out []int
	for _, wk := range st.man.Weeks {
		if st.quarantined[wk] {
			out = append(out, wk)
		}
	}
	return out
}

// IsQuarantined reports whether isoWeek is quarantined.
func (st *Store) IsQuarantined(isoWeek int) bool { return st.quarantined[isoWeek] }

// Env exposes the campaign's rebuilt environment (entity table, DNS,
// fabric) for endpoints that resolve results further.
func (st *Store) Env() *pipeline.Env { return st.env }

// Manifest exposes the campaign manifest.
func (st *Store) Manifest() *capture.Manifest { return st.man }

// Weeks lists the campaign's ISO weeks in manifest (chronological)
// order.
func (st *Store) Weeks() []int { return st.man.Weeks }

// weekIndex finds isoWeek's position in the manifest.
func (st *Store) weekIndex(isoWeek int) (int, bool) {
	for i, w := range st.man.Weeks {
		if w == isoWeek {
			return i, true
		}
	}
	return 0, false
}

// HasWeek reports whether the campaign contains isoWeek.
func (st *Store) HasWeek(isoWeek int) bool {
	_, ok := st.weekIndex(isoWeek)
	return ok
}

// Load returns the analyzed week, from snapshot when possible. The
// returned snapshot is shared and must be treated as immutable.
func (st *Store) Load(ctx context.Context, isoWeek int) (*snapshot.Snapshot, error) {
	i, ok := st.weekIndex(isoWeek)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownWeek, isoWeek)
	}
	if st.quarantined[isoWeek] {
		return nil, fmt.Errorf("%w: %d", ErrQuarantinedWeek, isoWeek)
	}
	digest := ""
	if i < len(st.man.Digests) {
		digest = st.man.Digests[i]
	}
	// A missing, damaged, stale or product-incomplete snapshot degrades
	// to re-analysis — the snapshot layer is an accelerator, never a
	// correctness dependency. The product check upgrades legacy
	// single-product (v1) snapshots: an endpoint needing visibility or
	// links never 404s just because the snapshot predates them.
	fsys := st.env.VFS()
	spath := filepath.Join(st.dir, snapshot.FileName(isoWeek))
	if snap, err := snapshot.LoadFileFS(fsys, spath); err == nil &&
		snap.Result.Week == isoWeek && freshSnapshot(snap, digest) &&
		st.completeSnapshot(snap) {
		st.m.SnapshotLoads.Inc()
		return snap, nil
	}
	start := time.Now()
	snap, err := capture.AnalyzeWeekSnapshot(ctx, st.env, filepath.Join(st.dir, st.man.Files[i]), isoWeek)
	if err != nil {
		return nil, err
	}
	st.m.Analyses.Inc()
	st.m.AnalyzeNanos.ObserveSince(start)
	snap.SourceDigest = digest
	if st.writeSnapshots {
		if _, err := snapshot.SaveFileFS(fsys, spath, snap); err != nil {
			st.m.SnapshotWriteErrors.Inc()
		} else {
			st.m.SnapshotWrites.Inc()
		}
	}
	return snap, nil
}

// completeSnapshot reports whether snap carries every product the
// store's analyzer registry serves.
func (st *Store) completeSnapshot(snap *snapshot.Snapshot) bool {
	for _, name := range st.env.Registry().Names() {
		if !snap.HasProduct(name) {
			return false
		}
	}
	return true
}

// freshSnapshot reports whether a loaded snapshot still corresponds to
// the manifest's capture file. When either side lacks a digest (a v1
// campaign without per-week digests, or a snapshot written outside a
// campaign) the check cannot bind them and the snapshot is trusted.
func freshSnapshot(snap *snapshot.Snapshot, manifestDigest string) bool {
	return snap.SourceDigest == "" || manifestDigest == "" || snap.SourceDigest == manifestDigest
}
