// Package serve turns an analyzed measurement campaign into a queryable
// HTTP service — the missing serving path between the 17-week study and
// its downstream consumers (longitudinal IXP series, vantage-point
// aggregates). It is stdlib-only, like the rest of the stack.
//
// A request for a week is answered from, in order: the bounded
// in-memory cache, the on-disk snapshot store (milliseconds), or a full
// lazy analysis of the capture file (single-flighted, so concurrent
// requests for the same cold week trigger exactly one run). The handler
// enforces a per-request timeout and a bounded in-flight limit that
// sheds excess load with 503 instead of queueing unboundedly; every
// stage is instrumented through internal/obs.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"ixplens/internal/core/churn"
	"ixplens/internal/core/visibility"
	"ixplens/internal/obs"
	"ixplens/internal/pipeline"
	"ixplens/internal/snapshot"
)

// Config tunes the serving layer. The zero value gets sensible
// defaults from New.
type Config struct {
	// CacheWeeks bounds the in-memory week cache (default 32).
	CacheWeeks int
	// MaxInFlight bounds concurrently handled requests; excess load is
	// shed with 503 (default 64).
	MaxInFlight int
	// Timeout bounds one request, including any analysis it triggers
	// (default 120s; 0 keeps the default, negative disables).
	Timeout time.Duration
	// TopK is the default k for the top-k endpoints (default 10).
	TopK int
}

func (c Config) withDefaults() Config {
	if c.CacheWeeks == 0 {
		c.CacheWeeks = 32
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.Timeout == 0 {
		c.Timeout = 120 * time.Second
	}
	if c.TopK == 0 {
		c.TopK = 10
	}
	return c
}

// Server is the HTTP query layer over one campaign.
//
//	GET /healthz                      liveness (never shed)
//	GET /metrics                      plain-text metrics snapshot
//	GET /weeks                        campaign inventory
//	GET /week/{week}                  one week's summary aggregates
//	GET /week/{week}/servers?k=10     top-k servers by traffic
//	GET /week/{week}/ases?k=10        top-k server-hosting ASes by traffic
//	GET /week/{week}/visibility?k=10  §3 visibility: observed IPs, top countries
//	GET /week/{week}/links?k=10       top-k member-pair peering links by traffic
//	GET /churn                        longitudinal churn series (all weeks)
type Server struct {
	store *Store
	cache *Cache
	cfg   Config
	m     *Metrics
	reg   *obs.Registry
	mux   *http.ServeMux
	sem   chan struct{}
}

// New builds a server over store. reg (optional) receives the serving
// metrics and backs the /metrics endpoint.
func New(store *Store, cfg Config, reg *obs.Registry) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics(reg)
	store.SetMetrics(m)
	s := &Server{
		store: store,
		cache: NewCache(cfg.CacheWeeks, store.Load, m),
		cfg:   cfg,
		m:     m,
		reg:   reg,
		mux:   http.NewServeMux(),
		sem:   make(chan struct{}, cfg.MaxInFlight),
	}
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /weeks", s.handleWeeks)
	s.mux.HandleFunc("GET /week/{week}", s.handleWeek)
	s.mux.HandleFunc("GET /week/{week}/servers", s.handleTopServers)
	s.mux.HandleFunc("GET /week/{week}/ases", s.handleTopASes)
	s.mux.HandleFunc("GET /week/{week}/visibility", s.handleVisibility)
	s.mux.HandleFunc("GET /week/{week}/links", s.handleLinks)
	s.mux.HandleFunc("GET /churn", s.handleChurn)
	return s
}

// Close cancels in-flight analyses and waits for them — the drain step
// of a graceful shutdown, after the HTTP listener stops accepting.
func (s *Server) Close() { s.cache.Close() }

// ServeHTTP dispatches with load shedding and the per-request timeout.
// The liveness endpoint bypasses both, so an overloaded server still
// reports alive rather than flapping its orchestrator.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		s.handleHealthz(w, r)
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.m.Shed.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		http.Error(w, "server at capacity", http.StatusServiceUnavailable)
		return
	}
	defer func() { <-s.sem }()
	s.m.InFlight.Add(1)
	defer s.m.InFlight.Add(-1)
	start := time.Now()
	defer s.m.ReqNanos.ObserveSince(start)
	if s.cfg.Timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(w, r)
}

// retryAfterSeconds derives the shed response's Retry-After hint from
// the observed analysis-duration distribution: slots free up when
// in-flight work finishes, and the slow work is full analyses, so the
// honest hint is the p90 analysis time rounded up to whole seconds.
// Before any analysis has been observed — or when every request is
// served from snapshots — it stays at the 1s floor; a 60s cap keeps a
// pathological outlier from telling clients to go away for minutes.
func (s *Server) retryAfterSeconds() int {
	h := s.m.AnalyzeNanos
	if h.Count() == 0 {
		return 1
	}
	secs := (h.Quantile(0.90) + uint64(time.Second) - 1) / uint64(time.Second)
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return int(secs)
}

// ErrNoProduct marks a request for an analyzer product the serving
// environment's registry does not produce (e.g. /week/{n}/links on a
// server running a webserver-only registry). Test with errors.Is.
var ErrNoProduct = errors.New("serve: analyzer product not available")

// fail maps a load error onto an HTTP status.
func fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownWeek):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrNoProduct):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "analysis timed out", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		http.Error(w, "request abandoned or server draining", http.StatusServiceUnavailable)
	case errors.Is(err, pipeline.ErrLossExceeded):
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
	case errors.Is(err, ErrQuarantinedWeek):
		// The week exists in the campaign calendar but its data never
		// passed the pipeline: not a 404 (the week is known), not a 500
		// (the server is fine) — the entity is simply unprocessable.
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeJSON emits a deterministic JSON document: marshal then a single
// trailing newline. Determinism (same value → same bytes) is part of
// the serving contract — the golden tests compare responses byte for
// byte against directly analyzed results.
func writeJSON(w http.ResponseWriter, v interface{}) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(buf, '\n'))
}

// handleHealthz reports liveness plus campaign data health: "ok" when
// every week is servable, "degraded" — with the quarantined-week list —
// when the supervised runner had to give up on some. Orchestrators keep
// a degraded server in rotation (it still serves 200) but the hole is
// visible to anyone who asks.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	doc := map[string]interface{}{"status": "ok", "weeks": len(s.store.Weeks())}
	if q := s.store.Quarantined(); len(q) > 0 {
		doc["status"] = "degraded"
		doc["quarantined"] = q
	}
	writeJSON(w, doc)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.reg == nil {
		fmt.Fprintln(w, "# instrumentation disabled (no registry attached)")
		return
	}
	s.reg.WriteText(w)
}

// WeekInfo is one row of the /weeks inventory.
type WeekInfo struct {
	Week        int    `json:"week"`
	File        string `json:"file"`
	Cached      bool   `json:"cached"`
	Quarantined bool   `json:"quarantined,omitempty"`
}

func (s *Server) handleWeeks(w http.ResponseWriter, _ *http.Request) {
	man := s.store.Manifest()
	out := make([]WeekInfo, len(man.Weeks))
	for i, wk := range man.Weeks {
		out[i] = WeekInfo{
			Week:        wk,
			File:        man.Files[i],
			Cached:      s.cache.Has(wk),
			Quarantined: s.store.IsQuarantined(wk),
		}
	}
	writeJSON(w, out)
}

// weekParam parses the {week} path value.
func weekParam(r *http.Request) (int, error) {
	return strconv.Atoi(r.PathValue("week"))
}

// kParam parses ?k= with a default and a hard cap.
func kParam(r *http.Request, def int) int {
	k := def
	if v := r.URL.Query().Get("k"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			k = n
		}
	}
	if k > 1000 {
		k = 1000
	}
	return k
}

// WeekSummary is the /week/{n} response: the week's aggregates exactly
// as the analysis produced them, including the loss annotation.
type WeekSummary struct {
	Week               int     `json:"week"`
	Samples            int     `json:"samples"`
	PeeringShare       float64 `json:"peering_share"`
	TCPShare           float64 `json:"tcp_share"`
	PanicQuarantined   int     `json:"panic_quarantined"`
	TotalIPs           int     `json:"total_ips"`
	Servers            int     `json:"servers"`
	HTTPSServers       int     `json:"https_servers"`
	Candidates443      int     `json:"candidates_443"`
	Responded443       int     `json:"responded_443"`
	Valid443           int     `json:"valid_443"`
	MultiPurpose       int     `json:"multi_purpose"`
	DualRole           int     `json:"dual_role"`
	ServerBytes        uint64  `json:"server_bytes"`
	ServerTrafficShare float64 `json:"server_traffic_share"`
	EstLoss            float64 `json:"est_loss"`
}

// Summarize renders a snapshot's summary aggregates. It is exported so
// golden tests can compare a served response byte for byte against a
// directly analyzed result.
func Summarize(snap *snapshot.Snapshot) WeekSummary {
	res, counts := snap.Result, &snap.Counts
	https := 0
	for _, srv := range res.Servers {
		if srv.HTTPS {
			https++
		}
	}
	peerBytes := counts.PeeringTCPBytes + counts.PeeringUDPBytes
	share := 0.0
	if peerBytes > 0 {
		share = float64(res.ServerBytes) / float64(peerBytes)
		if share > 1 {
			share = 1
		}
	}
	return WeekSummary{
		Week:               res.Week,
		Samples:            counts.Total,
		PeeringShare:       counts.PeeringShare(),
		TCPShare:           counts.TCPShare(),
		PanicQuarantined:   counts.PanicQuarantined,
		TotalIPs:           res.TotalIPs,
		Servers:            len(res.Servers),
		HTTPSServers:       https,
		Candidates443:      res.Candidates443,
		Responded443:       res.Responded443,
		Valid443:           res.Valid443,
		MultiPurpose:       res.MultiPurpose(),
		DualRole:           res.DualRole(),
		ServerBytes:        res.ServerBytes,
		ServerTrafficShare: share,
		EstLoss:            res.EstLoss,
	}
}

func (s *Server) handleWeek(w http.ResponseWriter, r *http.Request) {
	wk, err := weekParam(r)
	if err != nil {
		http.Error(w, "bad week", http.StatusBadRequest)
		return
	}
	snap, err := s.cache.Get(r.Context(), wk)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, Summarize(snap))
}

// ServerEntry is one row of the /week/{n}/servers response.
type ServerEntry struct {
	IP         string   `json:"ip"`
	Bytes      uint64   `json:"bytes"`
	HTTP       bool     `json:"http"`
	HTTPS      bool     `json:"https"`
	AlsoClient bool     `json:"also_client"`
	Member     int32    `json:"member"`
	Ports      []uint16 `json:"ports,omitempty"`
	Hosts      []string `json:"hosts,omitempty"`
}

// TopServers renders the k highest-traffic servers of a snapshot,
// deterministically ordered (bytes descending, IP ascending).
func TopServers(snap *snapshot.Snapshot, k int) []ServerEntry {
	top := snap.Result.TopServers(k)
	out := make([]ServerEntry, len(top))
	for i, srv := range top {
		out[i] = ServerEntry{
			IP:         srv.IP.String(),
			Bytes:      srv.Bytes,
			HTTP:       srv.HTTP,
			HTTPS:      srv.HTTPS,
			AlsoClient: srv.AlsoClient,
			Member:     srv.Member,
			Ports:      srv.Ports,
			Hosts:      srv.Hosts,
		}
	}
	return out
}

func (s *Server) handleTopServers(w http.ResponseWriter, r *http.Request) {
	wk, err := weekParam(r)
	if err != nil {
		http.Error(w, "bad week", http.StatusBadRequest)
		return
	}
	snap, err := s.cache.Get(r.Context(), wk)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, TopServers(snap, kParam(r, s.cfg.TopK)))
}

// ASEntry is one row of the /week/{n}/ases response.
type ASEntry struct {
	ASN     uint32 `json:"asn"`
	Servers int    `json:"servers"`
	Bytes   uint64 `json:"bytes"`
}

// TopASes aggregates a snapshot's server traffic by origin AS (resolved
// through the environment's entity table) and returns the k largest,
// bytes descending then ASN ascending. Unresolved IPs (ASN 0) are
// excluded — a lookup failure is not an AS.
func TopASes(env *pipeline.Env, snap *snapshot.Snapshot, k int) []ASEntry {
	tab := env.EntityTable()
	type agg struct {
		servers int
		bytes   uint64
	}
	byAS := make(map[uint32]*agg)
	for ip, srv := range snap.Result.Servers {
		_, attrs := tab.ResolveAttrs(ip)
		if attrs.ASN == 0 {
			continue
		}
		a := byAS[attrs.ASN]
		if a == nil {
			a = &agg{}
			byAS[attrs.ASN] = a
		}
		a.servers++
		a.bytes += srv.Bytes
	}
	out := make([]ASEntry, 0, len(byAS))
	for asn, a := range byAS {
		out = append(out, ASEntry{ASN: asn, Servers: a.servers, Bytes: a.bytes})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].ASN < out[j].ASN
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

func (s *Server) handleTopASes(w http.ResponseWriter, r *http.Request) {
	wk, err := weekParam(r)
	if err != nil {
		http.Error(w, "bad week", http.StatusBadRequest)
		return
	}
	snap, err := s.cache.Get(r.Context(), wk)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, TopASes(s.store.Env(), snap, kParam(r, s.cfg.TopK)))
}

// CountryShare is one row of a visibility country ranking.
type CountryShare struct {
	Country string `json:"country"`
	IPs     int    `json:"ips"`
	Bytes   uint64 `json:"bytes"`
}

// VisibilitySummary is the /week/{n}/visibility response: the §3
// vantage-point aggregates served straight from the snapshot's
// visibility product — no re-analysis of the capture.
type VisibilitySummary struct {
	Week        int    `json:"week"`
	ObservedIPs int    `json:"observed_ips"`
	ASes        int    `json:"ases"`
	Prefixes    int    `json:"prefixes"`
	Countries   int    `json:"countries"`
	TotalBytes  uint64 `json:"total_bytes"`
	// ByIPs and ByBytes are the top-k countries under each ranking.
	ByIPs   []CountryShare `json:"by_ips"`
	ByBytes []CountryShare `json:"by_bytes"`
}

// VisibilityView renders a snapshot's visibility product, resolving
// countries through the environment's entity table. It is exported so
// golden tests can compare a served response byte for byte against a
// directly analyzed aggregator.
func VisibilityView(env *pipeline.Env, snap *snapshot.Snapshot, k int) (VisibilitySummary, error) {
	if snap.Visibility == nil {
		return VisibilitySummary{}, fmt.Errorf("%w: visibility (week %d)", ErrNoProduct, snap.Result.Week)
	}
	agg := snap.Visibility.Aggregator(env.EntityTable())
	sum := agg.Summarize(nil)
	byIPs, byBytes := agg.TopCountries(k, nil)
	conv := func(shares []visibility.Share) []CountryShare {
		out := make([]CountryShare, len(shares))
		for i, sh := range shares {
			out[i] = CountryShare{Country: sh.Key, IPs: sh.Count, Bytes: sh.Bytes}
		}
		return out
	}
	return VisibilitySummary{
		Week:        snap.Result.Week,
		ObservedIPs: sum.IPs,
		ASes:        sum.ASes,
		Prefixes:    sum.Prefixes,
		Countries:   sum.Countries,
		TotalBytes:  sum.Bytes,
		ByIPs:       conv(byIPs),
		ByBytes:     conv(byBytes),
	}, nil
}

func (s *Server) handleVisibility(w http.ResponseWriter, r *http.Request) {
	wk, err := weekParam(r)
	if err != nil {
		http.Error(w, "bad week", http.StatusBadRequest)
		return
	}
	snap, err := s.cache.Get(r.Context(), wk)
	if err != nil {
		fail(w, err)
		return
	}
	view, err := VisibilityView(s.store.Env(), snap, kParam(r, s.cfg.TopK))
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, view)
}

// LinkEntry is one row of the /week/{n}/links response: one
// (ingress member, egress member) pair of the peering fabric with its
// aggregated traffic.
type LinkEntry struct {
	In      int32  `json:"in"`
	Out     int32  `json:"out"`
	Bytes   uint64 `json:"bytes"`
	Samples uint64 `json:"samples"`
}

// TopLinks renders the k heaviest member-pair links of a snapshot's
// flow product, bytes descending then (in, out) ascending.
func TopLinks(snap *snapshot.Snapshot, k int) ([]LinkEntry, error) {
	if snap.Links == nil {
		return nil, fmt.Errorf("%w: links (week %d)", ErrNoProduct, snap.Result.Week)
	}
	top := snap.Links.TopMemberLinks(k)
	out := make([]LinkEntry, len(top))
	for i, ml := range top {
		out[i] = LinkEntry{In: ml.In, Out: ml.Out, Bytes: ml.Bytes, Samples: ml.Samples}
	}
	return out, nil
}

func (s *Server) handleLinks(w http.ResponseWriter, r *http.Request) {
	wk, err := weekParam(r)
	if err != nil {
		http.Error(w, "bad week", http.StatusBadRequest)
		return
	}
	snap, err := s.cache.Get(r.Context(), wk)
	if err != nil {
		fail(w, err)
		return
	}
	links, err := TopLinks(snap, kParam(r, s.cfg.TopK))
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, links)
}

// ChurnWeek is one row of the /churn longitudinal series. A gap row
// (Gap true) holds the calendar place of a quarantined week: its counts
// are zero, the pools were not advanced past it, and Streak restarts
// after it — consumers that require uninterrupted coverage filter on
// streak, consumers that tolerate gaps use observed_weeks.
type ChurnWeek struct {
	Week          int       `json:"week"`
	IPs           [3]int    `json:"ips"`
	Bytes         [3]uint64 `json:"bytes"`
	ASes          [3]int    `json:"ases"`
	TotalASes     int       `json:"total_ases"`
	TotalPrefixes int       `json:"total_prefixes"`
	UnresolvedIPs int       `json:"unresolved_ips"`
	HTTPSIPs      int       `json:"https_ips"`
	HTTPSBytes    uint64    `json:"https_bytes"`
	TotalBytes    uint64    `json:"total_bytes"`
	EstLoss       float64   `json:"est_loss"`
	Gap           bool      `json:"gap,omitempty"`
	ObservedWeeks int       `json:"observed_weeks"`
	Streak        int       `json:"streak"`
}

// ChurnSeries computes the longitudinal churn series from per-week
// snapshots, in chronological order (pool order: stable, recurrent,
// new). weeks and snaps are parallel; a nil snapshot marks a gap week
// (quarantined or otherwise unobserved) that holds its place in the
// calendar without advancing the pools.
func ChurnSeries(env *pipeline.Env, weeks []int, snaps []*snapshot.Snapshot) ([]ChurnWeek, error) {
	if len(weeks) != len(snaps) {
		return nil, fmt.Errorf("serve: churn series: %d weeks, %d snapshots", len(weeks), len(snaps))
	}
	tracker := churn.NewTrackerWith(env.EntityTable())
	for i, snap := range snaps {
		if snap == nil {
			if err := tracker.AddGap(weeks[i]); err != nil {
				return nil, err
			}
			continue
		}
		if err := tracker.Add(env.Observation(snap.Result)); err != nil {
			return nil, err
		}
	}
	computed := tracker.Compute()
	out := make([]ChurnWeek, len(computed))
	for i := range computed {
		wc := &computed[i]
		out[i] = ChurnWeek{
			Week:          wc.Week,
			IPs:           wc.IPs,
			Bytes:         wc.Bytes,
			ASes:          wc.ASes,
			TotalASes:     wc.TotalASes,
			TotalPrefixes: wc.TotalPrefixes,
			UnresolvedIPs: wc.UnresolvedIPs,
			HTTPSIPs:      wc.HTTPSIPs,
			HTTPSBytes:    wc.HTTPSBytes,
			TotalBytes:    wc.TotalBytes,
			EstLoss:       wc.EstLoss,
			Gap:           wc.Gap,
			ObservedWeeks: wc.ObservedWeeks,
			Streak:        wc.Streak,
		}
	}
	return out, nil
}

// handleChurn serves the longitudinal series. Quarantined weeks become
// explicit gap rows rather than failing the whole series — a degraded
// campaign still answers longitudinal questions over the weeks it has.
func (s *Server) handleChurn(w http.ResponseWriter, r *http.Request) {
	weeks := s.store.Weeks()
	snaps := make([]*snapshot.Snapshot, 0, len(weeks))
	for _, wk := range weeks {
		if s.store.IsQuarantined(wk) {
			snaps = append(snaps, nil)
			continue
		}
		snap, err := s.cache.Get(r.Context(), wk)
		if err != nil {
			fail(w, err)
			return
		}
		snaps = append(snaps, snap)
	}
	series, err := ChurnSeries(s.store.Env(), weeks, snaps)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, series)
}
