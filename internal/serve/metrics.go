package serve

import "ixplens/internal/obs"

// Metrics is the serving layer's observability bundle: the request
// funnel (latency, in-flight level, load shedding), the week cache
// (hits, misses, evictions, single-flight joins) and the snapshot
// store (snapshot loads vs full analyses, snapshot write outcomes).
// NewMetrics always returns a usable bundle — with a nil registry the
// fields are nil metrics, whose methods are no-ops — so the serving
// code never branches on instrumentation.
type Metrics struct {
	// ReqNanos is the wall-time distribution of one served request,
	// including any analysis it triggered; InFlight is the number of
	// requests currently inside the handler.
	ReqNanos *obs.Histogram
	InFlight *obs.Gauge
	// Shed counts requests rejected with 503 because the in-flight
	// limit was reached — the server sheds instead of queueing.
	Shed *obs.Counter
	// CacheHits/CacheMisses count week-cache lookups; Evictions counts
	// weeks dropped by the bounded cache; FlightJoins counts requests
	// that attached to an analysis another request already started.
	CacheHits   *obs.Counter
	CacheMisses *obs.Counter
	Evictions   *obs.Counter
	FlightJoins *obs.Counter
	// SnapshotLoads counts weeks served from an on-disk snapshot;
	// Analyses counts full capture→dissect→identify runs. Their sum is
	// the cache-miss work the store actually performed.
	SnapshotLoads *obs.Counter
	Analyses      *obs.Counter
	// AnalyzeNanos is the wall-time distribution of the full analyses
	// only (snapshot loads excluded). Its p90 drives the Retry-After
	// hint on shed responses: when the server is saturated, the honest
	// back-off is "about one analysis from now".
	AnalyzeNanos *obs.Histogram
	// SnapshotWrites/SnapshotWriteErrors count snapshot persistence
	// outcomes when the store writes snapshots after analysis.
	SnapshotWrites      *obs.Counter
	SnapshotWriteErrors *obs.Counter
}

// NewMetrics resolves the serving metrics in r; a nil registry yields
// a bundle of no-op metrics.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		ReqNanos:            r.Histogram("serve_request_ns"),
		InFlight:            r.Gauge("serve_inflight"),
		Shed:                r.Counter("serve_shed_total"),
		CacheHits:           r.Counter("serve_cache_hits_total"),
		CacheMisses:         r.Counter("serve_cache_misses_total"),
		Evictions:           r.Counter("serve_cache_evictions_total"),
		FlightJoins:         r.Counter("serve_flight_joins_total"),
		SnapshotLoads:       r.Counter("serve_snapshot_loads_total"),
		Analyses:            r.Counter("serve_analyses_total"),
		AnalyzeNanos:        r.Histogram("serve_analyze_ns"),
		SnapshotWrites:      r.Counter("serve_snapshot_writes_total"),
		SnapshotWriteErrors: r.Counter("serve_snapshot_write_errors_total"),
	}
}
