package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"ixplens/internal/obs"
	"ixplens/internal/supervise"
)

// TestDegradedServing: with a quarantined week the server reports
// degraded health naming the hole, refuses the week with 422, flags it
// in the inventory, and serves /churn with an explicit gap row instead
// of failing the whole series.
func TestDegradedServing(t *testing.T) {
	dir := campaign(t, 4, 2000)
	store, err := OpenStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	weeks := store.Weeks()
	bad := weeks[1]
	store.SetQuarantined([]int{bad})

	s := New(store, Config{}, obs.NewRegistry())
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get("/healthz")
	if code != 200 {
		t.Fatalf("healthz: %d %s", code, body)
	}
	var health struct {
		Status      string `json:"status"`
		Weeks       int    `json:"weeks"`
		Quarantined []int  `json:"quarantined"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.Weeks != 4 {
		t.Fatalf("health: %+v", health)
	}
	if len(health.Quarantined) != 1 || health.Quarantined[0] != bad {
		t.Fatalf("quarantined list: %v", health.Quarantined)
	}

	if code, body := get(fmt.Sprintf("/week/%d", bad)); code != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined week answered %d %s, want 422", code, body)
	}
	if code, _ := get(fmt.Sprintf("/week/%d", weeks[0])); code != 200 {
		t.Fatalf("healthy week answered %d", code)
	}
	if _, err := store.Load(context.Background(), bad); !errors.Is(err, ErrQuarantinedWeek) {
		t.Fatalf("Load(quarantined) = %v, want ErrQuarantinedWeek", err)
	}

	code, body = get("/weeks")
	if code != 200 {
		t.Fatalf("weeks: %d", code)
	}
	var infos []WeekInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	for i, info := range infos {
		if want := i == 1; info.Quarantined != want {
			t.Fatalf("week %d quarantined=%v, want %v", info.Week, info.Quarantined, want)
		}
	}

	code, body = get("/churn")
	if code != 200 {
		t.Fatalf("churn on degraded campaign: %d %s", code, body)
	}
	var series []ChurnWeek
	if err := json.Unmarshal(body, &series); err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series length %d, want 4 (gaps hold their place)", len(series))
	}
	gapRow := series[1]
	if !gapRow.Gap || gapRow.Week != bad {
		t.Fatalf("gap row: %+v", gapRow)
	}
	if gapRow.TotalBytes != 0 || gapRow.IPs != [3]int{} || gapRow.Streak != 0 {
		t.Fatalf("gap row not zeroed: %+v", gapRow)
	}
	// Observed-week accounting: 1 before the gap, unchanged across it,
	// then advancing again; the streak restarts after the gap.
	wantObs := []int{1, 1, 2, 3}
	wantStreak := []int{1, 0, 1, 2}
	for i, row := range series {
		if row.Gap != (i == 1) {
			t.Fatalf("row %d gap=%v", i, row.Gap)
		}
		if row.ObservedWeeks != wantObs[i] || row.Streak != wantStreak[i] {
			t.Fatalf("row %d observed=%d streak=%d, want %d/%d",
				i, row.ObservedWeeks, row.Streak, wantObs[i], wantStreak[i])
		}
	}
	// A server IP present in every observed week must be stable in the
	// last row despite the gap: the gap neither advances nor penalizes.
	last := series[3]
	if last.IPs[0] == 0 {
		t.Fatal("no stable IPs across the gap — gap penalized histories")
	}
}

// TestOpenStoreReadsSuperviseJournal: a supervise journal left in the
// campaign directory quarantines weeks in the store without any wiring.
func TestOpenStoreReadsSuperviseJournal(t *testing.T) {
	dir := campaign(t, 3, 2000)
	plain, err := OpenStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if q := plain.Quarantined(); len(q) != 0 {
		t.Fatalf("unsupervised campaign quarantined %v", q)
	}
	bad := plain.Weeks()[2]

	j, err := supervise.OpenJournal(dir, "test-config")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&supervise.Record{Event: supervise.EventQuarantine, Week: bad, Err: "boom"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	store, err := OpenStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if q := store.Quarantined(); len(q) != 1 || q[0] != bad {
		t.Fatalf("quarantined = %v, want [%d]", q, bad)
	}
	if !store.IsQuarantined(bad) || store.IsQuarantined(plain.Weeks()[0]) {
		t.Fatal("IsQuarantined wrong")
	}
}

// TestRetryAfterFromAnalysisHistogram: the shed response's Retry-After
// follows the p90 of observed analysis durations — 1s floor before any
// analysis, the rounded-up p90 after, capped at 60s.
func TestRetryAfterFromAnalysisHistogram(t *testing.T) {
	dir := campaign(t, 2, 1500)
	store, err := OpenStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(store, Config{MaxInFlight: 1}, reg)
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	shedHeader := func() string {
		t.Helper()
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		resp, err := http.Get(ts.URL + "/weeks")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("saturated server answered %d", resp.StatusCode)
		}
		return resp.Header.Get("Retry-After")
	}

	if got := shedHeader(); got != "1" {
		t.Fatalf("Retry-After before any analysis = %q, want 1", got)
	}

	// One real cold load must feed the histogram.
	if _, err := store.Load(context.Background(), store.Weeks()[0]); err != nil {
		t.Fatal(err)
	}
	if n := s.m.AnalyzeNanos.Count(); n != 1 {
		t.Fatalf("analysis not observed: count %d", n)
	}

	// A 3s analysis lands in the (2^31, 2^32] ns bucket, whose upper
	// bound rounds up to 5s.
	s.m.AnalyzeNanos.Observe(3_000_000_000)
	if got := s.retryAfterSeconds(); got < 1 || got > 60 {
		t.Fatalf("retryAfterSeconds out of range: %d", got)
	}
	reg2 := obs.NewRegistry()
	h := reg2.Histogram("serve_analyze_ns")
	s2 := &Server{m: &Metrics{AnalyzeNanos: h}}
	if got := s2.retryAfterSeconds(); got != 1 {
		t.Fatalf("empty histogram: %d, want 1", got)
	}
	h.Observe(3_000_000_000)
	if got := s2.retryAfterSeconds(); got != 5 {
		t.Fatalf("3s analysis: Retry-After %d, want 5 (bucket upper bound rounded up)", got)
	}
	// A pathological 200s outlier dominates p90 but is capped.
	h.Observe(200_000_000_000)
	if got := s2.retryAfterSeconds(); got != 60 {
		t.Fatalf("outlier: Retry-After %d, want 60 (capped)", got)
	}

	if got := shedHeader(); got == "" {
		t.Fatal("shed response lost its Retry-After header")
	}
}
