// Package snapshot persists one fully analyzed week — the
// identification result, the dissection cascade counts and the week's
// loss annotation — in a versioned, checksummed binary container, so a
// serving layer can reload an analyzed week in milliseconds instead of
// re-running the capture→dissect→identify pipeline.
//
// Layout ("IXPSNAP1"):
//
//	file    := "IXPSNAP1" rawLen:u32 crc:u32 payload[rawLen]
//	payload := digest counts result
//	counts  := 8 cascade tallies + 3 byte totals, all u64
//	result  := week:u32 estLoss:f64bits funnel:u64×4 serverBytes:u64
//	           nServers:u32 server*
//	server  := ip:u32 flags:u8 bytes:u64 member:u32 ports hosts cert
//
// All integers are big-endian. The crc is CRC32C over the payload, so
// a flipped bit on disk surfaces as ErrChecksum instead of decoding to
// a silently wrong result. Servers are encoded sorted by IP, strings
// and sets in their (already deterministic) stored order, so encoding
// the same result twice yields byte-identical files — the golden
// equivalence tests depend on that.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"ixplens/internal/core/dissect"
	"ixplens/internal/core/webserver"
	"ixplens/internal/packet"
)

var magic = [8]byte{'I', 'X', 'P', 'S', 'N', 'A', 'P', '1'}

// headerLen is magic(8) + rawLen(4) + crc(4).
const headerLen = 16

// maxPayload bounds a declared payload so a corrupt length field cannot
// trigger a huge allocation before the checksum is even read.
const maxPayload = 1 << 28

// Sentinel errors, testable with errors.Is.
var (
	// ErrBadMagic marks a file that is not a snapshot container.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrChecksum marks a snapshot whose payload does not verify.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrFormat marks a payload that verified but does not decode —
	// a truncated write or a newer field layout.
	ErrFormat = errors.New("snapshot: malformed payload")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Snapshot bundles everything the serving layer needs for one analyzed
// week.
type Snapshot struct {
	// Result is the week's identification outcome, including EstLoss.
	Result *webserver.Result
	// Counts is the week's dissection cascade accounting.
	Counts dissect.Counts
	// SourceDigest optionally records the sha256 hex digest of the
	// capture file the analysis consumed (from the campaign manifest),
	// so a reader can detect a snapshot gone stale after the capture
	// was rewritten. Empty means unknown.
	SourceDigest string
}

// FileName returns the conventional snapshot file name for a week.
func FileName(isoWeek int) string {
	return fmt.Sprintf("week-%02d.snap", isoWeek)
}

// Server flag bits.
const (
	flagHTTP = 1 << iota
	flagHTTPS
	flagAlsoClient
)

// AppendEncode appends the full container (header + payload) to dst and
// returns the extended slice.
func AppendEncode(dst []byte, snap *Snapshot) ([]byte, error) {
	if snap == nil || snap.Result == nil {
		return dst, errors.New("snapshot: nil result")
	}
	payload, err := appendPayload(nil, snap)
	if err != nil {
		return dst, err
	}
	dst = append(dst, magic[:]...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...), nil
}

func appendPayload(b []byte, snap *Snapshot) ([]byte, error) {
	b = appendString(b, snap.SourceDigest)

	c := &snap.Counts
	for _, v := range []int{c.Total, c.Undecodable, c.NonIPv4, c.Local,
		c.NonTCPUDP, c.PeeringTCP, c.PeeringUDP, c.PanicQuarantined} {
		b = binary.BigEndian.AppendUint64(b, uint64(v))
	}
	b = binary.BigEndian.AppendUint64(b, c.TotalBytes)
	b = binary.BigEndian.AppendUint64(b, c.PeeringTCPBytes)
	b = binary.BigEndian.AppendUint64(b, c.PeeringUDPBytes)

	r := snap.Result
	b = binary.BigEndian.AppendUint32(b, uint32(r.Week))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.EstLoss))
	for _, v := range []int{r.Candidates443, r.Responded443, r.Valid443, r.TotalIPs} {
		b = binary.BigEndian.AppendUint64(b, uint64(v))
	}
	b = binary.BigEndian.AppendUint64(b, r.ServerBytes)

	ips := make([]packet.IPv4Addr, 0, len(r.Servers))
	for ip := range r.Servers {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	b = binary.BigEndian.AppendUint32(b, uint32(len(ips)))
	for _, ip := range ips {
		s := r.Servers[ip]
		b = binary.BigEndian.AppendUint32(b, uint32(ip))
		var flags byte
		if s.HTTP {
			flags |= flagHTTP
		}
		if s.HTTPS {
			flags |= flagHTTPS
		}
		if s.AlsoClient {
			flags |= flagAlsoClient
		}
		b = append(b, flags)
		b = binary.BigEndian.AppendUint64(b, s.Bytes)
		b = binary.BigEndian.AppendUint32(b, uint32(s.Member))
		if len(s.Ports) > 255 {
			return b, fmt.Errorf("snapshot: server %v has %d ports", ip, len(s.Ports))
		}
		b = append(b, byte(len(s.Ports)))
		for _, p := range s.Ports {
			b = binary.BigEndian.AppendUint16(b, p)
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(s.Hosts)))
		for _, h := range s.Hosts {
			b = appendString(b, h)
		}
		b = appendString(b, s.Cert.Subject)
		b = binary.BigEndian.AppendUint16(b, uint16(len(s.Cert.AltNames)))
		for _, a := range s.Cert.AltNames {
			b = appendString(b, a)
		}
	}
	return b, nil
}

func appendString(b []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// Decode parses a full container from buf.
func Decode(buf []byte) (*Snapshot, error) {
	if len(buf) < headerLen || [8]byte(buf[:8]) != magic {
		return nil, ErrBadMagic
	}
	rawLen := binary.BigEndian.Uint32(buf[8:12])
	crc := binary.BigEndian.Uint32(buf[12:16])
	if rawLen > maxPayload || int(rawLen) != len(buf)-headerLen {
		return nil, fmt.Errorf("%w: payload length %d does not frame %d bytes",
			ErrFormat, rawLen, len(buf)-headerLen)
	}
	payload := buf[headerLen:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, ErrChecksum
	}
	return decodePayload(payload)
}

// cursor is a bounds-checked big-endian reader over the payload; the
// first short read poisons it and every later take returns zero.
type cursor struct {
	b   []byte
	bad bool
}

func (c *cursor) take(n int) []byte {
	if c.bad || len(c.b) < n {
		c.bad = true
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

func (c *cursor) u8() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (c *cursor) str() string {
	n := int(c.u16())
	b := c.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func decodePayload(payload []byte) (*Snapshot, error) {
	cur := &cursor{b: payload}
	snap := &Snapshot{SourceDigest: cur.str()}

	c := &snap.Counts
	for _, dst := range []*int{&c.Total, &c.Undecodable, &c.NonIPv4, &c.Local,
		&c.NonTCPUDP, &c.PeeringTCP, &c.PeeringUDP, &c.PanicQuarantined} {
		*dst = int(cur.u64())
	}
	c.TotalBytes = cur.u64()
	c.PeeringTCPBytes = cur.u64()
	c.PeeringUDPBytes = cur.u64()

	r := &webserver.Result{Week: int(cur.u32())}
	r.EstLoss = math.Float64frombits(cur.u64())
	for _, dst := range []*int{&r.Candidates443, &r.Responded443, &r.Valid443, &r.TotalIPs} {
		*dst = int(cur.u64())
	}
	r.ServerBytes = cur.u64()

	nServers := int(cur.u32())
	if cur.bad || nServers > len(cur.b) {
		// Each server occupies well over one payload byte, so a count
		// exceeding the remaining payload is structurally impossible.
		return nil, fmt.Errorf("%w: truncated result header", ErrFormat)
	}
	r.Servers = make(map[packet.IPv4Addr]*webserver.Server, nServers)
	for i := 0; i < nServers; i++ {
		s := &webserver.Server{IP: packet.IPv4Addr(cur.u32())}
		flags := cur.u8()
		s.HTTP = flags&flagHTTP != 0
		s.HTTPS = flags&flagHTTPS != 0
		s.AlsoClient = flags&flagAlsoClient != 0
		s.Bytes = cur.u64()
		s.Member = int32(cur.u32())
		if nPorts := int(cur.u8()); nPorts > 0 {
			s.Ports = make([]uint16, nPorts)
			for j := range s.Ports {
				s.Ports[j] = cur.u16()
			}
		}
		if nHosts := int(cur.u16()); nHosts > 0 {
			if nHosts > len(cur.b) {
				return nil, fmt.Errorf("%w: truncated server record", ErrFormat)
			}
			s.Hosts = make([]string, nHosts)
			for j := range s.Hosts {
				s.Hosts[j] = cur.str()
			}
		}
		s.Cert.Subject = cur.str()
		if nAlt := int(cur.u16()); nAlt > 0 {
			if nAlt > len(cur.b) {
				return nil, fmt.Errorf("%w: truncated cert record", ErrFormat)
			}
			s.Cert.AltNames = make([]string, nAlt)
			for j := range s.Cert.AltNames {
				s.Cert.AltNames[j] = cur.str()
			}
		}
		if cur.bad {
			return nil, fmt.Errorf("%w: truncated server record", ErrFormat)
		}
		r.Servers[s.IP] = s
	}
	if cur.bad {
		return nil, fmt.Errorf("%w: truncated payload", ErrFormat)
	}
	if len(cur.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, len(cur.b))
	}
	snap.Result = r
	return snap, nil
}

// Write encodes snap and writes the container to w.
func Write(w io.Writer, snap *Snapshot) error {
	buf, err := AppendEncode(nil, snap)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Read decodes one container from r, consuming it fully.
func Read(r io.Reader) (*Snapshot, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrBadMagic
		}
		return nil, err
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, ErrBadMagic
	}
	rawLen := binary.BigEndian.Uint32(hdr[8:12])
	if rawLen > maxPayload {
		return nil, fmt.Errorf("%w: declared payload of %d bytes", ErrFormat, rawLen)
	}
	buf := make([]byte, headerLen+int(rawLen))
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[headerLen:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return Decode(buf)
}

// SaveFile writes snap to path atomically: encode to a temp file in the
// same directory, sync, close (both checked — a full disk must not
// leave a truncated snapshot that parses as damage), then rename into
// place.
func SaveFile(path string, snap *Snapshot) error {
	buf, err := AppendEncode(nil, snap)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	discard := func(e error) error {
		f.Close()
		os.Remove(tmp)
		return e
	}
	if _, err := f.Write(buf); err != nil {
		return discard(err)
	}
	if err := f.Sync(); err != nil {
		return discard(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads and decodes the snapshot at path.
func LoadFile(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}
