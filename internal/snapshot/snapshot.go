// Package snapshot persists one fully analyzed week — every registered
// analyzer's product, the dissection cascade counts and the week's
// source binding — in a versioned, checksummed binary container, so a
// serving layer can reload an analyzed week in milliseconds instead of
// re-running the capture→dissect→analyze pipeline.
//
// The current container is the multi-section "IXPSNAP2":
//
//	file    := "IXPSNAP2" nSections:u32 tableLen:u32 tableCrc:u32 entry* payload*
//	entry   := nameLen:u8 name version:u16 payLen:u32 crc:u32
//	payload := one section's bytes, in table order
//
// Sections are sorted by name, each payload carries its own CRC32C, and
// tableCrc covers the entry region itself (verified before any entry is
// parsed), so a flipped bit anywhere past the fixed header surfaces as
// ErrChecksum — naming the damaged section when it hit a payload —
// instead of decoding to a silently wrong product. The known
// sections are "meta" (the capture digest binding), "counts" (the
// cascade tallies) and one per builtin analyzer ("webserver",
// "visibility", "links"); unknown section names round-trip untouched
// through Extra, while a known section with an unrecognized version
// fails with the typed ErrSectionVersion. Everything is encoded
// deterministically (sorted sections, sorted servers/IPs/flows), so
// encoding the same snapshot twice yields byte-identical files — the
// supervisor's crash-resume digests and the golden equivalence tests
// depend on that.
//
// The legacy single-section "IXPSNAP1" layout
//
//	file    := "IXPSNAP1" rawLen:u32 crc:u32 payload[rawLen]
//	payload := digest counts result
//
// is still both readable (Decode sniffs the magic) and writable
// (AppendEncodeV1/SaveFileV1), byte-identical to what PR 7 shipped, for
// campaigns that must stay consumable by older builds.
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"ixplens/internal/analysis"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/webserver"
	"ixplens/internal/vfs"
)

var (
	magicV1 = [8]byte{'I', 'X', 'P', 'S', 'N', 'A', 'P', '1'}
	magicV2 = [8]byte{'I', 'X', 'P', 'S', 'N', 'A', 'P', '2'}
)

// headerLenV1 is magic(8) + rawLen(4) + crc(4).
const headerLenV1 = 16

// headerLenV2 is magic(8) + nSections(4) + tableLen(4) + tableCrc(4).
const headerLenV2 = 20

// maxPayload bounds a declared payload (whole-file for v1, per-section
// for v2) so a corrupt length field cannot trigger a huge allocation
// before the checksum is even read.
const maxPayload = 1 << 28

// maxSections bounds a v2 section count; the table is tiny in practice.
const maxSections = 1 << 10

// Sentinel errors, testable with errors.Is.
var (
	// ErrBadMagic marks a file that is not a snapshot container.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrChecksum marks a snapshot whose payload does not verify.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrFormat marks a payload that verified but does not decode —
	// a truncated write or a newer field layout.
	ErrFormat = errors.New("snapshot: malformed payload")
	// ErrSectionVersion marks a known section carrying a version this
	// build cannot decode — written by a newer build, or corrupted in a
	// way the checksum cannot catch (it covers the payload, not the
	// table entry).
	ErrSectionVersion = errors.New("snapshot: unsupported section version")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Known non-analyzer section names.
const (
	secMeta   = "meta"
	secCounts = "counts"
)

// Section is one named, versioned unit of a v2 container that this
// build has no typed decoding for. Decode preserves unknown sections
// here and AppendEncode writes them back, so a snapshot written by a
// build with more analyzers survives a rewrite by this one.
type Section struct {
	Name    string
	Version uint16
	Payload []byte
}

// Snapshot bundles everything the serving layer needs for one analyzed
// week.
type Snapshot struct {
	// Result is the week's identification outcome, including EstLoss.
	Result *webserver.Result
	// Counts is the week's dissection cascade accounting.
	Counts dissect.Counts
	// SourceDigest optionally records the sha256 hex digest of the
	// capture file the analysis consumed (from the campaign manifest),
	// so a reader can detect a snapshot gone stale after the capture
	// was rewritten. Empty means unknown.
	SourceDigest string
	// Visibility is the §3 per-IP traffic product; nil when the
	// visibility analyzer did not run (or the snapshot predates it).
	Visibility *analysis.VisibilityProduct
	// Links is the §5 peering-flow product; nil when absent.
	Links *analysis.LinksProduct
	// Extra carries sections of analyzers this build does not know,
	// preserved byte-for-byte.
	Extra []Section
}

// FileName returns the conventional snapshot file name for a week.
func FileName(isoWeek int) string {
	return fmt.Sprintf("week-%02d.snap", isoWeek)
}

// FromProducts assembles a snapshot from one fused analysis run: typed
// fields for the builtin products, encoded Extra sections for any
// analyzer this package has no field for — every registered product is
// persisted either way. SourceDigest is left for the caller to bind.
func FromProducts(p *analysis.Products, counts dissect.Counts) (*Snapshot, error) {
	snap := &Snapshot{Counts: counts}
	for _, np := range p.All() {
		switch prod := np.P.(type) {
		case *analysis.WebserverProduct:
			snap.Result = prod.Res
		case *analysis.VisibilityProduct:
			snap.Visibility = prod
		case *analysis.LinksProduct:
			snap.Links = prod
		default:
			payload, err := np.P.AppendEncode(nil)
			if err != nil {
				return nil, fmt.Errorf("snapshot: encoding product %q: %w", np.Name, err)
			}
			snap.Extra = append(snap.Extra, Section{Name: np.Name, Version: np.Version, Payload: payload})
		}
	}
	if snap.Result == nil {
		return nil, errors.New("snapshot: product set lacks the webserver result")
	}
	return snap, nil
}

// HasProduct reports whether the snapshot carries the named analyzer's
// product — the staleness signal the serving and supervising layers use
// to re-analyze legacy (v1, or narrower-registry) snapshots.
func (s *Snapshot) HasProduct(name string) bool {
	switch name {
	case analysis.NameWebserver:
		return s.Result != nil
	case analysis.NameVisibility:
		return s.Visibility != nil
	case analysis.NameLinks:
		return s.Links != nil
	}
	for i := range s.Extra {
		if s.Extra[i].Name == name {
			return true
		}
	}
	return false
}

// appendCounts appends the cascade tallies (8 cascade ints + 3 byte
// totals, all u64 big-endian) — the layout both container versions
// share.
func appendCounts(b []byte, c *dissect.Counts) []byte {
	for _, v := range []int{c.Total, c.Undecodable, c.NonIPv4, c.Local,
		c.NonTCPUDP, c.PeeringTCP, c.PeeringUDP, c.PanicQuarantined} {
		b = binary.BigEndian.AppendUint64(b, uint64(v))
	}
	b = binary.BigEndian.AppendUint64(b, c.TotalBytes)
	b = binary.BigEndian.AppendUint64(b, c.PeeringTCPBytes)
	b = binary.BigEndian.AppendUint64(b, c.PeeringUDPBytes)
	return b
}

func readCounts(cur *analysis.Cursor, c *dissect.Counts) {
	for _, dst := range []*int{&c.Total, &c.Undecodable, &c.NonIPv4, &c.Local,
		&c.NonTCPUDP, &c.PeeringTCP, &c.PeeringUDP, &c.PanicQuarantined} {
		*dst = int(cur.U64())
	}
	c.TotalBytes = cur.U64()
	c.PeeringTCPBytes = cur.U64()
	c.PeeringUDPBytes = cur.U64()
}

// AppendEncode appends the current (IXPSNAP2) container to dst and
// returns the extended slice.
func AppendEncode(dst []byte, snap *Snapshot) ([]byte, error) {
	if snap == nil || snap.Result == nil {
		return dst, errors.New("snapshot: nil result")
	}
	secs := make([]Section, 0, 5+len(snap.Extra))
	secs = append(secs,
		Section{Name: secMeta, Version: 1, Payload: analysis.AppendString(nil, snap.SourceDigest)},
		Section{Name: secCounts, Version: 1, Payload: appendCounts(nil, &snap.Counts)},
	)
	wsPayload, err := analysis.AppendResult(nil, snap.Result)
	if err != nil {
		return dst, err
	}
	secs = append(secs, Section{Name: analysis.NameWebserver, Version: 1, Payload: wsPayload})
	if snap.Visibility != nil {
		payload, err := snap.Visibility.AppendEncode(nil)
		if err != nil {
			return dst, err
		}
		secs = append(secs, Section{Name: analysis.NameVisibility, Version: 1, Payload: payload})
	}
	if snap.Links != nil {
		payload, err := snap.Links.AppendEncode(nil)
		if err != nil {
			return dst, err
		}
		secs = append(secs, Section{Name: analysis.NameLinks, Version: 1, Payload: payload})
	}
	secs = append(secs, snap.Extra...)

	sort.Slice(secs, func(i, j int) bool { return secs[i].Name < secs[j].Name })
	for i := range secs {
		if i > 0 && secs[i].Name == secs[i-1].Name {
			return dst, fmt.Errorf("snapshot: duplicate section %q", secs[i].Name)
		}
		if len(secs[i].Name) == 0 || len(secs[i].Name) > 255 {
			return dst, fmt.Errorf("snapshot: section name %q out of range", secs[i].Name)
		}
		if len(secs[i].Payload) > maxPayload {
			return dst, fmt.Errorf("snapshot: section %q payload of %d bytes", secs[i].Name, len(secs[i].Payload))
		}
	}

	var table []byte
	for i := range secs {
		table = append(table, byte(len(secs[i].Name)))
		table = append(table, secs[i].Name...)
		table = binary.BigEndian.AppendUint16(table, secs[i].Version)
		table = binary.BigEndian.AppendUint32(table, uint32(len(secs[i].Payload)))
		table = binary.BigEndian.AppendUint32(table, crc32.Checksum(secs[i].Payload, castagnoli))
	}
	dst = append(dst, magicV2[:]...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(secs)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(table)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(table, castagnoli))
	dst = append(dst, table...)
	for i := range secs {
		dst = append(dst, secs[i].Payload...)
	}
	return dst, nil
}

// AppendEncodeV1 appends the legacy IXPSNAP1 container — byte-identical
// to what pre-registry builds wrote. It carries only the identification
// result, counts and digest; visibility/links/Extra products are NOT
// representable in v1 and are silently dropped, which is the point:
// older consumers read exactly the file they always did.
func AppendEncodeV1(dst []byte, snap *Snapshot) ([]byte, error) {
	if snap == nil || snap.Result == nil {
		return dst, errors.New("snapshot: nil result")
	}
	payload := analysis.AppendString(nil, snap.SourceDigest)
	payload = appendCounts(payload, &snap.Counts)
	payload, err := analysis.AppendResult(payload, snap.Result)
	if err != nil {
		return dst, err
	}
	dst = append(dst, magicV1[:]...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...), nil
}

// Decode parses a full container from buf, sniffing the version.
func Decode(buf []byte) (*Snapshot, error) {
	if len(buf) >= 8 && [8]byte(buf[:8]) == magicV2 {
		return decodeV2(buf)
	}
	if len(buf) < headerLenV1 || [8]byte(buf[:8]) != magicV1 {
		return nil, ErrBadMagic
	}
	rawLen := binary.BigEndian.Uint32(buf[8:12])
	crc := binary.BigEndian.Uint32(buf[12:16])
	if rawLen > maxPayload || int(rawLen) != len(buf)-headerLenV1 {
		return nil, fmt.Errorf("%w: payload length %d does not frame %d bytes",
			ErrFormat, rawLen, len(buf)-headerLenV1)
	}
	payload := buf[headerLenV1:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, ErrChecksum
	}
	return decodePayloadV1(payload)
}

func decodePayloadV1(payload []byte) (*Snapshot, error) {
	cur := analysis.NewCursor(payload)
	snap := &Snapshot{SourceDigest: cur.Str()}
	readCounts(cur, &snap.Counts)
	res, err := analysis.ReadResult(cur)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if cur.Bad() {
		return nil, fmt.Errorf("%w: truncated payload", ErrFormat)
	}
	if cur.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, cur.Len())
	}
	snap.Result = res
	return snap, nil
}

func decodeV2(buf []byte) (*Snapshot, error) {
	cur := analysis.NewCursor(buf[8:])
	n := int(cur.U32())
	tableLen := int(cur.U32())
	tableCrc := cur.U32()
	if cur.Bad() || n > maxSections {
		return nil, fmt.Errorf("%w: section count %d", ErrFormat, n)
	}
	if tableLen > cur.Len() {
		return nil, fmt.Errorf("%w: truncated section table", ErrFormat)
	}
	table := cur.Take(tableLen)
	if crc32.Checksum(table, castagnoli) != tableCrc {
		return nil, fmt.Errorf("%w: section table", ErrChecksum)
	}
	type entry struct {
		name    string
		version uint16
		length  uint32
		crc     uint32
	}
	entries := make([]entry, n)
	total := 0
	tcur := analysis.NewCursor(table)
	for i := range entries {
		nameLen := int(tcur.U8())
		entries[i].name = string(tcur.Take(nameLen))
		entries[i].version = tcur.U16()
		entries[i].length = tcur.U32()
		entries[i].crc = tcur.U32()
		if tcur.Bad() {
			return nil, fmt.Errorf("%w: truncated section table", ErrFormat)
		}
		if entries[i].name == "" {
			return nil, fmt.Errorf("%w: empty section name", ErrFormat)
		}
		if entries[i].length > maxPayload {
			return nil, fmt.Errorf("%w: section %q payload of %d bytes",
				ErrFormat, entries[i].name, entries[i].length)
		}
		total += int(entries[i].length)
	}
	if tcur.Len() != 0 {
		return nil, fmt.Errorf("%w: %d bytes of section table beyond %d entries",
			ErrFormat, tcur.Len(), n)
	}
	if total != cur.Len() {
		return nil, fmt.Errorf("%w: section table frames %d bytes, %d present",
			ErrFormat, total, cur.Len())
	}

	snap := &Snapshot{}
	seen := make(map[string]bool, n)
	var sawMeta, sawCounts bool
	for i := range entries {
		e := &entries[i]
		payload := cur.Take(int(e.length))
		if seen[e.name] {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrFormat, e.name)
		}
		seen[e.name] = true
		if crc32.Checksum(payload, castagnoli) != e.crc {
			return nil, fmt.Errorf("%w: section %q", ErrChecksum, e.name)
		}
		switch e.name {
		case secMeta:
			if e.version != 1 {
				return nil, sectionVersionErr(e.name, e.version)
			}
			sc := analysis.NewCursor(payload)
			snap.SourceDigest = sc.Str()
			if sc.Bad() || sc.Len() != 0 {
				return nil, fmt.Errorf("%w: malformed meta section", ErrFormat)
			}
			sawMeta = true
		case secCounts:
			if e.version != 1 {
				return nil, sectionVersionErr(e.name, e.version)
			}
			sc := analysis.NewCursor(payload)
			readCounts(sc, &snap.Counts)
			if sc.Bad() || sc.Len() != 0 {
				return nil, fmt.Errorf("%w: malformed counts section", ErrFormat)
			}
			sawCounts = true
		case analysis.NameWebserver:
			res, err := analysis.DecodeResult(e.version, payload)
			if err != nil {
				return nil, mapAnalysisErr(e.name, e.version, err)
			}
			snap.Result = res
		case analysis.NameVisibility:
			vp, err := analysis.DecodeVisibility(e.version, payload)
			if err != nil {
				return nil, mapAnalysisErr(e.name, e.version, err)
			}
			snap.Visibility = vp
		case analysis.NameLinks:
			lp, err := analysis.DecodeLinks(e.version, payload)
			if err != nil {
				return nil, mapAnalysisErr(e.name, e.version, err)
			}
			snap.Links = lp
		default:
			// An analyzer this build does not know: preserve the section
			// so a rewrite does not lose it.
			cp := make([]byte, len(payload))
			copy(cp, payload)
			snap.Extra = append(snap.Extra, Section{Name: e.name, Version: e.version, Payload: cp})
		}
	}
	if !sawMeta || !sawCounts || snap.Result == nil {
		return nil, fmt.Errorf("%w: missing required section (meta/counts/webserver)", ErrFormat)
	}
	return snap, nil
}

func sectionVersionErr(name string, version uint16) error {
	return fmt.Errorf("%w: section %q v%d", ErrSectionVersion, name, version)
}

// mapAnalysisErr translates a product codec failure into this package's
// typed errors.
func mapAnalysisErr(name string, version uint16, err error) error {
	if errors.Is(err, analysis.ErrVersion) {
		return sectionVersionErr(name, version)
	}
	return fmt.Errorf("%w: section %q: %v", ErrFormat, name, err)
}

// Write encodes snap (current container version) and writes it to w.
func Write(w io.Writer, snap *Snapshot) error {
	buf, err := AppendEncode(nil, snap)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Read decodes one container from r, consuming it fully.
func Read(r io.Reader) (*Snapshot, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrBadMagic
		}
		return nil, err
	}
	switch hdr {
	case magicV2:
		// The v2 table is variable-length, so the stream form buffers
		// the rest; snapshot files are small (one analyzed week).
		rest, err := io.ReadAll(io.LimitReader(r, maxPayload))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		return decodeV2(append(hdr[:], rest...))
	case magicV1:
		var lenCrc [8]byte
		if _, err := io.ReadFull(r, lenCrc[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		rawLen := binary.BigEndian.Uint32(lenCrc[:4])
		if rawLen > maxPayload {
			return nil, fmt.Errorf("%w: declared payload of %d bytes", ErrFormat, rawLen)
		}
		buf := make([]byte, headerLenV1+int(rawLen))
		copy(buf, hdr[:])
		copy(buf[8:], lenCrc[:])
		if _, err := io.ReadFull(r, buf[headerLenV1:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		return Decode(buf)
	default:
		return nil, ErrBadMagic
	}
}

// SaveFile writes snap to path atomically: encode to a temp file in the
// same directory, write, fsync, close (all checked — a full disk must
// not leave a truncated snapshot that parses as damage), rename into
// place, then fsync the parent directory so the rename itself survives
// power loss. Failed writes remove their temp file.
func SaveFile(path string, snap *Snapshot) error {
	_, err := SaveFileFS(vfs.Default, path, snap)
	return err
}

// SaveFileFS is SaveFile through an explicit filesystem seam. It
// returns the sha256 hex digest of the encoded bytes it INTENDED to
// persist; callers that must rule out silent write-back corruption (a
// lying fsync) compare it against a fresh read-back digest of path.
func SaveFileFS(fsys vfs.FS, path string, snap *Snapshot) (string, error) {
	buf, err := AppendEncode(nil, snap)
	if err != nil {
		return "", err
	}
	return saveBytes(fsys, path, buf)
}

// SaveFileV1 writes the legacy single-section container, for campaigns
// that must stay readable by pre-registry builds.
func SaveFileV1(path string, snap *Snapshot) error {
	buf, err := AppendEncodeV1(nil, snap)
	if err != nil {
		return err
	}
	_, err = saveBytes(vfs.Default, path, buf)
	return err
}

func saveBytes(fsys vfs.FS, path string, buf []byte) (string, error) {
	if err := vfs.WriteFileAtomic(fsys, path, buf, ".snap-*"); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:]), nil
}

// LoadFile reads and decodes the snapshot at path.
func LoadFile(path string) (*Snapshot, error) {
	return LoadFileFS(vfs.Default, path)
}

// LoadFileFS is LoadFile through an explicit filesystem seam.
func LoadFileFS(fsys vfs.FS, path string) (*Snapshot, error) {
	buf, err := vfs.ReadFile(fsys, path)
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}
