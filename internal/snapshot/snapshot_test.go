package snapshot

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ixplens/internal/analysis"
	"ixplens/internal/certsim"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/visibility"
	"ixplens/internal/core/webserver"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/traffic"
)

// syntheticV1 builds a snapshot with only the fields the legacy
// IXPSNAP1 container can carry, exercising every field shape: flags in
// all combinations, empty and populated sets, certificate alt names, a
// non-zero loss annotation.
func syntheticV1() *Snapshot {
	res := &webserver.Result{
		Week:          45,
		Servers:       map[packet.IPv4Addr]*webserver.Server{},
		Candidates443: 7,
		Responded443:  6,
		Valid443:      5,
		TotalIPs:      1234,
		ServerBytes:   1 << 40,
		EstLoss:       0.0321,
	}
	res.Servers[packet.MakeIPv4(10, 0, 0, 1)] = &webserver.Server{
		IP: packet.MakeIPv4(10, 0, 0, 1), HTTP: true, Bytes: 99,
		Ports: []uint16{80, 443, 8080}, Hosts: []string{"a.example", "b.example"},
		AlsoClient: true, Member: 17,
	}
	res.Servers[packet.MakeIPv4(10, 0, 0, 2)] = &webserver.Server{
		IP: packet.MakeIPv4(10, 0, 0, 2), HTTPS: true, Bytes: 1 << 50, Member: -1,
		Ports: []uint16{443},
		Cert:  certsim.Info{Subject: "shop.example", AltNames: []string{"cdn.example", "img.example"}},
	}
	res.Servers[packet.MakeIPv4(10, 0, 0, 3)] = &webserver.Server{
		IP: packet.MakeIPv4(10, 0, 0, 3), HTTP: true, HTTPS: true, Member: 0,
		Cert: certsim.Info{Subject: "only-subject.example"},
	}
	return &Snapshot{
		Result: res,
		Counts: dissect.Counts{
			Total: 100000, Undecodable: 3, NonIPv4: 40, Local: 55, NonTCPUDP: 66,
			PeeringTCP: 90000, PeeringUDP: 9000, PanicQuarantined: 2,
			TotalBytes: 1 << 55, PeeringTCPBytes: 1 << 54, PeeringUDPBytes: 1 << 40,
		},
		SourceDigest: "c0ffee",
	}
}

// synthetic extends syntheticV1 with every multi-section shape: both
// optional analyzer products (including a zero-byte visibility entry)
// and an unknown Extra section from a hypothetical future analyzer.
func synthetic() *Snapshot {
	snap := syntheticV1()
	snap.Visibility = &analysis.VisibilityProduct{PerIP: []visibility.IPTraffic{
		{IP: packet.MakeIPv4(10, 0, 0, 1), Bytes: 99},
		{IP: packet.MakeIPv4(10, 0, 0, 2), Bytes: 0},
		{IP: packet.MakeIPv4(172, 16, 0, 9), Bytes: 1 << 33},
	}}
	snap.Links = &analysis.LinksProduct{Flows: []analysis.Flow{
		{FlowKey: analysis.FlowKey{Src: packet.MakeIPv4(10, 0, 0, 1), Dst: packet.MakeIPv4(172, 16, 0, 9), In: 3, Out: 7}, Bytes: 4096, Samples: 2},
		{FlowKey: analysis.FlowKey{Src: packet.MakeIPv4(10, 0, 0, 2), Dst: packet.MakeIPv4(10, 0, 0, 1), In: 7, Out: -1}, Bytes: 1 << 20, Samples: 9},
	}}
	snap.Extra = []Section{{Name: "zz-future", Version: 3, Payload: []byte{1, 2, 3, 4}}}
	return snap
}

func TestRoundTripSynthetic(t *testing.T) {
	snap := synthetic()
	buf, err := AppendEncode(nil, snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", snap, got)
	}
	// Re-encoding the decoded snapshot must be byte-identical: the
	// codec is deterministic, so snapshots can be compared by digest.
	buf2, err := AppendEncode(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("re-encoded snapshot differs from original encoding")
	}
}

func TestRoundTripV1(t *testing.T) {
	snap := syntheticV1()
	buf, err := AppendEncodeV1(nil, snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:8]) != "IXPSNAP1" {
		t.Fatalf("v1 writer emitted magic %q", buf[:8])
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("v1 round trip diverged:\nwant %+v\ngot  %+v", snap, got)
	}
}

// TestGoldenV1Fixture pins backward compatibility against a committed
// file written by the pre-registry (single-section) snapshot writer:
// it must still decode, and AppendEncodeV1 must reproduce it
// byte-for-byte — the proof that the legacy writer survived the codec
// refactor unchanged.
func TestGoldenV1Fixture(t *testing.T) {
	fixture, err := os.ReadFile(filepath.Join("testdata", "week-45.v1.snap"))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Decode(fixture)
	if err != nil {
		t.Fatalf("legacy fixture no longer decodes: %v", err)
	}
	if !reflect.DeepEqual(snap, syntheticV1()) {
		t.Fatalf("legacy fixture decoded to unexpected snapshot:\n%+v", snap)
	}
	reenc, err := AppendEncodeV1(nil, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fixture, reenc) {
		t.Fatal("AppendEncodeV1 no longer byte-identical to the legacy writer")
	}
}

func TestRoundTripViaReaderWriter(t *testing.T) {
	for _, tc := range []struct {
		name   string
		encode func([]byte, *Snapshot) ([]byte, error)
		snap   *Snapshot
	}{
		{"v2", AppendEncode, synthetic()},
		{"v1", AppendEncodeV1, syntheticV1()},
	} {
		buf, err := tc.encode(nil, tc.snap)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Read(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(tc.snap, got) {
			t.Fatalf("%s: reader round trip diverged", tc.name)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	snap := synthetic()
	path := filepath.Join(t.TempDir(), FileName(45))
	if err := SaveFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatal("file round trip diverged")
	}
	// SaveFile is atomic: no temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want only the snapshot", len(entries))
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	for _, tc := range []struct {
		name      string
		encode    func([]byte, *Snapshot) ([]byte, error)
		snap      *Snapshot
		headerLen int
	}{
		{"v2", AppendEncode, synthetic(), headerLenV2},
		{"v1", AppendEncodeV1, syntheticV1(), headerLenV1},
	} {
		buf, err := tc.encode(nil, tc.snap)
		if err != nil {
			t.Fatal(err)
		}

		// Every single-bit flip past the fixed header must surface as
		// ErrChecksum (the table and every payload are each covered by
		// a CRC), never decode to a silently different result.
		for off := tc.headerLen; off < len(buf); off += 7 {
			bad := bytes.Clone(buf)
			bad[off] ^= 0x40
			if _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
				t.Fatalf("%s: flip at %d: got %v, want ErrChecksum", tc.name, off, err)
			}
		}
		// Flips inside the header fields must still fail — the exact
		// error depends on which field was hit.
		for off := 8; off < tc.headerLen; off++ {
			bad := bytes.Clone(buf)
			bad[off] ^= 0x40
			if _, err := Decode(bad); err == nil {
				t.Fatalf("%s: header flip at %d decoded successfully", tc.name, off)
			}
		}

		// Wrong magic.
		bad := bytes.Clone(buf)
		bad[0] = 'X'
		if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("%s: bad magic: got %v", tc.name, err)
		}

		// Truncation at any point fails cleanly (magic, format or
		// checksum error depending on the cut — never a panic or a
		// wrong result).
		for cut := 0; cut < len(buf); cut += 13 {
			if _, err := Decode(buf[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d decoded successfully", tc.name, cut)
			}
		}

		// A corrupt declared length must not drive a huge allocation.
		bad = bytes.Clone(buf)
		bad[8], bad[9], bad[10], bad[11] = 0xff, 0xff, 0xff, 0xff
		if _, err := Decode(bad); err == nil {
			t.Fatalf("%s: absurd length decoded successfully", tc.name)
		}

		// Trailing garbage is rejected.
		if _, err := Decode(append(bytes.Clone(buf), 0)); err == nil {
			t.Fatalf("%s: trailing byte decoded successfully", tc.name)
		}
	}
}

func TestDecodeUnknownMagic(t *testing.T) {
	for _, buf := range [][]byte{
		nil,
		[]byte("short"),
		[]byte("IXPSNAP9--------"),
		[]byte("NOTASNAPFILE----"),
	} {
		if _, err := Decode(buf); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("Decode(%q): got %v, want ErrBadMagic", buf, err)
		}
		if _, err := Read(bytes.NewReader(buf)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("Read(%q): got %v, want ErrBadMagic", buf, err)
		}
	}
}

// reencodeWithSectionVersion rewrites one section's declared version in
// an encoded v2 container, fixing up the table CRC so the tamper is
// structurally valid and only the version check can reject it.
func reencodeWithSectionVersion(t *testing.T, buf []byte, name string, version uint16) []byte {
	t.Helper()
	bad := bytes.Clone(buf)
	n := int(binary.BigEndian.Uint32(bad[8:12]))
	tableLen := int(binary.BigEndian.Uint32(bad[12:16]))
	off := headerLenV2
	found := false
	for i := 0; i < n; i++ {
		nameLen := int(bad[off])
		if string(bad[off+1:off+1+nameLen]) == name {
			binary.BigEndian.PutUint16(bad[off+1+nameLen:], version)
			found = true
		}
		off += 1 + nameLen + 2 + 4 + 4
	}
	if !found {
		t.Fatalf("section %q not present", name)
	}
	table := bad[headerLenV2 : headerLenV2+tableLen]
	binary.BigEndian.PutUint32(bad[16:20], crc32.Checksum(table, crc32.MakeTable(crc32.Castagnoli)))
	return bad
}

// TestSectionVersionRejected pins the forward-compat contract: a known
// section at a version this build cannot decode fails with the typed
// ErrSectionVersion (no panic, no silent skip), for builtin analyzer
// sections and the meta/counts sections alike.
func TestSectionVersionRejected(t *testing.T) {
	buf, err := AppendEncode(nil, synthetic())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"meta", "counts", "webserver", "visibility", "links"} {
		bad := reencodeWithSectionVersion(t, buf, name, 0x7fff)
		if _, err := Decode(bad); !errors.Is(err, ErrSectionVersion) {
			t.Fatalf("section %q at v32767: got %v, want ErrSectionVersion", name, err)
		}
	}
	// An UNKNOWN section's version is none of our business: it must be
	// preserved in Extra untouched, whatever it claims.
	bad := reencodeWithSectionVersion(t, buf, "zz-future", 0x7fff)
	snap, err := Decode(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Extra) != 1 || snap.Extra[0].Version != 0x7fff {
		t.Fatalf("unknown section not preserved: %+v", snap.Extra)
	}
}

func TestTruncatedSectionTableRejected(t *testing.T) {
	buf, err := AppendEncode(nil, synthetic())
	if err != nil {
		t.Fatal(err)
	}
	tableLen := int(binary.BigEndian.Uint32(buf[12:16]))
	// Cut the container off mid-table: every prefix that still carries
	// the fixed header but not the whole table must be ErrFormat.
	for cut := headerLenV2; cut < headerLenV2+tableLen; cut += 3 {
		if _, err := Decode(buf[:cut]); !errors.Is(err, ErrFormat) {
			t.Fatalf("table truncated at %d: got %v, want ErrFormat", cut, err)
		}
	}
}

func TestMissingRequiredSection(t *testing.T) {
	// A v2 container missing webserver/meta/counts must be rejected:
	// hand-build one holding only an unknown section.
	payload := []byte{9, 9}
	var table []byte
	table = append(table, byte(len("odd")))
	table = append(table, "odd"...)
	table = binary.BigEndian.AppendUint16(table, 1)
	table = binary.BigEndian.AppendUint32(table, uint32(len(payload)))
	table = binary.BigEndian.AppendUint32(table, crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	buf := []byte("IXPSNAP2")
	buf = binary.BigEndian.AppendUint32(buf, 1)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(table)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(table, crc32.MakeTable(crc32.Castagnoli)))
	buf = append(buf, table...)
	buf = append(buf, payload...)
	if _, err := Decode(buf); !errors.Is(err, ErrFormat) {
		t.Fatalf("container without required sections: got %v, want ErrFormat", err)
	}
}

func TestHasProduct(t *testing.T) {
	snap := synthetic()
	for _, name := range []string{"webserver", "visibility", "links", "zz-future"} {
		if !snap.HasProduct(name) {
			t.Fatalf("HasProduct(%q) = false on full snapshot", name)
		}
	}
	v1 := syntheticV1()
	if !v1.HasProduct("webserver") {
		t.Fatal("v1 snapshot lost its webserver product")
	}
	for _, name := range []string{"visibility", "links", "nope"} {
		if v1.HasProduct(name) {
			t.Fatalf("HasProduct(%q) = true on v1 snapshot", name)
		}
	}
}

// TestGoldenAllWeeks is the codec's equivalence proof: for every study
// week, a snapshot round trip of the freshly analyzed fused products —
// the identification aggregates, the visibility and flow products, the
// cascade counts and the EstLoss annotation — reproduces them exactly,
// and the encoding itself is deterministic.
func TestGoldenAllWeeks(t *testing.T) {
	env, err := pipeline.NewEnv(netmodel.Tiny(),
		traffic.Options{SamplesPerWeek: 2000, SamplingRate: 16384, SnapLen: 128})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &env.World.Cfg
	if cfg.Weeks != 17 {
		t.Fatalf("study has %d weeks, want 17", cfg.Weeks)
	}
	ctx := context.Background()
	for wk := cfg.FirstWeek; wk <= cfg.LastWeek(); wk++ {
		week, _, err := env.AnalyzeWeek(ctx, wk, nil)
		if err != nil {
			t.Fatalf("week %d: %v", wk, err)
		}
		snap, err := FromProducts(week.Products, week.Counts)
		if err != nil {
			t.Fatalf("week %d: %v", wk, err)
		}
		snap.SourceDigest = "d"
		buf, err := AppendEncode(nil, snap)
		if err != nil {
			t.Fatalf("week %d: %v", wk, err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("week %d: %v", wk, err)
		}
		if !reflect.DeepEqual(snap, got) {
			t.Fatalf("week %d: snapshot round trip diverged from fresh analysis", wk)
		}
		buf2, err := AppendEncode(nil, got)
		if err != nil {
			t.Fatalf("week %d: %v", wk, err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("week %d: snapshot encoding is not deterministic", wk)
		}
	}
}
