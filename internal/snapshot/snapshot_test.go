package snapshot

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ixplens/internal/certsim"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/webserver"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/traffic"
)

// synthetic builds a snapshot that exercises every field shape: flags
// in all combinations, empty and populated sets, certificate alt
// names, a non-zero loss annotation.
func synthetic() *Snapshot {
	res := &webserver.Result{
		Week:          45,
		Servers:       map[packet.IPv4Addr]*webserver.Server{},
		Candidates443: 7,
		Responded443:  6,
		Valid443:      5,
		TotalIPs:      1234,
		ServerBytes:   1 << 40,
		EstLoss:       0.0321,
	}
	res.Servers[packet.MakeIPv4(10, 0, 0, 1)] = &webserver.Server{
		IP: packet.MakeIPv4(10, 0, 0, 1), HTTP: true, Bytes: 99,
		Ports: []uint16{80, 443, 8080}, Hosts: []string{"a.example", "b.example"},
		AlsoClient: true, Member: 17,
	}
	res.Servers[packet.MakeIPv4(10, 0, 0, 2)] = &webserver.Server{
		IP: packet.MakeIPv4(10, 0, 0, 2), HTTPS: true, Bytes: 1 << 50, Member: -1,
		Ports: []uint16{443},
		Cert:  certsim.Info{Subject: "shop.example", AltNames: []string{"cdn.example", "img.example"}},
	}
	res.Servers[packet.MakeIPv4(10, 0, 0, 3)] = &webserver.Server{
		IP: packet.MakeIPv4(10, 0, 0, 3), HTTP: true, HTTPS: true, Member: 0,
		Cert: certsim.Info{Subject: "only-subject.example"},
	}
	return &Snapshot{
		Result: res,
		Counts: dissect.Counts{
			Total: 100000, Undecodable: 3, NonIPv4: 40, Local: 55, NonTCPUDP: 66,
			PeeringTCP: 90000, PeeringUDP: 9000, PanicQuarantined: 2,
			TotalBytes: 1 << 55, PeeringTCPBytes: 1 << 54, PeeringUDPBytes: 1 << 40,
		},
		SourceDigest: "c0ffee",
	}
}

func TestRoundTripSynthetic(t *testing.T) {
	snap := synthetic()
	buf, err := AppendEncode(nil, snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", snap, got)
	}
	// Re-encoding the decoded snapshot must be byte-identical: the
	// codec is deterministic, so snapshots can be compared by digest.
	buf2, err := AppendEncode(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("re-encoded snapshot differs from original encoding")
	}
}

func TestRoundTripViaReaderWriter(t *testing.T) {
	snap := synthetic()
	var b bytes.Buffer
	if err := Write(&b, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatal("reader/writer round trip diverged")
	}
}

func TestFileRoundTrip(t *testing.T) {
	snap := synthetic()
	path := filepath.Join(t.TempDir(), FileName(45))
	if err := SaveFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatal("file round trip diverged")
	}
	// SaveFile is atomic: no temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want only the snapshot", len(entries))
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	buf, err := AppendEncode(nil, synthetic())
	if err != nil {
		t.Fatal(err)
	}

	// Every single-bit flip in the payload must surface as ErrChecksum,
	// never decode to a silently different result.
	for off := headerLen; off < len(buf); off += 97 {
		bad := bytes.Clone(buf)
		bad[off] ^= 0x40
		if _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: got %v, want ErrChecksum", off, err)
		}
	}

	// Wrong magic.
	bad := bytes.Clone(buf)
	bad[0] = 'X'
	if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}

	// Truncation at any point fails cleanly (magic, format or checksum
	// error depending on the cut — never a panic or a wrong result).
	for cut := 0; cut < len(buf); cut += 13 {
		if _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}

	// A corrupt declared length must not drive a huge allocation.
	bad = bytes.Clone(buf)
	bad[8], bad[9], bad[10], bad[11] = 0xff, 0xff, 0xff, 0xff
	if _, err := Decode(bad); err == nil {
		t.Fatal("absurd payload length decoded successfully")
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	buf, err := AppendEncode(nil, synthetic())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(bytes.Clone(buf), 0)); err == nil {
		t.Fatal("trailing byte decoded successfully")
	}
}

// TestGoldenAllWeeks is the codec's equivalence proof: for every study
// week, a snapshot round trip of the freshly analyzed result — the
// identification aggregates, the cascade counts and the EstLoss
// annotation — reproduces it exactly, and the encoding itself is
// deterministic.
func TestGoldenAllWeeks(t *testing.T) {
	env, err := pipeline.NewEnv(netmodel.Tiny(),
		traffic.Options{SamplesPerWeek: 2000, SamplingRate: 16384, SnapLen: 128})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &env.World.Cfg
	if cfg.Weeks != 17 {
		t.Fatalf("study has %d weeks, want 17", cfg.Weeks)
	}
	ctx := context.Background()
	for wk := cfg.FirstWeek; wk <= cfg.LastWeek(); wk++ {
		res, counts, _, err := env.IdentifyWeek(ctx, wk)
		if err != nil {
			t.Fatalf("week %d: %v", wk, err)
		}
		snap := &Snapshot{Result: res, Counts: counts, SourceDigest: "d"}
		buf, err := AppendEncode(nil, snap)
		if err != nil {
			t.Fatalf("week %d: %v", wk, err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("week %d: %v", wk, err)
		}
		if !reflect.DeepEqual(snap, got) {
			t.Fatalf("week %d: snapshot round trip diverged from fresh analysis", wk)
		}
		buf2, err := AppendEncode(nil, got)
		if err != nil {
			t.Fatalf("week %d: %v", wk, err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("week %d: snapshot encoding is not deterministic", wk)
		}
	}
}
