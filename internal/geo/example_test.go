package geo_test

import (
	"fmt"

	"ixplens/internal/geo"
	"ixplens/internal/packet"
)

// Example builds a small country database and geo-locates addresses,
// the way the study maps its 230M+ observed IPs to countries.
func Example() {
	db, err := geo.Build([]geo.Range{
		{First: packet.MakeIPv4(80, 0, 0, 0), Last: packet.MakeIPv4(80, 255, 255, 255), Country: "DE"},
		{First: packet.MakeIPv4(9, 0, 0, 0), Last: packet.MakeIPv4(9, 127, 255, 255), Country: "US"},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(db.Lookup(packet.MakeIPv4(80, 12, 3, 4)))
	fmt.Println(db.Lookup(packet.MakeIPv4(9, 0, 1, 1)))
	fmt.Println(db.Lookup(packet.MakeIPv4(203, 0, 113, 9)) == "")
	fmt.Println(geo.Region("DE"), geo.Region("FR"))
	// Output:
	// DE
	// US
	// true
	// DE RoW
}
