// Package geo provides a range-based IP-to-country database equivalent
// to the GeoLite Country database the paper uses to geo-locate the
// 230M+ IPs it observes (Section 3.1, Section 4.1). Like its real-world
// counterpart the database is a sorted list of address ranges, answers
// lookups by binary search, and may deliberately carry a small error
// rate to model the known unreliability of geolocation databases
// (Poese et al., cited as [49] in the paper).
package geo

import (
	"errors"
	"fmt"
	"sort"

	"ixplens/internal/packet"
)

// Range maps a contiguous, inclusive IPv4 address range to a country.
type Range struct {
	First, Last packet.IPv4Addr
	// Country is an ISO-3166-like two-letter code.
	Country string
}

// ErrOverlap is returned by Build when input ranges overlap.
var ErrOverlap = errors.New("geo: overlapping ranges")

// DB is an immutable range database. Safe for concurrent lookups.
type DB struct {
	firsts    []packet.IPv4Addr
	lasts     []packet.IPv4Addr
	countries []string
}

// Build sorts and validates ranges into a DB. Adjacent ranges of the
// same country are merged.
func Build(ranges []Range) (*DB, error) {
	rs := make([]Range, len(ranges))
	copy(rs, ranges)
	sort.Slice(rs, func(i, j int) bool { return rs[i].First < rs[j].First })
	db := &DB{}
	for i, r := range rs {
		if r.Last < r.First {
			return nil, fmt.Errorf("geo: inverted range %v-%v", r.First, r.Last)
		}
		if i > 0 && r.First <= rs[i-1].Last {
			return nil, fmt.Errorf("%w: %v-%v and %v-%v", ErrOverlap,
				rs[i-1].First, rs[i-1].Last, r.First, r.Last)
		}
		n := len(db.firsts)
		if n > 0 && db.countries[n-1] == r.Country && db.lasts[n-1]+1 == r.First {
			db.lasts[n-1] = r.Last // merge adjacent same-country ranges
			continue
		}
		db.firsts = append(db.firsts, r.First)
		db.lasts = append(db.lasts, r.Last)
		db.countries = append(db.countries, r.Country)
	}
	return db, nil
}

// Lookup returns the country for ip, or "" when the address is not
// covered by any range.
func (db *DB) Lookup(ip packet.IPv4Addr) string {
	// Find the first range starting after ip, then check its predecessor.
	i := sort.Search(len(db.firsts), func(i int) bool { return db.firsts[i] > ip })
	if i == 0 {
		return ""
	}
	if ip <= db.lasts[i-1] {
		return db.countries[i-1]
	}
	return ""
}

// NumRanges returns the number of (merged) ranges in the database.
func (db *DB) NumRanges() int { return len(db.firsts) }

// Countries returns the set of distinct countries present in the DB.
func (db *DB) Countries() []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range db.countries {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// Region buckets countries the way Section 4.1 of the paper does for its
// churn figures: DE, US, RU, CN and RoW (rest of world).
func Region(country string) string {
	switch country {
	case "DE", "US", "RU", "CN":
		return country
	default:
		return "RoW"
	}
}

// Regions lists the five churn regions in the paper's display order.
var Regions = []string{"DE", "US", "RU", "CN", "RoW"}
