package geo

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ixplens/internal/packet"
)

func ip(a, b, c, d byte) packet.IPv4Addr { return packet.MakeIPv4(a, b, c, d) }

func TestBuildAndLookup(t *testing.T) {
	db, err := Build([]Range{
		{ip(80, 0, 0, 0), ip(80, 255, 255, 255), "DE"},
		{ip(9, 0, 0, 0), ip(9, 0, 255, 255), "US"},
		{ip(200, 1, 0, 0), ip(200, 1, 0, 255), "BR"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ip   packet.IPv4Addr
		want string
	}{
		{ip(80, 1, 2, 3), "DE"},
		{ip(9, 0, 44, 1), "US"},
		{ip(200, 1, 0, 200), "BR"},
		{ip(10, 0, 0, 1), ""},
		{ip(81, 0, 0, 0), ""},
		{ip(8, 255, 255, 255), ""},
	}
	for _, c := range cases {
		if got := db.Lookup(c.ip); got != c.want {
			t.Errorf("Lookup(%v) = %q, want %q", c.ip, got, c.want)
		}
	}
}

func TestBuildRejectsOverlap(t *testing.T) {
	_, err := Build([]Range{
		{ip(10, 0, 0, 0), ip(10, 255, 255, 255), "DE"},
		{ip(10, 128, 0, 0), ip(11, 0, 0, 0), "US"},
	})
	if !errors.Is(err, ErrOverlap) {
		t.Fatalf("want ErrOverlap, got %v", err)
	}
}

func TestBuildRejectsInvertedRange(t *testing.T) {
	_, err := Build([]Range{{ip(10, 0, 0, 2), ip(10, 0, 0, 1), "DE"}})
	if err == nil {
		t.Fatal("inverted range must fail")
	}
}

func TestBuildMergesAdjacentSameCountry(t *testing.T) {
	db, err := Build([]Range{
		{ip(10, 0, 0, 0), ip(10, 0, 0, 255), "DE"},
		{ip(10, 0, 1, 0), ip(10, 0, 1, 255), "DE"},
		{ip(10, 0, 2, 0), ip(10, 0, 2, 255), "FR"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRanges() != 2 {
		t.Fatalf("NumRanges = %d, want 2 (merged)", db.NumRanges())
	}
	if db.Lookup(ip(10, 0, 1, 128)) != "DE" {
		t.Fatal("merged range lost coverage")
	}
}

func TestCountries(t *testing.T) {
	db, _ := Build([]Range{
		{ip(1, 0, 0, 0), ip(1, 0, 0, 255), "JP"},
		{ip(2, 0, 0, 0), ip(2, 0, 0, 255), "FR"},
		{ip(3, 0, 0, 0), ip(3, 0, 0, 255), "JP"},
	})
	got := db.Countries()
	if len(got) != 2 || got[0] != "FR" || got[1] != "JP" {
		t.Fatalf("Countries = %v", got)
	}
}

func TestRegion(t *testing.T) {
	for c, want := range map[string]string{
		"DE": "DE", "US": "US", "RU": "RU", "CN": "CN",
		"FR": "RoW", "GB": "RoW", "": "RoW",
	} {
		if got := Region(c); got != want {
			t.Errorf("Region(%q) = %q, want %q", c, got, want)
		}
	}
	if len(Regions) != 5 {
		t.Fatal("paper uses exactly five regions")
	}
}

// TestQuickLookupMatchesScan: lookups agree with a linear scan over the
// original ranges for arbitrary non-overlapping range sets.
func TestQuickLookupMatchesScan(t *testing.T) {
	countries := []string{"DE", "US", "RU", "CN", "FR", "GB", "NL"}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Create non-overlapping ranges by walking upward.
		var ranges []Range
		cur := uint32(r.Intn(1 << 20))
		for cur < 1<<31 && len(ranges) < 50 {
			size := uint32(r.Intn(1<<16) + 1)
			ranges = append(ranges, Range{
				First:   packet.IPv4Addr(cur),
				Last:    packet.IPv4Addr(cur + size - 1),
				Country: countries[r.Intn(len(countries))],
			})
			cur += size + uint32(r.Intn(1<<18))
		}
		db, err := Build(ranges)
		if err != nil {
			return false
		}
		for probe := 0; probe < 300; probe++ {
			p := packet.IPv4Addr(r.Uint32() & (1<<32 - 1))
			want := ""
			for _, rg := range ranges {
				if p >= rg.First && p <= rg.Last {
					want = rg.Country
					break
				}
			}
			if db.Lookup(p) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	var ranges []Range
	cur := uint32(1 << 24)
	for len(ranges) < 100_000 {
		size := uint32(r.Intn(1<<12) + 256)
		ranges = append(ranges, Range{
			First:   packet.IPv4Addr(cur),
			Last:    packet.IPv4Addr(cur + size - 1),
			Country: "DE",
		})
		cur += size + uint32(r.Intn(1<<10))
	}
	db, err := Build(ranges)
	if err != nil {
		b.Fatal(err)
	}
	probes := make([]packet.IPv4Addr, 1024)
	for i := range probes {
		probes[i] = packet.IPv4Addr(r.Uint32())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Lookup(probes[i&1023])
	}
}
