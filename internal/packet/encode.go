package packet

import "encoding/binary"

// Builder assembles Ethernet frames into a reusable buffer. The traffic
// generator renders millions of frames, so the builder appends into a
// caller-provided slice and computes real checksums, allowing the decode
// side (and any external tool) to verify them.
type Builder struct {
	buf []byte
}

// NewBuilder returns a Builder with an initial capacity hint.
func NewBuilder(capacity int) *Builder {
	return &Builder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the frame built by the last Build* call. The slice is
// invalidated by the next call.
func (b *Builder) Bytes() []byte { return b.buf }

// ethHeader appends the Ethernet (and optional 802.1Q) header.
func (b *Builder) ethHeader(eth Ethernet) {
	b.buf = append(b.buf[:0], eth.Dst[:]...)
	b.buf = append(b.buf, eth.Src[:]...)
	if eth.VLAN != 0 {
		b.buf = binary.BigEndian.AppendUint16(b.buf, uint16(EtherTypeVLAN))
		b.buf = binary.BigEndian.AppendUint16(b.buf, eth.VLAN&0x0fff)
	}
	b.buf = binary.BigEndian.AppendUint16(b.buf, uint16(eth.Type))
}

// ipv4Header appends a 20-byte IPv4 header with a correct header checksum.
// payloadLen is the transport header + payload length.
func (b *Builder) ipv4Header(h IPv4Header, payloadLen int) {
	start := len(b.buf)
	totalLen := ipv4MinHdrLen + payloadLen
	b.buf = append(b.buf, 0x45, h.TOS)
	b.buf = binary.BigEndian.AppendUint16(b.buf, uint16(totalLen))
	b.buf = binary.BigEndian.AppendUint16(b.buf, h.ID)
	b.buf = binary.BigEndian.AppendUint16(b.buf, uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b.buf = append(b.buf, h.TTL, byte(h.Protocol))
	b.buf = append(b.buf, 0, 0) // checksum placeholder
	b.buf = binary.BigEndian.AppendUint32(b.buf, uint32(h.Src))
	b.buf = binary.BigEndian.AppendUint32(b.buf, uint32(h.Dst))
	cs := Checksum(b.buf[start:])
	binary.BigEndian.PutUint16(b.buf[start+10:], cs)
}

// BuildTCPv4 renders an Ethernet/IPv4/TCP frame carrying payload. TCP
// options are not emitted (DataOffset is always 5). Both the IPv4 header
// checksum and the TCP checksum are valid.
func (b *Builder) BuildTCPv4(eth Ethernet, ip IPv4Header, tcp TCPHeader, payload []byte) []byte {
	eth.Type = EtherTypeIPv4
	ip.Protocol = ProtoTCP
	b.ethHeader(eth)
	b.ipv4Header(ip, tcpMinHdrLen+len(payload))

	tcpStart := len(b.buf)
	b.buf = binary.BigEndian.AppendUint16(b.buf, tcp.SrcPort)
	b.buf = binary.BigEndian.AppendUint16(b.buf, tcp.DstPort)
	b.buf = binary.BigEndian.AppendUint32(b.buf, tcp.Seq)
	b.buf = binary.BigEndian.AppendUint32(b.buf, tcp.Ack)
	b.buf = append(b.buf, 5<<4, tcp.Flags&0x3f)
	b.buf = binary.BigEndian.AppendUint16(b.buf, tcp.Window)
	b.buf = append(b.buf, 0, 0) // checksum placeholder
	b.buf = binary.BigEndian.AppendUint16(b.buf, tcp.Urgent)
	b.buf = append(b.buf, payload...)
	cs := TransportChecksumIPv4(ip.Src, ip.Dst, ProtoTCP, b.buf[tcpStart:])
	binary.BigEndian.PutUint16(b.buf[tcpStart+16:], cs)
	return b.buf
}

// BuildUDPv4 renders an Ethernet/IPv4/UDP frame carrying payload with
// valid checksums.
func (b *Builder) BuildUDPv4(eth Ethernet, ip IPv4Header, udp UDPHeader, payload []byte) []byte {
	eth.Type = EtherTypeIPv4
	ip.Protocol = ProtoUDP
	b.ethHeader(eth)
	b.ipv4Header(ip, udpHdrLen+len(payload))

	udpStart := len(b.buf)
	udpLen := udpHdrLen + len(payload)
	b.buf = binary.BigEndian.AppendUint16(b.buf, udp.SrcPort)
	b.buf = binary.BigEndian.AppendUint16(b.buf, udp.DstPort)
	b.buf = binary.BigEndian.AppendUint16(b.buf, uint16(udpLen))
	b.buf = append(b.buf, 0, 0) // checksum placeholder
	b.buf = append(b.buf, payload...)
	cs := TransportChecksumIPv4(ip.Src, ip.Dst, ProtoUDP, b.buf[udpStart:])
	if cs == 0 {
		cs = 0xffff // RFC 768: transmitted as all ones when computed zero
	}
	binary.BigEndian.PutUint16(b.buf[udpStart+6:], cs)
	return b.buf
}

// BuildICMPv4 renders an Ethernet/IPv4/ICMP frame with valid checksums.
func (b *Builder) BuildICMPv4(eth Ethernet, ip IPv4Header, icmp ICMPHeader, payload []byte) []byte {
	eth.Type = EtherTypeIPv4
	ip.Protocol = ProtoICMP
	b.ethHeader(eth)
	b.ipv4Header(ip, 4+len(payload))

	icmpStart := len(b.buf)
	b.buf = append(b.buf, icmp.Type, icmp.Code, 0, 0)
	b.buf = append(b.buf, payload...)
	cs := Checksum(b.buf[icmpStart:])
	binary.BigEndian.PutUint16(b.buf[icmpStart+2:], cs)
	return b.buf
}

// BuildIPv4Proto renders an Ethernet/IPv4 frame for an arbitrary IP
// protocol (GRE, ESP, ...) whose body is carried opaquely.
func (b *Builder) BuildIPv4Proto(eth Ethernet, ip IPv4Header, proto IPProto, body []byte) []byte {
	eth.Type = EtherTypeIPv4
	ip.Protocol = proto
	b.ethHeader(eth)
	b.ipv4Header(ip, len(body))
	b.buf = append(b.buf, body...)
	return b.buf
}

// BuildTCPv6 renders an Ethernet/IPv6/TCP frame. The study only needs
// IPv6 frames to exist (they are filtered out), so the TCP checksum over
// the v6 pseudo-header is not computed; the field is left zero.
func (b *Builder) BuildTCPv6(eth Ethernet, ip IPv6Header, tcp TCPHeader, payload []byte) []byte {
	eth.Type = EtherTypeIPv6
	ip.NextHeader = ProtoTCP
	b.ethHeader(eth)

	b.buf = append(b.buf, 6<<4|ip.TrafficClass>>4, ip.TrafficClass<<4|byte(ip.FlowLabel>>16))
	b.buf = binary.BigEndian.AppendUint16(b.buf, uint16(ip.FlowLabel))
	b.buf = binary.BigEndian.AppendUint16(b.buf, uint16(tcpMinHdrLen+len(payload)))
	b.buf = append(b.buf, byte(ip.NextHeader), ip.HopLimit)
	b.buf = append(b.buf, ip.Src[:]...)
	b.buf = append(b.buf, ip.Dst[:]...)

	b.buf = binary.BigEndian.AppendUint16(b.buf, tcp.SrcPort)
	b.buf = binary.BigEndian.AppendUint16(b.buf, tcp.DstPort)
	b.buf = binary.BigEndian.AppendUint32(b.buf, tcp.Seq)
	b.buf = binary.BigEndian.AppendUint32(b.buf, tcp.Ack)
	b.buf = append(b.buf, 5<<4, tcp.Flags&0x3f)
	b.buf = binary.BigEndian.AppendUint16(b.buf, tcp.Window)
	b.buf = append(b.buf, 0, 0)
	b.buf = binary.BigEndian.AppendUint16(b.buf, tcp.Urgent)
	b.buf = append(b.buf, payload...)
	return b.buf
}

// BuildARP renders a minimal ARP request frame; the dissection cascade
// must classify it as "other" traffic.
func (b *Builder) BuildARP(eth Ethernet, senderIP, targetIP IPv4Addr) []byte {
	eth.Type = EtherTypeARP
	b.ethHeader(eth)
	b.buf = append(b.buf,
		0, 1, // hardware type: Ethernet
		8, 0, // protocol type: IPv4
		6, 4, // sizes
		0, 1, // opcode: request
	)
	b.buf = append(b.buf, eth.Src[:]...)
	b.buf = binary.BigEndian.AppendUint32(b.buf, uint32(senderIP))
	var zero MAC
	b.buf = append(b.buf, zero[:]...)
	b.buf = binary.BigEndian.AppendUint32(b.buf, uint32(targetIP))
	return b.buf
}
