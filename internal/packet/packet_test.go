package packet

import (
	"strings"
	"testing"
)

func TestEtherTypeString(t *testing.T) {
	cases := map[EtherType]string{
		EtherTypeIPv4:     "IPv4",
		EtherTypeIPv6:     "IPv6",
		EtherTypeARP:      "ARP",
		EtherTypeVLAN:     "VLAN",
		EtherTypeMPLS:     "MPLS",
		EtherType(0x1234): "EtherType(0x1234)",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("EtherType(%#x).String() = %q, want %q", uint16(in), got, want)
		}
	}
}

func TestIPProtoString(t *testing.T) {
	if ProtoTCP.String() != "TCP" || ProtoUDP.String() != "UDP" {
		t.Fatalf("unexpected proto names: %s %s", ProtoTCP, ProtoUDP)
	}
	if got := IPProto(99).String(); got != "IPProto(99)" {
		t.Errorf("IPProto(99).String() = %q", got)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Errorf("MAC.String() = %q", got)
	}
}

func TestMakeAndParseIPv4(t *testing.T) {
	a := MakeIPv4(192, 0, 2, 45)
	if a.String() != "192.0.2.45" {
		t.Fatalf("String() = %q", a.String())
	}
	p, err := ParseIPv4("192.0.2.45")
	if err != nil {
		t.Fatal(err)
	}
	if p != a {
		t.Fatalf("ParseIPv4 round-trip mismatch: %v != %v", p, a)
	}
	o1, o2, o3, o4 := a.Octets()
	if o1 != 192 || o2 != 0 || o3 != 2 || o4 != 45 {
		t.Fatalf("Octets() = %d.%d.%d.%d", o1, o2, o3, o4)
	}
}

func TestParseIPv4Errors(t *testing.T) {
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "-1.2.3.4"} {
		if _, err := ParseIPv4(bad); err == nil {
			t.Errorf("ParseIPv4(%q) should fail", bad)
		}
	}
}

func TestIsGloballyRoutable(t *testing.T) {
	routable := []IPv4Addr{
		MakeIPv4(8, 8, 8, 8),
		MakeIPv4(62, 1, 1, 1),
		MakeIPv4(193, 99, 144, 85),
		MakeIPv4(172, 15, 0, 1),
		MakeIPv4(172, 32, 0, 1),
		MakeIPv4(192, 167, 1, 1),
	}
	unroutable := []IPv4Addr{
		MakeIPv4(0, 1, 2, 3),
		MakeIPv4(10, 0, 0, 1),
		MakeIPv4(127, 0, 0, 1),
		MakeIPv4(172, 16, 0, 1),
		MakeIPv4(172, 31, 255, 255),
		MakeIPv4(192, 168, 1, 1),
		MakeIPv4(169, 254, 0, 1),
		MakeIPv4(224, 0, 0, 1),
		MakeIPv4(255, 255, 255, 255),
	}
	for _, a := range routable {
		if !a.IsGloballyRoutable() {
			t.Errorf("%v should be routable", a)
		}
	}
	for _, a := range unroutable {
		if a.IsGloballyRoutable() {
			t.Errorf("%v should not be routable", a)
		}
	}
}

func TestFramePortsNoTransport(t *testing.T) {
	var f Frame
	if f.SrcPort() != 0 || f.DstPort() != 0 {
		t.Fatal("ports of empty frame must be zero")
	}
}

func TestFrameResetClearsPayload(t *testing.T) {
	f := Frame{Payload: []byte("x"), IsIPv4: true, Transport: TransportTCP}
	f.Reset()
	if f.Payload != nil || f.IsIPv4 || f.Transport != TransportNone {
		t.Fatalf("Reset left state behind: %+v", f)
	}
}

func TestTransportKindString(t *testing.T) {
	for k, want := range map[TransportKind]string{
		TransportNone: "none", TransportTCP: "TCP", TransportUDP: "UDP",
		TransportICMP: "ICMP", TransportOther: "other",
	} {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.HasPrefix(TransportKind(42).String(), "TransportKind(") {
		t.Error("unknown kind should fall back to numeric form")
	}
}
