package packet_test

import (
	"fmt"

	"ixplens/internal/packet"
)

// Example builds an HTTP request frame and decodes its 128-byte sFlow
// snapshot, recovering the headers and the payload prefix — the exact
// situation the paper's string matching works in.
func Example() {
	b := packet.NewBuilder(512)
	eth := packet.Ethernet{
		Src: packet.MAC{0x02, 0x49, 0x58, 0, 0, 1},
		Dst: packet.MAC{0x02, 0x49, 0x58, 0, 0, 2},
	}
	ip := packet.IPv4Header{
		TTL: 60,
		Src: packet.MakeIPv4(203, 0, 113, 10),
		Dst: packet.MakeIPv4(198, 51, 100, 80),
	}
	tcp := packet.TCPHeader{SrcPort: 40000, DstPort: 80, Flags: packet.TCPPsh | packet.TCPAck}
	payload := []byte("GET /index.html HTTP/1.1\r\nHost: www.example.org\r\nUser-Agent: ixplens-example-client/1.0 (doc)\r\nAccept: */*\r\n\r\n")
	frame := b.BuildTCPv4(eth, ip, tcp, payload)

	snap := frame[:128] // sFlow captures the first 128 bytes
	var f packet.Frame
	if err := packet.Decode(snap, &f); err != nil {
		panic(err)
	}
	fmt.Println(f.IPv4.Src, "->", f.IPv4.Dst, f.Transport, f.DstPort())
	fmt.Printf("%.24s\n", f.Payload)
	fmt.Println("payload prefix:", len(f.Payload) == 74 && !f.Truncated)
	// Output:
	// 203.0.113.10 -> 198.51.100.80 TCP 80
	// GET /index.html HTTP/1.1
	// payload prefix: true
}
