package packet

import (
	"fmt"
	"strconv"
	"strings"
)

// IPv4Addr is an IPv4 address in host integer form. Using a plain uint32
// keeps the per-flow aggregation maps compact and makes prefix arithmetic
// (masking, range checks) branch-free.
type IPv4Addr uint32

// MakeIPv4 builds an address from its four dotted-quad octets.
func MakeIPv4(a, b, c, d byte) IPv4Addr {
	return IPv4Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseIPv4 parses a dotted-quad string.
func ParseIPv4(s string) (IPv4Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("packet: invalid IPv4 address %q", s)
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("packet: invalid IPv4 address %q", s)
		}
		v = v<<8 | uint32(n)
	}
	return IPv4Addr(v), nil
}

// String formats the address as a dotted quad.
func (a IPv4Addr) String() string {
	var buf [15]byte
	b := strconv.AppendUint(buf[:0], uint64(a>>24), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a>>16&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a>>8&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a&0xff), 10)
	return string(b)
}

// Octets returns the four dotted-quad octets, most significant first.
func (a IPv4Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// IsGloballyRoutable reports whether the address falls outside the
// non-routable special-use blocks (RFC 1918, loopback, link-local,
// multicast, class E, 0/8). The synthetic address allocator uses it to
// stay inside publicly-routed space, mirroring the paper's restriction to
// publicly routed IPv4 addresses.
func (a IPv4Addr) IsGloballyRoutable() bool {
	switch {
	case a>>24 == 0: // 0.0.0.0/8
		return false
	case a>>24 == 10: // 10.0.0.0/8
		return false
	case a>>24 == 127: // 127.0.0.0/8
		return false
	case a >= MakeIPv4(172, 16, 0, 0) && a <= MakeIPv4(172, 31, 255, 255): // 172.16.0.0/12
		return false
	case uint32(a)>>16 == 192<<8|168: // 192.168.0.0/16
		return false
	case uint32(a)>>16 == 169<<8|254: // 169.254.0.0/16
		return false
	case a>>28 >= 0xe: // 224.0.0.0/4 multicast and 240.0.0.0/4 class E
		return false
	}
	return true
}
