package packet

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the frame decoder with arbitrary bytes: it must
// never panic, and whatever it decodes from a valid TCP frame must
// re-encode to a frame that decodes identically.
func FuzzDecode(f *testing.F) {
	b := NewBuilder(512)
	ip := IPv4Header{TTL: 64, Src: MakeIPv4(198, 51, 100, 1), Dst: MakeIPv4(203, 0, 113, 2)}
	f.Add(append([]byte(nil), b.BuildTCPv4(testEth, ip, TCPHeader{SrcPort: 80, DstPort: 4444}, []byte("GET / HTTP/1.1\r\n"))...))
	f.Add(append([]byte(nil), b.BuildUDPv4(testEth, ip, UDPHeader{SrcPort: 53, DstPort: 53}, []byte{1, 2})...))
	f.Add(append([]byte(nil), b.BuildARP(testEth, MakeIPv4(1, 2, 3, 4), MakeIPv4(5, 6, 7, 8))...))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 200))

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := Decode(data, &fr); err != nil {
			return
		}
		// Round-trip check for fully decoded TCP/IPv4 frames.
		if fr.IsIPv4 && fr.Transport == TransportTCP && !fr.Truncated && fr.IPv4.HeaderLen == 20 && fr.TCP.HeaderLen == 20 {
			bl := NewBuilder(len(data) + 64)
			re := bl.BuildTCPv4(fr.Eth, fr.IPv4, fr.TCP, fr.Payload)
			var fr2 Frame
			if err := Decode(re, &fr2); err != nil {
				t.Fatalf("re-encoded frame undecodable: %v", err)
			}
			if fr2.IPv4.Src != fr.IPv4.Src || fr2.IPv4.Dst != fr.IPv4.Dst ||
				fr2.TCP.SrcPort != fr.TCP.SrcPort || fr2.TCP.DstPort != fr.TCP.DstPort ||
				!bytes.Equal(fr2.Payload, fr.Payload) {
				t.Fatal("re-encode round trip drifted")
			}
		}
	})
}
