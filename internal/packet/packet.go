// Package packet implements encoding and decoding of the wire formats that
// appear inside sFlow raw-packet-header records: Ethernet (with optional
// 802.1Q tags), IPv4, IPv6, TCP, UDP and ICMP.
//
// The package is deliberately tolerant of truncation: sFlow captures only
// the first 128 bytes of each sampled frame, so a decoded Frame frequently
// ends mid-payload (or even mid-header for deep option stacks). Decode
// never panics on short input; it reports how far it got.
//
// The design follows the gopacket "decoding layer" idea — Decode writes
// into a caller-owned Frame so the hot path allocates nothing — but is
// self-contained and uses only the standard library.
package packet

import "fmt"

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// Well-known EtherType values.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
	EtherTypeVLAN EtherType = 0x8100
	EtherTypeIPv6 EtherType = 0x86DD
	EtherTypeMPLS EtherType = 0x8847
)

// String returns a short human-readable name for the EtherType.
func (t EtherType) String() string {
	switch t {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeARP:
		return "ARP"
	case EtherTypeVLAN:
		return "VLAN"
	case EtherTypeIPv6:
		return "IPv6"
	case EtherTypeMPLS:
		return "MPLS"
	default:
		return fmt.Sprintf("EtherType(0x%04x)", uint16(t))
	}
}

// IPProto identifies the transport protocol of an IP packet.
type IPProto uint8

// Well-known IP protocol numbers.
const (
	ProtoICMP   IPProto = 1
	ProtoIGMP   IPProto = 2
	ProtoTCP    IPProto = 6
	ProtoUDP    IPProto = 17
	ProtoGRE    IPProto = 47
	ProtoESP    IPProto = 50
	ProtoICMPv6 IPProto = 58
	ProtoSCTP   IPProto = 132
)

// String returns a short human-readable name for the protocol.
func (p IPProto) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoIGMP:
		return "IGMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	case ProtoGRE:
		return "GRE"
	case ProtoESP:
		return "ESP"
	case ProtoICMPv6:
		return "ICMPv6"
	case ProtoSCTP:
		return "SCTP"
	default:
		return fmt.Sprintf("IPProto(%d)", uint8(p))
	}
}

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// String formats the address in the canonical colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet holds a decoded Ethernet II header, including at most one
// 802.1Q VLAN tag (the IXP fabric in the paper tags member ports).
type Ethernet struct {
	Dst, Src MAC
	// VLAN is the 802.1Q VLAN identifier, or 0 when the frame is untagged.
	VLAN uint16
	// Type is the EtherType of the payload (after any VLAN tag).
	Type EtherType
}

// IPv4Header holds a decoded IPv4 header. Options are not retained; only
// their length is accounted for so the payload offset is correct.
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // upper 3 bits of the fragment word
	FragOff  uint16
	TTL      uint8
	Protocol IPProto
	Checksum uint16
	Src, Dst IPv4Addr
	// HeaderLen is the header length in bytes (20 + options).
	HeaderLen int
}

// MoreFragments reports whether the MF flag is set.
func (h *IPv4Header) MoreFragments() bool { return h.Flags&0x1 != 0 }

// DontFragment reports whether the DF flag is set.
func (h *IPv4Header) DontFragment() bool { return h.Flags&0x2 != 0 }

// IsFragment reports whether the packet is any fragment other than the
// first; transport headers are only present on first fragments.
func (h *IPv4Header) IsFragment() bool { return h.FragOff != 0 }

// IPv6Addr is a 128-bit IPv6 address.
type IPv6Addr [16]byte

// String formats the address in uncompressed colon-hex form; the
// simulator never needs RFC 5952 compression.
func (a IPv6Addr) String() string {
	return fmt.Sprintf("%x:%x:%x:%x:%x:%x:%x:%x",
		uint16(a[0])<<8|uint16(a[1]), uint16(a[2])<<8|uint16(a[3]),
		uint16(a[4])<<8|uint16(a[5]), uint16(a[6])<<8|uint16(a[7]),
		uint16(a[8])<<8|uint16(a[9]), uint16(a[10])<<8|uint16(a[11]),
		uint16(a[12])<<8|uint16(a[13]), uint16(a[14])<<8|uint16(a[15]))
}

// IPv6Header holds a decoded IPv6 fixed header. Extension headers are not
// walked: the study discards native IPv6 traffic at the first filtering
// step, so only the fixed header fields are needed.
type IPv6Header struct {
	TrafficClass uint8
	FlowLabel    uint32
	PayloadLen   uint16
	NextHeader   IPProto
	HopLimit     uint8
	Src, Dst     IPv6Addr
}

// TCP header flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
	TCPUrg = 1 << 5
)

// TCPHeader holds a decoded TCP header. Options are skipped but counted.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	// HeaderLen is the header length in bytes (20 + options).
	HeaderLen int
}

// UDPHeader holds a decoded UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// ICMPHeader holds a decoded ICMP or ICMPv6 header (first 4 bytes).
type ICMPHeader struct {
	Type     uint8
	Code     uint8
	Checksum uint16
}

// TransportKind says which transport header, if any, a Frame carries.
type TransportKind uint8

// Transport kinds, in decode order of preference.
const (
	TransportNone TransportKind = iota
	TransportTCP
	TransportUDP
	TransportICMP
	TransportOther // an IP protocol we do not parse further
)

// String returns a short name for the transport kind.
func (k TransportKind) String() string {
	switch k {
	case TransportNone:
		return "none"
	case TransportTCP:
		return "TCP"
	case TransportUDP:
		return "UDP"
	case TransportICMP:
		return "ICMP"
	case TransportOther:
		return "other"
	default:
		return fmt.Sprintf("TransportKind(%d)", uint8(k))
	}
}

// Frame is the decoded view of one sampled Ethernet frame. A single Frame
// value is reused across Decode calls on the hot path.
type Frame struct {
	Eth Ethernet

	// Exactly one of IsIPv4/IsIPv6 is set for IP frames; neither is set
	// for ARP and other non-IP traffic.
	IsIPv4 bool
	IsIPv6 bool
	IPv4   IPv4Header
	IPv6   IPv6Header

	Transport TransportKind
	TCP       TCPHeader
	UDP       UDPHeader
	ICMP      ICMPHeader

	// Payload is the transport payload bytes available in the (possibly
	// truncated) capture. It aliases the input buffer.
	Payload []byte

	// Truncated is set when the capture ended before the full frame
	// (headers or payload) according to the length fields.
	Truncated bool
}

// Reset clears the frame so a stale Payload cannot leak between decodes.
func (f *Frame) Reset() {
	*f = Frame{}
}

// SrcPort returns the transport source port, or 0 when there is none.
func (f *Frame) SrcPort() uint16 {
	switch f.Transport {
	case TransportTCP:
		return f.TCP.SrcPort
	case TransportUDP:
		return f.UDP.SrcPort
	}
	return 0
}

// DstPort returns the transport destination port, or 0 when there is none.
func (f *Frame) DstPort() uint16 {
	switch f.Transport {
	case TransportTCP:
		return f.TCP.DstPort
	case TransportUDP:
		return f.UDP.DstPort
	}
	return 0
}
