package packet

import (
	"encoding/binary"
	"errors"
)

// Decode errors. ErrTruncated is only returned when not even the Ethernet
// header is complete; deeper truncation is reported via Frame.Truncated so
// that partially-captured frames (the normal case under sFlow's 128-byte
// snapshot) still yield their decodable prefix.
var (
	ErrTruncated = errors.New("packet: frame shorter than Ethernet header")
	ErrBadHeader = errors.New("packet: malformed header")
)

const (
	ethHeaderLen  = 14
	vlanTagLen    = 4
	ipv4MinHdrLen = 20
	ipv6HdrLen    = 40
	tcpMinHdrLen  = 20
	udpHdrLen     = 8
)

// Decode parses data into f. It decodes as far as the bytes allow and sets
// f.Truncated when the capture ends before the frame does. The returned
// error is non-nil only when nothing useful could be decoded.
//
// f.Payload aliases data; the caller must not reuse data while the Frame
// is live unless it copies the payload first.
func Decode(data []byte, f *Frame) error {
	f.Reset()
	if len(data) < ethHeaderLen {
		return ErrTruncated
	}
	copy(f.Eth.Dst[:], data[0:6])
	copy(f.Eth.Src[:], data[6:12])
	etherType := EtherType(binary.BigEndian.Uint16(data[12:14]))
	off := ethHeaderLen

	if etherType == EtherTypeVLAN {
		if len(data) < off+vlanTagLen {
			f.Truncated = true
			return nil
		}
		f.Eth.VLAN = binary.BigEndian.Uint16(data[off:off+2]) & 0x0fff
		etherType = EtherType(binary.BigEndian.Uint16(data[off+2 : off+4]))
		off += vlanTagLen
	}
	f.Eth.Type = etherType

	switch etherType {
	case EtherTypeIPv4:
		return decodeIPv4(data[off:], f)
	case EtherTypeIPv6:
		return decodeIPv6(data[off:], f)
	default:
		// Non-IP frame (ARP, MPLS, ...): nothing more to decode. The
		// dissection pipeline drops these at the first filter step.
		f.Payload = data[off:]
		return nil
	}
}

func decodeIPv4(data []byte, f *Frame) error {
	if len(data) < ipv4MinHdrLen {
		f.Truncated = true
		return nil
	}
	vihl := data[0]
	if vihl>>4 != 4 {
		return ErrBadHeader
	}
	hdrLen := int(vihl&0x0f) * 4
	if hdrLen < ipv4MinHdrLen {
		return ErrBadHeader
	}
	h := &f.IPv4
	h.TOS = data[1]
	h.TotalLen = binary.BigEndian.Uint16(data[2:4])
	h.ID = binary.BigEndian.Uint16(data[4:6])
	fragWord := binary.BigEndian.Uint16(data[6:8])
	h.Flags = uint8(fragWord >> 13)
	h.FragOff = fragWord & 0x1fff
	h.TTL = data[8]
	h.Protocol = IPProto(data[9])
	h.Checksum = binary.BigEndian.Uint16(data[10:12])
	h.Src = IPv4Addr(binary.BigEndian.Uint32(data[12:16]))
	h.Dst = IPv4Addr(binary.BigEndian.Uint32(data[16:20]))
	h.HeaderLen = hdrLen
	f.IsIPv4 = true
	if len(data) < hdrLen {
		f.Truncated = true
		return nil
	}
	if h.IsFragment() {
		// Non-first fragment: payload is opaque continuation bytes.
		f.Transport = TransportOther
		f.Payload = data[hdrLen:]
		return nil
	}
	decodeTransport(data[hdrLen:], h.Protocol, f)
	return nil
}

func decodeIPv6(data []byte, f *Frame) error {
	if len(data) < ipv6HdrLen {
		f.Truncated = true
		return nil
	}
	if data[0]>>4 != 6 {
		return ErrBadHeader
	}
	h := &f.IPv6
	h.TrafficClass = data[0]<<4 | data[1]>>4
	h.FlowLabel = binary.BigEndian.Uint32(data[0:4]) & 0x000fffff
	h.PayloadLen = binary.BigEndian.Uint16(data[4:6])
	h.NextHeader = IPProto(data[6])
	h.HopLimit = data[7]
	copy(h.Src[:], data[8:24])
	copy(h.Dst[:], data[24:40])
	f.IsIPv6 = true
	decodeTransport(data[ipv6HdrLen:], h.NextHeader, f)
	return nil
}

func decodeTransport(data []byte, proto IPProto, f *Frame) {
	switch proto {
	case ProtoTCP:
		if len(data) < tcpMinHdrLen {
			f.Transport = TransportTCP
			f.Truncated = true
			return
		}
		t := &f.TCP
		t.SrcPort = binary.BigEndian.Uint16(data[0:2])
		t.DstPort = binary.BigEndian.Uint16(data[2:4])
		t.Seq = binary.BigEndian.Uint32(data[4:8])
		t.Ack = binary.BigEndian.Uint32(data[8:12])
		hdrLen := int(data[12]>>4) * 4
		t.Flags = data[13] & 0x3f
		t.Window = binary.BigEndian.Uint16(data[14:16])
		t.Checksum = binary.BigEndian.Uint16(data[16:18])
		t.Urgent = binary.BigEndian.Uint16(data[18:20])
		if hdrLen < tcpMinHdrLen {
			hdrLen = tcpMinHdrLen // tolerate bogus data offsets in samples
		}
		t.HeaderLen = hdrLen
		f.Transport = TransportTCP
		if len(data) < hdrLen {
			f.Truncated = true
			return
		}
		f.Payload = data[hdrLen:]
	case ProtoUDP:
		if len(data) < udpHdrLen {
			f.Transport = TransportUDP
			f.Truncated = true
			return
		}
		u := &f.UDP
		u.SrcPort = binary.BigEndian.Uint16(data[0:2])
		u.DstPort = binary.BigEndian.Uint16(data[2:4])
		u.Length = binary.BigEndian.Uint16(data[4:6])
		u.Checksum = binary.BigEndian.Uint16(data[6:8])
		f.Transport = TransportUDP
		f.Payload = data[udpHdrLen:]
	case ProtoICMP, ProtoICMPv6:
		if len(data) < 4 {
			f.Transport = TransportICMP
			f.Truncated = true
			return
		}
		f.ICMP.Type = data[0]
		f.ICMP.Code = data[1]
		f.ICMP.Checksum = binary.BigEndian.Uint16(data[2:4])
		f.Transport = TransportICMP
		f.Payload = data[4:]
	default:
		f.Transport = TransportOther
		f.Payload = data
	}
}
