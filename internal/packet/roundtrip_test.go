package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var testEth = Ethernet{
	Dst: MAC{0x02, 0, 0, 0, 0, 1},
	Src: MAC{0x02, 0, 0, 0, 0, 2},
}

func TestTCPv4RoundTrip(t *testing.T) {
	b := NewBuilder(256)
	ip := IPv4Header{
		TOS: 0x10, ID: 4242, TTL: 61,
		Src: MakeIPv4(198, 51, 100, 7), Dst: MakeIPv4(203, 0, 113, 9),
	}
	tcp := TCPHeader{SrcPort: 33000, DstPort: 80, Seq: 1000, Ack: 2000, Flags: TCPAck | TCPPsh, Window: 65535}
	payload := []byte("GET / HTTP/1.1\r\nHost: example.org\r\n\r\n")
	frame := b.BuildTCPv4(testEth, ip, tcp, payload)

	var f Frame
	if err := Decode(frame, &f); err != nil {
		t.Fatal(err)
	}
	if f.Truncated {
		t.Fatal("full frame must not be truncated")
	}
	if !f.IsIPv4 || f.Transport != TransportTCP {
		t.Fatalf("decode classification wrong: %+v", f)
	}
	if f.IPv4.Src != ip.Src || f.IPv4.Dst != ip.Dst || f.IPv4.TTL != 61 || f.IPv4.TOS != 0x10 || f.IPv4.ID != 4242 {
		t.Fatalf("IPv4 header mismatch: %+v", f.IPv4)
	}
	if f.TCP.SrcPort != 33000 || f.TCP.DstPort != 80 || f.TCP.Seq != 1000 || f.TCP.Ack != 2000 ||
		f.TCP.Flags != TCPAck|TCPPsh || f.TCP.Window != 65535 {
		t.Fatalf("TCP header mismatch: %+v", f.TCP)
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Fatalf("payload mismatch: %q", f.Payload)
	}
	if f.SrcPort() != 33000 || f.DstPort() != 80 {
		t.Fatal("port accessors disagree with TCP header")
	}

	ihl := 14
	if !VerifyIPv4HeaderChecksum(frame[ihl : ihl+20]) {
		t.Error("IPv4 header checksum invalid")
	}
	seg := make([]byte, len(frame)-ihl-20)
	copy(seg, frame[ihl+20:])
	want := seg[16:18]
	got := []byte{want[0], want[1]}
	seg[16], seg[17] = 0, 0
	cs := TransportChecksumIPv4(ip.Src, ip.Dst, ProtoTCP, seg)
	if byte(cs>>8) != got[0] || byte(cs) != got[1] {
		t.Errorf("TCP checksum mismatch: computed %04x, emitted %02x%02x", cs, got[0], got[1])
	}
}

func TestUDPv4RoundTrip(t *testing.T) {
	b := NewBuilder(256)
	ip := IPv4Header{TTL: 64, Src: MakeIPv4(198, 51, 100, 1), Dst: MakeIPv4(198, 51, 100, 2)}
	udp := UDPHeader{SrcPort: 53, DstPort: 5353}
	payload := []byte{1, 2, 3, 4, 5}
	frame := b.BuildUDPv4(testEth, ip, udp, payload)

	var f Frame
	if err := Decode(frame, &f); err != nil {
		t.Fatal(err)
	}
	if f.Transport != TransportUDP || f.UDP.SrcPort != 53 || f.UDP.DstPort != 5353 {
		t.Fatalf("UDP decode mismatch: %+v", f.UDP)
	}
	if int(f.UDP.Length) != 8+len(payload) {
		t.Fatalf("UDP length = %d, want %d", f.UDP.Length, 8+len(payload))
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Fatalf("payload mismatch: %v", f.Payload)
	}
}

func TestICMPv4RoundTrip(t *testing.T) {
	b := NewBuilder(128)
	ip := IPv4Header{TTL: 64, Src: MakeIPv4(203, 0, 113, 1), Dst: MakeIPv4(203, 0, 113, 2)}
	frame := b.BuildICMPv4(testEth, ip, ICMPHeader{Type: 8, Code: 0}, []byte("ping"))

	var f Frame
	if err := Decode(frame, &f); err != nil {
		t.Fatal(err)
	}
	if f.Transport != TransportICMP || f.ICMP.Type != 8 || f.ICMP.Code != 0 {
		t.Fatalf("ICMP decode mismatch: %+v", f.ICMP)
	}
}

func TestVLANTaggedFrame(t *testing.T) {
	b := NewBuilder(256)
	eth := testEth
	eth.VLAN = 123
	ip := IPv4Header{TTL: 64, Src: MakeIPv4(198, 51, 100, 1), Dst: MakeIPv4(198, 51, 100, 2)}
	frame := b.BuildTCPv4(eth, ip, TCPHeader{SrcPort: 1, DstPort: 2}, nil)

	var f Frame
	if err := Decode(frame, &f); err != nil {
		t.Fatal(err)
	}
	if f.Eth.VLAN != 123 {
		t.Fatalf("VLAN = %d, want 123", f.Eth.VLAN)
	}
	if f.Eth.Type != EtherTypeIPv4 || !f.IsIPv4 {
		t.Fatal("VLAN frame inner type must be IPv4")
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	b := NewBuilder(256)
	var src, dst IPv6Addr
	src[0], src[15] = 0x20, 1
	dst[0], dst[15] = 0x20, 2
	ip := IPv6Header{HopLimit: 60, Src: src, Dst: dst, FlowLabel: 0xabcde}
	frame := b.BuildTCPv6(testEth, ip, TCPHeader{SrcPort: 443, DstPort: 55555}, []byte("x"))

	var f Frame
	if err := Decode(frame, &f); err != nil {
		t.Fatal(err)
	}
	if !f.IsIPv6 || f.IsIPv4 {
		t.Fatal("frame must decode as IPv6")
	}
	if f.IPv6.Src != src || f.IPv6.Dst != dst || f.IPv6.HopLimit != 60 || f.IPv6.FlowLabel != 0xabcde {
		t.Fatalf("IPv6 header mismatch: %+v", f.IPv6)
	}
	if f.Transport != TransportTCP || f.TCP.SrcPort != 443 {
		t.Fatalf("IPv6 TCP mismatch: %+v", f.TCP)
	}
}

func TestARPDecode(t *testing.T) {
	b := NewBuilder(64)
	frame := b.BuildARP(testEth, MakeIPv4(10, 0, 0, 1), MakeIPv4(10, 0, 0, 2))
	var f Frame
	if err := Decode(frame, &f); err != nil {
		t.Fatal(err)
	}
	if f.IsIPv4 || f.IsIPv6 || f.Eth.Type != EtherTypeARP {
		t.Fatalf("ARP classification wrong: %+v", f.Eth)
	}
}

func TestOtherIPProtoDecode(t *testing.T) {
	b := NewBuilder(128)
	ip := IPv4Header{TTL: 64, Src: MakeIPv4(198, 51, 100, 1), Dst: MakeIPv4(198, 51, 100, 2)}
	frame := b.BuildIPv4Proto(testEth, ip, ProtoGRE, []byte{0, 0, 0, 0})
	var f Frame
	if err := Decode(frame, &f); err != nil {
		t.Fatal(err)
	}
	if f.Transport != TransportOther || f.IPv4.Protocol != ProtoGRE {
		t.Fatalf("GRE classification wrong: %v %v", f.Transport, f.IPv4.Protocol)
	}
}

// TestDecodeTruncationNeverPanics chops a valid frame at every possible
// length; Decode must either succeed (possibly flagging truncation) or
// return ErrTruncated, never panic, and never read past the slice.
func TestDecodeTruncationNeverPanics(t *testing.T) {
	b := NewBuilder(512)
	ip := IPv4Header{TTL: 64, Src: MakeIPv4(198, 51, 100, 1), Dst: MakeIPv4(203, 0, 113, 2)}
	payload := bytes.Repeat([]byte("HTTP/1.1 200 OK\r\n"), 10)
	full := b.BuildTCPv4(testEth, ip, TCPHeader{SrcPort: 80, DstPort: 12345}, payload)

	var f Frame
	for n := 0; n <= len(full); n++ {
		err := Decode(full[:n], &f)
		if n < 14 {
			if err != ErrTruncated {
				t.Fatalf("len %d: want ErrTruncated, got %v", n, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("len %d: unexpected error %v", n, err)
		}
		if n < len(full) && !f.Truncated && f.Transport == TransportTCP && len(f.Payload) == len(payload) {
			t.Fatalf("len %d: full payload claimed from truncated frame", n)
		}
	}
}

// TestSnapLenDecode mirrors the sFlow situation: a 128-byte snapshot of a
// large frame must still yield full L2-L4 headers plus a payload prefix.
func TestSnapLenDecode(t *testing.T) {
	b := NewBuilder(2048)
	ip := IPv4Header{TTL: 57, Src: MakeIPv4(82, 1, 2, 3), Dst: MakeIPv4(91, 4, 5, 6)}
	payload := append([]byte("HTTP/1.1 200 OK\r\nServer: nginx\r\n\r\n"), bytes.Repeat([]byte{0xaa}, 1400)...)
	full := b.BuildTCPv4(testEth, ip, TCPHeader{SrcPort: 80, DstPort: 40000, Flags: TCPAck}, payload)
	snap := full[:128]

	var f Frame
	if err := Decode(snap, &f); err != nil {
		t.Fatal(err)
	}
	if f.Transport != TransportTCP || f.TCP.SrcPort != 80 {
		t.Fatal("headers must survive snapping")
	}
	if !bytes.HasPrefix(f.Payload, []byte("HTTP/1.1 200 OK")) {
		t.Fatalf("payload prefix lost: %q", f.Payload)
	}
	// 128 - 14 (eth) - 20 (ip) - 20 (tcp) = 74 bytes of TCP payload,
	// exactly the number quoted in Section 2.1 of the paper.
	if len(f.Payload) != 74 {
		t.Fatalf("snap payload = %d bytes, want 74", len(f.Payload))
	}
}

// TestQuickTCPRoundTrip is a property test: arbitrary header values and
// payloads survive an encode/decode round trip bit-exactly.
func TestQuickTCPRoundTrip(t *testing.T) {
	b := NewBuilder(4096)
	var f Frame
	prop := func(srcIP, dstIP uint32, srcPort, dstPort uint16, seq, ack uint32, flags uint8, window uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		ip := IPv4Header{TTL: 64, Src: IPv4Addr(srcIP), Dst: IPv4Addr(dstIP)}
		tcp := TCPHeader{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack, Flags: flags & 0x3f, Window: window}
		frame := b.BuildTCPv4(testEth, ip, tcp, payload)
		if err := Decode(frame, &f); err != nil {
			return false
		}
		return f.IPv4.Src == ip.Src && f.IPv4.Dst == ip.Dst &&
			f.TCP.SrcPort == srcPort && f.TCP.DstPort == dstPort &&
			f.TCP.Seq == seq && f.TCP.Ack == ack && f.TCP.Flags == flags&0x3f &&
			f.TCP.Window == window && bytes.Equal(f.Payload, payload) && !f.Truncated
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUDPRoundTrip is the UDP analogue of the TCP property test.
func TestQuickUDPRoundTrip(t *testing.T) {
	b := NewBuilder(4096)
	var f Frame
	prop := func(srcIP, dstIP uint32, srcPort, dstPort uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		ip := IPv4Header{TTL: 64, Src: IPv4Addr(srcIP), Dst: IPv4Addr(dstIP)}
		frame := b.BuildUDPv4(testEth, ip, UDPHeader{SrcPort: srcPort, DstPort: dstPort}, payload)
		if err := Decode(frame, &f); err != nil {
			return false
		}
		return f.UDP.SrcPort == srcPort && f.UDP.DstPort == dstPort && bytes.Equal(f.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecodeRandomBytes feeds random garbage to Decode: it must
// never panic regardless of content.
func TestQuickDecodeRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var f Frame
	for i := 0; i < 5000; i++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		_ = Decode(buf, &f) // must not panic
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example data.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %04x, want %04x", got, ^uint16(0xddf2))
	}
	// Odd-length input exercises the trailing-byte path.
	if Checksum([]byte{0xff}) != ^uint16(0xff00) {
		t.Fatal("odd-length checksum wrong")
	}
}

func TestIPv4FragmentSkipsTransport(t *testing.T) {
	b := NewBuilder(256)
	ip := IPv4Header{TTL: 64, Src: MakeIPv4(1, 2, 3, 4), Dst: MakeIPv4(5, 6, 7, 8), FragOff: 100}
	frame := b.BuildIPv4Proto(testEth, ip, ProtoTCP, []byte{1, 2, 3, 4})
	// Rewrite the fragment word since BuildIPv4Proto encodes FragOff.
	var f Frame
	if err := Decode(frame, &f); err != nil {
		t.Fatal(err)
	}
	if f.Transport != TransportOther {
		t.Fatalf("non-first fragment must not decode transport, got %v", f.Transport)
	}
	if !f.IPv4.IsFragment() {
		t.Fatal("IsFragment must be true")
	}
}

func TestIPv6AddrString(t *testing.T) {
	var a IPv6Addr
	a[0], a[1], a[15] = 0x20, 0x01, 0x42
	if got := a.String(); got != "2001:0:0:0:0:0:0:42" {
		t.Fatalf("IPv6Addr.String() = %q", got)
	}
}

func BenchmarkDecodeTCPv4(b *testing.B) {
	bl := NewBuilder(512)
	ip := IPv4Header{TTL: 64, Src: MakeIPv4(198, 51, 100, 1), Dst: MakeIPv4(203, 0, 113, 2)}
	frame := bl.BuildTCPv4(testEth, ip, TCPHeader{SrcPort: 80, DstPort: 40000}, []byte("HTTP/1.1 200 OK\r\n\r\n"))
	var f Frame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Decode(frame, &f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildTCPv4(b *testing.B) {
	bl := NewBuilder(512)
	ip := IPv4Header{TTL: 64, Src: MakeIPv4(198, 51, 100, 1), Dst: MakeIPv4(203, 0, 113, 2)}
	payload := []byte("GET /index.html HTTP/1.1\r\nHost: www.example.org\r\n\r\n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.BuildTCPv4(testEth, ip, TCPHeader{SrcPort: 54321, DstPort: 80}, payload)
	}
}
