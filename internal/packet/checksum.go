package packet

import "encoding/binary"

// onesSum accumulates the 16-bit ones'-complement sum used by the Internet
// checksum, without folding.
func onesSum(data []byte, sum uint32) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

// foldChecksum folds a 32-bit accumulator into the final 16-bit Internet
// checksum value.
func foldChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Checksum computes the Internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	return foldChecksum(onesSum(data, 0))
}

// ipv4PseudoSum returns the partial checksum of the IPv4 pseudo-header
// used by TCP and UDP.
func ipv4PseudoSum(src, dst IPv4Addr, proto IPProto, length int) uint32 {
	var sum uint32
	sum += uint32(src >> 16)
	sum += uint32(src & 0xffff)
	sum += uint32(dst >> 16)
	sum += uint32(dst & 0xffff)
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// TransportChecksumIPv4 computes the TCP/UDP checksum for a segment
// carried over IPv4. segment must contain the transport header with its
// checksum field zeroed, followed by the payload.
func TransportChecksumIPv4(src, dst IPv4Addr, proto IPProto, segment []byte) uint16 {
	return foldChecksum(onesSum(segment, ipv4PseudoSum(src, dst, proto, len(segment))))
}

// VerifyIPv4HeaderChecksum reports whether the IPv4 header bytes carry a
// valid header checksum. hdr must be exactly the header (20+options bytes).
func VerifyIPv4HeaderChecksum(hdr []byte) bool {
	return Checksum(hdr) == 0
}
