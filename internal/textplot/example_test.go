package textplot_test

import (
	"fmt"

	"ixplens/internal/textplot"
)

// ExampleSparkline renders a weekly series the way cmd/ixpreport's
// -series view shows the Fig. 4/5 time series.
func ExampleSparkline() {
	weekly := []float64{1400, 1420, 1415, 1460, 1475, 1200, 1480, 1502}
	fmt.Println(textplot.Sparkline(weekly))
	// Output: ▅▆▅▇▇▁▇█
}

// ExampleBars renders labeled magnitudes, e.g. a churn bar per week.
func ExampleBars() {
	fmt.Println(textplot.Bars(
		[]string{"week 35", "week 51"},
		[]float64{1400, 1500}, 15))
	// Output:
	//   week 35 ############## 1400
	//   week 51 ############### 1500
}
