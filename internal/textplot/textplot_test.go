package textplot

import (
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty input must yield empty output")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if s != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp sparkline = %q", s)
	}
	flat := Sparkline([]float64{5, 5, 5})
	if flat != "▁▁▁" {
		t.Fatalf("flat sparkline = %q", flat)
	}
	if n := len([]rune(Sparkline(make([]float64, 17)))); n != 17 {
		t.Fatalf("length %d, want 17", n)
	}
}

func TestCurve(t *testing.T) {
	if Curve(nil, 10) != "" || Curve([]float64{1}, 0) != "" {
		t.Fatal("degenerate inputs must yield empty output")
	}
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(100 - i)
	}
	got := Curve(vals, 20)
	if !strings.Contains(got, "n=100") || !strings.Contains(got, "head=100") {
		t.Fatalf("curve annotation missing: %q", got)
	}
	if n := len([]rune(strings.Fields(got)[0])); n != 20 {
		t.Fatalf("curve width %d, want 20", n)
	}
}

func TestDownsample(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	if got := downsample(vals, 8); len(got) != 4 {
		t.Fatal("short input must pass through")
	}
	got := downsample([]float64{1, 1, 3, 3}, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("downsample = %v", got)
	}
}

func TestScatterLogLog(t *testing.T) {
	if ScatterLogLog(nil, nil, 10, 5) != "" {
		t.Fatal("empty scatter must be empty")
	}
	if ScatterLogLog([]float64{1}, []float64{1, 2}, 10, 5) != "" {
		t.Fatal("mismatched lengths must be empty")
	}
	xs := []float64{1, 10, 100, 1000}
	ys := []float64{1, 5, 20, 80}
	got := ScatterLogLog(xs, ys, 20, 6)
	if strings.Count(got, "*") < 3 {
		t.Fatalf("scatter lost points:\n%s", got)
	}
	if !strings.Contains(got, "4 points") {
		t.Fatalf("point count missing:\n%s", got)
	}
	// A log-log diagonal: the first row (top) must hold the largest y.
	lines := strings.Split(got, "\n")
	if !strings.Contains(lines[0], "*") {
		t.Fatalf("top row empty:\n%s", got)
	}
	// Zero/negative values are clamped, not dropped.
	got = ScatterLogLog([]float64{0, 1}, []float64{-1, 1}, 10, 4)
	if !strings.Contains(got, "2 points") {
		t.Fatalf("clamping broken:\n%s", got)
	}
}

func TestBars(t *testing.T) {
	if Bars([]string{"a"}, []float64{1, 2}, 10) != "" {
		t.Fatal("mismatched bars must be empty")
	}
	got := Bars([]string{"w35", "w51"}, []float64{5, 10}, 10)
	lines := strings.Split(got, "\n")
	if len(lines) != 2 {
		t.Fatalf("bars lines = %d", len(lines))
	}
	if strings.Count(lines[1], "#") != 10 || strings.Count(lines[0], "#") != 5 {
		t.Fatalf("bar scaling wrong:\n%s", got)
	}
	if !strings.Contains(lines[0], "w35") {
		t.Fatal("labels missing")
	}
}
