// Package textplot renders the reproduction's figure series as plain
// text: sparklines for weekly time series (Fig. 4/5 style), log-log
// scatter plots for the heterogenization clouds (Fig. 6/7 style), and
// descending-share curves (Fig. 2 style). cmd/ixpreport uses it for the
// -series view.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are the eight block heights of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a single-line bar chart, scaled between
// the series' min and max. Empty input yields an empty string.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Curve renders a descending-share curve (like Fig. 2) as a fixed-width
// downsampled sparkline with min/max annotations.
func Curve(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	ds := downsample(values, width)
	return fmt.Sprintf("%s  (n=%d, head=%.3g, tail=%.3g)",
		Sparkline(ds), len(values), values[0], values[len(values)-1])
}

// downsample reduces values to at most width points by bucket-averaging.
func downsample(values []float64, width int) []float64 {
	if len(values) <= width {
		return values
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// ScatterLogLog renders (x, y) points on a log-log grid of the given
// character dimensions, marking cells holding at least one point. Axes
// grow rightward and upward. Non-positive coordinates are clamped to
// the smallest positive value in the series.
func ScatterLogLog(xs, ys []float64, width, height int) string {
	if len(xs) == 0 || len(xs) != len(ys) || width < 2 || height < 2 {
		return ""
	}
	minPos := func(vals []float64) float64 {
		m := math.Inf(1)
		for _, v := range vals {
			if v > 0 && v < m {
				m = v
			}
		}
		if math.IsInf(m, 1) {
			m = 1
		}
		return m
	}
	clampLog := func(v, floor float64) float64 {
		if v < floor {
			v = floor
		}
		return math.Log10(v)
	}
	fx, fy := minPos(xs), minPos(ys)
	lx0, lx1 := math.Inf(1), math.Inf(-1)
	ly0, ly1 := math.Inf(1), math.Inf(-1)
	for i := range xs {
		lx := clampLog(xs[i], fx)
		ly := clampLog(ys[i], fy)
		lx0, lx1 = math.Min(lx0, lx), math.Max(lx1, lx)
		ly0, ly1 = math.Min(ly0, ly), math.Max(ly1, ly)
	}
	if lx1 == lx0 {
		lx1 = lx0 + 1
	}
	if ly1 == ly0 {
		ly1 = ly0 + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range xs {
		cx := int((clampLog(xs[i], fx) - lx0) / (lx1 - lx0) * float64(width-1))
		cy := int((clampLog(ys[i], fy) - ly0) / (ly1 - ly0) * float64(height-1))
		grid[height-1-cy][cx] = '*'
	}
	var b strings.Builder
	for r, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		if r < len(grid)-1 {
			b.WriteByte('\n')
		}
	}
	b.WriteString(fmt.Sprintf("\n  +%s\n   x: %.3g..%.3g (log)  y: %.3g..%.3g (log), %d points",
		strings.Repeat("-", width), math.Pow(10, lx0), math.Pow(10, lx1),
		math.Pow(10, ly0), math.Pow(10, ly1), len(xs)))
	return b.String()
}

// Bars renders labeled horizontal bars scaled to the maximum value —
// Fig. 4(a)-style stacked weekly totals are printed as one bar per week
// by the caller.
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(labels) == 0 || width <= 0 {
		return ""
	}
	max := values[0]
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	for i := range labels {
		n := 0
		if max > 0 {
			n = int(values[i] / max * float64(width))
		}
		fmt.Fprintf(&b, "  %-*s %s %.4g", labelW, labels[i], strings.Repeat("#", n), values[i])
		if i < len(labels)-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
