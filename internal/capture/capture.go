// Package capture implements the on-disk measurement campaign format
// shared by cmd/ixpgen and cmd/ixpmine: a directory holding one sFlow
// capture per weekly snapshot plus a JSON manifest recording the world
// configuration, so the measurement substrates can be rebuilt
// deterministically for analysis. New campaigns are written in the
// checksummed v2 block container (see internal/sflow); v1 campaigns
// remain fully readable. The manifest carries a sha256 digest per week
// file, written as each week completes, so an interrupted campaign can
// resume: verified weeks are skipped, missing or damaged ones rewritten.
package capture

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"runtime"

	"ixplens/internal/anonymize"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/webserver"
	"ixplens/internal/faultline"
	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/sflow"
	"ixplens/internal/snapshot"
	"ixplens/internal/traffic"
	"ixplens/internal/vfs"
)

// ManifestName is the manifest file inside a campaign directory.
const ManifestName = "manifest.json"

// Manifest ties a campaign directory to its generating configuration.
// The v2 fields are omitted when empty so manifests from v1 campaigns
// still parse (and old readers ignore the additions).
type Manifest struct {
	Config  netmodel.Config
	Options traffic.Options
	Weeks   []int
	Files   []string
	// Anonymized records that the capture's addresses went through the
	// prefix-preserving anonymizer (the key itself is never stored).
	Anonymized bool
	// AnonFP fingerprints the anonymization key without revealing it: the
	// hex form of a fixed probe address run through the anonymizer. Two
	// campaigns written with the same key carry the same fingerprint, so
	// a resume can refuse to silently mix addresses anonymized under
	// different keys. Recovering the key from one mapped address would
	// mean inverting the keyed prefix-preserving permutation.
	AnonFP string `json:",omitempty"`
	// Format is the capture container version: 2 for block captures,
	// absent (0) for the original v1 stream container.
	Format int `json:",omitempty"`
	// Compression records whether v2 blocks are DEFLATE-compressed.
	Compression bool `json:",omitempty"`
	// Digests holds the sha256 hex digest of each entry in Files,
	// parallel to it. A week whose file matches its digest was written
	// completely and has not been damaged since.
	Digests []string `json:",omitempty"`
	// Datagrams holds the per-week datagram counts, parallel to Files.
	Datagrams []int `json:",omitempty"`
}

// WeekFile returns the conventional capture file name for a week.
func WeekFile(isoWeek int) string {
	return fmt.Sprintf("week-%02d.sflow", isoWeek)
}

// ErrAnonKeyMismatch marks a resume attempt whose anonymization key
// fingerprint differs from the manifest's. Test with errors.Is.
var ErrAnonKeyMismatch = errors.New("capture: resume with a different anonymization key")

// anonProbe is the fixed address whose anonymized form fingerprints a
// key (TEST-NET-2, never a world address).
var anonProbe = packet.MakeIPv4(198, 51, 100, 42)

// anonFingerprint derives a key's manifest fingerprint.
func anonFingerprint(anon *anonymize.PrefixPreserving) string {
	return fmt.Sprintf("%08x", uint32(anon.IPv4(anonProbe)))
}

// WriteOptions configures a campaign write.
type WriteOptions struct {
	// Compress enables per-block DEFLATE compression in the container.
	Compress bool
	// Resume skips weeks whose existing files verify against the
	// directory's manifest digests (same config, options and format) and
	// rewrites the rest — picking up where an interrupted campaign died.
	// Resuming an anonymized campaign with a different AnonKey fails
	// with ErrAnonKeyMismatch: the kept weeks and the rewritten ones
	// would otherwise mix two incompatible address mappings in one
	// directory. (Pre-fingerprint manifests lack the marker; they are
	// rewritten from scratch rather than trusted.)
	Resume bool
	// Anonymize applies prefix-preserving address anonymization with
	// AnonKey to every sampled frame.
	Anonymize bool
	AnonKey   uint64
}

// WriteCampaign renders every study week of env into dir and writes the
// manifest. It returns the per-week datagram counts. Cancelling ctx
// aborts mid-week within one datagram flush; env.Faults, when active,
// degrades the written streams exactly as it would a live capture.
func WriteCampaign(ctx context.Context, env *pipeline.Env, dir string) ([]int, error) {
	return WriteCampaignOpts(ctx, env, dir, WriteOptions{})
}

// WriteCampaignAnonymized is WriteCampaign with prefix-preserving
// address anonymization applied to every sampled frame, like the data
// the paper's authors could share. The key never leaves the process.
func WriteCampaignAnonymized(ctx context.Context, env *pipeline.Env, dir string, key uint64) ([]int, error) {
	return WriteCampaignOpts(ctx, env, dir, WriteOptions{Anonymize: true, AnonKey: key})
}

// WriteCampaignOpts is WriteCampaign with explicit options. The manifest
// is rewritten after every completed week, so a crash part-way leaves a
// directory a Resume run can pick up.
func WriteCampaignOpts(ctx context.Context, env *pipeline.Env, dir string, opts WriteOptions) ([]int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	fsys := env.VFS()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A crash between a temp write and its rename strands `.manifest-*`
	// litter; collect it before this run creates more.
	SweepTemps(fsys, dir)
	cfg := &env.World.Cfg
	man := NewManifest(env, opts)
	var prev *Manifest
	if opts.Resume {
		if old, err := ReadManifestFS(fsys, dir); err == nil {
			// Mixing keys is a hard error, not a silent rewrite: the caller
			// believes the old weeks are compatible with the new ones.
			if old.Anonymized && opts.Anonymize && old.AnonFP != "" && old.AnonFP != man.AnonFP {
				return nil, fmt.Errorf("%w: manifest fingerprint %s, key fingerprint %s",
					ErrAnonKeyMismatch, old.AnonFP, man.AnonFP)
			}
			if old.Compatible(man) {
				prev = old
			}
		}
	}
	var counts []int
	for wk := cfg.FirstWeek; wk <= cfg.LastWeek(); wk++ {
		name := WeekFile(wk)
		path := filepath.Join(dir, name)
		n, digest, reused := reuseWeek(fsys, prev, wk, name, path)
		if !reused {
			var err error
			n, digest, err = WriteWeekFile(ctx, env, wk, path, opts)
			if err != nil {
				return counts, fmt.Errorf("capture: week %d: %w", wk, err)
			}
		}
		counts = append(counts, n)
		man.SetWeek(wk, name, digest, n)
		if err := SaveManifestFS(fsys, dir, man); err != nil {
			return counts, err
		}
	}
	return counts, nil
}

// NewManifest builds the manifest skeleton a campaign write (or the
// supervisor's per-week capture stage) fills in with SetWeek.
func NewManifest(env *pipeline.Env, opts WriteOptions) *Manifest {
	man := &Manifest{
		Config:      env.World.Cfg,
		Options:     env.Opts,
		Anonymized:  opts.Anonymize,
		Format:      2,
		Compression: opts.Compress,
	}
	if opts.Anonymize {
		man.AnonFP = anonFingerprint(anonymize.New(opts.AnonKey))
	}
	return man
}

// WeekIndex returns wk's position in the manifest, or -1.
func (m *Manifest) WeekIndex(wk int) int {
	for i, w := range m.Weeks {
		if w == wk {
			return i
		}
	}
	return -1
}

// SetWeek upserts one week's entry, keeping the parallel arrays aligned
// and the weeks in ascending (chronological) order. It reports whether
// the manifest actually changed, so callers can skip redundant rewrites.
func (m *Manifest) SetWeek(wk int, file, digest string, datagrams int) bool {
	if i := m.WeekIndex(wk); i >= 0 {
		// Normalize a v1/legacy manifest's missing parallel arrays before
		// indexing into them.
		for len(m.Digests) < len(m.Files) {
			m.Digests = append(m.Digests, "")
		}
		for len(m.Datagrams) < len(m.Files) {
			m.Datagrams = append(m.Datagrams, 0)
		}
		if m.Files[i] == file && m.Digests[i] == digest && m.Datagrams[i] == datagrams {
			return false
		}
		m.Files[i], m.Digests[i], m.Datagrams[i] = file, digest, datagrams
		return true
	}
	at := len(m.Weeks)
	for i, w := range m.Weeks {
		if wk < w {
			at = i
			break
		}
	}
	insert := func() {
		m.Weeks = append(m.Weeks, 0)
		copy(m.Weeks[at+1:], m.Weeks[at:])
		m.Weeks[at] = wk
	}
	insert()
	m.Files = append(m.Files, "")
	copy(m.Files[at+1:], m.Files[at:])
	m.Files[at] = file
	m.Digests = append(m.Digests, "")
	copy(m.Digests[at+1:], m.Digests[at:])
	m.Digests[at] = digest
	m.Datagrams = append(m.Datagrams, 0)
	copy(m.Datagrams[at+1:], m.Datagrams[at:])
	m.Datagrams[at] = datagrams
	return true
}

// VerifyWeek reports whether wk's capture file in dir still matches the
// manifest's recorded digest (and returns the recorded datagram count).
func (m *Manifest) VerifyWeek(dir string, wk int) (n int, digest string, ok bool) {
	return m.VerifyWeekFS(vfs.Default, dir, wk)
}

// VerifyWeekFS is VerifyWeek through an explicit filesystem seam.
func (m *Manifest) VerifyWeekFS(fsys vfs.FS, dir string, wk int) (n int, digest string, ok bool) {
	i := m.WeekIndex(wk)
	if i < 0 || i >= len(m.Digests) || m.Digests[i] == "" {
		return 0, "", false
	}
	got, err := fileDigest(fsys, filepath.Join(dir, m.Files[i]))
	if err != nil || got != m.Digests[i] {
		return 0, "", false
	}
	n = 0
	if i < len(m.Datagrams) {
		n = m.Datagrams[i]
	}
	return n, got, true
}

// SaveManifest writes dir's manifest atomically (temp file, fsync,
// rename, parent-directory fsync).
func SaveManifest(dir string, man *Manifest) error {
	return SaveManifestFS(vfs.Default, dir, man)
}

// SaveManifestFS is SaveManifest through an explicit filesystem seam.
func SaveManifestFS(fsys vfs.FS, dir string, man *Manifest) error {
	return writeManifest(fsys, filepath.Join(dir, ManifestName), man)
}

// SweepTemps removes stale atomic-writer litter (`.manifest-*` and
// `.snap-*` temp files) a crashed run left in dir. Litter is harmless
// to correctness — renames are all-or-nothing — but it accumulates
// forever on a box that crashes often, and on a quota-tight disk the
// dead bytes are the difference between recovering and ENOSPC. Best
// effort: the count of removed files is returned, errors are not.
func SweepTemps(fsys vfs.FS, dir string) int {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !isTempLitter(name) {
			continue
		}
		if fsys.Remove(filepath.Join(dir, name)) == nil {
			removed++
		}
	}
	return removed
}

// isTempLitter recognizes the temp-file patterns the repo's atomic
// writers use (manifest, snapshot, journal rotation scratch).
func isTempLitter(name string) bool {
	for _, prefix := range []string{".manifest-", ".snap-", ".journal-"} {
		if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// Compatible reports whether m describes the same campaign next would
// produce, so m's digests can vouch for weeks already on disk.
func (m *Manifest) Compatible(next *Manifest) bool {
	return resumeCompatible(m, next)
}

// resumeCompatible reports whether an existing manifest describes the
// same campaign a new write would produce, so its digests can vouch for
// weeks already on disk. Config and Options are compared through their
// JSON form — the same encoding the manifest stores.
func resumeCompatible(old, next *Manifest) bool {
	if old.Format != next.Format ||
		old.Compression != next.Compression ||
		old.Anonymized != next.Anonymized ||
		old.AnonFP != next.AnonFP {
		return false
	}
	if len(old.Digests) != len(old.Files) || len(old.Datagrams) != len(old.Files) {
		return false
	}
	oc, err1 := json.Marshal(old.Config)
	nc, err2 := json.Marshal(next.Config)
	oo, err3 := json.Marshal(old.Options)
	no, err4 := json.Marshal(next.Options)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		return false
	}
	return string(oc) == string(nc) && string(oo) == string(no)
}

// reuseWeek reports whether the file for wk can be kept as-is: the prior
// manifest lists it and the bytes on disk still match its digest.
func reuseWeek(fsys vfs.FS, prev *Manifest, wk int, name, path string) (n int, digest string, ok bool) {
	if prev == nil {
		return 0, "", false
	}
	for i, w := range prev.Weeks {
		if w != wk || prev.Files[i] != name {
			continue
		}
		got, err := fileDigest(fsys, path)
		if err != nil || got != prev.Digests[i] {
			return 0, "", false
		}
		return prev.Datagrams[i], got, true
	}
	return 0, "", false
}

// FileDigest returns the sha256 hex digest of a file's contents — the
// same digest the manifest records per week.
func FileDigest(path string) (string, error) {
	return fileDigest(vfs.Default, path)
}

// FileDigestFS is FileDigest through an explicit filesystem seam.
func FileDigestFS(fsys vfs.FS, path string) (string, error) {
	return fileDigest(fsys, path)
}

// WriteWeekFile renders one study week of env into path and returns the
// datagram count and content digest. It is the single-week unit
// WriteCampaignOpts (and the supervisor's capture stage) are built on;
// opts.Resume is ignored here — skipping verified weeks is the caller's
// decision.
func WriteWeekFile(ctx context.Context, env *pipeline.Env, isoWeek int, path string, opts WriteOptions) (int, string, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var anon *anonymize.PrefixPreserving
	if opts.Anonymize {
		anon = anonymize.New(opts.AnonKey)
	}
	return writeWeek(ctx, env, isoWeek, path, anon, opts.Compress)
}

// fileDigest returns the sha256 hex digest of a file's contents.
func fileDigest(fsys vfs.FS, path string) (string, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func writeWeek(ctx context.Context, env *pipeline.Env, isoWeek int, path string, anon *anonymize.PrefixPreserving, compress bool) (int, string, error) {
	fsys := env.VFS()
	f, err := fsys.Create(path)
	if err != nil {
		return 0, "", err
	}
	h := sha256.New()
	sw, err := sflow.NewBlockWriter(io.MultiWriter(f, h), compress)
	if err != nil {
		f.Close()
		return 0, "", err
	}
	// fail closes best-effort on the error path; the file is incomplete
	// either way and a resume will rewrite it.
	fail := func(e error) (int, string, error) {
		f.Close()
		return sw.Count(), "", e
	}
	base := func(d *sflow.Datagram) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return sw.WriteDatagram(d)
	}
	sink := base
	if anon != nil {
		sink = anon.Datagrams(sink)
	}
	// inner is where a flushed held-back datagram must go: through the
	// anonymizer, never around it.
	inner := sink
	var inj *faultline.Injector
	if env.Faults.Active() {
		// Faults go in front of the anonymizer: the injector corrupts the
		// wire stream, the anonymizer is part of the trusted collector.
		inj = faultline.New(*env.Faults, uint64(isoWeek))
		sink = inj.Sink(inner)
	}
	col := ixp.NewCollector(env.Fabric, env.Opts.SamplingRate, sink)
	// All sinks consume the datagram within the call (the writer
	// serializes, the anonymizer rewrites in place and forwards, the
	// injector clones what it holds back), so the collector can recycle
	// its buffers.
	col.SetBufferReuse(true)
	if _, err := env.Gen.GenerateWeek(isoWeek, col); err != nil {
		return fail(err)
	}
	if inj != nil {
		if err := inj.Flush(inner); err != nil {
			return fail(err)
		}
	}
	if err := sw.Close(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	// Close is checked, not deferred: on a full disk the close itself can
	// surface the write-back failure, and a digest for a half-written
	// file must never reach the manifest.
	if err := f.Close(); err != nil {
		return sw.Count(), "", err
	}
	// The capture is created in place (not temp-then-rename: week files
	// are large and their digest gates acceptance anyway), so durability
	// of the directory entry still needs the parent fsync.
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return sw.Count(), "", err
	}
	// The digest is of the bytes handed to the writer, not the bytes the
	// disk kept — a lying fsync can diverge the two. Callers that accept
	// this digest durably (the supervisor) re-verify it by read-back.
	return sw.Count(), hex.EncodeToString(h.Sum(nil)), nil
}

// writeManifest writes the manifest atomically through the seam's
// crash-consistent writer: temp file, write, fsync, close (all checked
// — a full disk must not leave a truncated manifest that parses as
// complete), rename into place, then fsync the parent directory so the
// rename itself survives power loss. Failed writes remove their temp.
func writeManifest(fsys vfs.FS, path string, man *Manifest) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(man); err != nil {
		return err
	}
	return vfs.WriteFileAtomic(fsys, path, buf.Bytes(), ".manifest-*")
}

// ReadManifest loads and validates a campaign manifest.
func ReadManifest(dir string) (*Manifest, error) {
	return ReadManifestFS(vfs.Default, dir)
}

// ReadManifestFS is ReadManifest through an explicit filesystem seam.
func ReadManifestFS(fsys vfs.FS, dir string) (*Manifest, error) {
	raw, err := vfs.ReadFile(fsys, filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("capture: parsing manifest: %w", err)
	}
	if err := man.Config.Validate(); err != nil {
		return nil, fmt.Errorf("capture: manifest config: %w", err)
	}
	if len(man.Weeks) != len(man.Files) {
		return nil, fmt.Errorf("capture: manifest weeks/files mismatch: %d vs %d",
			len(man.Weeks), len(man.Files))
	}
	// The v2 fields are parallel to Files when present at all. A manifest
	// violating that shape (hand-edited, or damaged in a way that still
	// parses) would index out of bounds in every consumer that walks the
	// arrays together, so it is rejected here once — resume degrades to a
	// clean rewrite, analysis tools fail with a diagnosis instead of a
	// panic.
	if n := len(man.Digests); n != 0 && n != len(man.Files) {
		return nil, fmt.Errorf("capture: manifest digests/files mismatch: %d vs %d",
			n, len(man.Files))
	}
	if n := len(man.Datagrams); n != 0 && n != len(man.Files) {
		return nil, fmt.Errorf("capture: manifest datagrams/files mismatch: %d vs %d",
			n, len(man.Files))
	}
	return &man, nil
}

// Rebuild reconstructs the measurement substrates the campaign was
// generated against (the world regenerates deterministically).
func (m *Manifest) Rebuild() (*pipeline.Env, error) {
	return pipeline.NewEnv(m.Config, m.Options)
}

// analyzeWorkers sizes the per-file worker pools: one core is left for
// the reader/merge side, capped where sharding stops paying off.
func analyzeWorkers() int {
	workers := runtime.GOMAXPROCS(0) - 1
	if workers > 8 {
		workers = 8
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// AnalyzeWeekSnapshot dissects one capture file through every analyzer
// in env's registry — identification, visibility, link flows — in a
// SINGLE pass, spreading classification over a worker pool; each worker
// feeds its own per-analyzer shard and the deterministic shard merges
// inside Finish keep results identical to a sequential pass. v2 (block)
// captures are additionally decoded by a parallel block reader,
// removing the serial read bottleneck; v1 captures take the sequential
// fallback path. The returned snapshot carries every analyzer's
// product; the caller binds SourceDigest.
//
// Damage degrades instead of failing: a crash-truncated capture (either
// format) yields everything decoded before the cut, and v2 blocks whose
// checksum does not verify are quarantined and counted. Both surface
// through the result's EstLoss annotation — quarantined and truncated
// datagrams reappear to the sequence tracker as gaps — and through the
// capture metrics in env.M. Structural corruption (bad magic, damaged
// framing without a trusted index) still fails. ctx cancels the pass
// within one datagram batch.
func AnalyzeWeekSnapshot(ctx context.Context, env *pipeline.Env, path string, isoWeek int) (*snapshot.Snapshot, error) {
	f, err := env.VFS().Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("capture: reading %s header: %w", filepath.Base(path), err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	workers := analyzeWorkers()
	var src dissect.DatagramSource
	var blockStats func() sflow.BlockStats
	switch sflow.CaptureFormat(magic) {
	case 1:
		sr, err := sflow.NewStreamReader(f)
		if err != nil {
			return nil, err
		}
		src = sr
	case 2:
		if workers > 1 {
			pr, err := sflow.NewParallelBlockReader(f, workers)
			if err != nil {
				return nil, err
			}
			defer pr.Close()
			src, blockStats = pr, pr.Stats
		} else {
			br, err := sflow.NewBlockReader(f)
			if err != nil {
				return nil, err
			}
			src, blockStats = br, br.Stats
		}
	default:
		return nil, sflow.ErrBadMagic
	}
	run := env.Registry().NewRun(env.AnalysisContext(), workers)
	var seq sflow.SeqTracker
	tsrc := &faultline.TrackSource{Src: src, Seq: &seq}
	counts, err := dissect.ProcessSharded(ctx, tsrc, env.Fabric, workers, run.Observe, env.M.DissectMetrics())
	truncated := errors.Is(err, sflow.ErrTruncated)
	if err != nil && !truncated {
		return nil, err
	}
	var st sflow.BlockStats
	if blockStats != nil {
		st = blockStats()
	}
	st.Truncated = st.Truncated || truncated
	env.M.ObserveCapture(st)
	prods, err := run.Finish(isoWeek)
	if err != nil {
		return nil, err
	}
	snap, err := snapshot.FromProducts(prods, counts)
	if err != nil {
		return nil, err
	}
	snap.Result.EstLoss = seq.EstLoss()
	if env.MaxLoss > 0 && snap.Result.EstLoss > env.MaxLoss {
		return nil, fmt.Errorf("capture: week %d estimated loss %.4f > max %.4f: %w",
			isoWeek, snap.Result.EstLoss, env.MaxLoss, pipeline.ErrLossExceeded)
	}
	return snap, nil
}

// AnalyzeWeekFile is the identification-only view of
// AnalyzeWeekSnapshot, kept for callers that need just the webserver
// result and cascade counts.
func AnalyzeWeekFile(ctx context.Context, env *pipeline.Env, path string, isoWeek int) (*webserver.Result, dissect.Counts, error) {
	snap, err := AnalyzeWeekSnapshot(ctx, env, path, isoWeek)
	if err != nil {
		return nil, dissect.Counts{}, err
	}
	return snap.Result, snap.Counts, nil
}
