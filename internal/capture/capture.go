// Package capture implements the on-disk measurement campaign format
// shared by cmd/ixpgen and cmd/ixpmine: a directory holding one sFlow
// stream per weekly snapshot plus a JSON manifest recording the world
// configuration, so the measurement substrates can be rebuilt
// deterministically for analysis.
package capture

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"ixplens/internal/anonymize"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/webserver"
	"ixplens/internal/faultline"
	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/pipeline"
	"ixplens/internal/sflow"
	"ixplens/internal/traffic"
)

// ManifestName is the manifest file inside a campaign directory.
const ManifestName = "manifest.json"

// Manifest ties a campaign directory to its generating configuration.
type Manifest struct {
	Config  netmodel.Config
	Options traffic.Options
	Weeks   []int
	Files   []string
	// Anonymized records that the capture's addresses went through the
	// prefix-preserving anonymizer (the key itself is never stored).
	Anonymized bool
}

// WeekFile returns the conventional capture file name for a week.
func WeekFile(isoWeek int) string {
	return fmt.Sprintf("week-%02d.sflow", isoWeek)
}

// WriteCampaign renders every study week of env into dir and writes the
// manifest. It returns the per-week datagram counts. Cancelling ctx
// aborts mid-week within one datagram flush; env.Faults, when active,
// degrades the written streams exactly as it would a live capture.
func WriteCampaign(ctx context.Context, env *pipeline.Env, dir string) ([]int, error) {
	return writeCampaign(ctx, env, dir, nil)
}

// WriteCampaignAnonymized is WriteCampaign with prefix-preserving
// address anonymization applied to every sampled frame, like the data
// the paper's authors could share. The key never leaves the process.
func WriteCampaignAnonymized(ctx context.Context, env *pipeline.Env, dir string, key uint64) ([]int, error) {
	return writeCampaign(ctx, env, dir, anonymize.New(key))
}

func writeCampaign(ctx context.Context, env *pipeline.Env, dir string, anon *anonymize.PrefixPreserving) ([]int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cfg := &env.World.Cfg
	man := Manifest{Config: *cfg, Options: env.Opts, Anonymized: anon != nil}
	var counts []int
	for wk := cfg.FirstWeek; wk <= cfg.LastWeek(); wk++ {
		name := WeekFile(wk)
		n, err := writeWeek(ctx, env, wk, filepath.Join(dir, name), anon)
		if err != nil {
			return counts, fmt.Errorf("capture: week %d: %w", wk, err)
		}
		counts = append(counts, n)
		man.Weeks = append(man.Weeks, wk)
		man.Files = append(man.Files, name)
	}
	return counts, writeManifest(filepath.Join(dir, ManifestName), &man)
}

func writeWeek(ctx context.Context, env *pipeline.Env, isoWeek int, path string, anon *anonymize.PrefixPreserving) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sw, err := sflow.NewStreamWriter(f)
	if err != nil {
		return 0, err
	}
	base := func(d *sflow.Datagram) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return sw.WriteDatagram(d)
	}
	sink := base
	if anon != nil {
		sink = anon.Datagrams(sink)
	}
	// inner is where a flushed held-back datagram must go: through the
	// anonymizer, never around it.
	inner := sink
	var inj *faultline.Injector
	if env.Faults.Active() {
		// Faults go in front of the anonymizer: the injector corrupts the
		// wire stream, the anonymizer is part of the trusted collector.
		inj = faultline.New(*env.Faults, uint64(isoWeek))
		sink = inj.Sink(inner)
	}
	col := ixp.NewCollector(env.Fabric, env.Opts.SamplingRate, sink)
	// All sinks consume the datagram within the call (the writer
	// serializes, the anonymizer rewrites in place and forwards, the
	// injector clones what it holds back), so the collector can recycle
	// its buffers.
	col.SetBufferReuse(true)
	if _, err := env.Gen.GenerateWeek(isoWeek, col); err != nil {
		return sw.Count(), err
	}
	if inj != nil {
		if err := inj.Flush(inner); err != nil {
			return sw.Count(), err
		}
	}
	if err := sw.Flush(); err != nil {
		return sw.Count(), err
	}
	return sw.Count(), f.Sync()
}

func writeManifest(path string, man *Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(man)
}

// ReadManifest loads and validates a campaign manifest.
func ReadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("capture: parsing manifest: %w", err)
	}
	if err := man.Config.Validate(); err != nil {
		return nil, fmt.Errorf("capture: manifest config: %w", err)
	}
	if len(man.Weeks) != len(man.Files) {
		return nil, fmt.Errorf("capture: manifest weeks/files mismatch: %d vs %d",
			len(man.Weeks), len(man.Files))
	}
	return &man, nil
}

// Rebuild reconstructs the measurement substrates the campaign was
// generated against (the world regenerates deterministically).
func (m *Manifest) Rebuild() (*pipeline.Env, error) {
	return pipeline.NewEnv(m.Config, m.Options)
}

// AnalyzeWeekFile dissects and identifies one capture file, spreading
// classification over a worker pool; each worker feeds its own
// identifier shard and the deterministic shard merge inside Identify
// keeps results identical to a sequential pass. Sequence gaps in the
// file (a capture written through a lossy path, or truncated on disk)
// surface as the result's EstLoss annotation, and ctx cancels the pass
// within one datagram.
func AnalyzeWeekFile(ctx context.Context, env *pipeline.Env, path string, isoWeek int) (*webserver.Result, dissect.Counts, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, dissect.Counts{}, err
	}
	defer f.Close()
	sr, err := sflow.NewStreamReader(f)
	if err != nil {
		return nil, dissect.Counts{}, err
	}
	workers := runtime.GOMAXPROCS(0) - 1
	if workers > 8 {
		workers = 8
	}
	if workers < 1 {
		workers = 1
	}
	ident := webserver.NewSharded(workers)
	ident.SetMetrics(env.M.IdentifyMetrics())
	var seq sflow.SeqTracker
	src := &faultline.TrackSource{Src: sr, Seq: &seq}
	counts, err := dissect.ProcessSharded(ctx, src, env.Fabric, workers, ident.ObserveShard, env.M.DissectMetrics())
	if err != nil {
		return nil, counts, err
	}
	res := ident.Identify(isoWeek, env.Crawler)
	res.EstLoss = seq.EstLoss()
	if env.MaxLoss > 0 && res.EstLoss > env.MaxLoss {
		return nil, counts, fmt.Errorf("capture: week %d estimated loss %.4f > max %.4f: %w",
			isoWeek, res.EstLoss, env.MaxLoss, pipeline.ErrLossExceeded)
	}
	return res, counts, nil
}
