package capture

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/pipeline"
	"ixplens/internal/sflow"
	"ixplens/internal/traffic"
)

// benchFixture holds one week rendered to disk in both container
// formats, shared by every benchmark in the package (generation costs
// far more than any measured pass, so it runs once).
type benchFixture struct {
	env    *pipeline.Env
	week   int
	v1, v2 string
	size1  int64
	size2  int64
	err    error
}

var (
	benchOnce sync.Once
	bench     benchFixture
)

func benchSetup(b *testing.B) *benchFixture {
	b.Helper()
	benchOnce.Do(func() {
		cfg := netmodel.Tiny()
		cfg.Weeks = 2
		opts := traffic.Options{SamplesPerWeek: 20_000, SamplingRate: 16384, SnapLen: 128}
		env, err := pipeline.NewEnv(cfg, opts)
		if err != nil {
			bench.err = err
			return
		}
		dir, err := os.MkdirTemp("", "ixplens-capture-bench")
		if err != nil {
			bench.err = err
			return
		}
		bench.env = env
		bench.week = cfg.FirstWeek
		bench.v2 = filepath.Join(dir, WeekFile(bench.week))
		if _, err := WriteCampaign(context.Background(), env, dir); err != nil {
			bench.err = err
			return
		}
		bench.v1 = filepath.Join(dir, "week-v1.sflow")
		f, err := os.Create(bench.v1)
		if err != nil {
			bench.err = err
			return
		}
		sw, err := sflow.NewStreamWriter(f)
		if err == nil {
			err = writeV1Bench(env, bench.week, sw)
		}
		if err == nil {
			err = sw.Flush()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			bench.err = err
			return
		}
		bench.size1 = fileSize(&bench.err, bench.v1)
		bench.size2 = fileSize(&bench.err, bench.v2)
	})
	if bench.err != nil {
		b.Fatal(bench.err)
	}
	return &bench
}

func writeV1Bench(env *pipeline.Env, isoWeek int, sw *sflow.StreamWriter) error {
	col := ixp.NewCollector(env.Fabric, env.Opts.SamplingRate, sw.WriteDatagram)
	col.SetBufferReuse(true)
	_, err := env.Gen.GenerateWeek(isoWeek, col)
	return err
}

func fileSize(errp *error, path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		if *errp == nil {
			*errp = err
		}
		return 0
	}
	return fi.Size()
}

// BenchmarkAnalyzeWeekFile measures the full capture-to-result pass per
// container format. On GOMAXPROCS>=4 hosts the v2 sub-benchmark fans
// block decoding over the parallel reader; v1 is pinned to the serial
// stream decode.
func BenchmarkAnalyzeWeekFile(b *testing.B) {
	fx := benchSetup(b)
	run := func(b *testing.B, path string, size int64) {
		b.SetBytes(size)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, counts, err := AnalyzeWeekFile(context.Background(), fx.env, path, fx.week)
			if err != nil {
				b.Fatal(err)
			}
			if counts.Total == 0 || len(res.Servers) == 0 {
				b.Fatal("empty analysis")
			}
		}
	}
	b.Run("v1-serial", func(b *testing.B) { run(b, fx.v1, fx.size1) })
	b.Run("v2-parallel", func(b *testing.B) { run(b, fx.v2, fx.size2) })
}

// BenchmarkDecodeWeekFile isolates container decoding from the analysis:
// a pure drain of every datagram in the file.
func BenchmarkDecodeWeekFile(b *testing.B) {
	fx := benchSetup(b)
	drain := func(b *testing.B, src interface{ Next(*sflow.Datagram) error }) {
		var d sflow.Datagram
		for {
			err := src.Next(&d)
			if err == io.EOF {
				return
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("v1-serial", func(b *testing.B) {
		b.SetBytes(fx.size1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := os.Open(fx.v1)
			if err != nil {
				b.Fatal(err)
			}
			sr, err := sflow.NewStreamReader(f)
			if err != nil {
				b.Fatal(err)
			}
			drain(b, sr)
			f.Close()
		}
	})
	b.Run("v2-serial", func(b *testing.B) {
		b.SetBytes(fx.size2)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := os.Open(fx.v2)
			if err != nil {
				b.Fatal(err)
			}
			br, err := sflow.NewBlockReader(f)
			if err != nil {
				b.Fatal(err)
			}
			drain(b, br)
			f.Close()
		}
	})
	b.Run("v2-parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
		b.SetBytes(fx.size2)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := os.Open(fx.v2)
			if err != nil {
				b.Fatal(err)
			}
			pr, err := sflow.NewParallelBlockReader(f, workers)
			if err != nil {
				b.Fatal(err)
			}
			drain(b, pr)
			pr.Close()
			f.Close()
		}
	})
}
