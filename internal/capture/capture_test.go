package capture

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ixplens/internal/netmodel"
	"ixplens/internal/pipeline"
	"ixplens/internal/traffic"
	"ixplens/internal/vfs"
)

func smallEnv(t testing.TB) *pipeline.Env {
	t.Helper()
	cfg := netmodel.Tiny()
	cfg.Weeks = 3
	opts := traffic.Options{SamplesPerWeek: 3000, SamplingRate: 16384, SnapLen: 128}
	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestCampaignRoundTrip(t *testing.T) {
	env := smallEnv(t)
	dir := t.TempDir()
	counts, err := WriteCampaign(context.Background(), env, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 {
		t.Fatalf("wrote %d weeks", len(counts))
	}
	for i, n := range counts {
		if n == 0 {
			t.Fatalf("week %d empty", i)
		}
	}

	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Weeks) != 3 || man.Weeks[0] != env.World.Cfg.FirstWeek {
		t.Fatalf("manifest weeks wrong: %v", man.Weeks)
	}
	env2, err := man.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if len(env2.World.Servers) != len(env.World.Servers) {
		t.Fatal("rebuilt world differs")
	}

	// Analysing the on-disk capture must agree with analysing the same
	// week in memory.
	res, counts0, err := AnalyzeWeekFile(context.Background(), env2, filepath.Join(dir, man.Files[0]), man.Weeks[0])
	if err != nil {
		t.Fatal(err)
	}
	if counts0.Total == 0 || len(res.Servers) == 0 {
		t.Fatal("file analysis empty")
	}
	memRes, memCounts, _, err := env.IdentifyWeek(context.Background(), man.Weeks[0])
	if err != nil {
		t.Fatal(err)
	}
	if counts0.Total != memCounts.Total {
		t.Fatalf("file analysis saw %d samples, in-memory %d", counts0.Total, memCounts.Total)
	}
	if len(res.Servers) != len(memRes.Servers) {
		t.Fatalf("file analysis found %d servers, in-memory %d", len(res.Servers), len(memRes.Servers))
	}
	for ip := range memRes.Servers {
		if _, ok := res.Servers[ip]; !ok {
			t.Fatalf("server %v missing from file analysis", ip)
		}
	}
}

func TestReadManifestErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("missing manifest must fail")
	}
	path := filepath.Join(dir, ManifestName)
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("corrupt manifest must fail")
	}
	if err := os.WriteFile(path, []byte(`{"Config":{},"Options":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("invalid config must fail")
	}
}

func TestAnalyzeWeekFileErrors(t *testing.T) {
	env := smallEnv(t)
	if _, _, err := AnalyzeWeekFile(context.Background(), env, "/nonexistent/file.sflow", 35); err == nil {
		t.Fatal("missing file must fail")
	}
	// A non-capture file must fail the stream header check.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.sflow")
	if err := os.WriteFile(bad, []byte("garbage bytes here"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := AnalyzeWeekFile(context.Background(), env, bad, 35); err == nil {
		t.Fatal("bad magic must fail")
	}
}

func TestWeekFileNaming(t *testing.T) {
	if WeekFile(7) != "week-07.sflow" || WeekFile(45) != "week-45.sflow" {
		t.Fatal("week file names wrong")
	}
}

// TestReadManifestRejectsMisshapenArrays corrupts the parallel v2
// arrays: a manifest whose Digests or Datagrams disagree with Files in
// length must be rejected at read time (every consumer indexes them
// together), and a resume over such a directory must degrade to a clean
// rewrite instead of panicking.
func TestReadManifestRejectsMisshapenArrays(t *testing.T) {
	env := smallEnv(t)
	dir := t.TempDir()
	counts1, err := WriteCampaign(context.Background(), env, dir)
	if err != nil {
		t.Fatal(err)
	}
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func(*Manifest)) {
		t.Helper()
		bad := *man
		bad.Digests = append([]string(nil), man.Digests...)
		bad.Datagrams = append([]int(nil), man.Datagrams...)
		mutate(&bad)
		raw, err := json.Marshal(&bad)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, ManifestName), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	corrupt(func(m *Manifest) { m.Digests = m.Digests[:1] })
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("short digests array must fail")
	}
	corrupt(func(m *Manifest) { m.Datagrams = append(m.Datagrams, 999) })
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("long datagrams array must fail")
	}

	// Resume over the corrupted manifest: nothing to trust, so every
	// week is rewritten cleanly and the directory ends up valid again.
	corrupt(func(m *Manifest) { m.Digests = m.Digests[:1] })
	env2, err := man.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	counts2, err := WriteCampaignOpts(context.Background(), env2, dir, WriteOptions{Resume: true})
	if err != nil {
		t.Fatalf("resume over corrupted manifest: %v", err)
	}
	if !reflect.DeepEqual(counts1, counts2) {
		t.Fatalf("rewrite changed counts: %v vs %v", counts1, counts2)
	}
	if _, err := ReadManifest(dir); err != nil {
		t.Fatalf("directory still invalid after recovery rewrite: %v", err)
	}
}

// TestResumeRefusesAnonKeyMismatch pins the key-fingerprint guard: a
// resume whose anonymization key differs from the one the directory was
// written with must fail hard, because the kept weeks and the rewritten
// weeks would mix two incompatible address mappings.
func TestResumeRefusesAnonKeyMismatch(t *testing.T) {
	env := smallEnv(t)
	dir := t.TempDir()
	if _, err := WriteCampaignAnonymized(context.Background(), env, dir, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.AnonFP == "" {
		t.Fatal("anonymized manifest carries no key fingerprint")
	}
	// The fingerprint must not be the probe itself (that would mean the
	// anonymizer leaked an identity mapping into the manifest).
	if man.AnonFP == fmt.Sprintf("%08x", uint32(anonProbe)) {
		t.Fatal("fingerprint equals the probe address")
	}

	env2, err := man.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	// Same key: resume verifies and keeps every week.
	if _, err := WriteCampaignOpts(context.Background(), env2, dir, WriteOptions{
		Resume: true, Anonymize: true, AnonKey: 0xdeadbeef,
	}); err != nil {
		t.Fatalf("same-key resume: %v", err)
	}
	// Different key: hard refusal, directory untouched.
	before, err := fileDigest(vfs.Default, filepath.Join(dir, man.Files[0]))
	if err != nil {
		t.Fatal(err)
	}
	_, err = WriteCampaignOpts(context.Background(), env2, dir, WriteOptions{
		Resume: true, Anonymize: true, AnonKey: 0xfeedface,
	})
	if !errors.Is(err, ErrAnonKeyMismatch) {
		t.Fatalf("different-key resume returned %v, want ErrAnonKeyMismatch", err)
	}
	after, err := fileDigest(vfs.Default, filepath.Join(dir, man.Files[0]))
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatal("refused resume still modified the campaign")
	}

	// A pre-fingerprint manifest (AnonFP absent) cannot vouch for its
	// key: resume falls back to a full rewrite rather than erroring or
	// trusting the old weeks.
	legacy := *man
	legacy.AnonFP = ""
	raw, err := json.Marshal(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCampaignOpts(context.Background(), env2, dir, WriteOptions{
		Resume: true, Anonymize: true, AnonKey: 0xfeedface,
	}); err != nil {
		t.Fatalf("legacy-manifest resume: %v", err)
	}
	rewritten, err := fileDigest(vfs.Default, filepath.Join(dir, man.Files[0]))
	if err != nil {
		t.Fatal(err)
	}
	if rewritten == before {
		t.Fatal("legacy-manifest resume kept weeks written under another key")
	}
	man2, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man2.AnonFP == "" || man2.AnonFP == man.AnonFP {
		t.Fatal("rewritten manifest does not carry the new key's fingerprint")
	}
}

// TestAnonymizedCampaign checks that an anonymized capture hides every
// real address while keeping the frames decodable — the filtering
// cascade still works, the RIB (keyed on real addresses) no longer
// resolves the endpoints.
func TestAnonymizedCampaign(t *testing.T) {
	env := smallEnv(t)
	dir := t.TempDir()
	if _, err := WriteCampaignAnonymized(context.Background(), env, dir, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !man.Anonymized {
		t.Fatal("manifest must record anonymization")
	}
	res, counts, err := AnalyzeWeekFile(context.Background(), env, filepath.Join(dir, man.Files[0]), man.Weeks[0])
	if err != nil {
		t.Fatal(err)
	}
	// The cascade is address-agnostic and must survive anonymization.
	if counts.Undecodable != 0 {
		t.Fatalf("%d undecodable frames after anonymization", counts.Undecodable)
	}
	if counts.PeeringShare() < 0.95 {
		t.Fatalf("peering share %.3f after anonymization", counts.PeeringShare())
	}
	// No identified server may carry a real server address: the
	// anonymizer has no fixed points on this world (checked below).
	real := 0
	for ip := range res.Servers {
		if _, ok := env.World.ServerByIP(ip); ok {
			real++
		}
	}
	if real > len(res.Servers)/100 {
		t.Fatalf("%d of %d identified servers still carry real addresses", real, len(res.Servers))
	}
	// Identification itself keeps working on anonymized data.
	if len(res.Servers) < 50 {
		t.Fatalf("only %d servers identified on anonymized capture", len(res.Servers))
	}
}
