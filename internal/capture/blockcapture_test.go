package capture

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ixplens/internal/faultline"
	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/obs"
	"ixplens/internal/pipeline"
	"ixplens/internal/sflow"
	"ixplens/internal/traffic"
	"ixplens/internal/vfs"
)

// writeV1Week renders one week into the legacy v1 stream container —
// the format every pre-existing campaign on disk is in.
func writeV1Week(t *testing.T, env *pipeline.Env, isoWeek int, path string) int {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sw, err := sflow.NewStreamWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	col := ixp.NewCollector(env.Fabric, env.Opts.SamplingRate, sw.WriteDatagram)
	col.SetBufferReuse(true)
	if _, err := env.Gen.GenerateWeek(isoWeek, col); err != nil {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	return sw.Count()
}

// TestGoldenV1V2Equivalence writes the same full 17-week campaign in
// both container formats and requires AnalyzeWeekFile to produce
// identical results from either — the v2 migration must be invisible to
// the analysis.
func TestGoldenV1V2Equivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-campaign golden comparison")
	}
	cfg := netmodel.Tiny()
	opts := traffic.Options{SamplesPerWeek: 1500, SamplingRate: 16384, SnapLen: 128}
	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	v1dir, v2dir := t.TempDir(), t.TempDir()

	// Week generation is deterministic in (seed, week) alone, so the v1
	// files written here carry the same datagrams WriteCampaign renders.
	v1counts := make([]int, 0, cfg.Weeks)
	for wk := cfg.FirstWeek; wk <= cfg.LastWeek(); wk++ {
		v1counts = append(v1counts, writeV1Week(t, env, wk, filepath.Join(v1dir, WeekFile(wk))))
	}
	v2counts, err := WriteCampaignOpts(context.Background(), env, v2dir, WriteOptions{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v1counts, v2counts) {
		t.Fatalf("datagram counts diverge: v1 %v, v2 %v", v1counts, v2counts)
	}

	man, err := ReadManifest(v2dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Format != 2 || !man.Compression {
		t.Fatalf("manifest format/compression = %d/%v", man.Format, man.Compression)
	}
	if len(man.Digests) != cfg.Weeks || len(man.Datagrams) != cfg.Weeks {
		t.Fatalf("manifest digests/datagrams: %d/%d entries", len(man.Digests), len(man.Datagrams))
	}
	for i, wk := range man.Weeks {
		if man.Datagrams[i] != v2counts[i] {
			t.Fatalf("week %d: manifest says %d datagrams, writer reported %d", wk, man.Datagrams[i], v2counts[i])
		}
		got, err := fileDigest(vfs.Default, filepath.Join(v2dir, man.Files[i]))
		if err != nil {
			t.Fatal(err)
		}
		if got != man.Digests[i] {
			t.Fatalf("week %d digest mismatch", wk)
		}

		res1, c1, err := AnalyzeWeekFile(context.Background(), env, filepath.Join(v1dir, man.Files[i]), wk)
		if err != nil {
			t.Fatalf("v1 week %d: %v", wk, err)
		}
		res2, c2, err := AnalyzeWeekFile(context.Background(), env, filepath.Join(v2dir, man.Files[i]), wk)
		if err != nil {
			t.Fatalf("v2 week %d: %v", wk, err)
		}
		if c1 != c2 {
			t.Fatalf("week %d cascade diverges: v1 %+v, v2 %+v", wk, c1, c2)
		}
		if !reflect.DeepEqual(res1, res2) {
			t.Fatalf("week %d analysis diverges between containers", wk)
		}
		if c1.Total == 0 || len(res1.Servers) == 0 {
			t.Fatalf("week %d analysis empty", wk)
		}
	}
}

// instrumented returns a small campaign plus a metrics registry wired
// into its env, for asserting on the capture damage counters.
func instrumented(t *testing.T, weeks int) (*pipeline.Env, *obs.Registry, string) {
	t.Helper()
	cfg := netmodel.Tiny()
	cfg.Weeks = weeks
	opts := traffic.Options{SamplesPerWeek: 3000, SamplingRate: 16384, SnapLen: 128}
	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	env.Instrument(reg)
	dir := t.TempDir()
	if _, err := WriteCampaign(context.Background(), env, dir); err != nil {
		t.Fatal(err)
	}
	return env, reg, dir
}

func counterValue(t *testing.T, reg *obs.Registry, name string) uint64 {
	t.Helper()
	return reg.Counters()[name]
}

// TestCorruptedBlockQuarantine flips one bit in the middle of a v2
// capture — the single-bit disk corruption the checksums exist for —
// and requires the analysis to quarantine the damaged block, count it,
// and surface the lost datagrams as estimated loss instead of failing.
func TestCorruptedBlockQuarantine(t *testing.T) {
	env, reg, dir := instrumented(t, 2)
	path := filepath.Join(dir, WeekFile(env.World.Cfg.FirstWeek))

	_, clean, err := AnalyzeWeekFile(context.Background(), env, path, env.World.Cfg.FirstWeek)
	if err != nil {
		t.Fatal(err)
	}

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	off, err := faultline.FlipFileBit(path, uint64(fi.Size()/2))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flipped one bit at offset %d of %d", off, fi.Size())

	res, counts, err := AnalyzeWeekFile(context.Background(), env, path, env.World.Cfg.FirstWeek)
	if err != nil {
		t.Fatalf("bit flip must degrade, not fail: %v", err)
	}
	if got := counterValue(t, reg, "capture_blocks_corrupt_total"); got != 1 {
		t.Fatalf("corrupt blocks counted = %d, want 1", got)
	}
	if got := counterValue(t, reg, "capture_datagrams_quarantined_total"); got == 0 {
		t.Fatal("no quarantined datagrams counted")
	}
	if counts.Total >= clean.Total {
		t.Fatalf("quarantine lost nothing: %d of %d samples survived", counts.Total, clean.Total)
	}
	if res.EstLoss <= 0 {
		t.Fatal("quarantined datagrams must surface as estimated loss")
	}
}

// TestTruncatedCaptureDegrades cuts a v2 capture mid-file — the shape a
// crash or full disk leaves behind — and requires the analysis to keep
// everything before the cut and mark the file truncated.
func TestTruncatedCaptureDegrades(t *testing.T) {
	env, reg, dir := instrumented(t, 2)
	wk := env.World.Cfg.FirstWeek
	path := filepath.Join(dir, WeekFile(wk))

	_, clean, err := AnalyzeWeekFile(context.Background(), env, path, wk)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()*6/10); err != nil {
		t.Fatal(err)
	}
	_, counts, err := AnalyzeWeekFile(context.Background(), env, path, wk)
	if err != nil {
		t.Fatalf("truncated capture must degrade, not fail: %v", err)
	}
	if counts.Total == 0 || counts.Total >= clean.Total {
		t.Fatalf("truncated analysis saw %d of %d samples", counts.Total, clean.Total)
	}
	if got := counterValue(t, reg, "capture_truncated_files_total"); got != 1 {
		t.Fatalf("truncated files counted = %d, want 1", got)
	}
}

// TestTruncatedV1CaptureDegrades: the same crash tolerance holds on the
// legacy container, via the typed ErrTruncated from the v1 reader.
func TestTruncatedV1CaptureDegrades(t *testing.T) {
	cfg := netmodel.Tiny()
	cfg.Weeks = 2
	opts := traffic.Options{SamplesPerWeek: 3000, SamplingRate: 16384, SnapLen: 128}
	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	env.Instrument(reg)
	path := filepath.Join(t.TempDir(), "week.sflow")
	writeV1Week(t, env, cfg.FirstWeek, path)

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()*6/10); err != nil {
		t.Fatal(err)
	}
	_, counts, err := AnalyzeWeekFile(context.Background(), env, path, cfg.FirstWeek)
	if err != nil {
		t.Fatalf("truncated v1 capture must degrade, not fail: %v", err)
	}
	if counts.Total == 0 {
		t.Fatal("nothing decoded before the cut")
	}
	if got := counterValue(t, reg, "capture_truncated_files_total"); got != 1 {
		t.Fatalf("truncated files counted = %d, want 1", got)
	}
}

// TestCampaignResume checks the crash-recovery write path: weeks whose
// files verify against the manifest digests are skipped, damaged ones
// are rewritten, and option changes invalidate the whole directory.
func TestCampaignResume(t *testing.T) {
	env := smallEnv(t)
	dir := t.TempDir()
	counts1, err := WriteCampaign(context.Background(), env, dir)
	if err != nil {
		t.Fatal(err)
	}
	man1, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Backdate every file so "rewritten" is observable as a fresh mtime.
	past := time.Now().Add(-time.Hour)
	for _, name := range man1.Files {
		if err := os.Chtimes(filepath.Join(dir, name), past, past); err != nil {
			t.Fatal(err)
		}
	}
	mtime := func(name string) time.Time {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return fi.ModTime()
	}

	// A resume over an intact campaign rewrites nothing.
	env2, err := man1.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	counts2, err := WriteCampaignOpts(context.Background(), env2, dir, WriteOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(counts1, counts2) {
		t.Fatalf("resume changed counts: %v vs %v", counts1, counts2)
	}
	for _, name := range man1.Files {
		if !mtime(name).Equal(past) {
			t.Fatalf("resume rewrote intact week %s", name)
		}
	}

	// Damage one week; only that week is rewritten.
	damaged := man1.Files[1]
	if _, err := faultline.FlipFileBit(filepath.Join(dir, damaged), 12345); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(filepath.Join(dir, damaged), past, past); err != nil {
		t.Fatal(err)
	}
	counts3, err := WriteCampaignOpts(context.Background(), env2, dir, WriteOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(counts1, counts3) {
		t.Fatalf("resume after damage changed counts: %v vs %v", counts1, counts3)
	}
	for i, name := range man1.Files {
		rewritten := !mtime(name).Equal(past)
		if (name == damaged) != rewritten {
			t.Fatalf("file %d (%s): rewritten=%v", i, name, rewritten)
		}
	}
	man3, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fileDigest(vfs.Default, filepath.Join(dir, damaged))
	if err != nil {
		t.Fatal(err)
	}
	if got != man3.Digests[1] {
		t.Fatal("rewritten week does not match its fresh digest")
	}

	// Changed options (compression here) must invalidate every week.
	for _, name := range man1.Files {
		if err := os.Chtimes(filepath.Join(dir, name), past, past); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := WriteCampaignOpts(context.Background(), env2, dir, WriteOptions{Resume: true, Compress: true}); err != nil {
		t.Fatal(err)
	}
	for _, name := range man1.Files {
		if mtime(name).Equal(past) {
			t.Fatalf("option change did not rewrite %s", name)
		}
	}
}
