// Package blindspot implements the Section 3.3 analyses of what the IXP
// vantage point cannot see and how IXP-external measurements bound it:
// the Alexa-list recovery rates of URIs harvested at the IXP, the
// resolver-based active discovery of additional server IPs, the
// four-way classification of servers invisible at the IXP, and the
// per-organization case study (Akamai's 28K-visible vs ~100K ground
// truth).
package blindspot

import (
	"sort"

	"ixplens/internal/alexa"
	"ixplens/internal/core/webserver"
	"ixplens/internal/dnssim"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/randutil"
)

// ObservedDomains extracts the registrable domains recovered from the
// Host headers seen at the IXP.
func ObservedDomains(res *webserver.Result) map[string]bool {
	out := make(map[string]bool)
	for _, srv := range res.Servers {
		for _, h := range srv.Hosts {
			out[dnssim.RegistrableDomain(h)] = true
		}
	}
	return out
}

// RecoveryRates computes the top-N recovery fractions (the paper: 20%
// of the top-1M, 63% of the top-10K, 80% of the top-1K).
func RecoveryRates(list *alexa.List, observed map[string]bool, tops []int) map[int]float64 {
	out := make(map[int]float64, len(tops))
	for _, n := range tops {
		out[n] = list.Recovery(observed, n)
	}
	return out
}

// Discovery is the outcome of the resolver-based active measurement.
type Discovery struct {
	// QueriedDomains is how many uncovered domains were queried.
	QueriedDomains int
	// Discovered is the set of server IPs the queries returned.
	Discovered map[packet.IPv4Addr]bool
	// AlreadyAtIXP is the overlap with the IXP-identified server set.
	AlreadyAtIXP int
}

// Discover runs active DNS queries for the domains not recovered at the
// IXP: each domain is resolved through resolversPerDomain randomly
// chosen open resolvers (the paper uses 100 per URI from its 25K pool).
func Discover(dns *dnssim.DB, domains []string, resolversPerDomain int, ixpServers map[packet.IPv4Addr]bool, seed int64) Discovery {
	resolvers := dns.Resolvers()
	d := Discovery{Discovered: make(map[packet.IPv4Addr]bool)}
	if len(resolvers) == 0 {
		return d
	}
	for di, domain := range domains {
		d.QueriedDomains++
		for k := 0; k < resolversPerDomain; k++ {
			h := randutil.Hash64(uint64(seed), uint64(di), uint64(k))
			r := resolvers[int(h%uint64(len(resolvers)))]
			ip, ok := dns.ResolveVaried(domain, r.AS, h)
			if !ok {
				continue
			}
			d.Discovered[ip] = true
		}
	}
	for ip := range d.Discovered {
		if ixpServers[ip] {
			d.AlreadyAtIXP++
		}
	}
	return d
}

// UnseenCategory is the Section 3.3 four-way classification of servers
// discovered by active measurements but invisible at the IXP.
type UnseenCategory uint8

// Categories, in the paper's order.
const (
	// CatPrivateCluster are CDN servers serving only their hosting AS.
	CatPrivateCluster UnseenCategory = iota
	// CatFarRegion are servers of region-aware platforms far from the IXP.
	CatFarRegion
	// CatInvalidURIHandler are catch-all servers for invalid URIs.
	CatInvalidURIHandler
	// CatSmallRemote are servers of small, geographically distant orgs.
	CatSmallRemote
	// CatOther is anything else (e.g. sampling misses).
	CatOther
)

// String names the category.
func (c UnseenCategory) String() string {
	switch c {
	case CatPrivateCluster:
		return "private-cluster"
	case CatFarRegion:
		return "far-region"
	case CatInvalidURIHandler:
		return "invalid-uri-handler"
	case CatSmallRemote:
		return "small-remote-org"
	default:
		return "other"
	}
}

// ClassifyUnseen explains, against ground truth, why each discovered
// server is invisible at the IXP. (The paper reaches its classification
// by manual investigation; the reproduction can consult the generator.)
func ClassifyUnseen(w *netmodel.World, discovered map[packet.IPv4Addr]bool, ixpServers map[packet.IPv4Addr]bool) map[UnseenCategory]int {
	out := make(map[UnseenCategory]int)
	for ip := range discovered {
		if ixpServers[ip] {
			continue
		}
		idx, ok := w.ServerByIP(ip)
		if !ok {
			out[CatOther]++
			continue
		}
		s := &w.Servers[idx]
		switch {
		case s.Deploy == netmodel.DeployPrivateCluster:
			out[CatPrivateCluster]++
		case s.Is(netmodel.SrvInvalidURIHandler):
			out[CatInvalidURIHandler]++
		case s.Deploy == netmodel.DeployFarRegion && w.Orgs[s.Org].Kind != netmodel.OrgSmall:
			out[CatFarRegion]++
		case s.Deploy == netmodel.DeployFarRegion,
			w.Orgs[s.Org].Kind == netmodel.OrgSmall,
			w.Orgs[s.Org].ServerCount < 10:
			// Small organizations whose servers carry too little
			// traffic to surface in the IXP's samples.
			out[CatSmallRemote]++
		default:
			out[CatOther]++
		}
	}
	return out
}

// CaseStudy is the per-organization visibility case study (Akamai in
// the paper: 28K server IPs in 278 ASes at the IXP, ~100K in 700 ASes
// via active measurements, 100K+ in 1000+ ASes ground truth).
type CaseStudy struct {
	VisibleServers int
	VisibleASes    int
	ActiveServers  int
	ActiveASes     int
	TruthServers   int
	TruthASes      int
}

// StudyOrg compares the IXP's view of one organization with active
// discovery and ground truth. clusterIPs is the org's cluster from the
// Section 5 methodology; orgIdx the ground-truth organization.
func StudyOrg(w *netmodel.World, dns *dnssim.DB, clusterIPs []packet.IPv4Addr, orgIdx int32, resolversPerDomain int) CaseStudy {
	var cs CaseStudy
	visASes := make(map[int32]bool)
	for _, ip := range clusterIPs {
		cs.VisibleServers++
		if idx, ok := w.ServerByIP(ip); ok {
			visASes[w.Servers[idx].AS] = true
		}
	}
	cs.VisibleASes = len(visASes)

	// Active discovery: query all of the org's site domains through
	// many resolvers.
	var domains []string
	for _, si := range dns.SitesOfOrg(orgIdx) {
		domains = append(domains, dns.Site(si).Domain)
	}
	sort.Strings(domains)
	found := Discover(dns, domains, resolversPerDomain, nil, w.Cfg.Seed)
	activeASes := make(map[int32]bool)
	for ip := range found.Discovered {
		if idx, ok := w.ServerByIP(ip); ok && w.Servers[idx].Org == orgIdx {
			cs.ActiveServers++
			activeASes[w.Servers[idx].AS] = true
		}
	}
	cs.ActiveASes = len(activeASes)

	truthASes := make(map[int32]bool)
	for _, s := range w.OrgServers(orgIdx) {
		cs.TruthServers++
		truthASes[s.AS] = true
	}
	cs.TruthASes = len(truthASes)
	return cs
}
