package blindspot_test

import (
	"context"
	"testing"

	. "ixplens/internal/core/blindspot"
	"ixplens/internal/ispview"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/traffic"
)

var (
	cachedEnv *pipeline.Env
	cachedWk  *pipeline.Week
)

func analyzed(t testing.TB) (*pipeline.Env, *pipeline.Week) {
	t.Helper()
	if cachedEnv != nil {
		return cachedEnv, cachedWk
	}
	env, err := pipeline.NewEnv(netmodel.Tiny(), traffic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	wk, _, err := env.AnalyzeWeek(context.Background(), 45, nil)
	if err != nil {
		t.Fatal(err)
	}
	cachedEnv, cachedWk = env, wk
	return env, wk
}

func ixpServerSet(wk *pipeline.Week) map[packet.IPv4Addr]bool {
	out := make(map[packet.IPv4Addr]bool, len(wk.Servers.Servers))
	for ip := range wk.Servers.Servers {
		out[ip] = true
	}
	return out
}

func TestAlexaRecoveryGradient(t *testing.T) {
	env, wk := analyzed(t)
	list := env.AlexaList(45)
	observed := ObservedDomains(wk.Servers)
	if len(observed) == 0 {
		t.Fatal("no domains observed")
	}
	nSites := len(list.Domains)
	rates := RecoveryRates(list, observed, []int{nSites / 100, nSites / 10, nSites})
	// The paper's gradient: popular sites recover far better (80% of
	// the top-1K vs 20% of the top-1M).
	top1 := rates[nSites/100]
	top10 := rates[nSites/10]
	all := rates[nSites]
	if !(top1 >= top10 && top10 >= all) {
		t.Fatalf("recovery not monotone in popularity: %.2f %.2f %.2f", top1, top10, all)
	}
	if top1 < 0.5 {
		t.Fatalf("top-percentile recovery %.2f too low", top1)
	}
	if all > 0.8 {
		t.Fatalf("full-list recovery %.2f suspiciously high", all)
	}
}

func TestDiscoverFindsMoreServers(t *testing.T) {
	env, wk := analyzed(t)
	list := env.AlexaList(45)
	observed := ObservedDomains(wk.Servers)
	ixpSet := ixpServerSet(wk)

	// Query the domains NOT recovered at the IXP (capped for test time).
	var uncovered []string
	for _, d := range list.Domains {
		if !observed[d] {
			uncovered = append(uncovered, d)
		}
		if len(uncovered) >= 400 {
			break
		}
	}
	if len(uncovered) == 0 {
		t.Skip("everything recovered in tiny world")
	}
	disc := Discover(env.DNS, uncovered, 20, ixpSet, 1)
	if len(disc.Discovered) == 0 {
		t.Fatal("active measurement discovered nothing")
	}
	// Most discovered servers overlap the IXP view (the paper: 360K of
	// 600K), but some must be new.
	if disc.AlreadyAtIXP == 0 {
		t.Fatal("no overlap with IXP servers")
	}
	if disc.AlreadyAtIXP == len(disc.Discovered) {
		t.Fatal("active measurement found nothing beyond the IXP")
	}
}

func TestClassifyUnseenCategories(t *testing.T) {
	env, wk := analyzed(t)
	ixpSet := ixpServerSet(wk)
	// Discover over ALL site domains for maximal coverage.
	var domains []string
	for _, s := range env.DNS.Sites() {
		domains = append(domains, s.Domain)
	}
	disc := Discover(env.DNS, domains, 25, ixpSet, 2)
	cats := ClassifyUnseen(env.World, disc.Discovered, ixpSet)
	if cats[CatPrivateCluster] == 0 {
		t.Fatalf("no private clusters discovered: %v", cats)
	}
	total := 0
	for _, n := range cats {
		total += n
	}
	if total == 0 {
		t.Fatal("no unseen servers at all")
	}
	// Private clusters and far-region servers must both surface (the
	// paper: the first two categories are >40% of its unseen set; at
	// tiny scale the small-org tail and pure sampling misses weigh far
	// more, so only presence is asserted here — the report harness
	// records the measured shares).
	if cats[CatFarRegion] == 0 {
		t.Fatalf("no far-region servers discovered: %v", cats)
	}
	if frac := float64(cats[CatPrivateCluster]+cats[CatFarRegion]) / float64(total); frac < 0.02 {
		t.Fatalf("private+far only %.2f of unseen: %v", frac, cats)
	}
	if cats[CatSmallRemote] == 0 {
		t.Fatalf("no small-org servers in unseen set: %v", cats)
	}
	if cats[CatInvalidURIHandler] == 0 {
		t.Fatalf("no invalid-URI handlers discovered: %v", cats)
	}
}

func TestCategoryString(t *testing.T) {
	names := map[UnseenCategory]string{
		CatPrivateCluster:    "private-cluster",
		CatFarRegion:         "far-region",
		CatInvalidURIHandler: "invalid-uri-handler",
		CatSmallRemote:       "small-remote-org",
		CatOther:             "other",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d = %q, want %q", c, c.String(), want)
		}
	}
}

func TestAcmeCaseStudy(t *testing.T) {
	env, wk := analyzed(t)
	w := env.World
	acme := w.Special.AcmeCDN
	c := wk.Clusters.Clusters[w.Orgs[acme].Domain]
	if c == nil {
		t.Fatal("no acme cluster")
	}
	cs := StudyOrg(w, env.DNS, c.IPs, acme, 60)
	// The paper's ordering: IXP-visible < actively-discovered <= truth,
	// with the IXP seeing roughly a quarter of the real fleet.
	if cs.VisibleServers == 0 || cs.TruthServers == 0 {
		t.Fatalf("degenerate case study: %+v", cs)
	}
	if cs.VisibleServers >= cs.TruthServers {
		t.Fatalf("IXP sees %d of %d acme servers — no blind spot", cs.VisibleServers, cs.TruthServers)
	}
	if float64(cs.VisibleServers) > 0.55*float64(cs.TruthServers) {
		t.Fatalf("IXP visibility %.2f of truth too high", float64(cs.VisibleServers)/float64(cs.TruthServers))
	}
	if cs.ActiveServers <= cs.VisibleServers/2 {
		t.Fatalf("active discovery (%d) did not add to IXP view (%d)", cs.ActiveServers, cs.VisibleServers)
	}
	if cs.VisibleASes >= cs.TruthASes {
		t.Fatalf("AS footprints: visible %d vs truth %d", cs.VisibleASes, cs.TruthASes)
	}
	if cs.ActiveASes <= cs.VisibleASes {
		t.Fatalf("active discovery AS footprint %d not beyond visible %d", cs.ActiveASes, cs.VisibleASes)
	}
}

func TestISPComparison(t *testing.T) {
	env, wk := analyzed(t)
	ispAS, err := ispview.PickISP(env.World)
	if err != nil {
		t.Fatal(err)
	}
	if env.World.ASes[ispAS].MemberWeek != 0 {
		t.Fatal("ISP must not be an IXP member")
	}
	log := ispview.Observe(env.World, env.DNS, ispAS, 45, 30000)
	if len(log.ServerIPs) < 50 {
		t.Fatalf("ISP saw only %d servers", len(log.ServerIPs))
	}
	cmp := ispview.CompareWithIXP(log, ixpServerSet(wk))
	if cmp.ISPServers != cmp.SeenAtIXP+cmp.NotAtIXP {
		t.Fatal("comparison does not partition")
	}
	// Paper: only a small share of ISP-seen servers (45K) is missing at
	// the IXP; the bulk overlaps.
	if cmp.SeenAtIXP == 0 {
		t.Fatal("no overlap between ISP and IXP views")
	}
	notShare := float64(cmp.NotAtIXP) / float64(cmp.ISPServers)
	if notShare > 0.6 {
		t.Fatalf("ISP-only share %.2f too high", notShare)
	}
	if cmp.NotAtIXP == 0 {
		t.Fatal("ISP view adds nothing — private clusters missing")
	}
}
