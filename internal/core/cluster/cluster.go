// Package cluster implements the three-step organization clustering of
// Section 5.1: server IPs are grouped so that the servers of one cluster
// are under the administrative control of one organization.
//
//  1. Servers whose evidence is unanimous, or whose hostname SOA is
//     corroborated by at least one URI/certificate authority ("the SOA
//     of the hostname and the authority of the URI lead to the same
//     entry"), are clustered under that entry — the
//     Amazon/Akamai/Google case, 78.7% in the paper.
//  2. Servers with mixed evidence across multiple sources (hostname
//     plus URIs/certificates) are assigned by a majority vote among the
//     SOA entries, weighted by (i) the number of IPs and (ii) the size
//     of the network footprint — the outsourced-SOA, hoster and
//     virtual-server case, 17.4%.
//  3. Servers with only partial, internally ambiguous information (a
//     single evidence source, typically URI-only CDN servers deployed
//     deep inside ISPs) are assigned with the same heuristic on the
//     available subset — 3.9%.
//
// A pre-step mirrors the paper's cleaning pragmatics: authorities that
// hold zones for very many unrelated registrable domains while naming
// almost no servers themselves (third-party DNS providers, meta-hosters)
// are detected as "shared"; evidence under a shared authority falls back
// to the registrable domain so provider customers do not collapse into
// one giant pseudo-organization.
package cluster

import (
	"sort"

	"ixplens/internal/core/metadata"
	"ixplens/internal/entity"
	"ixplens/internal/packet"
)

// Step identifies which rule clustered a server.
type Step uint8

// Steps.
const (
	Step1 Step = iota + 1
	Step2
	Step3
	Unclustered
)

// String names the step.
func (s Step) String() string {
	switch s {
	case Step1:
		return "step1"
	case Step2:
		return "step2"
	case Step3:
		return "step3"
	default:
		return "unclustered"
	}
}

// Options tune the clusterer.
type Options struct {
	// SharedDomainSpread is the number of distinct registrable domains
	// above which an authority becomes a shared-authority candidate.
	SharedDomainSpread int
	// SharedSpreadRatio is how many times the domain spread must exceed
	// the authority's own named-server count to be considered shared.
	SharedSpreadRatio float64
	// KnownShared lists authorities known a priori to be shared
	// infrastructure (third-party DNS providers, RIR zones); the paper
	// cleans such entries using public knowledge.
	KnownShared []string
	// ASNOf optionally resolves server IPs to origin ASNs; when set,
	// majority votes use network footprints as a late tie-breaker, as
	// the paper describes.
	ASNOf func(packet.IPv4Addr) (uint32, bool)
	// Entities, when set, supersedes ASNOf with the shared interning
	// layer: AS resolution becomes a memoized table read instead of a
	// trie walk per IP, and authority names intern through
	// Entities.Names so the vote bookkeeping is keyed by dense IDs.
	Entities *entity.Table
}

// DefaultOptions returns the thresholds used throughout the study.
func DefaultOptions() Options {
	return Options{SharedDomainSpread: 30, SharedSpreadRatio: 8}
}

// Cluster is one inferred organization.
type Cluster struct {
	// Authority is the common root identifying the organization.
	Authority string
	// IPs are the member server IPs.
	IPs []packet.IPv4Addr
	// Bytes is the summed server traffic.
	Bytes uint64
	// ASNs is the cluster's network footprint (empty without ASNOf).
	ASNs map[uint32]int
}

// Assignment records how one server was clustered.
type Assignment struct {
	Authority string
	Step      Step
}

// Result is the clustering outcome.
type Result struct {
	ByServer map[packet.IPv4Addr]Assignment
	Clusters map[string]*Cluster
	// StepIPs counts servers per step (index by Step).
	StepIPs map[Step]int
	// SharedAuthorities lists detected shared (provider) authorities.
	SharedAuthorities map[string]bool
}

// ClusteredShare returns the fraction of evidence-bearing servers that
// step s captured.
func (r *Result) ClusteredShare(s Step) float64 {
	total := r.StepIPs[Step1] + r.StepIPs[Step2] + r.StepIPs[Step3]
	if total == 0 {
		return 0
	}
	return float64(r.StepIPs[s]) / float64(total)
}

// asnResolver composes the AS lookup the vote and footprint bookkeeping
// use: the entity table's memoized attributes when available, the plain
// ASNOf callback otherwise, nil when neither is set.
func (opts *Options) asnResolver() func(packet.IPv4Addr) (uint32, bool) {
	if opts.Entities != nil {
		tab := opts.Entities
		return func(ip packet.IPv4Addr) (uint32, bool) {
			_, a := tab.ResolveAttrs(ip)
			return a.ASN, a.ASN != 0
		}
	}
	return opts.ASNOf
}

// Run executes the clustering over cleaned meta-data. Authority names
// are interned to dense IDs for the duration of the run (through
// Options.Entities.Names when set), so the per-server evidence counts,
// the unanimous-cluster sizes and the vote all operate on uint32 keys
// and slice indices; the Result is keyed by the authority strings as
// before.
func Run(metas []metadata.ServerMeta, opts Options) *Result {
	names := entity.NewStrings()
	if opts.Entities != nil {
		names = opts.Entities.Names
	}
	asnOf := opts.asnResolver()

	res := &Result{
		ByServer:          make(map[packet.IPv4Addr]Assignment, len(metas)),
		Clusters:          make(map[string]*Cluster),
		StepIPs:           make(map[Step]int),
		SharedAuthorities: detectShared(metas, opts, names),
	}
	sharedIDs := make(map[uint32]bool, len(res.SharedAuthorities))
	for a := range res.SharedAuthorities {
		sharedIDs[names.Intern(a)] = true
	}

	// Evidence per server, with shared-authority substitution applied.
	// Authorities are dense name IDs throughout.
	type serverEvidence struct {
		meta    *metadata.ServerMeta
		counts  map[uint32]int // authority ID -> occurrences for this server
		sources int            // distinct evidence sources contributing
		ordered []uint32       // authority IDs, lexicographic by value
		// hostAuth is the hostname-derived authority (hasHost guards it).
		hostAuth uint32
		hasHost  bool
		// hostConfirmed is set when a URI or certificate authority
		// agrees with hostAuth.
		hostConfirmed bool
	}
	evs := make([]serverEvidence, 0, len(metas))
	// step1Size counts, per candidate authority ID, the IPs whose
	// evidence is unanimous — the basis of the majority vote. Slice
	// indexed by name ID, grown on demand.
	var step1Size []int
	var step1Footprint []map[uint32]bool
	sizeOf := func(a uint32) int {
		if int(a) < len(step1Size) {
			return step1Size[a]
		}
		return 0
	}
	footprintOf := func(a uint32) int {
		if int(a) < len(step1Footprint) {
			return len(step1Footprint[a])
		}
		return 0
	}

	addCount := func(m map[uint32]int, ev metadata.Evidence) uint32 {
		a := names.Intern(ev.Authority)
		if sharedIDs[a] {
			a = names.Intern(ev.Domain)
		}
		m[a]++
		return a
	}

	for i := range metas {
		m := &metas[i]
		if !m.HasAny() {
			res.ByServer[m.IP] = Assignment{Step: Unclustered}
			res.StepIPs[Unclustered]++
			continue
		}
		se := serverEvidence{meta: m, counts: make(map[uint32]int, 4)}
		if m.HasDNS() {
			se.sources++
			se.hostAuth = addCount(se.counts, m.HostnameEv)
			se.hasHost = true
		}
		if m.HasURI() {
			se.sources++
		}
		if m.HasCert() {
			se.sources++
		}
		for _, ev := range m.URIEv {
			a := addCount(se.counts, ev)
			if se.hasHost && a == se.hostAuth {
				se.hostConfirmed = true
			}
		}
		for _, ev := range m.CertEv {
			a := addCount(se.counts, ev)
			if se.hasHost && a == se.hostAuth {
				se.hostConfirmed = true
			}
		}
		for a := range se.counts {
			se.ordered = append(se.ordered, a)
		}
		sort.Slice(se.ordered, func(i, j int) bool {
			return names.Value(se.ordered[i]) < names.Value(se.ordered[j])
		})
		evs = append(evs, se)
		if len(se.counts) == 1 || se.hostConfirmed {
			a := se.ordered[0]
			if se.hostConfirmed {
				a = se.hostAuth
			}
			for int(a) >= len(step1Size) {
				step1Size = append(step1Size, 0)
			}
			step1Size[a]++
			if asnOf != nil {
				if asn, ok := asnOf(m.IP); ok {
					for int(a) >= len(step1Footprint) {
						step1Footprint = append(step1Footprint, nil)
					}
					if step1Footprint[a] == nil {
						step1Footprint[a] = make(map[uint32]bool)
					}
					step1Footprint[a][asn] = true
				}
			}
		}
	}

	assign := func(m *metadata.ServerMeta, authID uint32, step Step) {
		authority := names.Value(authID)
		res.ByServer[m.IP] = Assignment{Authority: authority, Step: step}
		res.StepIPs[step]++
		c := res.Clusters[authority]
		if c == nil {
			c = &Cluster{Authority: authority}
			res.Clusters[authority] = c
		}
		c.IPs = append(c.IPs, m.IP)
		c.Bytes += m.Bytes
		if asnOf != nil {
			if asn, ok := asnOf(m.IP); ok {
				if c.ASNs == nil {
					c.ASNs = make(map[uint32]int)
				}
				c.ASNs[asn]++
			}
		}
	}

	for i := range evs {
		se := &evs[i]
		switch {
		case len(se.counts) == 1:
			// All evidence leads to one and the same entry.
			assign(se.meta, se.ordered[0], Step1)
		case se.hostConfirmed:
			// The hostname SOA and a URI/certificate authority lead to
			// the same entry: IP and content provably under the same
			// administrative control, stray foreign URIs (a CDN serving
			// customer domains) notwithstanding.
			assign(se.meta, se.hostAuth, Step1)
		case se.sources >= 2:
			// Full but conflicting information: majority vote.
			assign(se.meta, vote(se.ordered, se.counts, sizeOf, footprintOf), Step2)
		default:
			// Partial (single-source) ambiguous information.
			assign(se.meta, vote(se.ordered, se.counts, sizeOf, footprintOf), Step3)
		}
	}
	return res
}

// vote picks the winning authority: per-server occurrence count first,
// then global unanimous-cluster size, then network footprint, then
// lexicographic order for determinism (ordered is sorted by authority
// string, and ties keep the earlier entry).
func vote(ordered []uint32, counts map[uint32]int, sizeOf, footprintOf func(uint32) int) uint32 {
	best := ordered[0]
	for _, a := range ordered[1:] {
		switch {
		case counts[a] != counts[best]:
			if counts[a] > counts[best] {
				best = a
			}
		case sizeOf(a) != sizeOf(best):
			if sizeOf(a) > sizeOf(best) {
				best = a
			}
		case footprintOf(a) != footprintOf(best):
			if footprintOf(a) > footprintOf(best) {
				best = a
			}
		}
	}
	return best
}

// detectShared finds authorities whose zone spread marks them as
// third-party DNS operators or meta-hosters: many unrelated registrable
// domains lead to them, while almost no server hostname does. The scan
// interns authority and domain names so the spread bookkeeping is
// ID-keyed; the returned set is string-keyed for the public Result.
func detectShared(metas []metadata.ServerMeta, opts Options, names *entity.Strings) map[string]bool {
	domains := make(map[uint32]map[uint32]bool)
	hostnameIPs := make(map[uint32]int)
	record := func(ev metadata.Evidence) uint32 {
		auth := names.Intern(ev.Authority)
		ds := domains[auth]
		if ds == nil {
			ds = make(map[uint32]bool)
			domains[auth] = ds
		}
		ds[names.Intern(ev.Domain)] = true
		return auth
	}
	for i := range metas {
		m := &metas[i]
		if m.HasDNS() {
			hostnameIPs[record(m.HostnameEv)]++
		}
		for _, ev := range m.URIEv {
			record(ev)
		}
		for _, ev := range m.CertEv {
			record(ev)
		}
	}
	shared := make(map[string]bool, len(opts.KnownShared))
	for _, k := range opts.KnownShared {
		shared[k] = true
	}
	for auth, ds := range domains {
		spread := len(ds)
		if spread < opts.SharedDomainSpread {
			continue
		}
		if float64(spread) >= opts.SharedSpreadRatio*float64(hostnameIPs[auth]+1) {
			shared[names.Value(auth)] = true
		}
	}
	return shared
}

// SizeDistribution returns, for thresholds ts (ascending), how many
// clusters have at least that many IPs — Fig. 6(b)'s marginal counts
// (the paper: 143 organizations above 1000 IPs, 6K+ above 10).
func (r *Result) SizeDistribution(ts []int) map[int]int {
	out := make(map[int]int, len(ts))
	for _, c := range r.Clusters {
		for _, t := range ts {
			if len(c.IPs) >= t {
				out[t]++
			}
		}
	}
	return out
}

// Validation quantifies clustering quality against ground truth.
type Validation struct {
	// EvaluatedIPs is the number of clustered server IPs with known
	// ground truth.
	EvaluatedIPs int
	// FalsePositives counts IPs whose cluster majority-organization
	// differs from their own.
	FalsePositives int
	// FalsePositiveRate is FalsePositives / EvaluatedIPs.
	FalsePositiveRate float64
	// RateBySize buckets the FP rate by cluster size (lower bound of
	// each bucket -> rate); the paper observes the rate falling with
	// footprint size.
	RateBySize map[int]float64
}

// Validate computes cluster purity: each cluster is labelled with its
// majority ground-truth organization, and member IPs of other orgs count
// as false positives.
func Validate(r *Result, orgOf func(packet.IPv4Addr) (int32, bool)) Validation {
	var v Validation
	sizeBuckets := []int{1, 10, 100, 1000}
	fpBySize := map[int]int{}
	nBySize := map[int]int{}
	for _, c := range r.Clusters {
		counts := map[int32]int{}
		known := 0
		for _, ip := range c.IPs {
			if org, ok := orgOf(ip); ok {
				counts[org]++
				known++
			}
		}
		if known == 0 {
			continue
		}
		majority := 0
		for _, n := range counts {
			if n > majority {
				majority = n
			}
		}
		fp := known - majority
		v.EvaluatedIPs += known
		v.FalsePositives += fp
		b := bucketOf(len(c.IPs), sizeBuckets)
		fpBySize[b] += fp
		nBySize[b] += known
	}
	if v.EvaluatedIPs > 0 {
		v.FalsePositiveRate = float64(v.FalsePositives) / float64(v.EvaluatedIPs)
	}
	v.RateBySize = make(map[int]float64, len(sizeBuckets))
	for _, b := range sizeBuckets {
		if nBySize[b] > 0 {
			v.RateBySize[b] = float64(fpBySize[b]) / float64(nBySize[b])
		}
	}
	return v
}

func bucketOf(n int, buckets []int) int {
	b := buckets[0]
	for _, t := range buckets {
		if n >= t {
			b = t
		}
	}
	return b
}
