package cluster_test

import (
	"context"
	. "ixplens/internal/core/cluster"
	"math/rand"
	"testing"
	"testing/quick"

	"ixplens/internal/core/metadata"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/traffic"
)

func analyzedWeek(t testing.TB) (*pipeline.Env, *pipeline.Week) {
	t.Helper()
	env, err := pipeline.NewEnv(netmodel.Tiny(), traffic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	wk, _, err := env.AnalyzeWeek(context.Background(), 45, nil)
	if err != nil {
		t.Fatal(err)
	}
	return env, wk
}

func TestEveryServerAssignedOnce(t *testing.T) {
	_, wk := analyzedWeek(t)
	r := wk.Clusters
	if len(r.ByServer) != len(wk.Metas) {
		t.Fatalf("assignments %d != metas %d", len(r.ByServer), len(wk.Metas))
	}
	// Cluster membership must partition the clustered servers.
	seen := map[packet.IPv4Addr]bool{}
	total := 0
	for auth, c := range r.Clusters {
		for _, ip := range c.IPs {
			if seen[ip] {
				t.Fatalf("IP %v in multiple clusters", ip)
			}
			seen[ip] = true
			total++
			if got := r.ByServer[ip].Authority; got != auth {
				t.Fatalf("assignment %q disagrees with cluster %q", got, auth)
			}
		}
	}
	clustered := r.StepIPs[Step1] + r.StepIPs[Step2] + r.StepIPs[Step3]
	if total != clustered {
		t.Fatalf("cluster members %d != step counts %d", total, clustered)
	}
}

func TestStepDistribution(t *testing.T) {
	_, wk := analyzedWeek(t)
	r := wk.Clusters
	s1 := r.ClusteredShare(Step1)
	s2 := r.ClusteredShare(Step2)
	s3 := r.ClusteredShare(Step3)
	// Paper: 78.7% / 17.4% / 3.9%. Allow generous bands at tiny scale,
	// but the ordering and rough magnitudes must hold.
	if s1 < 0.55 {
		t.Fatalf("step1 share %.3f too low", s1)
	}
	if s2 <= 0 || s2 > 0.40 {
		t.Fatalf("step2 share %.3f out of band", s2)
	}
	if s3 <= 0 || s3 > 0.25 {
		t.Fatalf("step3 share %.3f out of band", s3)
	}
	if s1 < s2 || s2 < s3 {
		t.Fatalf("step ordering violated: %.3f %.3f %.3f", s1, s2, s3)
	}
}

func TestFalsePositiveRate(t *testing.T) {
	env, wk := analyzedWeek(t)
	v := Validate(wk.Clusters, func(ip packet.IPv4Addr) (int32, bool) {
		idx, ok := env.World.ServerByIP(ip)
		if !ok {
			return 0, false
		}
		return env.World.Servers[idx].Org, true
	})
	if v.EvaluatedIPs == 0 {
		t.Fatal("nothing evaluated")
	}
	// Paper: false-positive rate below 3%; we allow a margin for the
	// small world.
	if v.FalsePositiveRate > 0.06 {
		t.Fatalf("false positive rate %.4f exceeds budget (fp=%d of %d)",
			v.FalsePositiveRate, v.FalsePositives, v.EvaluatedIPs)
	}
}

func TestSpecialOrgsRecovered(t *testing.T) {
	env, wk := analyzedWeek(t)
	w := env.World
	for _, tc := range []struct {
		name string
		org  int32
	}{
		{"acme-cdn", w.Special.AcmeCDN},
		{"globalsearch", w.Special.GlobalSearch},
		{"cloudshield", w.Special.CloudShield},
	} {
		domain := w.Orgs[tc.org].Domain
		c := wk.Clusters.Clusters[domain]
		if c == nil {
			t.Fatalf("%s: no cluster under %q", tc.name, domain)
		}
		// The cluster must be dominated by the true org.
		correct := 0
		for _, ip := range c.IPs {
			if idx, ok := w.ServerByIP(ip); ok && w.Servers[idx].Org == tc.org {
				correct++
			}
		}
		// Allow isolated misattributions (a PTR-less CDN server whose
		// only observed URI is another org's site — the exact
		// attribution hazard Section 5.3 discusses).
		if float64(correct) < 0.7*float64(len(c.IPs)) {
			t.Fatalf("%s cluster polluted: %d of %d correct", tc.name, correct, len(c.IPs))
		}
	}
}

func TestCDNSpansManyASes(t *testing.T) {
	env, wk := analyzedWeek(t)
	w := env.World
	acme := wk.Clusters.Clusters[w.Orgs[w.Special.AcmeCDN].Domain]
	if acme == nil {
		t.Fatal("no acme cluster")
	}
	if len(acme.ASNs) < 3 {
		t.Fatalf("acme cluster footprint only %d ASes", len(acme.ASNs))
	}
}

func TestSharedAuthorityDetection(t *testing.T) {
	env, wk := analyzedWeek(t)
	w := env.World
	// The third-party DNS providers must be detected as shared so their
	// customers do not collapse into one cluster.
	foundShared := false
	for _, dp := range w.Special.DNSProviders {
		if wk.Clusters.SharedAuthorities[w.Orgs[dp].Domain] {
			foundShared = true
		}
	}
	if !foundShared {
		t.Fatalf("no DNS provider detected as shared authority: %v", wk.Clusters.SharedAuthorities)
	}
	// Sanity: the big CDN's own authority must NOT be shared.
	if wk.Clusters.SharedAuthorities[w.Orgs[w.Special.AcmeCDN].Domain] {
		t.Fatal("acme-cdn flagged as shared authority")
	}
}

func TestSizeDistribution(t *testing.T) {
	_, wk := analyzedWeek(t)
	dist := wk.Clusters.SizeDistribution([]int{1, 10, 100})
	if dist[1] < dist[10] || dist[10] < dist[100] {
		t.Fatalf("size distribution not monotone: %v", dist)
	}
	if dist[1] == 0 {
		t.Fatal("no clusters at all")
	}
}

func TestStepString(t *testing.T) {
	if Step1.String() != "step1" || Unclustered.String() != "unclustered" {
		t.Fatal("step names wrong")
	}
}

func mkMeta(ip uint32, hostAuth string, uriAuths ...string) metadata.ServerMeta {
	m := metadata.ServerMeta{IP: packet.IPv4Addr(ip), Bytes: 100}
	if hostAuth != "" {
		m.Hostname = "h." + hostAuth
		m.HostnameEv = metadata.Evidence{Domain: hostAuth, Authority: hostAuth}
	}
	for i, a := range uriAuths {
		m.URIEv = append(m.URIEv, metadata.Evidence{
			Domain:    a,
			Authority: a,
		})
		_ = i
	}
	return m
}

func TestRunSyntheticSteps(t *testing.T) {
	metas := []metadata.ServerMeta{
		// Unanimous: step 1.
		mkMeta(1, "alpha.net", "alpha.net"),
		mkMeta(2, "alpha.net"),
		// Mixed with DNS: step 2; alpha.net should win the vote via
		// per-server count.
		{IP: 3, Hostname: "h.beta.net",
			HostnameEv: metadata.Evidence{Domain: "beta.net", Authority: "beta.net"},
			URIEv: []metadata.Evidence{
				{Domain: "alpha.net", Authority: "alpha.net"},
				{Domain: "alpha2.net", Authority: "alpha.net"},
			}},
		// Unanimous URI-only evidence: still step 1.
		{IP: 4, URIEv: []metadata.Evidence{{Domain: "alpha.net", Authority: "alpha.net"}}},
		// Mixed URI-only evidence (the deep-ISP CDN case): step 3.
		{IP: 6, URIEv: []metadata.Evidence{
			{Domain: "alpha.net", Authority: "alpha.net"},
			{Domain: "alpha2.net", Authority: "alpha.net"},
			{Domain: "gamma.net", Authority: "gamma.net"},
		}},
		// Nothing: unclustered.
		{IP: 5},
	}
	r := Run(metas, DefaultOptions())
	if r.StepIPs[Step1] != 3 || r.StepIPs[Step2] != 1 || r.StepIPs[Step3] != 1 || r.StepIPs[Unclustered] != 1 {
		t.Fatalf("step counts wrong: %v", r.StepIPs)
	}
	if got := r.ByServer[3].Authority; got != "alpha.net" {
		t.Fatalf("vote chose %q, want alpha.net", got)
	}
	if got := r.ByServer[6]; got.Step != Step3 || got.Authority != "alpha.net" {
		t.Fatalf("URI-only mixed server = %+v", got)
	}
	if len(r.Clusters["alpha.net"].IPs) != 5 {
		t.Fatalf("alpha cluster has %d IPs", len(r.Clusters["alpha.net"].IPs))
	}
}

func TestVoteTieBreaks(t *testing.T) {
	// Per-server counts tie; global step-1 size must decide.
	metas := []metadata.ServerMeta{
		mkMeta(1, "big.net"),
		mkMeta(2, "big.net"),
		mkMeta(3, "small.net"),
		{IP: 4, Hostname: "h.small.net",
			HostnameEv: metadata.Evidence{Domain: "small.net", Authority: "small.net"},
			URIEv:      []metadata.Evidence{{Domain: "big.net", Authority: "big.net"}}},
	}
	r := Run(metas, DefaultOptions())
	if got := r.ByServer[4].Authority; got != "big.net" {
		t.Fatalf("tie broke to %q, want big.net", got)
	}
}

func TestSharedAuthoritySubstitution(t *testing.T) {
	// Many domains lead to "prov.net" but no hostname does: shared.
	var metas []metadata.ServerMeta
	for i := 0; i < 30; i++ {
		metas = append(metas, metadata.ServerMeta{
			IP: packet.IPv4Addr(100 + i),
			URIEv: []metadata.Evidence{{
				Domain:    dom(i),
				Authority: "prov.net",
			}},
		})
	}
	opts := DefaultOptions()
	r := Run(metas, opts)
	if !r.SharedAuthorities["prov.net"] {
		t.Fatal("provider not detected as shared")
	}
	if c := r.Clusters["prov.net"]; c != nil && len(c.IPs) > 0 {
		t.Fatal("servers collapsed into the provider cluster")
	}
	// Each customer domain forms its own cluster.
	if len(r.Clusters) < 25 {
		t.Fatalf("only %d clusters after substitution", len(r.Clusters))
	}
}

func dom(i int) string {
	return string(rune('a'+i%26)) + "x" + string(rune('a'+i/26)) + ".com"
}

func BenchmarkRun(b *testing.B) {
	env, err := pipeline.NewEnv(netmodel.Tiny(), traffic.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	wk, _, err := env.AnalyzeWeek(context.Background(), 45, nil)
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions()
	opts.ASNOf = env.World.RIB().LookupASN
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(wk.Metas, opts)
	}
}

// TestQuickClusterInvariants: for arbitrary random evidence sets, the
// clusterer (a) assigns every evidence-bearing server exactly once, (b)
// never invents authorities, and (c) is deterministic.
func TestQuickClusterInvariants(t *testing.T) {
	domains := []string{"a.net", "b.net", "c.com", "d.org", "e.de", "f.io"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		metas := make([]metadata.ServerMeta, 0, n)
		valid := map[string]bool{}
		for _, d := range domains {
			valid[d] = true
		}
		for i := 0; i < n; i++ {
			m := metadata.ServerMeta{IP: packet.IPv4Addr(1000 + i)}
			if rng.Intn(3) > 0 {
				d := domains[rng.Intn(len(domains))]
				m.Hostname = "h." + d
				m.HostnameEv = metadata.Evidence{Domain: d, Authority: domains[rng.Intn(len(domains))]}
			}
			for k := rng.Intn(4); k > 0; k-- {
				d := domains[rng.Intn(len(domains))]
				m.URIEv = append(m.URIEv, metadata.Evidence{Domain: d, Authority: domains[rng.Intn(len(domains))]})
			}
			metas = append(metas, m)
		}
		r1 := Run(metas, DefaultOptions())
		r2 := Run(metas, DefaultOptions())

		assigned := 0
		for _, c := range r1.Clusters {
			assigned += len(c.IPs)
			if !valid[c.Authority] {
				return false // invented authority
			}
		}
		withEvidence := 0
		for i := range metas {
			if metas[i].HasAny() {
				withEvidence++
			}
			a1 := r1.ByServer[metas[i].IP]
			a2 := r2.ByServer[metas[i].IP]
			if a1 != a2 {
				return false // nondeterministic
			}
		}
		return assigned == withEvidence &&
			r1.StepIPs[Step1]+r1.StepIPs[Step2]+r1.StepIPs[Step3] == withEvidence
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
