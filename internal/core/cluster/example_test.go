package cluster_test

import (
	"fmt"

	"ixplens/internal/core/cluster"
	"ixplens/internal/core/metadata"
	"ixplens/internal/packet"
)

// Example demonstrates the three clustering steps on hand-built
// meta-data: unanimous evidence (step 1), hostname corroborated by a URI
// despite a stray foreign domain (step 1), conflicting multi-source
// evidence (step 2), and URI-only ambiguity (step 3).
func Example() {
	ev := func(domain string) metadata.Evidence {
		return metadata.Evidence{Domain: domain, Authority: domain}
	}
	metas := []metadata.ServerMeta{
		// Everything points at acme.net.
		{IP: 1, Hostname: "edge-1.acme.net", HostnameEv: ev("acme.net"),
			URIEv: []metadata.Evidence{ev("acme.net")}},
		// Hostname acme.net, URIs acme.net + a customer domain: the
		// corroborated hostname wins (a CDN serving customer content).
		{IP: 2, Hostname: "edge-2.acme.net", HostnameEv: ev("acme.net"),
			URIEv: []metadata.Evidence{ev("acme.net"), ev("customer.org")}},
		// Hostname under the hoster, URIs under the customer: vote.
		{IP: 3, Hostname: "static-1.hoster.de", HostnameEv: ev("hoster.de"),
			URIEv: []metadata.Evidence{ev("shop.example"), ev("shop.example")}},
		// No reverse DNS, conflicting URIs only: partial information.
		{IP: 4, URIEv: []metadata.Evidence{ev("acme.net"), ev("other.net")}},
	}
	res := cluster.Run(metas, cluster.DefaultOptions())
	for ip := packet.IPv4Addr(1); ip <= 4; ip++ {
		a := res.ByServer[ip]
		fmt.Printf("server %d: %s via %s\n", ip, a.Authority, a.Step)
	}
	// Output:
	// server 1: acme.net via step1
	// server 2: acme.net via step1
	// server 3: shop.example via step2
	// server 4: acme.net via step3
}
