package visibility_test

import (
	"context"
	"testing"

	"ixplens/internal/core/dissect"
	. "ixplens/internal/core/visibility"
	"ixplens/internal/core/webserver"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/routing"
	"ixplens/internal/traffic"
)

type weekView struct {
	env *pipeline.Env
	wk  *pipeline.Week
	agg *Aggregator
}

func buildView(t testing.TB) *weekView {
	t.Helper()
	env, err := pipeline.NewEnv(netmodel.Tiny(), traffic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	src, _, err := env.CaptureWeek(context.Background(), 45)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(env.World.RIB(), env.World.GeoDB())
	ident := webserver.NewIdentifier()
	cls := dissect.NewClassifier(env.Fabric)
	_, err = dissect.Process(src, cls, func(rec *dissect.Record) {
		agg.Observe(rec)
		ident.Observe(rec)
	})
	if err != nil {
		t.Fatal(err)
	}
	res := ident.Identify(45, env.Crawler)
	return &weekView{env: env, wk: &pipeline.Week{Servers: res}, agg: agg}
}

func (v *weekView) serverFilter() func(packet.IPv4Addr) bool {
	return func(ip packet.IPv4Addr) bool {
		_, ok := v.wk.Servers.Servers[ip]
		return ok
	}
}

func TestTable1Shapes(t *testing.T) {
	v := buildView(t)
	all := v.agg.Summarize(nil)
	srv := v.agg.Summarize(v.serverFilter())

	if all.IPs == 0 || srv.IPs == 0 {
		t.Fatal("empty summaries")
	}
	if srv.IPs >= all.IPs {
		t.Fatal("server IPs must be a subset of all IPs")
	}
	// Paper Table 1 shapes: the IXP sees essentially all routed ASes in
	// the peering traffic, roughly half in the server traffic.
	routedASes := len(v.env.World.ASes)
	if float64(all.ASes) < 0.85*float64(routedASes) {
		t.Fatalf("peering sees %d of %d ASes", all.ASes, routedASes)
	}
	if float64(srv.ASes) < 0.2*float64(routedASes) || srv.ASes >= all.ASes {
		t.Fatalf("server traffic sees %d of %d ASes", srv.ASes, routedASes)
	}
	if srv.Prefixes >= all.Prefixes {
		t.Fatal("server prefixes must be fewer than peering prefixes")
	}
	if srv.Countries > all.Countries {
		t.Fatal("server countries cannot exceed peering countries")
	}
	// Server traffic is >70% of peering traffic in the paper; the
	// summary counts both endpoints so compare loosely.
	if srv.Bytes*10 < all.Bytes*3 {
		t.Fatalf("server traffic %.2f%% of peering too low",
			100*float64(srv.Bytes)/float64(all.Bytes))
	}
}

func TestTable2TopContributors(t *testing.T) {
	v := buildView(t)
	byIPs, byBytes := v.agg.TopCountries(10, nil)
	if len(byIPs) != 10 || len(byBytes) != 10 {
		t.Fatalf("top-10 lengths: %d, %d", len(byIPs), len(byBytes))
	}
	for i := 1; i < len(byIPs); i++ {
		if byIPs[i].Count > byIPs[i-1].Count {
			t.Fatal("byIPs not sorted")
		}
	}
	// The traffic ranking must be euro-centric: DE first (the IXP's
	// home country dominates traffic in Table 2).
	if byBytes[0].Key != "DE" {
		t.Fatalf("top traffic country = %s, want DE", byBytes[0].Key)
	}
	// The big eyeball countries must appear in the IP ranking.
	seen := map[string]bool{}
	for _, s := range byIPs {
		seen[s.Key] = true
	}
	if !seen["US"] || !seen["DE"] {
		t.Fatalf("US/DE missing from top IP countries: %+v", byIPs)
	}

	srvIPs, srvBytes := v.agg.TopCountries(10, v.serverFilter())
	if len(srvIPs) == 0 || len(srvBytes) == 0 {
		t.Fatal("server country rankings empty")
	}
	if srvIPs[0].Key != "DE" && srvIPs[1].Key != "DE" {
		t.Fatalf("DE not among top-2 server countries: %+v", srvIPs[:3])
	}
}

func TestTable2TopNetworks(t *testing.T) {
	v := buildView(t)
	w := v.env.World
	_, byBytes := v.agg.TopASNs(10, v.serverFilter())
	if len(byBytes) != 10 {
		t.Fatalf("top networks length %d", len(byBytes))
	}
	// The Akamai-analog's home AS must rank at the very top of server
	// traffic (Table 2: Akamai first).
	acmeASN := w.ASes[w.Orgs[w.Special.AcmeCDN].HomeAS].ASN
	found := false
	for _, s := range byBytes[:3] {
		if s.ASN == acmeASN {
			found = true
		}
	}
	if !found {
		t.Fatalf("acme AS%d not in top-3 server traffic networks: %+v", acmeASN, byBytes[:3])
	}
}

func TestTable3LocalGlobal(t *testing.T) {
	v := buildView(t)
	w := v.env.World
	var members []uint32
	for i := range w.ASes {
		if w.ASes[i].IsMemberInWeek(45) {
			members = append(members, w.ASes[i].ASN)
		}
	}
	classes := w.ASGraph().Classify(members)
	bd := v.agg.LocalGlobal(classes, nil)

	checkSum := func(name string, v [3]float64) {
		sum := v[0] + v[1] + v[2]
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s shares sum to %v", name, sum)
		}
	}
	checkSum("IPs", bd.IPs)
	checkSum("prefixes", bd.Prefixes)
	checkSum("ASes", bd.ASes)
	checkSum("traffic", bd.Traffic)

	// Structural expectations from Table 3: members are a tiny share of
	// ASes but a dominant share of traffic; traffic concentrates toward
	// A(L) more than IPs do.
	if bd.ASes[routing.ClassLocal] > 0.3 {
		t.Fatalf("A(L) AS share %.3f too high", bd.ASes[routing.ClassLocal])
	}
	if bd.Traffic[routing.ClassLocal] < bd.IPs[routing.ClassLocal] {
		t.Fatalf("traffic must concentrate toward A(L): traffic %.3f < IPs %.3f",
			bd.Traffic[routing.ClassLocal], bd.IPs[routing.ClassLocal])
	}
	if bd.Traffic[routing.ClassGlobal] > bd.IPs[routing.ClassGlobal] {
		t.Fatal("A(G) must lose share when weighting by traffic")
	}

	// Server traffic concentrates even more locally (Table 3 bottom).
	srv := v.agg.LocalGlobal(classes, v.serverFilter())
	if srv.Traffic[routing.ClassLocal] < bd.Traffic[routing.ClassLocal] {
		t.Fatalf("server traffic A(L) %.3f below peering %.3f",
			srv.Traffic[routing.ClassLocal], bd.Traffic[routing.ClassLocal])
	}
}

func TestFig2RankCurve(t *testing.T) {
	v := buildView(t)
	curve := RankCurve(v.wk.Servers)
	if len(curve) != len(v.wk.Servers.Servers) {
		t.Fatal("curve length mismatch")
	}
	sum := 0.0
	for i, s := range curve {
		if s < 0 {
			t.Fatal("negative share")
		}
		if i > 0 && curve[i] > curve[i-1] {
			t.Fatal("curve not descending")
		}
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("curve sums to %v", sum)
	}
	// Fig 2: extreme concentration at the head (top 34 IPs > 6%).
	if TopShare(curve, 34) < 0.05 {
		t.Fatalf("top-34 share %.4f lacks the frontend concentration", TopShare(curve, 34))
	}
	if TopShare(curve, len(curve)+10) < 0.999 {
		t.Fatal("TopShare over everything must be ~1")
	}
}

func TestFig3CountryShares(t *testing.T) {
	v := buildView(t)
	shares := v.agg.CountryShares(nil)
	if len(shares) < 20 {
		t.Fatalf("only %d countries observed", len(shares))
	}
	total := 0
	for i, s := range shares {
		if i > 0 && s.Count > shares[i-1].Count {
			t.Fatal("country shares not sorted")
		}
		total += s.Count
	}
	if total == 0 {
		t.Fatal("no IPs geolocated")
	}
}

func TestSummarizeEmptyFilter(t *testing.T) {
	v := buildView(t)
	none := v.agg.Summarize(func(packet.IPv4Addr) bool { return false })
	if none.IPs != 0 || none.ASes != 0 || none.Bytes != 0 {
		t.Fatalf("empty filter produced %+v", none)
	}
}

func TestNumObservedIPs(t *testing.T) {
	v := buildView(t)
	if v.agg.NumObservedIPs() == 0 {
		t.Fatal("no IPs observed")
	}
	all := v.agg.Summarize(nil)
	if all.IPs != v.agg.NumObservedIPs() {
		t.Fatal("summary disagrees with observed count")
	}
}

// TestSelfAddressedRecordCreditsOnce pins the SrcIP==DstIP accounting:
// a record whose two endpoints are the same address must credit that IP
// with the record's bytes once, not twice.
func TestSelfAddressedRecordCreditsOnce(t *testing.T) {
	agg := NewAggregator(nil, nil)
	ip := packet.MakeIPv4(10, 1, 2, 3)
	agg.Observe(&dissect.Record{Class: dissect.ClassPeeringTCP, SrcIP: ip, DstIP: ip, Bytes: 1000})
	if got := agg.NumObservedIPs(); got != 1 {
		t.Fatalf("observed %d IPs, want 1", got)
	}
	s := agg.Summarize(nil)
	if s.Bytes != 1000 {
		t.Fatalf("self-addressed record credited %d bytes, want 1000", s.Bytes)
	}
	// A normal two-endpoint record still credits both sides.
	other := packet.MakeIPv4(10, 9, 9, 9)
	agg.Observe(&dissect.Record{Class: dissect.ClassPeeringTCP, SrcIP: ip, DstIP: other, Bytes: 500})
	s = agg.Summarize(nil)
	if s.Bytes != 1000+2*500 {
		t.Fatalf("mixed records credited %d bytes, want %d", s.Bytes, 1000+2*500)
	}
}

// TestGeoErrorRobustness injects geolocation-database errors (the paper
// cites geo DBs' unreliability) and checks the headline country rankings
// survive them.
func TestGeoErrorRobustness(t *testing.T) {
	cfg := netmodel.Tiny()
	cfg.GeoErrorRate = 0.08
	env, err := pipeline.NewEnv(cfg, traffic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	src, _, err := env.CaptureWeek(context.Background(), 45)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(env.World.RIB(), env.World.GeoDB())
	cls := dissect.NewClassifier(env.Fabric)
	if _, err := dissect.Process(src, cls, agg.Observe); err != nil {
		t.Fatal(err)
	}
	_, byBytes := agg.TopCountries(3, nil)
	if byBytes[0].Key != "DE" {
		t.Fatalf("8%% geo errors flipped the traffic ranking: %v", byBytes)
	}
	// The erroneous entries surface as extra long-tail countries.
	clean := buildView(t)
	cleanAll := clean.agg.Summarize(nil)
	dirtyAll := agg.Summarize(nil)
	if dirtyAll.Countries <= cleanAll.Countries {
		t.Fatalf("geo errors should add spurious countries: %d vs %d",
			dirtyAll.Countries, cleanAll.Countries)
	}
}
