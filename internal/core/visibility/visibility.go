// Package visibility computes the Section 3 analyses: the IXP's view of
// the Internet as a whole (Table 1), the top contributors by country and
// network (Table 2), the local-vs-global breakdown over the distance
// classes A(L)/A(M)/A(G) (Table 3), the per-server-IP traffic
// concentration curve (Fig. 2) and the per-country IP shares (Fig. 3).
package visibility

import (
	"sort"

	"ixplens/internal/core/dissect"
	"ixplens/internal/core/webserver"
	"ixplens/internal/entity"
	"ixplens/internal/geo"
	"ixplens/internal/packet"
	"ixplens/internal/routing"
)

// Aggregator accumulates per-IP activity over one week of peering
// traffic and derives the visibility views. IPs intern to dense entity
// IDs on first sight, so the per-IP byte accumulator is a slice indexed
// by ID and every RIB/geo resolution is a memoized table read.
type Aggregator struct {
	table *entity.Table
	// bytes is indexed by entity ID; seen marks the IDs this aggregator
	// observed (the table may be shared across weeks and hold more IPs
	// than this week saw). order lists the observed IDs for iteration.
	bytes []uint64
	seen  []bool
	order []entity.ID
}

// NewAggregator builds an aggregator against a RIB and geo database,
// with a private interning table.
func NewAggregator(rib *routing.Table, gdb *geo.DB) *Aggregator {
	return NewAggregatorWith(entity.NewTable(rib, gdb))
}

// NewAggregatorWith builds an aggregator sharing an existing entity
// table, so IPs already interned by other pipeline stages resolve for
// free.
func NewAggregatorWith(table *entity.Table) *Aggregator {
	return &Aggregator{table: table}
}

// Observe feeds one dissected record; only peering traffic counts. Each
// endpoint is credited with the record's bytes; a self-addressed record
// (SrcIP == DstIP) credits that IP once, not twice.
func (a *Aggregator) Observe(rec *dissect.Record) {
	if !rec.Class.IsPeering() {
		return
	}
	a.credit(rec.SrcIP, rec.Bytes)
	if rec.DstIP != rec.SrcIP {
		a.credit(rec.DstIP, rec.Bytes)
	}
}

// Add credits ip with bytes directly — the hook that replays a
// persisted per-IP product (analysis.VisibilityProduct) into a fresh
// aggregator. Every derived view is iteration-order-independent, so an
// aggregator rebuilt from IP-sorted entries answers identically to the
// one that observed the live record stream.
func (a *Aggregator) Add(ip packet.IPv4Addr, bytes uint64) { a.credit(ip, bytes) }

// Merge folds another aggregator built over the SAME entity table into
// this one — the deterministic shard merge of the fused analysis pass.
// Shard-local entity IDs are comparable because the table is shared.
func (a *Aggregator) Merge(o *Aggregator) {
	if o == nil {
		return
	}
	for _, id := range o.order {
		a.creditID(id, o.bytes[id])
	}
}

// IPTraffic is one observed endpoint with its accumulated bytes.
type IPTraffic struct {
	IP    packet.IPv4Addr
	Bytes uint64
}

// PerIP extracts the raw accumulation, sorted by IP — the persistable,
// partition-independent form of everything this aggregator knows.
func (a *Aggregator) PerIP() []IPTraffic {
	out := make([]IPTraffic, 0, len(a.order))
	for _, id := range a.order {
		out = append(out, IPTraffic{IP: a.table.IP(id), Bytes: a.bytes[id]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
	return out
}

func (a *Aggregator) credit(ip packet.IPv4Addr, bytes uint64) {
	a.creditID(a.table.Resolve(ip), bytes)
}

func (a *Aggregator) creditID(id entity.ID, bytes uint64) {
	if int(id) >= len(a.bytes) {
		grown := make([]uint64, int(id)+1+len(a.bytes)/2)
		copy(grown, a.bytes)
		a.bytes = grown
		seen := make([]bool, len(grown))
		copy(seen, a.seen)
		a.seen = seen
	}
	if !a.seen[id] {
		a.seen[id] = true
		a.order = append(a.order, id)
	}
	a.bytes[id] += bytes
}

// Summary is one side of Table 1 (either all peering traffic or the
// server-related subset).
type Summary struct {
	IPs       int
	ASes      int
	Prefixes  int
	Countries int
	Bytes     uint64
}

// Summarize computes Table 1's row set over a subset of the observed
// IPs: pass nil to use all peering IPs, or a filter for the server set.
// Distinct-AS/prefix/country counting is bool slices over the table's
// dense index spaces, not hash sets.
func (a *Aggregator) Summarize(filter func(packet.IPv4Addr) bool) Summary {
	var s Summary
	attrs := a.table.AttrsView()
	ases := make([]bool, a.table.NumAS())
	prefixes := make([]bool, a.table.NumPrefixes())
	countries := make([]bool, a.table.Countries.Len())
	for _, id := range a.order {
		if filter != nil && !filter(a.table.IP(id)) {
			continue
		}
		s.IPs++
		s.Bytes += a.bytes[id]
		at := &attrs[id]
		if at.PrefixID != entity.NoPrefix {
			if !ases[at.ASIdx] {
				ases[at.ASIdx] = true
				s.ASes++
			}
			if !prefixes[at.PrefixID] {
				prefixes[at.PrefixID] = true
				s.Prefixes++
			}
			if at.CountryID != 0 && !countries[at.CountryID] {
				countries[at.CountryID] = true
				s.Countries++
			}
		}
	}
	return s
}

// Share pairs a key with its share of a total.
type Share struct {
	Key   string
	Count int
	Bytes uint64
}

// byCountry aggregates IP counts and traffic per country ID.
func (a *Aggregator) byCountry(filter func(packet.IPv4Addr) bool) map[uint32]*Share {
	out := make(map[uint32]*Share)
	attrs := a.table.AttrsView()
	for _, id := range a.order {
		if filter != nil && !filter(a.table.IP(id)) {
			continue
		}
		at := &attrs[id]
		if at.PrefixID == entity.NoPrefix || at.CountryID == 0 {
			continue
		}
		sh := out[at.CountryID]
		if sh == nil {
			sh = &Share{Key: a.table.Countries.Value(at.CountryID)}
			out[at.CountryID] = sh
		}
		sh.Count++
		sh.Bytes += a.bytes[id]
	}
	return out
}

// byASN aggregates IP counts and traffic per origin AS.
func (a *Aggregator) byASN(filter func(packet.IPv4Addr) bool) map[uint32]*Share {
	out := make(map[uint32]*Share)
	attrs := a.table.AttrsView()
	for _, id := range a.order {
		if filter != nil && !filter(a.table.IP(id)) {
			continue
		}
		at := &attrs[id]
		if at.PrefixID == entity.NoPrefix {
			continue
		}
		sh := out[at.ASN]
		if sh == nil {
			sh = &Share{}
			out[at.ASN] = sh
		}
		sh.Count++
		sh.Bytes += a.bytes[id]
	}
	return out
}

// TopCountries returns Table 2's country columns: the top n countries by
// IP count and by traffic.
func (a *Aggregator) TopCountries(n int, filter func(packet.IPv4Addr) bool) (byIPs, byBytes []Share) {
	m := a.byCountry(filter)
	all := make([]Share, 0, len(m))
	for _, sh := range m {
		all = append(all, *sh)
	}
	byIPs = topBy(all, n, func(s *Share) uint64 { return uint64(s.Count) })
	byBytes = topBy(all, n, func(s *Share) uint64 { return s.Bytes })
	return
}

// TopASNs returns Table 2's network columns (keys are decimal ASNs
// rendered by the caller through its AS naming).
func (a *Aggregator) TopASNs(n int, filter func(packet.IPv4Addr) bool) (byIPs, byBytes []ASNShare) {
	m := a.byASN(filter)
	all := make([]ASNShare, 0, len(m))
	for asn, sh := range m {
		all = append(all, ASNShare{ASN: asn, Count: sh.Count, Bytes: sh.Bytes})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].ASN < all[j].ASN
	})
	byIPs = append(byIPs, all[:minInt(n, len(all))]...)
	sort.Slice(all, func(i, j int) bool {
		if all[i].Bytes != all[j].Bytes {
			return all[i].Bytes > all[j].Bytes
		}
		return all[i].ASN < all[j].ASN
	})
	byBytes = append(byBytes, all[:minInt(n, len(all))]...)
	return
}

// ASNShare is a per-AS contribution row.
type ASNShare struct {
	ASN   uint32
	Count int
	Bytes uint64
}

func topBy(all []Share, n int, key func(*Share) uint64) []Share {
	sorted := make([]Share, len(all))
	copy(sorted, all)
	sort.Slice(sorted, func(i, j int) bool {
		ki, kj := key(&sorted[i]), key(&sorted[j])
		if ki != kj {
			return ki > kj
		}
		return sorted[i].Key < sorted[j].Key
	})
	if n < len(sorted) {
		sorted = sorted[:n]
	}
	return sorted
}

// CountryShares returns Fig. 3's series: every country's percentage of
// the observed IPs, descending.
func (a *Aggregator) CountryShares(filter func(packet.IPv4Addr) bool) []Share {
	m := a.byCountry(filter)
	out := make([]Share, 0, len(m))
	for _, sh := range m {
		out = append(out, *sh)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// ClassBreakdown is one row group of Table 3.
type ClassBreakdown struct {
	IPs      [3]float64 // shares per A(L), A(M), A(G)
	Prefixes [3]float64
	ASes     [3]float64
	Traffic  [3]float64
}

// LocalGlobal computes Table 3 for a subset of the observed IPs given
// the AS distance classes.
func (a *Aggregator) LocalGlobal(classes map[uint32]routing.DistanceClass, filter func(packet.IPv4Addr) bool) ClassBreakdown {
	var out ClassBreakdown
	var ipTot, trafTot float64
	attrs := a.table.AttrsView()
	// Dense per-AS/per-prefix class memos: 0 = unseen, class+1 otherwise.
	asSeen := make([]uint8, a.table.NumAS())
	pfxSeen := make([]uint8, a.table.NumPrefixes())
	var nAS, nPfx float64
	for _, id := range a.order {
		if filter != nil && !filter(a.table.IP(id)) {
			continue
		}
		at := &attrs[id]
		if at.PrefixID == entity.NoPrefix {
			continue
		}
		cls, known := classes[at.ASN]
		if !known {
			cls = routing.ClassGlobal
		}
		out.IPs[cls]++
		ipTot++
		out.Traffic[cls] += float64(a.bytes[id])
		trafTot += float64(a.bytes[id])
		if asSeen[at.ASIdx] == 0 {
			asSeen[at.ASIdx] = uint8(cls) + 1
			out.ASes[cls]++
			nAS++
		}
		if pfxSeen[at.PrefixID] == 0 {
			pfxSeen[at.PrefixID] = uint8(cls) + 1
			out.Prefixes[cls]++
			nPfx++
		}
	}
	normalize(&out.IPs, ipTot)
	normalize(&out.Traffic, trafTot)
	normalize(&out.ASes, nAS)
	normalize(&out.Prefixes, nPfx)
	return out
}

func normalize(v *[3]float64, total float64) {
	if total == 0 {
		return
	}
	for i := range v {
		v[i] /= total
	}
}

// RankCurve returns Fig. 2's series for the identified servers: the
// traffic share of each server IP, sorted descending.
func RankCurve(res *webserver.Result) []float64 {
	shares := make([]float64, 0, len(res.Servers))
	var total float64
	for _, s := range res.Servers {
		shares = append(shares, float64(s.Bytes))
		total += float64(s.Bytes)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(shares)))
	if total > 0 {
		for i := range shares {
			shares[i] /= total
		}
	}
	return shares
}

// TopShare sums the first n entries of a rank curve (the paper: the top
// 34 server IPs carry more than 6% of the server traffic).
func TopShare(curve []float64, n int) float64 {
	if n > len(curve) {
		n = len(curve)
	}
	sum := 0.0
	for _, v := range curve[:n] {
		sum += v
	}
	return sum
}

// NumObservedIPs returns how many distinct endpoint IPs were seen.
func (a *Aggregator) NumObservedIPs() int { return len(a.order) }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
