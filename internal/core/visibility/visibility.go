// Package visibility computes the Section 3 analyses: the IXP's view of
// the Internet as a whole (Table 1), the top contributors by country and
// network (Table 2), the local-vs-global breakdown over the distance
// classes A(L)/A(M)/A(G) (Table 3), the per-server-IP traffic
// concentration curve (Fig. 2) and the per-country IP shares (Fig. 3).
package visibility

import (
	"sort"

	"ixplens/internal/core/dissect"
	"ixplens/internal/core/webserver"
	"ixplens/internal/geo"
	"ixplens/internal/packet"
	"ixplens/internal/routing"
)

// Aggregator accumulates per-IP activity over one week of peering
// traffic and derives the visibility views.
type Aggregator struct {
	rib *routing.Table
	geo *geo.DB
	ips map[packet.IPv4Addr]*ipAgg
}

type ipAgg struct {
	bytes uint64
}

// NewAggregator builds an aggregator against a RIB and geo database.
func NewAggregator(rib *routing.Table, gdb *geo.DB) *Aggregator {
	return &Aggregator{rib: rib, geo: gdb, ips: make(map[packet.IPv4Addr]*ipAgg, 1<<14)}
}

// Observe feeds one dissected record; only peering traffic counts.
func (a *Aggregator) Observe(rec *dissect.Record) {
	if !rec.Class.IsPeering() {
		return
	}
	for _, ip := range [2]packet.IPv4Addr{rec.SrcIP, rec.DstIP} {
		e := a.ips[ip]
		if e == nil {
			e = &ipAgg{}
			a.ips[ip] = e
		}
		e.bytes += rec.Bytes
	}
}

// Summary is one side of Table 1 (either all peering traffic or the
// server-related subset).
type Summary struct {
	IPs       int
	ASes      int
	Prefixes  int
	Countries int
	Bytes     uint64
}

// entityView resolves an IP to its prefix/AS/country using the public
// measurement substrates, exactly like the study does.
func (a *Aggregator) resolve(ip packet.IPv4Addr) (routing.Route, string, bool) {
	r, ok := a.rib.Lookup(ip)
	if !ok {
		return routing.Route{}, "", false
	}
	return r, a.geo.Lookup(ip), true
}

// Summarize computes Table 1's row set over a subset of the observed
// IPs: pass nil to use all peering IPs, or a filter for the server set.
func (a *Aggregator) Summarize(filter func(packet.IPv4Addr) bool) Summary {
	var s Summary
	ases := make(map[uint32]bool)
	prefixes := make(map[routing.Prefix]bool)
	countries := make(map[string]bool)
	for ip, agg := range a.ips {
		if filter != nil && !filter(ip) {
			continue
		}
		s.IPs++
		s.Bytes += agg.bytes
		if r, country, ok := a.resolve(ip); ok {
			ases[r.ASN] = true
			prefixes[r.Prefix] = true
			if country != "" {
				countries[country] = true
			}
		}
	}
	s.ASes = len(ases)
	s.Prefixes = len(prefixes)
	s.Countries = len(countries)
	return s
}

// Share pairs a key with its share of a total.
type Share struct {
	Key   string
	Count int
	Bytes uint64
}

// byCountry aggregates IP counts and traffic per country.
func (a *Aggregator) byCountry(filter func(packet.IPv4Addr) bool) map[string]*Share {
	out := make(map[string]*Share)
	for ip, agg := range a.ips {
		if filter != nil && !filter(ip) {
			continue
		}
		_, country, ok := a.resolve(ip)
		if !ok || country == "" {
			continue
		}
		sh := out[country]
		if sh == nil {
			sh = &Share{Key: country}
			out[country] = sh
		}
		sh.Count++
		sh.Bytes += agg.bytes
	}
	return out
}

// byASN aggregates IP counts and traffic per origin AS.
func (a *Aggregator) byASN(filter func(packet.IPv4Addr) bool) map[uint32]*Share {
	out := make(map[uint32]*Share)
	for ip, agg := range a.ips {
		if filter != nil && !filter(ip) {
			continue
		}
		r, _, ok := a.resolve(ip)
		if !ok {
			continue
		}
		sh := out[r.ASN]
		if sh == nil {
			sh = &Share{}
			out[r.ASN] = sh
		}
		sh.Count++
		sh.Bytes += agg.bytes
	}
	return out
}

// TopCountries returns Table 2's country columns: the top n countries by
// IP count and by traffic.
func (a *Aggregator) TopCountries(n int, filter func(packet.IPv4Addr) bool) (byIPs, byBytes []Share) {
	m := a.byCountry(filter)
	all := make([]Share, 0, len(m))
	for _, sh := range m {
		all = append(all, *sh)
	}
	byIPs = topBy(all, n, func(s *Share) uint64 { return uint64(s.Count) })
	byBytes = topBy(all, n, func(s *Share) uint64 { return s.Bytes })
	return
}

// TopASNs returns Table 2's network columns (keys are decimal ASNs
// rendered by the caller through its AS naming).
func (a *Aggregator) TopASNs(n int, filter func(packet.IPv4Addr) bool) (byIPs, byBytes []ASNShare) {
	m := a.byASN(filter)
	all := make([]ASNShare, 0, len(m))
	for asn, sh := range m {
		all = append(all, ASNShare{ASN: asn, Count: sh.Count, Bytes: sh.Bytes})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].ASN < all[j].ASN
	})
	byIPs = append(byIPs, all[:minInt(n, len(all))]...)
	sort.Slice(all, func(i, j int) bool {
		if all[i].Bytes != all[j].Bytes {
			return all[i].Bytes > all[j].Bytes
		}
		return all[i].ASN < all[j].ASN
	})
	byBytes = append(byBytes, all[:minInt(n, len(all))]...)
	return
}

// ASNShare is a per-AS contribution row.
type ASNShare struct {
	ASN   uint32
	Count int
	Bytes uint64
}

func topBy(all []Share, n int, key func(*Share) uint64) []Share {
	sorted := make([]Share, len(all))
	copy(sorted, all)
	sort.Slice(sorted, func(i, j int) bool {
		ki, kj := key(&sorted[i]), key(&sorted[j])
		if ki != kj {
			return ki > kj
		}
		return sorted[i].Key < sorted[j].Key
	})
	if n < len(sorted) {
		sorted = sorted[:n]
	}
	return sorted
}

// CountryShares returns Fig. 3's series: every country's percentage of
// the observed IPs, descending.
func (a *Aggregator) CountryShares(filter func(packet.IPv4Addr) bool) []Share {
	m := a.byCountry(filter)
	out := make([]Share, 0, len(m))
	for _, sh := range m {
		out = append(out, *sh)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// ClassBreakdown is one row group of Table 3.
type ClassBreakdown struct {
	IPs      [3]float64 // shares per A(L), A(M), A(G)
	Prefixes [3]float64
	ASes     [3]float64
	Traffic  [3]float64
}

// LocalGlobal computes Table 3 for a subset of the observed IPs given
// the AS distance classes.
func (a *Aggregator) LocalGlobal(classes map[uint32]routing.DistanceClass, filter func(packet.IPv4Addr) bool) ClassBreakdown {
	var out ClassBreakdown
	var ipTot, trafTot float64
	asSeen := make(map[uint32]routing.DistanceClass)
	pfxSeen := make(map[routing.Prefix]routing.DistanceClass)
	for ip, agg := range a.ips {
		if filter != nil && !filter(ip) {
			continue
		}
		r, _, ok := a.resolve(ip)
		if !ok {
			continue
		}
		cls, known := classes[r.ASN]
		if !known {
			cls = routing.ClassGlobal
		}
		out.IPs[cls]++
		ipTot++
		out.Traffic[cls] += float64(agg.bytes)
		trafTot += float64(agg.bytes)
		asSeen[r.ASN] = cls
		pfxSeen[r.Prefix] = cls
	}
	for _, cls := range asSeen {
		out.ASes[cls]++
	}
	for _, cls := range pfxSeen {
		out.Prefixes[cls]++
	}
	normalize(&out.IPs, ipTot)
	normalize(&out.Traffic, trafTot)
	normalize(&out.ASes, float64(len(asSeen)))
	normalize(&out.Prefixes, float64(len(pfxSeen)))
	return out
}

func normalize(v *[3]float64, total float64) {
	if total == 0 {
		return
	}
	for i := range v {
		v[i] /= total
	}
}

// RankCurve returns Fig. 2's series for the identified servers: the
// traffic share of each server IP, sorted descending.
func RankCurve(res *webserver.Result) []float64 {
	shares := make([]float64, 0, len(res.Servers))
	var total float64
	for _, s := range res.Servers {
		shares = append(shares, float64(s.Bytes))
		total += float64(s.Bytes)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(shares)))
	if total > 0 {
		for i := range shares {
			shares[i] /= total
		}
	}
	return shares
}

// TopShare sums the first n entries of a rank curve (the paper: the top
// 34 server IPs carry more than 6% of the server traffic).
func TopShare(curve []float64, n int) float64 {
	if n > len(curve) {
		n = len(curve)
	}
	sum := 0.0
	for _, v := range curve[:n] {
		sum += v
	}
	return sum
}

// NumObservedIPs returns how many distinct endpoint IPs were seen.
func (a *Aggregator) NumObservedIPs() int { return len(a.ips) }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
