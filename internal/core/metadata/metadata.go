// Package metadata assembles the per-server-IP meta-data of Section 2.4:
// DNS information (hostname and the SOA authority it leads to), URIs
// observed in the traffic (Host headers), and names from validated X.509
// certificates — followed by the cleaning step that strips non-valid
// URIs and infrastructure SOA entries before clustering.
package metadata

import (
	"strings"

	"ixplens/internal/core/webserver"
	"ixplens/internal/dnssim"
	"ixplens/internal/packet"
)

// Evidence is one (registrable domain, authority) pair derived from a
// hostname, URI or certificate name.
type Evidence struct {
	// Domain is the registrable domain the item named.
	Domain string
	// Authority is the SOA root the domain leads to; equal to Domain
	// when the SOA chain resolves to itself or is unknown.
	Authority string
}

// ServerMeta is the cleaned meta-data of one server IP.
type ServerMeta struct {
	IP    packet.IPv4Addr
	Bytes uint64
	// Hostname is the PTR name, if reverse DNS resolves.
	Hostname string
	// HostnameEv is the evidence derived from the hostname (zero value
	// when there is no hostname).
	HostnameEv Evidence
	// URIEv holds evidence from observed Host headers, deduplicated.
	URIEv []Evidence
	// CertEv holds evidence from certificate subject/SANs.
	CertEv []Evidence
}

// HasDNS reports whether DNS meta-data is available.
func (m *ServerMeta) HasDNS() bool { return m.Hostname != "" }

// HasURI reports whether at least one URI survived cleaning.
func (m *ServerMeta) HasURI() bool { return len(m.URIEv) > 0 }

// HasCert reports whether certificate meta-data is available.
func (m *ServerMeta) HasCert() bool { return len(m.CertEv) > 0 }

// HasAny reports whether any of the three kinds is available.
func (m *ServerMeta) HasAny() bool { return m.HasDNS() || m.HasURI() || m.HasCert() }

// Coverage reports the Section 2.4 coverage statistics.
type Coverage struct {
	Total    int
	WithDNS  int
	WithURI  int
	WithCert int
	WithAny  int
	// CleanedItems counts evidence items dropped by cleaning.
	CleanedItems int
	// CleanedOut counts servers whose entire evidence was removed.
	CleanedOut int
}

// Resolver is the subset of the DNS substrate the collector needs.
type Resolver interface {
	PTR(ip packet.IPv4Addr) (string, bool)
	SOA(domain string) (string, bool)
}

// infrastructureSOAs are authority roots that identify network plumbing
// rather than organizations (the paper removes RIR entries like
// ripe.net); matching evidence is cleaned.
var infrastructureSOAs = map[string]bool{
	"ripe.example": true, "arin.example": true, "iana.example": true,
	"in-addr.arpa": true,
}

// Collect derives cleaned meta-data for every identified server.
func Collect(res *webserver.Result, dns Resolver) ([]ServerMeta, Coverage) {
	metas := make([]ServerMeta, 0, len(res.Servers))
	var cov Coverage
	for ip, srv := range res.Servers {
		m := ServerMeta{IP: ip, Bytes: srv.Bytes}
		hadEvidence := false

		if name, ok := dns.PTR(ip); ok {
			hadEvidence = true
			if ev, ok := deriveEvidence(name, dns); ok {
				m.Hostname = name
				m.HostnameEv = ev
			} else {
				cov.CleanedItems++
			}
		}
		seen := map[string]bool{}
		for _, h := range srv.Hosts {
			hadEvidence = true
			if !plausibleHostHeader(h) {
				cov.CleanedItems++
				continue
			}
			ev, ok := deriveEvidence(h, dns)
			if !ok {
				cov.CleanedItems++
				continue
			}
			if seen[ev.Domain] {
				continue
			}
			seen[ev.Domain] = true
			m.URIEv = append(m.URIEv, ev)
		}
		if srv.HTTPS {
			for _, name := range srv.Cert.Names() {
				hadEvidence = true
				ev, ok := deriveEvidence(name, dns)
				if !ok {
					cov.CleanedItems++
					continue
				}
				if seen["cert:"+ev.Domain] {
					continue
				}
				seen["cert:"+ev.Domain] = true
				m.CertEv = append(m.CertEv, ev)
			}
		}

		cov.Total++
		if m.HasDNS() {
			cov.WithDNS++
		}
		if m.HasURI() {
			cov.WithURI++
		}
		if m.HasCert() {
			cov.WithCert++
		}
		if m.HasAny() {
			cov.WithAny++
		} else if hadEvidence {
			cov.CleanedOut++
		}
		metas = append(metas, m)
	}
	return metas, cov
}

// deriveEvidence maps a name to its (registrable domain, authority)
// pair, applying the infrastructure-SOA cleaning.
func deriveEvidence(name string, dns Resolver) (Evidence, bool) {
	reg := dnssim.RegistrableDomain(strings.TrimSuffix(strings.ToLower(name), "."))
	if reg == "" || !strings.Contains(reg, ".") {
		return Evidence{}, false
	}
	auth, ok := dns.SOA(reg)
	if !ok {
		// A domain that does not resolve at all is cleaned; the paper
		// removes non-valid URIs.
		return Evidence{}, false
	}
	if infrastructureSOAs[auth] {
		return Evidence{}, false
	}
	return Evidence{Domain: reg, Authority: auth}, true
}

// plausibleHostHeader rejects Host values that cannot be site names:
// IP literals, single labels, embedded whitespace.
func plausibleHostHeader(h string) bool {
	if h == "" || len(h) > 253 || strings.ContainsAny(h, " \t/\\") {
		return false
	}
	if !strings.Contains(h, ".") {
		return false
	}
	// Reject dotted-quad IP literals.
	if _, err := packet.ParseIPv4(strings.Split(h, ":")[0]); err == nil {
		return false
	}
	return true
}
