package metadata_test

import (
	"context"
	"testing"

	. "ixplens/internal/core/metadata"
	"ixplens/internal/core/webserver"
	"ixplens/internal/dnssim"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/traffic"
)

func analyzedWeek(t testing.TB) (*pipeline.Env, *pipeline.Week) {
	t.Helper()
	env, err := pipeline.NewEnv(netmodel.Tiny(), traffic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	wk, _, err := env.AnalyzeWeek(context.Background(), 45, nil)
	if err != nil {
		t.Fatal(err)
	}
	return env, wk
}

func TestCoverageShape(t *testing.T) {
	_, wk := analyzedWeek(t)
	cov := wk.Coverage
	if cov.Total != len(wk.Servers.Servers) {
		t.Fatalf("coverage total %d != servers %d", cov.Total, len(wk.Servers.Servers))
	}
	// Paper: DNS 71.7%, URI 23.8%, cert 17.7%, any 81.9%. URI coverage
	// scales with samples-per-server, so only loose bands here.
	dns := float64(cov.WithDNS) / float64(cov.Total)
	if dns < 0.50 || dns > 0.95 {
		t.Fatalf("DNS coverage %.2f out of band", dns)
	}
	if cov.WithCert == 0 || cov.WithURI == 0 {
		t.Fatal("URI/cert coverage empty")
	}
	if cov.WithAny < cov.WithDNS || cov.WithAny < cov.WithURI {
		t.Fatal("any-coverage must dominate individual coverages")
	}
	if cov.CleanedItems == 0 {
		t.Fatal("cleaning never fired despite junk Host headers in traffic")
	}
}

func TestEvidenceAuthoritiesResolve(t *testing.T) {
	env, wk := analyzedWeek(t)
	for _, m := range wk.Metas {
		if m.HasDNS() {
			if m.HostnameEv.Domain == "" || m.HostnameEv.Authority == "" {
				t.Fatalf("DNS evidence incomplete: %+v", m.HostnameEv)
			}
			if got := dnssim.RegistrableDomain(m.Hostname); got != m.HostnameEv.Domain {
				t.Fatalf("hostname evidence domain %q != registrable %q", m.HostnameEv.Domain, got)
			}
		}
		for _, ev := range m.URIEv {
			if root, ok := env.DNS.SOA(ev.Domain); !ok || root != ev.Authority {
				t.Fatalf("URI evidence authority mismatch for %q", ev.Domain)
			}
		}
	}
}

type fakeResolver struct {
	ptr map[packet.IPv4Addr]string
	soa map[string]string
}

func (f fakeResolver) PTR(ip packet.IPv4Addr) (string, bool) {
	h, ok := f.ptr[ip]
	return h, ok
}

func (f fakeResolver) SOA(d string) (string, bool) {
	s, ok := f.soa[d]
	return s, ok
}

func TestCollectCleaning(t *testing.T) {
	ip1 := packet.MakeIPv4(9, 0, 0, 1)
	ip2 := packet.MakeIPv4(9, 0, 0, 2)
	res := &webserver.Result{
		Servers: map[packet.IPv4Addr]*webserver.Server{
			ip1: {IP: ip1, HTTP: true, Hosts: []string{
				"www.good.org",       // fine
				"10.0.0.1",           // IP literal: cleaned
				"localhost",          // single label: cleaned
				"bad host header.de", // whitespace: cleaned
				"unknown.invalid",    // no SOA: cleaned
				"ptr.ripe.example",   // infrastructure SOA: cleaned
			}},
			ip2: {IP: ip2, HTTP: true, Hosts: []string{"10.9.9.9"}},
		},
	}
	dns := fakeResolver{
		ptr: map[packet.IPv4Addr]string{ip1: "srv1.good.org"},
		soa: map[string]string{
			"good.org":     "good.org",
			"ripe.example": "ripe.example",
		},
	}
	metas, cov := Collect(res, dns)
	if cov.Total != 2 {
		t.Fatalf("total = %d", cov.Total)
	}
	var m1, m2 *ServerMeta
	for i := range metas {
		switch metas[i].IP {
		case ip1:
			m1 = &metas[i]
		case ip2:
			m2 = &metas[i]
		}
	}
	if m1 == nil || m2 == nil {
		t.Fatal("metas missing")
	}
	if !m1.HasDNS() || m1.HostnameEv.Authority != "good.org" {
		t.Fatalf("m1 DNS evidence wrong: %+v", m1.HostnameEv)
	}
	if len(m1.URIEv) != 1 || m1.URIEv[0].Domain != "good.org" {
		t.Fatalf("m1 URI evidence wrong: %+v", m1.URIEv)
	}
	// 5 junk hosts cleaned on m1.
	if cov.CleanedItems < 5 {
		t.Fatalf("cleaned %d items, want >= 5", cov.CleanedItems)
	}
	if m2.HasAny() {
		t.Fatal("m2 should have no surviving evidence")
	}
	if cov.CleanedOut != 1 {
		t.Fatalf("cleaned-out = %d, want 1", cov.CleanedOut)
	}
}

func TestServerMetaPredicates(t *testing.T) {
	var m ServerMeta
	if m.HasAny() || m.HasDNS() || m.HasURI() || m.HasCert() {
		t.Fatal("zero meta must have nothing")
	}
	m.Hostname = "x.y.org"
	if !m.HasDNS() || !m.HasAny() {
		t.Fatal("DNS predicate wrong")
	}
	m = ServerMeta{CertEv: []Evidence{{Domain: "a.b", Authority: "a.b"}}}
	if !m.HasCert() || !m.HasAny() || m.HasDNS() {
		t.Fatal("cert predicate wrong")
	}
}

func TestHTTPSServersCarryCertEvidence(t *testing.T) {
	_, wk := analyzedWeek(t)
	found := false
	for _, m := range wk.Metas {
		srv := wk.Servers.Servers[m.IP]
		if srv.HTTPS {
			if !m.HasCert() {
				t.Fatalf("HTTPS server %v lacks cert evidence", m.IP)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no HTTPS servers in week")
	}
}
