package churn_test

import (
	"context"
	"testing"

	. "ixplens/internal/core/churn"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/routing"
	"ixplens/internal/traffic"
)

// trackedWeeks runs the full 17-week light pipeline once per test binary.
var cachedTracker *Tracker
var cachedEnv *pipeline.Env

func tracked(t testing.TB) (*pipeline.Env, *Tracker) {
	t.Helper()
	if cachedTracker != nil {
		return cachedEnv, cachedTracker
	}
	cfg := netmodel.Tiny()
	// Match the paper's sampling regime: enough samples per active
	// server that detection saturates for the traffic-heavy pool.
	cfg.NumServers = 2600
	opts := traffic.Options{SamplesPerWeek: 30000, SamplingRate: 16384, SnapLen: 128}
	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	tracker, _, err := env.TrackWeeks(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cachedEnv, cachedTracker = env, tracker
	return env, tracker
}

func TestComputePartitionsEachWeek(t *testing.T) {
	_, tr := tracked(t)
	weeks := tr.Compute()
	if len(weeks) != 17 {
		t.Fatalf("computed %d weeks", len(weeks))
	}
	for i, wc := range weeks {
		if wc.Total() != len(tr.Week(i).Servers) {
			t.Fatalf("week %d partitions %d != observed %d", wc.Week, wc.Total(), len(tr.Week(i).Servers))
		}
		regionTotal := 0
		for _, rc := range wc.ByRegion {
			regionTotal += rc.IPs[0] + rc.IPs[1] + rc.IPs[2]
		}
		if regionTotal != wc.Total() {
			t.Fatalf("week %d region slices %d != total %d", wc.Week, regionTotal, wc.Total())
		}
		if wc.ASes[0]+wc.ASes[1]+wc.ASes[2] != wc.TotalASes {
			t.Fatalf("week %d AS partitions broken", wc.Week)
		}
	}
	// Week 0: everything is new by construction.
	if weeks[0].IPs[PoolStable] != 0 || weeks[0].IPs[PoolRecurrent] != 0 {
		t.Fatal("first week must be all-new")
	}
}

func TestFig4aShapes(t *testing.T) {
	_, tr := tracked(t)
	weeks := tr.Compute()
	last := weeks[len(weeks)-1]
	stable := last.Share(PoolStable)
	recurrent := last.Share(PoolRecurrent)
	fresh := last.Share(PoolNew)
	// Paper: ~30% stable, ~60% recurrent, ~10% new in week 51. Bands
	// are generous because sampling noise moves tail servers around.
	if stable < 0.15 || stable > 0.55 {
		t.Fatalf("stable share %.3f out of band", stable)
	}
	if recurrent < 0.35 || recurrent > 0.75 {
		t.Fatalf("recurrent share %.3f out of band", recurrent)
	}
	if fresh > 0.25 {
		t.Fatalf("new share %.3f too high for week 51", fresh)
	}
	// The new-arrival share must trend down over the study.
	early := weeks[2].Share(PoolNew)
	if fresh >= early {
		t.Fatalf("new share did not decline: %.3f -> %.3f", early, fresh)
	}
}

func TestFig5StablePoolCarriesTraffic(t *testing.T) {
	_, tr := tracked(t)
	weeks := tr.Compute()
	// Paper: the stable pool carries >60% of server traffic each week.
	for _, wc := range weeks[4:] {
		if s := wc.ByteShare(PoolStable); s < 0.5 {
			t.Fatalf("week %d stable pool carries only %.3f of traffic", wc.Week, s)
		}
	}
	last := weeks[len(weeks)-1]
	if last.ByteShare(PoolStable) <= last.Share(PoolStable) {
		t.Fatal("stable pool must be traffic-heavier than its IP share")
	}
}

func TestFig4bRegionalChurn(t *testing.T) {
	_, tr := tracked(t)
	weeks := tr.Compute()
	last := weeks[len(weeks)-1]
	de := last.ByRegion["DE"]
	cn := last.ByRegion["CN"]
	if de == nil {
		t.Fatal("no DE region data")
	}
	// DE contributes about half the stable pool; CN nearly none.
	deStableShare := float64(de.IPs[PoolStable]) / float64(last.IPs[PoolStable])
	if deStableShare < 0.3 {
		t.Fatalf("DE stable share %.3f too low", deStableShare)
	}
	if cn != nil {
		cnStableShare := float64(cn.IPs[PoolStable]) / float64(last.IPs[PoolStable])
		if cnStableShare > 0.05 {
			t.Fatalf("CN stable share %.3f too high", cnStableShare)
		}
	}
}

func TestFig4cASChurnStabler(t *testing.T) {
	_, tr := tracked(t)
	weeks := tr.Compute()
	last := weeks[len(weeks)-1]
	asStable := float64(last.ASes[PoolStable]) / float64(last.TotalASes)
	ipStable := last.Share(PoolStable)
	// Paper: ~70% of ASes stable vs ~30% of server IPs.
	if asStable <= ipStable {
		t.Fatalf("AS stability %.3f must exceed IP stability %.3f", asStable, ipStable)
	}
	if asStable < 0.45 {
		t.Fatalf("AS stable share %.3f too low", asStable)
	}
}

func TestWeeklyTotalsStable(t *testing.T) {
	_, tr := tracked(t)
	weeks := tr.Compute()
	// §4.1: weekly AS and prefix counts are intriguingly stable. The
	// absolute level drifts slowly upward with the IXP's growth, but
	// adjacent weeks must stay close.
	for i := 1; i < len(weeks); i++ {
		ratio := float64(weeks[i].TotalASes) / float64(weeks[i-1].TotalASes)
		if ratio < 0.75 || ratio > 1.3 {
			t.Fatalf("week %d AS count jumps: %d vs %d", weeks[i].Week, weeks[i].TotalASes, weeks[i-1].TotalASes)
		}
	}
	first, last := weeks[0], weeks[len(weeks)-1]
	if float64(last.TotalASes) > 2.0*float64(first.TotalASes) {
		t.Fatalf("AS count doubled over the study: %d -> %d", first.TotalASes, last.TotalASes)
	}
}

func TestHTTPSGrowthSeries(t *testing.T) {
	_, tr := tracked(t)
	weeks := tr.Compute()
	first := weeks[0].HTTPSShareBytes()
	last := weeks[len(weeks)-1].HTTPSShareBytes()
	if last <= first {
		t.Fatalf("HTTPS byte share did not grow: %.4f -> %.4f", first, last)
	}
}

func TestHurricaneDipSeries(t *testing.T) {
	env, tr := tracked(t)
	w := env.World
	// "Published IP ranges" of the nimbus cloud's US-East region: the
	// prefixes of its home AS that geo-locate to the US (DC retagging
	// puts us-east/us-west there).
	home := w.Orgs[w.Special.NimbusCloud].HomeAS
	var ranges []routing.Prefix
	for _, pi := range w.ASes[home].Prefixes {
		if w.Prefixes[pi].Country == "US" {
			ranges = append(ranges, w.Prefixes[pi].Prefix)
		}
	}
	if len(ranges) == 0 {
		t.Skip("no US nimbus ranges in tiny world")
	}
	counts := tr.CountInRanges(ranges)
	idx44 := 44 - w.Cfg.FirstWeek
	// Week 44 must dip visibly against its neighbours.
	before, after := counts[idx44-1], counts[idx44+1]
	if counts[idx44] >= before || counts[idx44] >= after {
		t.Fatalf("no hurricane dip: weeks 43..45 = %d, %d, %d", before, counts[idx44], after)
	}
}

func TestCloudRampSeries(t *testing.T) {
	env, tr := tracked(t)
	w := env.World
	home := w.Orgs[w.Special.ElastiCloud].HomeAS
	var ieRanges []routing.Prefix
	for _, pi := range w.ASes[home].Prefixes {
		if w.Prefixes[pi].Country == "IE" {
			ieRanges = append(ieRanges, w.Prefixes[pi].Prefix)
		}
	}
	if len(ieRanges) == 0 {
		t.Skip("no IE elasticloud ranges")
	}
	counts := tr.CountInRanges(ieRanges)
	n := len(counts)
	early := avg(counts[:n-3])
	late := avg(counts[n-3:])
	if late < early*1.3 {
		t.Fatalf("no Ireland ramp: early %.1f vs late %.1f (%v)", early, late, counts)
	}
	// Traffic should ramp alongside.
	bytes := tr.BytesInRanges(ieRanges)
	if bytes[n-1] <= bytes[0] {
		t.Fatalf("IE traffic did not grow: %d -> %d", bytes[0], bytes[n-1])
	}
}

func TestResellerGrowthSeries(t *testing.T) {
	env, tr := tracked(t)
	counts := tr.CountByMember(env.World.Special.ResellerAS)
	n := len(counts)
	if counts[0] == 0 {
		t.Skip("no reseller-carried servers visible in tiny world")
	}
	if float64(counts[n-1]) < 1.25*float64(counts[0]) {
		t.Fatalf("reseller fleet did not grow: %v", counts)
	}
}

func avg(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

func TestTrackerAddOrdering(t *testing.T) {
	tr := NewTracker()
	if err := tr.Add(WeekObservation{Week: 35}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(WeekObservation{Week: 35}); err == nil {
		t.Fatal("duplicate week must fail")
	}
	if err := tr.Add(WeekObservation{Week: 34}); err == nil {
		t.Fatal("out-of-order week must fail")
	}
}

func TestPoolString(t *testing.T) {
	if PoolStable.String() != "stable" || PoolNew.String() != "new" || Pool(9).String() == "" {
		t.Fatal("pool names wrong")
	}
}

func TestSyntheticChurn(t *testing.T) {
	ip := func(n byte) packet.IPv4Addr { return packet.MakeIPv4(9, 0, 0, n) }
	tr := NewTracker()
	mk := func(week int, ips ...packet.IPv4Addr) WeekObservation {
		obs := WeekObservation{Week: week, Servers: map[packet.IPv4Addr]ServerObs{}}
		for _, i := range ips {
			obs.Servers[i] = ServerObs{Bytes: 100, ASN: 1, Region: "DE"}
		}
		return obs
	}
	// a: all weeks. b: weeks 1,3. c: week 2 on.
	check(t, tr.Add(mk(1, ip(1), ip(2))))
	check(t, tr.Add(mk(2, ip(1), ip(3))))
	check(t, tr.Add(mk(3, ip(1), ip(2), ip(3))))
	weeks := tr.Compute()
	w3 := weeks[2]
	if w3.IPs[PoolStable] != 1 { // only a
		t.Fatalf("stable = %d", w3.IPs[PoolStable])
	}
	if w3.IPs[PoolRecurrent] != 2 { // b (missed week 2), c (missed week 1)
		t.Fatalf("recurrent = %d", w3.IPs[PoolRecurrent])
	}
	if w3.IPs[PoolNew] != 0 {
		t.Fatalf("new = %d", w3.IPs[PoolNew])
	}
	w2 := weeks[1]
	if w2.IPs[PoolStable] != 1 || w2.IPs[PoolNew] != 1 {
		t.Fatalf("week2 partitions wrong: %+v", w2.IPs)
	}
}

func check(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestGapSemantics pins the quarantined-week contract: a gap week holds
// its calendar slot as an annotated placeholder, does not advance the
// pool histories (an IP present in every *observed* week stays stable
// across the gap), and resets the consecutive-coverage streak.
func TestGapSemantics(t *testing.T) {
	ip := func(n byte) packet.IPv4Addr { return packet.MakeIPv4(9, 2, 0, n) }
	tr := NewTracker()
	mk := func(week int, ips ...packet.IPv4Addr) WeekObservation {
		obs := WeekObservation{Week: week, Servers: map[packet.IPv4Addr]ServerObs{}}
		for _, i := range ips {
			obs.Servers[i] = ServerObs{Bytes: 100, ASN: 1, Region: "DE"}
		}
		return obs
	}
	// a present every observed week; b only before the gap.
	check(t, tr.Add(mk(1, ip(1), ip(2))))
	check(t, tr.Add(mk(2, ip(1), ip(2))))
	check(t, tr.AddGap(3))
	check(t, tr.Add(mk(4, ip(1))))
	weeks := tr.Compute()
	if len(weeks) != 4 {
		t.Fatalf("computed %d weeks, want 4", len(weeks))
	}
	gap := weeks[2]
	if !gap.Gap || gap.Week != 3 {
		t.Fatalf("week 3 not marked as gap: %+v", gap)
	}
	if gap.Total() != 0 || gap.TotalBytes != 0 || gap.TotalASes != 0 {
		t.Fatalf("gap week carries data: %+v", gap)
	}
	if gap.ObservedWeeks != 2 || gap.Streak != 0 {
		t.Fatalf("gap week coverage: observed=%d streak=%d", gap.ObservedWeeks, gap.Streak)
	}
	last := weeks[3]
	if last.Gap {
		t.Fatal("week 4 wrongly marked gap")
	}
	// ip(1) was seen in all 3 observed weeks: stable despite the gap.
	if last.IPs[PoolStable] != 1 || last.IPs[PoolRecurrent] != 0 || last.IPs[PoolNew] != 0 {
		t.Fatalf("week 4 pools: %+v", last.IPs)
	}
	if last.ObservedWeeks != 3 {
		t.Fatalf("week 4 observed weeks = %d, want 3", last.ObservedWeeks)
	}
	if last.Streak != 1 {
		t.Fatalf("week 4 streak = %d, want 1 (gap resets)", last.Streak)
	}
	if weeks[1].Streak != 2 {
		t.Fatalf("week 2 streak = %d, want 2", weeks[1].Streak)
	}
	// Range/member series keep the calendar shape with zeroed gap slots.
	counts := tr.CountInRanges([]routing.Prefix{{Addr: packet.MakeIPv4(9, 2, 0, 0), Len: 24}})
	if len(counts) != 4 || counts[2] != 0 || counts[3] != 1 {
		t.Fatalf("range series across gap: %v", counts)
	}
}

// TestAllGapsCompute guards the degenerate campaign where every week
// quarantined: Compute must yield an all-gap series, not panic.
func TestAllGapsCompute(t *testing.T) {
	tr := NewTracker()
	for wk := 1; wk <= 3; wk++ {
		check(t, tr.AddGap(wk))
	}
	weeks := tr.Compute()
	if len(weeks) != 3 {
		t.Fatalf("computed %d weeks", len(weeks))
	}
	for _, wc := range weeks {
		if !wc.Gap || wc.ObservedWeeks != 0 || wc.Streak != 0 {
			t.Fatalf("all-gap week wrong: %+v", wc)
		}
	}
}

// TestUnresolvedASNsExcluded pins the ASN-0 fix: server IPs whose RIB
// lookup failed must participate in IP-level churn but stay out of the
// AS pools (where a phantom "AS 0" would otherwise appear stable every
// week) and out of the prefix count; they are reported separately.
func TestUnresolvedASNsExcluded(t *testing.T) {
	ip := func(n byte) packet.IPv4Addr { return packet.MakeIPv4(9, 1, 0, n) }
	pfx := routing.Prefix{Addr: packet.MakeIPv4(9, 1, 0, 0), Len: 24}
	tr := NewTracker()
	mk := func(week int) WeekObservation {
		obs := WeekObservation{Week: week, Servers: map[packet.IPv4Addr]ServerObs{
			ip(1): {Bytes: 100, ASN: 7, Prefix: pfx, Region: "DE"},
			ip(2): {Bytes: 100, ASN: 0, Region: "DE"}, // lookup failed
			ip(3): {Bytes: 100, ASN: 0, Region: "US"}, // lookup failed
		}}
		return obs
	}
	check(t, tr.Add(mk(1)))
	check(t, tr.Add(mk(2)))
	weeks := tr.Compute()
	for _, wc := range weeks {
		if wc.Total() != 3 {
			t.Fatalf("week %d: IP churn lost the unresolved IPs: %d", wc.Week, wc.Total())
		}
		if wc.TotalASes != 1 {
			t.Fatalf("week %d: %d ASes counted, want 1 (ASN 0 must not be an AS)", wc.Week, wc.TotalASes)
		}
		if wc.ASes[0]+wc.ASes[1]+wc.ASes[2] != wc.TotalASes {
			t.Fatalf("week %d: AS partitions do not sum to total", wc.Week)
		}
		if wc.TotalPrefixes != 1 {
			t.Fatalf("week %d: %d prefixes counted, want 1 (zero prefix excluded)", wc.Week, wc.TotalPrefixes)
		}
		if wc.UnresolvedIPs != 2 {
			t.Fatalf("week %d: %d unresolved IPs, want 2", wc.Week, wc.UnresolvedIPs)
		}
	}
	// Week 2's sole real AS was present in week 1 as well: stable.
	if weeks[1].ASes[PoolStable] != 1 {
		t.Fatalf("week 2 AS pools: %+v", weeks[1].ASes)
	}
}
