package churn_test

import (
	"fmt"

	"ixplens/internal/core/churn"
	"ixplens/internal/packet"
)

// Example tracks three weeks of server observations and derives the
// Fig. 4(a) partitions: a server seen every week is "stable", one seen
// before but not always is "recurrent", one appearing for the first
// time is "new".
func Example() {
	obs := func(week int, ips ...int) churn.WeekObservation {
		o := churn.WeekObservation{Week: week, Servers: map[packet.IPv4Addr]churn.ServerObs{}}
		for _, ip := range ips {
			o.Servers[packet.IPv4Addr(ip)] = churn.ServerObs{Bytes: 100, Region: "DE"}
		}
		return o
	}
	tr := churn.NewTracker()
	_ = tr.Add(obs(35, 1, 2))    // both first seen
	_ = tr.Add(obs(36, 1, 3))    // 2 gone, 3 new
	_ = tr.Add(obs(37, 1, 2, 3)) // 1 stable, 2 and 3 recurrent

	for _, wc := range tr.Compute() {
		fmt.Printf("week %d: stable=%d recurrent=%d new=%d\n",
			wc.Week, wc.IPs[churn.PoolStable], wc.IPs[churn.PoolRecurrent], wc.IPs[churn.PoolNew])
	}
	// Output:
	// week 35: stable=0 recurrent=0 new=2
	// week 36: stable=1 recurrent=0 new=1
	// week 37: stable=1 recurrent=2 new=0
}
