// Package churn implements the Section 4 longitudinal analysis: the
// weekly partitions of server IPs into the stable pool (seen in every
// week so far), the recurrent pool (seen before, but not always) and
// fresh arrivals (Fig. 4a), the same partitions by geographic region
// (Fig. 4b) and at AS granularity (Fig. 4c), the traffic carried by each
// pool per region (Fig. 5), and the time series behind the Section 4.2
// event studies (HTTPS adoption, cloud data-center ramps and outages,
// reseller growth).
package churn

import (
	"fmt"

	"ixplens/internal/entity"
	"ixplens/internal/packet"
	"ixplens/internal/routing"
)

// ServerObs is one week's observation of one server IP, annotated with
// the resolution results the pipeline obtained for it.
type ServerObs struct {
	Bytes  uint64
	ASN    uint32
	Prefix routing.Prefix
	Region string
	HTTPS  bool
	// Member is the member AS index whose port carried the server's
	// traffic (-1 unknown).
	Member int32
}

// WeekObservation is the full identified-server view of one week.
type WeekObservation struct {
	Week    int
	Servers map[packet.IPv4Addr]ServerObs
	// EstLoss carries the capture's estimated datagram loss fraction
	// into the longitudinal record, so churn figures derived from a
	// degraded week are marked as such.
	EstLoss float64
	// Gap marks a week with no usable observation (quarantined or
	// otherwise failed). Gap weeks hold a place in the series — the
	// campaign's calendar is unbroken — but contribute nothing to the
	// pools: histories are neither advanced nor penalized, so an IP seen
	// in every *observed* week stays stable across the gap.
	Gap bool
}

// Pool indexes the three churn partitions.
type Pool int

// Pools.
const (
	PoolStable Pool = iota
	PoolRecurrent
	PoolNew
)

// String names the pool.
func (p Pool) String() string {
	switch p {
	case PoolStable:
		return "stable"
	case PoolRecurrent:
		return "recurrent"
	case PoolNew:
		return "new"
	default:
		return fmt.Sprintf("Pool(%d)", int(p))
	}
}

// WeekChurn is the computed churn state of one week.
type WeekChurn struct {
	Week int
	// IPs counts server IPs per pool (Fig. 4a's bar pieces).
	IPs [3]int
	// Bytes is the server traffic carried by each pool.
	Bytes [3]uint64
	// ByRegion carries Fig. 4b / Fig. 5: per region, IPs and bytes per
	// pool.
	ByRegion map[string]*RegionChurn
	// ASes counts the ASes hosting servers per pool (Fig. 4c). An AS is
	// stable when it appeared in every week so far.
	ASes [3]int
	// TotalASes and TotalPrefixes are the week's server-hosting AS and
	// prefix counts (the §4.1 "20K ASes, 75K prefixes" stability).
	TotalASes     int
	TotalPrefixes int
	// UnresolvedIPs counts server IPs whose RIB lookup failed (ASN 0).
	// They participate in IP-level churn but are excluded from the
	// AS-level pools — ASN 0 is a lookup failure, not an AS, and pooling
	// it would fabricate a phantom "stable" AS present every week.
	UnresolvedIPs int
	// HTTPSIPs and HTTPSBytes track HTTPS adoption (§4.2).
	HTTPSIPs   int
	HTTPSBytes uint64
	// TotalBytes is the week's server traffic.
	TotalBytes uint64
	// EstLoss is the source week's estimated datagram loss fraction, a
	// data-quality annotation propagated from the capture layer.
	EstLoss float64
	// Gap marks a placeholder row for a week with no observation: every
	// count above is zero and the pools were not advanced.
	Gap bool
	// ObservedWeeks counts the non-gap weeks up to and including this
	// one — the denominator behind the stable pool ("seen in every
	// observed week").
	ObservedWeeks int
	// Streak counts consecutive observed weeks ending at this one; a gap
	// resets it to zero. This is the series consumers use when a claim
	// depends on uninterrupted coverage (the paper's 17-consecutive-week
	// framing).
	Streak int
}

// RegionChurn is a per-region slice of a week's churn.
type RegionChurn struct {
	IPs   [3]int
	Bytes [3]uint64
}

// Tracker consumes weekly observations in chronological order.
type Tracker struct {
	weeks []WeekObservation
	// table, when set, rebases Compute's per-IP histories onto the
	// shared interning layer: dense-ID slice indexing instead of an
	// address-keyed map over every server IP of every week.
	table *entity.Table
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{} }

// NewTrackerWith returns a tracker that resolves IP identity through
// the shared entity table (nil behaves like NewTracker). Results are
// identical either way; the table only changes the bookkeeping from
// map lookups to memoized dense-ID slice indexing.
func NewTrackerWith(table *entity.Table) *Tracker { return &Tracker{table: table} }

// Add appends a week. Weeks must be added in increasing order.
func (t *Tracker) Add(obs WeekObservation) error {
	if len(t.weeks) > 0 && obs.Week <= t.weeks[len(t.weeks)-1].Week {
		return fmt.Errorf("churn: week %d added after week %d", obs.Week, t.weeks[len(t.weeks)-1].Week)
	}
	t.weeks = append(t.weeks, obs)
	return nil
}

// AddGap records a week with no usable observation (quarantined,
// analysis failed) as an explicit hole in the series. The same ordering
// rule as Add applies.
func (t *Tracker) AddGap(week int) error {
	return t.Add(WeekObservation{Week: week, Gap: true})
}

// NumWeeks returns the number of weeks added.
func (t *Tracker) NumWeeks() int { return len(t.weeks) }

// Week returns the i-th observation.
func (t *Tracker) Week(i int) *WeekObservation { return &t.weeks[i] }

// poolOf derives the pool of an entity in week index n from its history.
func poolOf(first, seen, n int) Pool {
	switch {
	case first == n:
		return PoolNew
	case seen == n:
		// Seen in every prior week (and, by the caller's construction,
		// in this one).
		return PoolStable
	default:
		return PoolRecurrent
	}
}

// history tracks one entity's appearance record: the week index it was
// first seen (-1 before any sighting) and how many weeks it has been
// seen in.
type history struct {
	first int32
	seen  int32
}

// Compute derives the per-week churn series. With a table attached
// (NewTrackerWith) the per-IP histories are a slice indexed by dense
// entity ID — the tracker's dominant data structure across hundreds of
// thousands of IPs × 17 weeks — instead of an address-keyed map; the
// output is identical.
func (t *Tracker) Compute() []WeekChurn {
	var ipHistMap map[packet.IPv4Addr]*history
	var ipHistIDs []history
	if t.table == nil {
		ipHistMap = make(map[packet.IPv4Addr]*history)
	}
	histOf := func(ip packet.IPv4Addr) *history {
		if t.table == nil {
			h := ipHistMap[ip]
			if h == nil {
				h = &history{first: -1}
				ipHistMap[ip] = h
			}
			return h
		}
		id := int(t.table.Resolve(ip))
		if id >= len(ipHistIDs) {
			grown := make([]history, id+1+len(ipHistIDs)/2)
			copy(grown, ipHistIDs)
			for i := len(ipHistIDs); i < len(grown); i++ {
				grown[i].first = -1
			}
			ipHistIDs = grown
		}
		return &ipHistIDs[id]
	}
	asHist := make(map[uint32]*history)

	out := make([]WeekChurn, 0, len(t.weeks))
	// obsN indexes *observed* (non-gap) weeks: the pool histories advance
	// only when a week contributed data, so "stable" means seen in every
	// observed week — a gap neither breaks an IP's stability nor
	// fabricates a sighting. streak counts consecutive observed weeks and
	// does reset on a gap.
	obsN, streak := 0, 0
	for _, obs := range t.weeks {
		if obs.Gap {
			streak = 0
			out = append(out, WeekChurn{
				Week:          obs.Week,
				EstLoss:       obs.EstLoss,
				ByRegion:      make(map[string]*RegionChurn),
				Gap:           true,
				ObservedWeeks: obsN,
			})
			continue
		}
		n := obsN
		obsN++
		streak++
		wc := WeekChurn{
			Week:          obs.Week,
			EstLoss:       obs.EstLoss,
			ByRegion:      make(map[string]*RegionChurn),
			ObservedWeeks: obsN,
			Streak:        streak,
		}
		asPools := make(map[uint32]Pool)
		prefixes := make(map[routing.Prefix]bool)
		for ip, so := range obs.Servers {
			h := histOf(ip)
			if h.first < 0 {
				h.first = int32(n)
			}
			pool := poolOf(int(h.first), int(h.seen), n)
			h.seen++

			wc.IPs[pool]++
			wc.Bytes[pool] += so.Bytes
			wc.TotalBytes += so.Bytes
			if so.HTTPS {
				wc.HTTPSIPs++
				wc.HTTPSBytes += so.Bytes
			}
			region := so.Region
			if region == "" {
				region = "RoW"
			}
			rc := wc.ByRegion[region]
			if rc == nil {
				rc = &RegionChurn{}
				wc.ByRegion[region] = rc
			}
			rc.IPs[pool]++
			rc.Bytes[pool] += so.Bytes

			// AS-level churn: an AS's pool is decided by its own
			// history, tracked once per week below. ASN 0 marks a
			// failed RIB lookup, not an AS — count it separately and
			// keep it (and its zero-value prefix) out of the AS and
			// prefix tallies.
			if so.ASN == 0 {
				wc.UnresolvedIPs++
			} else {
				if _, done := asPools[so.ASN]; !done {
					ah := asHist[so.ASN]
					if ah == nil {
						ah = &history{first: int32(n)}
						asHist[so.ASN] = ah
					}
					asPools[so.ASN] = poolOf(int(ah.first), int(ah.seen), n)
					ah.seen++
				}
				prefixes[so.Prefix] = true
			}
		}
		for _, pool := range asPools {
			wc.ASes[pool]++
		}
		wc.TotalASes = len(asPools)
		wc.TotalPrefixes = len(prefixes)
		out = append(out, wc)
	}
	return out
}

// Total returns the week's total server IP count.
func (wc *WeekChurn) Total() int { return wc.IPs[0] + wc.IPs[1] + wc.IPs[2] }

// Share returns a pool's share of the week's server IPs.
func (wc *WeekChurn) Share(p Pool) float64 {
	tot := wc.Total()
	if tot == 0 {
		return 0
	}
	return float64(wc.IPs[p]) / float64(tot)
}

// ByteShare returns a pool's share of the week's server traffic.
func (wc *WeekChurn) ByteShare(p Pool) float64 {
	if wc.TotalBytes == 0 {
		return 0
	}
	return float64(wc.Bytes[p]) / float64(wc.TotalBytes)
}

// HTTPSShareIPs returns the HTTPS fraction of the week's server IPs.
func (wc *WeekChurn) HTTPSShareIPs() float64 {
	tot := wc.Total()
	if tot == 0 {
		return 0
	}
	return float64(wc.HTTPSIPs) / float64(tot)
}

// HTTPSShareBytes returns the HTTPS fraction of the week's traffic.
func (wc *WeekChurn) HTTPSShareBytes() float64 {
	if wc.TotalBytes == 0 {
		return 0
	}
	return float64(wc.HTTPSBytes) / float64(wc.TotalBytes)
}

// CountInRanges returns, per tracked week, how many observed server IPs
// fall into the given address ranges — the paper's technique for
// watching a cloud platform through its published IP ranges (§4.2).
func (t *Tracker) CountInRanges(ranges []routing.Prefix) []int {
	out := make([]int, len(t.weeks))
	for n := range t.weeks {
		for ip := range t.weeks[n].Servers {
			for _, p := range ranges {
				if p.Contains(ip) {
					out[n]++
					break
				}
			}
		}
	}
	return out
}

// BytesInRanges is CountInRanges for traffic volume.
func (t *Tracker) BytesInRanges(ranges []routing.Prefix) []uint64 {
	out := make([]uint64, len(t.weeks))
	for n := range t.weeks {
		for ip, so := range t.weeks[n].Servers {
			for _, p := range ranges {
				if p.Contains(ip) {
					out[n] += so.Bytes
					break
				}
			}
		}
	}
	return out
}

// CountByMember returns, per week, how many server IPs entered the IXP
// through the given member's port — the reseller-growth series (§4.2).
func (t *Tracker) CountByMember(member int32) []int {
	out := make([]int, len(t.weeks))
	for n := range t.weeks {
		for _, so := range t.weeks[n].Servers {
			if so.Member == member {
				out[n]++
			}
		}
	}
	return out
}
