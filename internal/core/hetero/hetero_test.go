package hetero_test

import (
	"context"
	"testing"

	"ixplens/internal/core/dissect"
	. "ixplens/internal/core/hetero"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/traffic"
)

var (
	cachedEnv *pipeline.Env
	cachedWk  *pipeline.Week
	cachedSrc dissect.RewindableSource
)

func analyzed(t testing.TB) (*pipeline.Env, *pipeline.Week, dissect.RewindableSource) {
	t.Helper()
	if cachedEnv != nil {
		cachedSrc.Reset()
		return cachedEnv, cachedWk, cachedSrc
	}
	env, err := pipeline.NewEnv(netmodel.Tiny(), traffic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	wk, src, err := env.AnalyzeWeek(context.Background(), 45, nil)
	if err != nil {
		t.Fatal(err)
	}
	cachedEnv, cachedWk, cachedSrc = env, wk, src
	return env, wk, src
}

func TestOrgSpreadShapes(t *testing.T) {
	env, wk, _ := analyzed(t)
	points := OrgSpread(wk.Clusters, 10)
	if len(points) < 10 {
		t.Fatalf("only %d org points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Servers > points[i-1].Servers {
			t.Fatal("points not sorted by server count")
		}
	}
	// The deploy-CDN must be the widest-spread org among the points.
	acmeDomain := env.World.Orgs[env.World.Special.AcmeCDN].Domain
	var acme *OrgPoint
	maxASes := 0
	for i := range points {
		if points[i].Authority == acmeDomain {
			acme = &points[i]
		}
		if points[i].ASes > maxASes {
			maxASes = points[i].ASes
		}
	}
	if acme == nil {
		t.Fatal("acme missing from org spread")
	}
	if acme.ASes < maxASes/2 || acme.ASes < 5 {
		t.Fatalf("acme AS footprint %d not among the widest (max %d)", acme.ASes, maxASes)
	}
	// Many orgs must be single-AS (the bulk of Fig. 6b sits at y=1).
	singles := 0
	for _, p := range points {
		if p.ASes == 1 {
			singles++
		}
	}
	if singles == 0 {
		t.Fatal("no single-AS orgs")
	}
}

func TestASHostingShapes(t *testing.T) {
	env, wk, _ := analyzed(t)
	points := ASHosting(wk.Clusters, 10)
	if len(points) == 0 {
		t.Fatal("no AS points")
	}
	multi5 := CountASesHostingAtLeast(points, 5)
	multi2 := CountASesHostingAtLeast(points, 2)
	if multi2 == 0 || multi5 > multi2 {
		t.Fatalf("hosting marginals broken: >=2 orgs %d, >=5 orgs %d", multi2, multi5)
	}
	// The megahost AS must host many organizations (AS36351 analog).
	w := env.World
	megaASN := w.ASes[w.Orgs[w.Special.MegaHost].HomeAS].ASN
	var mega *ASPoint
	for i := range points {
		if points[i].ASN == megaASN {
			mega = &points[i]
		}
	}
	if mega == nil {
		t.Fatal("megahost AS missing")
	}
	if mega.Orgs < 5 {
		t.Fatalf("megahost hosts only %d orgs", mega.Orgs)
	}
	// It should be at or near the top of the org-count ranking.
	if points[0].Orgs > mega.Orgs*3 {
		t.Fatalf("megahost (%d orgs) far from top (%d)", mega.Orgs, points[0].Orgs)
	}
}

// linkStatsFor runs the second pass for one special org.
func linkStatsFor(t testing.TB, org int32) (*pipeline.Env, *LinkStats) {
	t.Helper()
	env, wk, src := analyzed(t)
	w := env.World
	domain := w.Orgs[org].Domain
	c := wk.Clusters.Clusters[domain]
	if c == nil {
		t.Fatalf("no cluster for %s", domain)
	}
	serverSet := make(map[packet.IPv4Addr]bool, len(c.IPs))
	for _, ip := range c.IPs {
		serverSet[ip] = true
	}
	ls := NewLinkStats(w.Orgs[org].HomeAS)
	err := Attribute(src, env.Fabric, ls, func(ip packet.IPv4Addr) bool { return serverSet[ip] })
	if err != nil {
		t.Fatal(err)
	}
	src.Reset()
	return env, ls
}

func TestFig7bAcmeLinks(t *testing.T) {
	env, ls := linkStatsFor(t, cachedOrDefaultAcme(t))
	if ls.TotalBytes == 0 {
		t.Fatal("no acme traffic attributed")
	}
	off := ls.OffLinkShare()
	// Paper: 11.1% of Akamai traffic bypasses the direct links.
	if off < 0.02 || off > 0.40 {
		t.Fatalf("acme off-link share %.3f out of band", off)
	}
	// A majority of acme's observed servers never use the direct link
	// (15K of 28K in the paper) while carrying a minority of traffic.
	only := ls.ServersOnlyOffLink()
	totalServers := ls.NumDirectServers() + only
	if only*3 < totalServers {
		t.Fatalf("only %d of %d acme servers exclusively off-link", only, totalServers)
	}
	points := ls.Points()
	if len(points) < 10 {
		t.Fatalf("only %d members exchange acme traffic", len(points))
	}
	// The scatter must include members at x=0 (all acme traffic via
	// third parties) and members near x=1.
	var low, high int
	for _, p := range points {
		if p.DirectShare < 0.05 {
			low++
		}
		if p.DirectShare > 0.8 {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Fatalf("scatter not spread: %d low, %d high of %d", low, high, len(points))
	}
	_ = env
}

func cachedOrDefaultAcme(t testing.TB) int32 {
	env, _, _ := analyzed(t)
	return env.World.Special.AcmeCDN
}

func TestFig7cCloudShieldLinks(t *testing.T) {
	env, _, _ := analyzed(t)
	_, ls := linkStatsFor(t, env.World.Special.CloudShield)
	if ls.TotalBytes == 0 {
		t.Fatal("no cloudshield traffic")
	}
	// CloudShield hosts only in its own AS, yet some traffic still
	// reaches members via transit relays (non-peering member pairs).
	off := ls.OffLinkShare()
	if off <= 0 || off > 0.5 {
		t.Fatalf("cloudshield off-link share %.3f out of band", off)
	}
	// Its off-link share must be smaller than acme's: no third-party
	// server deployments, only relay effects.
	_, acme := linkStatsFor(t, env.World.Special.AcmeCDN)
	if off >= acme.OffLinkShare() {
		t.Fatalf("cloudshield off-link %.3f >= acme %.3f", off, acme.OffLinkShare())
	}
}

func TestLinkPointsConsistency(t *testing.T) {
	env, _, _ := analyzed(t)
	_, ls := linkStatsFor(t, env.World.Special.AcmeCDN)
	var sum float64
	for _, p := range ls.Points() {
		if p.DirectShare < 0 || p.DirectShare > 1 {
			t.Fatalf("direct share %v out of range", p.DirectShare)
		}
		sum += p.TrafficShare
	}
	if sum > 1.0001 {
		t.Fatalf("traffic shares sum to %v", sum)
	}
}

func TestObserveIgnoresIrrelevant(t *testing.T) {
	ls := NewLinkStats(1)
	rec := &dissect.Record{
		Class: dissect.ClassPeeringTCP,
		SrcIP: packet.MakeIPv4(1, 1, 1, 1), DstIP: packet.MakeIPv4(2, 2, 2, 2),
		InMember: 3, OutMember: 4, Bytes: 100,
	}
	ls.Observe(rec, func(packet.IPv4Addr) bool { return false })
	if ls.TotalBytes != 0 {
		t.Fatal("non-server record counted")
	}
	rec.Class = dissect.ClassLocal
	ls.Observe(rec, func(packet.IPv4Addr) bool { return true })
	if ls.TotalBytes != 0 {
		t.Fatal("non-peering record counted")
	}
}

func TestObserveDirections(t *testing.T) {
	ls := NewLinkStats(7)
	server := packet.MakeIPv4(9, 9, 9, 9)
	isServer := func(ip packet.IPv4Addr) bool { return ip == server }
	// Response: server at src, entering via home member 7.
	ls.Observe(&dissect.Record{
		Class: dissect.ClassPeeringTCP, SrcIP: server, DstIP: packet.MakeIPv4(1, 1, 1, 1),
		InMember: 7, OutMember: 3, Bytes: 100,
	}, isServer)
	// Request: server at dst, leaving via member 5 (off-link hosting).
	ls.Observe(&dissect.Record{
		Class: dissect.ClassPeeringTCP, SrcIP: packet.MakeIPv4(1, 1, 1, 1), DstIP: server,
		InMember: 3, OutMember: 5, Bytes: 50,
	}, isServer)
	if ls.TotalBytes != 150 || ls.DirectBytes != 100 {
		t.Fatalf("bytes wrong: %d total %d direct", ls.TotalBytes, ls.DirectBytes)
	}
	if got := ls.PerMember[3]; got == nil || got.Direct != 100 || got.Total != 150 {
		t.Fatalf("member 3 stats wrong: %+v", got)
	}
	if ls.OffLinkShare() < 0.33 || ls.OffLinkShare() > 0.34 {
		t.Fatalf("off-link share %v", ls.OffLinkShare())
	}
	if ls.ServersOnlyOffLink() != 0 {
		t.Fatal("server used the direct link at least once")
	}
}
