// Package hetero quantifies the network heterogenization of Section 5:
// how organizations spread their servers over many ASes (Fig. 6b), how
// ASes host servers of many organizations (Fig. 6c), and how an
// organization's traffic is split between its direct peering link and
// other member links at the IXP (Fig. 7) — the property that breaks
// traditional AS-level traffic attribution.
package hetero

import (
	"sort"

	"ixplens/internal/core/cluster"
	"ixplens/internal/core/dissect"
	"ixplens/internal/entity"
	"ixplens/internal/packet"
)

// OrgPoint is one dot of Fig. 6(b): an organization with its server
// count and AS footprint.
type OrgPoint struct {
	Authority string
	Servers   int
	ASes      int
}

// OrgSpread derives Fig. 6(b) from a clustering result: every cluster
// with at least minServers server IPs, with its AS footprint. Clusters
// must have been built with an ASN resolver for footprints to exist.
func OrgSpread(res *cluster.Result, minServers int) []OrgPoint {
	out := make([]OrgPoint, 0, len(res.Clusters))
	for _, c := range res.Clusters {
		if len(c.IPs) < minServers {
			continue
		}
		out = append(out, OrgPoint{Authority: c.Authority, Servers: len(c.IPs), ASes: len(c.ASNs)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Servers != out[j].Servers {
			return out[i].Servers > out[j].Servers
		}
		return out[i].Authority < out[j].Authority
	})
	return out
}

// ASPoint is one dot of Fig. 6(c): an AS with the number of (≥minServer)
// organizations whose servers it hosts and its total hosted server IPs.
type ASPoint struct {
	ASN     uint32
	Orgs    int
	Servers int
}

// ASHosting derives Fig. 6(c): for every AS, how many organizations
// (clusters with at least minServers IPs overall) have servers inside
// it, and how many server IPs it hosts in total. Organization names are
// interned to dense IDs for the per-AS membership sets, so the scan
// hashes uint32 keys instead of authority strings.
func ASHosting(res *cluster.Result, minServers int) []ASPoint {
	orgIDs := entity.NewStrings()
	orgsPerAS := make(map[uint32]map[uint32]bool)
	serversPerAS := make(map[uint32]int)
	for _, c := range res.Clusters {
		qualifies := len(c.IPs) >= minServers
		var org uint32
		if qualifies {
			org = orgIDs.Intern(c.Authority)
		}
		for asn, n := range c.ASNs {
			serversPerAS[asn] += n
			if qualifies {
				set := orgsPerAS[asn]
				if set == nil {
					set = make(map[uint32]bool)
					orgsPerAS[asn] = set
				}
				set[org] = true
			}
		}
	}
	out := make([]ASPoint, 0, len(serversPerAS))
	for asn, n := range serversPerAS {
		out = append(out, ASPoint{ASN: asn, Orgs: len(orgsPerAS[asn]), Servers: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Orgs != out[j].Orgs {
			return out[i].Orgs > out[j].Orgs
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// CountASesHostingAtLeast returns how many ASes host servers of at least
// k organizations (the paper: >500 ASes above 5 orgs, >200 above 10).
func CountASesHostingAtLeast(points []ASPoint, k int) int {
	n := 0
	for _, p := range points {
		if p.Orgs >= k {
			n++
		}
	}
	return n
}

// LinkStats accumulates, for one target organization, how its server
// traffic reaches each IXP member: over the direct peering link with the
// org's own member AS, or over other member links (servers hosted in
// third-party networks, or paths relayed through transit members).
type LinkStats struct {
	// HomeMember is the org's own member AS index.
	HomeMember int32
	// PerMember aggregates per counterparty member.
	PerMember map[int32]*MemberLink
	// TotalBytes is all observed traffic of the org's servers.
	TotalBytes uint64
	// DirectBytes is the share entering/leaving via the home member.
	DirectBytes uint64
	// directServers and offLinkServers partition the org's observed
	// servers by whether their traffic ever used the direct link. With an
	// entity table attached the keys are dense entity IDs, otherwise raw
	// addresses; both fit uint64.
	directServers  map[uint64]bool
	offLinkServers map[uint64]bool
	table          *entity.Table
}

// MemberLink is one member AS's view of the org's traffic.
type MemberLink struct {
	// Direct is traffic exchanged with the org's home member directly.
	Direct uint64
	// Total is all traffic involving the org's servers seen by this
	// member.
	Total uint64
}

// NewLinkStats prepares an accumulator for one organization.
func NewLinkStats(homeMember int32) *LinkStats {
	return NewLinkStatsWith(homeMember, nil)
}

// NewLinkStatsWith prepares an accumulator whose server sets are keyed
// by dense entity IDs from the shared table (nil table falls back to
// address keys; results are identical).
func NewLinkStatsWith(homeMember int32, table *entity.Table) *LinkStats {
	return &LinkStats{
		HomeMember:     homeMember,
		PerMember:      make(map[int32]*MemberLink),
		directServers:  make(map[uint64]bool),
		offLinkServers: make(map[uint64]bool),
		table:          table,
	}
}

// serverKey maps a server IP into the set-key space.
func (ls *LinkStats) serverKey(ip packet.IPv4Addr) uint64 {
	if ls.table != nil {
		return uint64(ls.table.Resolve(ip))
	}
	return uint64(ip)
}

// Observe processes one dissected record against the org's server set.
// Call it during a second pass over the week's capture.
func (ls *LinkStats) Observe(rec *dissect.Record, isServer func(packet.IPv4Addr) bool) {
	if !rec.Class.IsPeering() {
		return
	}
	ls.ObserveFlow(rec.SrcIP, rec.DstIP, rec.InMember, rec.OutMember, rec.Bytes, isServer)
}

// ObserveFlow attributes one (possibly pre-aggregated) peering flow:
// src/dst endpoints, the ingress and egress member, and the summed
// bytes. Because every record of one flow identity takes the same
// branch here, attributing an aggregated flow once is bit-identical to
// attributing each of its records — the property that lets the fused
// analysis pass persist a generic flow product and replay it for any
// organization's server set. The server-side check prefers src, like
// the per-record path always has.
func (ls *LinkStats) ObserveFlow(src, dst packet.IPv4Addr, in, out int32, bytes uint64, isServer func(packet.IPv4Addr) bool) {
	var serverIP packet.IPv4Addr
	var serverSide, clientSide int32
	switch {
	case isServer(src):
		serverIP, serverSide, clientSide = src, in, out
	case isServer(dst):
		serverIP, serverSide, clientSide = dst, out, in
	default:
		return
	}
	ml := ls.PerMember[clientSide]
	if ml == nil {
		ml = &MemberLink{}
		ls.PerMember[clientSide] = ml
	}
	ml.Total += bytes
	ls.TotalBytes += bytes
	if serverSide == ls.HomeMember {
		ml.Direct += bytes
		ls.DirectBytes += bytes
		ls.directServers[ls.serverKey(serverIP)] = true
	} else {
		ls.offLinkServers[ls.serverKey(serverIP)] = true
	}
}

// NumDirectServers counts servers seen at least once over the direct
// peering link.
func (ls *LinkStats) NumDirectServers() int { return len(ls.directServers) }

// Attribute runs the Fig. 7 second pass without a buffered week: it
// drains src through the dissection cascade and feeds every record to
// ls.Observe against the org's server set. src is typically a
// pipeline.ReplaySource (the deterministic regeneration of the analysed
// week) or a capture-file stream reader.
func Attribute(src dissect.DatagramSource, members dissect.MemberResolver, ls *LinkStats, isServer func(packet.IPv4Addr) bool) error {
	cls := dissect.NewClassifier(members)
	_, err := dissect.Process(src, cls, func(rec *dissect.Record) {
		ls.Observe(rec, isServer)
	})
	return err
}

// OffLinkShare is the fraction of the org's traffic that does NOT use
// the direct peering link (11.1% for Akamai in the paper).
func (ls *LinkStats) OffLinkShare() float64 {
	if ls.TotalBytes == 0 {
		return 0
	}
	return 1 - float64(ls.DirectBytes)/float64(ls.TotalBytes)
}

// ServersOnlyOffLink counts servers never seen over the direct link
// (15K of 28K Akamai servers in the paper).
func (ls *LinkStats) ServersOnlyOffLink() int {
	n := 0
	for k := range ls.offLinkServers {
		if !ls.directServers[k] {
			n++
		}
	}
	return n
}

// LinkPoint is one dot of Fig. 7(b)/(c): a member AS with the share of
// its org traffic arriving over the direct link (x) and its share of
// the org's total traffic (y).
type LinkPoint struct {
	Member       int32
	DirectShare  float64
	TrafficShare float64
}

// Points derives the Fig. 7 scatter.
func (ls *LinkStats) Points() []LinkPoint {
	out := make([]LinkPoint, 0, len(ls.PerMember))
	for m, ml := range ls.PerMember {
		if m == ls.HomeMember || ml.Total == 0 {
			continue
		}
		out = append(out, LinkPoint{
			Member:       m,
			DirectShare:  float64(ml.Direct) / float64(ml.Total),
			TrafficShare: float64(ml.Total) / float64(ls.TotalBytes),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Member < out[j].Member })
	return out
}
