package dissect

import (
	"io"
	"sync"
	"time"

	"ixplens/internal/sflow"
)

// Streaming dissection. The buffered path (SliceSource + Process) holds
// an entire week of datagrams in memory before the first sample is
// classified; the StreamProcessor instead classifies samples while the
// capture is still being produced, holding only a bounded number of
// in-flight batches. A producer (the sFlow collector's emit callback, a
// capture-file reader, a UDP receiver) pushes datagrams in with Add; a
// pool of workers — each owning its own Classifier and scratch Record
// slice — decodes and classifies them in parallel; a single merger
// goroutine re-establishes input order and invokes the observer
// callback, so observers see exactly the sequence a sequential Process
// call would deliver. Results are therefore bit-identical to the
// buffered path, deterministic, and produced with O(batch) memory
// instead of O(week).

const (
	// defaultBatchSamples is how many flow samples ride in one work unit.
	defaultBatchSamples = 256
	// batchesPerWorker sizes the recycling pool; together with the batch
	// size it bounds the processor's peak memory.
	batchesPerWorker = 2
)

// streamBatch is one unit of work: a contiguous run of flow samples
// (with their header bytes copied into a batch-owned arena) plus the
// records the classifier worker fills in.
type streamBatch struct {
	flows []sflow.FlowSample
	arena []byte
	recs  []Record
	done  chan struct{} // signaled by the worker when recs are ready
	start time.Time     // dispatch time, set only when metrics are on
}

func (b *streamBatch) reset() {
	b.flows = b.flows[:0]
	b.arena = b.arena[:0]
	b.recs = b.recs[:0]
}

// StreamProcessor classifies a datagram stream with bounded memory.
// Add may be used directly as an ixp.Collector sink. The observer fn is
// invoked from a single goroutine, in exact input order, with records
// that are only valid for the duration of the callback (the same
// contract as Process). Close flushes the final partial batch, waits
// for all in-flight work and returns the merged cascade tallies.
type StreamProcessor struct {
	fn           func(*Record)
	batchSamples int
	m            *Metrics

	jobs  chan *streamBatch // to the classifier workers
	order chan *streamBatch // to the merger, in dispatch order
	free  chan *streamBatch // recycled batches, bounds memory

	cur    *streamBatch
	closed bool

	counts    Counts
	workerWG  sync.WaitGroup
	mergeDone chan struct{}
}

// NewStreamProcessor starts workers classifier goroutines (plus one
// merger) against the given member resolver. workers below 1 is treated
// as 1. fn may be nil to only tally the cascade; m may be nil to run
// uninstrumented.
func NewStreamProcessor(members MemberResolver, workers int, fn func(*Record), m *Metrics) *StreamProcessor {
	if workers < 1 {
		workers = 1
	}
	pool := workers*batchesPerWorker + 2
	p := &StreamProcessor{
		fn:           fn,
		batchSamples: defaultBatchSamples,
		m:            m,
		jobs:         make(chan *streamBatch, pool),
		order:        make(chan *streamBatch, pool),
		free:         make(chan *streamBatch, pool),
		mergeDone:    make(chan struct{}),
	}
	for i := 0; i < pool; i++ {
		p.free <- &streamBatch{done: make(chan struct{}, 1)}
	}
	for i := 0; i < workers; i++ {
		p.workerWG.Add(1)
		go p.worker(members)
	}
	go p.merge()
	return p
}

func (p *StreamProcessor) worker(members MemberResolver) {
	defer p.workerWG.Done()
	cls := NewClassifier(members)
	cls.SetMetrics(p.m)
	for b := range p.jobs {
		if cap(b.recs) < len(b.flows) {
			b.recs = make([]Record, len(b.flows))
		}
		b.recs = b.recs[:len(b.flows)]
		for i := range b.flows {
			cls.Classify(&b.flows[i], &b.recs[i])
		}
		b.done <- struct{}{}
	}
}

func (p *StreamProcessor) merge() {
	defer close(p.mergeDone)
	for b := range p.order {
		<-b.done
		for i := range b.recs {
			p.counts.Tally(&b.recs[i])
			if p.fn != nil {
				p.fn(&b.recs[i])
			}
		}
		if p.m != nil {
			p.m.BatchNanos.ObserveSince(b.start)
			p.m.QueueDepth.Set(int64(len(p.jobs)))
		}
		b.reset()
		p.free <- b
	}
}

// Add copies the datagram's flow samples (header bytes included) into
// the current batch and dispatches full batches to the workers. The
// datagram only needs to stay valid for the duration of the call, so
// Add composes with buffer-reusing producers. It blocks when all pool
// batches are in flight — that is the backpressure bounding memory.
func (p *StreamProcessor) Add(d *sflow.Datagram) error {
	b := p.cur
	if b == nil {
		b = <-p.free
		p.cur = b
	}
	for i := range d.Flows {
		fs := d.Flows[i]
		h := fs.Raw.Header
		off := len(b.arena)
		b.arena = append(b.arena, h...)
		fs.Raw.Header = b.arena[off:len(b.arena):len(b.arena)]
		b.flows = append(b.flows, fs)
	}
	if len(b.flows) >= p.batchSamples {
		p.dispatch()
	}
	return nil
}

// dispatch hands the current batch to the workers and the merger. The
// order channel's capacity equals the pool size, so pushing there never
// blocks for a batch obtained from the pool.
func (p *StreamProcessor) dispatch() {
	b := p.cur
	p.cur = nil
	if b == nil {
		return
	}
	if len(b.flows) == 0 {
		p.free <- b
		return
	}
	if p.m != nil {
		p.m.Batches.Inc()
		b.start = time.Now()
		p.m.QueueDepth.Set(int64(len(p.jobs) + 1))
	}
	p.order <- b
	p.jobs <- b
}

// Close flushes the final batch, drains all in-flight work and returns
// the merged counts. The observer will not be called again after Close
// returns. Close is idempotent.
func (p *StreamProcessor) Close() Counts {
	if !p.closed {
		p.closed = true
		p.dispatch()
		close(p.jobs)
		p.workerWG.Wait()
		close(p.order)
		<-p.mergeDone
	}
	return p.counts
}

// ProcessParallel drains a datagram source through a StreamProcessor:
// the same contract and the same (deterministic, input-ordered) results
// as Process, but with decoding and classification spread over workers
// goroutines. With workers <= 1 it falls back to the sequential Process.
// m may be nil to run uninstrumented.
func ProcessParallel(src DatagramSource, members MemberResolver, workers int, fn func(*Record), m *Metrics) (Counts, error) {
	if workers <= 1 {
		cls := NewClassifier(members)
		cls.SetMetrics(m)
		return Process(src, cls, fn)
	}
	p := NewStreamProcessor(members, workers, fn, m)
	var d sflow.Datagram
	for {
		err := src.Next(&d)
		if err == io.EOF {
			return p.Close(), nil
		}
		if err != nil {
			counts := p.Close()
			return counts, err
		}
		if err := p.Add(&d); err != nil {
			counts := p.Close()
			return counts, err
		}
	}
}
