package dissect

import (
	"context"
	"io"
	"sync"
	"time"

	"ixplens/internal/sflow"
)

// Streaming dissection. The buffered path (SliceSource + Process) holds
// an entire week of datagrams in memory before the first sample is
// classified; the StreamProcessor instead classifies samples while the
// capture is still being produced, holding only a bounded number of
// in-flight batches. A producer (the sFlow collector's emit callback, a
// capture-file reader, a UDP receiver) pushes datagrams in with Add; a
// pool of workers — each owning its own Classifier and scratch Record
// slice — decodes and classifies them in parallel; a single merger
// goroutine re-establishes input order and invokes the observer
// callback, so observers see exactly the sequence a sequential Process
// call would deliver. Results are therefore bit-identical to the
// buffered path, deterministic, and produced with O(batch) memory
// instead of O(week).
//
// Two robustness properties ride on top of the ordering machinery:
//
//   - Cancellation: the processor carries a context. Add fails fast once
//     the context is cancelled — including while blocked waiting for a
//     free batch — so a producer unwinds within one batch instead of
//     deadlocking against a pipeline that stopped consuming.
//   - Panic isolation: a panic inside a classifier worker (a poisoned
//     datagram hitting a buggy resolver) or inside the observer callback
//     quarantines the affected batch — its samples are counted in
//     Counts.PanicQuarantined and reported via metrics — instead of
//     crashing the whole run.

const (
	// defaultBatchSamples is how many flow samples ride in one work unit.
	defaultBatchSamples = 256
	// batchesPerWorker sizes the recycling pool; together with the batch
	// size it bounds the processor's peak memory.
	batchesPerWorker = 2
)

// streamBatch is one unit of work: a contiguous run of flow samples
// (with their header bytes copied into a batch-owned arena) plus the
// records the classifier worker fills in.
type streamBatch struct {
	flows []sflow.FlowSample
	arena []byte
	recs  []Record
	done  chan struct{} // signaled by the worker when recs are ready
	start time.Time     // dispatch time, set only when metrics are on
	// seqBase is the global stream index of the batch's first sample
	// (sharded mode only): assigned at dispatch, so seqBase + i is the
	// position a sequential pass would have seen sample i at.
	seqBase uint64
	// quarantined marks a batch whose classification panicked; the
	// merger counts its samples instead of delivering them.
	quarantined bool
}

func (b *streamBatch) reset() {
	b.flows = b.flows[:0]
	b.arena = b.arena[:0]
	b.recs = b.recs[:0]
	b.quarantined = false
}

// StreamProcessor classifies a datagram stream with bounded memory.
// Add may be used directly as an ixp.Collector sink. The observer fn is
// invoked from a single goroutine, in exact input order, with records
// that are only valid for the duration of the callback (the same
// contract as Process). Close flushes the final partial batch, waits
// for all in-flight work and returns the merged cascade tallies.
type StreamProcessor struct {
	ctx          context.Context
	fn           func(*Record)
	batchSamples int
	m            *Metrics

	// Sharded mode (NewShardedStreamProcessor): no merger, no ordering.
	// Workers invoke shardFn inline with their worker index and the
	// sample's global stream position, and tally into their own counts
	// slot; Close sums the slots.
	shardFn      ShardObserver
	workerCounts []Counts
	sampleSeq    uint64

	jobs  chan *streamBatch // to the classifier workers
	order chan *streamBatch // to the merger, in dispatch order
	free  chan *streamBatch // recycled batches, bounds memory

	cur    *streamBatch
	closed bool

	counts    Counts
	workerWG  sync.WaitGroup
	mergeDone chan struct{}
}

// ShardObserver is the per-worker observer of the sharded streaming
// mode. worker identifies the calling goroutine (0 <= worker < workers,
// stable for the processor's lifetime), seq is the record's global
// stream position. Calls for the same worker are sequential; calls for
// different workers are concurrent — the observer must keep per-worker
// state (e.g. one webserver.Identifier shard per worker) and merge
// after Close. The record is only valid for the duration of the call.
type ShardObserver func(worker int, rec *Record, seq uint64)

// NewStreamProcessor starts workers classifier goroutines (plus one
// merger) against the given member resolver. workers below 1 is treated
// as 1. fn may be nil to only tally the cascade; m may be nil to run
// uninstrumented. ctx may be nil (treated as context.Background());
// once it is cancelled, Add returns the context error — in-flight
// batches still drain through Close.
func NewStreamProcessor(ctx context.Context, members MemberResolver, workers int, fn func(*Record), m *Metrics) *StreamProcessor {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	pool := workers*batchesPerWorker + 2
	p := &StreamProcessor{
		ctx:          ctx,
		fn:           fn,
		batchSamples: defaultBatchSamples,
		m:            m,
		jobs:         make(chan *streamBatch, pool),
		order:        make(chan *streamBatch, pool),
		free:         make(chan *streamBatch, pool),
		mergeDone:    make(chan struct{}),
	}
	for i := 0; i < pool; i++ {
		p.free <- &streamBatch{done: make(chan struct{}, 1)}
	}
	for i := 0; i < workers; i++ {
		p.workerWG.Add(1)
		go p.worker(members)
	}
	go p.merge()
	return p
}

// NewShardedStreamProcessor starts a pool like NewStreamProcessor, but
// with the ordered merge removed: each worker classifies AND observes
// its batches inline through obs, passing its worker index and the
// sample's global stream position. Observation runs on all workers
// concurrently instead of serializing behind a merger — the observer
// must shard its state by worker index (see ShardObserver). Per-batch
// panic isolation still applies: a panic in classification or the
// observer quarantines the batch's remaining samples into
// Counts.PanicQuarantined and the pool keeps flowing.
func NewShardedStreamProcessor(ctx context.Context, members MemberResolver, workers int, obs ShardObserver, m *Metrics) *StreamProcessor {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	pool := workers*batchesPerWorker + 2
	p := &StreamProcessor{
		ctx:          ctx,
		shardFn:      obs,
		workerCounts: make([]Counts, workers),
		batchSamples: defaultBatchSamples,
		m:            m,
		jobs:         make(chan *streamBatch, pool),
		free:         make(chan *streamBatch, pool),
	}
	for i := 0; i < pool; i++ {
		p.free <- &streamBatch{done: make(chan struct{}, 1)}
	}
	for i := 0; i < workers; i++ {
		p.workerWG.Add(1)
		go p.shardWorker(i, members)
	}
	return p
}

func (p *StreamProcessor) shardWorker(idx int, members MemberResolver) {
	defer p.workerWG.Done()
	cls := NewClassifier(members)
	cls.SetMetrics(p.m)
	var rec Record
	for b := range p.jobs {
		p.shardBatch(idx, cls, b, &rec)
		if p.m != nil {
			p.m.BatchNanos.ObserveSince(b.start)
			p.m.QueueDepth.Set(int64(len(p.jobs)))
		}
		b.reset()
		p.free <- b
	}
}

// shardBatch classifies and observes one batch on worker idx. A panic —
// in the classifier or the observer — quarantines the current sample
// and the batch's remainder, mirroring the ordered path's deliver.
func (p *StreamProcessor) shardBatch(idx int, cls *Classifier, b *streamBatch, rec *Record) {
	counts := &p.workerCounts[idx]
	i := 0
	defer func() {
		if r := recover(); r != nil {
			n := len(b.flows) - i
			counts.PanicQuarantined += n
			if p.m != nil {
				p.m.PanicQuarantined.Add(uint64(n))
			}
		}
	}()
	for ; i < len(b.flows); i++ {
		cls.Classify(&b.flows[i], rec)
		if p.shardFn != nil {
			p.shardFn(idx, rec, b.seqBase+uint64(i))
		}
		counts.Tally(rec)
	}
}

func (p *StreamProcessor) worker(members MemberResolver) {
	defer p.workerWG.Done()
	cls := NewClassifier(members)
	cls.SetMetrics(p.m)
	for b := range p.jobs {
		classifyBatch(cls, b)
		b.done <- struct{}{}
	}
}

// classifyBatch fills b.recs from b.flows, flagging the batch as
// quarantined instead of unwinding if classification panics. The done
// signal is the caller's job, so a panicking batch still reaches the
// merger and the pipeline keeps flowing.
func classifyBatch(cls *Classifier, b *streamBatch) {
	defer func() {
		if r := recover(); r != nil {
			b.quarantined = true
		}
	}()
	if cap(b.recs) < len(b.flows) {
		b.recs = make([]Record, len(b.flows))
	}
	b.recs = b.recs[:len(b.flows)]
	for i := range b.flows {
		cls.Classify(&b.flows[i], &b.recs[i])
	}
}

func (p *StreamProcessor) merge() {
	defer close(p.mergeDone)
	for b := range p.order {
		<-b.done
		if b.quarantined {
			p.quarantine(len(b.flows))
		} else {
			p.deliver(b)
		}
		if p.m != nil {
			p.m.BatchNanos.ObserveSince(b.start)
			p.m.QueueDepth.Set(int64(len(p.jobs)))
		}
		b.reset()
		p.free <- b
	}
}

// deliver hands a classified batch to the observer, in order, with
// panic isolation: if the callback panics, the current record and the
// batch's remaining records are quarantined and merging continues with
// the next batch.
func (p *StreamProcessor) deliver(b *streamBatch) {
	i := 0
	defer func() {
		if r := recover(); r != nil {
			p.quarantine(len(b.recs) - i)
		}
	}()
	for ; i < len(b.recs); i++ {
		if p.fn != nil {
			p.fn(&b.recs[i])
		}
		p.counts.Tally(&b.recs[i])
	}
}

func (p *StreamProcessor) quarantine(n int) {
	p.counts.PanicQuarantined += n
	if p.m != nil {
		p.m.PanicQuarantined.Add(uint64(n))
	}
}

// Add copies the datagram's flow samples (header bytes included) into
// the current batch and dispatches full batches to the workers. The
// datagram only needs to stay valid for the duration of the call, so
// Add composes with buffer-reusing producers. It blocks when all pool
// batches are in flight — that is the backpressure bounding memory —
// but never past cancellation of the processor's context, which it
// reports as the context's error.
func (p *StreamProcessor) Add(d *sflow.Datagram) error {
	if err := p.ctx.Err(); err != nil {
		return err
	}
	b := p.cur
	if b == nil {
		select {
		case b = <-p.free:
		case <-p.ctx.Done():
			return p.ctx.Err()
		}
		p.cur = b
	}
	for i := range d.Flows {
		fs := d.Flows[i]
		h := fs.Raw.Header
		off := len(b.arena)
		b.arena = append(b.arena, h...)
		fs.Raw.Header = b.arena[off:len(b.arena):len(b.arena)]
		b.flows = append(b.flows, fs)
	}
	if len(b.flows) >= p.batchSamples {
		p.dispatch()
	}
	return nil
}

// dispatch hands the current batch to the workers and the merger. The
// order channel's capacity equals the pool size, so pushing there never
// blocks for a batch obtained from the pool.
func (p *StreamProcessor) dispatch() {
	b := p.cur
	p.cur = nil
	if b == nil {
		return
	}
	if len(b.flows) == 0 {
		p.free <- b
		return
	}
	if p.m != nil {
		p.m.Batches.Inc()
		b.start = time.Now()
		p.m.QueueDepth.Set(int64(len(p.jobs) + 1))
	}
	if p.order == nil {
		// Sharded mode: stamp the batch's global stream position. Batches
		// are dispatched by the single producer in fill order, so seqBase
		// is monotone in stream order even though batches complete out of
		// order on the workers.
		b.seqBase = p.sampleSeq
		p.sampleSeq += uint64(len(b.flows))
		p.jobs <- b
		return
	}
	p.order <- b
	p.jobs <- b
}

// Close flushes the final batch, drains all in-flight work and returns
// the merged counts. The observer will not be called again after Close
// returns. Close is idempotent, and safe to call after cancellation —
// whatever was dispatched before the cancel still merges.
func (p *StreamProcessor) Close() Counts {
	if !p.closed {
		p.closed = true
		p.dispatch()
		close(p.jobs)
		p.workerWG.Wait()
		if p.order != nil {
			close(p.order)
			<-p.mergeDone
		}
		// Sharded mode: fold the per-worker tallies. Counts fields are
		// additive, so the sum is independent of shard assignment.
		for i := range p.workerCounts {
			p.counts.add(&p.workerCounts[i])
		}
	}
	return p.counts
}

// add folds another tally into c field by field.
func (c *Counts) add(o *Counts) {
	c.Total += o.Total
	c.Undecodable += o.Undecodable
	c.NonIPv4 += o.NonIPv4
	c.Local += o.Local
	c.NonTCPUDP += o.NonTCPUDP
	c.PeeringTCP += o.PeeringTCP
	c.PeeringUDP += o.PeeringUDP
	c.PanicQuarantined += o.PanicQuarantined
	c.TotalBytes += o.TotalBytes
	c.PeeringTCPBytes += o.PeeringTCPBytes
	c.PeeringUDPBytes += o.PeeringUDPBytes
}

// ProcessParallel drains a datagram source through a StreamProcessor:
// the same contract and the same (deterministic, input-ordered) results
// as Process, but with decoding and classification spread over workers
// goroutines. With workers <= 1 it runs sequentially on the caller's
// goroutine. Either way the drain honours ctx (nil means Background):
// cancellation stops consuming the source within one datagram and
// returns the tallies accumulated so far alongside the context error.
// m may be nil to run uninstrumented.
func ProcessParallel(ctx context.Context, src DatagramSource, members MemberResolver, workers int, fn func(*Record), m *Metrics) (Counts, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 1 {
		cls := NewClassifier(members)
		cls.SetMetrics(m)
		var counts Counts
		var d sflow.Datagram
		for {
			if err := ctx.Err(); err != nil {
				return counts, err
			}
			err := src.Next(&d)
			if err == io.EOF {
				return counts, nil
			}
			if err != nil {
				return counts, err
			}
			cls.ClassifyDatagram(&d, &counts, fn)
		}
	}
	p := NewStreamProcessor(ctx, members, workers, fn, m)
	return drainInto(p, src)
}

// ProcessSharded drains a datagram source through the sharded (merge-
// free) streaming mode: classification and observation both spread over
// workers goroutines, with obs receiving each worker's index and every
// sample's global stream position. Aggregates built from the calls are
// deterministic as long as the observer's per-IP state merges
// order-independently (webserver.Identifier's sharded form does).
// With workers <= 1 it runs sequentially on the caller's goroutine,
// still passing stream positions. The drain honours ctx like
// ProcessParallel; m may be nil.
func ProcessSharded(ctx context.Context, src DatagramSource, members MemberResolver, workers int, obs ShardObserver, m *Metrics) (Counts, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 1 {
		cls := NewClassifier(members)
		cls.SetMetrics(m)
		var counts Counts
		var seq uint64
		fn := func(rec *Record) {
			if obs != nil {
				obs(0, rec, seq)
			}
			seq++
		}
		var d sflow.Datagram
		for {
			if err := ctx.Err(); err != nil {
				return counts, err
			}
			err := src.Next(&d)
			if err == io.EOF {
				return counts, nil
			}
			if err != nil {
				return counts, err
			}
			cls.ClassifyDatagram(&d, &counts, fn)
		}
	}
	p := NewShardedStreamProcessor(ctx, members, workers, obs, m)
	return drainInto(p, src)
}

// drainInto feeds every datagram of src into p and closes it, in all
// outcomes returning the merged tallies.
func drainInto(p *StreamProcessor, src DatagramSource) (Counts, error) {
	var d sflow.Datagram
	for {
		err := src.Next(&d)
		if err == io.EOF {
			return p.Close(), nil
		}
		if err != nil {
			counts := p.Close()
			return counts, err
		}
		if err := p.Add(&d); err != nil {
			counts := p.Close()
			return counts, err
		}
	}
}
