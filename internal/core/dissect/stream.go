package dissect

import (
	"context"
	"io"
	"sync"
	"time"

	"ixplens/internal/sflow"
)

// Streaming dissection. The buffered path (SliceSource + Process) holds
// an entire week of datagrams in memory before the first sample is
// classified; the StreamProcessor instead classifies samples while the
// capture is still being produced, holding only a bounded number of
// in-flight batches. A producer (the sFlow collector's emit callback, a
// capture-file reader, a UDP receiver) pushes datagrams in with Add; a
// pool of workers — each owning its own Classifier and scratch Record
// slice — decodes and classifies them in parallel; a single merger
// goroutine re-establishes input order and invokes the observer
// callback, so observers see exactly the sequence a sequential Process
// call would deliver. Results are therefore bit-identical to the
// buffered path, deterministic, and produced with O(batch) memory
// instead of O(week).
//
// Two robustness properties ride on top of the ordering machinery:
//
//   - Cancellation: the processor carries a context. Add fails fast once
//     the context is cancelled — including while blocked waiting for a
//     free batch — so a producer unwinds within one batch instead of
//     deadlocking against a pipeline that stopped consuming.
//   - Panic isolation: a panic inside a classifier worker (a poisoned
//     datagram hitting a buggy resolver) or inside the observer callback
//     quarantines the affected batch — its samples are counted in
//     Counts.PanicQuarantined and reported via metrics — instead of
//     crashing the whole run.

const (
	// defaultBatchSamples is how many flow samples ride in one work unit.
	defaultBatchSamples = 256
	// batchesPerWorker sizes the recycling pool; together with the batch
	// size it bounds the processor's peak memory.
	batchesPerWorker = 2
)

// streamBatch is one unit of work: a contiguous run of flow samples
// (with their header bytes copied into a batch-owned arena) plus the
// records the classifier worker fills in.
type streamBatch struct {
	flows []sflow.FlowSample
	arena []byte
	recs  []Record
	done  chan struct{} // signaled by the worker when recs are ready
	start time.Time     // dispatch time, set only when metrics are on
	// quarantined marks a batch whose classification panicked; the
	// merger counts its samples instead of delivering them.
	quarantined bool
}

func (b *streamBatch) reset() {
	b.flows = b.flows[:0]
	b.arena = b.arena[:0]
	b.recs = b.recs[:0]
	b.quarantined = false
}

// StreamProcessor classifies a datagram stream with bounded memory.
// Add may be used directly as an ixp.Collector sink. The observer fn is
// invoked from a single goroutine, in exact input order, with records
// that are only valid for the duration of the callback (the same
// contract as Process). Close flushes the final partial batch, waits
// for all in-flight work and returns the merged cascade tallies.
type StreamProcessor struct {
	ctx          context.Context
	fn           func(*Record)
	batchSamples int
	m            *Metrics

	jobs  chan *streamBatch // to the classifier workers
	order chan *streamBatch // to the merger, in dispatch order
	free  chan *streamBatch // recycled batches, bounds memory

	cur    *streamBatch
	closed bool

	counts    Counts
	workerWG  sync.WaitGroup
	mergeDone chan struct{}
}

// NewStreamProcessor starts workers classifier goroutines (plus one
// merger) against the given member resolver. workers below 1 is treated
// as 1. fn may be nil to only tally the cascade; m may be nil to run
// uninstrumented. ctx may be nil (treated as context.Background());
// once it is cancelled, Add returns the context error — in-flight
// batches still drain through Close.
func NewStreamProcessor(ctx context.Context, members MemberResolver, workers int, fn func(*Record), m *Metrics) *StreamProcessor {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	pool := workers*batchesPerWorker + 2
	p := &StreamProcessor{
		ctx:          ctx,
		fn:           fn,
		batchSamples: defaultBatchSamples,
		m:            m,
		jobs:         make(chan *streamBatch, pool),
		order:        make(chan *streamBatch, pool),
		free:         make(chan *streamBatch, pool),
		mergeDone:    make(chan struct{}),
	}
	for i := 0; i < pool; i++ {
		p.free <- &streamBatch{done: make(chan struct{}, 1)}
	}
	for i := 0; i < workers; i++ {
		p.workerWG.Add(1)
		go p.worker(members)
	}
	go p.merge()
	return p
}

func (p *StreamProcessor) worker(members MemberResolver) {
	defer p.workerWG.Done()
	cls := NewClassifier(members)
	cls.SetMetrics(p.m)
	for b := range p.jobs {
		classifyBatch(cls, b)
		b.done <- struct{}{}
	}
}

// classifyBatch fills b.recs from b.flows, flagging the batch as
// quarantined instead of unwinding if classification panics. The done
// signal is the caller's job, so a panicking batch still reaches the
// merger and the pipeline keeps flowing.
func classifyBatch(cls *Classifier, b *streamBatch) {
	defer func() {
		if r := recover(); r != nil {
			b.quarantined = true
		}
	}()
	if cap(b.recs) < len(b.flows) {
		b.recs = make([]Record, len(b.flows))
	}
	b.recs = b.recs[:len(b.flows)]
	for i := range b.flows {
		cls.Classify(&b.flows[i], &b.recs[i])
	}
}

func (p *StreamProcessor) merge() {
	defer close(p.mergeDone)
	for b := range p.order {
		<-b.done
		if b.quarantined {
			p.quarantine(len(b.flows))
		} else {
			p.deliver(b)
		}
		if p.m != nil {
			p.m.BatchNanos.ObserveSince(b.start)
			p.m.QueueDepth.Set(int64(len(p.jobs)))
		}
		b.reset()
		p.free <- b
	}
}

// deliver hands a classified batch to the observer, in order, with
// panic isolation: if the callback panics, the current record and the
// batch's remaining records are quarantined and merging continues with
// the next batch.
func (p *StreamProcessor) deliver(b *streamBatch) {
	i := 0
	defer func() {
		if r := recover(); r != nil {
			p.quarantine(len(b.recs) - i)
		}
	}()
	for ; i < len(b.recs); i++ {
		if p.fn != nil {
			p.fn(&b.recs[i])
		}
		p.counts.Tally(&b.recs[i])
	}
}

func (p *StreamProcessor) quarantine(n int) {
	p.counts.PanicQuarantined += n
	if p.m != nil {
		p.m.PanicQuarantined.Add(uint64(n))
	}
}

// Add copies the datagram's flow samples (header bytes included) into
// the current batch and dispatches full batches to the workers. The
// datagram only needs to stay valid for the duration of the call, so
// Add composes with buffer-reusing producers. It blocks when all pool
// batches are in flight — that is the backpressure bounding memory —
// but never past cancellation of the processor's context, which it
// reports as the context's error.
func (p *StreamProcessor) Add(d *sflow.Datagram) error {
	if err := p.ctx.Err(); err != nil {
		return err
	}
	b := p.cur
	if b == nil {
		select {
		case b = <-p.free:
		case <-p.ctx.Done():
			return p.ctx.Err()
		}
		p.cur = b
	}
	for i := range d.Flows {
		fs := d.Flows[i]
		h := fs.Raw.Header
		off := len(b.arena)
		b.arena = append(b.arena, h...)
		fs.Raw.Header = b.arena[off:len(b.arena):len(b.arena)]
		b.flows = append(b.flows, fs)
	}
	if len(b.flows) >= p.batchSamples {
		p.dispatch()
	}
	return nil
}

// dispatch hands the current batch to the workers and the merger. The
// order channel's capacity equals the pool size, so pushing there never
// blocks for a batch obtained from the pool.
func (p *StreamProcessor) dispatch() {
	b := p.cur
	p.cur = nil
	if b == nil {
		return
	}
	if len(b.flows) == 0 {
		p.free <- b
		return
	}
	if p.m != nil {
		p.m.Batches.Inc()
		b.start = time.Now()
		p.m.QueueDepth.Set(int64(len(p.jobs) + 1))
	}
	p.order <- b
	p.jobs <- b
}

// Close flushes the final batch, drains all in-flight work and returns
// the merged counts. The observer will not be called again after Close
// returns. Close is idempotent, and safe to call after cancellation —
// whatever was dispatched before the cancel still merges.
func (p *StreamProcessor) Close() Counts {
	if !p.closed {
		p.closed = true
		p.dispatch()
		close(p.jobs)
		p.workerWG.Wait()
		close(p.order)
		<-p.mergeDone
	}
	return p.counts
}

// ProcessParallel drains a datagram source through a StreamProcessor:
// the same contract and the same (deterministic, input-ordered) results
// as Process, but with decoding and classification spread over workers
// goroutines. With workers <= 1 it runs sequentially on the caller's
// goroutine. Either way the drain honours ctx (nil means Background):
// cancellation stops consuming the source within one datagram and
// returns the tallies accumulated so far alongside the context error.
// m may be nil to run uninstrumented.
func ProcessParallel(ctx context.Context, src DatagramSource, members MemberResolver, workers int, fn func(*Record), m *Metrics) (Counts, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 1 {
		cls := NewClassifier(members)
		cls.SetMetrics(m)
		var counts Counts
		var d sflow.Datagram
		for {
			if err := ctx.Err(); err != nil {
				return counts, err
			}
			err := src.Next(&d)
			if err == io.EOF {
				return counts, nil
			}
			if err != nil {
				return counts, err
			}
			cls.ClassifyDatagram(&d, &counts, fn)
		}
	}
	p := NewStreamProcessor(ctx, members, workers, fn, m)
	var d sflow.Datagram
	for {
		err := src.Next(&d)
		if err == io.EOF {
			return p.Close(), nil
		}
		if err != nil {
			counts := p.Close()
			return counts, err
		}
		if err := p.Add(&d); err != nil {
			counts := p.Close()
			return counts, err
		}
	}
}
