package dissect

import (
	"context"
	"testing"

	"ixplens/internal/obs"
	"ixplens/internal/packet"
	"ixplens/internal/sflow"
)

func TestClassifyZeroRateAndTruncation(t *testing.T) {
	cls := NewClassifier(fakeMembers{})
	b := packet.NewBuilder(256)
	eth := packet.Ethernet{Src: packet.MAC{2}, Dst: packet.MAC{4}}
	ip := packet.IPv4Header{TTL: 60, Src: packet.MakeIPv4(1, 2, 3, 4), Dst: packet.MakeIPv4(5, 6, 7, 8)}
	fr := b.BuildTCPv4(eth, ip, packet.TCPHeader{SrcPort: 80, DstPort: 5555}, []byte("x"))

	var rec Record
	// SamplingRate 0 means unsampled: the sample stands for exactly its
	// own frame, for every class including undecodable.
	fs := sflow.FlowSample{
		SamplingRate: 0, InputIf: 1001, OutputIf: 1002, HasRaw: true,
		Raw: sflow.RawPacketHeader{Protocol: sflow.HeaderProtoEthernet, FrameLength: 1400, Header: append([]byte(nil), fr...)},
	}
	if got := cls.Classify(&fs, &rec); got != ClassPeeringTCP {
		t.Fatalf("zero-rate class = %v", got)
	}
	if rec.Bytes != 1400 {
		t.Fatalf("zero-rate bytes = %d, want frame length", rec.Bytes)
	}

	// Zero-length header snapshot: undecodable, bytes still accounted.
	fs = sflow.FlowSample{
		SamplingRate: 100, InputIf: 1001, OutputIf: 1002, HasRaw: true,
		Raw: sflow.RawPacketHeader{Protocol: sflow.HeaderProtoEthernet, FrameLength: 900, Header: nil},
	}
	if got := cls.Classify(&fs, &rec); got != ClassUndecodable {
		t.Fatalf("empty-header class = %v", got)
	}
	if rec.Bytes != 900*100 {
		t.Fatalf("empty-header bytes = %d", rec.Bytes)
	}

	// Snapshot ending mid-VLAN tag: the network layer is unreachable, so
	// the frame is undecodable, not non-IPv4.
	vlanStub := append(append([]byte(nil), fr[:12]...), 0x81, 0x00)
	fs = sflow.FlowSample{
		SamplingRate: 100, InputIf: 1001, OutputIf: 1002, HasRaw: true,
		Raw: sflow.RawPacketHeader{Protocol: sflow.HeaderProtoEthernet, FrameLength: 1400, Header: vlanStub},
	}
	if got := cls.Classify(&fs, &rec); got != ClassUndecodable {
		t.Fatalf("mid-VLAN truncation class = %v", got)
	}

	// Snapshot ending mid-IPv4 header: same rule.
	ipStub := append(append([]byte(nil), fr[:12]...), 0x08, 0x00, 0x45, 0x00)
	fs.Raw.Header = ipStub
	if got := cls.Classify(&fs, &rec); got != ClassUndecodable {
		t.Fatalf("mid-IP truncation class = %v", got)
	}
}

// TestSliceSourceMutationSafety replays the anonymizer situation: a
// consumer that rewrites the datagram it was handed — header bytes and
// sample fields alike — must not corrupt what a second pass reads.
func TestSliceSourceMutationSafety(t *testing.T) {
	_, fabric, src, _ := buildWeek(t, 45)
	cls := NewClassifier(fabric)
	first, err := Process(src, cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	src.Reset()

	// Mutating pass: scribble over everything Next hands out.
	var d sflow.Datagram
	for src.Next(&d) == nil {
		for i := range d.Flows {
			for k := range d.Flows[i].Raw.Header {
				d.Flows[i].Raw.Header[k] = 0xAA
			}
			d.Flows[i].InputIf = 0
			d.Flows[i].SamplingRate = 0
		}
		d.Flows = nil
	}
	src.Reset()

	second, err := Process(src, NewClassifier(fabric), nil)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("counts diverged after mutating consumer:\nfirst  %+v\nsecond %+v", first, second)
	}
	if second.Undecodable != 0 {
		t.Fatalf("%d undecodable frames after mutation pass", second.Undecodable)
	}
}

// TestProcessParallelMatchesSequential checks the ordered merge: the
// parallel path must deliver identical counts AND the identical record
// sequence, because downstream observers are order-dependent.
func TestProcessParallelMatchesSequential(t *testing.T) {
	_, fabric, src, _ := buildWeek(t, 45)

	type key struct {
		class    Class
		src, dst packet.IPv4Addr
		bytes    uint64
	}
	var seqRecs []key
	seqCounts, err := Process(src, NewClassifier(fabric), func(rec *Record) {
		seqRecs = append(seqRecs, key{rec.Class, rec.SrcIP, rec.DstIP, rec.Bytes})
	})
	if err != nil {
		t.Fatal(err)
	}
	src.Reset()

	var parRecs []key
	reg := obs.NewRegistry()
	parCounts, err := ProcessParallel(context.Background(), src, fabric, 4, func(rec *Record) {
		parRecs = append(parRecs, key{rec.Class, rec.SrcIP, rec.DstIP, rec.Bytes})
	}, NewMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if seqCounts != parCounts {
		t.Fatalf("counts diverged:\nseq %+v\npar %+v", seqCounts, parCounts)
	}
	// The shared metrics bundle must agree with the merged tallies even
	// though every worker classifier updated it concurrently.
	if got := reg.Counter("dissect_records_total").Value(); got != uint64(parCounts.Total) {
		t.Fatalf("metrics counted %d records, tallies say %d", got, parCounts.Total)
	}
	if got := reg.Counter("dissect_peering_total").Value(); got != uint64(parCounts.Peering()) {
		t.Fatalf("metrics counted %d peering, tallies say %d", got, parCounts.Peering())
	}
	if reg.Counter("dissect_batches_total").Value() == 0 {
		t.Fatal("no batches recorded")
	}
	if len(seqRecs) != len(parRecs) {
		t.Fatalf("record count diverged: %d vs %d", len(seqRecs), len(parRecs))
	}
	for i := range seqRecs {
		if seqRecs[i] != parRecs[i] {
			t.Fatalf("record %d diverged: seq %+v, par %+v", i, seqRecs[i], parRecs[i])
		}
	}
}

// TestStreamProcessorSmallBatches drives partial batches and an empty
// close through the processor.
func TestStreamProcessorSmallBatches(t *testing.T) {
	empty := NewStreamProcessor(context.Background(), fakeMembers{}, 2, nil, nil)
	if counts := empty.Close(); counts.Total != 0 {
		t.Fatalf("empty close counted %d", counts.Total)
	}
	// Close is idempotent.
	if counts := empty.Close(); counts.Total != 0 {
		t.Fatalf("second close counted %d", counts.Total)
	}

	sp := NewStreamProcessor(context.Background(), fakeMembers{}, 2, nil, nil)
	d := sflow.Datagram{Flows: []sflow.FlowSample{{
		SamplingRate: 10, InputIf: 1001, OutputIf: 1002, HasRaw: true,
		Raw: sflow.RawPacketHeader{Protocol: sflow.HeaderProtoEthernet, FrameLength: 100, Header: []byte{1, 2, 3}},
	}}}
	for i := 0; i < 3; i++ {
		if err := sp.Add(&d); err != nil {
			t.Fatal(err)
		}
	}
	counts := sp.Close()
	if counts.Total != 3 || counts.Undecodable != 3 {
		t.Fatalf("counts = %+v", counts)
	}
}

// panickyMembers panics on the Nth lookup, then behaves like
// fakeMembers — the poisoned-datagram scenario.
type panickyMembers struct {
	n  *int
	at int
}

func (p panickyMembers) MemberOfPort(port uint32) (int32, bool) {
	*p.n++
	if *p.n == p.at {
		panic("poisoned datagram")
	}
	return fakeMembers{}.MemberOfPort(port)
}

// peeringDatagram builds a datagram with n decodable peering TCP samples.
func peeringDatagram(t *testing.T, n int) *sflow.Datagram {
	t.Helper()
	b := packet.NewBuilder(256)
	eth := packet.Ethernet{Src: packet.MAC{2}, Dst: packet.MAC{4}}
	ip := packet.IPv4Header{TTL: 60, Src: packet.MakeIPv4(1, 2, 3, 4), Dst: packet.MakeIPv4(5, 6, 7, 8)}
	fr := b.BuildTCPv4(eth, ip, packet.TCPHeader{SrcPort: 80, DstPort: 5555}, []byte("x"))
	d := &sflow.Datagram{}
	for i := 0; i < n; i++ {
		d.Flows = append(d.Flows, sflow.FlowSample{
			SamplingRate: 1000, InputIf: 1001, OutputIf: 1002, HasRaw: true,
			Raw: sflow.RawPacketHeader{Protocol: sflow.HeaderProtoEthernet, FrameLength: uint32(len(fr)), Header: append([]byte(nil), fr...)},
		})
	}
	return d
}

// TestClassifyDatagramQuarantine drives a panic out of the resolver mid
// datagram: the samples processed before the panic stay tallied, the
// rest are quarantined, and nothing is double-counted.
func TestClassifyDatagramQuarantine(t *testing.T) {
	lookups := 0
	// Each peering sample costs two lookups (input and output port);
	// panicking on lookup 5 poisons the third sample.
	cls := NewClassifier(panickyMembers{n: &lookups, at: 5})
	reg := obs.NewRegistry()
	cls.SetMetrics(NewMetrics(reg))
	var counts Counts
	cls.ClassifyDatagram(peeringDatagram(t, 8), &counts, nil)
	if counts.Total != 2 {
		t.Fatalf("tallied %d samples before the panic, want 2", counts.Total)
	}
	if counts.PanicQuarantined != 6 {
		t.Fatalf("quarantined %d samples, want 6", counts.PanicQuarantined)
	}
	if got := reg.Counter("dissect_panic_quarantined_total").Value(); got != 6 {
		t.Fatalf("metric reported %d quarantined, want 6", got)
	}
	// The classifier stays usable afterwards.
	cls2 := NewClassifier(fakeMembers{})
	var counts2 Counts
	cls2.ClassifyDatagram(peeringDatagram(t, 3), &counts2, nil)
	if counts2.Total != 3 || counts2.PanicQuarantined != 0 {
		t.Fatalf("clean pass counts = %+v", counts2)
	}
}

// TestClassifyDatagramObserverPanic panics inside the observer: the
// sample whose callback blew up must be quarantined, not half-tallied.
func TestClassifyDatagramObserverPanic(t *testing.T) {
	cls := NewClassifier(fakeMembers{})
	var counts Counts
	seen := 0
	cls.ClassifyDatagram(peeringDatagram(t, 5), &counts, func(rec *Record) {
		seen++
		if seen == 2 {
			panic("observer bug")
		}
	})
	if counts.Total != 1 {
		t.Fatalf("tallied %d, want 1 (sample 2 panicked mid-callback)", counts.Total)
	}
	if counts.PanicQuarantined != 4 {
		t.Fatalf("quarantined %d, want 4", counts.PanicQuarantined)
	}
}

// TestStreamProcessorQuarantine poisons one worker lookup: exactly one
// batch is quarantined, every other sample flows through, and the split
// is conserved.
func TestStreamProcessorQuarantine(t *testing.T) {
	lookups := 0
	sp := NewStreamProcessor(context.Background(), panickyMembers{n: &lookups, at: 101}, 1, nil, nil)
	const total = 600 // > 2 batches of 256
	for i := 0; i < total/10; i++ {
		if err := sp.Add(peeringDatagram(t, 10)); err != nil {
			t.Fatal(err)
		}
	}
	counts := sp.Close()
	if counts.PanicQuarantined == 0 {
		t.Fatal("no samples quarantined")
	}
	// Batches dispatch at >= defaultBatchSamples, so a batch can
	// overshoot by up to one datagram (10 samples here).
	if counts.PanicQuarantined > defaultBatchSamples+10 {
		t.Fatalf("quarantined %d, more than one batch", counts.PanicQuarantined)
	}
	if counts.Total+counts.PanicQuarantined != total {
		t.Fatalf("conservation broken: %d tallied + %d quarantined != %d",
			counts.Total, counts.PanicQuarantined, total)
	}
}

// TestStreamProcessorObserverPanicQuarantine panics in the merge-side
// observer; the remainder of that batch quarantines, later batches
// still deliver.
func TestStreamProcessorObserverPanicQuarantine(t *testing.T) {
	seen := 0
	sp := NewStreamProcessor(context.Background(), fakeMembers{}, 2, func(rec *Record) {
		seen++
		if seen == 10 {
			panic("observer bug")
		}
	}, nil)
	const total = 600
	for i := 0; i < total/10; i++ {
		if err := sp.Add(peeringDatagram(t, 10)); err != nil {
			t.Fatal(err)
		}
	}
	counts := sp.Close()
	if counts.PanicQuarantined == 0 {
		t.Fatal("no samples quarantined")
	}
	if counts.Total+counts.PanicQuarantined != total {
		t.Fatalf("conservation broken: %d + %d != %d", counts.Total, counts.PanicQuarantined, total)
	}
	if counts.Total < total-defaultBatchSamples {
		t.Fatalf("only %d delivered; later batches must survive an observer panic", counts.Total)
	}
}

// TestStreamProcessorCancellation cancels mid-stream: Add starts
// failing with the context error, and Close still drains cleanly.
func TestStreamProcessorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sp := NewStreamProcessor(ctx, fakeMembers{}, 2, nil, nil)
	if err := sp.Add(peeringDatagram(t, 10)); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := sp.Add(peeringDatagram(t, 10)); err != context.Canceled {
		t.Fatalf("Add after cancel = %v, want context.Canceled", err)
	}
	counts := sp.Close()
	if counts.Total != 10 {
		t.Fatalf("pre-cancel samples lost: counts = %+v", counts)
	}
}

// TestProcessParallelCancelled runs both drain paths against an
// already-cancelled context: each must return the context error without
// consuming the source to EOF.
func TestProcessParallelCancelled(t *testing.T) {
	_, fabric, src, _ := buildWeek(t, 45)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		src.Reset()
		_, err := ProcessParallel(ctx, src, fabric, workers, nil, nil)
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}
