package dissect

import (
	"testing"

	"ixplens/internal/obs"
	"ixplens/internal/packet"
	"ixplens/internal/sflow"
)

func TestClassifyZeroRateAndTruncation(t *testing.T) {
	cls := NewClassifier(fakeMembers{})
	b := packet.NewBuilder(256)
	eth := packet.Ethernet{Src: packet.MAC{2}, Dst: packet.MAC{4}}
	ip := packet.IPv4Header{TTL: 60, Src: packet.MakeIPv4(1, 2, 3, 4), Dst: packet.MakeIPv4(5, 6, 7, 8)}
	fr := b.BuildTCPv4(eth, ip, packet.TCPHeader{SrcPort: 80, DstPort: 5555}, []byte("x"))

	var rec Record
	// SamplingRate 0 means unsampled: the sample stands for exactly its
	// own frame, for every class including undecodable.
	fs := sflow.FlowSample{
		SamplingRate: 0, InputIf: 1001, OutputIf: 1002, HasRaw: true,
		Raw: sflow.RawPacketHeader{Protocol: sflow.HeaderProtoEthernet, FrameLength: 1400, Header: append([]byte(nil), fr...)},
	}
	if got := cls.Classify(&fs, &rec); got != ClassPeeringTCP {
		t.Fatalf("zero-rate class = %v", got)
	}
	if rec.Bytes != 1400 {
		t.Fatalf("zero-rate bytes = %d, want frame length", rec.Bytes)
	}

	// Zero-length header snapshot: undecodable, bytes still accounted.
	fs = sflow.FlowSample{
		SamplingRate: 100, InputIf: 1001, OutputIf: 1002, HasRaw: true,
		Raw: sflow.RawPacketHeader{Protocol: sflow.HeaderProtoEthernet, FrameLength: 900, Header: nil},
	}
	if got := cls.Classify(&fs, &rec); got != ClassUndecodable {
		t.Fatalf("empty-header class = %v", got)
	}
	if rec.Bytes != 900*100 {
		t.Fatalf("empty-header bytes = %d", rec.Bytes)
	}

	// Snapshot ending mid-VLAN tag: the network layer is unreachable, so
	// the frame is undecodable, not non-IPv4.
	vlanStub := append(append([]byte(nil), fr[:12]...), 0x81, 0x00)
	fs = sflow.FlowSample{
		SamplingRate: 100, InputIf: 1001, OutputIf: 1002, HasRaw: true,
		Raw: sflow.RawPacketHeader{Protocol: sflow.HeaderProtoEthernet, FrameLength: 1400, Header: vlanStub},
	}
	if got := cls.Classify(&fs, &rec); got != ClassUndecodable {
		t.Fatalf("mid-VLAN truncation class = %v", got)
	}

	// Snapshot ending mid-IPv4 header: same rule.
	ipStub := append(append([]byte(nil), fr[:12]...), 0x08, 0x00, 0x45, 0x00)
	fs.Raw.Header = ipStub
	if got := cls.Classify(&fs, &rec); got != ClassUndecodable {
		t.Fatalf("mid-IP truncation class = %v", got)
	}
}

// TestSliceSourceMutationSafety replays the anonymizer situation: a
// consumer that rewrites the datagram it was handed — header bytes and
// sample fields alike — must not corrupt what a second pass reads.
func TestSliceSourceMutationSafety(t *testing.T) {
	_, fabric, src, _ := buildWeek(t, 45)
	cls := NewClassifier(fabric)
	first, err := Process(src, cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	src.Reset()

	// Mutating pass: scribble over everything Next hands out.
	var d sflow.Datagram
	for src.Next(&d) == nil {
		for i := range d.Flows {
			for k := range d.Flows[i].Raw.Header {
				d.Flows[i].Raw.Header[k] = 0xAA
			}
			d.Flows[i].InputIf = 0
			d.Flows[i].SamplingRate = 0
		}
		d.Flows = nil
	}
	src.Reset()

	second, err := Process(src, NewClassifier(fabric), nil)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("counts diverged after mutating consumer:\nfirst  %+v\nsecond %+v", first, second)
	}
	if second.Undecodable != 0 {
		t.Fatalf("%d undecodable frames after mutation pass", second.Undecodable)
	}
}

// TestProcessParallelMatchesSequential checks the ordered merge: the
// parallel path must deliver identical counts AND the identical record
// sequence, because downstream observers are order-dependent.
func TestProcessParallelMatchesSequential(t *testing.T) {
	_, fabric, src, _ := buildWeek(t, 45)

	type key struct {
		class    Class
		src, dst packet.IPv4Addr
		bytes    uint64
	}
	var seqRecs []key
	seqCounts, err := Process(src, NewClassifier(fabric), func(rec *Record) {
		seqRecs = append(seqRecs, key{rec.Class, rec.SrcIP, rec.DstIP, rec.Bytes})
	})
	if err != nil {
		t.Fatal(err)
	}
	src.Reset()

	var parRecs []key
	reg := obs.NewRegistry()
	parCounts, err := ProcessParallel(src, fabric, 4, func(rec *Record) {
		parRecs = append(parRecs, key{rec.Class, rec.SrcIP, rec.DstIP, rec.Bytes})
	}, NewMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if seqCounts != parCounts {
		t.Fatalf("counts diverged:\nseq %+v\npar %+v", seqCounts, parCounts)
	}
	// The shared metrics bundle must agree with the merged tallies even
	// though every worker classifier updated it concurrently.
	if got := reg.Counter("dissect_records_total").Value(); got != uint64(parCounts.Total) {
		t.Fatalf("metrics counted %d records, tallies say %d", got, parCounts.Total)
	}
	if got := reg.Counter("dissect_peering_total").Value(); got != uint64(parCounts.Peering()) {
		t.Fatalf("metrics counted %d peering, tallies say %d", got, parCounts.Peering())
	}
	if reg.Counter("dissect_batches_total").Value() == 0 {
		t.Fatal("no batches recorded")
	}
	if len(seqRecs) != len(parRecs) {
		t.Fatalf("record count diverged: %d vs %d", len(seqRecs), len(parRecs))
	}
	for i := range seqRecs {
		if seqRecs[i] != parRecs[i] {
			t.Fatalf("record %d diverged: seq %+v, par %+v", i, seqRecs[i], parRecs[i])
		}
	}
}

// TestStreamProcessorSmallBatches drives partial batches and an empty
// close through the processor.
func TestStreamProcessorSmallBatches(t *testing.T) {
	empty := NewStreamProcessor(fakeMembers{}, 2, nil, nil)
	if counts := empty.Close(); counts.Total != 0 {
		t.Fatalf("empty close counted %d", counts.Total)
	}
	// Close is idempotent.
	if counts := empty.Close(); counts.Total != 0 {
		t.Fatalf("second close counted %d", counts.Total)
	}

	sp := NewStreamProcessor(fakeMembers{}, 2, nil, nil)
	d := sflow.Datagram{Flows: []sflow.FlowSample{{
		SamplingRate: 10, InputIf: 1001, OutputIf: 1002, HasRaw: true,
		Raw: sflow.RawPacketHeader{Protocol: sflow.HeaderProtoEthernet, FrameLength: 100, Header: []byte{1, 2, 3}},
	}}}
	for i := 0; i < 3; i++ {
		if err := sp.Add(&d); err != nil {
			t.Fatal(err)
		}
	}
	counts := sp.Close()
	if counts.Total != 3 || counts.Undecodable != 3 {
		t.Fatalf("counts = %+v", counts)
	}
}
