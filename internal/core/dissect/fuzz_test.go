// Fuzzing lives in the external test package: faultline (whose header
// mutators seed the corpus) imports dissect, so an internal test would
// be an import cycle.
package dissect_test

import (
	"testing"

	"ixplens/internal/core/dissect"
	"ixplens/internal/faultline"
	"ixplens/internal/packet"
	"ixplens/internal/sflow"
)

type fuzzMembers struct{}

func (fuzzMembers) MemberOfPort(port uint32) (int32, bool) {
	if port >= 1000 {
		return int32(port - 1000), true
	}
	return 0, false
}

// fuzzSeedFrames builds a few well-formed frames of each shape the
// classifier distinguishes, as the base material the fuzzer mutates.
func fuzzSeedFrames() [][]byte {
	b := packet.NewBuilder(512)
	eth := packet.Ethernet{Src: packet.MAC{2}, Dst: packet.MAC{4}}
	ip := packet.IPv4Header{TTL: 60, Src: packet.MakeIPv4(10, 1, 2, 3), Dst: packet.MakeIPv4(172, 16, 9, 9)}
	var out [][]byte
	add := func(fr []byte) { out = append(out, append([]byte(nil), fr...)) }
	add(b.BuildTCPv4(eth, ip, packet.TCPHeader{SrcPort: 80, DstPort: 40000}, []byte("HTTP/1.1 200 OK\r\n")))
	add(b.BuildTCPv4(eth, ip, packet.TCPHeader{SrcPort: 443, DstPort: 52000}, []byte{0x16, 0x03, 0x03}))
	add(b.BuildUDPv4(eth, ip, packet.UDPHeader{SrcPort: 53, DstPort: 33000}, []byte("dns")))
	return out
}

// FuzzClassify throws corrupted frame snapshots at the record
// extractor. The property under test is total robustness: whatever the
// wire carried — truncated mid-header, bit-flipped, or raw fuzzer
// garbage — Classify must neither panic nor tally bytes when the
// sample was undecodable under a zero frame length.
func FuzzClassify(f *testing.F) {
	for _, fr := range fuzzSeedFrames() {
		f.Add(fr, uint32(len(fr)), uint32(1001), uint32(1002))
		// The faultline mutators generate exactly the corruption the
		// chaos pipeline injects; seed a spread of both kinds.
		for key := uint64(1); key <= 8; key++ {
			trunc := faultline.TruncateHeader(append([]byte(nil), fr...), key*37)
			f.Add(trunc, uint32(len(fr)), uint32(1001), uint32(1002))
			flip := faultline.FlipHeaderBit(append([]byte(nil), fr...), key*101)
			f.Add(flip, uint32(len(fr)), uint32(1001), uint32(1002))
		}
	}
	f.Add([]byte{}, uint32(0), uint32(0), uint32(0))

	f.Fuzz(func(t *testing.T, header []byte, frameLen, inIf, outIf uint32) {
		cls := dissect.NewClassifier(fuzzMembers{})
		fs := sflow.FlowSample{
			SamplingRate: 1000, InputIf: inIf, OutputIf: outIf, HasRaw: true,
			Raw: sflow.RawPacketHeader{
				Protocol:    sflow.HeaderProtoEthernet,
				FrameLength: frameLen,
				Header:      header,
			},
		}
		var rec dissect.Record
		class := cls.Classify(&fs, &rec)
		if rec.Bytes != 0 && frameLen == 0 {
			t.Fatalf("class %v reported %d bytes from a zero-length frame", class, rec.Bytes)
		}
		// A second classification of the same sample must agree: the
		// extractor may not mutate its input.
		var rec2 dissect.Record
		if class2 := cls.Classify(&fs, &rec2); class2 != class {
			t.Fatalf("reclassification diverged: %v then %v", class, class2)
		}
		if rec2.Bytes != rec.Bytes || rec2.SrcIP != rec.SrcIP || rec2.DstIP != rec.DstIP ||
			rec2.SrcPort != rec.SrcPort || rec2.DstPort != rec.DstPort {
			t.Fatalf("records diverged on reclassification:\n%+v\n%+v", rec, rec2)
		}

		// The guarded path must swallow whatever the raw path did, and
		// tally exactly one sample.
		var counts dissect.Counts
		d := sflow.Datagram{Flows: []sflow.FlowSample{fs}}
		cls.ClassifyDatagram(&d, &counts, nil)
		if counts.Total+counts.PanicQuarantined != 1 {
			t.Fatalf("datagram of 1 sample tallied %d + quarantined %d", counts.Total, counts.PanicQuarantined)
		}
	})
}
