// Package dissect implements the paper's traffic dissection (Section
// 2.2.1, Figure 1): starting from raw sFlow records it peels off, in
// succession, all non-IPv4 traffic, everything that is not
// member-to-member or stays local, and all member-to-member IPv4 that is
// neither TCP nor UDP. What remains is the "peering traffic" that every
// later analysis works on.
package dissect

import (
	"fmt"
	"io"

	"ixplens/internal/packet"
	"ixplens/internal/sflow"
)

// Class is the filter bucket a sampled frame falls into.
type Class uint8

// Filter buckets, in cascade order.
const (
	// ClassUndecodable frames failed even Ethernet decoding.
	ClassUndecodable Class = iota
	// ClassNonIPv4 is native IPv6, ARP and other non-IPv4 traffic.
	ClassNonIPv4
	// ClassLocal is traffic that is not member-to-member (IXP
	// management plane, infrastructure ports).
	ClassLocal
	// ClassNonTCPUDP is member-to-member IPv4 that is neither TCP nor
	// UDP (ICMP, GRE, ESP, ...).
	ClassNonTCPUDP
	// ClassPeeringTCP and ClassPeeringUDP form the peering traffic.
	ClassPeeringTCP
	ClassPeeringUDP
)

// String names the bucket like Figure 1 does.
func (c Class) String() string {
	switch c {
	case ClassUndecodable:
		return "undecodable"
	case ClassNonIPv4:
		return "non-IPv4"
	case ClassLocal:
		return "local/non-member"
	case ClassNonTCPUDP:
		return "non-TCP/UDP"
	case ClassPeeringTCP:
		return "peering-TCP"
	case ClassPeeringUDP:
		return "peering-UDP"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// IsPeering reports whether the class survives the whole cascade.
func (c Class) IsPeering() bool { return c == ClassPeeringTCP || c == ClassPeeringUDP }

// Record is one classified sample. Payload aliases the decode buffer and
// is only valid during the callback that receives the record.
type Record struct {
	Class    Class
	SrcIP    packet.IPv4Addr
	DstIP    packet.IPv4Addr
	SrcPort  uint16
	DstPort  uint16
	Proto    packet.IPProto
	FrameLen uint32
	// Bytes is the traffic volume this sample stands for:
	// FrameLen × SamplingRate.
	Bytes uint64
	// InMember and OutMember are the member AS indices of the ports the
	// frame crossed (-1 when not a member port).
	InMember  int32
	OutMember int32
	// Payload is the captured transport payload prefix.
	Payload []byte
}

// Counts tallies the cascade, in samples and represented bytes.
type Counts struct {
	Total       int
	Undecodable int
	NonIPv4     int
	Local       int
	NonTCPUDP   int
	PeeringTCP  int
	PeeringUDP  int

	// PanicQuarantined counts samples that were never classified because
	// classification (or an observer callback) panicked on their batch:
	// the panic is recovered, the poisoned work quarantined and counted
	// here instead of killing the run. Quarantined samples are NOT
	// included in Total — they carry no trustworthy classification.
	PanicQuarantined int

	TotalBytes      uint64
	PeeringTCPBytes uint64
	PeeringUDPBytes uint64
}

// Peering returns the number of peering samples.
func (c *Counts) Peering() int { return c.PeeringTCP + c.PeeringUDP }

// PeeringShare is the fraction of samples surviving the cascade (the
// paper reports >98.5%).
func (c *Counts) PeeringShare() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Peering()) / float64(c.Total)
}

// TCPShare is the TCP fraction of peering bytes (82% in the paper).
func (c *Counts) TCPShare() float64 {
	tot := c.PeeringTCPBytes + c.PeeringUDPBytes
	if tot == 0 {
		return 0
	}
	return float64(c.PeeringTCPBytes) / float64(tot)
}

// MemberResolver maps a switch port to a member AS index.
type MemberResolver interface {
	MemberOfPort(port uint32) (int32, bool)
}

// Classifier applies the cascade to flow samples.
type Classifier struct {
	members MemberResolver
	frame   packet.Frame
	m       *Metrics
}

// NewClassifier builds a classifier using the fabric's port map.
func NewClassifier(members MemberResolver) *Classifier {
	return &Classifier{members: members}
}

// SetMetrics attaches an observability bundle (nil disables). Call it
// before the classifier starts classifying; the bundle itself is safe to
// share across classifiers.
func (c *Classifier) SetMetrics(m *Metrics) { c.m = m }

// Classify fills rec from one flow sample and returns its class.
func (c *Classifier) Classify(fs *sflow.FlowSample, rec *Record) Class {
	cl := c.classify(fs, rec)
	if c.m != nil {
		c.m.record(cl)
	}
	return cl
}

func (c *Classifier) classify(fs *sflow.FlowSample, rec *Record) Class {
	*rec = Record{InMember: -1, OutMember: -1}
	rec.FrameLen = fs.Raw.FrameLength
	// A rate of zero means the exporter did not subsample (or exported a
	// bogus rate); either way the sample stands for exactly itself.
	rate := uint64(fs.SamplingRate)
	if rate == 0 {
		rate = 1
	}
	rec.Bytes = uint64(fs.Raw.FrameLength) * rate
	if !fs.HasRaw || len(fs.Raw.Header) == 0 || packet.Decode(fs.Raw.Header, &c.frame) != nil {
		rec.Class = ClassUndecodable
		return rec.Class
	}
	f := &c.frame

	// Snapshots that end before the network layer is reached (mid-VLAN
	// tag, mid-IP header) carry no classifiable information either.
	if f.Truncated && !f.IsIPv4 && !f.IsIPv6 {
		rec.Class = ClassUndecodable
		return rec.Class
	}

	// Step 1: drop non-IPv4 (native IPv6, ARP, MPLS, ...).
	if !f.IsIPv4 {
		rec.Class = ClassNonIPv4
		return rec.Class
	}
	rec.SrcIP = f.IPv4.Src
	rec.DstIP = f.IPv4.Dst
	rec.Proto = f.IPv4.Protocol

	// Step 2: drop traffic that is not member-to-member or stays local.
	in, inOK := c.members.MemberOfPort(fs.InputIf)
	out, outOK := c.members.MemberOfPort(fs.OutputIf)
	if !inOK || !outOK || in == out {
		rec.Class = ClassLocal
		return rec.Class
	}
	rec.InMember, rec.OutMember = in, out

	// Step 3: drop member-to-member IPv4 that is not TCP or UDP.
	switch f.Transport {
	case packet.TransportTCP:
		rec.Class = ClassPeeringTCP
		rec.SrcPort, rec.DstPort = f.TCP.SrcPort, f.TCP.DstPort
	case packet.TransportUDP:
		rec.Class = ClassPeeringUDP
		rec.SrcPort, rec.DstPort = f.UDP.SrcPort, f.UDP.DstPort
	default:
		rec.Class = ClassNonTCPUDP
		return rec.Class
	}
	rec.Payload = f.Payload
	return rec.Class
}

// Tally adds a classified record to the counts.
func (c *Counts) Tally(rec *Record) {
	c.Total++
	c.TotalBytes += rec.Bytes
	switch rec.Class {
	case ClassUndecodable:
		c.Undecodable++
	case ClassNonIPv4:
		c.NonIPv4++
	case ClassLocal:
		c.Local++
	case ClassNonTCPUDP:
		c.NonTCPUDP++
	case ClassPeeringTCP:
		c.PeeringTCP++
		c.PeeringTCPBytes += rec.Bytes
	case ClassPeeringUDP:
		c.PeeringUDP++
		c.PeeringUDPBytes += rec.Bytes
	}
}

// DatagramSource yields sFlow datagrams, io.EOF at the end.
//
// Aliasing contract: the datagram filled by Next — including its
// Flows/Counters slices and the Raw.Header bytes they point to — is
// owned by the source and remains valid only until the following Next,
// Reset or release of the source. Consumers that need samples beyond
// that window must copy them. Consumers may freely mutate the handed-out
// datagram (the anonymizer rewrites header bytes in place); sources that
// support a second pass must not let such mutations leak into the data
// a later pass reads.
type DatagramSource interface {
	Next(*sflow.Datagram) error
}

// RewindableSource is a DatagramSource that supports additional passes.
// Reset rewinds to the beginning of the stream; the data seen by the
// next pass is pristine even if a previous consumer mutated the
// datagrams it was handed.
type RewindableSource interface {
	DatagramSource
	Reset()
}

// Process drains a datagram source through the classifier, invoking fn
// for every sample (of every class; fn filters on rec.Class). It returns
// the cascade tallies. A panic while classifying a datagram quarantines
// that datagram's remaining samples (see ClassifyDatagram) instead of
// propagating.
func Process(src DatagramSource, cls *Classifier, fn func(*Record)) (Counts, error) {
	var counts Counts
	var d sflow.Datagram
	for {
		err := src.Next(&d)
		if err == io.EOF {
			return counts, nil
		}
		if err != nil {
			return counts, err
		}
		cls.ClassifyDatagram(&d, &counts, fn)
	}
}

// ClassifyDatagram classifies every flow sample of one datagram,
// tallying into counts and invoking fn (which may be nil) per record —
// with panic isolation: if classifying a sample (or its fn callback)
// panics, the panic is recovered and the sample plus the datagram's
// remaining samples are quarantined into counts.PanicQuarantined
// instead of killing the caller. One poisoned datagram costs at most
// its own samples.
func (c *Classifier) ClassifyDatagram(d *sflow.Datagram, counts *Counts, fn func(*Record)) {
	i := 0
	defer func() {
		if r := recover(); r != nil {
			n := len(d.Flows) - i
			counts.PanicQuarantined += n
			if c.m != nil {
				c.m.PanicQuarantined.Add(uint64(n))
			}
		}
	}()
	var rec Record
	for ; i < len(d.Flows); i++ {
		c.Classify(&d.Flows[i], &rec)
		if fn != nil {
			fn(&rec)
		}
		// Tally only after the observer returned: a sample whose callback
		// panicked is quarantined, not half-counted.
		counts.Tally(&rec)
	}
}

// SliceSource adapts an in-memory datagram slice to a rewindable
// DatagramSource. It is the buffered, hold-a-whole-week-in-memory
// capture representation — useful for tests and for experiment runners
// that make many passes over one week; production paths should stream
// (see StreamProcessor and pipeline.ReplaySource) instead.
//
// Next hands out defensive copies backed by source-owned scratch
// buffers, so a consumer that mutates the datagram it was given — the
// prefix-preserving anonymizer rewrites Raw.Header bytes in place —
// cannot corrupt the stored capture: Reset always replays the pristine
// data. Per the DatagramSource contract the handed-out datagram is only
// valid until the following Next or Reset call.
type SliceSource struct {
	Datagrams []sflow.Datagram
	pos       int

	// Reusable scratch backing the datagram handed to the consumer.
	flows    []sflow.FlowSample
	counters []sflow.CounterSample
	arena    []byte
}

// Next copies the next datagram into d.
func (s *SliceSource) Next(d *sflow.Datagram) error {
	if s.pos >= len(s.Datagrams) {
		return io.EOF
	}
	src := &s.Datagrams[s.pos]
	s.pos++
	*d = *src
	s.flows = append(s.flows[:0], src.Flows...)
	s.arena = s.arena[:0]
	for i := range s.flows {
		h := src.Flows[i].Raw.Header
		off := len(s.arena)
		s.arena = append(s.arena, h...)
		s.flows[i].Raw.Header = s.arena[off:len(s.arena):len(s.arena)]
	}
	s.counters = append(s.counters[:0], src.Counters...)
	d.Flows = s.flows
	d.Counters = s.counters
	return nil
}

// Reset rewinds the source for another pass over the pristine capture.
func (s *SliceSource) Reset() { s.pos = 0 }
