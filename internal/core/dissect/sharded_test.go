package dissect

import (
	"context"
	"sort"
	"testing"

	"ixplens/internal/packet"
)

type seqKey struct {
	seq      uint64
	class    Class
	src, dst packet.IPv4Addr
	bytes    uint64
}

// TestProcessShardedMatchesSequential pins the sharded mode's core
// contract: every sample is observed exactly once, on exactly one
// worker, carrying the stream position a sequential pass would have
// seen it at — so re-sorting the shards' observations by seq must
// reproduce the serial record sequence bit for bit.
func TestProcessShardedMatchesSequential(t *testing.T) {
	_, fabric, src, _ := buildWeek(t, 45)

	var serial []seqKey
	seqCounts, err := Process(src, NewClassifier(fabric), func(rec *Record) {
		serial = append(serial, seqKey{uint64(len(serial)), rec.Class, rec.SrcIP, rec.DstIP, rec.Bytes})
	})
	if err != nil {
		t.Fatal(err)
	}
	src.Reset()

	const workers = 4
	perWorker := make([][]seqKey, workers)
	shCounts, err := ProcessSharded(context.Background(), src, fabric, workers,
		func(w int, rec *Record, seq uint64) {
			perWorker[w] = append(perWorker[w], seqKey{seq, rec.Class, rec.SrcIP, rec.DstIP, rec.Bytes})
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seqCounts != shCounts {
		t.Fatalf("counts diverged:\nseq %+v\nsha %+v", seqCounts, shCounts)
	}

	var merged []seqKey
	for _, obs := range perWorker {
		merged = append(merged, obs...)
	}
	if len(merged) != len(serial) {
		t.Fatalf("observed %d samples, want %d", len(merged), len(serial))
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].seq < merged[j].seq })
	for i := range merged {
		if merged[i] != serial[i] {
			t.Fatalf("sample %d diverged: sharded %+v, serial %+v", i, merged[i], serial[i])
		}
	}
}

// TestProcessShardedSerialFallback: workers <= 1 must still deliver
// stream positions, in order, on worker 0.
func TestProcessShardedSerialFallback(t *testing.T) {
	_, fabric, src, _ := buildWeek(t, 45)
	var next uint64
	_, err := ProcessSharded(context.Background(), src, fabric, 1,
		func(w int, rec *Record, seq uint64) {
			if w != 0 {
				t.Fatalf("worker %d in serial fallback", w)
			}
			if seq != next {
				t.Fatalf("seq %d, want %d", seq, next)
			}
			next++
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if next == 0 {
		t.Fatal("no samples observed")
	}
}

// TestShardedQuarantineConservation poisons a resolver lookup: the
// panicking batch quarantines its remaining samples, the rest of the
// stream still flows, and tallied + quarantined adds up.
func TestShardedQuarantineConservation(t *testing.T) {
	lookups := 0
	sp := NewShardedStreamProcessor(context.Background(),
		panickyMembers{n: &lookups, at: 101}, 1, nil, nil)
	const total = 600
	for i := 0; i < total/10; i++ {
		if err := sp.Add(peeringDatagram(t, 10)); err != nil {
			t.Fatal(err)
		}
	}
	counts := sp.Close()
	if counts.PanicQuarantined == 0 {
		t.Fatal("no samples quarantined")
	}
	if counts.PanicQuarantined > defaultBatchSamples+10 {
		t.Fatalf("quarantined %d, more than one batch", counts.PanicQuarantined)
	}
	if counts.Total+counts.PanicQuarantined != total {
		t.Fatalf("conservation broken: %d tallied + %d quarantined != %d",
			counts.Total, counts.PanicQuarantined, total)
	}
}

// TestShardedObserverPanicQuarantine panics inside a shard observer;
// the batch remainder quarantines and later batches still deliver.
func TestShardedObserverPanicQuarantine(t *testing.T) {
	seen := 0
	sp := NewShardedStreamProcessor(context.Background(), fakeMembers{}, 1,
		func(w int, rec *Record, seq uint64) {
			seen++
			if seen == 10 {
				panic("observer bug")
			}
		}, nil)
	const total = 600
	for i := 0; i < total/10; i++ {
		if err := sp.Add(peeringDatagram(t, 10)); err != nil {
			t.Fatal(err)
		}
	}
	counts := sp.Close()
	if counts.PanicQuarantined == 0 {
		t.Fatal("no samples quarantined")
	}
	if counts.Total+counts.PanicQuarantined != total {
		t.Fatalf("conservation broken: %d + %d != %d", counts.Total, counts.PanicQuarantined, total)
	}
	if counts.Total < total-defaultBatchSamples {
		t.Fatalf("only %d delivered; later batches must survive an observer panic", counts.Total)
	}
}

// TestShardedCancellation cancels mid-stream: Add reports the context
// error and Close still drains without deadlock.
func TestShardedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sp := NewShardedStreamProcessor(ctx, fakeMembers{}, 2, nil, nil)
	if err := sp.Add(peeringDatagram(t, 10)); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := sp.Add(peeringDatagram(t, 10)); err != context.Canceled {
		t.Fatalf("Add after cancel = %v, want context.Canceled", err)
	}
	sp.Close()
}
