package dissect

import "ixplens/internal/obs"

// Metrics is the dissection stage's observability bundle. A nil *Metrics
// disables instrumentation entirely; hot paths gate on the pointer so
// the disabled cost is a single predictable branch. The counters are
// atomics, so one bundle is safely shared by every classifier worker of
// a StreamProcessor.
type Metrics struct {
	// Records counts every classified sample; Undecodable and Peering
	// tally the cascade's first and last buckets.
	Records     *obs.Counter
	Undecodable *obs.Counter
	Peering     *obs.Counter
	// Batches counts work units dispatched to the classifier workers;
	// QueueDepth tracks how many sit unclaimed in the job queue; and
	// BatchNanos is the dispatch-to-merge latency distribution.
	Batches    *obs.Counter
	QueueDepth *obs.Gauge
	BatchNanos *obs.Histogram
	// PanicQuarantined counts samples discarded because classification or
	// an observer callback panicked on their batch (see
	// Counts.PanicQuarantined).
	PanicQuarantined *obs.Counter
}

// NewMetrics builds the bundle against a registry; nil in, nil out.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Records:          r.Counter("dissect_records_total"),
		Undecodable:      r.Counter("dissect_undecodable_total"),
		Peering:          r.Counter("dissect_peering_total"),
		Batches:          r.Counter("dissect_batches_total"),
		QueueDepth:       r.Gauge("dissect_queue_depth"),
		BatchNanos:       r.Histogram("dissect_batch_latency_ns"),
		PanicQuarantined: r.Counter("dissect_panic_quarantined_total"),
	}
}

// record tallies one classification outcome. Callers gate on m != nil.
func (m *Metrics) record(cl Class) {
	m.Records.Inc()
	switch {
	case cl == ClassUndecodable:
		m.Undecodable.Inc()
	case cl.IsPeering():
		m.Peering.Inc()
	}
}
