package dissect

import (
	"fmt"
	"testing"

	"ixplens/internal/dnssim"
	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/sflow"
	"ixplens/internal/traffic"
)

// buildWeek generates one week of capture into memory.
func buildWeek(t testing.TB, week int) (*netmodel.World, *ixp.Fabric, *SliceSource, traffic.WeekStats) {
	t.Helper()
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	fabric := ixp.NewFabric(w)
	gen := traffic.NewGenerator(w, dnssim.New(w), fabric, traffic.DefaultOptions())
	var src SliceSource
	col := ixp.NewCollector(fabric, 16384, func(d *sflow.Datagram) error {
		cp := *d
		cp.Flows = make([]sflow.FlowSample, len(d.Flows))
		for i := range d.Flows {
			cp.Flows[i] = d.Flows[i]
			hdr := make([]byte, len(d.Flows[i].Raw.Header))
			copy(hdr, d.Flows[i].Raw.Header)
			cp.Flows[i].Raw.Header = hdr
		}
		cp.Counters = append([]sflow.CounterSample(nil), d.Counters...)
		src.Datagrams = append(src.Datagrams, cp)
		return nil
	})
	stats, err := gen.GenerateWeek(week, col)
	if err != nil {
		t.Fatal(err)
	}
	return w, fabric, &src, stats
}

func TestCascadeMatchesGenerator(t *testing.T) {
	_, fabric, src, stats := buildWeek(t, 45)
	cls := NewClassifier(fabric)
	counts, err := Process(src, cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Total != stats.Samples {
		t.Fatalf("dissected %d samples, generator emitted %d", counts.Total, stats.Samples)
	}
	if counts.Undecodable != 0 {
		t.Fatalf("%d undecodable frames", counts.Undecodable)
	}
	if counts.NonIPv4 != stats.NonIPv4 {
		t.Fatalf("non-IPv4: dissect %d, truth %d", counts.NonIPv4, stats.NonIPv4)
	}
	if counts.Local != stats.Local {
		t.Fatalf("local: dissect %d, truth %d", counts.Local, stats.Local)
	}
	if counts.NonTCPUDP != stats.NonTCPUDP {
		t.Fatalf("non-TCP/UDP: dissect %d, truth %d", counts.NonTCPUDP, stats.NonTCPUDP)
	}
	if counts.Peering() != stats.PeeringSamples {
		t.Fatalf("peering: dissect %d, truth %d", counts.Peering(), stats.PeeringSamples)
	}
	// The paper: peering traffic >= 98.5% of the total.
	if counts.PeeringShare() < 0.975 {
		t.Fatalf("peering share %.4f below paper's 98.5%%", counts.PeeringShare())
	}
	// TCP share of peering bytes ~82%.
	if s := counts.TCPShare(); s < 0.70 || s > 0.92 {
		t.Fatalf("TCP byte share %.3f far from 82%%", s)
	}
}

func TestRecordsCarryMembersAndPayload(t *testing.T) {
	w, fabric, src, _ := buildWeek(t, 45)
	cls := NewClassifier(fabric)
	withPayload := 0
	_, err := Process(src, cls, func(rec *Record) {
		if !rec.Class.IsPeering() {
			return
		}
		if rec.InMember < 0 || rec.OutMember < 0 {
			t.Fatal("peering record without member attribution")
		}
		if !w.ASes[rec.InMember].IsMemberInWeek(45) || !w.ASes[rec.OutMember].IsMemberInWeek(45) {
			t.Fatal("peering record attributed to non-member")
		}
		if rec.SrcIP == 0 || rec.DstIP == 0 {
			t.Fatal("peering record without addresses")
		}
		if rec.Bytes < uint64(rec.FrameLen) {
			t.Fatal("bytes not scaled by sampling rate")
		}
		if len(rec.Payload) > 0 {
			withPayload++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if withPayload == 0 {
		t.Fatal("no payloads survived dissection")
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassUndecodable: "undecodable",
		ClassNonIPv4:     "non-IPv4",
		ClassLocal:       "local/non-member",
		ClassNonTCPUDP:   "non-TCP/UDP",
		ClassPeeringTCP:  "peering-TCP",
		ClassPeeringUDP:  "peering-UDP",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if Class(99).String() == "" {
		t.Error("unknown class must fall back")
	}
	if ClassLocal.IsPeering() || !ClassPeeringUDP.IsPeering() {
		t.Error("IsPeering wrong")
	}
}

type fakeMembers struct{}

func (fakeMembers) MemberOfPort(port uint32) (int32, bool) {
	if port >= 1000 {
		return int32(port - 1000), true
	}
	return 0, false
}

func TestClassifyDirectCases(t *testing.T) {
	cls := NewClassifier(fakeMembers{})
	b := packet.NewBuilder(256)
	eth := packet.Ethernet{Src: packet.MAC{2}, Dst: packet.MAC{4}}
	ip := packet.IPv4Header{TTL: 60, Src: packet.MakeIPv4(1, 2, 3, 4), Dst: packet.MakeIPv4(5, 6, 7, 8)}

	mkSample := func(header []byte, in, out uint32) sflow.FlowSample {
		return sflow.FlowSample{
			SamplingRate: 1000, InputIf: in, OutputIf: out, HasRaw: true,
			Raw: sflow.RawPacketHeader{Protocol: sflow.HeaderProtoEthernet, FrameLength: uint32(len(header)), Header: header},
		}
	}

	var rec Record
	// TCP member-to-member.
	fr := b.BuildTCPv4(eth, ip, packet.TCPHeader{SrcPort: 80, DstPort: 5555}, []byte("HTTP/1.1 200 OK\r\n"))
	fs := mkSample(append([]byte(nil), fr...), 1001, 1002)
	if got := cls.Classify(&fs, &rec); got != ClassPeeringTCP {
		t.Fatalf("class = %v", got)
	}
	if rec.SrcPort != 80 || rec.InMember != 1 || rec.OutMember != 2 {
		t.Fatalf("record fields wrong: %+v", rec)
	}
	if rec.Bytes != uint64(len(fr))*1000 {
		t.Fatalf("bytes = %d", rec.Bytes)
	}

	// Same member on both ports -> local.
	fs = mkSample(append([]byte(nil), fr...), 1001, 1001)
	if got := cls.Classify(&fs, &rec); got != ClassLocal {
		t.Fatalf("same-member class = %v", got)
	}

	// Infrastructure port -> local.
	fs = mkSample(append([]byte(nil), fr...), 1, 1002)
	if got := cls.Classify(&fs, &rec); got != ClassLocal {
		t.Fatalf("infra-port class = %v", got)
	}

	// ICMP member-to-member -> non-TCP/UDP.
	fr = b.BuildICMPv4(eth, ip, packet.ICMPHeader{Type: 8}, nil)
	fs = mkSample(append([]byte(nil), fr...), 1001, 1002)
	if got := cls.Classify(&fs, &rec); got != ClassNonTCPUDP {
		t.Fatalf("ICMP class = %v", got)
	}

	// ARP -> non-IPv4.
	fr = b.BuildARP(eth, packet.MakeIPv4(10, 0, 0, 1), packet.MakeIPv4(10, 0, 0, 2))
	fs = mkSample(append([]byte(nil), fr...), 1001, 1002)
	if got := cls.Classify(&fs, &rec); got != ClassNonIPv4 {
		t.Fatalf("ARP class = %v", got)
	}

	// Garbage -> undecodable.
	fs = mkSample([]byte{1, 2, 3}, 1001, 1002)
	if got := cls.Classify(&fs, &rec); got != ClassUndecodable {
		t.Fatalf("garbage class = %v", got)
	}

	// Missing raw record -> undecodable.
	fs = sflow.FlowSample{SamplingRate: 1000, InputIf: 1001, OutputIf: 1002}
	if got := cls.Classify(&fs, &rec); got != ClassUndecodable {
		t.Fatalf("no-raw class = %v", got)
	}
}

func TestSliceSourceReset(t *testing.T) {
	src := &SliceSource{Datagrams: make([]sflow.Datagram, 3)}
	var d sflow.Datagram
	n := 0
	for src.Next(&d) == nil {
		n++
	}
	if n != 3 {
		t.Fatalf("first pass read %d", n)
	}
	src.Reset()
	n = 0
	for src.Next(&d) == nil {
		n++
	}
	if n != 3 {
		t.Fatalf("second pass read %d", n)
	}
}

func BenchmarkClassify(b *testing.B) {
	cls := NewClassifier(fakeMembers{})
	bd := packet.NewBuilder(256)
	eth := packet.Ethernet{Src: packet.MAC{2}, Dst: packet.MAC{4}}
	ip := packet.IPv4Header{TTL: 60, Src: packet.MakeIPv4(1, 2, 3, 4), Dst: packet.MakeIPv4(5, 6, 7, 8)}
	fr := bd.BuildTCPv4(eth, ip, packet.TCPHeader{SrcPort: 80, DstPort: 5555}, []byte("HTTP/1.1 200 OK\r\nServer: nginx\r\n"))
	fs := sflow.FlowSample{
		SamplingRate: 16384, InputIf: 1001, OutputIf: 1002, HasRaw: true,
		Raw: sflow.RawPacketHeader{Protocol: sflow.HeaderProtoEthernet, FrameLength: 1400, Header: fr},
	}
	var rec Record
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls.Classify(&fs, &rec)
	}
}

type failingSource struct{ n int }

func (f *failingSource) Next(d *sflow.Datagram) error {
	f.n++
	if f.n > 2 {
		return fmt.Errorf("transport broke")
	}
	*d = sflow.Datagram{}
	return nil
}

func TestProcessPropagatesSourceError(t *testing.T) {
	cls := NewClassifier(fakeMembers{})
	counts, err := Process(&failingSource{}, cls, nil)
	if err == nil {
		t.Fatal("source error swallowed")
	}
	if counts.Total != 0 {
		t.Fatalf("counted %d samples from empty datagrams", counts.Total)
	}
}
