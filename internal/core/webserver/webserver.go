// Package webserver implements the Web-server identification of Section
// 2.2.2: string matching over the 128-byte payload snippets finds HTTP
// servers (method words and status lines, plus well-known header
// fields), and a combination of port-443 candidacy with an active
// certificate crawl finds HTTPS servers. The package also keeps the
// per-IP aggregates (traffic, ports, observed Host headers, dual
// client/server roles) that the rest of the study consumes.
package webserver

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"ixplens/internal/certsim"
	"ixplens/internal/core/dissect"
	"ixplens/internal/obs"
	"ixplens/internal/packet"
)

// Metrics is the identifier's observability bundle: payload kinds the
// string matching saw, Host headers extracted, and the HTTPS crawl
// funnel with per-reason validation failures. Build it with NewMetrics;
// a nil *Metrics disables instrumentation at the cost of one branch per
// observation.
type Metrics struct {
	PayloadRequests   *obs.Counter
	PayloadResponses  *obs.Counter
	PayloadHeaderOnly *obs.Counter
	PayloadOpaque     *obs.Counter
	HostsExtracted    *obs.Counter
	CrawlAttempts     *obs.Counter
	CrawlResponses    *obs.Counter
	CrawlValid        *obs.Counter
	// MergeNanos times the deterministic shard merge at the start of
	// Identify (zero observations when the identifier has one shard).
	MergeNanos *obs.Histogram
	// ValidateFail counts rejected HTTPS candidates by rejection reason,
	// indexed by certsim.RejectReason. Exposed as
	// crawl_validate_fail{reason=...}; the reasons sum to
	// Candidates443 - Valid443, making every rejection auditable.
	ValidateFail [certsim.NumRejectReasons]*obs.Counter
}

// NewMetrics resolves the identifier's metrics in r. A nil registry
// yields nil, which disables instrumentation.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	m := &Metrics{
		PayloadRequests:   r.Counter("webserver_payload_requests_total"),
		PayloadResponses:  r.Counter("webserver_payload_responses_total"),
		PayloadHeaderOnly: r.Counter("webserver_payload_header_only_total"),
		PayloadOpaque:     r.Counter("webserver_payload_opaque_total"),
		HostsExtracted:    r.Counter("webserver_hosts_extracted_total"),
		CrawlAttempts:     r.Counter("webserver_crawl_attempts_total"),
		CrawlResponses:    r.Counter("webserver_crawl_responses_total"),
		CrawlValid:        r.Counter("webserver_crawl_valid_total"),
		MergeNanos:        r.Histogram("webserver_shard_merge_ns"),
	}
	for reason := certsim.RejectReason(1); reason < certsim.NumRejectReasons; reason++ {
		m.ValidateFail[reason] = r.Counter(fmt.Sprintf("crawl_validate_fail{reason=%s}", reason))
	}
	return m
}

// payload tallies one string-matching outcome.
func (m *Metrics) payload(kind payloadKind) {
	switch kind {
	case payloadHTTPRequest:
		m.PayloadRequests.Inc()
	case payloadHTTPResponse:
		m.PayloadResponses.Inc()
	case payloadHTTPHeaderOnly:
		m.PayloadHeaderOnly.Inc()
	default:
		m.PayloadOpaque.Inc()
	}
}

// payloadKind is what string matching saw in one payload.
type payloadKind uint8

const (
	payloadOpaque payloadKind = iota
	payloadHTTPRequest
	payloadHTTPResponse
	payloadHTTPHeaderOnly // header field words without an initial line
)

// Pattern 1: initial lines. Requests start with a method word, responses
// with HTTP/1.x.
var methodWords = [][]byte{
	[]byte("GET "), []byte("POST "), []byte("HEAD "), []byte("PUT "),
	[]byte("DELETE "), []byte("OPTIONS "), []byte("CONNECT "),
}

var responsePrefixes = [][]byte{[]byte("HTTP/1.1 "), []byte("HTTP/1.0 ")}

// Pattern 2: common header field words from the RFCs and W3C specs.
var headerWords = [][]byte{
	[]byte("Host: "), []byte("Server: "), []byte("Content-Type: "),
	[]byte("Content-Length: "), []byte("User-Agent: "), []byte("Cache-Control: "),
	[]byte("Access-Control-Allow-Methods: "), []byte("Set-Cookie: "),
	[]byte("Accept: "), []byte("Location: "),
}

var httpVersionWord = []byte(" HTTP/1.")

// classifyPayload applies the two string-matching patterns.
func classifyPayload(p []byte) payloadKind {
	if len(p) == 0 {
		return payloadOpaque
	}
	for _, m := range methodWords {
		if bytes.HasPrefix(p, m) && bytes.Contains(p, httpVersionWord) {
			return payloadHTTPRequest
		}
	}
	for _, r := range responsePrefixes {
		if bytes.HasPrefix(p, r) {
			return payloadHTTPResponse
		}
	}
	for _, h := range headerWords {
		if containsHeaderField(p, h) {
			return payloadHTTPHeaderOnly
		}
	}
	return payloadOpaque
}

// fieldNameByte reports whether c can be part of an HTTP header field
// name as they occur in practice (letters, digits, '-', '_').
func fieldNameByte(c byte) bool {
	return c == '-' || c == '_' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// containsHeaderField reports whether name occurs where a header field
// can actually start. A bare bytes.Contains also matches mid-token
// occurrences — "Host: " inside "X-Forwarded-Host: " — and misattributes
// them. Because the 128-byte snap can begin mid-stream, a match is
// accepted at the payload start, after CR/LF, or after any byte that
// cannot be part of a longer field name.
func containsHeaderField(p, name []byte) bool {
	for off := 0; ; {
		j := bytes.Index(p[off:], name)
		if j < 0 {
			return false
		}
		k := off + j
		if k == 0 || !fieldNameByte(p[k-1]) {
			return true
		}
		off = k + 1
	}
}

// indexHeaderValue finds the value start of the header field name,
// requiring the field at the payload start or immediately after CR/LF so
// that mid-token occurrences ("X-Forwarded-Host:" containing "Host:")
// cannot donate the wrong header's value. Returns -1 when the field is
// absent.
func indexHeaderValue(p, name []byte) int {
	for off := 0; ; {
		j := bytes.Index(p[off:], name)
		if j < 0 {
			return -1
		}
		k := off + j
		if k == 0 || p[k-1] == '\n' || p[k-1] == '\r' {
			return k + len(name)
		}
		off = k + 1
	}
}

// extractHost pulls the Host header value out of a request payload. The
// field must sit at the payload start or right after CR/LF — otherwise
// "X-Forwarded-Host:" and friends donate the wrong value. The value runs
// to the first CR or LF (LF-only line endings are valid in the wild) or,
// when the 128-byte snap cut the payload right after a complete value,
// to the end of the payload; surrounding whitespace and an explicit
// :port suffix are trimmed. A value that might itself be truncated
// cannot be told apart from a complete one at payload end — the snap
// boundary falls where it falls — so payload-end values are accepted;
// the meta-data cleaning step downstream drops junk.
func extractHost(p []byte) (string, bool) {
	i := indexHeaderValue(p, []byte("Host:"))
	if i < 0 {
		return "", false
	}
	rest := p[i:]
	if end := bytes.IndexAny(rest, "\r\n"); end >= 0 {
		rest = rest[:end]
	}
	rest = bytes.TrimSpace(rest)
	// Strip an explicit port ("example.com:8080"); a lone trailing colon
	// or non-numeric suffix is left for the cleaning step to judge.
	if j := bytes.LastIndexByte(rest, ':'); j >= 0 && j+1 < len(rest) && allDigits(rest[j+1:]) {
		rest = rest[:j]
	}
	if len(rest) == 0 {
		return "", false
	}
	return string(rest), true
}

func allDigits(b []byte) bool {
	for _, c := range b {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// IPStats aggregates everything observed about one IP endpoint.
type IPStats struct {
	// ServerHits counts samples where string matching placed the IP on
	// the server side; ClientHits the client side.
	ServerHits int
	ClientHits int
	// BytesTotal is the represented traffic of every peering sample the
	// IP participated in (either side). Once an IP is identified as a
	// server, this is the traffic it is "responsible for or sees",
	// matching the paper's >70%-of-peering-traffic accounting.
	BytesTotal uint64
	// Ports the IP was contacted on (server side), capped small set.
	Ports []uint16
	// Hosts collects observed Host header values for requests to this
	// IP (the URI meta-data of Section 2.4), capped.
	Hosts []string
	// Candidate443 marks port-443 contact (HTTPS candidate set).
	Candidate443 bool
	// SrcMember is the member AS index whose port last carried traffic
	// sourced by this IP (-1 before any source-side sample). The IXP
	// knows its port-to-customer mapping, so this is measurement-side
	// information (used e.g. to watch reseller growth).
	SrcMember int32
	// Bytes443 is represented traffic on port 443.
	Bytes443 uint64
	// srcSeq is the stream position of the sample that last set
	// SrcMember, so the shard merge can reproduce the serial
	// last-writer-wins outcome regardless of how samples were
	// partitioned across shards.
	srcSeq uint64
}

const (
	maxPortsPerIP = 8
	maxHostsPerIP = 12
)

// addPort keeps the maxPortsPerIP numerically smallest distinct ports,
// sorted ascending. "k smallest" (rather than "first k encountered")
// makes the capped set a pure function of the sample multiset: merging
// two shards' sets yields exactly the set a serial pass over the union
// would keep, which the deterministic shard merge depends on.
func (s *IPStats) addPort(p uint16) {
	i := sort.Search(len(s.Ports), func(i int) bool { return s.Ports[i] >= p })
	if i < len(s.Ports) && s.Ports[i] == p {
		return
	}
	if len(s.Ports) < maxPortsPerIP {
		s.Ports = append(s.Ports, 0)
	} else if i == len(s.Ports) {
		return // full and p is larger than everything kept
	}
	copy(s.Ports[i+1:], s.Ports[i:])
	s.Ports[i] = p
}

// addHost keeps the maxHostsPerIP lexicographically smallest distinct
// Host values, sorted — partition-independent for the same reason as
// addPort.
func (s *IPStats) addHost(h string) {
	i := sort.SearchStrings(s.Hosts, h)
	if i < len(s.Hosts) && s.Hosts[i] == h {
		return
	}
	if len(s.Hosts) < maxHostsPerIP {
		s.Hosts = append(s.Hosts, "")
	} else if i == len(s.Hosts) {
		return
	}
	copy(s.Hosts[i+1:], s.Hosts[i:])
	s.Hosts[i] = h
}

// merge folds another shard's evidence about the same IP into s. All
// fields are either commutative-associative (counters, byte totals,
// candidacy OR, k-smallest capped sets) or resolved by the global
// sample sequence (SrcMember), so the result is independent of shard
// assignment and merge order.
func (s *IPStats) merge(o *IPStats) {
	s.ServerHits += o.ServerHits
	s.ClientHits += o.ClientHits
	s.BytesTotal += o.BytesTotal
	s.Bytes443 += o.Bytes443
	s.Candidate443 = s.Candidate443 || o.Candidate443
	for _, p := range o.Ports {
		s.addPort(p)
	}
	for _, h := range o.Hosts {
		s.addHost(h)
	}
	if o.SrcMember != -1 && (s.SrcMember == -1 || o.srcSeq > s.srcSeq) {
		s.SrcMember = o.SrcMember
		s.srcSeq = o.srcSeq
	}
}

// shard is one worker's private accumulator: a stats map plus the
// auto-sequence used when records arrive through the serial Observe
// path.
type shard struct {
	stats map[packet.IPv4Addr]*IPStats
	seq   uint64
}

// Identifier consumes peering records and accumulates per-IP evidence.
// With one shard (NewIdentifier) it is the familiar serial accumulator;
// NewSharded builds one accumulator per worker so a parallel dissect
// pool can observe records concurrently — each worker owning one shard
// index — with Identify merging the shards deterministically.
type Identifier struct {
	shards []shard
	m      *Metrics
}

// NewIdentifier returns an empty single-shard identifier.
func NewIdentifier() *Identifier { return NewSharded(1) }

// NewSharded returns an identifier with n independent shards (n < 1 is
// treated as 1). ObserveShard(i, ...) may be called concurrently for
// distinct i; the merge in Identify produces results identical to a
// serial pass over the same samples in stream order.
func NewSharded(n int) *Identifier {
	if n < 1 {
		n = 1
	}
	id := &Identifier{shards: make([]shard, n)}
	for i := range id.shards {
		id.shards[i].stats = make(map[packet.IPv4Addr]*IPStats, 1<<12/n)
	}
	return id
}

// NumShards returns the shard count the identifier was built with.
func (id *Identifier) NumShards() int { return len(id.shards) }

// SetMetrics attaches an observability bundle (nil detaches). Call
// before the identifier is shared between goroutines.
func (id *Identifier) SetMetrics(m *Metrics) { id.m = m }

func (sh *shard) get(ip packet.IPv4Addr) *IPStats {
	s := sh.stats[ip]
	if s == nil {
		s = &IPStats{SrcMember: -1}
		sh.stats[ip] = s
	}
	return s
}

// Observe processes one peering record on shard 0, with an
// automatically assigned stream sequence. This is the serial path: it
// must not race with ObserveShard or a concurrent Observe.
func (id *Identifier) Observe(rec *dissect.Record) {
	sh := &id.shards[0]
	seq := sh.seq
	sh.seq++
	id.observe(sh, rec, seq)
}

// ObserveShard processes one peering record on the given shard. seq is
// the record's global stream position (assigned by the producer before
// fan-out); it breaks last-writer ties during the merge, so equal
// results fall out regardless of which worker saw which record.
// Concurrent calls must use distinct shard indices.
func (id *Identifier) ObserveShard(shardIdx int, rec *dissect.Record, seq uint64) {
	id.observe(&id.shards[shardIdx], rec, seq)
}

func (id *Identifier) observe(sh *shard, rec *dissect.Record, seq uint64) {
	if !rec.Class.IsPeering() {
		return
	}
	if rec.Class == dissect.ClassPeeringTCP {
		// HTTPS candidates: any endpoint contacted on TCP 443.
		if rec.DstPort == 443 {
			d := sh.get(rec.DstIP)
			d.Candidate443 = true
			d.Bytes443 += rec.Bytes
			d.addPort(443)
		}
		if rec.SrcPort == 443 {
			s := sh.get(rec.SrcIP)
			s.Candidate443 = true
			s.Bytes443 += rec.Bytes
			s.addPort(443)
		}
	}
	// Every endpoint accumulates its total peering traffic; server
	// identification later decides whose totals count as server-related.
	src := sh.get(rec.SrcIP)
	src.BytesTotal += rec.Bytes
	src.SrcMember = rec.InMember
	src.srcSeq = seq
	sh.get(rec.DstIP).BytesTotal += rec.Bytes

	kind := classifyPayload(rec.Payload)
	if id.m != nil {
		id.m.payload(kind)
	}
	switch kind {
	case payloadHTTPRequest:
		// The destination acts as server, the source as client.
		srv := sh.get(rec.DstIP)
		srv.ServerHits++
		srv.addPort(rec.DstPort)
		if h, ok := extractHost(rec.Payload); ok {
			srv.addHost(h)
			if id.m != nil {
				id.m.HostsExtracted.Inc()
			}
		}
		sh.get(rec.SrcIP).ClientHits++
	case payloadHTTPResponse:
		srv := sh.get(rec.SrcIP)
		srv.ServerHits++
		srv.addPort(rec.SrcPort)
		sh.get(rec.DstIP).ClientHits++
	case payloadHTTPHeaderOnly:
		// Mid-stream header material: attribute the server role to the
		// well-known-port side when one exists.
		switch {
		case isWebPort(rec.SrcPort):
			srv := sh.get(rec.SrcIP)
			srv.ServerHits++
			srv.addPort(rec.SrcPort)
		case isWebPort(rec.DstPort):
			srv := sh.get(rec.DstIP)
			srv.ServerHits++
			srv.addPort(rec.DstPort)
		}
	default:
		// Opaque payload: still track RTMP-style multi-purpose port use
		// for IPs that string matching identifies elsewhere.
		if rec.Class == dissect.ClassPeeringTCP && rec.SrcPort == 1935 {
			sh.get(rec.SrcIP).addPort(1935)
		}
	}
}

// merged collapses all shards into shard 0's map and returns it. The
// per-IP merge is order-independent (see IPStats.merge), so the result
// does not depend on how the stream was partitioned.
func (id *Identifier) merged() map[packet.IPv4Addr]*IPStats {
	dst := id.shards[0].stats
	if len(id.shards) == 1 {
		return dst
	}
	start := time.Now()
	for i := 1; i < len(id.shards); i++ {
		for ip, st := range id.shards[i].stats {
			if d, ok := dst[ip]; ok {
				d.merge(st)
			} else {
				dst[ip] = st
			}
		}
		id.shards[i].stats = nil
	}
	if id.m != nil {
		id.m.MergeNanos.ObserveSince(start)
	}
	return dst
}

func isWebPort(p uint16) bool {
	return p == 80 || p == 8080 || p == 443 || p == 1935
}

// CertCrawler abstracts the active HTTPS measurement.
type CertCrawler interface {
	CrawlAndValidate(ip packet.IPv4Addr, isoWeek int) (certsim.Info, bool)
	Crawl(ip packet.IPv4Addr, isoWeek int) certsim.CrawlResult
}

// Server is one identified Web server IP.
type Server struct {
	IP    packet.IPv4Addr
	HTTP  bool
	HTTPS bool
	// Bytes is the represented server-related traffic of the IP.
	Bytes uint64
	// Ports seen on the server side.
	Ports []uint16
	// Hosts are the observed Host header values (URIs).
	Hosts []string
	// AlsoClient marks IPs that additionally act as clients.
	AlsoClient bool
	// Member is the member AS index whose IXP port carried the
	// server's source-side traffic.
	Member int32
	// Cert carries the validated certificate meta-data, if HTTPS.
	Cert certsim.Info
}

// Result is the outcome of a week's identification.
type Result struct {
	// Week is the ISO week analysed.
	Week int
	// Servers maps every identified server IP to its record.
	Servers map[packet.IPv4Addr]*Server
	// Candidates443 is the size of the HTTPS candidate set.
	Candidates443 int
	// Responded443 is how many candidates answered the crawl.
	Responded443 int
	// Valid443 is how many validated as HTTPS servers.
	Valid443 int
	// TotalIPs is the number of distinct endpoint IPs observed.
	TotalIPs int
	// ServerBytes is the total represented server-related traffic.
	ServerBytes uint64
	// EstLoss is a data-quality annotation: the estimated fraction of
	// the week's sFlow datagrams that never reached the analysis
	// (derived from per-agent sequence gaps). Filled in by the pipeline,
	// not the identifier; 0 means no measured loss.
	EstLoss float64
}

// Identify finalizes the week: merges the shards deterministically,
// applies the server criteria and runs the HTTPS crawl over the
// candidate set. It must not run concurrently with Observe/ObserveShard.
func (id *Identifier) Identify(isoWeek int, crawler CertCrawler) *Result {
	stats := id.merged()
	res := &Result{
		Week:    isoWeek,
		Servers: make(map[packet.IPv4Addr]*Server, len(stats)/4),
	}
	res.TotalIPs = len(stats)
	roots := crawlRoots(crawler)
	for ip, st := range stats {
		isHTTP := st.ServerHits > 0
		var srv *Server
		if isHTTP {
			srv = &Server{
				IP: ip, HTTP: true, Bytes: st.BytesTotal,
				Ports: st.Ports, Hosts: st.Hosts,
				AlsoClient: st.ClientHits > 0, Member: st.SrcMember,
			}
		}
		if st.Candidate443 {
			res.Candidates443++
			id.m.crawlAttempt()
			crawl := crawler.Crawl(ip, isoWeek)
			if crawl.Responded {
				res.Responded443++
				id.m.crawlResponse()
			}
			info, reason := validateCrawl(crawler, roots, ip, crawl, isoWeek)
			if reason == certsim.RejectNone {
				res.Valid443++
				id.m.crawlValid()
				if srv == nil {
					srv = &Server{IP: ip, Bytes: st.BytesTotal, Ports: st.Ports,
						Hosts: st.Hosts, AlsoClient: st.ClientHits > 0, Member: st.SrcMember}
				}
				srv.HTTPS = true
				srv.Cert = info
			} else {
				id.m.crawlReject(reason)
			}
		}
		if srv != nil {
			res.Servers[ip] = srv
			res.ServerBytes += srv.Bytes
		}
	}
	return res
}

// validateCrawl applies the certificate checks to one candidate. With an
// inspectable trust store the checks run here, yielding a precise
// rejection reason; without one, validation falls back to the crawler's
// own CrawlAndValidate composition — passing a nil trust store to
// certsim.Validate would instead reject every chain, silently emptying
// the HTTPS set.
func validateCrawl(crawler CertCrawler, roots map[string]bool, ip packet.IPv4Addr, crawl certsim.CrawlResult, isoWeek int) (certsim.Info, certsim.RejectReason) {
	if roots != nil {
		return certsim.ValidateDetail(crawl, roots, isoWeek)
	}
	if info, ok := crawler.CrawlAndValidate(ip, isoWeek); ok {
		return info, certsim.RejectNone
	}
	if !crawl.Responded {
		return certsim.Info{}, certsim.RejectNoResponse
	}
	return certsim.Info{}, certsim.RejectCrawler
}

// crawlAttempt, crawlResponse, crawlValid and crawlReject tolerate a nil
// bundle so Identify stays branch-light.
func (m *Metrics) crawlAttempt() {
	if m != nil {
		m.CrawlAttempts.Inc()
	}
}

func (m *Metrics) crawlResponse() {
	if m != nil {
		m.CrawlResponses.Inc()
	}
}

func (m *Metrics) crawlValid() {
	if m != nil {
		m.CrawlValid.Inc()
	}
}

func (m *Metrics) crawlReject(reason certsim.RejectReason) {
	if m != nil && reason > certsim.RejectNone && reason < certsim.NumRejectReasons {
		m.ValidateFail[reason].Inc()
	}
}

// crawlRoots extracts the trust store when the crawler can provide one
// (certsim.Crawler implements Roots()); validateCrawl falls back to the
// crawler's own CrawlAndValidate otherwise.
func crawlRoots(c CertCrawler) map[string]bool {
	if r, ok := c.(interface{ Roots() map[string]bool }); ok {
		return r.Roots()
	}
	return nil
}

// TopServers returns the n highest-traffic servers, descending.
func (r *Result) TopServers(n int) []*Server {
	out := make([]*Server, 0, len(r.Servers))
	for _, s := range r.Servers {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].IP < out[j].IP
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// MultiPurpose counts servers seen active on more than one service port.
func (r *Result) MultiPurpose() int {
	n := 0
	for _, s := range r.Servers {
		if len(s.Ports) > 1 {
			n++
		}
	}
	return n
}

// DualRole counts servers that also act as clients.
func (r *Result) DualRole() int {
	n := 0
	for _, s := range r.Servers {
		if s.AlsoClient {
			n++
		}
	}
	return n
}
