// Package webserver implements the Web-server identification of Section
// 2.2.2: string matching over the 128-byte payload snippets finds HTTP
// servers (method words and status lines, plus well-known header
// fields), and a combination of port-443 candidacy with an active
// certificate crawl finds HTTPS servers. The package also keeps the
// per-IP aggregates (traffic, ports, observed Host headers, dual
// client/server roles) that the rest of the study consumes.
package webserver

import (
	"bytes"
	"sort"

	"ixplens/internal/certsim"
	"ixplens/internal/core/dissect"
	"ixplens/internal/packet"
)

// payloadKind is what string matching saw in one payload.
type payloadKind uint8

const (
	payloadOpaque payloadKind = iota
	payloadHTTPRequest
	payloadHTTPResponse
	payloadHTTPHeaderOnly // header field words without an initial line
)

// Pattern 1: initial lines. Requests start with a method word, responses
// with HTTP/1.x.
var methodWords = [][]byte{
	[]byte("GET "), []byte("POST "), []byte("HEAD "), []byte("PUT "),
	[]byte("DELETE "), []byte("OPTIONS "), []byte("CONNECT "),
}

var responsePrefixes = [][]byte{[]byte("HTTP/1.1 "), []byte("HTTP/1.0 ")}

// Pattern 2: common header field words from the RFCs and W3C specs.
var headerWords = [][]byte{
	[]byte("Host: "), []byte("Server: "), []byte("Content-Type: "),
	[]byte("Content-Length: "), []byte("User-Agent: "), []byte("Cache-Control: "),
	[]byte("Access-Control-Allow-Methods: "), []byte("Set-Cookie: "),
	[]byte("Accept: "), []byte("Location: "),
}

var httpVersionWord = []byte(" HTTP/1.")

// classifyPayload applies the two string-matching patterns.
func classifyPayload(p []byte) payloadKind {
	if len(p) == 0 {
		return payloadOpaque
	}
	for _, m := range methodWords {
		if bytes.HasPrefix(p, m) && bytes.Contains(p, httpVersionWord) {
			return payloadHTTPRequest
		}
	}
	for _, r := range responsePrefixes {
		if bytes.HasPrefix(p, r) {
			return payloadHTTPResponse
		}
	}
	for _, h := range headerWords {
		if bytes.Contains(p, h) {
			return payloadHTTPHeaderOnly
		}
	}
	return payloadOpaque
}

// extractHost pulls the Host header value out of a request payload. The
// value runs to the first CR or LF (LF-only line endings are valid in
// the wild) or, when the 128-byte snap cut the payload right after a
// complete value, to the end of the payload; surrounding whitespace and
// an explicit :port suffix are trimmed. A value that might itself be
// truncated cannot be told apart from a complete one at payload end —
// the snap boundary falls where it falls — so payload-end values are
// accepted; the meta-data cleaning step downstream drops junk.
func extractHost(p []byte) (string, bool) {
	i := bytes.Index(p, []byte("Host:"))
	if i < 0 {
		return "", false
	}
	rest := p[i+5:]
	if end := bytes.IndexAny(rest, "\r\n"); end >= 0 {
		rest = rest[:end]
	}
	rest = bytes.TrimSpace(rest)
	// Strip an explicit port ("example.com:8080"); a lone trailing colon
	// or non-numeric suffix is left for the cleaning step to judge.
	if j := bytes.LastIndexByte(rest, ':'); j >= 0 && j+1 < len(rest) && allDigits(rest[j+1:]) {
		rest = rest[:j]
	}
	if len(rest) == 0 {
		return "", false
	}
	return string(rest), true
}

func allDigits(b []byte) bool {
	for _, c := range b {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// IPStats aggregates everything observed about one IP endpoint.
type IPStats struct {
	// ServerHits counts samples where string matching placed the IP on
	// the server side; ClientHits the client side.
	ServerHits int
	ClientHits int
	// BytesTotal is the represented traffic of every peering sample the
	// IP participated in (either side). Once an IP is identified as a
	// server, this is the traffic it is "responsible for or sees",
	// matching the paper's >70%-of-peering-traffic accounting.
	BytesTotal uint64
	// Ports the IP was contacted on (server side), capped small set.
	Ports []uint16
	// Hosts collects observed Host header values for requests to this
	// IP (the URI meta-data of Section 2.4), capped.
	Hosts []string
	// Candidate443 marks port-443 contact (HTTPS candidate set).
	Candidate443 bool
	// SrcMember is the member AS index whose port last carried traffic
	// sourced by this IP (-1 before any source-side sample). The IXP
	// knows its port-to-customer mapping, so this is measurement-side
	// information (used e.g. to watch reseller growth).
	SrcMember int32
	// Bytes443 is represented traffic on port 443.
	Bytes443 uint64
}

const (
	maxPortsPerIP = 8
	maxHostsPerIP = 12
)

func (s *IPStats) addPort(p uint16) {
	for _, q := range s.Ports {
		if q == p {
			return
		}
	}
	if len(s.Ports) < maxPortsPerIP {
		s.Ports = append(s.Ports, p)
	}
}

func (s *IPStats) addHost(h string) {
	for _, q := range s.Hosts {
		if q == h {
			return
		}
	}
	if len(s.Hosts) < maxHostsPerIP {
		s.Hosts = append(s.Hosts, h)
	}
}

// Identifier consumes peering records and accumulates per-IP evidence.
type Identifier struct {
	stats map[packet.IPv4Addr]*IPStats
}

// NewIdentifier returns an empty identifier.
func NewIdentifier() *Identifier {
	return &Identifier{stats: make(map[packet.IPv4Addr]*IPStats, 1<<12)}
}

func (id *Identifier) get(ip packet.IPv4Addr) *IPStats {
	s := id.stats[ip]
	if s == nil {
		s = &IPStats{SrcMember: -1}
		id.stats[ip] = s
	}
	return s
}

// Observe processes one peering record. Non-peering records are ignored.
func (id *Identifier) Observe(rec *dissect.Record) {
	if !rec.Class.IsPeering() {
		return
	}
	if rec.Class == dissect.ClassPeeringTCP {
		// HTTPS candidates: any endpoint contacted on TCP 443.
		if rec.DstPort == 443 {
			d := id.get(rec.DstIP)
			d.Candidate443 = true
			d.Bytes443 += rec.Bytes
			d.addPort(443)
		}
		if rec.SrcPort == 443 {
			s := id.get(rec.SrcIP)
			s.Candidate443 = true
			s.Bytes443 += rec.Bytes
			s.addPort(443)
		}
	}
	// Every endpoint accumulates its total peering traffic; server
	// identification later decides whose totals count as server-related.
	src := id.get(rec.SrcIP)
	src.BytesTotal += rec.Bytes
	src.SrcMember = rec.InMember
	id.get(rec.DstIP).BytesTotal += rec.Bytes

	switch classifyPayload(rec.Payload) {
	case payloadHTTPRequest:
		// The destination acts as server, the source as client.
		srv := id.get(rec.DstIP)
		srv.ServerHits++
		srv.addPort(rec.DstPort)
		if h, ok := extractHost(rec.Payload); ok {
			srv.addHost(h)
		}
		id.get(rec.SrcIP).ClientHits++
	case payloadHTTPResponse:
		srv := id.get(rec.SrcIP)
		srv.ServerHits++
		srv.addPort(rec.SrcPort)
		id.get(rec.DstIP).ClientHits++
	case payloadHTTPHeaderOnly:
		// Mid-stream header material: attribute the server role to the
		// well-known-port side when one exists.
		switch {
		case isWebPort(rec.SrcPort):
			srv := id.get(rec.SrcIP)
			srv.ServerHits++
			srv.addPort(rec.SrcPort)
		case isWebPort(rec.DstPort):
			srv := id.get(rec.DstIP)
			srv.ServerHits++
			srv.addPort(rec.DstPort)
		}
	default:
		// Opaque payload: still track RTMP-style multi-purpose port use
		// for IPs that string matching identifies elsewhere.
		if rec.Class == dissect.ClassPeeringTCP && rec.SrcPort == 1935 {
			id.get(rec.SrcIP).addPort(1935)
		}
	}
}

func isWebPort(p uint16) bool {
	return p == 80 || p == 8080 || p == 443 || p == 1935
}

// CertCrawler abstracts the active HTTPS measurement.
type CertCrawler interface {
	CrawlAndValidate(ip packet.IPv4Addr, isoWeek int) (certsim.Info, bool)
	Crawl(ip packet.IPv4Addr, isoWeek int) certsim.CrawlResult
}

// Server is one identified Web server IP.
type Server struct {
	IP    packet.IPv4Addr
	HTTP  bool
	HTTPS bool
	// Bytes is the represented server-related traffic of the IP.
	Bytes uint64
	// Ports seen on the server side.
	Ports []uint16
	// Hosts are the observed Host header values (URIs).
	Hosts []string
	// AlsoClient marks IPs that additionally act as clients.
	AlsoClient bool
	// Member is the member AS index whose IXP port carried the
	// server's source-side traffic.
	Member int32
	// Cert carries the validated certificate meta-data, if HTTPS.
	Cert certsim.Info
}

// Result is the outcome of a week's identification.
type Result struct {
	// Week is the ISO week analysed.
	Week int
	// Servers maps every identified server IP to its record.
	Servers map[packet.IPv4Addr]*Server
	// Candidates443 is the size of the HTTPS candidate set.
	Candidates443 int
	// Responded443 is how many candidates answered the crawl.
	Responded443 int
	// Valid443 is how many validated as HTTPS servers.
	Valid443 int
	// TotalIPs is the number of distinct endpoint IPs observed.
	TotalIPs int
	// ServerBytes is the total represented server-related traffic.
	ServerBytes uint64
}

// Identify finalizes the week: applies the server criteria and runs the
// HTTPS crawl over the candidate set.
func (id *Identifier) Identify(isoWeek int, crawler CertCrawler) *Result {
	res := &Result{
		Week:    isoWeek,
		Servers: make(map[packet.IPv4Addr]*Server, len(id.stats)/4),
	}
	res.TotalIPs = len(id.stats)
	for ip, st := range id.stats {
		isHTTP := st.ServerHits > 0
		var srv *Server
		if isHTTP {
			srv = &Server{
				IP: ip, HTTP: true, Bytes: st.BytesTotal,
				Ports: st.Ports, Hosts: st.Hosts,
				AlsoClient: st.ClientHits > 0, Member: st.SrcMember,
			}
		}
		if st.Candidate443 {
			res.Candidates443++
			crawl := crawler.Crawl(ip, isoWeek)
			if crawl.Responded {
				res.Responded443++
			}
			if info, ok := certsim.Validate(crawl, crawlRoots(crawler), isoWeek); ok {
				res.Valid443++
				if srv == nil {
					srv = &Server{IP: ip, Bytes: st.BytesTotal, Ports: st.Ports,
						Hosts: st.Hosts, AlsoClient: st.ClientHits > 0, Member: st.SrcMember}
				}
				srv.HTTPS = true
				srv.Cert = info
			}
		}
		if srv != nil {
			res.Servers[ip] = srv
			res.ServerBytes += srv.Bytes
		}
	}
	return res
}

// crawlRoots extracts the trust store when the crawler can provide one;
// otherwise validation uses the default synthetic roots via the
// crawler's own CrawlAndValidate. certsim.Crawler implements Roots().
func crawlRoots(c CertCrawler) map[string]bool {
	if r, ok := c.(interface{ Roots() map[string]bool }); ok {
		return r.Roots()
	}
	return nil
}

// TopServers returns the n highest-traffic servers, descending.
func (r *Result) TopServers(n int) []*Server {
	out := make([]*Server, 0, len(r.Servers))
	for _, s := range r.Servers {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].IP < out[j].IP
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// MultiPurpose counts servers seen active on more than one service port.
func (r *Result) MultiPurpose() int {
	n := 0
	for _, s := range r.Servers {
		if len(s.Ports) > 1 {
			n++
		}
	}
	return n
}

// DualRole counts servers that also act as clients.
func (r *Result) DualRole() int {
	n := 0
	for _, s := range r.Servers {
		if s.AlsoClient {
			n++
		}
	}
	return n
}
