package webserver

import (
	"fmt"
	"testing"

	"ixplens/internal/certsim"
	"ixplens/internal/core/dissect"
	"ixplens/internal/dnssim"
	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/obs"
	"ixplens/internal/packet"
	"ixplens/internal/sflow"
	"ixplens/internal/traffic"
)

type weekEnv struct {
	w       *netmodel.World
	fabric  *ixp.Fabric
	dns     *dnssim.DB
	crawler *certsim.Crawler
	src     *dissect.SliceSource
	stats   traffic.WeekStats
}

func buildEnv(t testing.TB, week int) *weekEnv {
	t.Helper()
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dns := dnssim.New(w)
	fabric := ixp.NewFabric(w)
	gen := traffic.NewGenerator(w, dns, fabric, traffic.DefaultOptions())
	src := &dissect.SliceSource{}
	col := ixp.NewCollector(fabric, 16384, func(d *sflow.Datagram) error {
		cp := *d
		cp.Flows = make([]sflow.FlowSample, len(d.Flows))
		for i := range d.Flows {
			cp.Flows[i] = d.Flows[i]
			hdr := make([]byte, len(d.Flows[i].Raw.Header))
			copy(hdr, d.Flows[i].Raw.Header)
			cp.Flows[i].Raw.Header = hdr
		}
		src.Datagrams = append(src.Datagrams, cp)
		return nil
	})
	stats, err := gen.GenerateWeek(week, col)
	if err != nil {
		t.Fatal(err)
	}
	return &weekEnv{w: w, fabric: fabric, dns: dns,
		crawler: certsim.NewCrawler(w, dns), src: src, stats: stats}
}

func identify(t testing.TB, env *weekEnv, week int) *Result {
	t.Helper()
	id := NewIdentifier()
	cls := dissect.NewClassifier(env.fabric)
	if _, err := dissect.Process(env.src, cls, id.Observe); err != nil {
		t.Fatal(err)
	}
	env.src.Reset()
	return id.Identify(week, env.crawler)
}

func TestIdentificationPrecision(t *testing.T) {
	env := buildEnv(t, 45)
	res := identify(t, env, 45)
	if len(res.Servers) < 200 {
		t.Fatalf("only %d servers identified", len(res.Servers))
	}
	falsePos := 0
	for ip, srv := range res.Servers {
		idx, ok := env.w.ServerByIP(ip)
		if !ok {
			falsePos++
			continue
		}
		s := &env.w.Servers[idx]
		if srv.HTTPS && !s.Is(netmodel.SrvHTTPS) {
			t.Fatalf("HTTPS claimed for non-HTTPS server %v", ip)
		}
		_ = s
	}
	if falsePos > 0 {
		t.Fatalf("%d non-server IPs identified as servers", falsePos)
	}
}

func TestIdentificationRecallOfSampled(t *testing.T) {
	env := buildEnv(t, 45)
	res := identify(t, env, 45)
	// Every ground-truth server that was actually sampled with an HTTP
	// header packet should be found; a weaker, robust check: recall over
	// sampled servers is high.
	recall := float64(len(res.Servers)) / float64(env.stats.SampledServers)
	if recall < 0.55 {
		t.Fatalf("identified %d of %d sampled servers (recall %.2f)",
			len(res.Servers), env.stats.SampledServers, recall)
	}
}

func TestServerTrafficShare(t *testing.T) {
	env := buildEnv(t, 45)
	cls := dissect.NewClassifier(env.fabric)
	id := NewIdentifier()
	var peeringBytes uint64
	_, err := dissect.Process(env.src, cls, func(rec *dissect.Record) {
		if rec.Class.IsPeering() {
			peeringBytes += rec.Bytes
		}
		id.Observe(rec)
	})
	if err != nil {
		t.Fatal(err)
	}
	res := id.Identify(45, env.crawler)
	share := float64(res.ServerBytes) / float64(peeringBytes)
	// Paper: server IPs see/are responsible for >70% of peering traffic.
	if share < 0.60 || share > 1.0 {
		t.Fatalf("server traffic share %.3f out of band", share)
	}
}

func TestHTTPSCrawlFunnel(t *testing.T) {
	env := buildEnv(t, 45)
	res := identify(t, env, 45)
	if res.Candidates443 == 0 || res.Valid443 == 0 {
		t.Fatalf("crawl funnel empty: %+v", res)
	}
	if res.Valid443 > res.Responded443 || res.Responded443 > res.Candidates443 {
		t.Fatalf("funnel not monotone: %d -> %d -> %d",
			res.Candidates443, res.Responded443, res.Valid443)
	}
	// HTTPS servers must carry certificate meta-data.
	for _, srv := range res.Servers {
		if srv.HTTPS && srv.Cert.Subject == "" {
			t.Fatal("HTTPS server without certificate info")
		}
	}
}

func TestHostsCollected(t *testing.T) {
	env := buildEnv(t, 45)
	res := identify(t, env, 45)
	withHosts, junk, known := 0, 0, 0
	for _, srv := range res.Servers {
		if len(srv.Hosts) > 0 {
			withHosts++
			for _, h := range srv.Hosts {
				if _, ok := env.dns.SOA(dnssim.RegistrableDomain(h)); ok {
					known++
				} else {
					junk++ // bots and IP-literal scans; cleaned later
				}
			}
		}
	}
	if withHosts == 0 {
		t.Fatal("no URIs collected")
	}
	if known == 0 {
		t.Fatal("no resolvable URIs collected")
	}
	if junk > known/5 {
		t.Fatalf("junk hosts dominate: %d junk vs %d known", junk, known)
	}
}

func TestDualRoleAndMultiPurpose(t *testing.T) {
	env := buildEnv(t, 45)
	res := identify(t, env, 45)
	if res.DualRole() == 0 {
		t.Fatal("no dual-role servers found (machine-to-machine traffic exists)")
	}
	if res.MultiPurpose() == 0 {
		t.Fatal("no multi-purpose servers found")
	}
}

func TestTopServers(t *testing.T) {
	env := buildEnv(t, 45)
	res := identify(t, env, 45)
	top := res.TopServers(10)
	if len(top) != 10 {
		t.Fatalf("TopServers returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Bytes > top[i-1].Bytes {
			t.Fatal("TopServers not sorted")
		}
	}
	if got := res.TopServers(1 << 30); len(got) != len(res.Servers) {
		t.Fatal("TopServers cap wrong")
	}
}

func TestClassifyPayloadPatterns(t *testing.T) {
	cases := []struct {
		payload string
		want    payloadKind
	}{
		{"GET /x HTTP/1.1\r\nHost: a.b\r\n", payloadHTTPRequest},
		{"POST /submit HTTP/1.0\r\n", payloadHTTPRequest},
		{"HEAD / HTTP/1.1\r\n", payloadHTTPRequest},
		{"HTTP/1.1 200 OK\r\nServer: x\r\n", payloadHTTPResponse},
		{"HTTP/1.0 404 Not Found\r\n", payloadHTTPResponse},
		{"...Content-Type: text/html\r\n...", payloadHTTPHeaderOnly},
		{"...Set-Cookie: a=1\r\n", payloadHTTPHeaderOnly},
		{"GET lacking version word", payloadOpaque},
		{"\x17\x03\x03\x01\x00\x8a\x91", payloadOpaque},
		{"", payloadOpaque},
		{"random text without markers", payloadOpaque},
		// A header word matched mid-token is another field's suffix, not
		// evidence of HTTP: X-Forwarded-Host must not satisfy the Host:
		// scan, and binary junk containing the bytes mid-word must not
		// either.
		{"\x00\x01X-Forwarded-Host: h.example\r\n\x02", payloadOpaque},
		{"junkSet-Cookie: a=1\r\n", payloadOpaque},
		// At a snap boundary the field can open the payload.
		{"Host: cut.example.org\r\nAccept: */*\r\n", payloadHTTPHeaderOnly},
		{"\r\nHost: after-crlf.example\r\n", payloadHTTPHeaderOnly},
	}
	for _, c := range cases {
		if got := classifyPayload([]byte(c.payload)); got != c.want {
			t.Errorf("classifyPayload(%q) = %d, want %d", c.payload, got, c.want)
		}
	}
}

func TestExtractHost(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		want    string
		ok      bool
	}{
		{"crlf", "GET / HTTP/1.1\r\nHost: www.example.org\r\nAccept: */*\r\n", "www.example.org", true},
		{"missing", "GET / HTTP/1.1\r\nAccept: */*\r\n", "", false},
		// A value cut at the 128-byte snap boundary is indistinguishable
		// from a complete one; accept it and let cleaning judge.
		{"payload-end", "GET / HTTP/1.1\r\nHost: truncat", "truncat", true},
		{"lf-only", "GET / HTTP/1.1\nHost: lf.example.net\nAccept: */*\n", "lf.example.net", true},
		{"trailing-space", "GET / HTTP/1.1\r\nHost: padded.example.com \r\n", "padded.example.com", true},
		{"port", "GET / HTTP/1.1\r\nHost: example.com:8080\r\n", "example.com", true},
		{"port-at-end", "GET / HTTP/1.1\r\nHost: example.com:443", "example.com", true},
		{"bare-colon", "GET / HTTP/1.1\r\nHost: odd.example.com:\r\n", "odd.example.com:", true},
		{"empty-value", "GET / HTTP/1.1\r\nHost: \r\n", "", false},
		{"empty-at-end", "GET / HTTP/1.1\r\nHost:", "", false},
		// "Host:" inside another field name is not the Host header; only a
		// match at the payload start or right after a line break counts.
		{"x-forwarded-host", "GET / HTTP/1.1\r\nX-Forwarded-Host: evil.example\r\n", "", false},
		{"forwarded-then-real", "GET / HTTP/1.1\r\nX-Forwarded-Host: evil.example\r\nHost: real.example\r\n", "real.example", true},
		{"host-at-start", "Host: snap.example.org\r\nAccept: */*\r\n", "snap.example.org", true},
		{"mid-token-no-break", "GET / HTTP/1.1\r\nAbcHost: nope.example\r\n", "", false},
	}
	for _, c := range cases {
		h, ok := extractHost([]byte(c.payload))
		if ok != c.ok || h != c.want {
			t.Errorf("%s: extractHost(%q) = %q, %v; want %q, %v", c.name, c.payload, h, ok, c.want, c.ok)
		}
	}
}

func TestIPStatsCaps(t *testing.T) {
	var st IPStats
	for i := 0; i < 50; i++ {
		st.addPort(uint16(i))
		st.addHost(string(rune('a' + i%26)))
	}
	if len(st.Ports) > maxPortsPerIP || len(st.Hosts) > maxHostsPerIP {
		t.Fatalf("caps not enforced: %d ports, %d hosts", len(st.Ports), len(st.Hosts))
	}
	st.addPort(3)
	if len(st.Ports) != maxPortsPerIP {
		t.Fatal("duplicate port changed set")
	}
}

func TestObserveIgnoresNonPeering(t *testing.T) {
	id := NewIdentifier()
	rec := &dissect.Record{Class: dissect.ClassLocal, SrcIP: packet.MakeIPv4(1, 2, 3, 4)}
	id.Observe(rec)
	if len(id.shards[0].stats) != 0 {
		t.Fatal("non-peering record created state")
	}
}

func BenchmarkObserve(b *testing.B) {
	id := NewIdentifier()
	payload := []byte("GET /index.html HTTP/1.1\r\nHost: www.example.org\r\nAccept: */*\r\n\r\n")
	rec := &dissect.Record{
		Class: dissect.ClassPeeringTCP,
		SrcIP: packet.MakeIPv4(1, 2, 3, 4), DstIP: packet.MakeIPv4(5, 6, 7, 8),
		SrcPort: 44444, DstPort: 80, Bytes: 1400 * 16384, Payload: payload,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id.Observe(rec)
	}
}

// rootlessCrawler hides the trust store: it forwards Crawl and
// CrawlAndValidate but does not implement Roots(), so Identify must fall
// back to the crawler's own validation instead of passing a nil trust
// store to certsim.Validate (which would reject every chain).
type rootlessCrawler struct{ inner CertCrawler }

func (r rootlessCrawler) Crawl(ip packet.IPv4Addr, w int) certsim.CrawlResult {
	return r.inner.Crawl(ip, w)
}

func (r rootlessCrawler) CrawlAndValidate(ip packet.IPv4Addr, w int) (certsim.Info, bool) {
	return r.inner.CrawlAndValidate(ip, w)
}

func TestIdentifyWithoutTrustStore(t *testing.T) {
	env := buildEnv(t, 45)
	direct := identify(t, env, 45)
	if direct.Valid443 == 0 {
		t.Fatal("direct crawler validated nothing; test is vacuous")
	}

	id := NewIdentifier()
	cls := dissect.NewClassifier(env.fabric)
	if _, err := dissect.Process(env.src, cls, id.Observe); err != nil {
		t.Fatal(err)
	}
	env.src.Reset()
	res := id.Identify(45, rootlessCrawler{env.crawler})

	// The Roots-less fallback must validate the exact same HTTPS set.
	if res.Valid443 != direct.Valid443 {
		t.Fatalf("rootless crawler validated %d HTTPS servers, direct validated %d",
			res.Valid443, direct.Valid443)
	}
	for ip, want := range direct.Servers {
		got := res.Servers[ip]
		if got == nil || got.HTTPS != want.HTTPS {
			t.Fatalf("server %v: HTTPS diverged between rootless and direct crawler", ip)
		}
	}
	if len(res.Servers) != len(direct.Servers) {
		t.Fatalf("server sets diverged: %d vs %d", len(res.Servers), len(direct.Servers))
	}
}

// TestCrawlRejectAccounting checks the funnel arithmetic the metrics
// promise: every rejected candidate lands in exactly one
// crawl_validate_fail{reason=...} counter, with and without a trust
// store.
func TestCrawlRejectAccounting(t *testing.T) {
	env := buildEnv(t, 45)
	crawlers := map[string]CertCrawler{
		"direct":   env.crawler,
		"rootless": rootlessCrawler{env.crawler},
	}
	for name, crawler := range crawlers {
		reg := obs.NewRegistry()
		id := NewIdentifier()
		id.SetMetrics(NewMetrics(reg))
		cls := dissect.NewClassifier(env.fabric)
		if _, err := dissect.Process(env.src, cls, id.Observe); err != nil {
			t.Fatal(err)
		}
		env.src.Reset()
		res := id.Identify(45, crawler)

		var rejected uint64
		for r := certsim.RejectReason(1); r < certsim.NumRejectReasons; r++ {
			rejected += reg.Counter(fmt.Sprintf("crawl_validate_fail{reason=%s}", r)).Value()
		}
		if want := uint64(res.Candidates443 - res.Valid443); rejected != want {
			t.Fatalf("%s: reject counters sum to %d, funnel says %d rejected", name, rejected, want)
		}
		if got := reg.Counter("webserver_crawl_attempts_total").Value(); got != uint64(res.Candidates443) {
			t.Fatalf("%s: %d crawl attempts recorded, %d candidates", name, got, res.Candidates443)
		}
		if got := reg.Counter("webserver_crawl_valid_total").Value(); got != uint64(res.Valid443) {
			t.Fatalf("%s: %d valid recorded, funnel says %d", name, got, res.Valid443)
		}
	}
}
