package webserver

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ixplens/internal/core/dissect"
	"ixplens/internal/packet"
)

// synthRecords builds a deterministic mixed workload: requests,
// responses, header-only and opaque payloads over a small IP pool, with
// enough distinct ports/hosts per IP to overflow the capped sets and
// enough member flapping to exercise the SrcMember tie-break.
func synthRecords(n int) []dissect.Record {
	rng := rand.New(rand.NewSource(7))
	recs := make([]dissect.Record, n)
	for i := range recs {
		src := packet.MakeIPv4(10, 0, 0, byte(rng.Intn(24)))
		dst := packet.MakeIPv4(10, 0, 1, byte(rng.Intn(24)))
		r := dissect.Record{
			Class: dissect.ClassPeeringTCP,
			SrcIP: src, DstIP: dst,
			SrcPort:  uint16(1024 + rng.Intn(64)),
			DstPort:  uint16(rng.Intn(20)*443 + 80), // 80, 523, 966, ... incl. 443 multiples
			Bytes:    uint64(rng.Intn(4096)),
			InMember: int32(rng.Intn(5)),
		}
		switch rng.Intn(4) {
		case 0:
			r.Payload = []byte(fmt.Sprintf("GET /x HTTP/1.1\r\nHost: h%02d.example.com\r\n", rng.Intn(40)))
		case 1:
			r.Payload = []byte("HTTP/1.1 200 OK\r\nServer: synth\r\n")
		case 2:
			r.DstPort = 8080
			r.Payload = []byte("Content-Type: text/html\r\n")
		default:
			if rng.Intn(3) == 0 {
				r.SrcPort = 1935
			}
			r.Payload = []byte{0x16, 0x03, 0x01}
		}
		if rng.Intn(6) == 0 {
			r.DstPort = 443
		}
		recs[i] = r
	}
	return recs
}

// feedSharded distributes recs over the identifier's shards using the
// given assignment function, passing each record's stream index as seq.
func feedSharded(id *Identifier, recs []dissect.Record, assign func(i int) int) {
	for i := range recs {
		id.ObserveShard(assign(i), &recs[i], uint64(i))
	}
}

func TestShardedMergeMatchesSerial(t *testing.T) {
	recs := synthRecords(4000)

	serial := NewIdentifier()
	for i := range recs {
		serial.Observe(&recs[i])
	}
	want := serial.merged()

	assignments := map[string]func(i int) int{
		"round-robin": func(i int) int { return i % 4 },
		"blocks":      func(i int) int { return i / 1000 },
		"skewed":      func(i int) int { return (i * i) % 4 },
	}
	for name, assign := range assignments {
		sharded := NewSharded(4)
		feedSharded(sharded, recs, assign)
		got := sharded.merged()
		if len(got) != len(want) {
			t.Fatalf("%s: %d IPs, want %d", name, len(got), len(want))
		}
		for ip, w := range want {
			g := got[ip]
			if g == nil {
				t.Fatalf("%s: IP %v missing from sharded stats", name, ip)
			}
			if !reflect.DeepEqual(*g, *w) {
				t.Fatalf("%s: IP %v stats = %+v, want %+v", name, ip, *g, *w)
			}
		}
	}
}

func TestKSmallestCapsArePartitionIndependent(t *testing.T) {
	// Overflow the port cap from two shards in opposite orders; the
	// merged set must be the k smallest of the union either way.
	a, b := NewSharded(2), NewSharded(2)
	rec := func(port uint16) *dissect.Record {
		return &dissect.Record{
			Class: dissect.ClassPeeringTCP,
			SrcIP: packet.MakeIPv4(1, 1, 1, 1), DstIP: packet.MakeIPv4(2, 2, 2, 2),
			SrcPort: 2000, DstPort: port,
			Payload: []byte("GET / HTTP/1.1\r\nHost: a\r\n"),
		}
	}
	var seq uint64
	for p := uint16(100); p < 120; p++ {
		a.ObserveShard(0, rec(p), seq)
		a.ObserveShard(1, rec(219-p+100), seq+1)
		b.ObserveShard(1, rec(p), seq)
		b.ObserveShard(0, rec(219-p+100), seq+1)
		seq += 2
	}
	sa := a.merged()[packet.MakeIPv4(2, 2, 2, 2)]
	sb := b.merged()[packet.MakeIPv4(2, 2, 2, 2)]
	if !reflect.DeepEqual(sa.Ports, sb.Ports) {
		t.Fatalf("port sets differ across partitions: %v vs %v", sa.Ports, sb.Ports)
	}
	if len(sa.Ports) != maxPortsPerIP || !sort.SliceIsSorted(sa.Ports, func(i, j int) bool { return sa.Ports[i] < sa.Ports[j] }) {
		t.Fatalf("merged ports not the sorted k-smallest: %v", sa.Ports)
	}
	if sa.Ports[0] != 100 || sa.Ports[maxPortsPerIP-1] != 100+maxPortsPerIP-1 {
		t.Fatalf("merged ports are not the smallest of the union: %v", sa.Ports)
	}
}

func TestSrcMemberSeqTieBreak(t *testing.T) {
	// The record with the highest seq must win SrcMember regardless of
	// which shard saw it.
	mk := func(member int32) *dissect.Record {
		return &dissect.Record{
			Class: dissect.ClassPeeringTCP,
			SrcIP: packet.MakeIPv4(9, 9, 9, 9), DstIP: packet.MakeIPv4(8, 8, 8, 8),
			SrcPort: 1024, DstPort: 80, InMember: member,
			Payload: []byte{0x00},
		}
	}
	id := NewSharded(3)
	id.ObserveShard(2, mk(7), 10) // latest sample, on shard 2
	id.ObserveShard(0, mk(3), 2)
	id.ObserveShard(1, mk(5), 5)
	st := id.merged()[packet.MakeIPv4(9, 9, 9, 9)]
	if st.SrcMember != 7 {
		t.Fatalf("SrcMember = %d, want 7 (highest seq wins)", st.SrcMember)
	}
}
