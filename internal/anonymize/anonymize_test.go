package anonymize

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"ixplens/internal/packet"
)

func commonPrefixLen(a, b packet.IPv4Addr) int {
	x := uint32(a) ^ uint32(b)
	if x == 0 {
		return 32
	}
	return bits.LeadingZeros32(x)
}

// TestQuickPrefixPreservation: the defining property — anonymized
// addresses share exactly the prefix length the originals share.
func TestQuickPrefixPreservation(t *testing.T) {
	p := New(0xfeedface)
	prop := func(a, b uint32) bool {
		pa := p.IPv4(packet.IPv4Addr(a))
		pb := p.IPv4(packet.IPv4Addr(b))
		return commonPrefixLen(packet.IPv4Addr(a), packet.IPv4Addr(b)) ==
			commonPrefixLen(pa, pb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAndKeyed(t *testing.T) {
	p1 := New(1)
	p2 := New(2)
	ip := packet.MakeIPv4(82, 12, 99, 7)
	if p1.IPv4(ip) != p1.IPv4(ip) {
		t.Fatal("mapping must be deterministic")
	}
	if p1.IPv4(ip) == p2.IPv4(ip) {
		t.Fatal("different keys should give different mappings")
	}
	if p1.IPv4(ip) == ip {
		t.Fatal("identity mapping is suspicious")
	}
}

func TestInjectiveOnSample(t *testing.T) {
	p := New(42)
	rng := rand.New(rand.NewSource(1))
	seen := make(map[packet.IPv4Addr]packet.IPv4Addr, 50_000)
	for i := 0; i < 50_000; i++ {
		in := packet.IPv4Addr(rng.Uint32())
		out := p.IPv4(in)
		if prev, dup := seen[out]; dup && prev != in {
			t.Fatalf("collision: %v and %v both map to %v", prev, in, out)
		}
		seen[out] = in
	}
}

func TestFrameRewriteKeepsChecksumsValid(t *testing.T) {
	b := packet.NewBuilder(512)
	eth := packet.Ethernet{Src: packet.MAC{2}, Dst: packet.MAC{4}, VLAN: 600}
	ip := packet.IPv4Header{TTL: 60, Src: packet.MakeIPv4(82, 1, 2, 3), Dst: packet.MakeIPv4(91, 4, 5, 6)}
	tcp := packet.TCPHeader{SrcPort: 80, DstPort: 55555, Flags: packet.TCPAck}
	payload := []byte("HTTP/1.1 200 OK\r\nServer: nginx\r\n\r\n")
	frame := append([]byte(nil), b.BuildTCPv4(eth, ip, tcp, payload)...)

	p := New(7)
	if !p.Frame(frame) {
		t.Fatal("frame not rewritten")
	}
	var f packet.Frame
	if err := packet.Decode(frame, &f); err != nil {
		t.Fatal(err)
	}
	if f.IPv4.Src == ip.Src || f.IPv4.Dst == ip.Dst {
		t.Fatal("addresses unchanged")
	}
	if f.IPv4.Src != p.IPv4(ip.Src) || f.IPv4.Dst != p.IPv4(ip.Dst) {
		t.Fatal("rewrite disagrees with IPv4()")
	}
	// Header checksum must still verify after the incremental fixup.
	if !packet.VerifyIPv4HeaderChecksum(frame[18 : 18+20]) {
		t.Fatal("IPv4 header checksum broken by rewrite")
	}
	// TCP checksum must verify against the new pseudo-header.
	seg := append([]byte(nil), frame[18+20:]...)
	want := seg[16:18]
	w0, w1 := want[0], want[1]
	seg[16], seg[17] = 0, 0
	cs := packet.TransportChecksumIPv4(f.IPv4.Src, f.IPv4.Dst, packet.ProtoTCP, seg)
	if byte(cs>>8) != w0 || byte(cs) != w1 {
		t.Fatalf("TCP checksum broken: computed %04x, frame has %02x%02x", cs, w0, w1)
	}
	// Ports and payload must be untouched.
	if f.TCP.SrcPort != 80 || string(f.Payload) != string(payload) {
		t.Fatal("rewrite damaged transport data")
	}
}

func TestFrameRewriteUDP(t *testing.T) {
	b := packet.NewBuilder(256)
	eth := packet.Ethernet{Src: packet.MAC{2}, Dst: packet.MAC{4}}
	ip := packet.IPv4Header{TTL: 60, Src: packet.MakeIPv4(10, 0, 0, 1), Dst: packet.MakeIPv4(10, 0, 0, 2)}
	frame := append([]byte(nil), b.BuildUDPv4(eth, ip, packet.UDPHeader{SrcPort: 53, DstPort: 5353}, []byte{1, 2, 3})...)

	p := New(9)
	if !p.Frame(frame) {
		t.Fatal("frame not rewritten")
	}
	var f packet.Frame
	if err := packet.Decode(frame, &f); err != nil {
		t.Fatal(err)
	}
	seg := append([]byte(nil), frame[14+20:]...)
	w0, w1 := seg[6], seg[7]
	seg[6], seg[7] = 0, 0
	cs := packet.TransportChecksumIPv4(f.IPv4.Src, f.IPv4.Dst, packet.ProtoUDP, seg)
	if cs == 0 {
		cs = 0xffff
	}
	if byte(cs>>8) != w0 || byte(cs) != w1 {
		t.Fatalf("UDP checksum broken: computed %04x, frame has %02x%02x", cs, w0, w1)
	}
}

func TestFrameRewriteSnappedTransport(t *testing.T) {
	// A snapshot that ends inside the IPv4 header options/payload: the
	// transport checksum is outside the buffer and must be skipped, the
	// IPv4 rewrite must still happen.
	b := packet.NewBuilder(512)
	eth := packet.Ethernet{Src: packet.MAC{2}, Dst: packet.MAC{4}}
	ip := packet.IPv4Header{TTL: 60, Src: packet.MakeIPv4(82, 1, 2, 3), Dst: packet.MakeIPv4(91, 4, 5, 6)}
	full := b.BuildTCPv4(eth, ip, packet.TCPHeader{SrcPort: 80, DstPort: 50000}, make([]byte, 200))
	snap := append([]byte(nil), full[:40]...) // eth + ipv4 + 6 bytes of TCP

	p := New(5)
	if !p.Frame(snap) {
		t.Fatal("snapped frame not rewritten")
	}
	if !packet.VerifyIPv4HeaderChecksum(snap[14 : 14+20]) {
		t.Fatal("IPv4 checksum broken on snapped frame")
	}
}

func TestFrameRewriteIgnoresNonIPv4(t *testing.T) {
	b := packet.NewBuilder(128)
	eth := packet.Ethernet{Src: packet.MAC{2}, Dst: packet.MAC{4}}
	arp := append([]byte(nil), b.BuildARP(eth, packet.MakeIPv4(1, 2, 3, 4), packet.MakeIPv4(5, 6, 7, 8))...)
	p := New(5)
	if p.Frame(arp) {
		t.Fatal("ARP frame must not be rewritten")
	}
	if p.Frame([]byte{1, 2, 3}) {
		t.Fatal("short frame must not be rewritten")
	}
}

func BenchmarkIPv4(b *testing.B) {
	p := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.IPv4(packet.IPv4Addr(i))
	}
}

func BenchmarkFrame(b *testing.B) {
	bl := packet.NewBuilder(256)
	eth := packet.Ethernet{Src: packet.MAC{2}, Dst: packet.MAC{4}}
	ip := packet.IPv4Header{TTL: 60, Src: packet.MakeIPv4(82, 1, 2, 3), Dst: packet.MakeIPv4(91, 4, 5, 6)}
	frame := append([]byte(nil), bl.BuildTCPv4(eth, ip, packet.TCPHeader{SrcPort: 80, DstPort: 50000}, []byte("xyz"))...)
	p := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Frame(frame)
	}
}
