package anonymize_test

import (
	"fmt"

	"ixplens/internal/anonymize"
	"ixplens/internal/packet"
)

// Example shows the defining property of prefix-preserving
// anonymization: addresses sharing a /24 keep sharing exactly a /24
// after anonymization, while the addresses themselves change.
func Example() {
	p := anonymize.New(0x5eed)
	a := packet.MakeIPv4(82, 12, 99, 7)
	b := packet.MakeIPv4(82, 12, 99, 200) // same /24
	c := packet.MakeIPv4(82, 12, 98, 7)   // same /23 only

	pa, pb, pc := p.IPv4(a), p.IPv4(b), p.IPv4(c)
	same24 := pa&0xffffff00 == pb&0xffffff00
	same23 := pa&0xfffffe00 == pc&0xfffffe00
	diff24 := pa&0xffffff00 != pc&0xffffff00
	fmt.Println("addresses changed:", pa != a && pb != b && pc != c)
	fmt.Println("same /24 preserved:", same24)
	fmt.Println("/23 preserved, /24 split:", same23 && diff24)
	// Output:
	// addresses changed: true
	// same /24 preserved: true
	// /23 preserved, /24 split: true
}
