// Package anonymize implements the prefix-preserving IPv4 address
// anonymization the paper's data handling relies on (footnote 2: "We
// always use a prefix preserving function when anonymizing IPs"): two
// addresses sharing a k-bit prefix map to anonymized addresses sharing
// exactly a k-bit prefix, so prefix- and AS-level aggregation remains
// possible over anonymized captures while individual addresses are
// hidden.
//
// The construction follows the Crypto-PAn idea with the repository's
// deterministic keyed hash as the per-prefix coin: output bit i is the
// input bit i XORed with a pseudo-random function of the preceding i
// input bits. Frame rewriting fixes the IPv4 header checksum and the
// TCP/UDP checksum incrementally per RFC 1624 instead of recomputing
// them, as an in-path anonymizer must.
package anonymize

import (
	"encoding/binary"

	"ixplens/internal/packet"
	"ixplens/internal/randutil"
)

// PrefixPreserving anonymizes IPv4 addresses under a secret key.
// The zero value is unusable; construct with New. Safe for concurrent
// use.
type PrefixPreserving struct {
	key uint64
}

// New returns an anonymizer for the given secret key. The same key
// yields the same mapping, so multi-week captures stay linkable.
func New(key uint64) *PrefixPreserving {
	return &PrefixPreserving{key: key}
}

// IPv4 maps an address to its anonymized form. The mapping is a
// bijection on the 32-bit space and preserves common prefixes exactly:
// anon(a) and anon(b) share a prefix of length k if and only if a and b
// do.
func (p *PrefixPreserving) IPv4(ip packet.IPv4Addr) packet.IPv4Addr {
	in := uint32(ip)
	var out uint32
	for i := 0; i < 32; i++ {
		// The coin for bit i depends only on the first i input bits.
		prefix := uint64(0)
		if i > 0 {
			prefix = uint64(in >> (32 - i))
		}
		coin := randutil.Hash64(p.key, uint64(i), prefix) & 1
		bit := uint64(in>>(31-i)) & 1
		out = out<<1 | uint32(bit^coin)
	}
	return packet.IPv4Addr(out)
}

// checksumFixup updates an Internet checksum stored at buf[at:at+2]
// after 16-bit words of the covered data changed, per RFC 1624 (eqn. 3):
// HC' = ~(~HC + ~m + m').
func checksumFixup(buf []byte, at int, oldWords, newWords []uint16) {
	sum := uint32(^binary.BigEndian.Uint16(buf[at : at+2]))
	for _, w := range oldWords {
		sum += uint32(^w)
	}
	for _, w := range newWords {
		sum += uint32(w)
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	binary.BigEndian.PutUint16(buf[at:at+2], ^uint16(sum))
}

// words splits an IPv4 address into its two checksum words.
func words(ip uint32) []uint16 {
	return []uint16{uint16(ip >> 16), uint16(ip)}
}

// Frame rewrites the IPv4 source and destination addresses of an
// Ethernet frame in place, fixing the IPv4 header checksum and, when
// the transport header is present in the (possibly snapped) buffer, the
// TCP/UDP checksum. Non-IPv4 frames and frames too short to carry the
// IPv4 header are left untouched. It reports whether a rewrite
// happened.
func (p *PrefixPreserving) Frame(frame []byte) bool {
	off := 14
	if len(frame) < off+2 {
		return false
	}
	etherType := binary.BigEndian.Uint16(frame[12:14])
	if etherType == 0x8100 { // single 802.1Q tag
		if len(frame) < off+4 {
			return false
		}
		etherType = binary.BigEndian.Uint16(frame[16:18])
		off += 4
	}
	if etherType != 0x0800 || len(frame) < off+20 {
		return false
	}
	ihl := int(frame[off]&0x0f) * 4
	if ihl < 20 || frame[off]>>4 != 4 {
		return false
	}
	proto := frame[off+9]
	oldSrc := binary.BigEndian.Uint32(frame[off+12 : off+16])
	oldDst := binary.BigEndian.Uint32(frame[off+16 : off+20])
	newSrc := uint32(p.IPv4(packet.IPv4Addr(oldSrc)))
	newDst := uint32(p.IPv4(packet.IPv4Addr(oldDst)))
	binary.BigEndian.PutUint32(frame[off+12:off+16], newSrc)
	binary.BigEndian.PutUint32(frame[off+16:off+20], newDst)

	oldW := append(words(oldSrc), words(oldDst)...)
	newW := append(words(newSrc), words(newDst)...)
	checksumFixup(frame, off+10, oldW, newW)

	// The transport checksum covers the pseudo-header, so it needs the
	// same fixup — when the checksum field made it into the snapshot.
	transport := off + ihl
	switch proto {
	case 6: // TCP: checksum at offset 16
		if len(frame) >= transport+18 {
			checksumFixup(frame, transport+16, oldW, newW)
		}
	case 17: // UDP: checksum at offset 6 (zero means "none")
		if len(frame) >= transport+8 {
			if binary.BigEndian.Uint16(frame[transport+6:transport+8]) != 0 {
				checksumFixup(frame, transport+6, oldW, newW)
			}
		}
	}
	return true
}
