package anonymize

import "ixplens/internal/sflow"

// Datagrams wraps an sFlow datagram sink so every sampled frame header
// is anonymized in place before the datagram is passed on — the shape
// of the paper's data release: prefix-preserving anonymization applied
// at export time.
func (p *PrefixPreserving) Datagrams(sink func(*sflow.Datagram) error) func(*sflow.Datagram) error {
	return func(d *sflow.Datagram) error {
		for i := range d.Flows {
			if d.Flows[i].HasRaw {
				p.Frame(d.Flows[i].Raw.Header)
			}
		}
		return sink(d)
	}
}
