package experiments

import (
	"errors"
	"fmt"

	"ixplens/internal/core/cluster"
	"ixplens/internal/core/hetero"
	"ixplens/internal/packet"
)

// ClusterOrganizations reproduces Section 5.1: the three-step clustering
// shares, the organization count and size distribution, and the
// validation against ground truth.
func (r *Runner) ClusterOrganizations() (Report, error) {
	rep := Report{ID: "E16", Title: "§5.1 — clustering server IPs by organization"}
	wk, _, _, err := r.Week45()
	if err != nil {
		return rep, err
	}
	cl := wk.Clusters
	rep.addf("step-1 share", "78.7%", "%s", pct(cl.ClusteredShare(cluster.Step1)))
	rep.addf("step-2 share", "17.4%", "%s", pct(cl.ClusteredShare(cluster.Step2)))
	rep.addf("step-3 share", "3.9%", "%s", pct(cl.ClusteredShare(cluster.Step3)))
	rep.addf("organizations found", "~21K", "%d", len(cl.Clusters))

	// Size thresholds scale with the world (the paper's 1000-IP bar at
	// 2.4M pool servers corresponds to far fewer at reduced scale).
	scaleF := float64(r.Env.World.Cfg.NumServers) / 2_400_000.0
	big := maxInt(4, int(1000*scaleF))
	small := maxInt(2, int(10*scaleF))
	dist := cl.SizeDistribution([]int{small, big})
	rep.addf(fmt.Sprintf("orgs with >%d server IPs (scaled 1000)", big), "143", "%d", dist[big])
	rep.addf(fmt.Sprintf("orgs with >%d server IPs (scaled 10)", small), ">6K", "%d", dist[small])

	v := cluster.Validate(cl, r.truthOrgOf)
	rep.addf("false-positive rate", "<3%", "%s", pct(v.FalsePositiveRate))
	fpLarge, ok := v.RateBySize[1000]
	fpSmall, ok2 := v.RateBySize[10]
	if ok && ok2 {
		rep.addf("FP rate small vs large clusters", "decreases with footprint",
			"%s vs %s", pct(fpSmall), pct(fpLarge))
	}
	return rep, nil
}

// truthOrgOf is the validation oracle.
func (r *Runner) truthOrgOf(ip packet.IPv4Addr) (int32, bool) {
	idx, ok := r.Env.World.ServerByIP(ip)
	if !ok {
		return 0, false
	}
	return r.Env.World.Servers[idx].Org, true
}

// Fig6bOrgSpread reproduces Figure 6(b): server IPs vs AS footprint per
// organization.
func (r *Runner) Fig6bOrgSpread() (Report, error) {
	rep := Report{ID: "E17", Title: "Fig. 6(b) — org server IPs vs AS footprint"}
	wk, _, _, err := r.Week45()
	if err != nil {
		return rep, err
	}
	points := hetero.OrgSpread(wk.Clusters, 10)
	w := r.Env.World
	acmeDomain := w.Orgs[w.Special.AcmeCDN].Domain
	for _, p := range points {
		if p.Authority == acmeDomain {
			rep.addf("acme-cdn (Akamai analog)", "28K server IPs in 278 ASes",
				"%d server IPs in %d ASes", p.Servers, p.ASes)
		}
	}
	multiAS := 0
	var xs, ys []float64
	for _, p := range points {
		if p.ASes > 1 {
			multiAS++
		}
		xs = append(xs, float64(p.Servers))
		ys = append(ys, float64(p.ASes))
	}
	rep.addf("orgs plotted (>10 servers)", ">6K", "%d", len(points))
	rep.addf("orgs spanning >1 AS", "commonplace", "%d (%s)", multiAS, pct(ratio(multiAS, len(points))))
	rep.series("servers", xs)
	rep.series("ases", ys)
	return rep, nil
}

// Fig6cASHosting reproduces Figure 6(c): organizations vs server IPs per
// AS.
func (r *Runner) Fig6cASHosting() (Report, error) {
	rep := Report{ID: "E18", Title: "Fig. 6(c) — orgs hosted vs server IPs per AS"}
	wk, _, _, err := r.Week45()
	if err != nil {
		return rep, err
	}
	points := hetero.ASHosting(wk.Clusters, 10)
	rep.addf("ASes hosting >5 orgs", ">500", "%d", hetero.CountASesHostingAtLeast(points, 6))
	rep.addf("ASes hosting >10 orgs", ">200", "%d", hetero.CountASesHostingAtLeast(points, 11))

	w := r.Env.World
	megaASN := w.ASes[w.Orgs[w.Special.MegaHost].HomeAS].ASN
	for _, p := range points {
		if p.ASN == megaASN {
			rep.addf("megahost AS (AS36351 analog)", "40K+ server IPs of 350+ orgs",
				"%d server IPs of %d orgs", p.Servers, p.Orgs)
		}
	}
	var xs, ys []float64
	for _, p := range points {
		xs = append(xs, float64(p.Servers))
		ys = append(ys, float64(p.Orgs))
	}
	rep.series("servers", xs)
	rep.series("orgs", ys)
	return rep, nil
}

// linkStudy runs the Fig. 7 attribution for one special org by
// replaying week 45's persisted flow product — no second pass over the
// capture.
func (r *Runner) linkStudy(org int32) (*hetero.LinkStats, error) {
	wk, _, _, err := r.Week45()
	if err != nil {
		return nil, err
	}
	if wk.Links == nil {
		return nil, errors.New("experiments: links analyzer not in the registry")
	}
	w := r.Env.World
	c := wk.Clusters.Clusters[w.Orgs[org].Domain]
	if c == nil {
		return nil, fmt.Errorf("no cluster for org %s", w.Orgs[org].Name)
	}
	set := make(map[packet.IPv4Addr]bool, len(c.IPs))
	for _, ip := range c.IPs {
		set[ip] = true
	}
	return wk.Links.LinkStats(w.Orgs[org].HomeAS, r.Env.EntityTable(),
		func(ip packet.IPv4Addr) bool { return set[ip] }), nil
}

// Fig7bAcmeLinks reproduces Figure 7(b): per-member direct-link share of
// the deploy-CDN's traffic.
func (r *Runner) Fig7bAcmeLinks() (Report, error) {
	rep := Report{ID: "E19", Title: "Fig. 7(b) — Akamai-analog traffic via direct vs other links"}
	ls, err := r.linkStudy(r.Env.World.Special.AcmeCDN)
	if err != nil {
		return rep, err
	}
	rep.addf("traffic NOT via own peering links", "11.1%", "%s", pct(ls.OffLinkShare()))
	only := ls.ServersOnlyOffLink()
	total := ls.NumDirectServers() + only
	rep.addf("servers seen only via non-member links", "15K of 28K", "%d of %d", only, total)
	points := ls.Points()
	x0, x100 := 0, 0
	var xs, ys []float64
	for _, p := range points {
		if p.DirectShare < 0.02 {
			x0++
		}
		if p.DirectShare > 0.98 {
			x100++
		}
		xs = append(xs, p.DirectShare)
		ys = append(ys, p.TrafficShare)
	}
	rep.addf("members with x≈0 (all traffic indirect)", "exist, some with sizable traffic", "%d of %d members", x0, len(points))
	rep.addf("members with x≈100", "many", "%d of %d", x100, len(points))
	rep.series("direct-share", xs)
	rep.series("traffic-share", ys)
	return rep, nil
}

// Fig7cCloudflareLinks reproduces Figure 7(c): the same study for the
// own-data-center CDN.
func (r *Runner) Fig7cCloudflareLinks() (Report, error) {
	rep := Report{ID: "E20", Title: "Fig. 7(c) — CloudFlare-analog traffic via direct vs other links"}
	ls, err := r.linkStudy(r.Env.World.Special.CloudShield)
	if err != nil {
		return rep, err
	}
	rep.addf("traffic NOT via own peering links", "similar pattern to Akamai, smaller", "%s", pct(ls.OffLinkShare()))
	points := ls.Points()
	var xs, ys []float64
	for _, p := range points {
		xs = append(xs, p.DirectShare)
		ys = append(ys, p.TrafficShare)
	}
	rep.addf("members exchanging its traffic", "hundreds", "%d", len(points))
	rep.series("direct-share", xs)
	rep.series("traffic-share", ys)
	return rep, nil
}

// MetadataCoverage reproduces the Section 2.4 coverage numbers.
func (r *Runner) MetadataCoverage() (Report, error) {
	rep := Report{ID: "E21", Title: "§2.4 — server IP meta-data coverage"}
	wk, _, _, err := r.Week45()
	if err != nil {
		return rep, err
	}
	cov := wk.Coverage
	rep.addf("DNS information", "71.7%", "%s", pct(ratio(cov.WithDNS, cov.Total)))
	rep.addf("at least one URI", "23.8%", "%s", pct(ratio(cov.WithURI, cov.Total)))
	rep.addf("X.509 information", "17.7%", "%s", pct(ratio(cov.WithCert, cov.Total)))
	rep.addf("at least one of the three", "81.9%", "%s", pct(ratio(cov.WithAny, cov.Total)))
	rep.addf("cleaning reduction", "<3% of pool", "%d items, %d servers emptied",
		cov.CleanedItems, cov.CleanedOut)
	return rep, nil
}
