package experiments_test

import (
	"strconv"
	"strings"
	"testing"

	"ixplens/internal/core/churn"
	"ixplens/internal/core/cluster"
	"ixplens/internal/core/hetero"
	. "ixplens/internal/experiments"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/traffic"
)

// TestReportScaleShapes runs the harness at the report scale (0.01,
// with a reduced sample budget) and asserts the headline shapes of the
// paper hold — the integration-level contract EXPERIMENTS.md documents.
func TestReportScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("report-scale integration test skipped with -short")
	}
	cfg := netmodel.PaperScale(0.01)
	opts := traffic.Options{SamplesPerWeek: 120_000, SamplingRate: 16384, SnapLen: 128}
	r, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}

	wk, agg, _, err := r.Week45()
	if err != nil {
		t.Fatal(err)
	}
	// E1: the cascade leaves >98% peering traffic.
	if s := wk.Counts.PeeringShare(); s < 0.975 {
		t.Errorf("peering share %.4f", s)
	}
	// E4: the IXP sees essentially all routed ASes in peering traffic.
	all := agg.Summarize(nil)
	if float64(all.ASes) < 0.95*float64(len(r.Env.World.ASes)) {
		t.Errorf("peering sees only %d of %d ASes", all.ASes, len(r.Env.World.ASes))
	}
	// E6: traffic ranking is DE-led.
	_, byBytes := agg.TopCountries(3, nil)
	if byBytes[0].Key != "DE" {
		t.Errorf("top traffic country %s, want DE", byBytes[0].Key)
	}

	// E16: clustering quality at scale.
	v := cluster.Validate(wk.Clusters, func(ip packet.IPv4Addr) (int32, bool) {
		idx, ok := r.Env.World.ServerByIP(ip)
		if !ok {
			return 0, false
		}
		return r.Env.World.Servers[idx].Org, true
	})
	if v.FalsePositiveRate > 0.08 {
		t.Errorf("clustering FP rate %.3f", v.FalsePositiveRate)
	}
	if s1 := wk.Clusters.ClusteredShare(cluster.Step1); s1 < 0.55 {
		t.Errorf("step-1 share %.3f", s1)
	}

	// E19: the Akamai analog's off-link share sits near the paper's 11%.
	rep, err := r.Fig7bAcmeLinks()
	if err != nil {
		t.Fatal(err)
	}
	off := findPct(t, rep, "traffic NOT via own peering links")
	if off < 3 || off > 30 {
		t.Errorf("acme off-link share %.1f%%", off)
	}

	// E10/E13: churn bands.
	tracker, _, err := r.Tracked()
	if err != nil {
		t.Fatal(err)
	}
	weeks := tracker.Compute()
	last := weeks[len(weeks)-1]
	if s := last.Share(churn.PoolStable); s < 0.12 || s > 0.45 {
		t.Errorf("stable share %.3f", s)
	}
	if s := last.ByteShare(churn.PoolStable); s < last.Share(churn.PoolStable) {
		t.Error("stable pool not traffic-heavy")
	}

	// E18: the megahost AS hosts the most organizations.
	points := hetero.ASHosting(wk.Clusters, 10)
	if len(points) == 0 {
		t.Fatal("no AS hosting points")
	}
	w := r.Env.World
	megaASN := w.ASes[w.Orgs[w.Special.MegaHost].HomeAS].ASN
	if points[0].ASN != megaASN {
		t.Errorf("top hosting AS is %d, megahost is %d", points[0].ASN, megaASN)
	}
}

// findPct extracts the leading percentage from a report row's measured
// value.
func findPct(t *testing.T, rep Report, metric string) float64 {
	t.Helper()
	for _, row := range rep.Rows {
		if row.Metric == metric {
			s := strings.TrimSuffix(row.Measured, "%")
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				t.Fatalf("unparseable measured value %q", row.Measured)
			}
			return v
		}
	}
	t.Fatalf("metric %q not found", metric)
	return 0
}

// TestServerToServerTrendPositive asserts E22's prediction holds in the
// generated world: the measured m2m share grows between the first and
// last weeks.
func TestServerToServerTrendPositive(t *testing.T) {
	cfg := netmodel.Tiny()
	opts := traffic.Options{SamplesPerWeek: 25_000, SamplingRate: 16384, SnapLen: 128}
	r, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.ServerToServerTrend()
	if err != nil {
		t.Fatal(err)
	}
	series := rep.Series["m2m-share"]
	if len(series) != 2 {
		t.Fatalf("series = %v", series)
	}
	if series[1] <= series[0] {
		t.Fatalf("m2m share did not grow: %.4f -> %.4f", series[0], series[1])
	}
}
