// Package experiments reproduces every table and figure of the paper's
// evaluation: each experiment runs the measurement pipeline over the
// synthetic world and reports paper-value vs measured-value rows, plus
// the raw series behind the figures. cmd/ixpreport prints these reports;
// the repository-level benchmarks regenerate them under testing.B.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"ixplens/internal/core/churn"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/visibility"
	"ixplens/internal/core/webserver"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/routing"
	"ixplens/internal/traffic"
)

// Row is one metric of a report: what the paper states, what the
// reproduction measured.
type Row struct {
	Metric   string
	Paper    string
	Measured string
}

// Report is one experiment's outcome.
type Report struct {
	ID    string
	Title string
	Rows  []Row
	// Series carries figure data (rank curves, weekly series, scatter
	// coordinates) keyed by a short name.
	Series map[string][]float64
}

// add appends a row.
func (r *Report) add(metric, paper string, measured string) {
	r.Rows = append(r.Rows, Row{Metric: metric, Paper: paper, Measured: measured})
}

func (r *Report) addf(metric, paper, format string, args ...interface{}) {
	r.add(metric, paper, fmt.Sprintf(format, args...))
}

func (r *Report) series(name string, values []float64) {
	if r.Series == nil {
		r.Series = make(map[string][]float64)
	}
	r.Series[name] = values
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	wMetric, wPaper := len("metric"), len("paper")
	for _, row := range r.Rows {
		if len(row.Metric) > wMetric {
			wMetric = len(row.Metric)
		}
		if len(row.Paper) > wPaper {
			wPaper = len(row.Paper)
		}
	}
	fmt.Fprintf(&b, "  %-*s  %-*s  %s\n", wMetric, "metric", wPaper, "paper", "measured")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-*s  %-*s  %s\n", wMetric, row.Metric, wPaper, row.Paper, row.Measured)
	}
	return b.String()
}

// Runner owns the environment and caches the expensive artifacts
// (week-45 capture and analysis, 17-week tracking) across experiments.
type Runner struct {
	Env *pipeline.Env

	// runCtx cancels the pipeline passes behind every experiment; see
	// SetContext. nil means context.Background().
	runCtx context.Context

	week45 *pipeline.Week
	src45  *dissect.SliceSource
	agg45  *visibility.Aggregator

	tracker  *churn.Tracker
	weekly   []*webserver.Result
	weekErrs pipeline.WeekErrors
}

// SetContext installs the context every subsequent experiment's
// pipeline passes run under, so a whole report run can be cancelled
// from one place (experiments themselves are too numerous and too
// cheap to each take a context parameter).
func (r *Runner) SetContext(ctx context.Context) { r.runCtx = ctx }

// ctx returns the runner's context, never nil.
func (r *Runner) ctx() context.Context {
	if r.runCtx == nil {
		return context.Background()
	}
	return r.runCtx
}

// New builds a runner over a fresh world.
func New(cfg netmodel.Config, opts traffic.Options) (*Runner, error) {
	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		return nil, err
	}
	return &Runner{Env: env}, nil
}

// FocusWeek is the weekly snapshot every single-week experiment uses
// (week 45, like the paper).
const FocusWeek = 45

// Week45 runs (once) the full week-45 analysis, including the
// visibility aggregation that Tables 1-3 need.
func (r *Runner) Week45() (*pipeline.Week, *visibility.Aggregator, *dissect.SliceSource, error) {
	if r.week45 != nil {
		r.src45.Reset()
		return r.week45, r.agg45, r.src45, nil
	}
	src, truth, err := r.Env.CaptureWeek(r.ctx(), r.focusWeek())
	if err != nil {
		return nil, nil, nil, err
	}
	// ONE fused pass: AnalyzeWeek feeds every registered analyzer —
	// identifier, visibility, link flows — from the same decode, and the
	// aggregator Tables 1-3 need rebuilds from the persisted visibility
	// product over the environment's shared entity table.
	wk, _, err := r.Env.AnalyzeWeek(r.ctx(), r.focusWeek(), src)
	if err != nil {
		return nil, nil, nil, err
	}
	if wk.Visibility == nil {
		return nil, nil, nil, errors.New("experiments: visibility analyzer not in the registry")
	}
	wk.Truth = truth
	agg := wk.Visibility.Aggregator(r.Env.EntityTable())
	r.week45, r.agg45, r.src45 = wk, agg, src
	r.src45.Reset()
	return wk, agg, src, nil
}

// focusWeek clamps FocusWeek into the configured window.
func (r *Runner) focusWeek() int {
	cfg := &r.Env.World.Cfg
	w := FocusWeek
	if w < cfg.FirstWeek {
		w = cfg.FirstWeek
	}
	if w > cfg.LastWeek() {
		w = cfg.LastWeek()
	}
	return w
}

// Tracked runs (once) the 17-week light pipeline. Per-week failures
// degrade instead of aborting: the gap-annotated tracker and partial
// results are cached and returned, and the typed error set is kept for
// WeekErrors so reports can disclose the missing coverage.
func (r *Runner) Tracked() (*churn.Tracker, []*webserver.Result, error) {
	if r.tracker != nil {
		return r.tracker, r.weekly, nil
	}
	tracker, weekly, err := r.Env.TrackWeeks(r.ctx())
	if err != nil {
		var werrs pipeline.WeekErrors
		if !errors.As(err, &werrs) {
			return nil, nil, err
		}
		r.weekErrs = werrs
	}
	r.tracker, r.weekly = tracker, weekly
	return tracker, weekly, nil
}

// WeekErrors reports the per-week failures of the Tracked run (nil when
// every week completed, or before Tracked ran).
func (r *Runner) WeekErrors() pipeline.WeekErrors { return r.weekErrs }

// serverFilter returns the predicate selecting identified server IPs.
func serverFilter(res *webserver.Result) func(packet.IPv4Addr) bool {
	return func(ip packet.IPv4Addr) bool {
		_, ok := res.Servers[ip]
		return ok
	}
}

// serverSet materializes the identified server IPs.
func serverSet(res *webserver.Result) map[packet.IPv4Addr]bool {
	out := make(map[packet.IPv4Addr]bool, len(res.Servers))
	for ip := range res.Servers {
		out[ip] = true
	}
	return out
}

// memberASNs lists the ASNs of the week's IXP members.
func (r *Runner) memberASNs(isoWeek int) []uint32 {
	w := r.Env.World
	var out []uint32
	for i := range w.ASes {
		if w.ASes[i].IsMemberInWeek(isoWeek) {
			out = append(out, w.ASes[i].ASN)
		}
	}
	return out
}

// distanceClasses computes A(L)/A(M)/A(G) for the focus week.
func (r *Runner) distanceClasses() map[uint32]routing.DistanceClass {
	return r.Env.World.ASGraph().Classify(r.memberASNs(r.focusWeek()))
}

// All runs every experiment in DESIGN.md order.
func (r *Runner) All() ([]Report, error) {
	type step struct {
		name string
		fn   func() (Report, error)
	}
	steps := []step{
		{"E1", r.Fig1Filtering},
		{"E2", r.ServerIdentification},
		{"E3", r.Fig2RankCurve},
		{"E4", r.Table1Summary},
		{"E5", r.Fig3CountryShares},
		{"E6", r.Table2Top10},
		{"E7", r.Table3LocalGlobal},
		{"E8", r.BlindSpotAlexa},
		{"E9", r.BlindSpotISP},
		{"E10", r.Fig4aServerChurn},
		{"E11", r.Fig4bRegionChurn},
		{"E12", r.Fig4cASChurn},
		{"E13", r.Fig5TrafficChurn},
		{"E14", r.WeeklyStability},
		{"E15", r.EventDetection},
		{"E16", r.ClusterOrganizations},
		{"E17", r.Fig6bOrgSpread},
		{"E18", r.Fig6cASHosting},
		{"E19", r.Fig7bAcmeLinks},
		{"E20", r.Fig7cCloudflareLinks},
		{"E21", r.MetadataCoverage},
		{"E22", r.ServerToServerTrend},
		{"E23", r.SamplingCalibration},
		{"E24", r.PeeringFabricVisibility},
	}
	out := make([]Report, 0, len(steps))
	for _, s := range steps {
		rep, err := s.fn()
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", s.name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// pct formats a ratio as a percentage string.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// ratio guards division by zero.
func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Markdown renders the report as a GitHub-flavored Markdown section
// with a paper-vs-measured table — the format EXPERIMENTS.md uses.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	b.WriteString("| metric | paper | measured |\n|---|---|---|\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "| %s | %s | %s |\n",
			mdEscape(row.Metric), mdEscape(row.Paper), mdEscape(row.Measured))
	}
	return b.String()
}

// mdEscape keeps table cells from breaking the Markdown grid.
func mdEscape(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}
