package experiments

import (
	"errors"
	"fmt"

	"ixplens/internal/analysis"
	"ixplens/internal/core/dissect"
	"ixplens/internal/packet"
)

// ServerToServerTrend tests the paper's closing prediction (Section 7):
// as more servers are deployed close to end users, IXPs will see less
// end-user-to-server traffic and an increasing amount of server-to-server
// traffic. The experiment captures the first and last study weeks,
// identifies the servers of each, and measures which share of the
// server-related samples has *both* endpoints identified as servers.
func (r *Runner) ServerToServerTrend() (Report, error) {
	rep := Report{ID: "E22", Title: "§7 (extension) — server-to-server traffic trend"}
	cfg := &r.Env.World.Cfg

	first, err := r.m2mShare(cfg.FirstWeek)
	if err != nil {
		return rep, err
	}
	last, err := r.m2mShare(cfg.LastWeek())
	if err != nil {
		return rep, err
	}
	rep.addf("server-to-server share, first week", "expected to grow (prediction)", "%s", pct(first))
	rep.addf("server-to-server share, last week", "larger than first", "%s", pct(last))
	rep.addf("trend", "increasing", "%+.1f points", 100*(last-first))
	rep.series("m2m-share", []float64{first, last})
	return rep, nil
}

// m2mShare measures, for one week, the fraction of server-involving
// peering samples whose both endpoints are identified servers. A
// narrowed analyzer registry (identification + link flows) runs in ONE
// streamed pass; the split then reads off the aggregated flow product —
// every peering sample is represented there with its endpoints — so no
// replay pass is ever needed.
func (r *Runner) m2mShare(isoWeek int) (float64, error) {
	reg, err := analysis.Select(analysis.NameWebserver + "," + analysis.NameLinks)
	if err != nil {
		return 0, err
	}
	run := reg.NewRun(r.Env.AnalysisContext(), 1)
	var seq uint64
	if _, _, _, err := r.Env.StreamWeek(r.ctx(), isoWeek, func(rec *dissect.Record) {
		run.Observe(0, rec, seq)
		seq++
	}); err != nil {
		return 0, err
	}
	prods, err := run.Finish(isoWeek)
	if err != nil {
		return 0, err
	}
	res, links := prods.Webserver(), prods.Links()
	isServer := func(ip packet.IPv4Addr) bool {
		_, ok := res.Servers[ip]
		return ok
	}
	var serverSamples, m2m uint64
	for i := range links.Flows {
		f := &links.Flows[i]
		srcIs, dstIs := isServer(f.Src), isServer(f.Dst)
		if srcIs || dstIs {
			serverSamples += f.Samples
		}
		if srcIs && dstIs {
			m2m += f.Samples
		}
	}
	if serverSamples == 0 {
		return 0, nil
	}
	return float64(m2m) / float64(serverSamples), nil
}

// SamplingCalibration is an internal-validity experiment the paper's
// §2.1 leans on (it cites the companion study for the absence of
// sampling bias): (a) the traffic volumes estimated from flow samples
// must agree with the switch's interface counters, and (b) the measured
// per-organization traffic shares must track the generator's configured
// demand for the headline organizations.
func (r *Runner) SamplingCalibration() (Report, error) {
	rep := Report{ID: "E23", Title: "§2.1 (extension) — sampling calibration"}
	wk, _, src, err := r.Week45()
	if err != nil {
		return rep, err
	}

	// (a) Flow-sample volume estimates vs interface counters.
	estimates := make(map[uint32]uint64)
	counters := make(map[uint32]uint64)
	for i := range src.Datagrams {
		d := &src.Datagrams[i]
		for k := range d.Flows {
			fs := &d.Flows[k]
			estimates[fs.InputIf] += uint64(fs.Raw.FrameLength) * uint64(fs.SamplingRate)
		}
		for k := range d.Counters {
			cs := &d.Counters[k]
			if cs.HasGeneric {
				counters[cs.Generic.IfIndex] = cs.Generic.InOctets
			}
		}
	}
	ports, agree := 0, 0
	var maxRel float64
	for port, est := range estimates {
		ctr, ok := counters[port]
		if !ok || ctr == 0 {
			continue
		}
		ports++
		rel := float64(est)/float64(ctr) - 1
		if rel < 0 {
			rel = -rel
		}
		if rel < 0.001 {
			agree++
		}
		if rel > maxRel {
			maxRel = rel
		}
	}
	rep.addf("ports with counters", "all member ports", "%d", ports)
	rep.addf("estimate vs counter agreement", "consistent", "%d of %d ports within 0.1%% (max dev %.4f%%)",
		agree, ports, 100*maxRel)

	// (b) Measured org traffic shares vs configured demand.
	w := r.Env.World
	var serverBytes uint64
	for _, c := range wk.Clusters.Clusters {
		serverBytes += c.Bytes
	}
	for _, org := range []int32{w.Special.AcmeCDN, w.Special.GlobalSearch, w.Special.HetzHost} {
		o := &w.Orgs[org]
		c := wk.Clusters.Clusters[o.Domain]
		if c == nil || serverBytes == 0 {
			continue
		}
		measured := float64(c.Bytes) / float64(serverBytes)
		rep.addf(o.Name+" traffic share", fmt.Sprintf("configured %.1f%%", 100*o.Weight),
			"%s", pct(measured))
	}
	return rep, nil
}

// PeeringFabricVisibility connects to the companion study the paper
// positions itself against (Ager et al., "Anatomy of a Large European
// IXP" — reference [13]): how much of the member-to-member peering
// fabric is visible as traffic in one week of samples, compared with the
// fabric's ground-truth peering matrix.
func (r *Runner) PeeringFabricVisibility() (Report, error) {
	rep := Report{ID: "E24", Title: "[13] (extension) — visible peering fabric"}
	wk, _, _, err := r.Week45()
	if err != nil {
		return rep, err
	}
	if wk.Links == nil {
		return rep, errors.New("experiments: links analyzer not in the registry")
	}
	// The persisted flow product already keys every peering sample by its
	// (ingress, egress) member pair — the visible fabric reads off it
	// without another pass over the capture.
	type pair struct{ a, b int32 }
	seen := make(map[pair]bool)
	for i := range wk.Links.Flows {
		f := &wk.Links.Flows[i]
		a, b := f.In, f.Out
		if a > b {
			a, b = b, a
		}
		seen[pair{a, b}] = true
	}

	// Ground truth: member pairs that peer directly on the fabric.
	w := r.Env.World
	members := w.MemberASes(r.focusWeek())
	peering := 0
	for i := 0; i < len(members); i++ {
		for k := i + 1; k < len(members); k++ {
			if r.Env.Fabric.Peers(members[i], members[k]) {
				peering++
			}
		}
	}
	// Observed pairs can include relay hops (transit member links), so
	// restrict the comparison to directly peering pairs.
	observedPeering := 0
	for p := range seen {
		if r.Env.Fabric.Peers(p.a, p.b) {
			observedPeering++
		}
	}
	total := len(members) * (len(members) - 1) / 2
	rep.addf("member pairs", "452 members -> ~102K pairs", "%d members -> %d pairs", len(members), total)
	rep.addf("pairs peering on the fabric", "surprisingly rich fabric ([13])", "%d (%s)",
		peering, pct(ratio(peering, total)))
	rep.addf("peering pairs seen with traffic", "majority visible in a week", "%d (%s of peering pairs)",
		observedPeering, pct(ratio(observedPeering, peering)))
	rep.addf("links observed in total", "-", "%d", len(seen))
	return rep, nil
}
