package experiments

import (
	"ixplens/internal/core/blindspot"
	"ixplens/internal/ispview"
)

// BlindSpotAlexa reproduces the Section 3.3 Alexa recovery and
// resolver-based discovery: recovery rates over the top lists, the
// additional server IPs active measurements find, their overlap with
// the IXP view, and the classification of the invisible remainder.
func (r *Runner) BlindSpotAlexa() (Report, error) {
	rep := Report{ID: "E8", Title: "§3.3 — Alexa recovery and active discovery"}
	wk, _, _, err := r.Week45()
	if err != nil {
		return rep, err
	}
	list := r.Env.AlexaList(r.focusWeek())
	observed := blindspot.ObservedDomains(wk.Servers)
	n := len(list.Domains)
	top1pct := maxInt(1, n/1000) // "top-1K" analogue
	top10pct := maxInt(1, n/100) // "top-10K" analogue
	rates := blindspot.RecoveryRates(list, observed, []int{top1pct, top10pct, n})
	rep.addf("top-1K recovery (top 0.1% here)", "80%", "%s", pct(rates[top1pct]))
	rep.addf("top-10K recovery (top 1% here)", "63%", "%s", pct(rates[top10pct]))
	rep.addf("top-1M recovery (full list here)", "20%", "%s", pct(rates[n]))

	// Active queries over the uncovered portion of the list.
	ixpSet := serverSet(wk.Servers)
	var uncovered []string
	for _, d := range list.Domains {
		if !observed[d] {
			uncovered = append(uncovered, d)
		}
		if len(uncovered) >= 50_000 {
			break
		}
	}
	disc := blindspot.Discover(r.Env.DNS, uncovered, 25, ixpSet, r.Env.World.Cfg.Seed)
	rep.addf("uncovered domains queried", "~800K via 25K resolvers", "%d via %d resolvers",
		disc.QueriedDomains, len(r.Env.DNS.Resolvers()))
	rep.addf("server IPs discovered", "~600K", "%d", len(disc.Discovered))
	rep.addf("already seen at IXP", ">360K", "%d (%s)", disc.AlreadyAtIXP,
		pct(ratio(disc.AlreadyAtIXP, len(disc.Discovered))))

	cats := blindspot.ClassifyUnseen(r.Env.World, disc.Discovered, ixpSet)
	unseen := len(disc.Discovered) - disc.AlreadyAtIXP
	rep.addf("unseen at IXP", "~240K", "%d", unseen)
	privFar := cats[blindspot.CatPrivateCluster] + cats[blindspot.CatFarRegion]
	rep.addf("private-cluster + far-region share", ">40%", "%s", pct(ratio(privFar, unseen)))
	for _, c := range []blindspot.UnseenCategory{
		blindspot.CatPrivateCluster, blindspot.CatFarRegion,
		blindspot.CatInvalidURIHandler, blindspot.CatSmallRemote, blindspot.CatOther,
	} {
		rep.addf("  "+c.String(), "-", "%d", cats[c])
	}

	// The Akamai-analog case study.
	w := r.Env.World
	if c := wk.Clusters.Clusters[w.Orgs[w.Special.AcmeCDN].Domain]; c != nil {
		cs := blindspot.StudyOrg(w, r.Env.DNS, c.IPs, w.Special.AcmeCDN, 60)
		rep.addf("acme visible at IXP", "28K servers in 278 ASes", "%d servers in %d ASes",
			cs.VisibleServers, cs.VisibleASes)
		rep.addf("acme via active measurement", "~100K servers in 700 ASes", "%d servers in %d ASes",
			cs.ActiveServers, cs.ActiveASes)
		rep.addf("acme ground truth", "100K+ servers in 1000+ ASes", "%d servers in %d ASes",
			cs.TruthServers, cs.TruthASes)
	}
	return rep, nil
}

// BlindSpotISP reproduces the Tier-1 ISP cross-check of Section 3.1:
// how the ISP's server view compares with the IXP's.
func (r *Runner) BlindSpotISP() (Report, error) {
	rep := Report{ID: "E9", Title: "§3.1 — Tier-1 ISP cross-validation"}
	wk, _, _, err := r.Week45()
	if err != nil {
		return rep, err
	}
	w := r.Env.World
	ispAS, err := ispview.PickISP(w)
	if err != nil {
		return rep, err
	}
	flows := r.Env.Opts.SamplesPerWeek
	log := ispview.Observe(w, r.Env.DNS, ispAS, r.focusWeek(), flows)
	cmp := ispview.CompareWithIXP(log, serverSet(wk.Servers))
	rep.addf("ISP vantage", "large European Tier-1, not at the IXP", "AS%d (%s)",
		w.ASes[ispAS].ASN, w.ASes[ispAS].Country)
	rep.addf("server IPs in ISP logs", "(proprietary)", "%d", cmp.ISPServers)
	rep.addf("also seen at IXP", "all but ~45K", "%d (%s)", cmp.SeenAtIXP,
		pct(ratio(cmp.SeenAtIXP, cmp.ISPServers)))
	rep.addf("ISP-only server IPs", "~45K", "%d (%s)", cmp.NotAtIXP,
		pct(ratio(cmp.NotAtIXP, cmp.ISPServers)))
	rep.addf("IXP identifications confirmed by ISP", "confirmed", "%d", cmp.ConfirmedAtIXP)
	return rep, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
