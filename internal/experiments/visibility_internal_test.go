package experiments

import (
	"testing"

	"ixplens/internal/core/visibility"
)

// TestFirstByBytes pins the by-traffic selection: the heaviest entry by
// Bytes wins regardless of slice order (the by-IP rankings Table 2 also
// feeds through here are NOT bytes-sorted), and ties break to the
// lexicographically smaller key.
func TestFirstByBytes(t *testing.T) {
	cases := []struct {
		name string
		in   []visibility.Share
		want string
	}{
		{"empty", nil, "-"},
		{"single", []visibility.Share{{Key: "DE", Count: 1, Bytes: 10}}, "DE"},
		{"bytes-sorted input", []visibility.Share{
			{Key: "DE", Bytes: 300}, {Key: "US", Bytes: 200}, {Key: "CN", Bytes: 100},
		}, "DE"},
		{"count-sorted input, bytes winner not first", []visibility.Share{
			{Key: "US", Count: 90, Bytes: 50}, {Key: "DE", Count: 10, Bytes: 900},
		}, "DE"},
		{"tie breaks to smaller key", []visibility.Share{
			{Key: "US", Bytes: 500}, {Key: "DE", Bytes: 500}, {Key: "FR", Bytes: 400},
		}, "DE"},
	}
	for _, tc := range cases {
		if got := firstByBytes(tc.in); got != tc.want {
			t.Errorf("%s: firstByBytes = %q, want %q", tc.name, got, tc.want)
		}
	}
	// On an already bytes-descending ranking (what TopCountries returns
	// as its second slice) the selection agrees with first(): the
	// satellite fix changed the implementation, not Table 2's answer.
	ranked := []visibility.Share{
		{Key: "DE", Bytes: 300}, {Key: "US", Bytes: 200}, {Key: "CN", Bytes: 100},
	}
	if firstByBytes(ranked) != first(ranked) {
		t.Fatal("firstByBytes disagrees with first() on a bytes-sorted ranking")
	}
}
