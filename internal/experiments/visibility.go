package experiments

import (
	"fmt"

	"ixplens/internal/core/visibility"
	"ixplens/internal/routing"
)

// Fig1Filtering reproduces Figure 1 and the Section 2.2.1 text: the
// filtering cascade from all traffic down to peering traffic, plus the
// TCP/UDP split.
func (r *Runner) Fig1Filtering() (Report, error) {
	rep := Report{ID: "E1", Title: "Fig. 1 — traffic filtering cascade"}
	wk, _, _, err := r.Week45()
	if err != nil {
		return rep, err
	}
	c := wk.Counts
	rep.addf("non-IPv4 share", "~0.4%", "%s", pct(ratio(c.NonIPv4, c.Total)))
	rep.addf("local/non-member share", "~0.6%", "%s", pct(ratio(c.Local, c.Total)))
	rep.addf("non-TCP/UDP share", "<0.5%", "%s", pct(ratio(c.NonTCPUDP, c.Total)))
	rep.addf("peering traffic share", ">98.5%", "%s", pct(c.PeeringShare()))
	rep.addf("TCP share of peering bytes", "82%", "%s", pct(c.TCPShare()))
	rep.addf("UDP share of peering bytes", "18%", "%s", pct(1-c.TCPShare()))
	rep.series("cascade", []float64{
		ratio(c.NonIPv4, c.Total), ratio(c.Local, c.Total),
		ratio(c.NonTCPUDP, c.Total), c.PeeringShare(),
	})
	return rep, nil
}

// ServerIdentification reproduces the Section 2.2.2 numbers: the size
// of the identified Web server set, the crawl funnel, the server-traffic
// share, multi-purpose and dual-role counts.
func (r *Runner) ServerIdentification() (Report, error) {
	rep := Report{ID: "E2", Title: "§2.2.2 — Web server identification"}
	wk, _, _, err := r.Week45()
	if err != nil {
		return rep, err
	}
	res := wk.Servers
	nHTTPS := 0
	for _, s := range res.Servers {
		if s.HTTPS {
			nHTTPS++
		}
	}
	// ServerBytes counts each sample once per server endpoint, so
	// machine-to-machine samples appear twice: a slight overestimate.
	peeringBytes := wk.Counts.PeeringTCPBytes + wk.Counts.PeeringUDPBytes
	srvShare := float64(res.ServerBytes) / float64(peeringBytes)
	if srvShare > 1 {
		srvShare = 1
	}
	rep.addf("identified server IPs", "~1.5M", "%d", len(res.Servers))
	rep.addf("of which HTTPS", "250K", "%d", nHTTPS)
	rep.addf("443-candidate funnel", "1.5M → 500K → 250K", "%d → %d → %d",
		res.Candidates443, res.Responded443, res.Valid443)
	rep.addf("server share of peering traffic", ">70%", "%s", pct(srvShare))
	rep.addf("multi-purpose servers (multi-port)", "350K of 1.5M", "%d of %d",
		res.MultiPurpose(), len(res.Servers))
	rep.addf("dual-role (also client)", "200K of 1.5M", "%d of %d",
		res.DualRole(), len(res.Servers))
	return rep, nil
}

// Fig2RankCurve reproduces Figure 2: per-server-IP traffic shares.
func (r *Runner) Fig2RankCurve() (Report, error) {
	rep := Report{ID: "E3", Title: "Fig. 2 — traffic per server IP, ranked"}
	wk, _, _, err := r.Week45()
	if err != nil {
		return rep, err
	}
	curve := visibility.RankCurve(wk.Servers)
	rep.series("rank-curve", curve)
	rep.addf("top-34 server IPs' traffic share", ">6%", "%s", pct(visibility.TopShare(curve, 34)))
	if len(curve) > 0 {
		rep.addf("single heaviest server IP share", ">0.5% exists", "%s", pct(curve[0]))
	}
	rep.addf("observed server IPs", "~1.5M", "%d", len(curve))
	return rep, nil
}

// Table1Summary reproduces Table 1: peering- and server-traffic views of
// IPs, ASes, prefixes and countries, against the world's ground truth.
func (r *Runner) Table1Summary() (Report, error) {
	rep := Report{ID: "E4", Title: "Table 1 — IXP summary statistics, week 45"}
	wk, agg, _, err := r.Week45()
	if err != nil {
		return rep, err
	}
	w := r.Env.World
	all := agg.Summarize(nil)
	srv := agg.Summarize(serverFilter(wk.Servers))

	truthASes := len(w.ASes)
	truthPrefixes := len(w.Prefixes)
	truthCountries := len(w.GeoDB().Countries())

	rep.addf("peering IPs", "232,460,635", "%d", all.IPs)
	rep.addf("peering ASes seen", "42,825 of ~43K", "%d of %d (%s)",
		all.ASes, truthASes, pct(ratio(all.ASes, truthASes)))
	rep.addf("peering prefixes seen", "445,051 of 450K+", "%d of %d (%s)",
		all.Prefixes, truthPrefixes, pct(ratio(all.Prefixes, truthPrefixes)))
	rep.addf("peering countries seen", "242 of ~250", "%d of %d",
		all.Countries, truthCountries)
	rep.addf("server IPs", "1,488,286", "%d", srv.IPs)
	rep.addf("server ASes seen", "19,824 (~50% of routed)", "%d (%s)",
		srv.ASes, pct(ratio(srv.ASes, truthASes)))
	rep.addf("server prefixes seen", "75,841 (~17%)", "%d (%s)",
		srv.Prefixes, pct(ratio(srv.Prefixes, truthPrefixes)))
	rep.addf("server countries seen", "200 (~80%)", "%d (%s)",
		srv.Countries, pct(ratio(srv.Countries, truthCountries)))
	return rep, nil
}

// Fig3CountryShares reproduces Figure 3: the percentage of observed IPs
// per country.
func (r *Runner) Fig3CountryShares() (Report, error) {
	rep := Report{ID: "E5", Title: "Fig. 3 — percentage of IPs per country"}
	_, agg, _, err := r.Week45()
	if err != nil {
		return rep, err
	}
	shares := agg.CountryShares(nil)
	total := 0
	for _, s := range shares {
		total += s.Count
	}
	series := make([]float64, 0, len(shares))
	for _, s := range shares {
		series = append(series, ratio(s.Count, total))
	}
	rep.series("country-shares", series)
	rep.addf("countries observed", "242", "%d", len(shares))
	if len(shares) >= 3 {
		rep.addf("top country", "US (>5% band)", "%s (%s)", shares[0].Key, pct(ratio(shares[0].Count, total)))
		rep.addf("2nd country", "DE", "%s (%s)", shares[1].Key, pct(ratio(shares[1].Count, total)))
		rep.addf("3rd country", "CN", "%s (%s)", shares[2].Key, pct(ratio(shares[2].Count, total)))
	}
	return rep, nil
}

// Table2Top10 reproduces Table 2: top-10 countries and networks by IPs
// and by traffic, for all peering traffic and the server subset.
func (r *Runner) Table2Top10() (Report, error) {
	rep := Report{ID: "E6", Title: "Table 2 — top-10 contributors, week 45"}
	wk, agg, _, err := r.Week45()
	if err != nil {
		return rep, err
	}
	filter := serverFilter(wk.Servers)
	allByIPs, allByBytes := agg.TopCountries(10, nil)
	srvByIPs, srvByBytes := agg.TopCountries(10, filter)
	rep.addf("all IPs: top country", "US", "%s", first(allByIPs))
	rep.addf("all traffic: top country", "DE", "%s", firstByBytes(allByBytes))
	rep.addf("server IPs: top country", "DE", "%s", first(srvByIPs))
	rep.addf("server traffic: top country", "US", "%s", firstByBytes(srvByBytes))
	rep.addf("all IPs top-10", "US DE CN RU IT FR GB TR UA JP", "%s", keysOf(allByIPs))
	rep.addf("server IPs top-10", "DE US RU FR GB CN NL CZ IT UA", "%s", keysOf(srvByIPs))

	_, netByBytes := agg.TopASNs(10, filter)
	w := r.Env.World
	names := make([]string, 0, len(netByBytes))
	for _, n := range netByBytes {
		names = append(names, r.asLabel(n.ASN))
	}
	acmeASN := w.ASes[w.Orgs[w.Special.AcmeCDN].HomeAS].ASN
	topIsAcme := len(netByBytes) > 0 && netByBytes[0].ASN == acmeASN
	rep.addf("server traffic: top network", "Akamai", "%s (acme-cdn first: %v)", names[0], topIsAcme)
	rep.addf("server traffic networks top-10", "Akamai Google Hetzner VKontakte ...", "%v", names)
	return rep, nil
}

func first(s []visibility.Share) string {
	if len(s) == 0 {
		return "-"
	}
	return s[0].Key
}

// firstByBytes picks the heaviest entry by traffic volume, regardless
// of the slice's sort order (ties break to the lexicographically
// smaller key, matching the by-bytes rankings' deterministic order).
func firstByBytes(s []visibility.Share) string {
	if len(s) == 0 {
		return "-"
	}
	best := 0
	for i := 1; i < len(s); i++ {
		if s[i].Bytes > s[best].Bytes ||
			(s[i].Bytes == s[best].Bytes && s[i].Key < s[best].Key) {
			best = i
		}
	}
	return s[best].Key
}

func keysOf(s []visibility.Share) string {
	out := ""
	for i, sh := range s {
		if i > 0 {
			out += " "
		}
		out += sh.Key
	}
	return out
}

// asLabel names an AS using the owning org where one exists.
func (r *Runner) asLabel(asn uint32) string {
	w := r.Env.World
	idx, ok := w.ASIndexByASN(asn)
	if !ok {
		return fmt.Sprintf("AS%d", asn)
	}
	for i := range w.Orgs {
		if w.Orgs[i].HomeAS == idx {
			return w.Orgs[i].Name
		}
	}
	return fmt.Sprintf("AS%d", asn)
}

// Table3LocalGlobal reproduces Table 3: the A(L)/A(M)/A(G) breakdown.
func (r *Runner) Table3LocalGlobal() (Report, error) {
	rep := Report{ID: "E7", Title: "Table 3 — IXP as local yet global player"}
	wk, agg, _, err := r.Week45()
	if err != nil {
		return rep, err
	}
	classes := r.distanceClasses()
	peer := agg.LocalGlobal(classes, nil)
	srv := agg.LocalGlobal(classes, serverFilter(wk.Servers))

	fmtRow := func(v [3]float64) string {
		return fmt.Sprintf("%s / %s / %s",
			pct(v[routing.ClassLocal]), pct(v[routing.ClassMiddle]), pct(v[routing.ClassGlobal]))
	}
	rep.add("peering IPs A(L)/A(M)/A(G)", "42.3% / 45.0% / 12.7%", fmtRow(peer.IPs))
	rep.add("peering prefixes", "10.1% / 34.1% / 55.8%", fmtRow(peer.Prefixes))
	rep.add("peering ASes", "1.0% / 48.9% / 50.1%", fmtRow(peer.ASes))
	rep.add("peering traffic", "67.3% / 28.4% / 4.3%", fmtRow(peer.Traffic))
	rep.add("server IPs", "52.9% / 41.2% / 5.9%", fmtRow(srv.IPs))
	rep.add("server prefixes", "17.2% / 61.9% / 20.9%", fmtRow(srv.Prefixes))
	rep.add("server ASes", "2.2% / 61.5% / 36.3%", fmtRow(srv.ASes))
	rep.add("server traffic", "82.6% / 17.35% / 0.05%", fmtRow(srv.Traffic))
	return rep, nil
}
