package experiments

import (
	"fmt"

	"ixplens/internal/core/churn"
	"ixplens/internal/routing"
)

// Fig4aServerChurn reproduces Figure 4(a): the weekly stable/recurrent/
// new partitions of the server IPs.
func (r *Runner) Fig4aServerChurn() (Report, error) {
	rep := Report{ID: "E10", Title: "Fig. 4(a) — churn of server IPs, weeks 35-51"}
	tracker, _, err := r.Tracked()
	if err != nil {
		return rep, err
	}
	weeks := tracker.Compute()
	last := weeks[len(weeks)-1]
	rep.addf("stable pool share (week 51)", "~30%", "%s", pct(last.Share(churn.PoolStable)))
	rep.addf("recurrent pool share", "~60%", "%s", pct(last.Share(churn.PoolRecurrent)))
	rep.addf("first-seen share", "~10%", "%s", pct(last.Share(churn.PoolNew)))

	var stable, recurrent, fresh, totals []float64
	for _, wc := range weeks {
		stable = append(stable, float64(wc.IPs[churn.PoolStable]))
		recurrent = append(recurrent, float64(wc.IPs[churn.PoolRecurrent]))
		fresh = append(fresh, float64(wc.IPs[churn.PoolNew]))
		totals = append(totals, float64(wc.Total()))
	}
	rep.series("stable", stable)
	rep.series("recurrent", recurrent)
	rep.series("new", fresh)
	rep.series("total", totals)
	return rep, nil
}

// Fig4bRegionChurn reproduces Figure 4(b): the same partitions per
// region (DE, US, RU, CN, RoW).
func (r *Runner) Fig4bRegionChurn() (Report, error) {
	rep := Report{ID: "E11", Title: "Fig. 4(b) — churn of server IPs per region"}
	tracker, _, err := r.Tracked()
	if err != nil {
		return rep, err
	}
	weeks := tracker.Compute()
	last := weeks[len(weeks)-1]
	stableTotal := last.IPs[churn.PoolStable]
	for _, region := range []string{"DE", "US", "RU", "CN", "RoW"} {
		rc := last.ByRegion[region]
		if rc == nil {
			rc = &churn.RegionChurn{}
		}
		paper := map[string]string{
			"DE": "~half the stable pool", "US": "sizable", "RU": "sizable",
			"CN": "vanishingly small", "RoW": "remainder",
		}[region]
		rep.addf(fmt.Sprintf("%s share of stable pool", region), paper, "%s",
			pct(ratio(rc.IPs[churn.PoolStable], stableTotal)))
	}
	var perRegion []float64
	for _, region := range []string{"DE", "US", "RU", "CN", "RoW"} {
		if rc := last.ByRegion[region]; rc != nil {
			perRegion = append(perRegion, float64(rc.IPs[churn.PoolStable]))
		} else {
			perRegion = append(perRegion, 0)
		}
	}
	rep.series("stable-by-region", perRegion)
	return rep, nil
}

// Fig4cASChurn reproduces Figure 4(c): AS-level churn.
func (r *Runner) Fig4cASChurn() (Report, error) {
	rep := Report{ID: "E12", Title: "Fig. 4(c) — churn of ASes with servers"}
	tracker, _, err := r.Tracked()
	if err != nil {
		return rep, err
	}
	weeks := tracker.Compute()
	last := weeks[len(weeks)-1]
	rep.addf("stable AS share (week 51)", "~70%", "%s",
		pct(ratio(last.ASes[churn.PoolStable], last.TotalASes)))
	rep.addf("first-seen AS share", "miniscule", "%s",
		pct(ratio(last.ASes[churn.PoolNew], last.TotalASes)))
	var series []float64
	for _, wc := range weeks {
		series = append(series, ratio(wc.ASes[churn.PoolStable], wc.TotalASes))
	}
	rep.series("as-stable-share", series)
	return rep, nil
}

// Fig5TrafficChurn reproduces Figure 5: server traffic per pool and
// region.
func (r *Runner) Fig5TrafficChurn() (Report, error) {
	rep := Report{ID: "E13", Title: "Fig. 5 — churn of server traffic by region"}
	tracker, _, err := r.Tracked()
	if err != nil {
		return rep, err
	}
	weeks := tracker.Compute()
	last := weeks[len(weeks)-1]
	rep.addf("stable pool traffic share", ">60% every week", "%s (week 51)",
		pct(last.ByteShare(churn.PoolStable)))
	rep.addf("recurrent pool traffic share", "<30%", "%s",
		pct(last.ByteShare(churn.PoolRecurrent)))
	minStable := 1.0
	for _, wc := range weeks[2:] {
		if s := wc.ByteShare(churn.PoolStable); s < minStable {
			minStable = s
		}
	}
	rep.addf("minimum weekly stable traffic share", ">60%", "%s", pct(minStable))
	// US/RU: the stable pool carries nearly all the region's traffic.
	for _, region := range []string{"US", "RU", "CN"} {
		rc := last.ByRegion[region]
		if rc == nil {
			continue
		}
		tot := rc.Bytes[0] + rc.Bytes[1] + rc.Bytes[2]
		if tot == 0 {
			continue
		}
		paper := "stable pool carries almost all"
		if region == "CN" {
			paper = "basically invisible in traffic"
		}
		rep.addf(fmt.Sprintf("%s stable share of region traffic", region), paper, "%s",
			pct(float64(rc.Bytes[churn.PoolStable])/float64(tot)))
	}
	var series []float64
	for _, wc := range weeks {
		series = append(series, wc.ByteShare(churn.PoolStable))
	}
	rep.series("stable-traffic-share", series)
	return rep, nil
}

// WeeklyStability reproduces the Section 4.1 text numbers: weekly AS and
// prefix counts, membership growth, traffic volume growth.
func (r *Runner) WeeklyStability() (Report, error) {
	rep := Report{ID: "E14", Title: "§4.1 — stability in the face of growth"}
	tracker, weekly, err := r.Tracked()
	if err != nil {
		return rep, err
	}
	weeks := tracker.Compute()
	w := r.Env.World
	cfg := &w.Cfg

	first, last := weeks[0], weeks[len(weeks)-1]
	truthASes := len(w.ASes)
	truthPrefixes := len(w.Prefixes)
	rep.addf("weekly ASes with server traffic", "~20K (≈50% of routed)", "%d..%d (%s..%s of routed)",
		first.TotalASes, last.TotalASes,
		pct(ratio(first.TotalASes, truthASes)), pct(ratio(last.TotalASes, truthASes)))
	rep.addf("weekly prefixes with server traffic", "~75K (≈15%)", "%d..%d (%s..%s)",
		first.TotalPrefixes, last.TotalPrefixes,
		pct(ratio(first.TotalPrefixes, truthPrefixes)), pct(ratio(last.TotalPrefixes, truthPrefixes)))
	rep.addf("members week 35 → 51", "443 → 457", "%d → %d",
		w.NumMembersInWeek(cfg.FirstWeek), w.NumMembersInWeek(cfg.LastWeek()))
	// A degraded run leaves failed weeks nil in the per-week results;
	// report the last week that actually completed.
	for i := len(weekly) - 1; i >= 0; i-- {
		if weekly[i] != nil {
			rep.addf("servers identified (last observed week)", "—", "%d", len(weekly[i].Servers))
			break
		}
	}
	if first.TotalBytes > 0 {
		rep.addf("traffic volume growth", "11.9 → 14.5 PB/day", "%.2fx over the window",
			float64(last.TotalBytes)/float64(first.TotalBytes))
	}
	if n := len(r.WeekErrors()); n > 0 {
		rep.addf("weeks missing (degraded run)", "0", "%d %v", n, r.WeekErrors().Weeks())
	}
	return rep, nil
}

// EventDetection reproduces the Section 4.2 event studies.
func (r *Runner) EventDetection() (Report, error) {
	rep := Report{ID: "E15", Title: "§4.2 — changes in the face of stability"}
	tracker, _, err := r.Tracked()
	if err != nil {
		return rep, err
	}
	weeks := tracker.Compute()
	w := r.Env.World
	cfg := &w.Cfg

	// HTTPS adoption trend.
	httpsFirst := weeks[0].HTTPSShareIPs()
	httpsLast := weeks[len(weeks)-1].HTTPSShareIPs()
	rep.addf("HTTPS server-IP share trend", "small, steady increase", "%s → %s",
		pct(httpsFirst), pct(httpsLast))
	var httpsSeries []float64
	for _, wc := range weeks {
		httpsSeries = append(httpsSeries, wc.HTTPSShareBytes())
	}
	rep.series("https-share", httpsSeries)

	// Cloud region ramp (EC2 Ireland analog), via published IP ranges.
	ieCounts := tracker.CountInRanges(r.cloudRanges(w.Special.ElastiCloud, "IE"))
	n := len(ieCounts)
	if n >= 4 {
		rep.addf("EC2-Ireland server IPs (weeks 48..51)", "pronounced increase in 49-51",
			"%v", ieCounts[n-4:])
	}
	rep.series("ec2-ireland", toFloats(ieCounts))

	// Hurricane dip (week 44) for the nimbus cloud's US ranges.
	usCounts := tracker.CountInRanges(r.cloudRanges(w.Special.NimbusCloud, "US"))
	idx := 44 - cfg.FirstWeek
	if idx >= 1 && idx+1 < len(usCounts) {
		rep.addf("cloud US-East servers weeks 43/44/45", "drastic week-44 reduction",
			"%d / %d / %d", usCounts[idx-1], usCounts[idx], usCounts[idx+1])
	}
	rep.series("nimbus-us", toFloats(usCounts))

	// Reseller growth.
	resCounts := tracker.CountByMember(w.Special.ResellerAS)
	rep.addf("reseller-carried server IPs", "50K → 100K over four months", "%d → %d",
		resCounts[0], resCounts[len(resCounts)-1])
	rep.series("reseller", toFloats(resCounts))
	return rep, nil
}

// cloudRanges returns the published address ranges of a cloud org in a
// country (the Section 4.2 technique).
func (r *Runner) cloudRanges(org int32, country string) []routing.Prefix {
	w := r.Env.World
	home := w.Orgs[org].HomeAS
	var out []routing.Prefix
	if home < 0 {
		return out
	}
	for _, pi := range w.ASes[home].Prefixes {
		if w.Prefixes[pi].Country == country {
			out = append(out, w.Prefixes[pi].Prefix)
		}
	}
	return out
}

func toFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
