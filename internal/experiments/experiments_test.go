package experiments_test

import (
	"encoding/json"
	"strings"
	"testing"

	. "ixplens/internal/experiments"
	"ixplens/internal/netmodel"
	"ixplens/internal/traffic"
)

var cachedReports []Report

func allReports(t testing.TB) []Report {
	t.Helper()
	if cachedReports != nil {
		return cachedReports
	}
	cfg := netmodel.Tiny()
	cfg.NumServers = 2600
	opts := traffic.Options{SamplesPerWeek: 25000, SamplingRate: 16384, SnapLen: 128}
	r, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	cachedReports = reports
	return reports
}

func TestAllExperimentsRun(t *testing.T) {
	reports := allReports(t)
	if len(reports) != 24 {
		t.Fatalf("ran %d experiments, want 24", len(reports))
	}
	seen := map[string]bool{}
	for _, rep := range reports {
		if rep.ID == "" || rep.Title == "" {
			t.Fatalf("report without identity: %+v", rep)
		}
		if seen[rep.ID] {
			t.Fatalf("duplicate report %s", rep.ID)
		}
		seen[rep.ID] = true
		if len(rep.Rows) == 0 {
			t.Fatalf("%s has no rows", rep.ID)
		}
		for _, row := range rep.Rows {
			if row.Measured == "" {
				t.Fatalf("%s row %q has no measurement", rep.ID, row.Metric)
			}
		}
	}
	for _, id := range []string{"E1", "E4", "E7", "E10", "E16", "E19", "E21", "E22"} {
		if !seen[id] {
			t.Fatalf("experiment %s missing", id)
		}
	}
}

func TestFigureSeriesPresent(t *testing.T) {
	reports := allReports(t)
	wantSeries := map[string]string{
		"E3":  "rank-curve",
		"E5":  "country-shares",
		"E10": "stable",
		"E13": "stable-traffic-share",
		"E15": "https-share",
		"E17": "servers",
		"E19": "direct-share",
	}
	byID := map[string]Report{}
	for _, rep := range reports {
		byID[rep.ID] = rep
	}
	for id, key := range wantSeries {
		rep := byID[id]
		if rep.Series == nil || len(rep.Series[key]) == 0 {
			t.Errorf("%s missing series %q", id, key)
		}
	}
}

func TestReportString(t *testing.T) {
	reports := allReports(t)
	s := reports[0].String()
	if !strings.Contains(s, "E1") || !strings.Contains(s, "metric") {
		t.Fatalf("render wrong:\n%s", s)
	}
	for _, line := range strings.Split(s, "\n") {
		if len(line) > 200 {
			t.Fatalf("over-long line: %q", line)
		}
	}
}

func TestHeadlineShapesHold(t *testing.T) {
	reports := allReports(t)
	byID := map[string]Report{}
	for _, rep := range reports {
		byID[rep.ID] = rep
	}
	// Spot-check a few headline rows for sane measured values (detailed
	// bands live in the per-package tests; this guards the wiring).
	findRow := func(id, metric string) Row {
		for _, row := range byID[id].Rows {
			if strings.Contains(row.Metric, metric) {
				return row
			}
		}
		t.Fatalf("%s: no row matching %q", id, metric)
		return Row{}
	}
	if row := findRow("E1", "peering traffic share"); !strings.Contains(row.Measured, "9") {
		t.Fatalf("E1 peering share suspicious: %q", row.Measured)
	}
	if row := findRow("E16", "false-positive rate"); row.Measured == "0.0%" {
		t.Fatalf("E16 FP rate suspiciously zero")
	}
	findRow("E19", "traffic NOT via own peering links")
	findRow("E8", "acme visible at IXP")
}

func TestReportMarkdown(t *testing.T) {
	reports := allReports(t)
	md := reports[0].Markdown()
	if !strings.HasPrefix(md, "## E1") {
		t.Fatalf("markdown header wrong: %q", md[:20])
	}
	if !strings.Contains(md, "| metric | paper | measured |") {
		t.Fatal("markdown table header missing")
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) < 4 {
		t.Fatal("markdown too short")
	}
	for _, l := range lines[2:] {
		if !strings.HasPrefix(l, "|") || !strings.HasSuffix(l, "|") {
			t.Fatalf("broken table row: %q", l)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	reports := allReports(t)
	raw, err := json.Marshal(reports)
	if err != nil {
		t.Fatal(err)
	}
	var back []Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reports) || back[0].ID != reports[0].ID ||
		len(back[0].Rows) != len(reports[0].Rows) {
		t.Fatal("JSON round trip drifted")
	}
}
