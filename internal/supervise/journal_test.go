package supervise

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"testing"

	"ixplens/internal/capture"
	"ixplens/internal/pipeline"
	"ixplens/internal/sflow"
	"ixplens/internal/snapshot"
)

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		{Event: EventStart, Week: 35, Attempt: 1},
		{Event: EventDone, Week: 35, Stage: StageCapture, Digest: "d-cap", Datagrams: 42},
		{Event: EventDone, Week: 35, Stage: StageAnalyze, Digest: "d-cap"},
		{Event: EventDone, Week: 35, Stage: StageSnapshot, Digest: "d-snap"},
		{Event: EventDone, Week: 35, Digest: "d-snap"},
		{Event: EventStart, Week: 36, Attempt: 1},
		{Event: EventFail, Week: 36, Stage: StageAnalyze, Attempt: 1, Class: "transient", Err: "boom"},
		{Event: EventQuarantine, Week: 36, Err: "boom"},
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.State()
	if st.ConfigDigest != "cfg-a" {
		t.Fatalf("config digest %q", st.ConfigDigest)
	}
	w35 := st.Weeks[35]
	if w35 == nil || !w35.Done || w35.DoneDigest != "d-snap" {
		t.Fatalf("week 35 state: %+v", w35)
	}
	if !w35.Capture.Done || w35.Capture.Digest != "d-cap" || w35.Capture.Datagrams != 42 {
		t.Fatalf("week 35 capture: %+v", w35.Capture)
	}
	if !w35.Snapshot.Done || w35.Snapshot.Digest != "d-snap" {
		t.Fatalf("week 35 snapshot: %+v", w35.Snapshot)
	}
	w36 := st.Weeks[36]
	if w36 == nil || !w36.Quarantined || w36.Attempts != 1 || w36.LastErr != "boom" {
		t.Fatalf("week 36 state: %+v", w36)
	}
	if got := st.QuarantinedWeeks(); len(got) != 1 || got[0] != 36 {
		t.Fatalf("quarantined = %v", got)
	}
}

// TestJournalRecaptureInvalidates: a capture-done record with a new
// digest must drop the stale analyze/snapshot/done checkpoints derived
// from the old bytes.
func TestJournalRecaptureInvalidates(t *testing.T) {
	st := &State{Weeks: make(map[int]*WeekState)}
	for _, rec := range []*Record{
		{Event: EventDone, Week: 35, Stage: StageCapture, Digest: "old"},
		{Event: EventDone, Week: 35, Stage: StageSnapshot, Digest: "snap-old"},
		{Event: EventDone, Week: 35, Digest: "snap-old"},
		{Event: EventDone, Week: 35, Stage: StageCapture, Digest: "new"},
	} {
		st.apply(rec)
	}
	ws := st.Weeks[35]
	if ws.Done || ws.Snapshot.Done {
		t.Fatalf("recapture did not invalidate: %+v", ws)
	}
	if ws.Capture.Digest != "new" {
		t.Fatalf("capture digest %q", ws.Capture.Digest)
	}
}

// TestJournalTornTail: a crash mid-append leaves a partial final line;
// replay drops it and keeps everything before.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Record{Event: EventDone, Week: 35, Stage: StageCapture, Digest: "d"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(journalPath(dir), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"event":"done","week":36,"sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.State()
	if w := st.Weeks[35]; w == nil || !w.Capture.Done {
		t.Fatalf("intact prefix lost: %+v", w)
	}
	if st.Weeks[36] != nil {
		t.Fatal("torn tail replayed as a record")
	}
	// The torn bytes are cut on open, so an append after the crash must
	// survive yet another replay intact.
	if err := j2.Append(&Record{Event: EventDone, Week: 37, Stage: StageCapture, Digest: "d37"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if w := j3.State().Weeks[37]; w == nil || w.Capture.Digest != "d37" {
		t.Fatalf("append after torn tail lost: %+v", w)
	}
	if w := j3.State().Weeks[35]; w == nil || !w.Capture.Done {
		t.Fatal("original record lost after torn-tail recovery")
	}
}

// TestJournalCorruptMiddle: damage before the final line cannot be a
// torn append; the journal is rotated aside and a fresh one started.
func TestJournalCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	j.Append(&Record{Event: EventDone, Week: 35, Stage: StageCapture, Digest: "d"})
	j.Close()
	raw, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	raw = append([]byte("GARBAGE NOT JSON\n"), raw...)
	if err := os.WriteFile(journalPath(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(j2.State().Weeks) != 0 {
		t.Fatalf("damaged journal trusted: %+v", j2.State().Weeks)
	}
	if _, err := os.Stat(journalPath(dir) + ".bad"); err != nil {
		t.Fatalf("damaged journal not rotated: %v", err)
	}
}

// TestJournalConfigMismatch: a journal written for a different campaign
// config must not vouch for this one's files.
func TestJournalConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	j.Append(&Record{Event: EventDone, Week: 35, Stage: StageCapture, Digest: "d"})
	j.Close()

	j2, err := OpenJournal(dir, "cfg-b")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(j2.State().Weeks) != 0 {
		t.Fatal("journal for a different config was trusted")
	}
	if j2.State().ConfigDigest != "cfg-b" {
		t.Fatalf("fresh journal digest %q", j2.State().ConfigDigest)
	}
}

func TestReadStateMissing(t *testing.T) {
	st, err := ReadState(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Weeks) != 0 || st.ConfigDigest != "" {
		t.Fatalf("missing journal state: %+v", st)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{context.DeadlineExceeded, ClassTransient},
		{pipeline.ErrLossExceeded, ClassTransient},
		{&fs.PathError{Op: "open", Path: "x", Err: errors.New("io")}, ClassTransient},
		{errors.New("unknown"), ClassTransient},
		{ErrDigestMismatch, ClassPermanent},
		{ErrAnonKeyRequired, ClassPermanent},
		{capture.ErrAnonKeyMismatch, ClassPermanent},
		{sflow.ErrBadMagic, ClassPermanent},
		{snapshot.ErrBadMagic, ClassPermanent},
		{snapshot.ErrFormat, ClassPermanent},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
		// The classifier must see through wrapping.
		if got := Classify(errWrap(c.err)); got != c.want {
			t.Errorf("Classify(wrapped %v) = %v, want %v", c.err, got, c.want)
		}
	}
	if ClassTransient.String() != "transient" || ClassPermanent.String() != "permanent" {
		t.Fatal("class names wrong")
	}
}

func errWrap(err error) error { return &wrapErr{err} }

type wrapErr struct{ err error }

func (w *wrapErr) Error() string { return "wrapped: " + w.err.Error() }
func (w *wrapErr) Unwrap() error { return w.err }
