package supervise

import (
	"bytes"
	"context"
	"errors"
	"io/fs"
	"os"
	"syscall"
	"testing"

	"ixplens/internal/capture"
	"ixplens/internal/faultline"
	"ixplens/internal/pipeline"
	"ixplens/internal/sflow"
	"ixplens/internal/snapshot"
	"ixplens/internal/vfs"
)

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		{Event: EventStart, Week: 35, Attempt: 1},
		{Event: EventDone, Week: 35, Stage: StageCapture, Digest: "d-cap", Datagrams: 42},
		{Event: EventDone, Week: 35, Stage: StageAnalyze, Digest: "d-cap"},
		{Event: EventDone, Week: 35, Stage: StageSnapshot, Digest: "d-snap"},
		{Event: EventDone, Week: 35, Digest: "d-snap"},
		{Event: EventStart, Week: 36, Attempt: 1},
		{Event: EventFail, Week: 36, Stage: StageAnalyze, Attempt: 1, Class: "transient", Err: "boom"},
		{Event: EventQuarantine, Week: 36, Err: "boom"},
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.State()
	if st.ConfigDigest != "cfg-a" {
		t.Fatalf("config digest %q", st.ConfigDigest)
	}
	w35 := st.Weeks[35]
	if w35 == nil || !w35.Done || w35.DoneDigest != "d-snap" {
		t.Fatalf("week 35 state: %+v", w35)
	}
	if !w35.Capture.Done || w35.Capture.Digest != "d-cap" || w35.Capture.Datagrams != 42 {
		t.Fatalf("week 35 capture: %+v", w35.Capture)
	}
	if !w35.Snapshot.Done || w35.Snapshot.Digest != "d-snap" {
		t.Fatalf("week 35 snapshot: %+v", w35.Snapshot)
	}
	w36 := st.Weeks[36]
	if w36 == nil || !w36.Quarantined || w36.Attempts != 1 || w36.LastErr != "boom" {
		t.Fatalf("week 36 state: %+v", w36)
	}
	if got := st.QuarantinedWeeks(); len(got) != 1 || got[0] != 36 {
		t.Fatalf("quarantined = %v", got)
	}
}

// TestJournalRecaptureInvalidates: a capture-done record with a new
// digest must drop the stale analyze/snapshot/done checkpoints derived
// from the old bytes.
func TestJournalRecaptureInvalidates(t *testing.T) {
	st := &State{Weeks: make(map[int]*WeekState)}
	for _, rec := range []*Record{
		{Event: EventDone, Week: 35, Stage: StageCapture, Digest: "old"},
		{Event: EventDone, Week: 35, Stage: StageSnapshot, Digest: "snap-old"},
		{Event: EventDone, Week: 35, Digest: "snap-old"},
		{Event: EventDone, Week: 35, Stage: StageCapture, Digest: "new"},
	} {
		st.apply(rec)
	}
	ws := st.Weeks[35]
	if ws.Done || ws.Snapshot.Done {
		t.Fatalf("recapture did not invalidate: %+v", ws)
	}
	if ws.Capture.Digest != "new" {
		t.Fatalf("capture digest %q", ws.Capture.Digest)
	}
}

// TestJournalTornTail: a crash mid-append leaves a partial final line;
// replay drops it and keeps everything before.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Record{Event: EventDone, Week: 35, Stage: StageCapture, Digest: "d"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(journalPath(dir), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"event":"done","week":36,"sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.State()
	if w := st.Weeks[35]; w == nil || !w.Capture.Done {
		t.Fatalf("intact prefix lost: %+v", w)
	}
	if st.Weeks[36] != nil {
		t.Fatal("torn tail replayed as a record")
	}
	// The torn bytes are cut on open, so an append after the crash must
	// survive yet another replay intact.
	if err := j2.Append(&Record{Event: EventDone, Week: 37, Stage: StageCapture, Digest: "d37"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if w := j3.State().Weeks[37]; w == nil || w.Capture.Digest != "d37" {
		t.Fatalf("append after torn tail lost: %+v", w)
	}
	if w := j3.State().Weeks[35]; w == nil || !w.Capture.Done {
		t.Fatal("original record lost after torn-tail recovery")
	}
}

// TestJournalCorruptMiddle: a torn or garbage record before the final
// line costs exactly that record — scan-forward resync drops it and
// keeps every intact record on both sides. The journal is NOT rotated
// aside: its newline framing makes everything after the damage
// recoverable, and the state machine re-verifies checkpoints against
// file digests anyway.
func TestJournalCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	j.Append(&Record{Event: EventDone, Week: 35, Stage: StageCapture, Digest: "d"})
	j.Close()
	raw, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Garbage between the campaign record and week 35's checkpoint: a
	// mid-file torn write.
	if i := bytes.IndexByte(raw, '\n'); i >= 0 {
		raw = append(raw[:i+1], append([]byte("GARBAGE NOT JSON\n"), raw[i+1:]...)...)
	}
	if err := os.WriteFile(journalPath(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if w := j2.State().Weeks[35]; w == nil || !w.Capture.Done || w.Capture.Digest != "d" {
		t.Fatalf("record after mid-file damage lost: %+v", w)
	}
	if got := j2.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	if _, err := os.Stat(journalPath(dir) + ".bad"); err == nil {
		t.Fatal("recoverable journal was rotated aside wholesale")
	}
}

// TestJournalCorruptRecordCRC: corruption that still parses as JSON —
// a flipped character inside a digest — fails the record CRC and is
// dropped rather than trusted. Without the CRC this record would replay
// as a checkpoint with a wrong digest and permanently quarantine a
// healthy week via ErrDigestMismatch.
func TestJournalCorruptRecordCRC(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	j.Append(&Record{Event: EventDone, Week: 35, Stage: StageCapture, Digest: "aaaa"})
	j.Append(&Record{Event: EventDone, Week: 36, Stage: StageCapture, Digest: "bbbb"})
	j.Close()
	raw, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one digest character in week 35's record; JSON stays valid.
	mut := bytes.Replace(raw, []byte(`"digest":"aaaa"`), []byte(`"digest":"aaab"`), 1)
	if bytes.Equal(mut, raw) {
		t.Fatal("test setup: digest not found in journal bytes")
	}
	if err := os.WriteFile(journalPath(dir), mut, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if w := j2.State().Weeks[35]; w != nil && w.Capture.Done {
		t.Fatalf("CRC-failing record trusted: %+v", w)
	}
	if w := j2.State().Weeks[36]; w == nil || w.Capture.Digest != "bbbb" {
		t.Fatalf("intact record lost: %+v", w)
	}
	if got := j2.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
}

// TestJournalAppendRollback: a failed append (write or fsync error)
// leaves the journal replayable from the last acknowledged record — the
// partial line is truncated away, and once the fault clears the next
// append lands cleanly.
func TestJournalAppendRollback(t *testing.T) {
	dir := t.TempDir()
	ffs := faultline.NewFS(vfs.OS{}, faultline.FSConfig{Seed: 11, SyncFail: 1})
	j, err := OpenJournalFS(vfs.OS{}, dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Record{Event: EventDone, Week: 35, Stage: StageCapture, Digest: "d"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Reopen through a seam whose every fsync fails: the append must
	// error out and must not leave half a record behind.
	jf, err := OpenJournalFS(ffs, dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := jf.Append(&Record{Event: EventDone, Week: 36, Stage: StageCapture, Digest: "e"}); err == nil {
		t.Fatal("append over failing fsync reported success")
	}
	if w := jf.State().Weeks[36]; w != nil {
		t.Fatalf("unacknowledged record applied to state: %+v", w)
	}
	jf.Close()

	j2, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if w := j2.State().Weeks[35]; w == nil || !w.Capture.Done {
		t.Fatalf("acknowledged record lost after failed append: %+v", w)
	}
	if w := j2.State().Weeks[36]; w != nil {
		t.Fatalf("failed append replayed as a record: %+v", w)
	}
	if err := j2.Append(&Record{Event: EventDone, Week: 37, Stage: StageCapture, Digest: "f"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if w := j3.State().Weeks[37]; w == nil || w.Capture.Digest != "f" {
		t.Fatalf("append after recovery lost: %+v", w)
	}
}

// TestJournalConfigMismatch: a journal written for a different campaign
// config must not vouch for this one's files.
func TestJournalConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "cfg-a")
	if err != nil {
		t.Fatal(err)
	}
	j.Append(&Record{Event: EventDone, Week: 35, Stage: StageCapture, Digest: "d"})
	j.Close()

	j2, err := OpenJournal(dir, "cfg-b")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(j2.State().Weeks) != 0 {
		t.Fatal("journal for a different config was trusted")
	}
	if j2.State().ConfigDigest != "cfg-b" {
		t.Fatalf("fresh journal digest %q", j2.State().ConfigDigest)
	}
}

func TestReadStateMissing(t *testing.T) {
	st, err := ReadState(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Weeks) != 0 || st.ConfigDigest != "" {
		t.Fatalf("missing journal state: %+v", st)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{context.DeadlineExceeded, ClassTransient},
		{pipeline.ErrLossExceeded, ClassTransient},
		{&fs.PathError{Op: "open", Path: "x", Err: errors.New("io")}, ClassTransient},
		{errors.New("unknown"), ClassTransient},
		// Storage faults are transient: the degraded mode handles ENOSPC
		// before classification, and even when the full-wait budget runs
		// out the condition must retry, never quarantine as permanent.
		{vfs.ErrStorageFull, ClassTransient},
		{&fs.PathError{Op: "write", Path: "x", Err: syscall.ENOSPC}, ClassTransient},
		{faultline.ErrInjectedIO, ClassTransient},
		{ErrCorruptWrite, ClassTransient},
		{ErrDigestMismatch, ClassPermanent},
		{ErrAnonKeyRequired, ClassPermanent},
		{capture.ErrAnonKeyMismatch, ClassPermanent},
		{sflow.ErrBadMagic, ClassPermanent},
		{snapshot.ErrBadMagic, ClassPermanent},
		{snapshot.ErrFormat, ClassPermanent},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
		// The classifier must see through wrapping.
		if got := Classify(errWrap(c.err)); got != c.want {
			t.Errorf("Classify(wrapped %v) = %v, want %v", c.err, got, c.want)
		}
	}
	if ClassTransient.String() != "transient" || ClassPermanent.String() != "permanent" {
		t.Fatal("class names wrong")
	}
}

func errWrap(err error) error { return &wrapErr{err} }

type wrapErr struct{ err error }

func (w *wrapErr) Error() string { return "wrapped: " + w.err.Error() }
func (w *wrapErr) Unwrap() error { return w.err }
