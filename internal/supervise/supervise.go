package supervise

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"ixplens/internal/capture"
	"ixplens/internal/obs"
	"ixplens/internal/pipeline"
	"ixplens/internal/randutil"
	"ixplens/internal/sflow"
	"ixplens/internal/snapshot"
	"ixplens/internal/vfs"
)

// Sentinel errors, testable with errors.Is.
var (
	// ErrDigestMismatch marks a deterministic regeneration that produced
	// different bytes than the journal's checkpoint records — the world
	// or toolchain changed out from under the campaign. Retrying cannot
	// help; the week is quarantined as permanent.
	ErrDigestMismatch = errors.New("supervise: regenerated capture digest differs from checkpointed digest")
	// ErrAnonKeyRequired marks an anonymized campaign whose damaged
	// week cannot be rewritten because the supervisor was not given the
	// anonymization key. Writing the week un-anonymized would silently
	// mix address spaces, so this is permanent.
	ErrAnonKeyRequired = errors.New("supervise: anonymized capture needs its key to rewrite a damaged week")
	// ErrQuarantineLimit aborts a campaign whose quarantined-week count
	// crossed Config.QuarantineLimit.
	ErrQuarantineLimit = errors.New("supervise: too many quarantined weeks")
	// ErrCorruptWrite marks a write whose read-back digest differs from
	// the bytes handed to the disk — a lying fsync (acknowledged, then
	// lost or mangled). Transient: rewriting draws fresh luck, and the
	// deterministic regeneration makes retries free of drift.
	ErrCorruptWrite = errors.New("supervise: read-back digest differs from written bytes")
)

// Class is the failure taxonomy driving the retry decision.
type Class int

// Classes.
const (
	// ClassTransient failures (deadline, loss budget under injected
	// faults, I/O) are retried with backoff until the week's budget is
	// exhausted.
	ClassTransient Class = iota
	// ClassPermanent failures (digest mismatch, anonymization key
	// mismatch, structurally bad containers) quarantine the week
	// immediately: re-running the same deterministic computation cannot
	// change the outcome.
	ClassPermanent
)

// String names the class for journal records.
func (c Class) String() string {
	if c == ClassPermanent {
		return "permanent"
	}
	return "transient"
}

// Classify maps an error to its retry class. Unknown errors default to
// transient — the breaker bounds how much retrying that can cost, while
// a wrong "permanent" would quarantine a recoverable week forever.
func Classify(err error) Class {
	switch {
	case errors.Is(err, ErrDigestMismatch),
		errors.Is(err, ErrAnonKeyRequired),
		errors.Is(err, capture.ErrAnonKeyMismatch),
		errors.Is(err, sflow.ErrBadMagic),
		errors.Is(err, snapshot.ErrBadMagic),
		errors.Is(err, snapshot.ErrFormat):
		return ClassPermanent
	case errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, pipeline.ErrLossExceeded):
		return ClassTransient
	default:
		var perr *fs.PathError
		if errors.As(err, &perr) {
			return ClassTransient
		}
		return ClassTransient
	}
}

// Config tunes the supervisor.
type Config struct {
	// Retries is the per-week attempt budget (per run); the week
	// quarantines after this many failed attempts. Minimum 1.
	Retries int
	// Backoff is the delay before the second attempt; it doubles per
	// attempt, capped at MaxBackoff, with deterministic jitter.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Watchdog, when positive, is the per-stage deadline: a stage that
	// has not returned within it is cancelled and counted against the
	// week's retry budget as a transient failure.
	Watchdog time.Duration
	// QuarantineLimit, when positive, aborts the campaign once more
	// than this many weeks are quarantined. Zero means any number of
	// quarantined weeks still yields a (degraded) campaign.
	QuarantineLimit int
	// RetryQuarantined re-opens weeks a previous run quarantined
	// instead of skipping them.
	RetryQuarantined bool
	// StorageFullBudget, when positive, bounds how many times one week
	// waits out a full disk before the condition starts counting against
	// the regular retry budget. Zero waits indefinitely (the disk-full
	// degraded mode: the campaign stalls with capped backoff until space
	// is freed or the context is cancelled, rather than quarantining
	// healthy weeks).
	StorageFullBudget int
	// Capture configures the capture stage (compression,
	// anonymization). Resume is implied by the journal and ignored.
	Capture capture.WriteOptions
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.Retries < 1 {
		c.Retries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	return c
}

// Hooks are test and UI seams. All are optional.
type Hooks struct {
	// BeforeStage runs before each stage execution; returning an error
	// fails the stage with that error (fault injection for tests).
	BeforeStage func(week int, stage string, attempt int) error
	// AfterCheckpoint runs after each durable journal append for a
	// completed stage; returning an error aborts the campaign there
	// (crash injection for resume tests).
	AfterCheckpoint func(week int, stage string) error
	// OnWeek observes each week's terminal status in chronological
	// order; snap is nil for quarantined weeks.
	OnWeek func(ws WeekStatus, snap *snapshot.Snapshot)
}

// WeekStatus is one week's outcome in a Report.
type WeekStatus struct {
	Week     int
	Status   string // "done" | "quarantined"
	Attempts int
	// Resumed means the week was already complete and verified — no
	// stage ran.
	Resumed bool
	// Stage and Err describe the last failure (quarantined weeks).
	Stage string
	Err   error
	// CaptureFile/CaptureDigest/SnapshotDigest locate and pin the
	// week's artifacts.
	CaptureFile    string
	CaptureDigest  string
	SnapshotDigest string
}

// Report is a campaign run's outcome.
type Report struct {
	Weeks       []WeekStatus
	Completed   int
	Resumed     int
	Quarantined int
}

// QuarantinedWeeks lists the quarantined ISO weeks.
func (r *Report) QuarantinedWeeks() []int {
	var out []int
	for _, ws := range r.Weeks {
		if ws.Status == "quarantined" {
			out = append(out, ws.Week)
		}
	}
	return out
}

// Supervisor drives one campaign directory. It is not safe for
// concurrent use; one campaign directory must have at most one
// supervisor at a time.
type Supervisor struct {
	env   *pipeline.Env
	dir   string
	cfg   Config
	m     *Metrics
	Hooks Hooks

	journal *Journal
	man     *capture.Manifest
	// manChanged tracks whether man must be rewritten.
	manChanged bool
}

// New opens (or creates) the campaign directory's journal and manifest
// and returns a supervisor ready to Run. reg may be nil.
func New(env *pipeline.Env, dir string, cfg Config, reg *obs.Registry) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	cfg.Capture.Resume = false
	fsys := env.VFS()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A crash between a temp write and its rename strands atomic-writer
	// litter (`.manifest-*`, `.snap-*`); collect it before this run
	// creates more — on a tight disk the dead bytes matter.
	capture.SweepTemps(fsys, dir)
	man := capture.NewManifest(env, cfg.Capture)
	manChanged := true
	if old, err := capture.ReadManifestFS(fsys, dir); err == nil {
		if old.Anonymized && !cfg.Capture.Anonymize {
			// No key supplied for an anonymized campaign: inherit its
			// anonymization identity instead of planning a plaintext
			// rewrite over anonymized files. Existing weeks verify and
			// serve normally; a week that would need a rewrite fails the
			// capture stage with ErrAnonKeyRequired.
			man.Anonymized, man.AnonFP = true, old.AnonFP
		}
		if old.Anonymized && cfg.Capture.Anonymize && old.AnonFP != "" && old.AnonFP != man.AnonFP {
			return nil, fmt.Errorf("%w: manifest fingerprint %s, key fingerprint %s",
				capture.ErrAnonKeyMismatch, old.AnonFP, man.AnonFP)
		}
		if old.Compatible(man) {
			man, manChanged = old, false
		}
	}
	cfgDigest, err := ConfigDigest(man)
	if err != nil {
		return nil, err
	}
	j, err := OpenJournalFS(fsys, dir, cfgDigest)
	if err != nil {
		return nil, err
	}
	return &Supervisor{
		env:        env,
		dir:        dir,
		cfg:        cfg,
		m:          NewMetrics(reg),
		journal:    j,
		man:        man,
		manChanged: manChanged,
	}, nil
}

// Close releases the journal.
func (s *Supervisor) Close() error { return s.journal.Close() }

// State exposes the journal's replayed state (read-only use).
func (s *Supervisor) State() *State { return s.journal.State() }

// Run supervises every study week in order and returns the campaign
// report. Quarantined weeks do not fail the run — the report carries
// them — but a cancelled ctx or more than QuarantineLimit quarantines
// abort with an error. Re-running a completed campaign verifies digests
// and performs no stage work.
func (s *Supervisor) Run(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := &s.env.World.Cfg
	rep := &Report{}
	s.m.breaker().Set(BreakerClosed)
	s.syncQuarantineGauge()
	for wk := cfg.FirstWeek; wk <= cfg.LastWeek(); wk++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		ws, snap, err := s.runWeek(ctx, wk)
		if err != nil {
			return rep, err
		}
		rep.Weeks = append(rep.Weeks, ws)
		switch ws.Status {
		case "done":
			rep.Completed++
			s.m.weeksDone().Inc()
			if ws.Resumed {
				rep.Resumed++
				s.m.weeksResumed().Inc()
			}
		case "quarantined":
			rep.Quarantined++
		}
		s.syncQuarantineGauge()
		if s.cfg.QuarantineLimit > 0 && rep.Quarantined > s.cfg.QuarantineLimit {
			return rep, fmt.Errorf("%w: %d quarantined, limit %d",
				ErrQuarantineLimit, rep.Quarantined, s.cfg.QuarantineLimit)
		}
		if s.Hooks.OnWeek != nil {
			s.Hooks.OnWeek(ws, snap)
		}
	}
	// A manifest that was unreadable (or missing) at open but whose
	// weeks all verified from journal checkpoints never passes through
	// the capture stage, so rewrite it here: the campaign must not end
	// with a corrupt manifest on disk vouched for by nothing.
	if s.manChanged {
		if err := capture.SaveManifestFS(s.fs(), s.dir, s.man); err != nil {
			return rep, err
		}
		s.manChanged = false
	}
	return rep, nil
}

// syncQuarantineGauge reflects the journal's quarantine set into the
// gauge and the breaker state.
func (s *Supervisor) syncQuarantineGauge() {
	n := len(s.journal.State().QuarantinedWeeks())
	s.m.quarantined().Set(int64(n))
	if n > 0 {
		s.m.breaker().Set(BreakerOpen)
	} else {
		s.m.breaker().Set(BreakerClosed)
	}
}

// fs returns the campaign's filesystem seam.
func (s *Supervisor) fs() vfs.FS { return s.env.VFS() }

// paths

func (s *Supervisor) capturePath(wk int) string {
	return filepath.Join(s.dir, capture.WeekFile(wk))
}

func (s *Supervisor) snapshotPath(wk int) string {
	return filepath.Join(s.dir, snapshot.FileName(wk))
}

// runWeek drives one week through the state machine. The returned error
// aborts the whole campaign (context cancellation, journal I/O);
// per-week failures surface through the WeekStatus instead.
func (s *Supervisor) runWeek(ctx context.Context, wk int) (WeekStatus, *snapshot.Snapshot, error) {
	st := s.journal.State().week(wk)
	ws := WeekStatus{Week: wk, CaptureFile: capture.WeekFile(wk)}

	// Open breaker: the week stays a hole unless explicitly re-opened.
	if st.Quarantined && !s.cfg.RetryQuarantined {
		ws.Status = "quarantined"
		ws.Attempts = st.Attempts
		if st.LastErr != "" {
			ws.Err = errors.New(st.LastErr)
		}
		return ws, nil, nil
	}

	// Completed week: verify the checkpointed digests still describe
	// the bytes on disk; if they do, the rerun is a no-op.
	if st.Done {
		if snap, ok := s.verifyDone(wk, st); ok {
			s.syncManifestWeek(wk, st)
			ws.Status, ws.Resumed = "done", true
			ws.Attempts = st.Attempts
			ws.CaptureDigest = st.Capture.Digest
			ws.SnapshotDigest = st.DoneDigest
			return ws, snap, nil
		}
		// Something on disk no longer matches: fall through and re-run
		// the stages that fail verification (self-heal).
	}

	half := st.Quarantined && s.cfg.RetryQuarantined
	firstAttempt := st.Attempts + 1
	lastAttempt := st.Attempts + s.cfg.Retries
	fullWaits := 0
	for attempt := firstAttempt; attempt <= lastAttempt; {
		if err := ctx.Err(); err != nil {
			return ws, nil, err
		}
		if half {
			s.m.breaker().Set(BreakerHalfOpen)
		}
		if attempt > firstAttempt {
			s.m.retries().Inc()
			if err := s.backoff(ctx, wk, attempt); err != nil {
				return ws, nil, err
			}
		}
		if err := s.journal.Append(&Record{Event: EventStart, Week: wk, Attempt: attempt}); err != nil {
			// A full disk rejects even the start record. Wait it out in
			// place: the attempt has not begun, nothing is journaled, and
			// freeing space lets the same append retry cleanly.
			if vfs.IsStorageFull(err) && s.withinFullBudget(fullWaits) {
				fullWaits++
				if werr := s.storageFullWait(ctx, wk, fullWaits); werr != nil {
					return ws, nil, werr
				}
				continue
			}
			return ws, nil, err
		}
		snap, stage, ran, err := s.tryWeek(ctx, wk, attempt)
		if err == nil {
			ws.Status = "done"
			// A completion that executed no stage means every artifact
			// verified in place — the week was already done on disk and
			// only the journal's terminal record was missing (e.g. a
			// checkpoint lost to a torn write). That is a resume, not work.
			ws.Resumed = !ran
			ws.Attempts = attempt
			ws.CaptureDigest = st.Capture.Digest
			ws.SnapshotDigest = st.DoneDigest
			return ws, snap, nil
		}
		// Parent cancellation aborts the campaign without burning the
		// week's budget as if the work itself had failed.
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			return ws, nil, err
		}
		// Degraded mode: a full disk is an operational condition, not a
		// defect in the week. Back off (capped) and retry the SAME
		// attempt without journaling a failure — the journal append would
		// need the very space that is missing — and without spending the
		// retry budget toward quarantine. This holds even when the
		// ENOSPC surfaced through a checkpoint append (normally a
		// campaign abort): the journal itself is intact, just unwritable
		// until space is freed.
		if vfs.IsStorageFull(err) && s.withinFullBudget(fullWaits) {
			fullWaits++
			ws.Stage, ws.Err = stage, err
			if werr := s.storageFullWait(ctx, wk, fullWaits); werr != nil {
				return ws, nil, werr
			}
			continue
		}
		var abort *abortError
		if errors.As(err, &abort) {
			return ws, nil, abort.err
		}
		class := Classify(err)
		if errors.Is(err, context.DeadlineExceeded) {
			s.m.watchdogFires().Inc()
		}
		if jerr := s.journal.Append(&Record{
			Event: EventFail, Week: wk, Stage: stage, Attempt: attempt,
			Class: class.String(), Err: err.Error(),
		}); jerr != nil {
			return ws, nil, jerr
		}
		ws.Stage, ws.Err, ws.Attempts = stage, err, attempt
		if class == ClassPermanent {
			break
		}
		attempt++
	}

	// Budget exhausted or permanent failure: trip the breaker.
	msg := ""
	if ws.Err != nil {
		msg = ws.Err.Error()
	}
	if err := s.journal.Append(&Record{Event: EventQuarantine, Week: wk, Err: msg}); err != nil {
		return ws, nil, err
	}
	ws.Status = "quarantined"
	return ws, nil, nil
}

// backoff sleeps the exponential, jittered delay before a retry. The
// jitter is deterministic in (world seed, week, attempt), so a re-run
// of the same campaign waits the same schedule.
func (s *Supervisor) backoff(ctx context.Context, wk, attempt int) error {
	d := s.cfg.Backoff << uint(attempt-2)
	if d > s.cfg.MaxBackoff || d <= 0 {
		d = s.cfg.MaxBackoff
	}
	// Jitter in [0.5, 1.0)×d keeps retries from synchronizing without
	// ever collapsing the delay to zero.
	u := randutil.HashUnit(uint64(s.env.World.Cfg.Seed), uint64(wk), uint64(attempt))
	d = d/2 + time.Duration(u*float64(d/2))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// withinFullBudget reports whether another storage-full wait is still
// allowed (unlimited when StorageFullBudget is zero).
func (s *Supervisor) withinFullBudget(waits int) bool {
	return s.cfg.StorageFullBudget <= 0 || waits < s.cfg.StorageFullBudget
}

// storageFullWait counts and sleeps one ENOSPC degraded-mode pause:
// exponential in the number of waits so far, capped at MaxBackoff, with
// the same deterministic jitter as retry backoff.
func (s *Supervisor) storageFullWait(ctx context.Context, wk, waits int) error {
	s.m.storageFull().Inc()
	shift := waits - 1
	if shift > 16 {
		shift = 16
	}
	d := s.cfg.Backoff << uint(shift)
	if d > s.cfg.MaxBackoff || d <= 0 {
		d = s.cfg.MaxBackoff
	}
	u := randutil.HashUnit(uint64(s.env.World.Cfg.Seed), uint64(wk), uint64(waits), 0xf0)
	d = d/2 + time.Duration(u*float64(d/2))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// stageCtx applies the watchdog deadline.
func (s *Supervisor) stageCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.Watchdog > 0 {
		return context.WithTimeout(ctx, s.cfg.Watchdog)
	}
	return context.WithCancel(ctx)
}

// runStage executes one stage under the watchdog, timing it and
// honouring the test hooks.
func (s *Supervisor) runStage(ctx context.Context, wk int, stage string, attempt int, fn func(context.Context) error) error {
	if s.Hooks.BeforeStage != nil {
		if err := s.Hooks.BeforeStage(wk, stage, attempt); err != nil {
			return err
		}
	}
	sctx, cancel := s.stageCtx(ctx)
	defer cancel()
	start := time.Now()
	err := fn(sctx)
	s.m.stageNanos().ObserveSince(start)
	var abort *abortError
	if err != nil && sctx.Err() != nil && ctx.Err() == nil && !errors.As(err, &abort) {
		// Attribute the failure to the watchdog, not whatever wrapped
		// form the stage surfaced it in.
		err = fmt.Errorf("supervise: %s stage watchdog (%v): %w", stage, s.cfg.Watchdog, context.DeadlineExceeded)
	}
	return err
}

// abortError marks an error that must abort the whole campaign rather
// than count against one week's retry budget: a broken journal (no
// checkpoint can be trusted past it) or the crash-injection hook.
type abortError struct{ err error }

func (a *abortError) Error() string { return "supervise: campaign abort: " + a.err.Error() }
func (a *abortError) Unwrap() error { return a.err }

// checkpoint appends a durable stage-done record and runs the crash
// hook. Failures here are campaign aborts, not week failures.
func (s *Supervisor) checkpoint(rec *Record) error {
	if err := s.journal.Append(rec); err != nil {
		return &abortError{err}
	}
	if s.Hooks.AfterCheckpoint != nil {
		if err := s.Hooks.AfterCheckpoint(rec.Week, rec.Stage); err != nil {
			return &abortError{err}
		}
	}
	return nil
}

// tryWeek runs one attempt, resuming from the first incomplete stage.
// It returns the stage that failed alongside the error.
// tryWeek runs one attempt of a week's stage sequence. ran reports
// whether any stage body actually executed, as opposed to every stage
// verifying its artifact already on disk.
func (s *Supervisor) tryWeek(ctx context.Context, wk, attempt int) (snap *snapshot.Snapshot, stage string, ran bool, err error) {
	st := s.journal.State().week(wk)

	// Adoption: a week written by an unsupervised campaign (ixpgen) has
	// no journal checkpoint, but the manifest's digest can vouch for the
	// file just as well. Checkpointing it here makes the supervisor a
	// drop-in over existing campaign directories — no rewrite, and
	// anonymized captures stay usable without their key.
	if !st.Capture.Done {
		if n, digest, ok := s.man.VerifyWeekFS(s.fs(), s.dir, wk); ok {
			if err := s.checkpoint(&Record{Event: EventDone, Week: wk, Stage: StageCapture, Digest: digest, Datagrams: n}); err != nil {
				return nil, StageCapture, ran, err
			}
		}
	}

	// Stage 1: capture. Skipped when the checkpointed digest still
	// matches the file on disk; a missing or damaged file is rewritten
	// (deterministic regeneration) and must reproduce the checkpointed
	// bytes exactly.
	if s.captureVerified(wk, st) {
		// The file is good even if the manifest is not (a fresh manifest
		// after a corrupt one starts empty): mirror the verified
		// checkpoint into it so the end-of-run rewrite is complete.
		s.syncManifestWeek(wk, st)
	} else {
		ran = true
		err := s.runStage(ctx, wk, StageCapture, attempt, func(sctx context.Context) error {
			if s.man.Anonymized && !s.cfg.Capture.Anonymize {
				return ErrAnonKeyRequired
			}
			n, digest, werr := capture.WriteWeekFile(sctx, s.env, wk, s.capturePath(wk), s.cfg.Capture)
			if werr != nil {
				return werr
			}
			if st.Capture.Done && st.Capture.Digest != "" && st.Capture.Digest != digest {
				return fmt.Errorf("%w: week %d: %s vs %s", ErrDigestMismatch, wk, digest, st.Capture.Digest)
			}
			// The digest above hashes the bytes handed to the disk, not
			// the bytes the disk kept. Read back before anything durable
			// vouches for the file: a lying fsync that mangled the capture
			// must fail the attempt here, not surface later as a
			// different-but-accepted analysis.
			got, derr := capture.FileDigestFS(s.fs(), s.capturePath(wk))
			if derr != nil {
				return derr
			}
			if got != digest {
				return fmt.Errorf("%w: week %d capture: wrote %s, disk holds %s",
					ErrCorruptWrite, wk, digest, got)
			}
			if s.man.SetWeek(wk, capture.WeekFile(wk), digest, n) {
				s.manChanged = true
			}
			if s.manChanged {
				if merr := capture.SaveManifestFS(s.fs(), s.dir, s.man); merr != nil {
					return merr
				}
				s.manChanged = false
			}
			return s.checkpoint(&Record{Event: EventDone, Week: wk, Stage: StageCapture, Digest: digest, Datagrams: n})
		})
		if err != nil {
			return nil, StageCapture, ran, err
		}
	}

	// Stage 2: analyze. Its product (the identification result) lives
	// in memory only, so it re-runs on resume unless the week's
	// snapshot already pins the outcome durably.
	if existing, ok := s.snapshotVerified(wk, st); ok {
		snap = existing
	} else {
		ran = true
		err := s.runStage(ctx, wk, StageAnalyze, attempt, func(sctx context.Context) error {
			fresh, aerr := capture.AnalyzeWeekSnapshot(sctx, s.env, s.capturePath(wk), wk)
			if aerr != nil {
				return aerr
			}
			fresh.SourceDigest = st.Capture.Digest
			snap = fresh
			return s.checkpoint(&Record{Event: EventDone, Week: wk, Stage: StageAnalyze, Digest: st.Capture.Digest})
		})
		if err != nil {
			return nil, StageAnalyze, ran, err
		}

		// Stage 3: snapshot. The encoding is deterministic (sorted
		// servers, fixed layout), so the digest is reproducible across
		// runs — the property the crash-resume equivalence test pins.
		err = s.runStage(ctx, wk, StageSnapshot, attempt, func(sctx context.Context) error {
			intended, serr := snapshot.SaveFileFS(s.fs(), s.snapshotPath(wk), snap)
			if serr != nil {
				return serr
			}
			// Read-back: the checkpoint digest must describe the bytes on
			// disk AND those bytes must be the encoding we produced. A
			// lying fsync that corrupted the snapshot after the atomic
			// write fails here as transient, never as an accepted
			// artifact.
			digest, derr := capture.FileDigestFS(s.fs(), s.snapshotPath(wk))
			if derr != nil {
				return derr
			}
			if digest != intended {
				return fmt.Errorf("%w: week %d snapshot: wrote %s, disk holds %s",
					ErrCorruptWrite, wk, intended, digest)
			}
			return s.checkpoint(&Record{Event: EventDone, Week: wk, Stage: StageSnapshot, Digest: digest})
		})
		if err != nil {
			return nil, StageSnapshot, ran, err
		}
	}

	// Week done: one terminal record binding the snapshot digest.
	if err := s.checkpoint(&Record{Event: EventDone, Week: wk, Digest: st.Snapshot.Digest}); err != nil {
		return nil, "", ran, err
	}
	return snap, "", ran, nil
}

// syncManifestWeek mirrors a digest-verified journal checkpoint into
// the in-memory manifest, so a manifest rebuilt after corruption is
// repopulated from the journal instead of saved empty.
func (s *Supervisor) syncManifestWeek(wk int, st *WeekState) {
	if st.Capture.Digest == "" {
		return
	}
	if s.man.SetWeek(wk, capture.WeekFile(wk), st.Capture.Digest, st.Capture.Datagrams) {
		s.manChanged = true
	}
}

// captureVerified reports whether wk's checkpointed capture still
// matches the bytes on disk.
func (s *Supervisor) captureVerified(wk int, st *WeekState) bool {
	if !st.Capture.Done || st.Capture.Digest == "" {
		return false
	}
	got, err := capture.FileDigestFS(s.fs(), s.capturePath(wk))
	return err == nil && got == st.Capture.Digest
}

// snapshotVerified loads wk's snapshot if the checkpoint says it is
// done, the file digest matches, it still derives from the current
// capture digest, AND it carries every product the current analyzer
// registry expects. A legacy (single-product v1) snapshot, or one
// written under a narrower registry, fails the last check and is
// re-analyzed — the self-heal path that upgrades old campaign
// directories to full multi-product snapshots.
func (s *Supervisor) snapshotVerified(wk int, st *WeekState) (*snapshot.Snapshot, bool) {
	if !st.Snapshot.Done || st.Snapshot.Digest == "" {
		return nil, false
	}
	got, err := capture.FileDigestFS(s.fs(), s.snapshotPath(wk))
	if err != nil || got != st.Snapshot.Digest {
		return nil, false
	}
	snap, err := snapshot.LoadFileFS(s.fs(), s.snapshotPath(wk))
	if err != nil || snap.SourceDigest != st.Capture.Digest {
		return nil, false
	}
	for _, name := range s.env.Registry().Names() {
		if !snap.HasProduct(name) {
			return nil, false
		}
	}
	return snap, true
}

// verifyDone re-checks a done week's capture and snapshot digests.
func (s *Supervisor) verifyDone(wk int, st *WeekState) (*snapshot.Snapshot, bool) {
	if !s.captureVerified(wk, st) {
		return nil, false
	}
	snap, ok := s.snapshotVerified(wk, st)
	if !ok || st.DoneDigest != st.Snapshot.Digest {
		return nil, false
	}
	return snap, true
}

// RemoveJournal deletes dir's journal (tests and explicit campaign
// resets).
func RemoveJournal(dir string) error {
	err := os.Remove(journalPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}
