package supervise_test

import (
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ixplens/internal/capture"
	"ixplens/internal/core/webserver"
	"ixplens/internal/faultline"
	"ixplens/internal/netmodel"
	"ixplens/internal/obs"
	"ixplens/internal/packet"
	"ixplens/internal/pipeline"
	"ixplens/internal/snapshot"
	. "ixplens/internal/supervise"
	"ixplens/internal/traffic"
	"ixplens/internal/vfs"
)

// chaosDiskFaults is the reference storage-fault mix for the chaos
// suite: every failure class the fault FS can inject, at rates high
// enough to fire many times across a 17-week campaign but low enough
// that retries (which draw fresh faults) converge.
func chaosDiskFaults(seed uint64) faultline.FSConfig {
	return faultline.FSConfig{
		Seed:        seed,
		ShortWrite:  0.01,
		SyncFail:    0.01,
		SyncCorrupt: 0.01,
		TornRename:  0.05,
		ReadErr:     0.002,
	}
}

// TestStorageChaosConvergence is the crash-consistency acceptance test:
// a full 17-week supervised campaign where every byte to and from disk
// crosses a seeded fault-injecting filesystem (short writes, fsync
// failures, fsync-then-corrupt, torn renames, read EIO). The supervisor
// is restarted after every error — a crash — against the same damaged
// directory. The campaign must converge to snapshots byte-identical to
// a clean run's, and never accept a corrupt artifact along the way.
func TestStorageChaosConvergence(t *testing.T) {
	// Reference digests from an undamaged campaign of the same world.
	clean := newEnv(t)
	cleanDir := t.TempDir()
	supC, err := New(clean, cleanDir, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := supC.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	supC.Close()
	want := snapshotDigests(t, clean, cleanDir)

	// Chaos run: one fault FS shared across every restart, so each
	// rewrite of a path draws the next faults in its deterministic
	// stream rather than replaying the same one forever.
	env := newEnv(t)
	ffs := faultline.NewFS(vfs.OS{}, chaosDiskFaults(1973))
	env.FS = ffs
	dir := t.TempDir()
	cfg := Config{
		Retries:          5,
		Backoff:          time.Millisecond,
		MaxBackoff:       5 * time.Millisecond,
		RetryQuarantined: true,
	}
	weeks := env.World.Cfg.Weeks
	var rep *Report
	converged := false
	restarts := 0
	for ; restarts < 40 && !converged; restarts++ {
		sup, err := New(env, dir, cfg, nil)
		if err != nil {
			continue // campaign open hit a fault: crash, start over
		}
		r, err := sup.Run(context.Background())
		sup.Close()
		if err != nil {
			continue // mid-campaign crash
		}
		rep = r
		converged = rep.Completed == weeks && rep.Quarantined == 0
	}
	if !converged {
		t.Fatalf("no convergence after %d restarts: report %+v, faults %v",
			restarts, rep, ffs.Stats.String())
	}
	if ffs.Stats.Total() == 0 {
		t.Fatal("fault FS injected nothing; chaos run was vacuous")
	}
	t.Logf("converged after %d supervisor runs; injected faults: %v",
		restarts, ffs.Stats.String())

	got := snapshotDigests(t, env, dir)
	for wk, d := range want {
		if got[wk] != d {
			t.Errorf("week %d: chaos snapshot digest %s, clean run %s", wk, got[wk], d)
		}
	}

	// With the faults removed, a rerun must verify everything in place:
	// zero stage executions, all weeks resumed. Anything else means the
	// chaos run left an artifact the supervisor does not trust.
	env.FS = nil
	sup2, err := New(env, dir, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stages := 0
	sup2.Hooks.BeforeStage = func(int, string, int) error { stages++; return nil }
	rep2, err := sup2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sup2.Close()
	if stages != 0 || rep2.Resumed != weeks || rep2.Completed != weeks {
		t.Fatalf("post-chaos rerun not a verified no-op: %d stages, report %+v", stages, rep2)
	}
}

// storageEnv builds a shortened campaign world for the disk-full test.
func storageEnv(t *testing.T, weeks int) *pipeline.Env {
	t.Helper()
	cfg := netmodel.Tiny()
	cfg.Weeks = weeks
	opts := traffic.Options{SamplesPerWeek: 2500, SamplingRate: 16384, SnapLen: 128}
	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// dirBytes sums the sizes of all regular files under dir.
func dirBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// TestSupervisorStorageFullRecovers pins the ENOSPC degraded mode: a
// campaign against a disk with half the space it needs parks in
// storage-full waits (counted by supervise_storage_full_total) without
// burning retry budget, then completes cleanly once space is freed.
func TestSupervisorStorageFullRecovers(t *testing.T) {
	const weeks = 3
	// Size the quota off a clean campaign of the same world.
	ref := storageEnv(t, weeks)
	refDir := t.TempDir()
	supR, err := New(ref, refDir, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := supR.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	supR.Close()
	need := dirBytes(t, refDir)
	if need == 0 {
		t.Fatal("clean campaign wrote no bytes")
	}

	env := storageEnv(t, weeks)
	ffs := faultline.NewFS(vfs.OS{}, faultline.FSConfig{Seed: 41, Quota: need / 2})
	env.FS = ffs
	dir := t.TempDir()
	reg := obs.NewRegistry()
	sup, err := New(env, dir, Config{
		Backoff:    time.Millisecond,
		MaxBackoff: 10 * time.Millisecond,
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		rep *Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := sup.Run(context.Background())
		done <- result{rep, err}
	}()

	// Wait for the supervisor to hit the wall and park.
	full := reg.Counter("supervise_storage_full_total")
	deadline := time.Now().Add(30 * time.Second)
	for full.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("supervisor never reported storage full")
		}
		select {
		case r := <-done:
			t.Fatalf("run finished before filling the disk: %+v, %v", r.rep, r.err)
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Free space; the parked attempt must resume and finish the campaign.
	ffs.AddQuota(10 * need)
	var r result
	select {
	case r = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("supervisor did not finish after space was freed")
	}
	sup.Close()
	if r.err != nil {
		t.Fatalf("run after freeing space: %v", r.err)
	}
	if r.rep.Completed != weeks || r.rep.Quarantined != 0 {
		t.Fatalf("report after freeing space: %+v", r.rep)
	}
	if full.Value() == 0 {
		t.Fatal("supervise_storage_full_total stayed zero")
	}
}

// TestSaveFileNoTempLitterOnFailure: a failed atomic snapshot write
// must not leave its temp file behind.
func TestSaveFileNoTempLitterOnFailure(t *testing.T) {
	dir := t.TempDir()
	ffs := faultline.NewFS(vfs.OS{}, faultline.FSConfig{Seed: 3, SyncFail: 1})
	snap := &snapshot.Snapshot{Result: &webserver.Result{
		Week:    1,
		Servers: map[packet.IPv4Addr]*webserver.Server{},
	}}
	if _, err := snapshot.SaveFileFS(ffs, filepath.Join(dir, snapshot.FileName(1)), snap); err == nil {
		t.Fatal("save through always-failing fsync succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("litter after failed save: %s", e.Name())
	}
}

// TestSweepTemps: campaign open removes stale atomic-write scratch
// files and leaves real artifacts alone.
func TestSweepTemps(t *testing.T) {
	dir := t.TempDir()
	litter := []string{".manifest-123456", ".snap-42", ".journal-7"}
	keep := []string{snapshot.FileName(1), "manifest.json", "journal.jsonl"}
	for _, name := range append(append([]string{}, litter...), keep...) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if n := capture.SweepTemps(vfs.Default, dir); n != len(litter) {
		t.Fatalf("swept %d files, want %d", n, len(litter))
	}
	for _, name := range litter {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("litter %s survived the sweep", name)
		}
	}
	for _, name := range keep {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("real file %s: %v", name, err)
		}
	}
}
