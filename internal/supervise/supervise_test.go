package supervise_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ixplens/internal/capture"
	"ixplens/internal/faultline"
	"ixplens/internal/netmodel"
	"ixplens/internal/obs"
	"ixplens/internal/pipeline"
	"ixplens/internal/snapshot"
	. "ixplens/internal/supervise"
	"ixplens/internal/traffic"
)

// newEnv builds a small but full-length (17-week) world. Fault config
// is attached by individual tests.
func newEnv(t testing.TB) *pipeline.Env {
	t.Helper()
	cfg := netmodel.Tiny()
	opts := traffic.Options{SamplesPerWeek: 2500, SamplingRate: 16384, SnapLen: 128}
	env, err := pipeline.NewEnv(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// chaosFaults is the reference mix for the resilience tests: 5% drop
// plus bounded stalls.
func chaosFaults() *faultline.Config {
	return &faultline.Config{Seed: 7, Drop: 0.05, Stall: time.Millisecond, StallEvery: 500}
}

// snapshotDigests reads every week's snapshot digest from dir.
func snapshotDigests(t *testing.T, env *pipeline.Env, dir string) map[int]string {
	t.Helper()
	cfg := &env.World.Cfg
	out := make(map[int]string, cfg.Weeks)
	for wk := cfg.FirstWeek; wk <= cfg.LastWeek(); wk++ {
		d, err := capture.FileDigest(filepath.Join(dir, snapshot.FileName(wk)))
		if err != nil {
			t.Fatalf("week %d snapshot: %v", wk, err)
		}
		out[wk] = d
	}
	return out
}

func TestSupervisorHappyPathAndNoopRerun(t *testing.T) {
	env := newEnv(t)
	dir := t.TempDir()
	reg := obs.NewRegistry()
	sup, err := New(env, dir, Config{}, reg)
	if err != nil {
		t.Fatal(err)
	}
	stages := 0
	sup.Hooks.BeforeStage = func(week int, stage string, attempt int) error {
		stages++
		return nil
	}
	rep, err := sup.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sup.Close()
	cfg := &env.World.Cfg
	if rep.Completed != cfg.Weeks || rep.Quarantined != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if stages != 3*cfg.Weeks {
		t.Fatalf("%d stage executions, want %d", stages, 3*cfg.Weeks)
	}
	ref := snapshotDigests(t, env, dir)

	// Re-running the finished campaign is a verified no-op: zero stage
	// executions, every week reported resumed, identical bytes.
	sup2, err := New(env, dir, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stages2 := 0
	sup2.Hooks.BeforeStage = func(int, string, int) error { stages2++; return nil }
	weeksSeen := 0
	sup2.Hooks.OnWeek = func(ws WeekStatus, snap *snapshot.Snapshot) {
		weeksSeen++
		if snap == nil {
			t.Errorf("week %d: nil snapshot on resumed rerun", ws.Week)
		}
	}
	rep2, err := sup2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sup2.Close()
	if stages2 != 0 {
		t.Fatalf("no-op rerun executed %d stages", stages2)
	}
	if rep2.Resumed != cfg.Weeks || rep2.Completed != cfg.Weeks || weeksSeen != cfg.Weeks {
		t.Fatalf("rerun report: %+v (weeks seen %d)", rep2, weeksSeen)
	}
	for wk, d := range snapshotDigests(t, env, dir) {
		if ref[wk] != d {
			t.Fatalf("week %d snapshot changed on no-op rerun", wk)
		}
	}
}

// TestSupervisorRetryTransient: a stage that fails transiently recovers
// within the retry budget and the final bytes match a clean run.
func TestSupervisorRetryTransient(t *testing.T) {
	clean := newEnv(t)
	cleanDir := t.TempDir()
	supC, err := New(clean, cleanDir, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := supC.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	supC.Close()
	ref := snapshotDigests(t, clean, cleanDir)

	env := newEnv(t)
	dir := t.TempDir()
	reg := obs.NewRegistry()
	sup, err := New(env, dir, Config{Retries: 3, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}, reg)
	if err != nil {
		t.Fatal(err)
	}
	flaky := 0
	failWeek := env.World.Cfg.FirstWeek + 2
	sup.Hooks.BeforeStage = func(week int, stage string, attempt int) error {
		if week == failWeek && stage == StageAnalyze && flaky < 2 {
			flaky++
			return fmt.Errorf("injected transient: %w", context.DeadlineExceeded)
		}
		return nil
	}
	rep, err := sup.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sup.Close()
	if rep.Quarantined != 0 || rep.Completed != env.World.Cfg.Weeks {
		t.Fatalf("report: %+v", rep)
	}
	var failed WeekStatus
	for _, ws := range rep.Weeks {
		if ws.Week == failWeek {
			failed = ws
		}
	}
	if failed.Attempts != 3 {
		t.Fatalf("flaky week attempts = %d, want 3", failed.Attempts)
	}
	if got := reg.Counters()["supervise_retries_total"]; got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
	for wk, d := range snapshotDigests(t, env, dir) {
		if ref[wk] != d {
			t.Fatalf("week %d snapshot differs from clean run after retries", wk)
		}
	}
}

// TestSupervisorQuarantine: a permanently failing week is quarantined
// after one attempt while the other weeks complete; a transiently
// failing week burns its whole budget first.
func TestSupervisorQuarantine(t *testing.T) {
	env := newEnv(t)
	dir := t.TempDir()
	reg := obs.NewRegistry()
	sup, err := New(env, dir, Config{Retries: 3, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}, reg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &env.World.Cfg
	permWeek := cfg.FirstWeek + 1
	transWeek := cfg.FirstWeek + 4
	sup.Hooks.BeforeStage = func(week int, stage string, attempt int) error {
		switch {
		case week == permWeek && stage == StageSnapshot:
			return fmt.Errorf("injected permanent: %w", ErrDigestMismatch)
		case week == transWeek && stage == StageAnalyze:
			return errors.New("injected transient failure")
		}
		return nil
	}
	quarantinedSeen := 0
	sup.Hooks.OnWeek = func(ws WeekStatus, snap *snapshot.Snapshot) {
		if ws.Status == "quarantined" {
			quarantinedSeen++
			if snap != nil {
				t.Errorf("week %d: quarantined with a snapshot", ws.Week)
			}
		}
	}
	rep, err := sup.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	if rep.Quarantined != 2 || quarantinedSeen != 2 {
		t.Fatalf("quarantined %d (hook saw %d), want 2", rep.Quarantined, quarantinedSeen)
	}
	if rep.Completed != cfg.Weeks-2 {
		t.Fatalf("completed %d, want %d", rep.Completed, cfg.Weeks-2)
	}
	byWeek := make(map[int]WeekStatus)
	for _, ws := range rep.Weeks {
		byWeek[ws.Week] = ws
	}
	if ws := byWeek[permWeek]; ws.Status != "quarantined" || ws.Attempts != 1 || !errors.Is(ws.Err, ErrDigestMismatch) {
		t.Fatalf("permanent week: %+v", ws)
	}
	if ws := byWeek[transWeek]; ws.Status != "quarantined" || ws.Attempts != 3 {
		t.Fatalf("transient week: %+v", ws)
	}
	if got := sup.State().QuarantinedWeeks(); len(got) != 2 || got[0] != permWeek || got[1] != transWeek {
		t.Fatalf("journal quarantine set: %v", got)
	}

	// The quarantine persists across runs: a plain rerun skips the
	// quarantined weeks without retrying them.
	sup2, err := New(env, dir, Config{Retries: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stages := 0
	sup2.Hooks.BeforeStage = func(int, string, int) error { stages++; return nil }
	rep2, err := sup2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sup2.Close()
	if stages != 0 || rep2.Quarantined != 2 {
		t.Fatalf("rerun retried quarantined weeks: stages=%d report=%+v", stages, rep2)
	}

	// RetryQuarantined half-opens the breaker; with the fault gone the
	// weeks complete and the campaign heals.
	sup3, err := New(env, dir, Config{Retries: 3, RetryQuarantined: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep3, err := sup3.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sup3.Close()
	if rep3.Quarantined != 0 || rep3.Completed != cfg.Weeks {
		t.Fatalf("healed report: %+v", rep3)
	}
}

// TestSupervisorQuarantineLimit: crossing the limit aborts the campaign
// with ErrQuarantineLimit.
func TestSupervisorQuarantineLimit(t *testing.T) {
	env := newEnv(t)
	sup, err := New(env, t.TempDir(), Config{
		Retries: 1, Backoff: time.Millisecond, QuarantineLimit: 1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sup.Hooks.BeforeStage = func(week int, stage string, attempt int) error {
		return fmt.Errorf("injected permanent: %w", ErrDigestMismatch)
	}
	_, err = sup.Run(context.Background())
	sup.Close()
	if !errors.Is(err, ErrQuarantineLimit) {
		t.Fatalf("err = %v, want ErrQuarantineLimit", err)
	}
}

// TestSupervisorWatchdog drives the stall injector: a watchdog shorter
// than the injected stalls cancels the capture stage and the week
// quarantines after its budget; a generous watchdog lets the same
// faults complete.
func TestSupervisorWatchdog(t *testing.T) {
	env := newEnv(t)
	env.Faults = &faultline.Config{Seed: 7, Stall: 30 * time.Millisecond, StallEvery: 50}
	if err := env.Faults.Validate(); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sup, err := New(env, t.TempDir(), Config{
		Retries: 2, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		Watchdog: 10 * time.Millisecond, QuarantineLimit: 0,
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sup.Run(context.Background())
	sup.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined == 0 {
		t.Fatal("10ms watchdog against 30ms stalls quarantined nothing")
	}
	if got := reg.Counters()["supervise_watchdog_fires_total"]; got == 0 {
		t.Fatal("watchdog fired zero times")
	}
	for _, ws := range rep.Weeks {
		if ws.Status == "quarantined" && !errors.Is(ws.Err, context.DeadlineExceeded) {
			t.Fatalf("week %d quarantined by %v, want deadline", ws.Week, ws.Err)
		}
	}

	// Same faults, generous watchdog: every week completes.
	env2 := newEnv(t)
	env2.Faults = env.Faults
	sup2, err := New(env2, t.TempDir(), Config{
		Retries: 2, Backoff: time.Millisecond, Watchdog: time.Minute,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := sup2.Run(context.Background())
	sup2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Quarantined != 0 || rep2.Completed != env2.World.Cfg.Weeks {
		t.Fatalf("generous watchdog report: %+v", rep2)
	}
}

// errCrash simulates kill -9 at a checkpoint boundary: the campaign
// aborts with no cleanup (the journal record is already durable).
var errCrash = errors.New("simulated crash")

// TestCrashResumeEquivalence is the acceptance criterion: kill the
// campaign at randomized checkpoint boundaries under 5% drop + stalls,
// resume with a fresh supervisor each time, and require the final
// snapshots to be byte-identical to an uninterrupted run for all 17
// weeks.
func TestCrashResumeEquivalence(t *testing.T) {
	// Uninterrupted reference run under the same fault mix.
	refEnv := newEnv(t)
	refEnv.Faults = chaosFaults()
	refDir := t.TempDir()
	supR, err := New(refEnv, refDir, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	repR, err := supR.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	supR.Close()
	if repR.Quarantined != 0 {
		t.Fatalf("reference run quarantined: %+v", repR)
	}
	ref := snapshotDigests(t, refEnv, refDir)

	// Crash-looped run: each supervisor instance survives a pseudo-random
	// number of checkpoints, crashes, and is replaced — exactly the
	// kill -9 + restart cycle, since every checkpoint is durable before
	// the crash hook sees it.
	env := newEnv(t)
	env.Faults = chaosFaults()
	dir := t.TempDir()
	crashAfter := []int{7, 5, 3, 8, 2, 6, 4, 9, 1, 5, 3, 7}
	runs, crashes := 0, 0
	for {
		runs++
		if runs > 100 {
			t.Fatal("campaign did not converge within 100 crash-resume cycles")
		}
		sup, err := New(env, dir, Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		budget := crashAfter[(runs-1)%len(crashAfter)]
		seen := 0
		sup.Hooks.AfterCheckpoint = func(week int, stage string) error {
			seen++
			if seen >= budget {
				return errCrash
			}
			return nil
		}
		rep, err := sup.Run(context.Background())
		sup.Close()
		if err == nil {
			if rep.Completed != env.World.Cfg.Weeks {
				t.Fatalf("converged with %d/%d weeks", rep.Completed, env.World.Cfg.Weeks)
			}
			break
		}
		if !errors.Is(err, errCrash) {
			t.Fatalf("run %d died of %v, not the injected crash", runs, err)
		}
		crashes++
	}
	if crashes == 0 {
		t.Fatal("crash injection never fired")
	}
	t.Logf("converged after %d runs (%d crashes)", runs, crashes)

	got := snapshotDigests(t, env, dir)
	for wk, d := range ref {
		if got[wk] != d {
			t.Fatalf("week %d snapshot differs after crash-resume (got %s, want %s)", wk, got[wk], d)
		}
	}

	// And the converged campaign is now a no-op.
	sup, err := New(env, dir, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stages := 0
	sup.Hooks.BeforeStage = func(int, string, int) error { stages++; return nil }
	rep, err := sup.Run(context.Background())
	sup.Close()
	if err != nil || stages != 0 || rep.Resumed != env.World.Cfg.Weeks {
		t.Fatalf("post-convergence rerun: err=%v stages=%d report=%+v", err, stages, rep)
	}
}

// TestSupervisorSelfHealsDamage: deleting or corrupting artifacts of a
// done week triggers deterministic regeneration on the next run, ending
// in identical bytes.
func TestSupervisorSelfHealsDamage(t *testing.T) {
	env := newEnv(t)
	dir := t.TempDir()
	sup, err := New(env, dir, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	sup.Close()
	ref := snapshotDigests(t, env, dir)
	cfg := &env.World.Cfg

	// Damage one capture (bit flip) and delete another week's snapshot.
	flipWeek, delWeek := cfg.FirstWeek+3, cfg.FirstWeek+9
	if _, err := faultline.FlipFileBit(filepath.Join(dir, capture.WeekFile(flipWeek)), 4096); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, snapshot.FileName(delWeek))); err != nil {
		t.Fatal(err)
	}

	sup2, err := New(env, dir, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sup2.Run(context.Background())
	sup2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 0 {
		t.Fatalf("self-heal quarantined: %+v", rep)
	}
	if rep.Resumed != cfg.Weeks-2 {
		t.Fatalf("resumed %d, want %d (two damaged weeks re-ran)", rep.Resumed, cfg.Weeks-2)
	}
	for wk, d := range snapshotDigests(t, env, dir) {
		if ref[wk] != d {
			t.Fatalf("week %d snapshot differs after self-heal", wk)
		}
	}
}

// TestSupervisorAdoptsUnsupervisedCampaign: the supervisor must be a
// drop-in over a campaign written by plain WriteCampaign — no journal,
// manifest digests only. The anonymized case is the sharp one: without
// adoption the supervisor would need the key to rewrite every week and
// quarantine them all with ErrAnonKeyRequired; with adoption the
// manifest digests vouch for the files and only analyze+snapshot run.
func TestSupervisorAdoptsUnsupervisedCampaign(t *testing.T) {
	env := newEnv(t)
	dir := t.TempDir()
	if _, err := capture.WriteCampaignAnonymized(context.Background(), env, dir, 0xfeedface); err != nil {
		t.Fatal(err)
	}
	cfg := &env.World.Cfg

	// No key in the supervisor's config: any rewrite attempt fails, so a
	// fully completed run proves every capture was adopted, not rewritten.
	sup, err := New(env, dir, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sup.Run(context.Background())
	sup.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != cfg.Weeks || rep.Quarantined != 0 {
		t.Fatalf("adoption run: %d completed, %d quarantined, want %d/0 (first err: %v)",
			rep.Completed, rep.Quarantined, cfg.Weeks, firstErr(rep))
	}
	// The manifest on disk must still say anonymized — the supervisor
	// inherited the identity rather than overwriting it.
	man, err := capture.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !man.Anonymized || man.AnonFP == "" {
		t.Fatalf("manifest anonymization lost: %+v", man)
	}
	// Second run: pure no-op resume.
	sup2, err := New(env, dir, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := sup2.Run(context.Background())
	sup2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != cfg.Weeks {
		t.Fatalf("rerun resumed %d, want %d", rep2.Resumed, cfg.Weeks)
	}
}

// firstErr extracts the first week error in a report for diagnostics.
func firstErr(rep *Report) error {
	for _, ws := range rep.Weeks {
		if ws.Err != nil {
			return ws.Err
		}
	}
	return nil
}
