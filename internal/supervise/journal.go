// Package supervise runs a capture→analyze→snapshot measurement
// campaign as a crash-safe supervised state machine. Each week moves
// pending → running → done | quarantined; progress is checkpointed to
// an append-only JSONL journal bound by content digests to the capture
// manifest and the snapshot files, so a kill -9 at any point resumes
// from the last completed stage and re-running a finished campaign is a
// verified no-op. Failures are classified transient (retried with
// exponential backoff and deterministic jitter, under an optional
// per-stage watchdog deadline) or permanent (the week is quarantined
// immediately); a per-week circuit breaker quarantines a week after its
// retry budget instead of failing the campaign, and downstream
// consumers (churn gaps, the serving layer's degraded health) carry the
// hole explicitly. A full disk is its own degraded mode: storage-full
// errors back off without consuming the retry budget, so a campaign
// stalls until space is freed instead of quarantining healthy weeks.
package supervise

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"

	"ixplens/internal/capture"
	"ixplens/internal/vfs"
)

// JournalName is the checkpoint journal file inside a campaign
// directory.
const JournalName = "supervise.journal"

// Stage names, in pipeline order.
const (
	StageCapture  = "capture"
	StageAnalyze  = "analyze"
	StageSnapshot = "snapshot"
)

// Journal events.
const (
	// EventCampaign opens a journal: it pins the campaign's config
	// digest so a journal can never vouch for weeks generated under a
	// different world.
	EventCampaign = "campaign"
	// EventStart marks the beginning of one attempt at a week.
	EventStart = "start"
	// EventDone marks a completed stage (Stage set) or, with Stage
	// empty, a fully completed week; Digest binds the record to the
	// bytes on disk.
	EventDone = "done"
	// EventFail records one classified stage failure.
	EventFail = "fail"
	// EventQuarantine trips the week's circuit breaker.
	EventQuarantine = "quarantine"
)

// Record is one journal line. Fields are omitted when empty so the
// journal stays greppable and small.
type Record struct {
	Event     string `json:"event"`
	Week      int    `json:"week,omitempty"`
	Stage     string `json:"stage,omitempty"`
	Attempt   int    `json:"attempt,omitempty"`
	Digest    string `json:"digest,omitempty"`
	Datagrams int    `json:"datagrams,omitempty"`
	Class     string `json:"class,omitempty"`
	Err       string `json:"err,omitempty"`
	// Config is the campaign config digest (EventCampaign only).
	Config string `json:"config,omitempty"`
	// CRC is the crc32c (hex) of the record marshaled with CRC empty.
	// It catches silent corruption that still parses as JSON — a flipped
	// character inside a digest string would otherwise masquerade as a
	// mismatch and quarantine a healthy week permanently. Records
	// written before the field existed (no CRC) replay unchecked.
	CRC string `json:"crc,omitempty"`
}

// castagnoli is the CRC32C table, matching the capture containers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksum derives rec's CRC field value: the record is marshaled with
// CRC empty and summed. Marshal of this struct cannot fail.
func (rec *Record) checksum() string {
	c := *rec
	c.CRC = ""
	raw, _ := json.Marshal(&c)
	return fmt.Sprintf("%08x", crc32.Checksum(raw, castagnoli))
}

// verifies reports whether rec's stored CRC matches its content (or is
// absent — pre-CRC journals stay replayable).
func (rec *Record) verifies() bool {
	return rec.CRC == "" || rec.CRC == rec.checksum()
}

// StageState is the replayed durable state of one stage of one week.
type StageState struct {
	Done      bool
	Digest    string
	Datagrams int
}

// WeekState is the replayed state of one week.
type WeekState struct {
	Capture  StageState
	Analyze  StageState
	Snapshot StageState
	// Attempts counts attempts started so far (across runs).
	Attempts int
	// Quarantined means the week's breaker is open: no further attempts
	// unless the supervisor is told to retry quarantined weeks.
	Quarantined bool
	// LastErr / LastClass describe the most recent failure.
	LastErr   string
	LastClass string
	// Done means the whole week completed; DoneDigest is its snapshot
	// file digest at completion time.
	Done       bool
	DoneDigest string
}

// State is the full replayed journal state.
type State struct {
	ConfigDigest string
	Weeks        map[int]*WeekState
}

// week returns (creating) the state of one week.
func (s *State) week(wk int) *WeekState {
	ws := s.Weeks[wk]
	if ws == nil {
		ws = &WeekState{}
		s.Weeks[wk] = ws
	}
	return ws
}

// QuarantinedWeeks lists the quarantined weeks in ascending order.
func (s *State) QuarantinedWeeks() []int {
	if s == nil {
		return nil
	}
	var out []int
	for wk, ws := range s.Weeks {
		if ws.Quarantined {
			out = append(out, wk)
		}
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// apply folds one record into the state.
func (s *State) apply(rec *Record) {
	switch rec.Event {
	case EventCampaign:
		s.ConfigDigest = rec.Config
	case EventStart:
		ws := s.week(rec.Week)
		if rec.Attempt > ws.Attempts {
			ws.Attempts = rec.Attempt
		}
		// A logged start means a retry was authorized: the breaker
		// half-opens and the journal will record how it went.
		ws.Quarantined = false
	case EventDone:
		ws := s.week(rec.Week)
		st := StageState{Done: true, Digest: rec.Digest, Datagrams: rec.Datagrams}
		switch rec.Stage {
		case StageCapture:
			// A re-captured week invalidates anything derived from the
			// previous bytes.
			if ws.Capture.Digest != rec.Digest {
				ws.Analyze = StageState{}
				ws.Snapshot = StageState{}
				ws.Done, ws.DoneDigest = false, ""
			}
			ws.Capture = st
		case StageAnalyze:
			ws.Analyze = st
		case StageSnapshot:
			ws.Snapshot = st
		case "":
			ws.Done, ws.DoneDigest = true, rec.Digest
		}
	case EventFail:
		ws := s.week(rec.Week)
		if rec.Attempt > ws.Attempts {
			ws.Attempts = rec.Attempt
		}
		ws.LastErr, ws.LastClass = rec.Err, rec.Class
	case EventQuarantine:
		ws := s.week(rec.Week)
		ws.Quarantined = true
		if rec.Err != "" {
			ws.LastErr = rec.Err
		}
	}
}

// Journal is the append-only JSONL checkpoint log. Appends are a single
// write followed by an fsync, so every acknowledged record survives a
// crash; a torn final line (crash mid-append) is dropped on replay, a
// torn or corrupted record anywhere else is skipped by scan-forward
// resync (newline framing makes every later record recoverable), and a
// failed append is rolled back by truncating to the last acknowledged
// record so the file never carries a half-written line into the next
// write.
type Journal struct {
	fsys  vfs.FS
	f     vfs.File
	path  string
	state *State
	// size is the durable length after the last acknowledged append;
	// torn records that a failed append may have left partial bytes
	// beyond size that the next append must truncate away first.
	size int64
	torn bool
	// dropped counts records discarded by resync during open.
	dropped int
}

// journalPath returns dir's journal file path.
func journalPath(dir string) string { return filepath.Join(dir, JournalName) }

// replay parses a journal's bytes into records by scan-forward resync:
// a line that fails to parse or fails its CRC is dropped (counted in
// dropped) and scanning continues at the next newline, so one torn or
// bit-flipped record costs exactly that record, not the rest of the
// journal. Dropping is safe because the journal is a redo log over
// digest-verified files: a lost "done" is re-verified from disk, a lost
// "fail" costs one extra retry. Only a scanner-level error (a line
// beyond the size cap) makes the bytes untrustworthy as a whole.
func replay(raw []byte) (recs []*Record, dropped int, err error) {
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec := &Record{}
		if json.Unmarshal(line, rec) != nil || !rec.verifies() {
			dropped++
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, dropped, err
	}
	return recs, dropped, nil
}

// ReadState replays dir's journal without opening it for writing — the
// serving layer uses this to learn the quarantined-week list. A missing
// journal yields an empty state, not an error.
func ReadState(dir string) (*State, error) {
	return ReadStateFS(vfs.Default, dir)
}

// ReadStateFS is ReadState through an explicit filesystem seam.
func ReadStateFS(fsys vfs.FS, dir string) (*State, error) {
	st := &State{Weeks: make(map[int]*WeekState)}
	raw, err := vfs.ReadFile(fsys, journalPath(dir))
	if errors.Is(err, fs.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return nil, err
	}
	recs, _, err := replay(raw)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		st.apply(rec)
	}
	return st, nil
}

// OpenJournal replays dir's journal and opens it for appending. Torn or
// corrupted records are dropped by scan-forward resync; a journal whose
// config digest does not match configDigest — or whose bytes defeat the
// scanner entirely — is rotated aside (".bad") and a fresh one is
// started: its checkpoints describe a different campaign and must not
// vouch for the files on disk.
func OpenJournal(dir, configDigest string) (*Journal, error) {
	return OpenJournalFS(vfs.Default, dir, configDigest)
}

// OpenJournalFS is OpenJournal through an explicit filesystem seam.
func OpenJournalFS(fsys vfs.FS, dir, configDigest string) (*Journal, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := journalPath(dir)
	st := &State{Weeks: make(map[int]*WeekState)}
	raw, err := vfs.ReadFile(fsys, path)
	fresh := errors.Is(err, fs.ErrNotExist)
	if err != nil && !fresh {
		return nil, err
	}
	dropped := 0
	if !fresh {
		recs, drop, rerr := replay(raw)
		dropped = drop
		if rerr == nil {
			for _, rec := range recs {
				st.apply(rec)
			}
		}
		if rerr != nil || (st.ConfigDigest != "" && st.ConfigDigest != configDigest) {
			if err := fsys.Rename(path, path+".bad"); err != nil {
				return nil, err
			}
			if err := fsys.SyncDir(dir); err != nil {
				return nil, err
			}
			st = &State{Weeks: make(map[int]*WeekState)}
			dropped = 0
		} else if n := len(raw); n > 0 && raw[n-1] != '\n' {
			// Torn tail from a crash mid-append: the record was never
			// acknowledged, so cutting it is safe — and necessary,
			// because the next append must not glue onto the partial
			// line and corrupt itself.
			cut := 0
			if i := bytes.LastIndexByte(raw, '\n'); i >= 0 {
				cut = i + 1
			}
			if err := fsys.Truncate(path, int64(cut)); err != nil {
				return nil, err
			}
		}
	}
	f, err := fsys.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	j := &Journal{fsys: fsys, f: f, path: path, state: st, size: fi.Size(), dropped: dropped}
	if st.ConfigDigest == "" {
		if err := j.Append(&Record{Event: EventCampaign, Config: configDigest}); err != nil {
			f.Close()
			return nil, err
		}
		// The campaign record also covers journal creation: fsync the
		// directory so the file itself survives power loss.
		if err := fsys.SyncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// State returns the journal's replayed (and live-updated) state.
func (j *Journal) State() *State { return j.state }

// Dropped reports how many corrupted or torn records replay discarded
// when the journal was opened.
func (j *Journal) Dropped() int { return j.dropped }

// Append writes one record (a single CRC-tagged line), fsyncs it, and
// folds it into the in-memory state. The write is O_APPEND, so
// concurrent appenders cannot interleave bytes. A failed write or sync
// is rolled back by truncating to the last acknowledged size; if even
// the rollback fails (full disk), the truncate is retried before the
// next append, and replay's resync drops the partial line if the
// process dies first. Either way the state machine only ever trusts
// acknowledged records.
func (j *Journal) Append(rec *Record) error {
	rec.CRC = rec.checksum()
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if j.torn {
		if err := j.f.Truncate(j.size); err != nil {
			return fmt.Errorf("supervise: journal rollback: %w", err)
		}
		j.torn = false
	}
	n, werr := j.f.Write(line)
	if werr == nil && n < len(line) {
		werr = fmt.Errorf("supervise: journal short write %d of %d bytes", n, len(line))
	}
	if werr == nil {
		werr = j.f.Sync()
	}
	if werr != nil {
		// Unacknowledged bytes must not prefix the next record. Truncate
		// back; a rollback that itself fails leaves torn set so the next
		// append retries it.
		if terr := j.f.Truncate(j.size); terr != nil {
			j.torn = true
		}
		return werr
	}
	j.size += int64(len(line))
	j.state.apply(rec)
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// ConfigDigest derives the campaign identity a journal is bound to: the
// manifest-compatibility key (config, traffic options, container
// format, compression, anonymization fingerprint) hashed to hex. Two
// campaigns with equal digests produce byte-identical capture files.
func ConfigDigest(man *capture.Manifest) (string, error) {
	key := struct {
		Config      any
		Options     any
		Format      int
		Compression bool
		Anonymized  bool
		AnonFP      string
	}{man.Config, man.Options, man.Format, man.Compression, man.Anonymized, man.AnonFP}
	raw, err := json.Marshal(key)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}
