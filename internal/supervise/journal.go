// Package supervise runs a capture→analyze→snapshot measurement
// campaign as a crash-safe supervised state machine. Each week moves
// pending → running → done | quarantined; progress is checkpointed to
// an append-only JSONL journal bound by content digests to the capture
// manifest and the snapshot files, so a kill -9 at any point resumes
// from the last completed stage and re-running a finished campaign is a
// verified no-op. Failures are classified transient (retried with
// exponential backoff and deterministic jitter, under an optional
// per-stage watchdog deadline) or permanent (the week is quarantined
// immediately); a per-week circuit breaker quarantines a week after its
// retry budget instead of failing the campaign, and downstream
// consumers (churn gaps, the serving layer's degraded health) carry the
// hole explicitly.
package supervise

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"ixplens/internal/capture"
)

// JournalName is the checkpoint journal file inside a campaign
// directory.
const JournalName = "supervise.journal"

// Stage names, in pipeline order.
const (
	StageCapture  = "capture"
	StageAnalyze  = "analyze"
	StageSnapshot = "snapshot"
)

// Journal events.
const (
	// EventCampaign opens a journal: it pins the campaign's config
	// digest so a journal can never vouch for weeks generated under a
	// different world.
	EventCampaign = "campaign"
	// EventStart marks the beginning of one attempt at a week.
	EventStart = "start"
	// EventDone marks a completed stage (Stage set) or, with Stage
	// empty, a fully completed week; Digest binds the record to the
	// bytes on disk.
	EventDone = "done"
	// EventFail records one classified stage failure.
	EventFail = "fail"
	// EventQuarantine trips the week's circuit breaker.
	EventQuarantine = "quarantine"
)

// Record is one journal line. Fields are omitted when empty so the
// journal stays greppable and small.
type Record struct {
	Event     string `json:"event"`
	Week      int    `json:"week,omitempty"`
	Stage     string `json:"stage,omitempty"`
	Attempt   int    `json:"attempt,omitempty"`
	Digest    string `json:"digest,omitempty"`
	Datagrams int    `json:"datagrams,omitempty"`
	Class     string `json:"class,omitempty"`
	Err       string `json:"err,omitempty"`
	// Config is the campaign config digest (EventCampaign only).
	Config string `json:"config,omitempty"`
}

// StageState is the replayed durable state of one stage of one week.
type StageState struct {
	Done      bool
	Digest    string
	Datagrams int
}

// WeekState is the replayed state of one week.
type WeekState struct {
	Capture  StageState
	Analyze  StageState
	Snapshot StageState
	// Attempts counts attempts started so far (across runs).
	Attempts int
	// Quarantined means the week's breaker is open: no further attempts
	// unless the supervisor is told to retry quarantined weeks.
	Quarantined bool
	// LastErr / LastClass describe the most recent failure.
	LastErr   string
	LastClass string
	// Done means the whole week completed; DoneDigest is its snapshot
	// file digest at completion time.
	Done       bool
	DoneDigest string
}

// State is the full replayed journal state.
type State struct {
	ConfigDigest string
	Weeks        map[int]*WeekState
}

// week returns (creating) the state of one week.
func (s *State) week(wk int) *WeekState {
	ws := s.Weeks[wk]
	if ws == nil {
		ws = &WeekState{}
		s.Weeks[wk] = ws
	}
	return ws
}

// QuarantinedWeeks lists the quarantined weeks in ascending order.
func (s *State) QuarantinedWeeks() []int {
	if s == nil {
		return nil
	}
	var out []int
	for wk, ws := range s.Weeks {
		if ws.Quarantined {
			out = append(out, wk)
		}
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// apply folds one record into the state.
func (s *State) apply(rec *Record) {
	switch rec.Event {
	case EventCampaign:
		s.ConfigDigest = rec.Config
	case EventStart:
		ws := s.week(rec.Week)
		if rec.Attempt > ws.Attempts {
			ws.Attempts = rec.Attempt
		}
		// A logged start means a retry was authorized: the breaker
		// half-opens and the journal will record how it went.
		ws.Quarantined = false
	case EventDone:
		ws := s.week(rec.Week)
		st := StageState{Done: true, Digest: rec.Digest, Datagrams: rec.Datagrams}
		switch rec.Stage {
		case StageCapture:
			// A re-captured week invalidates anything derived from the
			// previous bytes.
			if ws.Capture.Digest != rec.Digest {
				ws.Analyze = StageState{}
				ws.Snapshot = StageState{}
				ws.Done, ws.DoneDigest = false, ""
			}
			ws.Capture = st
		case StageAnalyze:
			ws.Analyze = st
		case StageSnapshot:
			ws.Snapshot = st
		case "":
			ws.Done, ws.DoneDigest = true, rec.Digest
		}
	case EventFail:
		ws := s.week(rec.Week)
		if rec.Attempt > ws.Attempts {
			ws.Attempts = rec.Attempt
		}
		ws.LastErr, ws.LastClass = rec.Err, rec.Class
	case EventQuarantine:
		ws := s.week(rec.Week)
		ws.Quarantined = true
		if rec.Err != "" {
			ws.LastErr = rec.Err
		}
	}
}

// Journal is the append-only JSONL checkpoint log. Appends are a single
// write followed by an fsync, so every acknowledged record survives a
// crash; a torn final line (crash mid-append) is dropped on replay.
type Journal struct {
	f     *os.File
	path  string
	state *State
}

// journalPath returns dir's journal file path.
func journalPath(dir string) string { return filepath.Join(dir, JournalName) }

// replay parses a journal's bytes into records. A malformed final line
// is tolerated (torn append); malformed earlier lines mean the file is
// damaged and cannot be trusted at all.
func replay(raw []byte) ([]*Record, error) {
	var recs []*Record
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var pendingErr error
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// The malformed line was not the last one: damage, not a
			// torn tail.
			return nil, pendingErr
		}
		rec := &Record{}
		if err := json.Unmarshal(line, rec); err != nil {
			pendingErr = fmt.Errorf("supervise: journal line: %w", err)
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// ReadState replays dir's journal without opening it for writing — the
// serving layer uses this to learn the quarantined-week list. A missing
// journal yields an empty state, not an error.
func ReadState(dir string) (*State, error) {
	st := &State{Weeks: make(map[int]*WeekState)}
	raw, err := os.ReadFile(journalPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return nil, err
	}
	recs, err := replay(raw)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		st.apply(rec)
	}
	return st, nil
}

// OpenJournal replays dir's journal and opens it for appending. A
// journal whose config digest does not match configDigest — or whose
// middle is damaged — is rotated aside (".bad") and a fresh one is
// started: its checkpoints describe a different campaign and must not
// vouch for the files on disk.
func OpenJournal(dir, configDigest string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := journalPath(dir)
	st := &State{Weeks: make(map[int]*WeekState)}
	raw, err := os.ReadFile(path)
	fresh := errors.Is(err, os.ErrNotExist)
	if err != nil && !fresh {
		return nil, err
	}
	if !fresh {
		recs, rerr := replay(raw)
		if rerr == nil {
			for _, rec := range recs {
				st.apply(rec)
			}
		}
		if rerr != nil || (st.ConfigDigest != "" && st.ConfigDigest != configDigest) {
			if err := os.Rename(path, path+".bad"); err != nil {
				return nil, err
			}
			st = &State{Weeks: make(map[int]*WeekState)}
			fresh = true
		} else if n := len(raw); n > 0 && raw[n-1] != '\n' {
			// Torn tail from a crash mid-append: the record was never
			// acknowledged, so cutting it is safe — and necessary,
			// because the next append must not glue onto the partial
			// line and corrupt itself.
			cut := 0
			if i := bytes.LastIndexByte(raw, '\n'); i >= 0 {
				cut = i + 1
			}
			if err := os.Truncate(path, int64(cut)); err != nil {
				return nil, err
			}
		}
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path, state: st}
	if st.ConfigDigest == "" {
		if err := j.Append(&Record{Event: EventCampaign, Config: configDigest}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// State returns the journal's replayed (and live-updated) state.
func (j *Journal) State() *State { return j.state }

// Append writes one record (a single line), fsyncs it, and folds it
// into the in-memory state. The write is O_APPEND, so concurrent
// appenders cannot interleave bytes; a crash between write and sync
// loses at most this one record, and a crash mid-write leaves a torn
// tail the next replay drops.
func (j *Journal) Append(rec *Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.state.apply(rec)
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// ConfigDigest derives the campaign identity a journal is bound to: the
// manifest-compatibility key (config, traffic options, container
// format, compression, anonymization fingerprint) hashed to hex. Two
// campaigns with equal digests produce byte-identical capture files.
func ConfigDigest(man *capture.Manifest) (string, error) {
	key := struct {
		Config      any
		Options     any
		Format      int
		Compression bool
		Anonymized  bool
		AnonFP      string
	}{man.Config, man.Options, man.Format, man.Compression, man.Anonymized, man.AnonFP}
	raw, err := json.Marshal(key)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}
