package supervise

import "ixplens/internal/obs"

// Breaker state gauge values.
const (
	// BreakerClosed: attempts flow normally.
	BreakerClosed = 0
	// BreakerHalfOpen: a previously quarantined week is being retried.
	BreakerHalfOpen = 1
	// BreakerOpen: at least one week is quarantined.
	BreakerOpen = 2
)

// Metrics is the supervisor's observability bundle. A nil *Metrics
// disables instrumentation; every field is nil-safe through the obs
// package's contracts.
type Metrics struct {
	// Retries counts retried attempts (attempt ≥ 2 starts).
	Retries *obs.Counter
	// Quarantined tracks the current number of quarantined weeks.
	Quarantined *obs.Gauge
	// StageNanos is the wall-time distribution of individual stage
	// executions (capture, analyze, snapshot alike).
	StageNanos *obs.Histogram
	// Breaker reports the campaign-wide breaker state: closed while all
	// weeks flow, half-open while a quarantined week retries, open when
	// any week is quarantined.
	Breaker *obs.Gauge
	// WeeksDone counts weeks that reached done this run; WeeksResumed
	// counts the subset that were verified complete with no work.
	WeeksDone    *obs.Counter
	WeeksResumed *obs.Counter
	// WatchdogFires counts stage attempts cut short by the per-stage
	// watchdog deadline.
	WatchdogFires *obs.Counter
	// StorageFull counts storage-full waits: attempts deferred by the
	// ENOSPC degraded mode (capped backoff outside the retry budget)
	// instead of failing toward quarantine.
	StorageFull *obs.Counter
}

// NewMetrics builds the bundle against a registry; nil in, nil out.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Retries:       r.Counter("supervise_retries_total"),
		Quarantined:   r.Gauge("supervise_quarantined_weeks"),
		StageNanos:    r.Histogram("supervise_stage_ns"),
		Breaker:       r.Gauge("supervise_breaker_state"),
		WeeksDone:     r.Counter("supervise_weeks_done_total"),
		WeeksResumed:  r.Counter("supervise_weeks_resumed_total"),
		WatchdogFires: r.Counter("supervise_watchdog_fires_total"),
		StorageFull:   r.Counter("supervise_storage_full_total"),
	}
}

// nil-safe accessors used by the supervisor.

func (m *Metrics) retries() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Retries
}

func (m *Metrics) quarantined() *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.Quarantined
}

func (m *Metrics) stageNanos() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.StageNanos
}

func (m *Metrics) breaker() *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.Breaker
}

func (m *Metrics) weeksDone() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.WeeksDone
}

func (m *Metrics) weeksResumed() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.WeeksResumed
}

func (m *Metrics) watchdogFires() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.WatchdogFires
}

func (m *Metrics) storageFull() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.StorageFull
}
