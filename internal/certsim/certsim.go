// Package certsim models the X.509 certificate landscape of the
// synthetic world and the active HTTPS crawler of Section 2.2.2: every
// candidate port-443 IP is crawled several times for its certificate
// chain, and a certificate is accepted only if it passes the paper's six
// checks — (a) valid subject, (b) valid alternative names and ccSLDs,
// (c) server key usage, (d) a chain that links correctly up to a
// whitelisted root, (e) validity time covering the crawl, and (f)
// stability across repeated crawls.
package certsim

import (
	"fmt"
	"strings"

	"ixplens/internal/dnssim"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/randutil"
)

// KeyUsage is the certificate's extended key usage.
type KeyUsage uint8

// Key usages.
const (
	UsageServerAuth KeyUsage = iota
	UsageClientAuth
	UsageCodeSigning
)

// Certificate is a simplified X.509 certificate. Validity is expressed
// in ISO week numbers, the world's time unit.
type Certificate struct {
	Subject   string
	AltNames  []string
	KeyUsage  KeyUsage
	Issuer    string
	NotBefore int
	NotAfter  int
}

// Chain is a certificate chain as delivered by a server: leaf first.
type Chain []Certificate

// CrawlResult is the outcome of crawling one IP several times.
type CrawlResult struct {
	// Responded is false when nothing answered on TCP 443.
	Responded bool
	// Chains holds one chain per successful crawl attempt.
	Chains []Chain
}

// Info is the meta-data extracted from a validated certificate
// (Section 2.4): the names the IP may serve.
type Info struct {
	Subject  string
	AltNames []string
}

// Names returns subject plus alternative names.
func (i *Info) Names() []string {
	out := make([]string, 0, 1+len(i.AltNames))
	out = append(out, i.Subject)
	out = append(out, i.AltNames...)
	return out
}

// Crawler performs simulated certificate crawls against the world.
type Crawler struct {
	w   *netmodel.World
	dns *dnssim.DB
	// roots is the trusted root store ("the current Linux/Ubuntu
	// white-list" in the paper).
	roots map[string]bool
	// attempts is how many times each IP is crawled (the paper crawls
	// repeatedly to check stability).
	attempts int
	fakeByIP map[packet.IPv4Addr]int
}

// rootCAs is the synthetic trust store.
var rootCAs = []string{"root-ca-alpha", "root-ca-beta", "root-ca-gamma"}

// NewCrawler builds a crawler over the world.
func NewCrawler(w *netmodel.World, dns *dnssim.DB) *Crawler {
	roots := make(map[string]bool, len(rootCAs))
	for _, r := range rootCAs {
		roots[r] = true
	}
	fakeByIP := make(map[packet.IPv4Addr]int, len(w.Fake443))
	for i := range w.Fake443 {
		fakeByIP[w.Fake443[i].IP] = i
	}
	return &Crawler{w: w, dns: dns, roots: roots, attempts: 3, fakeByIP: fakeByIP}
}

// Crawl fetches the certificate chain of ip repeatedly during isoWeek.
func (c *Crawler) Crawl(ip packet.IPv4Addr, isoWeek int) CrawlResult {
	if idx, ok := c.w.ServerByIP(ip); ok {
		s := &c.w.Servers[idx]
		if !s.Is(netmodel.SrvHTTPS) {
			// HTTP-only server: 443 is closed.
			return CrawlResult{}
		}
		if !c.w.ServerActiveInWeek(idx, isoWeek) {
			return CrawlResult{}
		}
		chain := c.serverChain(idx, isoWeek)
		out := CrawlResult{Responded: true}
		for a := 0; a < c.attempts; a++ {
			out.Chains = append(out.Chains, chain)
		}
		return out
	}
	if i, ok := c.fakeByIP[ip]; ok {
		return c.fakeResult(i, &c.w.Fake443[i], isoWeek)
	}
	return CrawlResult{}
}

// serverChain builds the (valid) chain of a genuine HTTPS server: the
// leaf names the org's sites, the issuer chain ends in a trusted root.
func (c *Crawler) serverChain(serverIdx int32, isoWeek int) Chain {
	s := &c.w.Servers[serverIdx]
	o := &c.w.Orgs[s.Org]
	sites := c.dns.SitesOfOrg(s.Org)
	subject := o.Domain
	var alts []string
	if len(sites) > 0 {
		subject = c.dns.Site(sites[0]).Domain
		// Hosting companies put many customer domains on one IP; CDNs
		// serve multiple domains off shared certificates.
		nAlt := 1
		switch o.Kind {
		case netmodel.OrgHoster:
			nAlt = minInt(8, len(sites))
		case netmodel.OrgCDNDeploy, netmodel.OrgCDNCentral:
			nAlt = minInt(4, len(sites))
		}
		// Deterministic per-server rotation through the org's sites.
		base := int(randutil.Hash64(uint64(c.w.Cfg.Seed), uint64(serverIdx), 0xce) % uint64(len(sites)))
		for k := 0; k < nAlt; k++ {
			alts = append(alts, c.dns.Site(sites[(base+k)%len(sites)]).Domain)
		}
	}
	rootIdx := int(randutil.Hash64(uint64(s.Org), 0xca) % uint64(len(rootCAs)))
	root := rootCAs[rootIdx]
	intermediate := fmt.Sprintf("intermediate-%d", rootIdx)
	return Chain{
		{Subject: subject, AltNames: alts, KeyUsage: UsageServerAuth,
			Issuer: intermediate, NotBefore: isoWeek - 30, NotAfter: isoWeek + 60},
		{Subject: intermediate, KeyUsage: UsageServerAuth,
			Issuer: root, NotBefore: isoWeek - 200, NotAfter: isoWeek + 300},
		{Subject: root, KeyUsage: UsageServerAuth,
			Issuer: root, NotBefore: isoWeek - 500, NotAfter: isoWeek + 500},
	}
}

// fakeResult produces a failing crawl according to the endpoint's
// behaviour.
func (c *Crawler) fakeResult(i int, f *netmodel.Fake443Endpoint, isoWeek int) CrawlResult {
	mk := func(mutate func(*Chain)) CrawlResult {
		leafName := fmt.Sprintf("host%d.fake-endpoint.net", i)
		rootIdx := i % len(rootCAs)
		chain := Chain{
			{Subject: leafName, KeyUsage: UsageServerAuth,
				Issuer:    fmt.Sprintf("intermediate-%d", rootIdx),
				NotBefore: isoWeek - 10, NotAfter: isoWeek + 10},
			{Subject: fmt.Sprintf("intermediate-%d", rootIdx), KeyUsage: UsageServerAuth,
				Issuer: rootCAs[rootIdx], NotBefore: isoWeek - 100, NotAfter: isoWeek + 100},
			{Subject: rootCAs[rootIdx], KeyUsage: UsageServerAuth,
				Issuer: rootCAs[rootIdx], NotBefore: isoWeek - 100, NotAfter: isoWeek + 100},
		}
		mutate(&chain)
		out := CrawlResult{Responded: true}
		for a := 0; a < c.attempts; a++ {
			out.Chains = append(out.Chains, chain)
		}
		return out
	}
	switch f.Behaviour {
	case netmodel.Fake443NoResponse:
		return CrawlResult{}
	case netmodel.Fake443NotTLS:
		// An SSH banner is "responding" but yields no parseable chain.
		return CrawlResult{Responded: true}
	case netmodel.Fake443BadChain:
		return mk(func(ch *Chain) {
			(*ch)[0].Issuer = "self-signed"
			*ch = (*ch)[:1]
		})
	case netmodel.Fake443Expired:
		return mk(func(ch *Chain) { (*ch)[0].NotAfter = isoWeek - 1 })
	case netmodel.Fake443Unstable:
		// Each crawl sees a different certificate (cloud IP churn).
		out := CrawlResult{Responded: true}
		for a := 0; a < c.attempts; a++ {
			r := mk(func(ch *Chain) {
				(*ch)[0].Subject = fmt.Sprintf("tenant-%d-%d.cloudtenants.net", i, a)
			})
			out.Chains = append(out.Chains, r.Chains[0])
		}
		return out
	case netmodel.Fake443BadName:
		return mk(func(ch *Chain) { (*ch)[0].Subject = "*.internal invalid_name" })
	case netmodel.Fake443WrongKeyUsage:
		return mk(func(ch *Chain) { (*ch)[0].KeyUsage = UsageClientAuth })
	}
	return CrawlResult{}
}

// RejectReason says which of the paper's six validation checks a crawl
// result failed, for the per-reason rejection accounting of the
// observability layer. RejectNone means the result validated.
type RejectReason uint8

// Rejection reasons, in the order the checks run.
const (
	RejectNone RejectReason = iota
	// RejectNoResponse: nothing answered on TCP 443.
	RejectNoResponse
	// RejectNoChain: the endpoint responded but delivered no parseable
	// chain (an SSH banner, a plain-HTTP answer).
	RejectNoChain
	// RejectUnstable: repeated crawls disagreed — check (f).
	RejectUnstable
	// RejectEmptyChain: a crawl attempt carried a zero-length chain.
	RejectEmptyChain
	// RejectBadSubject: the leaf subject is not a valid domain — check (a).
	RejectBadSubject
	// RejectBadAltName: an alternative name is invalid — check (b).
	RejectBadAltName
	// RejectKeyUsage: the leaf key usage is not serverAuth — check (c).
	RejectKeyUsage
	// RejectBrokenChain: issuer/subject references do not link — check (d).
	RejectBrokenChain
	// RejectUntrustedRoot: the chain's root is not whitelisted — check (d).
	RejectUntrustedRoot
	// RejectExpired: a validity window misses the crawl week — check (e).
	RejectExpired
	// RejectCrawler: an opaque crawler-side rejection — used when a
	// CertCrawler without an inspectable trust store validated through
	// its own CrawlAndValidate and said no.
	RejectCrawler
	// NumRejectReasons sizes per-reason counter arrays.
	NumRejectReasons
)

// String names the reason, usable as a metric label.
func (r RejectReason) String() string {
	switch r {
	case RejectNone:
		return "none"
	case RejectNoResponse:
		return "no-response"
	case RejectNoChain:
		return "no-chain"
	case RejectUnstable:
		return "unstable"
	case RejectEmptyChain:
		return "empty-chain"
	case RejectBadSubject:
		return "bad-subject"
	case RejectBadAltName:
		return "bad-alt-name"
	case RejectKeyUsage:
		return "key-usage"
	case RejectBrokenChain:
		return "broken-chain"
	case RejectUntrustedRoot:
		return "untrusted-root"
	case RejectExpired:
		return "expired"
	case RejectCrawler:
		return "crawler-rejected"
	default:
		return fmt.Sprintf("RejectReason(%d)", uint8(r))
	}
}

// Validate applies the paper's six certificate checks to a crawl result
// and extracts the certificate meta-data on success.
func Validate(res CrawlResult, roots map[string]bool, isoWeek int) (Info, bool) {
	info, reason := ValidateDetail(res, roots, isoWeek)
	return info, reason == RejectNone
}

// ValidateDetail is Validate reporting which check rejected the result.
func ValidateDetail(res CrawlResult, roots map[string]bool, isoWeek int) (Info, RejectReason) {
	if !res.Responded {
		return Info{}, RejectNoResponse
	}
	if len(res.Chains) == 0 {
		return Info{}, RejectNoChain
	}
	// (f) stability: all crawls must agree (ignoring validity time).
	first := res.Chains[0]
	for _, ch := range res.Chains[1:] {
		if !sameIdentity(first, ch) {
			return Info{}, RejectUnstable
		}
	}
	if len(first) == 0 {
		return Info{}, RejectEmptyChain
	}
	leaf := first[0]
	// (a) subject must be a valid domain name.
	if !validDomain(leaf.Subject) {
		return Info{}, RejectBadSubject
	}
	// (b) alternative names must be valid, including their ccSLDs.
	for _, an := range leaf.AltNames {
		if !validDomain(an) {
			return Info{}, RejectBadAltName
		}
	}
	// (c) key usage must indicate a server role.
	if leaf.KeyUsage != UsageServerAuth {
		return Info{}, RejectKeyUsage
	}
	// (d) chain must refer to each other in order up to a trusted root.
	for i := 0; i < len(first)-1; i++ {
		if first[i].Issuer != first[i+1].Subject {
			return Info{}, RejectBrokenChain
		}
	}
	rootCert := first[len(first)-1]
	if rootCert.Issuer != rootCert.Subject || !roots[rootCert.Subject] {
		return Info{}, RejectUntrustedRoot
	}
	// (e) validity time must cover the crawl for every chain element.
	for _, cert := range first {
		if isoWeek < cert.NotBefore || isoWeek > cert.NotAfter {
			return Info{}, RejectExpired
		}
	}
	return Info{Subject: leaf.Subject, AltNames: leaf.AltNames}, RejectNone
}

// Roots exposes the crawler's trust store for Validate.
func (c *Crawler) Roots() map[string]bool { return c.roots }

// CrawlAndValidate is the common composition: crawl, then validate.
func (c *Crawler) CrawlAndValidate(ip packet.IPv4Addr, isoWeek int) (Info, bool) {
	return Validate(c.Crawl(ip, isoWeek), c.roots, isoWeek)
}

// sameIdentity compares two chains ignoring validity windows.
func sameIdentity(a, b Chain) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Subject != b[i].Subject || a[i].Issuer != b[i].Issuer ||
			a[i].KeyUsage != b[i].KeyUsage || len(a[i].AltNames) != len(b[i].AltNames) {
			return false
		}
		for k := range a[i].AltNames {
			if a[i].AltNames[k] != b[i].AltNames[k] {
				return false
			}
		}
	}
	return true
}

// validDomain applies the paper's domain/ccSLD sanity rules to a name.
func validDomain(name string) bool {
	if name == "" || len(name) > 253 {
		return false
	}
	name = strings.TrimPrefix(name, "*.")
	if strings.ContainsAny(name, " _/\\") {
		return false
	}
	labels := strings.Split(name, ".")
	if len(labels) < 2 {
		return false
	}
	for _, l := range labels {
		if l == "" || len(l) > 63 {
			return false
		}
	}
	tld := labels[len(labels)-1]
	if len(tld) < 2 {
		return false
	}
	return true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
