package certsim

import (
	"testing"

	"ixplens/internal/dnssim"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
)

func testCrawler(t testing.TB) (*netmodel.World, *Crawler) {
	t.Helper()
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return w, NewCrawler(w, dnssim.New(w))
}

func findServer(w *netmodel.World, pred func(*netmodel.Server) bool) int32 {
	for i := range w.Servers {
		if pred(&w.Servers[i]) {
			return int32(i)
		}
	}
	return -1
}

func TestCrawlValidHTTPSServer(t *testing.T) {
	w, c := testCrawler(t)
	idx := findServer(w, func(s *netmodel.Server) bool {
		return s.Is(netmodel.SrvHTTPS) && s.Activity == netmodel.ActStable
	})
	if idx < 0 {
		t.Fatal("no stable HTTPS server in world")
	}
	info, ok := c.CrawlAndValidate(w.Servers[idx].IP, 45)
	if !ok {
		t.Fatal("valid HTTPS server failed validation")
	}
	if info.Subject == "" {
		t.Fatal("empty certificate subject")
	}
	if len(info.Names()) < 1 {
		t.Fatal("no names extracted")
	}
}

func TestCrawlHTTPOnlyServerClosed(t *testing.T) {
	w, c := testCrawler(t)
	idx := findServer(w, func(s *netmodel.Server) bool { return !s.Is(netmodel.SrvHTTPS) })
	if idx < 0 {
		t.Fatal("no HTTP-only server")
	}
	if res := c.Crawl(w.Servers[idx].IP, 45); res.Responded {
		t.Fatal("HTTP-only server must not answer on 443")
	}
}

func TestCrawlInactiveServerSilent(t *testing.T) {
	w, c := testCrawler(t)
	idx := findServer(w, func(s *netmodel.Server) bool {
		return s.Is(netmodel.SrvHTTPS) && s.Activity == netmodel.ActFresh && s.FirstWeek > 40
	})
	if idx < 0 {
		t.Skip("no late fresh HTTPS server")
	}
	if res := c.Crawl(w.Servers[idx].IP, 36); res.Responded {
		t.Fatal("not-yet-active server must not respond")
	}
}

func TestCrawlUnknownIP(t *testing.T) {
	_, c := testCrawler(t)
	if res := c.Crawl(packet.MakeIPv4(203, 0, 113, 200), 45); res.Responded {
		t.Fatal("unknown IP must not respond")
	}
}

func TestFakeEndpointsAllRejected(t *testing.T) {
	w, c := testCrawler(t)
	counts := map[netmodel.Fake443Behaviour]int{}
	for _, f := range w.Fake443 {
		if _, ok := c.CrawlAndValidate(f.IP, 45); ok {
			t.Fatalf("fake endpoint %v (behaviour %d) validated", f.IP, f.Behaviour)
		}
		counts[f.Behaviour]++
	}
	if len(counts) < 4 {
		t.Fatalf("behaviour coverage too thin: %v", counts)
	}
}

func TestFakeRespondRatio(t *testing.T) {
	w, c := testCrawler(t)
	responded := 0
	for _, f := range w.Fake443 {
		if res := c.Crawl(f.IP, 45); res.Responded {
			responded++
		}
	}
	if responded == 0 || responded == len(w.Fake443) {
		t.Fatalf("fake endpoints respond ratio degenerate: %d of %d", responded, len(w.Fake443))
	}
}

func validTestChain(week int) Chain {
	return Chain{
		{Subject: "example.org", AltNames: []string{"www.example.org"}, KeyUsage: UsageServerAuth,
			Issuer: "intermediate-0", NotBefore: week - 1, NotAfter: week + 1},
		{Subject: "intermediate-0", KeyUsage: UsageServerAuth,
			Issuer: "root-ca-alpha", NotBefore: week - 10, NotAfter: week + 10},
		{Subject: "root-ca-alpha", KeyUsage: UsageServerAuth,
			Issuer: "root-ca-alpha", NotBefore: week - 10, NotAfter: week + 10},
	}
}

func roots() map[string]bool {
	return map[string]bool{"root-ca-alpha": true}
}

func resultOf(chains ...Chain) CrawlResult {
	return CrawlResult{Responded: true, Chains: chains}
}

func TestValidateChecks(t *testing.T) {
	week := 45
	good := validTestChain(week)
	if _, ok := Validate(resultOf(good, good, good), roots(), week); !ok {
		t.Fatal("good chain rejected")
	}

	mutations := map[string]func(Chain) Chain{
		"bad subject": func(ch Chain) Chain {
			ch[0].Subject = "not a domain"
			return ch
		},
		"bad altname": func(ch Chain) Chain {
			ch[0].AltNames = []string{"x"}
			return ch
		},
		"wrong key usage": func(ch Chain) Chain {
			ch[0].KeyUsage = UsageCodeSigning
			return ch
		},
		"broken chain order": func(ch Chain) Chain {
			ch[0].Issuer = "something-else"
			return ch
		},
		"untrusted root": func(ch Chain) Chain {
			ch[1].Issuer = "evil-root"
			ch[2].Subject = "evil-root"
			ch[2].Issuer = "evil-root"
			return ch
		},
		"expired": func(ch Chain) Chain {
			ch[0].NotAfter = week - 1
			return ch
		},
		"not yet valid": func(ch Chain) Chain {
			ch[0].NotBefore = week + 1
			return ch
		},
	}
	for name, mutate := range mutations {
		ch := mutate(validTestChain(week))
		if _, ok := Validate(resultOf(ch, ch, ch), roots(), week); ok {
			t.Errorf("%s: chain should be rejected", name)
		}
	}
}

func TestValidateStability(t *testing.T) {
	week := 45
	a := validTestChain(week)
	b := validTestChain(week)
	b[0].Subject = "other.org"
	if _, ok := Validate(resultOf(a, b, a), roots(), week); ok {
		t.Fatal("unstable identity must be rejected")
	}
	// Differing validity times alone must NOT trip the stability check.
	c := validTestChain(week)
	c[0].NotAfter = week + 5
	if _, ok := Validate(resultOf(a, c), roots(), week); !ok {
		t.Fatal("validity-only differences should pass stability")
	}
}

func TestValidateEmptyResults(t *testing.T) {
	if _, ok := Validate(CrawlResult{}, roots(), 45); ok {
		t.Fatal("no response must fail")
	}
	if _, ok := Validate(CrawlResult{Responded: true}, roots(), 45); ok {
		t.Fatal("response without chains must fail")
	}
	if _, ok := Validate(resultOf(Chain{}), roots(), 45); ok {
		t.Fatal("empty chain must fail")
	}
}

func TestValidDomain(t *testing.T) {
	valid := []string{"example.org", "a.b.example.co.uk", "*.example.net", "x1.de"}
	invalid := []string{"", "nolabel", "has space.org", "under_score.org", "trailing..org", "x.y/z.org"}
	for _, d := range valid {
		if !validDomain(d) {
			t.Errorf("validDomain(%q) = false, want true", d)
		}
	}
	for _, d := range invalid {
		if validDomain(d) {
			t.Errorf("validDomain(%q) = true, want false", d)
		}
	}
}

func TestHosterCertsCarryManyAltNames(t *testing.T) {
	w, c := testCrawler(t)
	idx := findServer(w, func(s *netmodel.Server) bool {
		return s.Is(netmodel.SrvHTTPS) && w.Orgs[s.Org].Kind == netmodel.OrgHoster &&
			s.Activity == netmodel.ActStable
	})
	if idx < 0 {
		t.Skip("no stable hoster HTTPS server")
	}
	info, ok := c.CrawlAndValidate(w.Servers[idx].IP, 45)
	if !ok {
		t.Fatal("hoster server failed validation")
	}
	if len(info.AltNames) < 2 {
		t.Fatalf("hoster cert has only %d alt names", len(info.AltNames))
	}
}

func BenchmarkCrawlAndValidate(b *testing.B) {
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		b.Fatal(err)
	}
	c := NewCrawler(w, dnssim.New(w))
	var ips []packet.IPv4Addr
	for i := range w.Servers {
		if w.Servers[i].Is(netmodel.SrvHTTPS) {
			ips = append(ips, w.Servers[i].IP)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.CrawlAndValidate(ips[i%len(ips)], 45)
	}
}

// TestValidateDetailReasons pins every rejection to its specific reason
// so the per-reason metric counters stay truthful.
func TestValidateDetailReasons(t *testing.T) {
	week := 45
	good := validTestChain(week)
	if _, reason := ValidateDetail(resultOf(good, good), roots(), week); reason != RejectNone {
		t.Fatalf("good chain rejected: %v", reason)
	}

	unstable := validTestChain(week)
	unstable[0].Subject = "other.org"

	cases := []struct {
		name string
		res  CrawlResult
		want RejectReason
	}{
		{"no response", CrawlResult{}, RejectNoResponse},
		{"no chain", CrawlResult{Responded: true}, RejectNoChain},
		{"unstable", resultOf(good, unstable), RejectUnstable},
		{"empty chain", resultOf(Chain{}), RejectEmptyChain},
		{"bad subject", resultOf(mutated(week, func(ch Chain) { ch[0].Subject = "not a domain" })), RejectBadSubject},
		{"bad altname", resultOf(mutated(week, func(ch Chain) { ch[0].AltNames = []string{"x"} })), RejectBadAltName},
		{"key usage", resultOf(mutated(week, func(ch Chain) { ch[0].KeyUsage = UsageCodeSigning })), RejectKeyUsage},
		{"broken chain", resultOf(mutated(week, func(ch Chain) { ch[0].Issuer = "something-else" })), RejectBrokenChain},
		{"untrusted root", resultOf(mutated(week, func(ch Chain) {
			ch[1].Issuer = "evil-root"
			ch[2].Subject = "evil-root"
			ch[2].Issuer = "evil-root"
		})), RejectUntrustedRoot},
		{"expired", resultOf(mutated(week, func(ch Chain) { ch[0].NotAfter = week - 1 })), RejectExpired},
	}
	for _, c := range cases {
		if _, reason := ValidateDetail(c.res, roots(), week); reason != c.want {
			t.Errorf("%s: reason = %v, want %v", c.name, reason, c.want)
		}
	}
}

func mutated(week int, f func(Chain)) Chain {
	ch := validTestChain(week)
	f(ch)
	return ch
}

func TestRejectReasonStrings(t *testing.T) {
	seen := map[string]bool{}
	for r := RejectNone; r < NumRejectReasons; r++ {
		s := r.String()
		if s == "" || seen[s] {
			t.Fatalf("reason %d has empty or duplicate label %q", r, s)
		}
		seen[s] = true
	}
	if RejectReason(200).String() == "" {
		t.Fatal("out-of-range reason unlabeled")
	}
}
