// Package entity is the per-Env interning layer shared by every
// analysis stage. The study's aggregations — visibility shares, churn
// pools, clustering footprints, heterogenization matrices — are all
// keyed by the same few entity kinds (IP, prefix, AS, country, region,
// organization), yet each layer used to key them independently with
// address- or string-keyed maps and to re-resolve every IP through the
// RIB trie and geo DB per layer and per week. A Table instead maps each
// IP to a dense uint32 ID exactly once, memoizing the resolved
// attributes (origin AS, matched prefix, country, region) alongside it,
// so downstream accumulators can be plain slices indexed by ID and the
// trie/geo lookups happen once per distinct address per Env, not once
// per (layer, week, sample).
//
// ID spaces: IP IDs, prefix IDs, AS indices and string IDs are each
// dense and allocated in first-interned order. They are process-local
// bookkeeping handles — results are always keyed back to addresses,
// ASNs and strings on the way out — so the assignment order never leaks
// into analysis output, which keeps concurrent interning (where IDs
// depend on goroutine timing) observationally deterministic.
//
// A Table is safe for concurrent use once constructed; the underlying
// routing.Table and geo.DB must already be built (both are read-only
// afterwards).
package entity

import (
	"sync"

	"ixplens/internal/geo"
	"ixplens/internal/obs"
	"ixplens/internal/packet"
	"ixplens/internal/routing"
)

// ID is a dense per-Table IP identifier. IDs start at 0 and are
// allocated in first-resolved order.
type ID uint32

// NoPrefix and NoAS are the reserved "resolution failed" slots of the
// prefix-ID and AS-index spaces; real IDs start at 1.
const (
	NoPrefix uint32 = 0
	NoAS     uint32 = 0
)

// Attrs are the memoized per-IP attributes, resolved once through the
// RIB and geo substrates when the IP is first interned.
type Attrs struct {
	// ASN is the origin AS announcing the IP's longest-match prefix, 0
	// if the RIB does not cover the address.
	ASN uint32
	// ASIdx is the dense index of ASN in the Table's AS space (NoAS when
	// ASN is 0). Slice-indexed AS accumulators use this.
	ASIdx uint32
	// PrefixID is the dense index of the matched prefix (NoPrefix when
	// unrouted).
	PrefixID uint32
	// Prefix is the longest-match RIB prefix itself (zero when unrouted).
	Prefix routing.Prefix
	// CountryID interns the geo DB's country code in the Table's
	// Countries interner; the empty string (ID of "") when uncovered.
	CountryID uint32
	// RegionID interns the paper's region bucket (DE/US/RU/CN/RoW) for
	// the country, in the same Countries interner.
	RegionID uint32
}

// Metrics is the interning observability bundle: how often Resolve was
// answered from the memo versus having to run the substrates. A nil
// *Metrics disables instrumentation.
type Metrics struct {
	Hits   *obs.Counter
	Misses *obs.Counter
	// IPs tracks the table size (distinct interned addresses).
	IPs *obs.Gauge
}

// NewMetrics resolves the entity metrics in r (nil registry yields nil).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Hits:   r.Counter("entity_intern_hits_total"),
		Misses: r.Counter("entity_intern_misses_total"),
		IPs:    r.Gauge("entity_table_ips"),
	}
}

// Table interns IPs to dense IDs with memoized attributes. The zero
// value is not usable; construct with NewTable.
type Table struct {
	rib *routing.Table
	gdb *geo.DB

	// Countries interns country and region codes; Names is a second,
	// independent interner for certificate authorities and organization
	// names, shared so every layer agrees on string IDs.
	Countries *Strings
	Names     *Strings

	mu       sync.RWMutex
	ids      map[packet.IPv4Addr]ID
	attrs    []Attrs
	ips      []packet.IPv4Addr
	prefixes []routing.Prefix // indexed by PrefixID; slot 0 reserved
	pfxIDs   map[routing.Prefix]uint32
	asns     []uint32 // indexed by ASIdx; slot 0 reserved
	asIdx    map[uint32]uint32

	m *Metrics
}

// NewTable builds an empty table over the given substrates. Either may
// be nil, in which case the corresponding attributes resolve to their
// zero ("unknown") values — useful for tests that only need identity
// interning.
func NewTable(rib *routing.Table, gdb *geo.DB) *Table {
	t := &Table{
		rib:       rib,
		gdb:       gdb,
		Countries: NewStrings(),
		Names:     NewStrings(),
		ids:       make(map[packet.IPv4Addr]ID, 1<<12),
		prefixes:  make([]routing.Prefix, 1),
		pfxIDs:    make(map[routing.Prefix]uint32),
		asns:      make([]uint32, 1),
		asIdx:     make(map[uint32]uint32),
	}
	// Country ID 0 is the empty (geo-uncovered) code by construction.
	t.Countries.Intern("")
	return t
}

// SetMetrics attaches an observability bundle (nil detaches). Not
// synchronized with concurrent Resolve calls; attach before sharing.
func (t *Table) SetMetrics(m *Metrics) {
	t.m = m
	if m != nil {
		m.IPs.Set(int64(t.Len()))
	}
}

// Resolve interns ip, resolving its attributes through the RIB and geo
// DB on first sight, and returns its dense ID.
func (t *Table) Resolve(ip packet.IPv4Addr) ID {
	id, _ := t.ResolveAttrs(ip)
	return id
}

// ResolveAttrs is Resolve plus the memoized attributes, fetched under
// the same lock acquisition.
func (t *Table) ResolveAttrs(ip packet.IPv4Addr) (ID, Attrs) {
	t.mu.RLock()
	id, ok := t.ids[ip]
	if ok {
		a := t.attrs[id]
		t.mu.RUnlock()
		if t.m != nil {
			t.m.Hits.Inc()
		}
		return id, a
	}
	t.mu.RUnlock()
	return t.intern(ip)
}

// intern is the slow path: resolve the substrates outside the write
// lock (both are read-only and safe concurrently), then insert under
// it, double-checking against a racing interner of the same address.
func (t *Table) intern(ip packet.IPv4Addr) (ID, Attrs) {
	var a Attrs
	if t.rib != nil {
		if route, ok := t.rib.Lookup(ip); ok {
			a.ASN = route.ASN
			a.Prefix = route.Prefix
		}
	}
	country := ""
	if t.gdb != nil {
		country = t.gdb.Lookup(ip)
	}
	a.CountryID = t.Countries.Intern(country)
	a.RegionID = t.Countries.Intern(geo.Region(country))

	t.mu.Lock()
	if id, ok := t.ids[ip]; ok {
		// Lost the race; the winner's attrs are identical by construction.
		a = t.attrs[id]
		t.mu.Unlock()
		if t.m != nil {
			t.m.Hits.Inc()
		}
		return id, a
	}
	if a.ASN != 0 {
		if idx, ok := t.asIdx[a.ASN]; ok {
			a.ASIdx = idx
		} else {
			a.ASIdx = uint32(len(t.asns))
			t.asIdx[a.ASN] = a.ASIdx
			t.asns = append(t.asns, a.ASN)
		}
		if pid, ok := t.pfxIDs[a.Prefix]; ok {
			a.PrefixID = pid
		} else {
			a.PrefixID = uint32(len(t.prefixes))
			t.pfxIDs[a.Prefix] = a.PrefixID
			t.prefixes = append(t.prefixes, a.Prefix)
		}
	}
	id := ID(len(t.attrs))
	t.ids[ip] = id
	t.attrs = append(t.attrs, a)
	t.ips = append(t.ips, ip)
	n := len(t.attrs)
	t.mu.Unlock()
	if t.m != nil {
		t.m.Misses.Inc()
		t.m.IPs.Set(int64(n))
	}
	return id, a
}

// Lookup returns the ID of an already-interned address without
// interning it.
func (t *Table) Lookup(ip packet.IPv4Addr) (ID, bool) {
	t.mu.RLock()
	id, ok := t.ids[ip]
	t.mu.RUnlock()
	return id, ok
}

// Attrs returns the memoized attributes of id.
func (t *Table) Attrs(id ID) Attrs {
	t.mu.RLock()
	a := t.attrs[id]
	t.mu.RUnlock()
	return a
}

// IP returns the address interned as id.
func (t *Table) IP(id ID) packet.IPv4Addr {
	t.mu.RLock()
	ip := t.ips[id]
	t.mu.RUnlock()
	return ip
}

// AttrsView returns a point-in-time view of the attribute memo, indexed
// by ID. The returned slice must not be modified; elements never change
// after interning, so reading it while other goroutines keep interning
// is safe (they may only grow a different backing array).
func (t *Table) AttrsView() []Attrs {
	t.mu.RLock()
	v := t.attrs[:len(t.attrs):len(t.attrs)]
	t.mu.RUnlock()
	return v
}

// Len is the number of distinct interned addresses.
func (t *Table) Len() int {
	t.mu.RLock()
	n := len(t.attrs)
	t.mu.RUnlock()
	return n
}

// NumAS is the size of the dense AS-index space including the reserved
// NoAS slot, i.e. valid ASIdx values are < NumAS().
func (t *Table) NumAS() int {
	t.mu.RLock()
	n := len(t.asns)
	t.mu.RUnlock()
	return n
}

// ASN returns the AS number behind a dense AS index (0 for NoAS).
func (t *Table) ASN(asIdx uint32) uint32 {
	t.mu.RLock()
	asn := t.asns[asIdx]
	t.mu.RUnlock()
	return asn
}

// NumPrefixes is the size of the dense prefix-ID space including the
// reserved NoPrefix slot.
func (t *Table) NumPrefixes() int {
	t.mu.RLock()
	n := len(t.prefixes)
	t.mu.RUnlock()
	return n
}

// Prefix returns the prefix behind a dense prefix ID (zero for
// NoPrefix).
func (t *Table) Prefix(pid uint32) routing.Prefix {
	t.mu.RLock()
	p := t.prefixes[pid]
	t.mu.RUnlock()
	return p
}
