package entity

import "sync"

// Strings interns strings to dense uint32 IDs in first-interned order.
// It backs the country/region codes of a Table and the certificate
// authority and organization names of the clustering and
// heterogenization layers, replacing string-keyed maps with
// slice-indexed accumulators. Safe for concurrent use.
type Strings struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	vals []string
}

// NewStrings returns an empty interner.
func NewStrings() *Strings {
	return &Strings{ids: make(map[string]uint32, 64)}
}

// Intern returns the dense ID of s, allocating one on first sight.
func (s *Strings) Intern(v string) uint32 {
	s.mu.RLock()
	id, ok := s.ids[v]
	s.mu.RUnlock()
	if ok {
		return id
	}
	s.mu.Lock()
	id, ok = s.ids[v]
	if !ok {
		id = uint32(len(s.vals))
		s.ids[v] = id
		s.vals = append(s.vals, v)
	}
	s.mu.Unlock()
	return id
}

// Lookup returns the ID of an already-interned string.
func (s *Strings) Lookup(v string) (uint32, bool) {
	s.mu.RLock()
	id, ok := s.ids[v]
	s.mu.RUnlock()
	return id, ok
}

// Value returns the string behind an ID.
func (s *Strings) Value(id uint32) string {
	s.mu.RLock()
	v := s.vals[id]
	s.mu.RUnlock()
	return v
}

// Len is the number of interned strings.
func (s *Strings) Len() int {
	s.mu.RLock()
	n := len(s.vals)
	s.mu.RUnlock()
	return n
}
