package entity

import (
	"sync"
	"testing"

	"ixplens/internal/geo"
	"ixplens/internal/obs"
	"ixplens/internal/packet"
	"ixplens/internal/routing"
)

func testSubstrates(t *testing.T) (*routing.Table, *geo.DB) {
	t.Helper()
	rib := routing.NewTable()
	rib.Insert(routing.MakePrefix(packet.MakeIPv4(10, 0, 0, 0), 8), 64500)
	rib.Insert(routing.MakePrefix(packet.MakeIPv4(10, 1, 0, 0), 16), 64501)
	gdb, err := geo.Build([]geo.Range{
		{First: packet.MakeIPv4(10, 0, 0, 0), Last: packet.MakeIPv4(10, 0, 255, 255), Country: "DE"},
		{First: packet.MakeIPv4(10, 1, 0, 0), Last: packet.MakeIPv4(10, 1, 255, 255), Country: "JP"},
	})
	if err != nil {
		t.Fatalf("geo.Build: %v", err)
	}
	return rib, gdb
}

func TestResolveMemoizesAttrs(t *testing.T) {
	rib, gdb := testSubstrates(t)
	tab := NewTable(rib, gdb)

	ip := packet.MakeIPv4(10, 1, 2, 3)
	id, a := tab.ResolveAttrs(ip)
	if a.ASN != 64501 {
		t.Fatalf("ASN = %d, want 64501", a.ASN)
	}
	if a.ASIdx == NoAS || tab.ASN(a.ASIdx) != 64501 {
		t.Fatalf("ASIdx %d does not round-trip to 64501", a.ASIdx)
	}
	if a.PrefixID == NoPrefix || tab.Prefix(a.PrefixID) != a.Prefix {
		t.Fatalf("PrefixID %d does not round-trip to %v", a.PrefixID, a.Prefix)
	}
	if !a.Prefix.Contains(ip) || a.Prefix.Len != 16 {
		t.Fatalf("prefix %v is not the /16 longest match for %v", a.Prefix, ip)
	}
	if got := tab.Countries.Value(a.CountryID); got != "JP" {
		t.Fatalf("country = %q, want JP", got)
	}
	if got := tab.Countries.Value(a.RegionID); got != geo.Region("JP") {
		t.Fatalf("region = %q, want %q", got, geo.Region("JP"))
	}

	id2, a2 := tab.ResolveAttrs(ip)
	if id2 != id || a2 != a {
		t.Fatalf("second resolve (%d, %+v) != first (%d, %+v)", id2, a2, id, a)
	}
	if tab.IP(id) != ip || tab.Attrs(id) != a {
		t.Fatal("IP/Attrs accessors disagree with ResolveAttrs")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
}

func TestResolveUnroutedAndUncovered(t *testing.T) {
	rib, gdb := testSubstrates(t)
	tab := NewTable(rib, gdb)

	_, a := tab.ResolveAttrs(packet.MakeIPv4(192, 168, 0, 1))
	if a.ASN != 0 || a.ASIdx != NoAS || a.PrefixID != NoPrefix {
		t.Fatalf("unrouted IP resolved to %+v", a)
	}
	if got := tab.Countries.Value(a.CountryID); got != "" {
		t.Fatalf("uncovered country = %q, want empty", got)
	}
	if got := tab.Countries.Value(a.RegionID); got != geo.Region("") {
		t.Fatalf("region = %q, want RoW bucket %q", got, geo.Region(""))
	}
}

func TestDenseSpacesShareIndices(t *testing.T) {
	rib, gdb := testSubstrates(t)
	tab := NewTable(rib, gdb)

	// Two addresses in the same /8 (but outside the /16) share AS and
	// prefix indices; the /16 address gets fresh ones.
	_, a1 := tab.ResolveAttrs(packet.MakeIPv4(10, 2, 0, 1))
	_, a2 := tab.ResolveAttrs(packet.MakeIPv4(10, 3, 0, 1))
	_, b := tab.ResolveAttrs(packet.MakeIPv4(10, 1, 0, 1))
	if a1.ASIdx != a2.ASIdx || a1.PrefixID != a2.PrefixID {
		t.Fatalf("same-prefix addresses got different indices: %+v vs %+v", a1, a2)
	}
	if b.ASIdx == a1.ASIdx || b.PrefixID == a1.PrefixID {
		t.Fatalf("distinct AS/prefix shared an index: %+v vs %+v", b, a1)
	}
	if tab.NumAS() != 3 { // reserved slot + 2 ASes
		t.Fatalf("NumAS = %d, want 3", tab.NumAS())
	}
	if tab.NumPrefixes() != 3 {
		t.Fatalf("NumPrefixes = %d, want 3", tab.NumPrefixes())
	}
}

func TestNilSubstrates(t *testing.T) {
	tab := NewTable(nil, nil)
	id, a := tab.ResolveAttrs(packet.MakeIPv4(1, 2, 3, 4))
	if id != 0 || a.ASN != 0 || a.PrefixID != NoPrefix {
		t.Fatalf("nil-substrate resolve = (%d, %+v)", id, a)
	}
}

func TestConcurrentResolveConsistent(t *testing.T) {
	rib, gdb := testSubstrates(t)
	tab := NewTable(rib, gdb)

	const goroutines = 8
	const addrs = 512
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < addrs; i++ {
				// Overlapping address sets across goroutines force interning
				// races on the same IPs.
				ip := packet.MakeIPv4(10, byte(i%4), byte(i/256), byte(i))
				id, a := tab.ResolveAttrs(ip)
				if tab.IP(id) != ip {
					t.Errorf("goroutine %d: IP(%d) = %v, want %v", g, id, tab.IP(id), ip)
					return
				}
				if a != tab.Attrs(id) {
					t.Errorf("goroutine %d: attrs mismatch for %v", g, ip)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	view := tab.AttrsView()
	for id := range view {
		ip := tab.IP(ID(id))
		wantID, ok := tab.Lookup(ip)
		if !ok || wantID != ID(id) {
			t.Fatalf("Lookup(%v) = (%d, %v), want (%d, true)", ip, wantID, ok, id)
		}
	}
}

func TestStringsIntern(t *testing.T) {
	s := NewStrings()
	a := s.Intern("alpha")
	b := s.Intern("beta")
	if a == b {
		t.Fatal("distinct strings shared an ID")
	}
	if s.Intern("alpha") != a {
		t.Fatal("re-intern changed the ID")
	}
	if s.Value(a) != "alpha" || s.Value(b) != "beta" {
		t.Fatal("Value does not round-trip")
	}
	if id, ok := s.Lookup("beta"); !ok || id != b {
		t.Fatalf("Lookup(beta) = (%d, %v)", id, ok)
	}
	if _, ok := s.Lookup("gamma"); ok {
		t.Fatal("Lookup of never-interned string succeeded")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestMetricsHitMiss(t *testing.T) {
	rib, gdb := testSubstrates(t)
	tab := NewTable(rib, gdb)
	reg := obs.NewRegistry()
	tab.SetMetrics(NewMetrics(reg))
	ip := packet.MakeIPv4(10, 0, 0, 1)
	tab.Resolve(ip)
	tab.Resolve(ip)
	tab.Resolve(packet.MakeIPv4(10, 0, 0, 2))
	c := reg.Counters()
	if c["entity_intern_misses_total"] != 2 {
		t.Fatalf("misses = %d, want 2", c["entity_intern_misses_total"])
	}
	if c["entity_intern_hits_total"] != 1 {
		t.Fatalf("hits = %d, want 1", c["entity_intern_hits_total"])
	}
	if NewMetrics(nil) != nil {
		t.Fatal("NewMetrics(nil) should disable instrumentation")
	}
}
