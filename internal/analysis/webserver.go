package analysis

import (
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/webserver"
)

// Webserver returns the server-identification analyzer: the sharded
// webserver.Identifier behind the registry interface. Its product is
// the full identification result, encoded exactly as IXPSNAP1 did.
func Webserver() Analyzer { return webserverAnalyzer{} }

type webserverAnalyzer struct{}

func (webserverAnalyzer) Name() string    { return NameWebserver }
func (webserverAnalyzer) Version() uint16 { return 1 }

func (webserverAnalyzer) NewState(actx *Context, workers int) State {
	ident := webserver.NewSharded(workers)
	ident.SetMetrics(actx.Ident)
	return &webserverState{ident: ident, crawler: actx.Crawler}
}

func (webserverAnalyzer) Decode(version uint16, payload []byte) (Product, error) {
	res, err := DecodeResult(version, payload)
	if err != nil {
		return nil, err
	}
	return &WebserverProduct{Res: res}, nil
}

type webserverState struct {
	ident   *webserver.Identifier
	crawler webserver.CertCrawler
}

func (s *webserverState) Observe(worker int, rec *dissect.Record, seq uint64) {
	s.ident.ObserveShard(worker, rec, seq)
}

func (s *webserverState) Finish(isoWeek int) (Product, error) {
	return &WebserverProduct{Res: s.ident.Identify(isoWeek, s.crawler)}, nil
}

// WebserverProduct wraps the identification result. EstLoss is not part
// of the per-record aggregation — the pipeline stamps it after Finish,
// before the product is encoded.
type WebserverProduct struct {
	Res *webserver.Result
}

// AppendEncode appends the deterministic result encoding.
func (p *WebserverProduct) AppendEncode(dst []byte) ([]byte, error) {
	return AppendResult(dst, p.Res)
}
