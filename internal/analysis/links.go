package analysis

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ixplens/internal/core/dissect"
	"ixplens/internal/core/hetero"
	"ixplens/internal/entity"
	"ixplens/internal/packet"
)

// Links returns the §5 link-attribution analyzer. It aggregates every
// peering record by its flow identity — (src IP, dst IP, ingress
// member, egress member) — which is exactly the information
// hetero.LinkStats consumes per record: the Fig. 7 attribution for ANY
// organization's server set can be replayed from this one generic
// product, eliminating the bespoke second pass over the capture.
func Links() Analyzer { return linksAnalyzer{} }

type linksAnalyzer struct{}

func (linksAnalyzer) Name() string    { return NameLinks }
func (linksAnalyzer) Version() uint16 { return 1 }

func (linksAnalyzer) NewState(_ *Context, workers int) State {
	shards := make([]map[FlowKey]*flowAgg, workers)
	for i := range shards {
		shards[i] = make(map[FlowKey]*flowAgg)
	}
	return &linksState{shards: shards}
}

func (linksAnalyzer) Decode(version uint16, payload []byte) (Product, error) {
	return DecodeLinks(version, payload)
}

// FlowKey identifies one directed peering flow across the fabric.
type FlowKey struct {
	Src, Dst packet.IPv4Addr
	In, Out  int32
}

// Flow is one aggregated peering flow.
type Flow struct {
	FlowKey
	// Bytes is the represented traffic volume (sum of sample bytes).
	Bytes uint64
	// Samples counts the sFlow samples aggregated into this flow.
	Samples uint64
}

type flowAgg struct {
	bytes   uint64
	samples uint64
}

type linksState struct {
	shards []map[FlowKey]*flowAgg
}

func (s *linksState) Observe(worker int, rec *dissect.Record, _ uint64) {
	if !rec.Class.IsPeering() {
		return
	}
	m := s.shards[worker]
	k := FlowKey{Src: rec.SrcIP, Dst: rec.DstIP, In: rec.InMember, Out: rec.OutMember}
	a := m[k]
	if a == nil {
		a = &flowAgg{}
		m[k] = a
	}
	a.bytes += rec.Bytes
	a.samples++
}

func (s *linksState) Finish(int) (Product, error) {
	merged := s.shards[0]
	for _, sh := range s.shards[1:] {
		for k, a := range sh {
			if m := merged[k]; m != nil {
				m.bytes += a.bytes
				m.samples += a.samples
			} else {
				merged[k] = a
			}
		}
	}
	flows := make([]Flow, 0, len(merged))
	for k, a := range merged {
		flows = append(flows, Flow{FlowKey: k, Bytes: a.bytes, Samples: a.samples})
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].FlowKey.less(&flows[j].FlowKey) })
	return &LinksProduct{Flows: flows}, nil
}

func (k *FlowKey) less(o *FlowKey) bool {
	if k.Src != o.Src {
		return k.Src < o.Src
	}
	if k.Dst != o.Dst {
		return k.Dst < o.Dst
	}
	if k.In != o.In {
		return k.In < o.In
	}
	return k.Out < o.Out
}

// LinksProduct is the persisted flow aggregation, sorted by
// (Src, Dst, In, Out).
type LinksProduct struct {
	Flows []Flow
}

// AppendEncode appends the section payload:
//
//	links := nFlows:u32 (src:u32 dst:u32 in:u32 out:u32 bytes:u64 samples:u64)*
func (p *LinksProduct) AppendEncode(dst []byte) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(p.Flows)))
	for i := range p.Flows {
		f := &p.Flows[i]
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.Src))
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.Dst))
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.In))
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.Out))
		dst = binary.BigEndian.AppendUint64(dst, f.Bytes)
		dst = binary.BigEndian.AppendUint64(dst, f.Samples)
	}
	return dst, nil
}

// DecodeLinks parses a links section payload.
func DecodeLinks(version uint16, payload []byte) (*LinksProduct, error) {
	if version != 1 {
		return nil, fmt.Errorf("%w: links v%d", ErrVersion, version)
	}
	cur := NewCursor(payload)
	n := int(cur.U32())
	if cur.Bad() || n > cur.Len() {
		return nil, fmt.Errorf("%w: truncated links header", ErrFormat)
	}
	out := &LinksProduct{Flows: make([]Flow, n)}
	for i := range out.Flows {
		f := &out.Flows[i]
		f.Src = packet.IPv4Addr(cur.U32())
		f.Dst = packet.IPv4Addr(cur.U32())
		f.In = int32(cur.U32())
		f.Out = int32(cur.U32())
		f.Bytes = cur.U64()
		f.Samples = cur.U64()
	}
	if cur.Bad() {
		return nil, fmt.Errorf("%w: truncated links entries", ErrFormat)
	}
	if cur.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, cur.Len())
	}
	return out, nil
}

// LinkStats replays the flows through hetero's per-flow attribution for
// one organization, reproducing the second-pass hetero.Attribute result
// exactly: every record of one flow key takes the same branch, so
// attributing the pre-summed flow is bit-identical to attributing each
// record.
func (p *LinksProduct) LinkStats(homeMember int32, table *entity.Table, isServer func(packet.IPv4Addr) bool) *hetero.LinkStats {
	ls := hetero.NewLinkStatsWith(homeMember, table)
	for i := range p.Flows {
		f := &p.Flows[i]
		ls.ObserveFlow(f.Src, f.Dst, f.In, f.Out, f.Bytes, isServer)
	}
	return ls
}

// MemberLink is one member-pair aggregate of the fabric's peering
// traffic.
type MemberLink struct {
	In, Out int32
	Bytes   uint64
	Samples uint64
}

// TopMemberLinks aggregates the flows by (ingress, egress) member pair
// and returns the k heaviest, bytes descending then (In, Out)
// ascending. k <= 0 returns all pairs.
func (p *LinksProduct) TopMemberLinks(k int) []MemberLink {
	type pair struct{ in, out int32 }
	byPair := make(map[pair]*MemberLink)
	for i := range p.Flows {
		f := &p.Flows[i]
		key := pair{f.In, f.Out}
		ml := byPair[key]
		if ml == nil {
			ml = &MemberLink{In: f.In, Out: f.Out}
			byPair[key] = ml
		}
		ml.Bytes += f.Bytes
		ml.Samples += f.Samples
	}
	out := make([]MemberLink, 0, len(byPair))
	for _, ml := range byPair {
		out = append(out, *ml)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].In != out[j].In {
			return out[i].In < out[j].In
		}
		return out[i].Out < out[j].Out
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}
