package analysis

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"ixplens/internal/certsim"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/hetero"
	"ixplens/internal/core/visibility"
	"ixplens/internal/core/webserver"
	"ixplens/internal/entity"
	"ixplens/internal/packet"
)

// syntheticRecords builds a deterministic mixed stream: peering TCP/UDP
// flows over a handful of endpoints and member ports, interleaved with
// cascade rejects the analyzers must ignore.
func syntheticRecords() []dissect.Record {
	var recs []dissect.Record
	state := uint64(42)
	next := func(n uint64) uint64 { // xorshift, deterministic
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state % n
	}
	ips := []packet.IPv4Addr{
		packet.MakeIPv4(10, 0, 0, 1), packet.MakeIPv4(10, 0, 0, 2),
		packet.MakeIPv4(10, 0, 0, 3), packet.MakeIPv4(172, 16, 0, 9),
		packet.MakeIPv4(192, 168, 7, 7),
	}
	for i := 0; i < 400; i++ {
		rec := dissect.Record{
			Class:     dissect.ClassPeeringTCP,
			SrcIP:     ips[next(uint64(len(ips)))],
			DstIP:     ips[next(uint64(len(ips)))],
			InMember:  int32(next(4)),
			OutMember: int32(next(4)) - 1, // includes -1 (non-member port)
			Bytes:     512 * (next(64) + 1),
		}
		switch i % 7 {
		case 3:
			rec.Class = dissect.ClassPeeringUDP
		case 5:
			rec.Class = dissect.ClassLocal // must be ignored
		case 6:
			rec.Class = dissect.ClassNonIPv4 // must be ignored
		}
		recs = append(recs, rec)
	}
	return recs
}

func testContext() *Context {
	return &Context{Entities: entity.NewTable(nil, nil)}
}

func TestSelect(t *testing.T) {
	for _, list := range []string{"", "all", " all "} {
		reg, err := Select(list)
		if err != nil {
			t.Fatalf("Select(%q): %v", list, err)
		}
		want := []string{NameLinks, NameVisibility, NameWebserver}
		if !reflect.DeepEqual(reg.Names(), want) {
			t.Fatalf("Select(%q) = %v, want %v", list, reg.Names(), want)
		}
	}
	// Narrowing always keeps the webserver analyzer: churn tracking and
	// the snapshot layer require its product.
	reg, err := Select("links")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{NameLinks, NameWebserver}; !reflect.DeepEqual(reg.Names(), want) {
		t.Fatalf("Select(links) = %v, want %v", reg.Names(), want)
	}
	reg, err = Select(" visibility , links ")
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 3 {
		t.Fatalf("Select(visibility,links) kept %d analyzers, want 3", reg.Len())
	}
	if _, err := Select("webserver,nosuch"); !errors.Is(err, ErrUnknownAnalyzer) {
		t.Fatalf("unknown analyzer error = %v, want ErrUnknownAnalyzer", err)
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	if _, err := NewRegistry(Links(), Webserver(), Links()); err == nil {
		t.Fatal("duplicate analyzer accepted")
	}
}

// TestFusedMatchesSerial pins partition independence: the same records
// scattered over 4 worker shards must finish into byte-identical
// products as a single-worker serial run.
func TestFusedMatchesSerial(t *testing.T) {
	reg, err := NewRegistry(Visibility(), Links())
	if err != nil {
		t.Fatal(err)
	}
	recs := syntheticRecords()

	serial := reg.NewRun(testContext(), 1)
	for i := range recs {
		serial.Observe(0, &recs[i], uint64(i))
	}
	want, err := serial.Finish(45)
	if err != nil {
		t.Fatal(err)
	}

	sharded := reg.NewRun(testContext(), 4)
	for i := range recs {
		sharded.Observe((i*7+3)%4, &recs[i], uint64(i))
	}
	got, err := sharded.Finish(45)
	if err != nil {
		t.Fatal(err)
	}

	for _, np := range want.All() {
		a, err := np.P.AppendEncode(nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.Get(np.Name).AppendEncode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: sharded product differs from serial", np.Name)
		}
	}
}

// TestProductRoundTrips pins every analyzer codec: encode → Decode →
// re-encode must reproduce the bytes, and a wrong section version must
// fail with ErrVersion.
func TestProductRoundTrips(t *testing.T) {
	reg, err := NewRegistry(Visibility(), Links())
	if err != nil {
		t.Fatal(err)
	}
	run := reg.NewRun(testContext(), 2)
	recs := syntheticRecords()
	for i := range recs {
		run.Observe(i%2, &recs[i], uint64(i))
	}
	prods, err := run.Finish(45)
	if err != nil {
		t.Fatal(err)
	}
	if prods.Visibility().ObservedIPs() == 0 || len(prods.Links().Flows) == 0 {
		t.Fatal("synthetic stream produced empty products")
	}
	for _, np := range prods.All() {
		a, ok := reg.Lookup(np.Name)
		if !ok {
			t.Fatalf("product %q has no analyzer", np.Name)
		}
		buf, err := np.P.AppendEncode(nil)
		if err != nil {
			t.Fatal(err)
		}
		back, err := a.Decode(np.Version, buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", np.Name, err)
		}
		buf2, err := back.AppendEncode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("%s: decode/re-encode drifted", np.Name)
		}
		if _, err := a.Decode(np.Version+9, buf); !errors.Is(err, ErrVersion) {
			t.Fatalf("%s: future version error = %v, want ErrVersion", np.Name, err)
		}
		if len(buf) > 0 {
			if _, err := a.Decode(np.Version, buf[:len(buf)-1]); !errors.Is(err, ErrFormat) {
				t.Fatalf("%s: truncated payload error = %v, want ErrFormat", np.Name, err)
			}
		}
	}
}

func TestWebserverProductRoundTrip(t *testing.T) {
	res := &webserver.Result{
		Week:          45,
		Servers:       map[packet.IPv4Addr]*webserver.Server{},
		Candidates443: 7, Responded443: 6, Valid443: 5,
		TotalIPs: 1234, ServerBytes: 1 << 40, EstLoss: 0.0321,
	}
	res.Servers[packet.MakeIPv4(10, 0, 0, 1)] = &webserver.Server{
		IP: packet.MakeIPv4(10, 0, 0, 1), HTTP: true, Bytes: 99,
		Ports: []uint16{80, 443}, Hosts: []string{"a.example"},
		AlsoClient: true, Member: 17,
	}
	res.Servers[packet.MakeIPv4(10, 0, 0, 2)] = &webserver.Server{
		IP: packet.MakeIPv4(10, 0, 0, 2), HTTPS: true, Member: -1,
		Cert: certsim.Info{Subject: "shop.example", AltNames: []string{"cdn.example"}},
	}
	p := &WebserverProduct{Res: res}
	buf, err := p.AppendEncode(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Webserver().Decode(1, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.(*WebserverProduct).Res, res) {
		t.Fatal("webserver product round trip diverged")
	}
	buf2, err := back.AppendEncode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("webserver re-encode drifted")
	}
}

// TestLinkStatsReplayEquivalence pins the property the fused pass leans
// on: replaying the aggregated flow product through ObserveFlow yields
// the same attribution as the legacy per-record second pass, for any
// server predicate.
func TestLinkStatsReplayEquivalence(t *testing.T) {
	recs := syntheticRecords()
	servers := map[packet.IPv4Addr]bool{
		packet.MakeIPv4(10, 0, 0, 1):   true,
		packet.MakeIPv4(172, 16, 0, 9): true,
	}
	isServer := func(ip packet.IPv4Addr) bool { return servers[ip] }
	const home = 2

	direct := hetero.NewLinkStats(home)
	for i := range recs {
		direct.Observe(&recs[i], isServer)
	}

	reg, err := NewRegistry(Links())
	if err != nil {
		t.Fatal(err)
	}
	run := reg.NewRun(testContext(), 3)
	for i := range recs {
		run.Observe(i%3, &recs[i], uint64(i))
	}
	prods, err := run.Finish(45)
	if err != nil {
		t.Fatal(err)
	}
	replayed := prods.Links().LinkStats(home, nil, isServer)

	if direct.TotalBytes != replayed.TotalBytes || direct.DirectBytes != replayed.DirectBytes {
		t.Fatalf("totals diverged: direct %d/%d, replayed %d/%d",
			direct.DirectBytes, direct.TotalBytes, replayed.DirectBytes, replayed.TotalBytes)
	}
	if !reflect.DeepEqual(direct.PerMember, replayed.PerMember) {
		t.Fatal("per-member attribution diverged")
	}
	if direct.NumDirectServers() != replayed.NumDirectServers() ||
		direct.ServersOnlyOffLink() != replayed.ServersOnlyOffLink() {
		t.Fatal("server partition diverged")
	}
	if !reflect.DeepEqual(direct.Points(), replayed.Points()) {
		t.Fatal("Fig. 7 points diverged")
	}
}

// TestVisibilityAggregatorRebuild pins that an aggregator rebuilt from
// the persisted product sees exactly what a live pass saw.
func TestVisibilityAggregatorRebuild(t *testing.T) {
	recs := syntheticRecords()
	table := entity.NewTable(nil, nil)
	live := visibility.NewAggregatorWith(table)
	for i := range recs {
		live.Observe(&recs[i])
	}

	reg, err := NewRegistry(Visibility())
	if err != nil {
		t.Fatal(err)
	}
	run := reg.NewRun(&Context{Entities: entity.NewTable(nil, nil)}, 2)
	for i := range recs {
		run.Observe(i%2, &recs[i], uint64(i))
	}
	prods, err := run.Finish(45)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := prods.Visibility().Aggregator(entity.NewTable(nil, nil))

	if !reflect.DeepEqual(live.PerIP(), rebuilt.PerIP()) {
		t.Fatal("rebuilt aggregator diverged from live pass")
	}
	if live.NumObservedIPs() != rebuilt.NumObservedIPs() {
		t.Fatal("observed IP counts diverged")
	}
	if got, want := prods.Visibility().TotalBytes(), sumBytes(live.PerIP()); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
}

func sumBytes(per []visibility.IPTraffic) uint64 {
	var sum uint64
	for i := range per {
		sum += per[i].Bytes
	}
	return sum
}
