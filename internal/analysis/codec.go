// Product codecs. The webserver result layout is the one IXPSNAP1
// shipped — moved here unchanged so both the legacy container and the
// multi-section IXPSNAP2 "webserver" section produce byte-identical
// result segments.
package analysis

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"ixplens/internal/core/webserver"
	"ixplens/internal/packet"
)

// Cursor is a bounds-checked big-endian reader over a payload; the
// first short read poisons it and every later take returns zero.
type Cursor struct {
	b   []byte
	bad bool
}

// NewCursor wraps a payload.
func NewCursor(b []byte) *Cursor { return &Cursor{b: b} }

// Bad reports whether any read ran past the payload.
func (c *Cursor) Bad() bool { return c.bad }

// Len is the number of unconsumed bytes.
func (c *Cursor) Len() int { return len(c.b) }

// Take consumes n bytes, nil (and poisoned) on underrun.
func (c *Cursor) Take(n int) []byte {
	if c.bad || n < 0 || len(c.b) < n {
		c.bad = true
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

// U8 reads one byte.
func (c *Cursor) U8() byte {
	b := c.Take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (c *Cursor) U16() uint16 {
	b := c.Take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (c *Cursor) U32() uint32 {
	b := c.Take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (c *Cursor) U64() uint64 {
	b := c.Take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Str reads a u16-length-prefixed string.
func (c *Cursor) Str() string {
	n := int(c.U16())
	b := c.Take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// AppendString appends a u16-length-prefixed string, truncating past
// 64 KiB.
func AppendString(b []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// Server flag bits of the result encoding.
const (
	flagHTTP = 1 << iota
	flagHTTPS
	flagAlsoClient
)

// AppendResult appends the deterministic identification-result encoding
// (servers sorted by IP, sets in their stored order):
//
//	result := week:u32 estLoss:f64bits funnel:u64×4 serverBytes:u64
//	          nServers:u32 server*
//	server := ip:u32 flags:u8 bytes:u64 member:u32 ports hosts cert
func AppendResult(b []byte, r *webserver.Result) ([]byte, error) {
	if r == nil {
		return b, fmt.Errorf("%w: nil result", ErrFormat)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(r.Week))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.EstLoss))
	for _, v := range []int{r.Candidates443, r.Responded443, r.Valid443, r.TotalIPs} {
		b = binary.BigEndian.AppendUint64(b, uint64(v))
	}
	b = binary.BigEndian.AppendUint64(b, r.ServerBytes)

	ips := make([]packet.IPv4Addr, 0, len(r.Servers))
	for ip := range r.Servers {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	b = binary.BigEndian.AppendUint32(b, uint32(len(ips)))
	for _, ip := range ips {
		s := r.Servers[ip]
		b = binary.BigEndian.AppendUint32(b, uint32(ip))
		var flags byte
		if s.HTTP {
			flags |= flagHTTP
		}
		if s.HTTPS {
			flags |= flagHTTPS
		}
		if s.AlsoClient {
			flags |= flagAlsoClient
		}
		b = append(b, flags)
		b = binary.BigEndian.AppendUint64(b, s.Bytes)
		b = binary.BigEndian.AppendUint32(b, uint32(s.Member))
		if len(s.Ports) > 255 {
			return b, fmt.Errorf("analysis: server %v has %d ports", ip, len(s.Ports))
		}
		b = append(b, byte(len(s.Ports)))
		for _, p := range s.Ports {
			b = binary.BigEndian.AppendUint16(b, p)
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(s.Hosts)))
		for _, h := range s.Hosts {
			b = AppendString(b, h)
		}
		b = AppendString(b, s.Cert.Subject)
		b = binary.BigEndian.AppendUint16(b, uint16(len(s.Cert.AltNames)))
		for _, a := range s.Cert.AltNames {
			b = AppendString(b, a)
		}
	}
	return b, nil
}

// ReadResult decodes one result from the cursor, leaving any trailing
// bytes unconsumed (the v1 container embeds the result mid-payload).
func ReadResult(cur *Cursor) (*webserver.Result, error) {
	r := &webserver.Result{Week: int(cur.U32())}
	r.EstLoss = math.Float64frombits(cur.U64())
	for _, dst := range []*int{&r.Candidates443, &r.Responded443, &r.Valid443, &r.TotalIPs} {
		*dst = int(cur.U64())
	}
	r.ServerBytes = cur.U64()

	nServers := int(cur.U32())
	if cur.Bad() || nServers > cur.Len() {
		// Each server occupies well over one payload byte, so a count
		// exceeding the remaining payload is structurally impossible.
		return nil, fmt.Errorf("%w: truncated result header", ErrFormat)
	}
	r.Servers = make(map[packet.IPv4Addr]*webserver.Server, nServers)
	for i := 0; i < nServers; i++ {
		s := &webserver.Server{IP: packet.IPv4Addr(cur.U32())}
		flags := cur.U8()
		s.HTTP = flags&flagHTTP != 0
		s.HTTPS = flags&flagHTTPS != 0
		s.AlsoClient = flags&flagAlsoClient != 0
		s.Bytes = cur.U64()
		s.Member = int32(cur.U32())
		if nPorts := int(cur.U8()); nPorts > 0 {
			s.Ports = make([]uint16, nPorts)
			for j := range s.Ports {
				s.Ports[j] = cur.U16()
			}
		}
		if nHosts := int(cur.U16()); nHosts > 0 {
			if nHosts > cur.Len() {
				return nil, fmt.Errorf("%w: truncated server record", ErrFormat)
			}
			s.Hosts = make([]string, nHosts)
			for j := range s.Hosts {
				s.Hosts[j] = cur.Str()
			}
		}
		s.Cert.Subject = cur.Str()
		if nAlt := int(cur.U16()); nAlt > 0 {
			if nAlt > cur.Len() {
				return nil, fmt.Errorf("%w: truncated cert record", ErrFormat)
			}
			s.Cert.AltNames = make([]string, nAlt)
			for j := range s.Cert.AltNames {
				s.Cert.AltNames[j] = cur.Str()
			}
		}
		if cur.Bad() {
			return nil, fmt.Errorf("%w: truncated server record", ErrFormat)
		}
		r.Servers[s.IP] = s
	}
	if cur.Bad() {
		return nil, fmt.Errorf("%w: truncated result", ErrFormat)
	}
	return r, nil
}

// DecodeResult parses a standalone result section payload.
func DecodeResult(version uint16, payload []byte) (*webserver.Result, error) {
	if version != 1 {
		return nil, fmt.Errorf("%w: webserver result v%d", ErrVersion, version)
	}
	cur := NewCursor(payload)
	res, err := ReadResult(cur)
	if err != nil {
		return nil, err
	}
	if cur.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, cur.Len())
	}
	return res, nil
}
