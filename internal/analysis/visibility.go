package analysis

import (
	"encoding/binary"
	"fmt"

	"ixplens/internal/core/dissect"
	"ixplens/internal/core/visibility"
	"ixplens/internal/entity"
	"ixplens/internal/packet"
)

// Visibility returns the §3 visibility analyzer: per-worker
// visibility.Aggregators sharing the run's entity table, merged by
// dense ID at Finish. The product is the per-IP byte accumulation —
// everything the Table 1–3 and Fig. 2–3 views derive from — encoded as
// an IP-sorted list so the same observations always yield the same
// bytes regardless of worker partitioning.
func Visibility() Analyzer { return visibilityAnalyzer{} }

type visibilityAnalyzer struct{}

func (visibilityAnalyzer) Name() string    { return NameVisibility }
func (visibilityAnalyzer) Version() uint16 { return 1 }

func (visibilityAnalyzer) NewState(actx *Context, workers int) State {
	shards := make([]*visibility.Aggregator, workers)
	for i := range shards {
		// Sharing one table across shards is safe (Resolve is
		// synchronized) and makes shard-local IDs directly comparable,
		// which is what the ID-level merge relies on.
		shards[i] = visibility.NewAggregatorWith(actx.Entities)
	}
	return &visibilityState{shards: shards}
}

func (visibilityAnalyzer) Decode(version uint16, payload []byte) (Product, error) {
	return DecodeVisibility(version, payload)
}

type visibilityState struct {
	shards []*visibility.Aggregator
}

func (s *visibilityState) Observe(worker int, rec *dissect.Record, _ uint64) {
	s.shards[worker].Observe(rec)
}

func (s *visibilityState) Finish(int) (Product, error) {
	merged := s.shards[0]
	for _, sh := range s.shards[1:] {
		merged.Merge(sh)
	}
	return &VisibilityProduct{PerIP: merged.PerIP()}, nil
}

// VisibilityProduct is the persisted per-IP traffic accumulation,
// sorted by IP. Zero-byte entries are kept: an observed IP counts in
// the Table 1 totals even when its sampled frames carried no payload
// bytes.
type VisibilityProduct struct {
	PerIP []visibility.IPTraffic
}

// AppendEncode appends the section payload:
//
//	visibility := nIPs:u32 (ip:u32 bytes:u64)*   — sorted by IP
func (p *VisibilityProduct) AppendEncode(dst []byte) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(p.PerIP)))
	for i := range p.PerIP {
		e := &p.PerIP[i]
		dst = binary.BigEndian.AppendUint32(dst, uint32(e.IP))
		dst = binary.BigEndian.AppendUint64(dst, e.Bytes)
	}
	return dst, nil
}

// DecodeVisibility parses a visibility section payload.
func DecodeVisibility(version uint16, payload []byte) (*VisibilityProduct, error) {
	if version != 1 {
		return nil, fmt.Errorf("%w: visibility v%d", ErrVersion, version)
	}
	cur := NewCursor(payload)
	n := int(cur.U32())
	if cur.Bad() || n > cur.Len() {
		return nil, fmt.Errorf("%w: truncated visibility header", ErrFormat)
	}
	out := &VisibilityProduct{PerIP: make([]visibility.IPTraffic, n)}
	for i := range out.PerIP {
		out.PerIP[i].IP = packet.IPv4Addr(cur.U32())
		out.PerIP[i].Bytes = cur.U64()
	}
	if cur.Bad() {
		return nil, fmt.Errorf("%w: truncated visibility entries", ErrFormat)
	}
	if cur.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, cur.Len())
	}
	return out, nil
}

// Aggregator rebuilds a visibility aggregator from the product, so
// every derived view (Summarize, TopCountries, LocalGlobal, ...) works
// off a reloaded snapshot exactly as off a live pass — those views are
// iteration-order-independent, which the package's equivalence tests
// pin.
func (p *VisibilityProduct) Aggregator(table *entity.Table) *visibility.Aggregator {
	a := visibility.NewAggregatorWith(table)
	for i := range p.PerIP {
		a.Add(p.PerIP[i].IP, p.PerIP[i].Bytes)
	}
	return a
}

// ObservedIPs is the number of distinct endpoint IPs in the product.
func (p *VisibilityProduct) ObservedIPs() int { return len(p.PerIP) }

// TotalBytes sums the per-IP accumulation (each record credits both
// endpoints, so this is roughly twice the wire volume).
func (p *VisibilityProduct) TotalBytes() uint64 {
	var sum uint64
	for i := range p.PerIP {
		sum += p.PerIP[i].Bytes
	}
	return sum
}
