// Package analysis defines the pluggable per-week analyzer registry:
// every result family the paper derives from one week of sFlow records
// — server identification (§4), global visibility (§3), link
// attribution inputs (§5) — plugs in as an Analyzer with a per-shard
// observer, a deterministic merge and a versioned product codec. The
// pipeline feeds every registered analyzer from ONE sharded decode
// pass, so adding an analysis perspective never adds a rescan of the
// capture; the snapshot layer persists each product as one named,
// versioned section of the week's container.
//
// The shape mirrors the sharded webserver accumulator: NewState builds
// per-worker state sized to the classifier pool, Observe runs on the
// worker that classified the record (no cross-worker synchronization),
// and Finish performs the deterministic merge — aggregates must be
// partition-independent, so the fused pass is bit-identical to a serial
// reference run regardless of how records land on workers.
package analysis

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ixplens/internal/core/dissect"
	"ixplens/internal/core/webserver"
	"ixplens/internal/entity"
)

// Builtin analyzer (and snapshot section) names.
const (
	NameWebserver  = "webserver"
	NameVisibility = "visibility"
	NameLinks      = "links"
)

// Sentinel errors, testable with errors.Is.
var (
	// ErrVersion marks a product payload whose section version this
	// build cannot decode — newer than the analyzer, or garbage.
	ErrVersion = errors.New("analysis: unsupported product version")
	// ErrFormat marks a product payload that does not decode.
	ErrFormat = errors.New("analysis: malformed product payload")
	// ErrUnknownAnalyzer marks a Select list naming no builtin.
	ErrUnknownAnalyzer = errors.New("analysis: unknown analyzer")
)

// Context carries the substrates analyzers share for one run. Entities
// is required (the visibility and links analyzers key their
// accumulators by interned entity IDs); Crawler and Ident are optional
// and only consumed by the webserver analyzer.
type Context struct {
	Entities *entity.Table
	Crawler  webserver.CertCrawler
	// Ident, when non-nil, instruments the webserver analyzer's shard
	// merge exactly like the pre-registry identifier did.
	Ident *webserver.Metrics
}

// Product is one analyzer's finished, persistable result. AppendEncode
// must be deterministic — same product, same bytes — because snapshot
// digests and the golden equivalence suite bind to the encoding.
type Product interface {
	AppendEncode(dst []byte) ([]byte, error)
}

// State is one run's accumulator for one analyzer. Observe is called
// concurrently from the classifier pool, with each worker index used by
// at most one goroutine at a time — state must be per-worker, like the
// webserver identifier's shards. seq is the record's global stream
// position (for last-writer-wins tie-breaks); it carries no ordering
// guarantee across workers.
type State interface {
	Observe(worker int, rec *dissect.Record, seq uint64)
	Finish(isoWeek int) (Product, error)
}

// Analyzer is one pluggable analysis perspective.
type Analyzer interface {
	// Name is the analyzer's registry key and snapshot section name.
	Name() string
	// Version is the product encoding version Decode understands.
	Version() uint16
	// NewState builds the per-run accumulator, sized to the worker pool.
	NewState(actx *Context, workers int) State
	// Decode parses a persisted product of the given section version.
	Decode(version uint16, payload []byte) (Product, error)
}

// Registry is an immutable, name-unique analyzer set.
type Registry struct {
	analyzers []Analyzer // sorted by name
}

// NewRegistry builds a registry, rejecting duplicate names.
func NewRegistry(analyzers ...Analyzer) (*Registry, error) {
	sorted := make([]Analyzer, len(analyzers))
	copy(sorted, analyzers)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name() < sorted[j].Name() })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Name() == sorted[i-1].Name() {
			return nil, fmt.Errorf("analysis: duplicate analyzer %q", sorted[i].Name())
		}
	}
	return &Registry{analyzers: sorted}, nil
}

var defaultRegistry = func() *Registry {
	r, err := NewRegistry(Webserver(), Visibility(), Links())
	if err != nil {
		panic(err)
	}
	return r
}()

// Default returns the registry of every builtin analyzer. The builtins
// are stateless, so the shared instance is safe for concurrent runs.
func Default() *Registry { return defaultRegistry }

// Select builds a registry from a comma-separated list of builtin
// analyzer names; "all" or an empty list selects every builtin. The
// webserver analyzer is always included — churn tracking, serving and
// the supervised pipeline's digest binding all require its product.
func Select(list string) (*Registry, error) {
	list = strings.TrimSpace(list)
	if list == "" || list == "all" {
		return Default(), nil
	}
	picked := map[string]Analyzer{NameWebserver: Webserver()}
	for _, name := range strings.Split(list, ",") {
		switch name = strings.TrimSpace(name); name {
		case NameWebserver:
		case NameVisibility:
			picked[name] = Visibility()
		case NameLinks:
			picked[name] = Links()
		default:
			return nil, fmt.Errorf("%w: %q (builtins: %s, %s, %s)",
				ErrUnknownAnalyzer, name, NameWebserver, NameVisibility, NameLinks)
		}
	}
	all := make([]Analyzer, 0, len(picked))
	for _, a := range picked {
		all = append(all, a)
	}
	return NewRegistry(all...)
}

// Names lists the registered analyzer names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, len(r.analyzers))
	for i, a := range r.analyzers {
		out[i] = a.Name()
	}
	return out
}

// Lookup finds an analyzer by name.
func (r *Registry) Lookup(name string) (Analyzer, bool) {
	for _, a := range r.analyzers {
		if a.Name() == name {
			return a, true
		}
	}
	return nil, false
}

// Len is the number of registered analyzers.
func (r *Registry) Len() int { return len(r.analyzers) }

// NewRun prepares one week's fused pass: a per-worker state for every
// registered analyzer. Run.Observe satisfies dissect.ShardObserver, so
// one ProcessSharded (or streamWeekSharded) pass fans each record to
// all analyzers.
func (r *Registry) NewRun(actx *Context, workers int) *Run {
	if workers < 1 {
		workers = 1
	}
	states := make([]State, len(r.analyzers))
	for i, a := range r.analyzers {
		states[i] = a.NewState(actx, workers)
	}
	return &Run{reg: r, states: states}
}

// Run is one in-flight fused analysis pass.
type Run struct {
	reg    *Registry
	states []State
}

// Observe fans one classified record to every analyzer's worker state.
// It matches dissect.ShardObserver.
func (r *Run) Observe(worker int, rec *dissect.Record, seq uint64) {
	for _, st := range r.states {
		st.Observe(worker, rec, seq)
	}
}

// Finish merges every analyzer's shards deterministically and returns
// the product set.
func (r *Run) Finish(isoWeek int) (*Products, error) {
	items := make([]NamedProduct, len(r.states))
	for i, st := range r.states {
		p, err := st.Finish(isoWeek)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", r.reg.analyzers[i].Name(), err)
		}
		items[i] = NamedProduct{
			Name:    r.reg.analyzers[i].Name(),
			Version: r.reg.analyzers[i].Version(),
			P:       p,
		}
	}
	return &Products{items: items}, nil
}

// NamedProduct pairs a finished product with its registry identity, so
// the snapshot layer can persist analyzers it has no typed field for.
type NamedProduct struct {
	Name    string
	Version uint16
	P       Product
}

// Products is one run's finished product set, name-sorted.
type Products struct {
	items []NamedProduct
}

// All returns the products in name order.
func (p *Products) All() []NamedProduct { return p.items }

// Get returns the named product, nil when absent.
func (p *Products) Get(name string) Product {
	for i := range p.items {
		if p.items[i].Name == name {
			return p.items[i].P
		}
	}
	return nil
}

// Webserver returns the identification result, nil when the webserver
// analyzer was not registered.
func (p *Products) Webserver() *webserver.Result {
	if wp, ok := p.Get(NameWebserver).(*WebserverProduct); ok {
		return wp.Res
	}
	return nil
}

// Visibility returns the per-IP visibility product, nil when absent.
func (p *Products) Visibility() *VisibilityProduct {
	vp, _ := p.Get(NameVisibility).(*VisibilityProduct)
	return vp
}

// Links returns the peering-flow product, nil when absent.
func (p *Products) Links() *LinksProduct {
	lp, _ := p.Get(NameLinks).(*LinksProduct)
	return lp
}
