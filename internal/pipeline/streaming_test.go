package pipeline_test

import (
	"context"
	"testing"

	"ixplens/internal/core/dissect"
	"ixplens/internal/core/webserver"
	. "ixplens/internal/pipeline"
	"ixplens/internal/sflow"
)

// identifyOver runs dissection + identification over a rewindable
// source, the way the buffered path does.
func identifyOver(t *testing.T, env *Env, src dissect.RewindableSource, isoWeek int) (dissect.Counts, *webserver.Result) {
	t.Helper()
	ident := webserver.NewIdentifier()
	counts, err := dissect.Process(src, dissect.NewClassifier(env.Fabric), ident.Observe)
	if err != nil {
		t.Fatal(err)
	}
	return counts, ident.Identify(isoWeek, env.Crawler)
}

// sameServers fails unless the two identification results are
// byte-identical where it matters: same IP set, same per-server traffic.
func sameServers(t *testing.T, a, b *webserver.Result) {
	t.Helper()
	if len(a.Servers) != len(b.Servers) {
		t.Fatalf("server sets differ: %d vs %d", len(a.Servers), len(b.Servers))
	}
	for ip, sa := range a.Servers {
		sb, ok := b.Servers[ip]
		if !ok {
			t.Fatalf("server %v missing from second set", ip)
		}
		if sa.Bytes != sb.Bytes || sa.HTTPS != sb.HTTPS || sa.Member != sb.Member {
			t.Fatalf("server %v diverged: %+v vs %+v", ip, sa, sb)
		}
	}
	if a.ServerBytes != b.ServerBytes || a.Candidates443 != b.Candidates443 ||
		a.Valid443 != b.Valid443 || a.TotalIPs != b.TotalIPs {
		t.Fatalf("result aggregates diverged:\n%+v\n%+v", a, b)
	}
}

// TestStreamMatchesBuffered is the acceptance gate of the streaming
// refactor: StreamWeek must produce byte-identical counts and server
// sets to dissecting a buffered CaptureWeek source.
func TestStreamMatchesBuffered(t *testing.T) {
	env := newEnv(t)
	src, bufTruth, err := env.CaptureWeek(context.Background(), 45)
	if err != nil {
		t.Fatal(err)
	}
	bufCounts, bufRes := identifyOver(t, env, src, 45)

	ident := webserver.NewIdentifier()
	strCounts, strTruth, _, err := env.StreamWeek(context.Background(), 45, ident.Observe)
	if err != nil {
		t.Fatal(err)
	}
	strRes := ident.Identify(45, env.Crawler)

	if bufTruth != strTruth {
		t.Fatalf("ground truth diverged:\nbuffered  %+v\nstreaming %+v", bufTruth, strTruth)
	}
	if bufCounts != strCounts {
		t.Fatalf("counts diverged:\nbuffered  %+v\nstreaming %+v", bufCounts, strCounts)
	}
	sameServers(t, bufRes, strRes)
}

// TestReplayDeterminism sweeps the same week twice through a
// ReplaySource: both passes must yield identical counts and server sets.
func TestReplayDeterminism(t *testing.T) {
	env := newEnv(t)
	c1, r1 := identifyOver(t, env, env.Replay(45), 45)
	c2, r2 := identifyOver(t, env, env.Replay(45), 45)
	if c1 != c2 {
		t.Fatalf("replay counts diverged:\n%+v\n%+v", c1, c2)
	}
	if c1.Total == 0 {
		t.Fatal("replay produced no samples")
	}
	sameServers(t, r1, r2)

	// And a replay must match the buffered capture of the same week.
	src, _, err := env.CaptureWeek(context.Background(), 45)
	if err != nil {
		t.Fatal(err)
	}
	cb, rb := identifyOver(t, env, src, 45)
	if cb != c1 {
		t.Fatalf("replay differs from buffered capture:\n%+v\n%+v", c1, cb)
	}
	sameServers(t, r1, rb)
}

// TestReplayResetMidStream abandons a pass partway; Reset must abort the
// producer and restart from the beginning.
func TestReplayResetMidStream(t *testing.T) {
	env := newEnv(t)
	src := env.Replay(45)

	full, _ := identifyOver(t, env, env.Replay(45), 45)

	var d sflow.Datagram
	for i := 0; i < 5; i++ {
		if err := src.Next(&d); err != nil {
			t.Fatal(err)
		}
	}
	src.Reset()
	counts, err := dissect.Process(src, dissect.NewClassifier(env.Fabric), nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts != full {
		t.Fatalf("post-reset pass incomplete:\n%+v\n%+v", counts, full)
	}
	src.Close()
}
