package pipeline_test

// The chaos suite: runs the full 17-week pipeline under the ISSUE's
// reference fault mix (5% datagram drop, 1% corruption split between
// truncation and bit flips, one poisoned worker lookup) and checks that
// (a) every week completes, (b) the loss estimate brackets the injected
// drop rate, and (c) the paper-level aggregates — stable-pool share and
// the stable pool's traffic share — stay within a documented tolerance
// of the fault-free run. Everything is seeded, so a failure reproduces
// exactly.

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"ixplens/internal/core/churn"
	"ixplens/internal/faultline"
	. "ixplens/internal/pipeline"
)

// chaosConfig is the reference fault mix from the acceptance criteria.
func chaosConfig() *faultline.Config {
	return &faultline.Config{
		Seed:     7,
		Drop:     0.05,
		Truncate: 0.005,
		BitFlip:  0.005,
		// One poisoned lookup per week exercises the worker quarantine
		// without distorting the aggregates.
		PanicAtLookup: 1000,
	}
}

// aggregates condenses a TrackWeeks run into the paper-level numbers
// the tolerance check compares.
type aggregates struct {
	stableShare float64 // final week's stable pool share of server IPs
	stableBytes float64 // final week's stable pool share of traffic
	maxLoss     float64
}

func trackAggregates(t *testing.T, env *Env) aggregates {
	t.Helper()
	tracker, results, err := env.TrackWeeks(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	weeks := tracker.Compute()
	if len(weeks) != env.World.Cfg.Weeks {
		t.Fatalf("tracked %d weeks, want %d", len(weeks), env.World.Cfg.Weeks)
	}
	var agg aggregates
	last := weeks[len(weeks)-1]
	agg.stableShare = last.Share(churn.PoolStable)
	agg.stableBytes = last.ByteShare(churn.PoolStable)
	for _, res := range results {
		if res.EstLoss > agg.maxLoss {
			agg.maxLoss = res.EstLoss
		}
	}
	return agg
}

// TestChaosTrackWeeks is the headline robustness check from ISSUE.md.
func TestChaosTrackWeeks(t *testing.T) {
	clean := newEnv(t)
	base := trackAggregates(t, clean)
	if base.maxLoss != 0 {
		t.Fatalf("fault-free run estimated %.4f loss", base.maxLoss)
	}

	faulty := newEnv(t)
	faulty.Faults = chaosConfig()
	if err := faulty.Faults.Validate(); err != nil {
		t.Fatal(err)
	}
	got := trackAggregates(t, faulty)

	// Loss estimate must bracket the injected drop rate: gaps can only
	// be observed per agent stream, so allow [rate/2, 2*rate].
	drop := faulty.Faults.Drop
	if got.maxLoss < drop/2 || got.maxLoss > 2*drop {
		t.Fatalf("estimated loss %.4f outside [%.4f, %.4f] for injected drop %.2f",
			got.maxLoss, drop/2, 2*drop, drop)
	}

	// Documented tolerance (README "Fault model"): with 5% drop + 1%
	// corruption the churn pool shares move by well under 0.15 absolute,
	// because pool membership needs only one sighting per week.
	const tol = 0.15
	if d := math.Abs(got.stableShare - base.stableShare); d > tol {
		t.Fatalf("stable pool share drifted %.3f under faults (%.3f vs %.3f), tolerance %.2f",
			d, got.stableShare, base.stableShare, tol)
	}
	if d := math.Abs(got.stableBytes - base.stableBytes); d > tol {
		t.Fatalf("stable traffic share drifted %.3f under faults (%.3f vs %.3f), tolerance %.2f",
			d, got.stableBytes, base.stableBytes, tol)
	}
}

// TestChaosStreamWeekQuarantine checks the poisoned-lookup seam end to
// end: the panic fires inside a classifier, the batch quarantines, the
// week still completes, and the quarantine is visible in the counts.
func TestChaosStreamWeekQuarantine(t *testing.T) {
	env := newEnv(t)
	env.Faults = &faultline.Config{Seed: 7, PanicAtLookup: 500}
	counts, stats, est, err := env.StreamWeek(context.Background(), 45, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts.PanicQuarantined == 0 {
		t.Fatal("poisoned lookup quarantined nothing")
	}
	if counts.Total+counts.PanicQuarantined != stats.Samples {
		t.Fatalf("conservation broken: %d tallied + %d quarantined != %d generated",
			counts.Total, counts.PanicQuarantined, stats.Samples)
	}
	if est != 0 {
		t.Fatalf("panic-only faults must not register as loss, got %.4f", est)
	}
}

// TestChaosDeterministic: two faulted runs with the same seed agree —
// the whole point of deterministic injection. Wire faults are applied
// in the single-threaded sink, so those runs must agree sample-exactly.
// A poisoned lookup fires on whichever classifier worker reaches the
// configured count first, so with parallel workers the quarantined
// *batch* is scheduler-dependent; what stays deterministic is the
// conservation sum and the loss estimate, asserted separately.
func TestChaosDeterministic(t *testing.T) {
	run := func(cfg faultline.Config) (total, quarantined int, est float64) {
		env := newEnv(t)
		env.Faults = &cfg
		counts, _, est, err := env.StreamWeek(context.Background(), 45, nil)
		if err != nil {
			t.Fatal(err)
		}
		return counts.Total, counts.PanicQuarantined, est
	}

	wire := *chaosConfig()
	wire.PanicAtLookup = 0
	t1, _, e1 := run(wire)
	t2, _, e2 := run(wire)
	if t1 != t2 || e1 != e2 {
		t.Fatalf("wire-faulted runs diverged: (%d, %.6f) vs (%d, %.6f)", t1, e1, t2, e2)
	}

	full := *chaosConfig()
	ta, qa, ea := run(full)
	tb, qb, eb := run(full)
	if ta+qa != tb+qb || ea != eb {
		t.Fatalf("conservation sum diverged under panic injection: (%d+%d, %.6f) vs (%d+%d, %.6f)",
			ta, qa, ea, tb, qb, eb)
	}
}

// TestMaxLossAborts: a drop rate above the configured ceiling fails the
// week with ErrLossExceeded; raising the ceiling clears it.
func TestMaxLossAborts(t *testing.T) {
	env := newEnv(t)
	env.Faults = &faultline.Config{Seed: 7, Drop: 0.10}
	env.MaxLoss = 0.02
	if _, _, _, err := env.StreamWeek(context.Background(), 45, nil); !errors.Is(err, ErrLossExceeded) {
		t.Fatalf("err = %v, want ErrLossExceeded", err)
	}
	env.MaxLoss = 0.5
	if _, _, _, err := env.StreamWeek(context.Background(), 45, nil); err != nil {
		t.Fatalf("generous ceiling still failed: %v", err)
	}
}

// TestTrackWeeksPartial pins the degraded-campaign contract: when weeks
// fail (here: every week, via a drop rate far above the loss ceiling),
// TrackWeeks returns the gap-annotated tracker and the partial results
// slice alongside a typed WeekErrors set instead of aborting with a
// single opaque error.
func TestTrackWeeksPartial(t *testing.T) {
	env := newEnv(t)
	env.Faults = &faultline.Config{Seed: 7, Drop: 0.10}
	env.MaxLoss = 0.02
	cfg := &env.World.Cfg

	tracker, results, err := env.TrackWeeks(context.Background())
	if err == nil {
		t.Fatal("10% drop against a 2% ceiling must surface errors")
	}
	var werrs WeekErrors
	if !errors.As(err, &werrs) {
		t.Fatalf("err %T does not unwrap to WeekErrors: %v", err, err)
	}
	if len(werrs) != cfg.Weeks {
		t.Fatalf("%d week errors, want %d", len(werrs), cfg.Weeks)
	}
	if !errors.Is(err, ErrLossExceeded) {
		t.Fatalf("WeekErrors does not unwrap to ErrLossExceeded: %v", err)
	}
	var we *WeekError
	if !errors.As(err, &we) || we.Week != cfg.FirstWeek {
		t.Fatalf("first WeekError = %+v, want week %d", we, cfg.FirstWeek)
	}
	if tracker == nil || results == nil {
		t.Fatal("partial failure must still return tracker and results")
	}
	if len(results) != cfg.Weeks {
		t.Fatalf("results length %d, want %d", len(results), cfg.Weeks)
	}
	for idx, res := range results {
		if res != nil {
			t.Fatalf("week index %d unexpectedly succeeded", idx)
		}
	}
	weeks := tracker.Compute()
	if len(weeks) != cfg.Weeks {
		t.Fatalf("tracker computed %d weeks, want %d", len(weeks), cfg.Weeks)
	}
	for _, wc := range weeks {
		if !wc.Gap {
			t.Fatalf("week %d not marked as gap", wc.Week)
		}
	}
}

// TestTrackWeeksCancelled covers the ISSUE's cancellation criteria: a
// pre-cancelled context returns promptly with the context error, a
// mid-run cancel unwinds within one batch, and neither leaks goroutines.
func TestTrackWeeksCancelled(t *testing.T) {
	env := newEnv(t)
	before := runtime.NumGoroutine()

	// Already-cancelled: must not run any week.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, _, err := env.TrackWeeks(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled TrackWeeks err = %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("pre-cancelled TrackWeeks took %v", d)
	}

	// Mid-run: cancel shortly after dispatch begins.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel2()
	}()
	if _, _, err := env.TrackWeeks(ctx2); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel err = %v", err)
	}

	// All workers must be gone; generation is CPU-bound, so give the
	// runtime a moment to retire them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancel", before, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestStreamWeekCancelledPromptly: cancelling before the call aborts
// within one datagram flush rather than generating the whole week.
func TestStreamWeekCancelledPromptly(t *testing.T) {
	env := newEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	counts, _, _, err := env.StreamWeek(ctx, 45, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// One datagram carries a handful of samples; anything near a full
	// week (30k samples at test scale) means cancellation didn't bite.
	if counts.Total > 100 {
		t.Fatalf("classified %d samples after pre-cancel", counts.Total)
	}
}

// TestChaosAnalyzeWeekBuffered drives the fault mix through the
// buffered path: CaptureWeek applies the degradation, AnalyzeWeek
// surfaces it as the Week's EstLoss annotation.
func TestChaosAnalyzeWeekBuffered(t *testing.T) {
	env := newEnv(t)
	env.Faults = &faultline.Config{Seed: 7, Drop: 0.05}
	src, _, err := env.CaptureWeek(context.Background(), 45)
	if err != nil {
		t.Fatal(err)
	}
	wk, _, err := env.AnalyzeWeek(context.Background(), 45, src)
	if err != nil {
		t.Fatal(err)
	}
	if wk.EstLoss < 0.025 || wk.EstLoss > 0.10 {
		t.Fatalf("buffered EstLoss %.4f outside [0.025, 0.10] for 5%% drop", wk.EstLoss)
	}
	if len(wk.Servers.Servers) == 0 {
		t.Fatal("no servers identified from the degraded capture")
	}
}
