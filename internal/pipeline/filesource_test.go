package pipeline

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"ixplens/internal/core/dissect"
	"ixplens/internal/sflow"
)

var _ dissect.RewindableSource = (*FileSource)(nil)

func fileSourceDatagram(i int) *sflow.Datagram {
	return &sflow.Datagram{
		AgentAddr:   [4]byte{10, 0, 0, 1},
		SequenceNum: uint32(i + 1),
		Flows: []sflow.FlowSample{{
			SamplingRate: 16384,
			HasRaw:       true,
			Raw: sflow.RawPacketHeader{
				Protocol:    sflow.HeaderProtoEthernet,
				FrameLength: 1514,
				Header:      []byte{byte(i), byte(i >> 8), 3, 4, 5, 6, 7, 8},
			},
		}},
	}
}

func drainFileSource(t *testing.T, src *FileSource) int {
	t.Helper()
	var d sflow.Datagram
	n := 0
	for {
		err := src.Next(&d)
		if err == io.EOF {
			return n
		}
		if err != nil {
			t.Fatal(err)
		}
		if d.SequenceNum != uint32(n+1) {
			t.Fatalf("datagram %d out of order: seq %d", n, d.SequenceNum)
		}
		n++
	}
}

// TestFileSourceRewinds drains a capture twice through Reset for both
// container formats — the multi-pass path link attribution takes when
// only the file (not the generating env) is available.
func TestFileSourceRewinds(t *testing.T) {
	dir := t.TempDir()
	const n = 300

	v1 := filepath.Join(dir, "v1.sflow")
	f, err := os.Create(v1)
	if err != nil {
		t.Fatal(err)
	}
	sw1, err := sflow.NewStreamWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := sw1.WriteDatagram(fileSourceDatagram(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw1.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	v2 := filepath.Join(dir, "v2.sflow")
	f2, err := os.Create(v2)
	if err != nil {
		t.Fatal(err)
	}
	sw2, err := sflow.NewBlockWriter(f2, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := sw2.WriteDatagram(fileSourceDatagram(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{v1, v2} {
		src, err := OpenFileSource(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := drainFileSource(t, src); got != n {
			t.Fatalf("%s first pass: %d datagrams, want %d", filepath.Base(path), got, n)
		}
		if path == v2 {
			st, ok := src.Stats()
			if !ok || st.Datagrams != n || !st.FooterVerified {
				t.Fatalf("v2 stats: ok=%v %+v", ok, st)
			}
		}
		src.Reset()
		if got := drainFileSource(t, src); got != n {
			t.Fatalf("%s second pass: %d datagrams, want %d", filepath.Base(path), got, n)
		}
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
		// A closed source reopens on demand.
		if got := drainFileSource(t, src); got != n {
			t.Fatalf("%s post-close pass: %d datagrams, want %d", filepath.Base(path), got, n)
		}
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := OpenFileSource(filepath.Join(dir, "missing.sflow")); err == nil {
		t.Fatal("missing file must fail eagerly")
	}
}
