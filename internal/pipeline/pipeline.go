// Package pipeline wires the full measurement stack together: world →
// traffic → sFlow capture → dissection → server identification →
// meta-data → clustering. It is the composition layer the command-line
// tools, the examples and the experiment harness all build on.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ixplens/internal/alexa"
	"ixplens/internal/certsim"
	"ixplens/internal/core/churn"
	"ixplens/internal/core/cluster"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/metadata"
	"ixplens/internal/core/webserver"
	"ixplens/internal/dnssim"
	"ixplens/internal/geo"
	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/sflow"
	"ixplens/internal/traffic"
)

// Env bundles a generated world with its measurement substrates.
type Env struct {
	World   *netmodel.World
	DNS     *dnssim.DB
	Fabric  *ixp.Fabric
	Crawler *certsim.Crawler
	Gen     *traffic.Generator
	Opts    traffic.Options
	// M is the observability bundle; nil (the default) runs the whole
	// pipeline uninstrumented. Attach one with Instrument.
	M *Metrics
}

// NewEnv generates a world and wires all substrates.
func NewEnv(cfg netmodel.Config, opts traffic.Options) (*Env, error) {
	w, err := netmodel.Generate(cfg)
	if err != nil {
		return nil, err
	}
	dns := dnssim.New(w)
	fabric := ixp.NewFabric(w)
	return &Env{
		World:   w,
		DNS:     dns,
		Fabric:  fabric,
		Crawler: certsim.NewCrawler(w, dns),
		Gen:     traffic.NewGenerator(w, dns, fabric, opts),
		Opts:    opts,
	}, nil
}

// CaptureWeek generates one week of traffic and returns it as an
// in-memory, rewindable datagram source plus the generator ground truth.
// This is the buffered, O(week)-memory representation — opt into it for
// tests and for experiment runners that make many passes over one week;
// analysis paths should use StreamWeek (single pass) or Replay
// (additional passes) instead.
func (e *Env) CaptureWeek(isoWeek int) (*dissect.SliceSource, traffic.WeekStats, error) {
	src := &dissect.SliceSource{}
	col := ixp.NewCollector(e.Fabric, e.Opts.SamplingRate, func(d *sflow.Datagram) error {
		// In default (non-reuse) mode the collector hands off fresh
		// backing arrays with every flush, so the shallow copy owns them.
		src.Datagrams = append(src.Datagrams, *d)
		return nil
	})
	col.SetMetrics(e.M.CollectorMetrics())
	stats, err := e.Gen.GenerateWeek(isoWeek, col)
	if err != nil {
		return nil, stats, err
	}
	return src, stats, nil
}

// streamWorkers picks the classifier pool size for one week's stream:
// leave a core to the generator, cap where batching stops paying off.
func streamWorkers() int {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	return n
}

// StreamWeek generates one week of traffic and classifies every sample
// on the fly, invoking fn (which may be nil) for each record in capture
// order. No datagram buffer is retained: the collector reuses its
// buffers and the classifier pool holds O(batch) samples, so per-week
// memory is bounded regardless of world size. Results are byte-identical
// to dissecting a CaptureWeek source.
func (e *Env) StreamWeek(isoWeek int, fn func(*dissect.Record)) (dissect.Counts, traffic.WeekStats, error) {
	return e.streamWeekWith(e.Gen, isoWeek, streamWorkers(), fn)
}

// streamWeekWith streams using an explicit generator, so parallel
// callers can each own one (a Generator is not safe for concurrent use).
// workers sizes the classifier pool; 1 classifies inline in the emit
// callback with zero extra goroutines.
func (e *Env) streamWeekWith(gen *traffic.Generator, isoWeek, workers int, fn func(*dissect.Record)) (dissect.Counts, traffic.WeekStats, error) {
	if workers <= 1 {
		cls := dissect.NewClassifier(e.Fabric)
		cls.SetMetrics(e.M.DissectMetrics())
		var counts dissect.Counts
		var rec dissect.Record
		col := ixp.NewCollector(e.Fabric, e.Opts.SamplingRate, func(d *sflow.Datagram) error {
			for i := range d.Flows {
				cls.Classify(&d.Flows[i], &rec)
				counts.Tally(&rec)
				if fn != nil {
					fn(&rec)
				}
			}
			return nil
		})
		col.SetMetrics(e.M.CollectorMetrics())
		col.SetBufferReuse(true)
		stats, err := gen.GenerateWeek(isoWeek, col)
		return counts, stats, err
	}
	sp := dissect.NewStreamProcessor(e.Fabric, workers, fn, e.M.DissectMetrics())
	col := ixp.NewCollector(e.Fabric, e.Opts.SamplingRate, sp.Add)
	col.SetMetrics(e.M.CollectorMetrics())
	col.SetBufferReuse(true)
	stats, err := gen.GenerateWeek(isoWeek, col)
	counts := sp.Close()
	return counts, stats, err
}

// Week is the fully analysed weekly snapshot.
type Week struct {
	ISOWeek  int
	Truth    traffic.WeekStats
	Counts   dissect.Counts
	Servers  *webserver.Result
	Metas    []metadata.ServerMeta
	Coverage metadata.Coverage
	Clusters *cluster.Result
}

// AnalyzeWeek runs the complete per-week pipeline. When src is nil the
// week is streamed — classified as it is generated, with bounded
// memory — and the returned source is a ReplaySource that regenerates
// the identical stream for callers that need further passes (link
// attribution does). Passing a non-nil rewindable source (a buffered
// SliceSource, or a Replay from an earlier call) dissects that instead.
func (e *Env) AnalyzeWeek(isoWeek int, src dissect.RewindableSource) (*Week, dissect.RewindableSource, error) {
	var truth traffic.WeekStats
	var counts dissect.Counts
	ident := webserver.NewIdentifier()
	ident.SetMetrics(e.M.IdentifyMetrics())
	if src == nil {
		var err error
		counts, truth, err = e.StreamWeek(isoWeek, ident.Observe)
		if err != nil {
			return nil, nil, err
		}
		src = e.Replay(isoWeek)
	} else {
		cls := dissect.NewClassifier(e.Fabric)
		cls.SetMetrics(e.M.DissectMetrics())
		var err error
		counts, err = dissect.Process(src, cls, ident.Observe)
		if err != nil {
			return nil, nil, err
		}
		src.Reset()
	}
	res := ident.Identify(isoWeek, e.Crawler)
	metas, cov := metadata.Collect(res, e.DNS)

	opts := cluster.DefaultOptions()
	opts.KnownShared = e.DNS.PublicDNSProviders()
	rib := e.World.RIB()
	opts.ASNOf = rib.LookupASN
	clusters := cluster.Run(metas, opts)

	return &Week{
		ISOWeek:  isoWeek,
		Truth:    truth,
		Counts:   counts,
		Servers:  res,
		Metas:    metas,
		Coverage: cov,
		Clusters: clusters,
	}, src, nil
}

// IdentifyWeek runs the light per-week pipeline (dissection and server
// identification only) — what the longitudinal analysis needs for each
// of the 17 weeks.
func (e *Env) IdentifyWeek(isoWeek int) (*webserver.Result, dissect.Counts, traffic.WeekStats, error) {
	ident := webserver.NewIdentifier()
	ident.SetMetrics(e.M.IdentifyMetrics())
	counts, truth, err := e.StreamWeek(isoWeek, ident.Observe)
	if err != nil {
		return nil, counts, truth, err
	}
	return ident.Identify(isoWeek, e.Crawler), counts, truth, nil
}

// Observation converts an identification result into the churn
// tracker's input, resolving every server IP against the RIB and geo
// database.
func (e *Env) Observation(res *webserver.Result) churn.WeekObservation {
	rib := e.World.RIB()
	gdb := e.World.GeoDB()
	obs := churn.WeekObservation{
		Week:    res.Week,
		Servers: make(map[packet.IPv4Addr]churn.ServerObs, len(res.Servers)),
	}
	for ip, srv := range res.Servers {
		so := churn.ServerObs{
			Bytes:  srv.Bytes,
			HTTPS:  srv.HTTPS,
			Member: srv.Member,
			Region: geo.Region(gdb.Lookup(ip)),
		}
		if r, ok := rib.Lookup(ip); ok {
			so.ASN = r.ASN
			so.Prefix = r.Prefix
		}
		obs.Servers[ip] = so
	}
	return obs
}

// TrackWeeks runs the light pipeline over every study week and returns
// the filled churn tracker plus per-week identification results. Weeks
// are processed concurrently (they are independent: a generator per
// worker, shared read-only substrates) and folded into the tracker in
// chronological order.
func (e *Env) TrackWeeks() (*churn.Tracker, []*webserver.Result, error) {
	cfg := &e.World.Cfg

	// Pre-build the lazily cached substrates so workers only read.
	e.World.RIB()
	e.World.GeoDB()
	if len(e.World.Servers) > 0 {
		e.World.ServerByIP(e.World.Servers[0].IP)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Weeks {
		workers = cfg.Weeks
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]*webserver.Result, cfg.Weeks)
	errs := make([]error, cfg.Weeks)
	weekCh := make(chan int)
	var wg sync.WaitGroup
	var wallStart time.Time
	if e.M != nil {
		wallStart = time.Now()
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := traffic.NewGenerator(e.World, e.DNS, e.Fabric, e.Opts)
			for idx := range weekCh {
				isoWeek := cfg.FirstWeek + idx
				var weekStart time.Time
				if e.M != nil {
					weekStart = time.Now()
				}
				ident := webserver.NewIdentifier()
				ident.SetMetrics(e.M.IdentifyMetrics())
				// Weeks already run in parallel here; keep each week's
				// classifier inline (workers=1) to avoid oversubscription.
				if _, _, err := e.streamWeekWith(gen, isoWeek, 1, ident.Observe); err != nil {
					errs[idx] = err
					continue
				}
				results[idx] = ident.Identify(isoWeek, e.Crawler)
				if e.M != nil {
					busy := time.Since(weekStart)
					e.M.WeekNanos.Observe(uint64(busy))
					e.M.Weeks.Inc()
					e.M.WorkerBusy.Add(uint64(busy))
				}
			}
		}()
	}
	for idx := 0; idx < cfg.Weeks; idx++ {
		weekCh <- idx
	}
	close(weekCh)
	wg.Wait()
	if e.M != nil {
		// Utilization: the share of the worker pool's wall-clock capacity
		// that went into week work. 100% means every worker was busy the
		// whole run.
		if wall := time.Since(wallStart); wall > 0 {
			pct := 100 * float64(e.M.WorkerBusy.Value()) / (float64(wall) * float64(workers))
			e.M.Utilization.Set(int64(pct))
		}
	}

	tracker := churn.NewTracker()
	for idx := 0; idx < cfg.Weeks; idx++ {
		if errs[idx] != nil {
			return nil, nil, errs[idx]
		}
		if err := tracker.Add(e.Observation(results[idx])); err != nil {
			return nil, nil, err
		}
	}
	return tracker, results, nil
}

// AlexaList builds the week's top-site list.
func (e *Env) AlexaList(isoWeek int) *alexa.List {
	return alexa.Build(e.DNS, isoWeek, e.World.Cfg.Seed)
}

// String summarizes the environment.
func (e *Env) String() string {
	return fmt.Sprintf("env{ASes=%d prefixes=%d orgs=%d servers=%d members=%d..%d}",
		len(e.World.ASes), len(e.World.Prefixes), len(e.World.Orgs), len(e.World.Servers),
		e.World.Cfg.MembersStart, e.World.Cfg.MembersEnd)
}
