// Package pipeline wires the full measurement stack together: world →
// traffic → sFlow capture → dissection → server identification →
// meta-data → clustering. It is the composition layer the command-line
// tools, the examples and the experiment harness all build on.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"

	"ixplens/internal/alexa"
	"ixplens/internal/certsim"
	"ixplens/internal/core/churn"
	"ixplens/internal/core/cluster"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/metadata"
	"ixplens/internal/core/webserver"
	"ixplens/internal/dnssim"
	"ixplens/internal/geo"
	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/sflow"
	"ixplens/internal/traffic"
)

// Env bundles a generated world with its measurement substrates.
type Env struct {
	World   *netmodel.World
	DNS     *dnssim.DB
	Fabric  *ixp.Fabric
	Crawler *certsim.Crawler
	Gen     *traffic.Generator
	Opts    traffic.Options
}

// NewEnv generates a world and wires all substrates.
func NewEnv(cfg netmodel.Config, opts traffic.Options) (*Env, error) {
	w, err := netmodel.Generate(cfg)
	if err != nil {
		return nil, err
	}
	dns := dnssim.New(w)
	fabric := ixp.NewFabric(w)
	return &Env{
		World:   w,
		DNS:     dns,
		Fabric:  fabric,
		Crawler: certsim.NewCrawler(w, dns),
		Gen:     traffic.NewGenerator(w, dns, fabric, opts),
		Opts:    opts,
	}, nil
}

// CaptureWeek generates one week of traffic and returns it as an
// in-memory, rewindable datagram source plus the generator ground truth.
func (e *Env) CaptureWeek(isoWeek int) (*dissect.SliceSource, traffic.WeekStats, error) {
	return e.captureWeekWith(e.Gen, isoWeek)
}

// captureWeekWith captures using an explicit generator, so parallel
// callers can each own one (a Generator is not safe for concurrent use).
func (e *Env) captureWeekWith(gen *traffic.Generator, isoWeek int) (*dissect.SliceSource, traffic.WeekStats, error) {
	src := &dissect.SliceSource{}
	col := ixp.NewCollector(e.Fabric, e.Opts.SamplingRate, func(d *sflow.Datagram) error {
		cp := *d
		cp.Flows = make([]sflow.FlowSample, len(d.Flows))
		for i := range d.Flows {
			cp.Flows[i] = d.Flows[i]
			hdr := make([]byte, len(d.Flows[i].Raw.Header))
			copy(hdr, d.Flows[i].Raw.Header)
			cp.Flows[i].Raw.Header = hdr
		}
		cp.Counters = append([]sflow.CounterSample(nil), d.Counters...)
		src.Datagrams = append(src.Datagrams, cp)
		return nil
	})
	stats, err := gen.GenerateWeek(isoWeek, col)
	if err != nil {
		return nil, stats, err
	}
	return src, stats, nil
}

// Week is the fully analysed weekly snapshot.
type Week struct {
	ISOWeek  int
	Truth    traffic.WeekStats
	Counts   dissect.Counts
	Servers  *webserver.Result
	Metas    []metadata.ServerMeta
	Coverage metadata.Coverage
	Clusters *cluster.Result
}

// AnalyzeWeek runs the complete per-week pipeline. When src is nil the
// week is captured first. keepSource optionally receives the capture
// for further passes (link attribution needs one).
func (e *Env) AnalyzeWeek(isoWeek int, src *dissect.SliceSource) (*Week, *dissect.SliceSource, error) {
	var truth traffic.WeekStats
	if src == nil {
		var err error
		src, truth, err = e.CaptureWeek(isoWeek)
		if err != nil {
			return nil, nil, err
		}
	}
	cls := dissect.NewClassifier(e.Fabric)
	ident := webserver.NewIdentifier()
	counts, err := dissect.Process(src, cls, ident.Observe)
	if err != nil {
		return nil, nil, err
	}
	src.Reset()
	res := ident.Identify(isoWeek, e.Crawler)
	metas, cov := metadata.Collect(res, e.DNS)

	opts := cluster.DefaultOptions()
	opts.KnownShared = e.DNS.PublicDNSProviders()
	rib := e.World.RIB()
	opts.ASNOf = rib.LookupASN
	clusters := cluster.Run(metas, opts)

	return &Week{
		ISOWeek:  isoWeek,
		Truth:    truth,
		Counts:   counts,
		Servers:  res,
		Metas:    metas,
		Coverage: cov,
		Clusters: clusters,
	}, src, nil
}

// IdentifyWeek runs the light per-week pipeline (dissection and server
// identification only) — what the longitudinal analysis needs for each
// of the 17 weeks.
func (e *Env) IdentifyWeek(isoWeek int) (*webserver.Result, dissect.Counts, traffic.WeekStats, error) {
	src, truth, err := e.CaptureWeek(isoWeek)
	if err != nil {
		return nil, dissect.Counts{}, truth, err
	}
	cls := dissect.NewClassifier(e.Fabric)
	ident := webserver.NewIdentifier()
	counts, err := dissect.Process(src, cls, ident.Observe)
	if err != nil {
		return nil, counts, truth, err
	}
	return ident.Identify(isoWeek, e.Crawler), counts, truth, nil
}

// Observation converts an identification result into the churn
// tracker's input, resolving every server IP against the RIB and geo
// database.
func (e *Env) Observation(res *webserver.Result) churn.WeekObservation {
	rib := e.World.RIB()
	gdb := e.World.GeoDB()
	obs := churn.WeekObservation{
		Week:    res.Week,
		Servers: make(map[packet.IPv4Addr]churn.ServerObs, len(res.Servers)),
	}
	for ip, srv := range res.Servers {
		so := churn.ServerObs{
			Bytes:  srv.Bytes,
			HTTPS:  srv.HTTPS,
			Member: srv.Member,
			Region: geo.Region(gdb.Lookup(ip)),
		}
		if r, ok := rib.Lookup(ip); ok {
			so.ASN = r.ASN
			so.Prefix = r.Prefix
		}
		obs.Servers[ip] = so
	}
	return obs
}

// TrackWeeks runs the light pipeline over every study week and returns
// the filled churn tracker plus per-week identification results. Weeks
// are processed concurrently (they are independent: a generator per
// worker, shared read-only substrates) and folded into the tracker in
// chronological order.
func (e *Env) TrackWeeks() (*churn.Tracker, []*webserver.Result, error) {
	cfg := &e.World.Cfg

	// Pre-build the lazily cached substrates so workers only read.
	e.World.RIB()
	e.World.GeoDB()
	if len(e.World.Servers) > 0 {
		e.World.ServerByIP(e.World.Servers[0].IP)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Weeks {
		workers = cfg.Weeks
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]*webserver.Result, cfg.Weeks)
	errs := make([]error, cfg.Weeks)
	weekCh := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := traffic.NewGenerator(e.World, e.DNS, e.Fabric, e.Opts)
			for idx := range weekCh {
				isoWeek := cfg.FirstWeek + idx
				src, _, err := e.captureWeekWith(gen, isoWeek)
				if err != nil {
					errs[idx] = err
					continue
				}
				cls := dissect.NewClassifier(e.Fabric)
				ident := webserver.NewIdentifier()
				if _, err := dissect.Process(src, cls, ident.Observe); err != nil {
					errs[idx] = err
					continue
				}
				results[idx] = ident.Identify(isoWeek, e.Crawler)
			}
		}()
	}
	for idx := 0; idx < cfg.Weeks; idx++ {
		weekCh <- idx
	}
	close(weekCh)
	wg.Wait()

	tracker := churn.NewTracker()
	for idx := 0; idx < cfg.Weeks; idx++ {
		if errs[idx] != nil {
			return nil, nil, errs[idx]
		}
		if err := tracker.Add(e.Observation(results[idx])); err != nil {
			return nil, nil, err
		}
	}
	return tracker, results, nil
}

// AlexaList builds the week's top-site list.
func (e *Env) AlexaList(isoWeek int) *alexa.List {
	return alexa.Build(e.DNS, isoWeek, e.World.Cfg.Seed)
}

// String summarizes the environment.
func (e *Env) String() string {
	return fmt.Sprintf("env{ASes=%d prefixes=%d orgs=%d servers=%d members=%d..%d}",
		len(e.World.ASes), len(e.World.Prefixes), len(e.World.Orgs), len(e.World.Servers),
		e.World.Cfg.MembersStart, e.World.Cfg.MembersEnd)
}
