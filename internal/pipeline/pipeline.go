// Package pipeline wires the full measurement stack together: world →
// traffic → sFlow capture → dissection → server identification →
// meta-data → clustering. It is the composition layer the command-line
// tools, the examples and the experiment harness all build on.
//
// The layer is built to degrade, not die: every analysis entry point
// takes a context and unwinds within roughly one datagram batch of
// cancellation; an Env may carry a faultline.Config that replays
// production failure modes (loss, duplication, reordering, corruption,
// worker panics) deterministically; each week's estimated datagram loss
// — measured from sFlow sequence gaps exactly as a real collector would
// — is attached to the week's results as a data-quality annotation and,
// when MaxLoss is set, enforced as an abort threshold.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ixplens/internal/alexa"
	"ixplens/internal/analysis"
	"ixplens/internal/certsim"
	"ixplens/internal/core/churn"
	"ixplens/internal/core/cluster"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/metadata"
	"ixplens/internal/core/webserver"
	"ixplens/internal/dnssim"
	"ixplens/internal/entity"
	"ixplens/internal/faultline"
	"ixplens/internal/ixp"
	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/sflow"
	"ixplens/internal/traffic"
	"ixplens/internal/vfs"
)

// ErrLossExceeded marks a week aborted because its estimated datagram
// loss crossed Env.MaxLoss. Test with errors.Is.
var ErrLossExceeded = errors.New("pipeline: estimated datagram loss exceeds configured maximum")

// WeekError attributes one failed week's error to its ISO week, so a
// multi-week caller can tell which slot of the campaign degraded.
type WeekError struct {
	Week int
	Err  error
}

// Error implements error.
func (e *WeekError) Error() string {
	return fmt.Sprintf("week %d: %v", e.Week, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *WeekError) Unwrap() error { return e.Err }

// WeekErrors is the typed per-week error set TrackWeeks returns when
// some (but not necessarily all) weeks failed. It unwraps to every
// member, so errors.Is(err, ErrLossExceeded) answers "did any week
// exceed its loss budget" and errors.As(err, *(*WeekError)) yields the
// first failed week.
type WeekErrors []*WeekError

// Error implements error.
func (e WeekErrors) Error() string {
	switch len(e) {
	case 0:
		return "pipeline: no week errors"
	case 1:
		return fmt.Sprintf("pipeline: 1 week failed: %v", e[0])
	default:
		return fmt.Sprintf("pipeline: %d weeks failed (first: %v)", len(e), e[0])
	}
}

// Unwrap exposes the member errors to the errors package's tree walk.
func (e WeekErrors) Unwrap() []error {
	out := make([]error, len(e))
	for i, we := range e {
		out[i] = we
	}
	return out
}

// Weeks lists the failed ISO weeks in chronological order.
func (e WeekErrors) Weeks() []int {
	out := make([]int, len(e))
	for i, we := range e {
		out[i] = we.Week
	}
	return out
}

// Env bundles a generated world with its measurement substrates.
type Env struct {
	World   *netmodel.World
	DNS     *dnssim.DB
	Fabric  *ixp.Fabric
	Crawler *certsim.Crawler
	Gen     *traffic.Generator
	Opts    traffic.Options
	// Entities is the Env's shared interning layer: every analysis stage
	// resolves IPs through it, so RIB/geo lookups run once per distinct
	// address per Env instead of once per (layer, week, sample). NewEnv
	// wires it; hand-assembled Envs get one lazily via EntityTable.
	Entities *entity.Table
	// M is the observability bundle; nil (the default) runs the whole
	// pipeline uninstrumented. Attach one with Instrument.
	M *Metrics
	// Faults, when non-nil and active, threads every captured or
	// streamed week through a deterministic fault injector (seeded with
	// Faults.Seed, salted with the ISO week). Replay passes regenerate
	// the pristine stream and are not faulted.
	Faults *faultline.Config
	// MaxLoss, when positive, is the largest estimated per-week datagram
	// loss fraction the analysis tolerates; a week above it fails with
	// an error wrapping ErrLossExceeded.
	MaxLoss float64
	// Analyzers selects which analyzers AnalyzeWeek (and the capture /
	// supervise / serve layers above it) feed from the single fused
	// decode pass. Nil runs the full default registry.
	Analyzers *analysis.Registry
	// FS is the filesystem seam every persistence path above this Env
	// goes through — capture files, manifests, snapshots, the supervisor
	// journal. Nil means the real disk (vfs.Default); a faultline.FS here
	// subjects the whole disk tier to seeded storage chaos.
	FS vfs.FS
}

// NewEnv generates a world and wires all substrates.
func NewEnv(cfg netmodel.Config, opts traffic.Options) (*Env, error) {
	w, err := netmodel.Generate(cfg)
	if err != nil {
		return nil, err
	}
	dns := dnssim.New(w)
	fabric := ixp.NewFabric(w)
	return &Env{
		World:   w,
		DNS:     dns,
		Fabric:  fabric,
		Crawler: certsim.NewCrawler(w, dns),
		Gen:     traffic.NewGenerator(w, dns, fabric, opts),
		Opts:    opts,
		// Building the table here also forces the lazily cached RIB and
		// geo DB, so later concurrent readers never race their builds.
		Entities: entity.NewTable(w.RIB(), w.GeoDB()),
	}, nil
}

// EntityTable returns the Env's interning layer, creating one on first
// use for Envs assembled by hand (NewEnv always wires it). Lazy
// creation is not synchronized — call it once before sharing such an
// Env across goroutines.
func (e *Env) EntityTable() *entity.Table {
	if e.Entities == nil {
		e.Entities = entity.NewTable(e.World.RIB(), e.World.GeoDB())
	}
	return e.Entities
}

// Registry returns the Env's analyzer registry, defaulting to every
// builtin analyzer.
func (e *Env) Registry() *analysis.Registry {
	if e.Analyzers != nil {
		return e.Analyzers
	}
	return analysis.Default()
}

// VFS returns the Env's filesystem seam, defaulting to the real disk.
func (e *Env) VFS() vfs.FS {
	if e.FS != nil {
		return e.FS
	}
	return vfs.Default
}

// AnalysisContext bundles the Env substrates the analyzers consume.
// Like EntityTable, first use is not synchronized.
func (e *Env) AnalysisContext() *analysis.Context {
	return &analysis.Context{
		Entities: e.EntityTable(),
		Crawler:  e.Crawler,
		Ident:    e.M.IdentifyMetrics(),
	}
}

// members returns the classifier's port resolver, wrapped with the
// fault injector's panic seam when one is configured.
func (e *Env) members() dissect.MemberResolver {
	if e.Faults.Active() && e.Faults.PanicAtLookup > 0 {
		return &faultline.PanickyResolver{Members: e.Fabric, At: e.Faults.PanicAtLookup}
	}
	return e.Fabric
}

// injector builds the per-week fault injector, nil when faults are off.
func (e *Env) injector(isoWeek int) *faultline.Injector {
	if !e.Faults.Active() {
		return nil
	}
	return faultline.New(*e.Faults, uint64(isoWeek))
}

// checkLoss turns a week's sequence-gap accounting into metrics and,
// when MaxLoss is set, an abort decision.
func (e *Env) checkLoss(isoWeek int, st sflow.SeqStats) (float64, error) {
	est := st.EstLoss()
	e.M.observeSeq(st)
	if e.MaxLoss > 0 && est > e.MaxLoss {
		return est, fmt.Errorf("week %d: estimated loss %.4f > max %.4f (%d gap datagrams): %w",
			isoWeek, est, e.MaxLoss, st.GapDatagrams, ErrLossExceeded)
	}
	return est, nil
}

// CaptureWeek generates one week of traffic and returns it as an
// in-memory, rewindable datagram source plus the generator ground truth.
// This is the buffered, O(week)-memory representation — opt into it for
// tests and for experiment runners that make many passes over one week;
// analysis paths should use StreamWeek (single pass) or Replay
// (additional passes) instead. Configured faults are applied at capture
// time, so the buffer holds the degraded stream an unreliable network
// would have delivered; ctx cancellation aborts generation within one
// datagram flush.
func (e *Env) CaptureWeek(ctx context.Context, isoWeek int) (*dissect.SliceSource, traffic.WeekStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	src := &dissect.SliceSource{}
	base := func(d *sflow.Datagram) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		// In default (non-reuse) mode the collector hands off fresh
		// backing arrays with every flush, so the shallow copy owns them.
		src.Datagrams = append(src.Datagrams, *d)
		return nil
	}
	sink := base
	inj := e.injector(isoWeek)
	if inj != nil {
		sink = inj.Sink(base)
	}
	col := ixp.NewCollector(e.Fabric, e.Opts.SamplingRate, sink)
	col.SetMetrics(e.M.CollectorMetrics())
	stats, err := e.Gen.GenerateWeek(isoWeek, col)
	if err == nil && inj != nil {
		err = inj.Flush(base)
	}
	if err != nil {
		return nil, stats, err
	}
	return src, stats, nil
}

// streamWorkers picks the classifier pool size for one week's stream:
// leave a core to the generator, cap where batching stops paying off.
func streamWorkers() int {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	return n
}

// StreamWeek generates one week of traffic and classifies every sample
// on the fly, invoking fn (which may be nil) for each record in capture
// order. No datagram buffer is retained: the collector reuses its
// buffers and the classifier pool holds O(batch) samples, so per-week
// memory is bounded regardless of world size. Results are byte-identical
// to dissecting a CaptureWeek source.
//
// The third return value is the week's estimated datagram loss fraction
// (sequence gaps over expected datagrams), measured after any configured
// fault injection. Cancelling ctx aborts generation within one datagram
// flush; a week whose loss crosses Env.MaxLoss fails with
// ErrLossExceeded.
func (e *Env) StreamWeek(ctx context.Context, isoWeek int, fn func(*dissect.Record)) (dissect.Counts, traffic.WeekStats, float64, error) {
	return e.streamWeekWith(ctx, e.Gen, isoWeek, streamWorkers(), fn)
}

// streamWeekWith streams using an explicit generator, so parallel
// callers can each own one (a Generator is not safe for concurrent use).
// workers sizes the classifier pool; 1 classifies inline in the emit
// callback with zero extra goroutines.
func (e *Env) streamWeekWith(ctx context.Context, gen *traffic.Generator, isoWeek, workers int, fn func(*dissect.Record)) (dissect.Counts, traffic.WeekStats, float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	inj := e.injector(isoWeek)
	var seq sflow.SeqTracker

	var counts dissect.Counts
	var stats traffic.WeekStats
	var err error
	if workers <= 1 {
		cls := dissect.NewClassifier(e.members())
		cls.SetMetrics(e.M.DissectMetrics())
		base := func(d *sflow.Datagram) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			seq.Observe(d)
			// ClassifyDatagram quarantines the datagram's samples if
			// classification or the observer panics.
			cls.ClassifyDatagram(d, &counts, fn)
			return nil
		}
		sink := base
		if inj != nil {
			sink = inj.Sink(base)
		}
		col := ixp.NewCollector(e.Fabric, e.Opts.SamplingRate, sink)
		col.SetMetrics(e.M.CollectorMetrics())
		col.SetBufferReuse(true)
		stats, err = gen.GenerateWeek(isoWeek, col)
		if err == nil && inj != nil {
			err = inj.Flush(base)
		}
	} else {
		sp := dissect.NewStreamProcessor(ctx, e.members(), workers, fn, e.M.DissectMetrics())
		base := func(d *sflow.Datagram) error {
			seq.Observe(d)
			return sp.Add(d)
		}
		sink := base
		if inj != nil {
			sink = inj.Sink(base)
		}
		col := ixp.NewCollector(e.Fabric, e.Opts.SamplingRate, sink)
		col.SetMetrics(e.M.CollectorMetrics())
		col.SetBufferReuse(true)
		stats, err = gen.GenerateWeek(isoWeek, col)
		if err == nil && inj != nil {
			err = inj.Flush(base)
		}
		// Close drains in-flight batches even after an abort, so the
		// worker pool never leaks.
		counts = sp.Close()
	}
	if err != nil {
		return counts, stats, seq.EstLoss(), err
	}
	est, err := e.checkLoss(isoWeek, seq.Stats())
	return counts, stats, est, err
}

// streamWeekSharded streams one week through the merge-free sharded
// pool: classification AND observation run on all workers, with obs
// receiving each worker's index and the sample's global stream
// position. Aggregates built from the calls (a sharded
// webserver.Identifier) come out identical to the ordered path; the
// record ordering itself is not reproduced — callers that need ordered
// delivery use streamWeekWith. workers <= 1 observes inline on the
// caller's goroutine, still passing stream positions.
func (e *Env) streamWeekSharded(ctx context.Context, gen *traffic.Generator, isoWeek, workers int, obs dissect.ShardObserver) (dissect.Counts, traffic.WeekStats, float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	inj := e.injector(isoWeek)
	var seq sflow.SeqTracker

	var counts dissect.Counts
	var stats traffic.WeekStats
	var err error
	if workers <= 1 {
		cls := dissect.NewClassifier(e.members())
		cls.SetMetrics(e.M.DissectMetrics())
		var sampleSeq uint64
		fn := func(rec *dissect.Record) {
			if obs != nil {
				obs(0, rec, sampleSeq)
			}
			sampleSeq++
		}
		base := func(d *sflow.Datagram) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			seq.Observe(d)
			cls.ClassifyDatagram(d, &counts, fn)
			return nil
		}
		sink := base
		if inj != nil {
			sink = inj.Sink(base)
		}
		col := ixp.NewCollector(e.Fabric, e.Opts.SamplingRate, sink)
		col.SetMetrics(e.M.CollectorMetrics())
		col.SetBufferReuse(true)
		stats, err = gen.GenerateWeek(isoWeek, col)
		if err == nil && inj != nil {
			err = inj.Flush(base)
		}
	} else {
		sp := dissect.NewShardedStreamProcessor(ctx, e.members(), workers, obs, e.M.DissectMetrics())
		base := func(d *sflow.Datagram) error {
			seq.Observe(d)
			return sp.Add(d)
		}
		sink := base
		if inj != nil {
			sink = inj.Sink(base)
		}
		col := ixp.NewCollector(e.Fabric, e.Opts.SamplingRate, sink)
		col.SetMetrics(e.M.CollectorMetrics())
		col.SetBufferReuse(true)
		stats, err = gen.GenerateWeek(isoWeek, col)
		if err == nil && inj != nil {
			err = inj.Flush(base)
		}
		counts = sp.Close()
	}
	if err != nil {
		return counts, stats, seq.EstLoss(), err
	}
	est, err := e.checkLoss(isoWeek, seq.Stats())
	return counts, stats, est, err
}

// Week is the fully analysed weekly snapshot.
type Week struct {
	ISOWeek  int
	Truth    traffic.WeekStats
	Counts   dissect.Counts
	Servers  *webserver.Result
	Metas    []metadata.ServerMeta
	Coverage metadata.Coverage
	Clusters *cluster.Result
	// Products holds every registered analyzer's finished product from
	// the week's single fused pass.
	Products *analysis.Products
	// Visibility and Links are the typed views of Products — nil when
	// the Env's registry omitted the analyzer.
	Visibility *analysis.VisibilityProduct
	Links      *analysis.LinksProduct
	// EstLoss is the week's estimated datagram loss fraction — the
	// capture's data-quality annotation, also carried on Servers.
	EstLoss float64
}

// ctxSource makes a pull-based dissection pass cancellable: Next fails
// with the context's error once it is cancelled.
type ctxSource struct {
	ctx context.Context
	src dissect.DatagramSource
}

func (c *ctxSource) Next(d *sflow.Datagram) error {
	if err := c.ctx.Err(); err != nil {
		return err
	}
	return c.src.Next(d)
}

// AnalyzeWeek runs the complete per-week pipeline: ONE pass over the
// week's samples feeds every analyzer in the Env's registry
// (identification, visibility, link flows, ...) simultaneously, instead
// of one rewind per analysis. When src is nil the week is streamed —
// classified as it is generated, with bounded memory — and the returned
// source is a ReplaySource that regenerates the identical stream for
// callers that need further passes. Passing a non-nil rewindable source
// (a buffered SliceSource, or a Replay from an earlier call) dissects
// that instead, tracking sequence gaps so a lossy capture is annotated
// just like a lossy live stream. Note that replay sources regenerate
// pristine traffic: configured faults apply to live capture/stream
// passes, not to replays.
func (e *Env) AnalyzeWeek(ctx context.Context, isoWeek int, src dissect.RewindableSource) (*Week, dissect.RewindableSource, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	reg := e.Registry()
	actx := e.AnalysisContext()
	var truth traffic.WeekStats
	var counts dissect.Counts
	var est float64
	var run *analysis.Run
	if src == nil {
		// Streamed weeks fan records into per-worker analyzer shards;
		// each analyzer's deterministic merge inside Finish reproduces
		// the ordered path's aggregates exactly (the golden-equivalence
		// test pins it).
		workers := streamWorkers()
		run = reg.NewRun(actx, workers)
		var err error
		counts, truth, est, err = e.streamWeekSharded(ctx, e.Gen, isoWeek, workers, run.Observe)
		if err != nil {
			return nil, nil, err
		}
		src = e.Replay(isoWeek)
	} else {
		run = reg.NewRun(actx, 1)
		cls := dissect.NewClassifier(e.members())
		cls.SetMetrics(e.M.DissectMetrics())
		var seq sflow.SeqTracker
		var sampleSeq uint64
		var err error
		counts, err = dissect.Process(
			&ctxSource{ctx, &faultline.TrackSource{Src: src, Seq: &seq}}, cls,
			func(rec *dissect.Record) {
				run.Observe(0, rec, sampleSeq)
				sampleSeq++
			})
		if err != nil {
			return nil, nil, err
		}
		if est, err = e.checkLoss(isoWeek, seq.Stats()); err != nil {
			return nil, nil, err
		}
		src.Reset()
	}
	prods, err := run.Finish(isoWeek)
	if err != nil {
		return nil, nil, err
	}
	res := prods.Webserver()
	if res == nil {
		return nil, nil, errors.New("pipeline: analyzer registry lacks the webserver analyzer")
	}
	res.EstLoss = est
	metas, cov := metadata.Collect(res, e.DNS)

	opts := cluster.DefaultOptions()
	opts.KnownShared = e.DNS.PublicDNSProviders()
	// The entity table both memoizes the per-IP AS resolution and interns
	// authority names for the vote bookkeeping.
	opts.Entities = e.EntityTable()
	clusters := cluster.Run(metas, opts)

	return &Week{
		ISOWeek:    isoWeek,
		Truth:      truth,
		Counts:     counts,
		Servers:    res,
		Metas:      metas,
		Coverage:   cov,
		Clusters:   clusters,
		Products:   prods,
		Visibility: prods.Visibility(),
		Links:      prods.Links(),
		EstLoss:    est,
	}, src, nil
}

// IdentifyWeek runs the light per-week pipeline (dissection and server
// identification only) — what the longitudinal analysis needs for each
// of the 17 weeks. Records fan into per-worker identifier shards (no
// ordered merge), so observation scales with the classifier pool; the
// deterministic shard merge inside Identify keeps the result identical
// to IdentifyWeekSerial. The returned result carries the week's
// estimated loss annotation.
func (e *Env) IdentifyWeek(ctx context.Context, isoWeek int) (*webserver.Result, dissect.Counts, traffic.WeekStats, error) {
	workers := streamWorkers()
	ident := webserver.NewSharded(workers)
	ident.SetMetrics(e.M.IdentifyMetrics())
	counts, truth, est, err := e.streamWeekSharded(ctx, e.Gen, isoWeek, workers, ident.ObserveShard)
	if err != nil {
		return nil, counts, truth, err
	}
	res := ident.Identify(isoWeek, e.Crawler)
	res.EstLoss = est
	return res, counts, truth, nil
}

// IdentifyWeekSerial is the ordered-merge reference path: classification
// may still run on a worker pool, but every record is observed by a
// single identifier from the merger goroutine, in exact stream order.
// It exists for callers that need the pre-shard behaviour (and for the
// golden-equivalence test and benchmarks that prove the sharded path
// matches it).
func (e *Env) IdentifyWeekSerial(ctx context.Context, isoWeek int) (*webserver.Result, dissect.Counts, traffic.WeekStats, error) {
	ident := webserver.NewIdentifier()
	ident.SetMetrics(e.M.IdentifyMetrics())
	counts, truth, est, err := e.StreamWeek(ctx, isoWeek, ident.Observe)
	if err != nil {
		return nil, counts, truth, err
	}
	res := ident.Identify(isoWeek, e.Crawler)
	res.EstLoss = est
	return res, counts, truth, nil
}

// Observation converts an identification result into the churn
// tracker's input, resolving every server IP through the Env's entity
// table — one memoized lookup per address, instead of re-running the
// RIB trie and geo binary search for the same server IPs week after
// week — and forwarding the loss annotation.
func (e *Env) Observation(res *webserver.Result) churn.WeekObservation {
	tab := e.EntityTable()
	obs := churn.WeekObservation{
		Week:    res.Week,
		Servers: make(map[packet.IPv4Addr]churn.ServerObs, len(res.Servers)),
		EstLoss: res.EstLoss,
	}
	for ip, srv := range res.Servers {
		_, a := tab.ResolveAttrs(ip)
		obs.Servers[ip] = churn.ServerObs{
			Bytes:  srv.Bytes,
			HTTPS:  srv.HTTPS,
			Member: srv.Member,
			Region: tab.Countries.Value(a.RegionID),
			ASN:    a.ASN,
			Prefix: a.Prefix,
		}
	}
	return obs
}

// TrackWeeks runs the light pipeline over every study week and returns
// the filled churn tracker plus per-week identification results. Weeks
// are processed concurrently (they are independent: a generator per
// worker, shared read-only substrates) and folded into the tracker in
// chronological order. Cancelling ctx stops dispatching new weeks and
// unwinds in-flight ones within one datagram flush; the call then
// returns the context's error with no goroutines left behind.
//
// A week that fails (loss budget, fault injection) no longer aborts the
// campaign: it is recorded as a gap in the tracker, its slot in the
// results stays nil, and the call returns the tracker and results
// alongside a WeekErrors value naming every failed week. Callers that
// cannot tolerate partial coverage keep their old behaviour by treating
// any non-nil error as fatal; callers that can, errors.As into
// WeekErrors and continue with the gap-annotated series.
func (e *Env) TrackWeeks(ctx context.Context) (*churn.Tracker, []*webserver.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := &e.World.Cfg

	// Pre-build the lazily cached substrates so workers only read.
	e.World.RIB()
	e.World.GeoDB()
	e.EntityTable()
	if len(e.World.Servers) > 0 {
		e.World.ServerByIP(e.World.Servers[0].IP)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Weeks {
		workers = cfg.Weeks
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]*webserver.Result, cfg.Weeks)
	errs := make([]error, cfg.Weeks)
	weekCh := make(chan int)
	var wg sync.WaitGroup
	var wallStart time.Time
	if e.M != nil {
		wallStart = time.Now()
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := traffic.NewGenerator(e.World, e.DNS, e.Fabric, e.Opts)
			for idx := range weekCh {
				if err := ctx.Err(); err != nil {
					errs[idx] = err
					continue
				}
				isoWeek := cfg.FirstWeek + idx
				var weekStart time.Time
				if e.M != nil {
					weekStart = time.Now()
				}
				ident := webserver.NewIdentifier()
				ident.SetMetrics(e.M.IdentifyMetrics())
				// Weeks already run in parallel here; keep each week's
				// classifier inline (workers=1) to avoid oversubscription.
				_, _, est, err := e.streamWeekWith(ctx, gen, isoWeek, 1, ident.Observe)
				if err != nil {
					errs[idx] = err
					continue
				}
				results[idx] = ident.Identify(isoWeek, e.Crawler)
				results[idx].EstLoss = est
				if e.M != nil {
					busy := time.Since(weekStart)
					e.M.WeekNanos.Observe(uint64(busy))
					e.M.Weeks.Inc()
					e.M.WorkerBusy.Add(uint64(busy))
				}
			}
		}()
	}
	for idx := 0; idx < cfg.Weeks; idx++ {
		select {
		case weekCh <- idx:
		case <-ctx.Done():
			// Stop feeding; in-flight weeks unwind via their sinks.
		}
		if ctx.Err() != nil {
			break
		}
	}
	close(weekCh)
	wg.Wait()
	if e.M != nil {
		// Utilization: the share of the worker pool's wall-clock capacity
		// that went into week work. 100% means every worker was busy the
		// whole run.
		if wall := time.Since(wallStart); wall > 0 {
			pct := 100 * float64(e.M.WorkerBusy.Value()) / (float64(wall) * float64(workers))
			e.M.Utilization.Set(int64(pct))
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	// The tracker shares the Env's entity table: per-IP histories become
	// slice-indexed by dense ID instead of address-keyed maps. A failed
	// week becomes an explicit gap — the campaign degrades to partial
	// results plus a typed per-week error set instead of aborting, so
	// callers (the supervisor, ixpreport) decide how much loss they
	// tolerate.
	tracker := churn.NewTrackerWith(e.Entities)
	var werrs WeekErrors
	for idx := 0; idx < cfg.Weeks; idx++ {
		isoWeek := cfg.FirstWeek + idx
		if errs[idx] != nil {
			werrs = append(werrs, &WeekError{Week: isoWeek, Err: errs[idx]})
			if err := tracker.AddGap(isoWeek); err != nil {
				return nil, nil, err
			}
			continue
		}
		if err := tracker.Add(e.Observation(results[idx])); err != nil {
			return nil, nil, err
		}
	}
	if len(werrs) > 0 {
		return tracker, results, werrs
	}
	return tracker, results, nil
}

// AlexaList builds the week's top-site list.
func (e *Env) AlexaList(isoWeek int) *alexa.List {
	return alexa.Build(e.DNS, isoWeek, e.World.Cfg.Seed)
}

// String summarizes the environment.
func (e *Env) String() string {
	return fmt.Sprintf("env{ASes=%d prefixes=%d orgs=%d servers=%d members=%d..%d}",
		len(e.World.ASes), len(e.World.Prefixes), len(e.World.Orgs), len(e.World.Servers),
		e.World.Cfg.MembersStart, e.World.Cfg.MembersEnd)
}
