package pipeline_test

import (
	"context"
	"strings"
	"testing"

	"ixplens/internal/netmodel"
	"ixplens/internal/obs"
	. "ixplens/internal/pipeline"
	"ixplens/internal/traffic"
)

func newEnv(t testing.TB) *Env {
	t.Helper()
	env, err := NewEnv(netmodel.Tiny(), traffic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestNewEnvRejectsBadConfig(t *testing.T) {
	cfg := netmodel.Tiny()
	cfg.Weeks = 0
	if _, err := NewEnv(cfg, traffic.DefaultOptions()); err == nil {
		t.Fatal("invalid config must fail")
	}
}

func TestAnalyzeWeekEndToEnd(t *testing.T) {
	env := newEnv(t)
	wk, src, err := env.AnalyzeWeek(context.Background(), 45, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wk.ISOWeek != 45 {
		t.Fatalf("week = %d", wk.ISOWeek)
	}
	if wk.Counts.Total != wk.Truth.Samples {
		t.Fatalf("dissect total %d != truth %d", wk.Counts.Total, wk.Truth.Samples)
	}
	if len(wk.Servers.Servers) == 0 || len(wk.Metas) == 0 || len(wk.Clusters.Clusters) == 0 {
		t.Fatal("pipeline stages empty")
	}
	if src == nil {
		t.Fatal("capture not returned for second passes")
	}
	// The returned source must be rewound and reusable.
	n := 0
	var d = src
	_ = d
	wk2, _, err := env.AnalyzeWeek(context.Background(), 45, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(wk2.Servers.Servers) != len(wk.Servers.Servers) {
		t.Fatalf("re-analysis differs: %d vs %d servers", len(wk2.Servers.Servers), len(wk.Servers.Servers))
	}
	_ = n
}

func TestObservationResolvesEverything(t *testing.T) {
	env := newEnv(t)
	res, _, _, err := env.IdentifyWeek(context.Background(), 45)
	if err != nil {
		t.Fatal(err)
	}
	obs := env.Observation(res)
	if obs.Week != 45 || len(obs.Servers) != len(res.Servers) {
		t.Fatal("observation shape wrong")
	}
	for ip, so := range obs.Servers {
		if so.ASN == 0 {
			t.Fatalf("server %v without ASN", ip)
		}
		if so.Region == "" {
			t.Fatalf("server %v without region", ip)
		}
	}
}

func TestAlexaListAvailable(t *testing.T) {
	env := newEnv(t)
	l := env.AlexaList(45)
	if len(l.Domains) == 0 {
		t.Fatal("empty alexa list")
	}
}

func TestEnvString(t *testing.T) {
	env := newEnv(t)
	s := env.String()
	if !strings.Contains(s, "ASes=") || !strings.Contains(s, "servers=") {
		t.Fatalf("String() = %q", s)
	}
}

func TestTrackWeeksParallelConsistent(t *testing.T) {
	cfg := netmodel.Tiny()
	cfg.Weeks = 4
	opts := traffic.Options{SamplesPerWeek: 4000, SamplingRate: 16384, SnapLen: 128}
	env, err := NewEnv(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	tracker, results, err := env.TrackWeeks(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tracker.NumWeeks() != 4 || len(results) != 4 {
		t.Fatalf("tracked %d weeks, %d results", tracker.NumWeeks(), len(results))
	}
	// The parallel result must equal a fresh sequential re-run of one
	// week (generation is deterministic per week).
	res45, _, _, err := env.IdentifyWeek(context.Background(), cfg.FirstWeek+2)
	if err != nil {
		t.Fatal(err)
	}
	got := results[2]
	if len(got.Servers) != len(res45.Servers) {
		t.Fatalf("parallel week differs: %d vs %d servers", len(got.Servers), len(res45.Servers))
	}
	for ip := range res45.Servers {
		if _, ok := got.Servers[ip]; !ok {
			t.Fatalf("server %v missing from parallel result", ip)
		}
	}
}

// TestInstrumentedPipelineConsistency attaches a registry and checks
// that the cross-stage invariants the metrics promise actually hold:
// every exported sample is classified exactly once, the crawl funnel
// matches the identification result, and TrackWeeks times every week.
func TestInstrumentedPipelineConsistency(t *testing.T) {
	env := newEnv(t)
	reg := obs.NewRegistry()
	env.Instrument(reg)

	res, counts, _, err := env.IdentifyWeek(context.Background(), 45)
	if err != nil {
		t.Fatal(err)
	}
	samples := reg.Counter("ixp_samples_total").Value()
	records := reg.Counter("dissect_records_total").Value()
	if samples == 0 || samples != records {
		t.Fatalf("exported %d samples but classified %d records", samples, records)
	}
	if records != uint64(counts.Total) {
		t.Fatalf("metrics saw %d records, tallies %d", records, counts.Total)
	}
	if got := reg.Counter("webserver_crawl_attempts_total").Value(); got != uint64(res.Candidates443) {
		t.Fatalf("crawl attempts %d != candidates %d", got, res.Candidates443)
	}
	if reg.Counter("ixp_flushes_total").Value() == 0 {
		t.Fatal("no collector flushes recorded")
	}
	if reg.Counter("ixp_buffer_reuses_total").Value() == 0 {
		t.Fatal("streaming path did not record buffer reuse")
	}
	if reg.Counter("webserver_hosts_extracted_total").Value() == 0 {
		t.Fatal("no Host headers recorded")
	}

	// TrackWeeks on a freshly instrumented env: one timing observation
	// per week, and a utilization figure in (0, 100].
	env.Instrument(reg)
	if _, _, err := env.TrackWeeks(context.Background()); err != nil {
		t.Fatal(err)
	}
	weeks := uint64(env.World.Cfg.Weeks)
	if got := reg.Counter("pipeline_weeks_total").Value(); got != weeks {
		t.Fatalf("timed %d weeks, world has %d", got, weeks)
	}
	if got := reg.Histogram("pipeline_week_ns").Count(); got != weeks {
		t.Fatalf("week histogram has %d observations, want %d", got, weeks)
	}
	util := reg.Gauge("pipeline_worker_utilization_pct").Value()
	if util <= 0 || util > 100 {
		t.Fatalf("worker utilization %d%% out of range", util)
	}

	// Detaching must stop the counters moving.
	env.Instrument(nil)
	before := reg.Counter("ixp_samples_total").Value()
	if _, _, _, err := env.IdentifyWeek(context.Background(), 46); err != nil {
		t.Fatal(err)
	}
	if after := reg.Counter("ixp_samples_total").Value(); after != before {
		t.Fatal("detached env still updated metrics")
	}
}
