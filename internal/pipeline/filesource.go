package pipeline

import (
	"os"

	"ixplens/internal/sflow"
)

// FileSource is a rewindable datagram source backed by a capture file in
// either container format (v1 stream or v2 block — sniffed per open via
// sflow.OpenReader). Where ReplaySource rewinds by regenerating traffic,
// FileSource rewinds by reopening the file, so multi-pass analyses
// (link attribution, heterogeneity) work on captures whose generating
// environment is unavailable — including anonymized ones.
//
// It implements dissect.RewindableSource. Reset is lazy: the file is
// reopened on the following Next, and open errors surface there. The
// handed-out datagram follows the usual aliasing contract (valid until
// the next Next/Reset). Not safe for concurrent use.
type FileSource struct {
	path string
	f    *os.File
	r    sflow.DatagramReader
	err  error
}

// OpenFileSource opens a capture file as a rewindable source. The first
// open is eager so unreadable paths and unknown container magics fail
// here rather than mid-pass.
func OpenFileSource(path string) (*FileSource, error) {
	s := &FileSource{path: path}
	if err := s.open(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *FileSource) open() error {
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	r, err := sflow.OpenReader(f)
	if err != nil {
		f.Close()
		return err
	}
	s.f, s.r = f, r
	return nil
}

// Next implements dissect.DatagramSource.
func (s *FileSource) Next(d *sflow.Datagram) error {
	if s.err != nil {
		return s.err
	}
	if s.r == nil {
		if err := s.open(); err != nil {
			s.err = err
			return err
		}
	}
	return s.r.Next(d)
}

// Stats returns the block accounting of the pass in progress (or the
// finished one, before the next Reset). ok is false for v1 captures,
// which carry no block structure.
func (s *FileSource) Stats() (st sflow.BlockStats, ok bool) {
	if br, is := s.r.(*sflow.BlockReader); is {
		return br.Stats(), true
	}
	return sflow.BlockStats{}, false
}

// Reset implements dissect.RewindableSource: the next Next re-reads the
// file from the start.
func (s *FileSource) Reset() {
	if s.f != nil {
		s.f.Close()
	}
	s.f, s.r, s.err = nil, nil, nil
}

// Close releases the underlying file. The source stays resettable:
// another Next reopens it.
func (s *FileSource) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f, s.r, s.err = nil, nil, nil
	return err
}
