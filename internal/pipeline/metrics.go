package pipeline

import (
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/webserver"
	"ixplens/internal/entity"
	"ixplens/internal/ixp"
	"ixplens/internal/obs"
	"ixplens/internal/sflow"
)

// Metrics bundles the per-stage observability of one environment: the
// collector's export path, the dissection cascade, server
// identification, and the longitudinal driver itself. A nil *Metrics
// (the default — see Env.Instrument) disables instrumentation
// everywhere; the accessors below are nil-safe so wiring code never has
// to branch.
type Metrics struct {
	Registry  *obs.Registry
	Collector *ixp.CollectorMetrics
	Dissect   *dissect.Metrics
	Identify  *webserver.Metrics
	// Entity tracks the interning layer: memo hits/misses and table size.
	Entity *entity.Metrics
	// WeekNanos is the wall-time distribution of one week's light
	// pipeline run (stream + identify); Weeks counts completed weeks.
	WeekNanos *obs.Histogram
	Weeks     *obs.Counter
	// WorkerBusy accumulates the nanoseconds TrackWeeks workers spent on
	// week work; Utilization is busy time over wall time × workers, in
	// percent, set once per TrackWeeks run.
	WorkerBusy  *obs.Counter
	Utilization *obs.Gauge
	// SeqGaps counts datagrams inferred lost from sFlow sequence gaps
	// across all analysed weeks; EstLossBP is the latest analysed week's
	// estimated loss fraction in basis points (1/100 of a percent).
	SeqGaps   *obs.Counter
	EstLossBP *obs.Gauge
	// Capture-file (v2 block container) accounting: blocks read and
	// verified, blocks quarantined by checksum, datagrams lost inside
	// them, crash-truncated files encountered, and decoded-vs-on-disk
	// payload volume.
	CaptureBlocks        *obs.Counter
	CaptureBlocksCorrupt *obs.Counter
	CaptureQuarantined   *obs.Counter
	CaptureTruncated     *obs.Counter
	CaptureRawBytes      *obs.Counter
	CaptureDiskBytes     *obs.Counter
}

// NewMetrics builds the full bundle against a registry; nil in, nil out.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Registry:    r,
		Collector:   ixp.NewCollectorMetrics(r),
		Dissect:     dissect.NewMetrics(r),
		Identify:    webserver.NewMetrics(r),
		Entity:      entity.NewMetrics(r),
		WeekNanos:   r.Histogram("pipeline_week_ns"),
		Weeks:       r.Counter("pipeline_weeks_total"),
		WorkerBusy:  r.Counter("pipeline_worker_busy_ns"),
		Utilization: r.Gauge("pipeline_worker_utilization_pct"),
		SeqGaps:     r.Counter("pipeline_seq_gap_datagrams_total"),
		EstLossBP:   r.Gauge("pipeline_est_loss_bp"),

		CaptureBlocks:        r.Counter("capture_blocks_read_total"),
		CaptureBlocksCorrupt: r.Counter("capture_blocks_corrupt_total"),
		CaptureQuarantined:   r.Counter("capture_datagrams_quarantined_total"),
		CaptureTruncated:     r.Counter("capture_truncated_files_total"),
		CaptureRawBytes:      r.Counter("capture_block_raw_bytes_total"),
		CaptureDiskBytes:     r.Counter("capture_block_disk_bytes_total"),
	}
}

// observeSeq folds one week's sequence-gap accounting into the bundle.
// Nil-safe like every accessor.
func (m *Metrics) observeSeq(st sflow.SeqStats) {
	if m == nil {
		return
	}
	m.SeqGaps.Add(st.GapDatagrams)
	m.EstLossBP.Set(int64(st.EstLoss() * 10_000))
}

// ObserveCapture folds one capture file's block accounting into the
// bundle. Nil-safe like every accessor.
func (m *Metrics) ObserveCapture(st sflow.BlockStats) {
	if m == nil {
		return
	}
	m.CaptureBlocks.Add(st.Blocks)
	m.CaptureBlocksCorrupt.Add(st.CorruptBlocks)
	m.CaptureQuarantined.Add(st.QuarantinedDatagrams)
	m.CaptureRawBytes.Add(st.RawBytes)
	m.CaptureDiskBytes.Add(st.DiskBytes)
	if st.Truncated {
		m.CaptureTruncated.Inc()
	}
}

// CollectorMetrics returns the collector sub-bundle, nil when disabled.
func (m *Metrics) CollectorMetrics() *ixp.CollectorMetrics {
	if m == nil {
		return nil
	}
	return m.Collector
}

// DissectMetrics returns the dissection sub-bundle, nil when disabled.
func (m *Metrics) DissectMetrics() *dissect.Metrics {
	if m == nil {
		return nil
	}
	return m.Dissect
}

// IdentifyMetrics returns the identification sub-bundle, nil when
// disabled.
func (m *Metrics) IdentifyMetrics() *webserver.Metrics {
	if m == nil {
		return nil
	}
	return m.Identify
}

// Instrument attaches an observability registry to the environment:
// every pipeline run after the call feeds the per-stage metric bundles
// built against r. Passing nil detaches instrumentation (the default
// state of a fresh Env).
func (e *Env) Instrument(r *obs.Registry) {
	e.M = NewMetrics(r)
	if e.Entities != nil {
		if e.M != nil {
			e.Entities.SetMetrics(e.M.Entity)
		} else {
			e.Entities.SetMetrics(nil)
		}
	}
}
