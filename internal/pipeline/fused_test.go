package pipeline

import (
	"bytes"
	"context"
	"sort"
	"testing"

	"ixplens/internal/analysis"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/visibility"
	"ixplens/internal/netmodel"
	"ixplens/internal/sflow"
	"ixplens/internal/traffic"
)

// countingSource counts the datagrams pulled through it, so a test can
// prove how many decode passes a pipeline stage really made.
type countingSource struct {
	src    dissect.RewindableSource
	nexts  int
	resets int
}

func (c *countingSource) Next(d *sflow.Datagram) error {
	c.nexts++
	return c.src.Next(d)
}

func (c *countingSource) Reset() {
	c.resets++
	c.src.Reset()
}

// TestAnalyzeWeekSinglePass pins the fused pass's core promise: the
// capture is decoded exactly ONCE regardless of how many analyzers are
// registered — adding an analysis perspective must never add a rescan.
func TestAnalyzeWeekSinglePass(t *testing.T) {
	env := goldenEnv(t)
	ctx := context.Background()
	src, _, err := env.CaptureWeek(ctx, 45)
	if err != nil {
		t.Fatal(err)
	}

	pulls := func(list string) (int, int, *Week) {
		t.Helper()
		reg, err := analysis.Select(list)
		if err != nil {
			t.Fatal(err)
		}
		env.Analyzers = reg
		src.Reset()
		cs := &countingSource{src: src}
		wk, _, err := env.AnalyzeWeek(ctx, 45, cs)
		if err != nil {
			t.Fatal(err)
		}
		return cs.nexts, cs.resets, wk
	}

	oneNexts, oneResets, oneWk := pulls("webserver")
	allNexts, allResets, allWk := pulls("all")
	env.Analyzers = nil

	if want := len(src.Datagrams) + 1; oneNexts != want { // every datagram once, plus EOF
		t.Fatalf("single-analyzer run pulled %d datagrams, want %d", oneNexts, want)
	}
	if allNexts != oneNexts {
		t.Fatalf("three analyzers pulled %d datagrams, one analyzer pulled %d — the pass is not fused",
			allNexts, oneNexts)
	}
	if oneResets != 1 || allResets != 1 {
		t.Fatalf("unexpected rewinds: %d and %d, want 1 each", oneResets, allResets)
	}

	// The fan-out must not perturb any single analyzer's aggregates.
	a, err := (&analysis.WebserverProduct{Res: oneWk.Servers}).AppendEncode(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&analysis.WebserverProduct{Res: allWk.Servers}).AppendEncode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("webserver product changed when more analyzers joined the pass")
	}
	if oneWk.Visibility != nil || oneWk.Links != nil {
		t.Fatal("narrowed registry still produced deselected products")
	}
	if allWk.Visibility == nil || allWk.Links == nil {
		t.Fatal("full registry missing analyzer products")
	}
}

// TestGoldenAnalyzerEquivalence is the refactor's acceptance proof: for
// every study week, the fused sharded pass must produce products
// byte-identical to the pre-refactor multi-pass reference — the serial
// ordered-merge identifier, a dedicated visibility pass, and an
// independent per-record flow aggregation reimplemented here.
func TestGoldenAnalyzerEquivalence(t *testing.T) {
	env, err := NewEnv(netmodel.Tiny(),
		traffic.Options{SamplesPerWeek: 2000, SamplingRate: 16384, SnapLen: 128})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &env.World.Cfg
	ctx := context.Background()

	for wk := cfg.FirstWeek; wk <= cfg.LastWeek(); wk++ {
		fused, _, err := env.AnalyzeWeek(ctx, wk, nil)
		if err != nil {
			t.Fatalf("week %d fused: %v", wk, err)
		}

		// Reference pass 1: serial ordered-merge identification.
		serial, counts, _, err := env.IdentifyWeekSerial(ctx, wk)
		if err != nil {
			t.Fatalf("week %d serial: %v", wk, err)
		}
		if counts != fused.Counts {
			t.Fatalf("week %d counts diverged:\nserial %+v\nfused  %+v", wk, counts, fused.Counts)
		}
		wantWS, err := (&analysis.WebserverProduct{Res: serial}).AppendEncode(nil)
		if err != nil {
			t.Fatal(err)
		}
		gotWS, err := (&analysis.WebserverProduct{Res: fused.Servers}).AppendEncode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantWS, gotWS) {
			t.Fatalf("week %d: fused webserver product differs from serial reference", wk)
		}

		// Reference passes 2 and 3 ride one replay: the bespoke
		// visibility aggregation and an independent flow roll-up, the way
		// the pre-registry code rescanned the week per analysis.
		agg := visibility.NewAggregatorWith(env.EntityTable())
		flows := make(map[analysis.FlowKey]*analysis.Flow)
		cls := dissect.NewClassifier(env.Fabric)
		if _, err := dissect.Process(env.Replay(wk), cls, func(rec *dissect.Record) {
			agg.Observe(rec)
			if !rec.Class.IsPeering() {
				return
			}
			k := analysis.FlowKey{Src: rec.SrcIP, Dst: rec.DstIP, In: rec.InMember, Out: rec.OutMember}
			f := flows[k]
			if f == nil {
				f = &analysis.Flow{FlowKey: k}
				flows[k] = f
			}
			f.Bytes += rec.Bytes
			f.Samples++
		}); err != nil {
			t.Fatalf("week %d reference pass: %v", wk, err)
		}

		wantVis, err := (&analysis.VisibilityProduct{PerIP: agg.PerIP()}).AppendEncode(nil)
		if err != nil {
			t.Fatal(err)
		}
		gotVis, err := fused.Visibility.AppendEncode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantVis, gotVis) {
			t.Fatalf("week %d: fused visibility product differs from dedicated-pass reference", wk)
		}

		ref := &analysis.LinksProduct{Flows: make([]analysis.Flow, 0, len(flows))}
		for _, f := range flows {
			ref.Flows = append(ref.Flows, *f)
		}
		sort.Slice(ref.Flows, func(i, j int) bool {
			a, b := &ref.Flows[i].FlowKey, &ref.Flows[j].FlowKey
			if a.Src != b.Src {
				return a.Src < b.Src
			}
			if a.Dst != b.Dst {
				return a.Dst < b.Dst
			}
			if a.In != b.In {
				return a.In < b.In
			}
			return a.Out < b.Out
		})
		wantLinks, err := ref.AppendEncode(nil)
		if err != nil {
			t.Fatal(err)
		}
		gotLinks, err := fused.Links.AppendEncode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantLinks, gotLinks) {
			t.Fatalf("week %d: fused links product differs from independent roll-up", wk)
		}
	}
}
