package pipeline

import (
	"context"
	"reflect"
	"testing"

	"ixplens/internal/core/churn"
	"ixplens/internal/core/dissect"
	"ixplens/internal/core/visibility"
	"ixplens/internal/faultline"
	"ixplens/internal/netmodel"
	"ixplens/internal/traffic"
)

func goldenEnv(t testing.TB) *Env {
	t.Helper()
	env, err := NewEnv(netmodel.Tiny(),
		traffic.Options{SamplesPerWeek: 4000, SamplingRate: 16384, SnapLen: 128})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestGoldenShardedMatchesSerial is the refactor's equivalence proof:
// over every study week, the sharded pipeline (records fanned into
// per-worker identifier shards, merged deterministically in Identify)
// must produce results bit-identical to the pre-refactor ordered-merge
// serial path — identification aggregates, the derived churn series,
// and the visibility summaries alike.
func TestGoldenShardedMatchesSerial(t *testing.T) {
	env := goldenEnv(t)
	cfg := &env.World.Cfg
	ctx := context.Background()

	serialTracker := churn.NewTracker()
	shardedTracker := churn.NewTrackerWith(env.EntityTable())
	for wk := cfg.FirstWeek; wk <= cfg.LastWeek(); wk++ {
		serial, serialCounts, _, err := env.IdentifyWeekSerial(ctx, wk)
		if err != nil {
			t.Fatalf("week %d serial: %v", wk, err)
		}
		sharded, shardedCounts, _, err := env.IdentifyWeek(ctx, wk)
		if err != nil {
			t.Fatalf("week %d sharded: %v", wk, err)
		}
		if serialCounts != shardedCounts {
			t.Fatalf("week %d counts diverged:\nserial  %+v\nsharded %+v",
				wk, serialCounts, shardedCounts)
		}
		if !reflect.DeepEqual(serial, sharded) {
			t.Fatalf("week %d identification diverged: %d vs %d servers, %d vs %d bytes",
				wk, len(serial.Servers), len(sharded.Servers), serial.ServerBytes, sharded.ServerBytes)
		}
		if err := serialTracker.Add(env.Observation(serial)); err != nil {
			t.Fatal(err)
		}
		if err := shardedTracker.Add(env.Observation(sharded)); err != nil {
			t.Fatal(err)
		}
	}

	// The churn series must agree regardless of the history bookkeeping
	// (address-keyed maps vs dense entity-ID slices).
	serialChurn := serialTracker.Compute()
	shardedChurn := shardedTracker.Compute()
	if !reflect.DeepEqual(serialChurn, shardedChurn) {
		t.Fatal("churn series diverged between serial and sharded observations")
	}
	last := shardedChurn[len(shardedChurn)-1]
	if last.Total() == 0 || last.Share(churn.PoolStable) == 0 {
		t.Fatalf("degenerate final week: %+v", last)
	}
}

// TestGoldenAnalyzeWeekAggregates compares the full heavy pipeline:
// the streamed (sharded) AnalyzeWeek against the buffered (ordered,
// serial-observer) path, including the clustering built on interned
// authority IDs. Cluster IP orderings are iteration-order dependent
// upstream of this package, so sizes and aggregates are compared, not
// orderings.
func TestGoldenAnalyzeWeekAggregates(t *testing.T) {
	env := goldenEnv(t)
	ctx := context.Background()
	const wk = 45

	src, _, err := env.CaptureWeek(ctx, wk)
	if err != nil {
		t.Fatal(err)
	}
	buffered, _, err := env.AnalyzeWeek(ctx, wk, src)
	if err != nil {
		t.Fatal(err)
	}
	streamed, _, err := env.AnalyzeWeek(ctx, wk, nil)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(buffered.Servers, streamed.Servers) {
		t.Fatal("identification diverged between buffered and streamed AnalyzeWeek")
	}
	if buffered.Counts != streamed.Counts {
		t.Fatalf("counts diverged:\nbuffered %+v\nstreamed %+v", buffered.Counts, streamed.Counts)
	}
	if buffered.Coverage != streamed.Coverage {
		t.Fatalf("metadata coverage diverged: %+v vs %+v", buffered.Coverage, streamed.Coverage)
	}
	bc, sc := buffered.Clusters, streamed.Clusters
	if !reflect.DeepEqual(bc.StepIPs, sc.StepIPs) {
		t.Fatalf("step populations diverged: %+v vs %+v", bc.StepIPs, sc.StepIPs)
	}
	if !reflect.DeepEqual(bc.SharedAuthorities, sc.SharedAuthorities) {
		t.Fatal("shared-authority sets diverged")
	}
	if len(bc.Clusters) != len(sc.Clusters) {
		t.Fatalf("cluster counts diverged: %d vs %d", len(bc.Clusters), len(sc.Clusters))
	}
	for auth, b := range bc.Clusters {
		s := sc.Clusters[auth]
		if s == nil {
			t.Fatalf("cluster %q missing from streamed result", auth)
		}
		if len(b.IPs) != len(s.IPs) || b.Bytes != s.Bytes {
			t.Fatalf("cluster %q diverged: %d IPs/%d bytes vs %d IPs/%d bytes",
				auth, len(b.IPs), b.Bytes, len(s.IPs), s.Bytes)
		}
		if !reflect.DeepEqual(b.ASNs, s.ASNs) {
			t.Fatalf("cluster %q AS footprint diverged", auth)
		}
	}
	for ip, b := range bc.ByServer {
		if s, ok := sc.ByServer[ip]; !ok || s != b {
			t.Fatalf("assignment of %v diverged: %+v vs %+v", ip, b, sc.ByServer[ip])
		}
	}

	// Visibility summaries must not depend on whether the aggregator owns
	// its interning table or shares the environment's.
	src.Reset()
	private := visibility.NewAggregator(env.World.RIB(), env.World.GeoDB())
	shared := visibility.NewAggregatorWith(env.EntityTable())
	cls := dissect.NewClassifier(env.Fabric)
	if _, err := dissect.Process(src, cls, func(rec *dissect.Record) {
		private.Observe(rec)
		shared.Observe(rec)
	}); err != nil {
		t.Fatal(err)
	}
	if p, s := private.Summarize(nil), shared.Summarize(nil); p != s {
		t.Fatalf("visibility summaries diverged:\nprivate %+v\nshared  %+v", p, s)
	}
	pIPs, pBytes := private.TopCountries(10, nil)
	sIPs, sBytes := shared.TopCountries(10, nil)
	if !reflect.DeepEqual(pIPs, sIPs) || !reflect.DeepEqual(pBytes, sBytes) {
		t.Fatal("country rankings diverged between private and shared tables")
	}
}

// TestGoldenDeterministicAcrossRuns runs the sharded path twice over the
// same week: concurrent shard assignment must not leak into the result.
func TestGoldenDeterministicAcrossRuns(t *testing.T) {
	env := goldenEnv(t)
	ctx := context.Background()
	first, c1, _, err := env.IdentifyWeek(ctx, 40)
	if err != nil {
		t.Fatal(err)
	}
	second, c2, _, err := env.IdentifyWeek(ctx, 40)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("counts diverged across runs: %+v vs %+v", c1, c2)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("sharded identification not deterministic across runs")
	}
}

// TestGoldenFaultedWeek repeats the equivalence under deterministic
// fault injection: the replay/fault paths must stay byte-identical too.
func TestGoldenFaultedWeek(t *testing.T) {
	env := goldenEnv(t)
	env.Faults = &faultline.Config{Seed: 11, Drop: 0.05, Duplicate: 0.02, Reorder: 0.03}
	ctx := context.Background()
	serial, sc, _, err := env.IdentifyWeekSerial(ctx, 38)
	if err != nil {
		t.Fatal(err)
	}
	sharded, shc, _, err := env.IdentifyWeek(ctx, 38)
	if err != nil {
		t.Fatal(err)
	}
	if sc != shc {
		t.Fatalf("faulted counts diverged: %+v vs %+v", sc, shc)
	}
	if serial.EstLoss == 0 {
		t.Fatal("fault injection produced no estimated loss")
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatal("faulted-week identification diverged between serial and sharded paths")
	}
}
