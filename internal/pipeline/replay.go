package pipeline

import (
	"errors"
	"io"

	"ixplens/internal/ixp"
	"ixplens/internal/sflow"
	"ixplens/internal/traffic"
)

// ReplaySource re-materializes a week's datagram stream by deterministic
// regeneration instead of retained buffers: the traffic generator seeds
// its RNG from (config seed, ISO week) alone, so a fresh Generator
// driven over the same fabric reproduces the exact datagram sequence a
// live capture of that week emitted — byte for byte, including sFlow
// sequence numbers. Passes that need a second sweep (link attribution,
// heterogeneity) therefore rewind by regenerating, keeping per-week
// memory bounded where a SliceSource would hold the whole capture.
//
// A ReplaySource is lazy: the producing goroutine starts on the first
// Next and stops at end of stream. Reset (or Close) aborts an unfinished
// pass and rewinds; a source abandoned mid-stream must be Reset or
// Closed to release its producer. It implements
// dissect.RewindableSource and follows the DatagramSource aliasing
// contract: the datagram is valid until the following Next/Reset. Not
// safe for concurrent use by multiple consumers.
type ReplaySource struct {
	env     *Env
	isoWeek int

	ch   chan sflow.Datagram
	stop chan struct{}
	done chan struct{}
	err  error
}

// errReplayStopped aborts GenerateWeek from the sink when the consumer
// rewinds or closes mid-pass.
var errReplayStopped = errors.New("pipeline: replay pass aborted")

// Replay returns a rewindable datagram source that regenerates isoWeek
// on demand. The returned source is cheap until first read.
func (e *Env) Replay(isoWeek int) *ReplaySource {
	return &ReplaySource{env: e, isoWeek: isoWeek}
}

func (r *ReplaySource) start() {
	r.ch = make(chan sflow.Datagram, 4)
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func() {
		defer close(r.ch)
		defer close(r.done)
		// A fresh generator per pass is what makes replay deterministic;
		// the shared substrates (world, DNS, fabric) are read-only here.
		gen := traffic.NewGenerator(r.env.World, r.env.DNS, r.env.Fabric, r.env.Opts)
		col := ixp.NewCollector(r.env.Fabric, r.env.Opts.SamplingRate, func(d *sflow.Datagram) error {
			// Default (non-reuse) collector mode hands off fresh backing
			// arrays with every flush, so the shallow copy is safe.
			select {
			case r.ch <- *d:
				return nil
			case <-r.stop:
				return errReplayStopped
			}
		})
		if _, err := gen.GenerateWeek(r.isoWeek, col); err != nil && err != errReplayStopped {
			r.err = err
		}
	}()
}

// Next implements dissect.DatagramSource.
func (r *ReplaySource) Next(d *sflow.Datagram) error {
	if r.ch == nil {
		r.start()
	}
	dg, ok := <-r.ch
	if !ok {
		if r.err != nil {
			return r.err
		}
		return io.EOF
	}
	*d = dg
	return nil
}

// Reset rewinds to the beginning of the week, aborting an in-flight
// pass if one is running. The next Next starts a fresh regeneration.
func (r *ReplaySource) Reset() { r.release() }

// Close releases the producer goroutine of an abandoned pass. The
// source remains usable; Close is equivalent to Reset and exists for
// call sites that want to signal "done" rather than "again".
func (r *ReplaySource) Close() { r.release() }

func (r *ReplaySource) release() {
	if r.ch == nil {
		return
	}
	close(r.stop)
	for range r.ch {
	}
	<-r.done
	r.ch = nil
	r.err = nil
}
