package dnssim

import (
	"strings"
	"testing"

	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
)

func testDB(t testing.TB) (*netmodel.World, *DB) {
	t.Helper()
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return w, New(w)
}

func TestSitesSortedByPopularity(t *testing.T) {
	_, d := testDB(t)
	sites := d.Sites()
	if len(sites) == 0 {
		t.Fatal("no sites generated")
	}
	for i := 1; i < len(sites); i++ {
		if sites[i].Weight > sites[i-1].Weight {
			t.Fatalf("sites not sorted at %d", i)
		}
	}
}

func TestEveryOrgHasSites(t *testing.T) {
	w, d := testDB(t)
	for i := range w.Orgs {
		idxs := d.SitesOfOrg(int32(i))
		if len(idxs) == 0 {
			t.Fatalf("org %d has no sites", i)
		}
		for _, si := range idxs {
			if d.Site(si).Org != int32(i) {
				t.Fatalf("site index table corrupt for org %d", i)
			}
		}
	}
}

func TestSOASelfVsOutsourced(t *testing.T) {
	w, d := testDB(t)
	selfhosted, outsourced := 0, 0
	for i := range w.Orgs {
		o := &w.Orgs[i]
		root, ok := d.SOA(o.Domain)
		if !ok {
			t.Fatalf("org %d primary domain has no SOA", i)
		}
		if o.DNSProvider >= 0 {
			// Admin-preference model: most zones still reveal the org,
			// sloppy ones lead to the provider.
			if root != o.Domain && root != w.Orgs[o.DNSProvider].Domain {
				t.Fatalf("outsourced org %d SOA = %q, want own or provider domain", i, root)
			}
			if root == w.Orgs[o.DNSProvider].Domain {
				outsourced++
			} else {
				selfhosted++
			}
		} else {
			if root != o.Domain {
				t.Fatalf("self-hosted org %d SOA = %q, want own domain", i, root)
			}
			selfhosted++
		}
	}
	if outsourced == 0 || selfhosted == 0 {
		t.Fatalf("degenerate outsourcing mix: %d self, %d outsourced", selfhosted, outsourced)
	}
}

func TestSOAUnknownDomain(t *testing.T) {
	_, d := testDB(t)
	if _, ok := d.SOA("no-such-domain.invalid"); ok {
		t.Fatal("unknown domain must not resolve")
	}
}

func TestRegistrableDomain(t *testing.T) {
	cases := map[string]string{
		"edge-7.fra.acmecdn.net":     "acmecdn.net",
		"acmecdn.net":                "acmecdn.net",
		"static-1-2-3-4.hetzhost.de": "hetzhost.de",
		"a.b.c.d.org00001.co.uk":     "org00001.co.uk",
		"localhost":                  "localhost",
		"site-00042-001.info":        "site-00042-001.info",
		"www.site-00042-001.info":    "site-00042-001.info",
	}
	for in, want := range cases {
		if got := RegistrableDomain(in); got != want {
			t.Errorf("RegistrableDomain(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHostnameShapes(t *testing.T) {
	w, d := testDB(t)
	var orgNamed, hosterNamed, unnamed int
	for i := range w.Servers {
		s := &w.Servers[i]
		name, ok := d.Hostname(int32(i))
		if !ok {
			unnamed++
			continue
		}
		reg := RegistrableDomain(name)
		if s.Is(netmodel.SrvNamedByHoster) {
			owner, hasOwner := d.OwnerOrgOfAS(s.AS)
			if !hasOwner {
				t.Fatalf("hoster-named server %d in ownerless AS", i)
			}
			if reg != w.Orgs[owner].Domain {
				t.Fatalf("server %d hoster-named under %q, hosting org domain %q", i, reg, w.Orgs[owner].Domain)
			}
			hosterNamed++
		} else {
			if reg != w.Orgs[s.Org].Domain {
				t.Fatalf("server %d named under %q, org domain %q", i, reg, w.Orgs[s.Org].Domain)
			}
			orgNamed++
		}
	}
	if orgNamed == 0 || unnamed == 0 {
		t.Fatalf("hostname mix degenerate: %d org, %d hoster, %d none", orgNamed, hosterNamed, unnamed)
	}
	// DNS coverage should be in the ballpark of the paper's 71.7%.
	cov := float64(orgNamed+hosterNamed) / float64(len(w.Servers))
	if cov < 0.45 || cov > 0.95 {
		t.Fatalf("PTR coverage %.2f wildly off", cov)
	}
}

func TestPTRMatchesHostname(t *testing.T) {
	w, d := testDB(t)
	for i := range w.Servers {
		want, ok := d.Hostname(int32(i))
		got, ok2 := d.PTR(w.Servers[i].IP)
		if ok != ok2 || got != want {
			t.Fatalf("PTR disagrees with Hostname for server %d", i)
		}
		if ok {
			return // one positive case checked in detail is enough here
		}
	}
}

func TestResolversSpread(t *testing.T) {
	w, d := testDB(t)
	rs := d.Resolvers()
	if len(rs) < 20 {
		t.Fatalf("only %d resolvers", len(rs))
	}
	ases := map[int32]bool{}
	for _, r := range rs {
		ases[r.AS] = true
	}
	if len(ases) < len(rs)/3 {
		t.Fatalf("resolvers concentrated: %d ASes for %d resolvers", len(ases), len(rs))
	}
	_ = w
}

func TestResolvePrivateCluster(t *testing.T) {
	w, d := testDB(t)
	// Find a private-cluster server of the CDN-deploy org and resolve
	// one of its org's domains from inside that AS.
	acme := w.Special.AcmeCDN
	var privAS int32 = -1
	for _, s := range w.OrgServers(acme) {
		if s.Deploy == netmodel.DeployPrivateCluster {
			privAS = s.AS
			break
		}
	}
	if privAS == -1 {
		t.Skip("no private clusters in tiny world")
	}
	domain := d.Site(d.SitesOfOrg(acme)[0]).Domain
	ip, ok := d.Resolve(domain, privAS)
	if !ok {
		t.Fatal("resolve failed")
	}
	idx, ok := w.ServerByIP(ip)
	if !ok {
		t.Fatal("resolved IP is not a server")
	}
	s := &w.Servers[idx]
	if s.Org != acme {
		t.Fatalf("resolved to org %d, want acme %d", s.Org, acme)
	}
	if s.Deploy != netmodel.DeployPrivateCluster || s.AS != privAS {
		t.Fatalf("in-AS resolver should get the private cluster, got %+v", s)
	}
}

func TestResolveVisibleDefault(t *testing.T) {
	w, d := testDB(t)
	// A near-IXP resolver asking for a popular site should get a
	// visible server of the responsible org.
	var nearAS int32 = -1
	for _, r := range d.Resolvers() {
		if w.ASes[r.AS].Distance <= 1 {
			nearAS = r.AS
			break
		}
	}
	if nearAS == -1 {
		t.Skip("no near resolver")
	}
	site := d.Sites()[0]
	ip, ok := d.Resolve(site.Domain, nearAS)
	if !ok {
		t.Fatal("resolve failed")
	}
	idx, ok := w.ServerByIP(ip)
	if !ok {
		t.Fatal("resolved IP is not a server")
	}
	if w.Servers[idx].Org != site.DeliveringOrg() {
		// In-AS private clusters may shadow; allow only that exception.
		if w.Servers[idx].Deploy != netmodel.DeployPrivateCluster {
			t.Fatalf("resolved to wrong org %d, want %d", w.Servers[idx].Org, site.DeliveringOrg())
		}
	}
}

func TestResolveUnknownDomain(t *testing.T) {
	_, d := testDB(t)
	if _, ok := d.Resolve("bogus.invalid", 0); ok {
		t.Fatal("unknown domain must not resolve")
	}
}

func TestCDNServedSitesExist(t *testing.T) {
	w, d := testDB(t)
	served := 0
	for _, s := range d.Sites() {
		if s.ServedBy >= 0 {
			served++
			kind := w.Orgs[s.ServedBy].Kind
			if kind != netmodel.OrgCDNDeploy && kind != netmodel.OrgCDNCentral {
				t.Fatalf("site %q served by non-CDN org kind %v", s.Domain, kind)
			}
			if s.DeliveringOrg() != s.ServedBy {
				t.Fatal("DeliveringOrg must prefer the CDN")
			}
		}
	}
	if served == 0 {
		t.Fatal("no CDN-served sites")
	}
	if served > len(d.Sites())/2 {
		t.Fatalf("too many CDN-served sites: %d of %d", served, len(d.Sites()))
	}
}

func TestResolveVariedRotates(t *testing.T) {
	w, d := testDB(t)
	// Use a popular site of a large org so the fleet is big enough to
	// rotate over.
	site := d.Site(d.SitesOfOrg(w.Special.GlobalSearch)[0])
	seen := map[packet.IPv4Addr]bool{}
	var resolverAS int32 = -1
	for _, r := range d.Resolvers() {
		resolverAS = r.AS
		break
	}
	for salt := uint64(0); salt < 200; salt++ {
		ip, ok := d.ResolveVaried(site.Domain, resolverAS, salt)
		if !ok {
			t.Fatal("resolve failed")
		}
		idx, ok := w.ServerByIP(ip)
		if !ok {
			t.Fatalf("non-server answer %v", ip)
		}
		if got := w.Servers[idx].Org; got != site.DeliveringOrg() {
			if w.Servers[idx].Deploy != netmodel.DeployPrivateCluster {
				t.Fatalf("varied resolve wrong org %d", got)
			}
		}
		seen[ip] = true
	}
	if len(seen) < 3 {
		t.Fatalf("rotation too narrow: %d distinct answers", len(seen))
	}
}

func TestSiteSOAConsistentWithMap(t *testing.T) {
	_, d := testDB(t)
	for _, s := range d.Sites() {
		root, ok := d.SOA(s.Domain)
		if !ok || root != s.SOARoot {
			t.Fatalf("site %q SOA map inconsistent: %q vs %q", s.Domain, root, s.SOARoot)
		}
		if strings.Contains(s.Domain, " ") {
			t.Fatalf("malformed domain %q", s.Domain)
		}
	}
}

func BenchmarkResolve(b *testing.B) {
	w, err := netmodel.Generate(netmodel.Tiny())
	if err != nil {
		b.Fatal(err)
	}
	d := New(w)
	site := d.Sites()[0]
	rs := d.Resolvers()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Resolve(site.Domain, rs[i%len(rs)].AS)
	}
}

func TestPublicDNSProviders(t *testing.T) {
	w, d := testDB(t)
	provs := d.PublicDNSProviders()
	if len(provs) != len(w.Special.DNSProviders) {
		t.Fatalf("%d providers listed, want %d", len(provs), len(w.Special.DNSProviders))
	}
	for i, dom := range provs {
		if dom != w.Orgs[w.Special.DNSProviders[i]].Domain {
			t.Fatalf("provider %d domain mismatch", i)
		}
	}
}

func TestResolveVariedFarResolver(t *testing.T) {
	w, d := testDB(t)
	// A far, non-European resolver asking a region-aware CDN must get
	// far-region answers (when the CDN has them).
	var farAS int32 = -1
	for i := range w.ASes {
		a := &w.ASes[i]
		if a.Distance >= 2 && !isNearCountry(a.Country) {
			farAS = int32(i)
			break
		}
	}
	if farAS == -1 {
		t.Skip("no far AS")
	}
	acme := w.Special.AcmeCDN
	domain := d.Site(d.SitesOfOrg(acme)[0]).Domain
	farHits := 0
	for salt := uint64(0); salt < 50; salt++ {
		ip, ok := d.ResolveVaried(domain, farAS, salt)
		if !ok {
			t.Fatal("resolve failed")
		}
		idx, ok := w.ServerByIP(ip)
		if !ok {
			t.Fatal("non-server answer")
		}
		if w.Servers[idx].Deploy == netmodel.DeployFarRegion {
			farHits++
		}
	}
	if farHits == 0 {
		t.Fatal("far resolver never reached the far fleet")
	}
}
