// Package dnssim derives a deterministic DNS view from a netmodel world:
// reverse (PTR) records for server IPs, SOA authority resolution for
// registrable domains, the population of web sites with their hosting
// and DNS-outsourcing arrangements, and a set of open resolvers usable
// for active measurements (the paper's 25K-resolver list, Section 2.3).
//
// The authority structure is what the paper's Section 5 clustering mines:
// an org that runs its own DNS has all of its domains lead to a common
// root (its primary domain); an org that outsources DNS mostly still
// reveals itself through the SOA admin contact, but its sloppily
// delegated zones lead to the provider instead, which is exactly what
// pushes its servers from clustering step 1 into the majority-vote
// step 2.
package dnssim

import (
	"fmt"
	"sort"
	"strings"

	"ixplens/internal/netmodel"
	"ixplens/internal/packet"
	"ixplens/internal/randutil"
)

// Site is one web site: a registrable domain plus the org responsible
// for delivering its content.
type Site struct {
	// Domain is the registrable domain ("org00123.net").
	Domain string
	// Org is the organization owning the content.
	Org int32
	// ServedBy is the org index of the CDN delivering the site's
	// content, or -1 when the owner serves it itself. A quarter of the
	// popular content sites ride on the big CDNs, mirroring the
	// Akamai-serves-nbc.com situation the paper's attribution
	// discussion builds on.
	ServedBy int32
	// SOARoot is the authority domain the site's SOA record leads to.
	SOARoot string
	// Weight is the site's global popularity.
	Weight float64
}

// DeliveringOrg is the org whose servers answer for the site.
func (s *Site) DeliveringOrg() int32 {
	if s.ServedBy >= 0 {
		return s.ServedBy
	}
	return s.Org
}

// Resolver is one open recursive resolver usable for active queries.
type Resolver struct {
	IP packet.IPv4Addr
	AS int32
}

// DB is the derived DNS database. All methods are safe for concurrent
// use after New returns.
type DB struct {
	w *netmodel.World

	sites        []Site
	sitesByOrg   map[int32][]int32 // org -> indices into sites
	siteByDomain map[string]int32

	// asOwnerOrg maps an AS index to the org that owns it, if any.
	asOwnerOrg map[int32]int32

	// catchAll maps an AS index to its invalid-URI catch-all server IP,
	// for the ASes whose resolvers hijack a share of answers.
	catchAll map[int32]packet.IPv4Addr

	// soa maps a registrable domain to its authority root domain.
	soa map[string]string

	resolvers []Resolver
}

// New derives the DNS database from the world. Derivation is
// deterministic in the world's seed.
func New(w *netmodel.World) *DB {
	d := &DB{
		w:          w,
		sitesByOrg: make(map[int32][]int32),
		asOwnerOrg: make(map[int32]int32),
		soa:        make(map[string]string),
	}
	for i := range w.Orgs {
		if home := w.Orgs[i].HomeAS; home >= 0 {
			d.asOwnerOrg[home] = int32(i)
		}
	}
	d.catchAll = make(map[int32]packet.IPv4Addr)
	for i := range w.Servers {
		if w.Servers[i].Is(netmodel.SrvInvalidURIHandler) {
			d.catchAll[w.Servers[i].AS] = w.Servers[i].IP
		}
	}
	d.genSites()
	d.genResolvers()
	return d
}

// OwnerOrgOfAS returns the org owning the AS, if any.
func (d *DB) OwnerOrgOfAS(as int32) (int32, bool) {
	o, ok := d.asOwnerOrg[as]
	return o, ok
}

// zoneAuthority is the root a zone's SOA trail leads to. Self-hosted
// zones lead to the org's own domain. Outsourced zones usually still
// reveal the org (the SOA RNAME/admin contact names the organization);
// only sloppily delegated zones (~30%) lead to the provider instead —
// the situation that pushes servers into clustering step 2.
func (d *DB) zoneAuthority(orgIdx int32, domainKey uint64) string {
	o := &d.w.Orgs[orgIdx]
	if o.DNSProvider < 0 {
		return o.Domain
	}
	if randutil.HashUnit(uint64(d.w.Cfg.Seed), 0x50a, uint64(o.ID), domainKey) < 0.30 {
		return d.w.Orgs[o.DNSProvider].Domain
	}
	return o.Domain
}

// PublicDNSProviders lists the domains of the third-party DNS operators.
// Like the paper's knowledge of RIR domains and well-known DNS services,
// this is public information an analyst has independently of the IXP.
func (d *DB) PublicDNSProviders() []string {
	out := make([]string, 0, len(d.w.Special.DNSProviders))
	for _, p := range d.w.Special.DNSProviders {
		out = append(out, d.w.Orgs[p].Domain)
	}
	return out
}

// genSites builds the global site population: every org gets NumSites
// sites, weighted Zipf within the org and scaled by the org's traffic
// weight — the product drives both the Alexa-style ranking and the Host
// headers the traffic generator emits.
func (d *DB) genSites() {
	w := d.w
	for oi := range w.Orgs {
		o := &w.Orgs[oi]
		n := o.NumSites
		if n <= 0 {
			n = 1
		}
		zw := randutil.ZipfWeights(n, 1.1)
		zTotal := 0.0
		for _, v := range zw {
			zTotal += v
		}
		for k := 0; k < n; k++ {
			var domain string
			if k == 0 {
				domain = o.Domain
			} else {
				domain = fmt.Sprintf("site-%05d-%03d.%s", o.ID, k, siteTLD(o.ID, k))
			}
			soaRoot := d.zoneAuthority(int32(oi), uint64(k))
			if o.Kind == netmodel.OrgHoster && k > 0 {
				// Customer domains on shared hosting: the hoster manages
				// DNS for most, a third-party provider for the rest.
				if randutil.HashUnit(uint64(w.Cfg.Seed), uint64(o.ID), uint64(k), 0xd) < 0.40 {
					prov := w.Special.DNSProviders[int(randutil.Hash64(uint64(o.ID), uint64(k))%uint64(len(w.Special.DNSProviders)))]
					soaRoot = w.Orgs[prov].Domain
				}
			}
			// Sites often ride on a CDN: popular content heavily, and a
			// long tail of small customers on mass-market CDN products.
			servedBy := int32(-1)
			cdnProb := 0.0
			switch o.Kind {
			case netmodel.OrgContent, netmodel.OrgStreamer:
				cdnProb = 0.25
			case netmodel.OrgSmall:
				cdnProb = 0.08
			case netmodel.OrgHoster:
				// Customers of shared hosting increasingly front their
				// sites with mass-market CDNs.
				if k > 0 {
					cdnProb = 0.05
				}
			}
			if cdnProb > 0 && randutil.HashUnit(uint64(w.Cfg.Seed), 0xcd4, uint64(o.ID), uint64(k)) < cdnProb {
				cdns := []int32{w.Special.AcmeCDN, w.Special.AcmeCDN, w.Special.CloudShield, w.Special.EdgeCDN, w.Special.LimeCDN}
				servedBy = cdns[int(randutil.Hash64(0xcd5, uint64(o.ID), uint64(k))%uint64(len(cdns)))]
			}
			d.soa[domain] = soaRoot
			d.sites = append(d.sites, Site{
				Domain:   domain,
				Org:      int32(oi),
				ServedBy: servedBy,
				SOARoot:  soaRoot,
				Weight:   o.Weight * zw[k] / zTotal,
			})
			d.sitesByOrg[int32(oi)] = append(d.sitesByOrg[int32(oi)], int32(len(d.sites)-1))
		}
		// The org's infrastructure zone (server hostnames) also resolves.
		d.soa[o.Domain] = d.zoneAuthority(int32(oi), 0)
	}
	sort.SliceStable(d.sites, func(i, j int) bool { return d.sites[i].Weight > d.sites[j].Weight })
	// Re-index after sorting.
	d.sitesByOrg = make(map[int32][]int32, len(w.Orgs))
	d.siteByDomain = make(map[string]int32, len(d.sites))
	for i := range d.sites {
		d.sitesByOrg[d.sites[i].Org] = append(d.sitesByOrg[d.sites[i].Org], int32(i))
		d.siteByDomain[d.sites[i].Domain] = int32(i)
	}
}

func siteTLD(orgID int32, k int) string {
	tlds := []string{"com", "net", "org", "de", "fr", "ru", "nl", "it", "info"}
	return tlds[int(randutil.Hash64(uint64(orgID), uint64(k), 0x7)%uint64(len(tlds)))]
}

// Sites returns all sites sorted by descending popularity.
func (d *DB) Sites() []Site { return d.sites }

// SitesOfOrg returns the site indices of one org, most popular first.
func (d *DB) SitesOfOrg(org int32) []int32 { return d.sitesByOrg[org] }

// Site returns the site at index i.
func (d *DB) Site(i int32) *Site { return &d.sites[i] }

// SOA resolves the authority root of a registrable domain. Unknown
// domains report false, like an NXDOMAIN on the SOA chain.
func (d *DB) SOA(domain string) (string, bool) {
	root, ok := d.soa[domain]
	return root, ok
}

// RegistrableDomain extracts the registrable domain from a hostname
// ("edge-7.fra.acmecdn.net" -> "acmecdn.net"). The synthetic namespace
// uses either two- or three-label registrable domains ("co.uk" style).
func RegistrableDomain(hostname string) string {
	labels := strings.Split(hostname, ".")
	n := len(labels)
	if n < 2 {
		return hostname
	}
	// Handle the one compound TLD in use ("co.uk").
	if n >= 3 && labels[n-2] == "co" {
		return strings.Join(labels[n-3:], ".")
	}
	return strings.Join(labels[n-2:], ".")
}

// Hostname returns the forward DNS name of a server, if it has one. The
// name's registrable domain encodes who administers the machine's
// naming: the owning org, or the hosting company.
func (d *DB) Hostname(serverIdx int32) (string, bool) {
	s := &d.w.Servers[serverIdx]
	if !s.Is(netmodel.SrvHasPTR) {
		return "", false
	}
	o := &d.w.Orgs[s.Org]
	if s.Is(netmodel.SrvNamedByHoster) {
		owner, ok := d.asOwnerOrg[s.AS]
		if !ok {
			return "", false
		}
		a, b, c, dd := s.IP.Octets()
		return fmt.Sprintf("static-%d-%d-%d-%d.%s", a, b, c, dd, d.w.Orgs[owner].Domain), true
	}
	return fmt.Sprintf("edge-%d.%s", serverIdx, o.Domain), true
}

// PTR is the reverse-DNS lookup by IP.
func (d *DB) PTR(ip packet.IPv4Addr) (string, bool) {
	idx, ok := d.w.ServerByIP(ip)
	if !ok {
		return "", false
	}
	return d.Hostname(idx)
}

// genResolvers creates the open-resolver population: roughly one usable
// resolver per three ASes, biased toward eyeball networks, matching the
// paper's final list of ~25K resolvers across ~12K ASes.
func (d *DB) genResolvers() {
	w := d.w
	for i := range w.ASes {
		a := &w.ASes[i]
		h := randutil.Hash64(uint64(w.Cfg.Seed), uint64(i), 0x5e)
		p := 0.25
		if a.Role == netmodel.RoleEyeball {
			p = 0.55
		}
		if float64(h>>11)/float64(1<<53) >= p {
			continue
		}
		// One or two resolvers in this AS, addressed from its first prefix.
		n := 1 + int(h%2)
		if len(a.Prefixes) == 0 {
			continue
		}
		pfx := &w.Prefixes[a.Prefixes[0]]
		for k := 0; k < n; k++ {
			off := pfx.Prefix.NumAddrs()/2 + uint64(k) + 1
			if off >= pfx.Prefix.NumAddrs() {
				break
			}
			d.resolvers = append(d.resolvers, Resolver{
				IP: pfx.Prefix.First() + packet.IPv4Addr(off),
				AS: int32(i),
			})
		}
	}
}

// Resolvers returns the usable open resolvers.
func (d *DB) Resolvers() []Resolver { return d.resolvers }

// Resolve performs an active DNS query for a site domain through the
// resolver hosted in resolverAS, returning the server IP the authority
// would hand out. It reproduces CDN request routing:
//
//   - private-cluster servers are returned only to resolvers inside
//     their own AS (and shadow any other answer there),
//   - region-aware CDNs answer far-away resolvers from far-region
//     deployments,
//   - everyone else gets the org's best visible server.
//
// The boolean result is false when the domain does not exist.
func (d *DB) Resolve(domain string, resolverAS int32) (packet.IPv4Addr, bool) {
	// Some ASes run resolvers that hijack a share of answers toward
	// their own catch-all machines (the paper's invalid-URI category).
	if ip, hasCatchAll := d.catchAll[resolverAS]; hasCatchAll {
		if randutil.HashUnit(uint64(d.w.Cfg.Seed), 0xbad, uint64(resolverAS), randutil.Hash64(uint64(len(domain)), uint64(domain[0]))) < 0.03 {
			return ip, true
		}
	}
	si, ok := d.siteByDomain[domain]
	if !ok {
		return 0, false
	}
	site := &d.sites[si]
	w := d.w
	serving := site.DeliveringOrg()
	servers := w.OrgServers(serving)
	if len(servers) == 0 {
		return 0, false
	}
	o := &w.Orgs[serving]

	// Private clusters answer in-AS resolvers first.
	for i := range servers {
		if servers[i].Deploy == netmodel.DeployPrivateCluster && servers[i].AS == resolverAS {
			return servers[i].IP, true
		}
	}
	resolverFar := w.ASes[resolverAS].Distance >= 2 && !isNearCountry(w.ASes[resolverAS].Country)
	if resolverFar && (o.Kind == netmodel.OrgCDNDeploy || o.Kind == netmodel.OrgSearch) {
		for i := range servers {
			if servers[i].Deploy == netmodel.DeployFarRegion {
				return servers[i].IP, true
			}
		}
	}
	// Best visible server (highest weight).
	best := -1
	for i := range servers {
		if servers[i].Deploy != netmodel.DeployNormal {
			continue
		}
		if best == -1 || servers[i].Weight > servers[best].Weight {
			best = i
		}
	}
	if best == -1 {
		best = 0
	}
	return servers[best].IP, true
}

// ResolveVaried is Resolve with answer rotation: authorities load-
// balance across their fleets, so repeated queries (distinguished by
// salt) see different servers of the serving organization. Private
// clusters still shadow everything for in-AS resolvers.
func (d *DB) ResolveVaried(domain string, resolverAS int32, salt uint64) (packet.IPv4Addr, bool) {
	if ip, hasCatchAll := d.catchAll[resolverAS]; hasCatchAll {
		if randutil.HashUnit(uint64(d.w.Cfg.Seed), 0xbad, uint64(resolverAS), salt, randutil.Hash64(uint64(len(domain)), uint64(domain[0]))) < 0.03 {
			return ip, true
		}
	}
	si, ok := d.siteByDomain[domain]
	if !ok {
		return 0, false
	}
	site := &d.sites[si]
	w := d.w
	serving := site.DeliveringOrg()
	servers := w.OrgServers(serving)
	if len(servers) == 0 {
		return 0, false
	}
	for i := range servers {
		if servers[i].Deploy == netmodel.DeployPrivateCluster && servers[i].AS == resolverAS {
			return servers[i].IP, true
		}
	}
	o := &w.Orgs[serving]
	if w.ASes[resolverAS].Distance >= 2 && !isNearCountry(w.ASes[resolverAS].Country) &&
		(o.Kind == netmodel.OrgCDNDeploy || o.Kind == netmodel.OrgSearch) {
		// Region-aware platforms answer far resolvers from far fleets,
		// rotating like everywhere else.
		var far []int
		for i := range servers {
			if servers[i].Deploy == netmodel.DeployFarRegion {
				far = append(far, i)
			}
		}
		if len(far) > 0 {
			h := randutil.Hash64(uint64(w.Cfg.Seed), 0xfa2, uint64(si), salt)
			return servers[far[int(h%uint64(len(far)))]].IP, true
		}
	}
	// Weight-proportional rotation over the visible fleet.
	var total float64
	for i := range servers {
		if servers[i].Deploy == netmodel.DeployNormal {
			total += float64(servers[i].Weight)
		}
	}
	if total == 0 {
		return d.Resolve(domain, resolverAS)
	}
	u := randutil.HashUnit(uint64(w.Cfg.Seed), 0x5a17, uint64(si), salt) * total
	for i := range servers {
		if servers[i].Deploy != netmodel.DeployNormal {
			continue
		}
		u -= float64(servers[i].Weight)
		if u <= 0 {
			return servers[i].IP, true
		}
	}
	return d.Resolve(domain, resolverAS)
}

func isNearCountry(c string) bool {
	switch c {
	case "DE", "FR", "GB", "NL", "IT", "ES", "PL", "CZ", "AT", "CH", "SE",
		"DK", "NO", "FI", "BE", "PT", "GR", "HU", "RO", "IE", "EU", "UA", "TR", "RU":
		return true
	}
	return false
}
