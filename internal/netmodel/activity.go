package netmodel

import (
	"math/rand"

	"ixplens/internal/geo"
	"ixplens/internal/randutil"
)

// assignActivity hands every server a longitudinal behaviour pattern and
// assigns the flag set (protocols, DNS presence, client-side activity).
// Region-dependent stability reproduces Fig. 4(b): the German stable
// pool is about half the total stable pool, the Chinese one vanishingly
// small.
func (w *World) assignActivity(rng *rand.Rand) {
	cfg := &w.Cfg
	for i := range w.Servers {
		s := &w.Servers[i]
		o := &w.Orgs[s.Org]
		country := w.Prefixes[s.PrefixIdx].Country

		// --- Longitudinal pattern ---
		if w.ASes[s.AS].ResellerCustomer {
			// Reseller growth (Section 4.2): half the fleet is present
			// from the start, the other half joins over the weeks so
			// the reseller's server count roughly doubles.
			if rng.Float64() < 0.5 {
				s.Activity = ActStable
			} else {
				s.Activity = ActFresh
				s.Flags |= SrvPersistentFresh
				s.FirstWeek = int16(cfg.FirstWeek + 1 + rng.Intn(cfg.Weeks-1))
			}
		} else if s.Org == w.Special.ElastiCloud && s.DC == "eu-dublin" && rng.Float64() < 0.55 {
			// EC2-Ireland expansion (Section 4.2): a pronounced ramp in
			// the final three weeks.
			s.Activity = ActFresh
			s.Flags |= SrvPersistentFresh
			s.FirstWeek = int16(cfg.LastWeek() - rng.Intn(3))
		} else {
			p := rng.Float64()
			stableP := stableProbByRegion(geo.Region(country), cfg.StableFraction)
			recurrentP := cfg.RecurrentFraction
			switch {
			case p < stableP:
				s.Activity = ActStable
			case p < stableP+recurrentP:
				s.Activity = ActRecurrent
			default:
				s.Activity = ActFresh
				s.FirstWeek = int16(cfg.FirstWeek + 1 + rng.Intn(maxInt(1, cfg.Weeks-1)))
			}
		}

		// --- Protocol and DNS flags ---
		s.Flags |= SrvHTTP
		httpsP := httpsProbByKind(o.Kind, cfg.HTTPSFraction)
		if rng.Float64() < httpsP {
			s.Flags |= SrvHTTPS
		}
		if o.Kind == OrgStreamer || (o.Kind == OrgCDNDeploy && rng.Float64() < 0.5) {
			s.Flags |= SrvRTMP
		}
		if actsAsClient(o.Kind, rng) {
			s.Flags |= SrvActsAsClient
		}
		// A few small orgs' in-house machines double as the catch-all
		// "invalid URI" servers their AS's resolvers advertise — one of
		// the Section 3.3 blind-spot categories. They see next to no
		// real traffic (their weight is zeroed below).
		if o.Kind == OrgSmall && o.HomeAS >= 0 && s.AS == o.HomeAS && rng.Float64() < 0.05 {
			s.Flags |= SrvInvalidURIHandler
		}
		w.assignDNSPresence(rng, s, o)
	}
}

// stableProbByRegion tunes the stable fraction per region around the
// configured mean: German hosting is long-lived, Chinese server IPs are
// almost never seen week-in week-out at a European IXP.
func stableProbByRegion(region string, mean float64) float64 {
	switch region {
	case "DE":
		return mean * 3.4
	case "US":
		return mean * 1.15
	case "RU":
		return mean * 1.1
	case "CN":
		return mean * 0.12
	default:
		return mean * 0.5
	}
}

// httpsProbByKind biases HTTPS deployment toward the org kinds that had
// adopted TLS by 2012.
func httpsProbByKind(k OrgKind, mean float64) float64 {
	switch k {
	case OrgSearch, OrgCloud:
		return minFloat(1, mean*3.0)
	case OrgCDNCentral:
		return minFloat(1, mean*2.2)
	case OrgHoster:
		return mean * 1.1
	case OrgStreamer:
		return mean * 0.5
	default:
		return mean * 0.8
	}
}

func actsAsClient(k OrgKind, rng *rand.Rand) bool {
	switch k {
	case OrgCDNDeploy, OrgCDNCentral:
		return rng.Float64() < 0.45
	case OrgSearch, OrgCloud:
		return rng.Float64() < 0.25
	case OrgContent:
		return rng.Float64() < 0.08
	default:
		return rng.Float64() < 0.04
	}
}

// assignDNSPresence decides whether the server has a PTR record and in
// whose namespace, targeting the paper's 71.7% DNS meta-data coverage.
func (w *World) assignDNSPresence(rng *rand.Rand, s *Server, o *Org) {
	hostedElsewhere := o.HomeAS < 0 || s.AS != o.HomeAS
	switch {
	case o.AssignsNames && !hostedElsewhere:
		if rng.Float64() < 0.90 {
			s.Flags |= SrvHasPTR
		}
	case o.AssignsNames && hostedElsewhere:
		// Akamai/Google style: own names even inside third parties,
		// though coverage is thinner for deep-ISP deployments.
		p := 0.78
		if s.Deploy != DeployNormal {
			p = 0.45
		}
		if rng.Float64() < p {
			s.Flags |= SrvHasPTR
		}
	case hostedElsewhere:
		// The hosting company names the machine (static-1-2-3-4.host).
		if rng.Float64() < 0.72 {
			s.Flags |= SrvHasPTR | SrvNamedByHoster
		}
	default:
		if rng.Float64() < 0.55 {
			s.Flags |= SrvHasPTR
		}
	}
}

// assignWeights distributes traffic weight within each org: Zipf across
// the org's servers, boosted for stable servers (the stable pool must
// carry >60% of server traffic, Section 4.1) and for the handful of
// front-end gateways that dominate Fig. 2.
func (w *World) assignWeights(rng *rand.Rand) {
	for oi := range w.Orgs {
		o := &w.Orgs[oi]
		if o.ServerCount == 0 {
			continue
		}
		servers := w.Servers[o.ServerStart : o.ServerStart+o.ServerCount]
		zw := randutil.ZipfWeights(len(servers), 0.75)
		rng.Shuffle(len(zw), func(i, j int) { zw[i], zw[j] = zw[j], zw[i] })
		total := 0.0
		for i := range servers {
			boost := 1.0
			if servers[i].Activity == ActStable {
				boost *= 3.2
				switch geo.Region(w.Prefixes[servers[i].PrefixIdx].Country) {
				case "US", "RU":
					// In Fig. 5 the US/RU stable pools carry nearly all
					// their regions' server traffic.
					boost *= 2.0
				case "DE":
					// German hosting is both persistent and heavy: the
					// DE stable pool is about half the total stable pool
					// and must stay reliably sampled week over week.
					boost *= 2.8
				}
			}
			if servers[i].Deploy != DeployNormal {
				boost *= 0.05 // invisible deployments also matter less globally
			}
			if servers[i].Is(SrvInvalidURIHandler) {
				boost *= 0.001 // catch-alls see essentially no real traffic
			}
			zw[i] *= boost
			total += zw[i]
		}
		for i := range servers {
			servers[i].Weight = float32(zw[i] / total)
		}
	}
	w.markFrontends()
}

// markFrontends flags the heaviest servers of the big CDN/streaming/
// hosting orgs as data-center front-ends and concentrates extra weight
// on them: in the paper the top 34 server IPs carry >6% of all
// server-related traffic.
func (w *World) markFrontends() {
	candidates := []int32{
		w.Special.AcmeCDN, w.Special.GlobalSearch, w.Special.LimeCDN,
		w.Special.EdgeCDN, w.Special.CloudShield, w.Special.VKont,
		w.Special.ElastiCloud, w.Special.LeaseHost,
	}
	for _, oi := range candidates {
		o := &w.Orgs[oi]
		if o.ServerCount == 0 {
			continue
		}
		servers := w.Servers[o.ServerStart : o.ServerStart+o.ServerCount]
		// Promote up to 5 visible servers per org.
		promoted := 0
		var lifted float64
		for i := range servers {
			if promoted >= 5 {
				break
			}
			if servers[i].Deploy != DeployNormal {
				continue
			}
			servers[i].Flags |= SrvFrontend
			lifted += float64(servers[i].Weight)*25 - float64(servers[i].Weight)
			servers[i].Weight *= 25
			promoted++
		}
		// Renormalize the org's weights.
		total := 0.0
		for i := range servers {
			total += float64(servers[i].Weight)
		}
		for i := range servers {
			servers[i].Weight = float32(float64(servers[i].Weight) / total)
		}
	}
}

// ServerActiveInWeek is the ground-truth activity oracle used by both
// the traffic generator and the experiment validation. It folds in the
// base pattern and the injected events (the hurricane of week 44).
func (w *World) ServerActiveInWeek(serverIdx int32, isoWeek int) bool {
	s := &w.Servers[serverIdx]
	// Event: hurricane week. The nimbus-cloud us-east data center goes
	// dark in week 44 (only for worlds whose window covers it).
	if isoWeek == 44 && s.Org == w.Special.NimbusCloud && s.DC == "us-east" {
		return false
	}
	switch s.Activity {
	case ActStable:
		return true
	case ActRecurrent:
		return randutil.HashUnit(uint64(w.Cfg.Seed), uint64(serverIdx), uint64(isoWeek)) < w.Cfg.RecurrentOnProb
	case ActFresh:
		if isoWeek < int(s.FirstWeek) {
			return false
		}
		if isoWeek == int(s.FirstWeek) || s.Is(SrvPersistentFresh) {
			return true
		}
		// After their first appearance most fresh server IPs fade out
		// again (dynamic assignments, short-lived deployments); this is
		// what sustains the ~10% first-time share in every weekly bar
		// of Fig. 4(a).
		return randutil.HashUnit(uint64(w.Cfg.Seed), uint64(serverIdx), uint64(isoWeek), 0xf) < 0.30
	}
	return false
}

// genFake443 creates the endpoints that receive TCP/443 traffic without
// being valid HTTPS web servers; Section 2.2.2 reports that of ~1.5M
// port-443 candidates only ~500K answered a crawl and ~250K validated.
func (w *World) genFake443(rng *rand.Rand) {
	// The paper's 443 funnel (1.5M candidates, 500K responding, 250K
	// validating) implies roughly four non-HTTPS endpoints per genuine
	// HTTPS server, most of them silent to a crawl (NATed clients,
	// ephemeral cloud IPs); the responders split across the reject
	// reasons.
	nHTTPS := 0
	for i := range w.Servers {
		if w.Servers[i].Is(SrvHTTPS) {
			nHTTPS++
		}
	}
	n := nHTTPS * 4
	behaviours := []Fake443Behaviour{
		Fake443NoResponse, Fake443NoResponse, Fake443NoResponse,
		Fake443NoResponse, Fake443NoResponse, Fake443NoResponse,
		Fake443NoResponse, Fake443NoResponse, Fake443NoResponse,
		Fake443NotTLS, Fake443BadChain, Fake443Expired,
		Fake443Unstable, Fake443BadName, Fake443WrongKeyUsage,
	}
	for i := 0; i < n; i++ {
		as := int32(rng.Intn(len(w.ASes)))
		ip, _, ok := w.allocServerIP(as, "")
		if !ok {
			continue
		}
		w.Fake443 = append(w.Fake443, Fake443Endpoint{
			IP: ip, AS: as,
			Behaviour: behaviours[rng.Intn(len(behaviours))],
		})
	}
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
