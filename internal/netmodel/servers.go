package netmodel

import (
	"math/rand"

	"ixplens/internal/packet"
	"ixplens/internal/randutil"
)

// ServerFlags carries per-server boolean attributes.
type ServerFlags uint16

// Server flags.
const (
	// SrvHTTP serves plain HTTP (TCP 80/8080).
	SrvHTTP ServerFlags = 1 << iota
	// SrvHTTPS serves HTTPS with a valid certificate chain.
	SrvHTTPS
	// SrvRTMP also speaks RTMP on TCP 1935 (multi-purpose server).
	SrvRTMP
	// SrvActsAsClient marks servers that also originate client-side
	// connections (CDN back-fetch, proxies): ~200K of 1.5M in the paper.
	SrvActsAsClient
	// SrvHasPTR means reverse DNS resolves to a hostname.
	SrvHasPTR
	// SrvNamedByHoster means that hostname lives under the hosting
	// company's domain, not the owning org's.
	SrvNamedByHoster
	// SrvInvalidURIHandler marks catch-all servers some ASes run for
	// invalid URIs (one of the Section 3.3 blind-spot categories).
	SrvInvalidURIHandler
	// SrvFrontend marks front-end servers that gateway entire data
	// centers or anycast services — the extreme head of Fig. 2.
	SrvFrontend
	// SrvPersistentFresh marks fresh servers that stay online once they
	// first appear (planned deployments: cloud region launches,
	// reseller customer fleets), as opposed to transient fresh IPs.
	SrvPersistentFresh
)

// ActivityKind is the longitudinal behaviour of a server (Section 4.1).
type ActivityKind uint8

// Activity kinds.
const (
	// ActStable servers are active in every week of the study.
	ActStable ActivityKind = iota
	// ActRecurrent servers are active in a random subset of weeks.
	ActRecurrent
	// ActFresh servers first appear in FirstWeek and are recurrent
	// afterwards.
	ActFresh
)

// DeployKind is the visibility situation of a deployment (Section 3.3).
type DeployKind uint8

// Deployment kinds.
const (
	// DeployNormal servers exchange traffic across the IXP.
	DeployNormal DeployKind = iota
	// DeployPrivateCluster servers serve only clients inside their
	// hosting AS; their traffic never crosses the IXP.
	DeployPrivateCluster
	// DeployFarRegion servers serve only geographically distant
	// clients whose paths avoid the IXP.
	DeployFarRegion
)

// Server is one Web server IP with its ground-truth attributes.
type Server struct {
	IP packet.IPv4Addr
	// Org is the organization with administrative control.
	Org int32
	// AS is the hosting AS (== Org's home AS or a third party).
	AS int32
	// PrefixIdx is the prefix the IP was allocated from.
	PrefixIdx int32
	// DC tags the data center for cloud providers ("us-east", ...).
	DC       string
	Flags    ServerFlags
	Deploy   DeployKind
	Activity ActivityKind
	// FirstWeek is the ISO week of first activity for ActFresh servers.
	FirstWeek int16
	// Weight is the server's share of its org's traffic.
	Weight float32
}

// Is reports whether all given flags are set.
func (s *Server) Is(f ServerFlags) bool { return s.Flags&f == f }

// VisibleAtIXP reports whether the server's traffic can cross the IXP's
// public fabric at all.
func (s *Server) VisibleAtIXP() bool { return s.Deploy == DeployNormal }

// dcSpec describes a cloud data center region.
type dcSpec struct {
	tag     string
	country string
	weight  float64
}

var nimbusDCs = []dcSpec{
	{"us-east", "US", 0.38}, {"us-west", "US", 0.17},
	{"eu-central", "DE", 0.30}, {"ap-south", "SG", 0.15},
}

var elastiDCs = []dcSpec{
	{"us-east", "US", 0.40}, {"us-west", "US", 0.18},
	{"eu-dublin", "IE", 0.26}, {"ap-tokyo", "JP", 0.16},
}

// genServers builds the full server population org by org.
func (w *World) genServers(rng *rand.Rand) {
	counts := w.serverCounts(rng)
	total := 0
	for _, c := range counts {
		total += c
	}
	w.Servers = make([]Server, 0, total)

	pools := w.buildASPools(rng)
	for orgIdx := range w.Orgs {
		w.deployOrg(rng, int32(orgIdx), counts[orgIdx], pools)
	}
	w.assignActivity(rng)
	w.assignWeights(rng)
}

// serverCounts decides how many servers each org operates. Specials are
// anchored to their paper-scale counts; generic orgs share the rest via
// a Zipf tail with a minimum of 2.
func (w *World) serverCounts(rng *rand.Rand) []int {
	cfg := &w.Cfg
	counts := make([]int, len(w.Orgs))
	scale := float64(cfg.NumServers) / 2_400_000.0

	specs := w.specialSpecs()
	used := 0
	for i, sp := range specs {
		n := int(float64(sp.paperCount) * scale)
		if n < 4 {
			n = 4
		}
		counts[i] = n // special orgs occupy the first len(specs) slots
		used += n
	}
	for _, dp := range w.Special.DNSProviders {
		counts[dp] = 2
		used += 2
	}
	remaining := cfg.NumServers - used
	if remaining < 0 {
		remaining = 0
	}
	firstGeneric := len(specs) + len(w.Special.DNSProviders)
	nGeneric := len(w.Orgs) - firstGeneric
	if nGeneric <= 0 {
		return counts
	}
	zw := randutil.ZipfWeights(nGeneric, 0.92)
	zTotal := 0.0
	for _, v := range zw {
		zTotal += v
	}
	for i := 0; i < nGeneric; i++ {
		n := int(float64(remaining) * zw[i] / zTotal)
		if n < 2 {
			n = 2
		}
		counts[firstGeneric+i] = n
	}
	return counts
}

// asPools are the AS candidate sets deployments draw from.
type asPools struct {
	hosters      []int32 // hoster-role ASes (weighted by capacity)
	hosterWts    []float64
	eyeballsNear []int32 // member + distance-1 eyeball ASes
	eyeballsFar  []int32 // distance-2 eyeball ASes (mostly non-EU)
	resellerASes []int32 // ASes behind the reseller member
}

func (w *World) buildASPools(rng *rand.Rand) *asPools {
	p := &asPools{}
	megaAS := w.Orgs[w.Special.MegaHost].HomeAS
	for i := range w.ASes {
		a := &w.ASes[i]
		idx := int32(i)
		switch {
		case a.Role == RoleHoster:
			p.hosters = append(p.hosters, idx)
			wt := 0.5 + rng.Float64()
			if idx == megaAS {
				// megahost must end up hosting hundreds of orgs.
				wt = float64(len(w.ASes))/100 + 20
			}
			p.hosterWts = append(p.hosterWts, wt)
		case a.Role == RoleEyeball && a.Distance <= 1:
			p.eyeballsNear = append(p.eyeballsNear, idx)
		case a.Role == RoleEyeball:
			p.eyeballsFar = append(p.eyeballsFar, idx)
		}
		if a.ResellerCustomer {
			p.resellerASes = append(p.resellerASes, idx)
		}
	}
	return p
}

// deployOrg places an org's n servers into ASes according to its kind.
func (w *World) deployOrg(rng *rand.Rand, orgIdx int32, n int, pools *asPools) {
	o := &w.Orgs[orgIdx]
	o.ServerStart = int32(len(w.Servers))
	if n <= 0 {
		return
	}
	hosterAlias := randutil.NewAlias(pools.hosterWts)

	switch o.Kind {
	case OrgCDNDeploy:
		// Akamai model: 28% of servers near the IXP (visible), 45% in
		// private clusters, 27% in far regions; spread over very many
		// ASes.
		nearASes := pickASes(rng, pools.eyeballsNear, maxInt(4, len(pools.eyeballsNear)*6/10))
		farASes := pickASes(rng, pools.eyeballsFar, maxInt(4, len(pools.eyeballsFar)*4/10))
		if len(nearASes) == 0 {
			nearASes = []int32{o.HomeAS}
		}
		if len(farASes) == 0 {
			farASes = nearASes
		}
		for i := 0; i < n; i++ {
			r := rng.Float64()
			switch {
			case o.HomeAS >= 0 && (i == 0 || r < 0.13):
				// Roughly half the visible fleet serves out of the
				// org's own AS; those servers carry most of the
				// org's traffic (Fig. 7b).
				w.placeServer(rng, orgIdx, o.HomeAS, DeployNormal, "")
			case r < 0.28:
				// Visible deployments favour a subset of near ASes.
				as := nearASes[rng.Intn(maxInt(1, len(nearASes)*45/100))]
				w.placeServer(rng, orgIdx, as, DeployNormal, "")
			case r < 0.73:
				as := nearASes[rng.Intn(len(nearASes))]
				w.placeServer(rng, orgIdx, as, DeployPrivateCluster, "")
			default:
				as := farASes[rng.Intn(len(farASes))]
				w.placeServer(rng, orgIdx, as, DeployFarRegion, "")
			}
		}
	case OrgSearch:
		// Own AS plus eyeball caches, half of them private.
		cacheASes := pickASes(rng, pools.eyeballsNear, maxInt(3, len(pools.eyeballsNear)/3))
		if len(cacheASes) == 0 {
			cacheASes = []int32{o.HomeAS}
		}
		for i := 0; i < n; i++ {
			r := rng.Float64()
			switch {
			case r < 0.60:
				w.placeServer(rng, orgIdx, o.HomeAS, DeployNormal, "")
			case r < 0.80:
				w.placeServer(rng, orgIdx, cacheASes[rng.Intn(len(cacheASes))], DeployNormal, "")
			default:
				w.placeServer(rng, orgIdx, cacheASes[rng.Intn(len(cacheASes))], DeployPrivateCluster, "")
			}
		}
	case OrgCloud:
		if o.HomeAS < 0 {
			w.deployGenericOrg(rng, orgIdx, n, pools, hosterAlias)
			break
		}
		dcs := nimbusDCs
		if orgIdx == w.Special.ElastiCloud {
			dcs = elastiDCs
		}
		w.retagCloudPrefixes(o.HomeAS, dcs)
		dcw := make([]float64, len(dcs))
		for i := range dcs {
			dcw[i] = dcs[i].weight
		}
		dcAlias := randutil.NewAlias(dcw)
		for i := 0; i < n; i++ {
			dc := dcs[dcAlias.Sample(rng)]
			w.placeServerDC(rng, orgIdx, o.HomeAS, DeployNormal, dc.tag, dc.country)
		}
	case OrgHoster, OrgCDNCentral, OrgStreamer, OrgOneClick, OrgDNSProvider:
		if o.PublishesServerIPs || o.HomeAS < 0 {
			// No-ASN orgs rent capacity in several hoster ASes.
			k := 4 + rng.Intn(6)
			ases := make([]int32, k)
			for i := range ases {
				ases[i] = pools.hosters[hosterAlias.Sample(rng)]
			}
			for i := 0; i < n; i++ {
				w.placeServer(rng, orgIdx, ases[rng.Intn(k)], DeployNormal, "")
			}
			break
		}
		for i := 0; i < n; i++ {
			w.placeServer(rng, orgIdx, o.HomeAS, DeployNormal, "")
		}
	default: // OrgContent, OrgSmall
		w.deployGenericOrg(rng, orgIdx, n, pools, hosterAlias)
	}
	o.ServerCount = int32(len(w.Servers)) - o.ServerStart
}

// deployGenericOrg spreads a content/small org: mostly its own AS if it
// has one, otherwise a few hoster ASes; large orgs fan out wider
// (producing the Fig. 6b heavy tail).
func (w *World) deployGenericOrg(rng *rand.Rand, orgIdx int32, n int, pools *asPools, hosterAlias *randutil.Alias) {
	o := &w.Orgs[orgIdx]
	nASes := 1
	switch {
	case n > 1000:
		nASes = 3 + rng.Intn(28)
	case n > 100:
		nASes = 2 + rng.Intn(6)
	case n > 10:
		nASes = 1 + rng.Intn(3)
	}
	targets := make([]int32, 0, nASes+1)
	if o.HomeAS >= 0 {
		targets = append(targets, o.HomeAS)
	}
	for len(targets) < nASes {
		targets = append(targets, pools.hosters[hosterAlias.Sample(rng)])
	}
	// A couple of very large content orgs also push into eyeballs,
	// mirroring the single-purpose-CDN trend (Netflix/OpenConnect).
	if n > 2000 && rng.Float64() < 0.5 && len(pools.eyeballsNear) > 0 {
		for k := 0; k < 4+rng.Intn(10); k++ {
			targets = append(targets, pools.eyeballsNear[rng.Intn(len(pools.eyeballsNear))])
		}
	}
	for i := 0; i < n; i++ {
		as := targets[rng.Intn(len(targets))]
		deploy := DeployNormal
		// Small far-away orgs are another blind-spot category.
		if w.ASes[as].Distance >= 2 && !euCountries[w.ASes[as].Country] && rng.Float64() < 0.65 {
			deploy = DeployFarRegion
		}
		w.placeServer(rng, orgIdx, as, deploy, "")
	}
}

// placeServer allocates one server IP for org inside as.
func (w *World) placeServer(rng *rand.Rand, orgIdx, asIdx int32, deploy DeployKind, dc string) {
	w.placeServerDC(rng, orgIdx, asIdx, deploy, dc, "")
}

func (w *World) placeServerDC(rng *rand.Rand, orgIdx, asIdx int32, deploy DeployKind, dc, dcCountry string) {
	ip, prefixIdx, ok := w.allocServerIP(asIdx, dcCountry)
	if !ok {
		return // hosting AS is out of address space; skip this server
	}
	w.Servers = append(w.Servers, Server{
		IP: ip, Org: orgIdx, AS: asIdx, PrefixIdx: prefixIdx,
		DC: dc, Deploy: deploy,
	})
}

// allocServerIP hands out the next free address in one of the AS's
// prefixes (bottom-up). When dcCountry is non-empty, only prefixes
// retagged to that country qualify.
func (w *World) allocServerIP(asIdx int32, dcCountry string) (packet.IPv4Addr, int32, bool) {
	a := &w.ASes[asIdx]
	for _, pi := range a.Prefixes {
		p := &w.Prefixes[pi]
		if dcCountry != "" && p.Country != dcCountry {
			continue
		}
		// Keep the top half of each prefix for client addresses.
		capacity := uint32(p.Prefix.NumAddrs() / 2)
		if capacity < 2 {
			continue
		}
		if p.serversAllocated < capacity {
			ip := p.Prefix.First() + packet.IPv4Addr(p.serversAllocated) + 1
			p.serversAllocated++
			return ip, pi, true
		}
	}
	return 0, 0, false
}

// retagCloudPrefixes reassigns a cloud AS's prefixes across its data
// center countries so geolocation reflects DC placement.
func (w *World) retagCloudPrefixes(asIdx int32, dcs []dcSpec) {
	if asIdx < 0 {
		return
	}
	a := &w.ASes[asIdx]
	for k, pi := range a.Prefixes {
		dc := dcs[k%len(dcs)]
		w.Prefixes[pi].Country = dc.country
		w.Prefixes[pi].GeoCountry = dc.country
	}
}

// pickASes draws up to k distinct ASes from pool.
func pickASes(rng *rand.Rand, pool []int32, k int) []int32 {
	if len(pool) == 0 {
		return nil
	}
	if k >= len(pool) {
		out := make([]int32, len(pool))
		copy(out, pool)
		return out
	}
	perm := rng.Perm(len(pool))
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
