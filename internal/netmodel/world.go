package netmodel

import (
	"fmt"
	"math/rand"

	"ixplens/internal/geo"
	"ixplens/internal/packet"
	"ixplens/internal/routing"
)

// ASRole classifies an autonomous system by its dominant business.
type ASRole uint8

// AS roles.
const (
	RoleEyeball    ASRole = iota // access networks with many client IPs
	RoleTransit                  // carriers
	RoleHoster                   // web hosting / data centers
	RoleCDN                      // content delivery networks
	RoleContent                  // content providers
	RoleCloud                    // cloud infrastructure providers
	RoleEnterprise               // everything else with a network
	RoleReseller                 // IXP resellers (member ASes fronting remote customers)
)

// String returns a short role name.
func (r ASRole) String() string {
	switch r {
	case RoleEyeball:
		return "eyeball"
	case RoleTransit:
		return "transit"
	case RoleHoster:
		return "hoster"
	case RoleCDN:
		return "cdn"
	case RoleContent:
		return "content"
	case RoleCloud:
		return "cloud"
	case RoleEnterprise:
		return "enterprise"
	case RoleReseller:
		return "reseller"
	default:
		return fmt.Sprintf("ASRole(%d)", uint8(r))
	}
}

// AS is one autonomous system of the synthetic Internet.
type AS struct {
	// ASN is the AS number (unique, dense from asnBase upward).
	ASN     uint32
	Role    ASRole
	Country string
	// MemberWeek is the ISO week in which the AS became an IXP member,
	// or 0 if it never joins. Initial members carry FirstWeek.
	MemberWeek int
	// Distance is the AS-hop distance from the member set (0 for
	// members, 1 or 2 otherwise) — the paper's A(L)/A(M)/A(G) classes.
	Distance uint8
	// Upstream is the AS index this AS attaches to for IXP-bound
	// traffic (-1 for members).
	Upstream int32
	// ViaMember is the member AS index whose IXP port carries this
	// AS's traffic (self for members).
	ViaMember int32
	// ClientWeight is the AS's share of observable client IP activity.
	ClientWeight float64
	// Prefixes are indices into World.Prefixes.
	Prefixes []int32
	// ResellerCustomer marks ASes attached behind the reseller member.
	ResellerCustomer bool
}

// IsMemberInWeek reports whether the AS is an IXP member in isoWeek.
func (a *AS) IsMemberInWeek(isoWeek int) bool {
	return a.MemberWeek != 0 && a.MemberWeek <= isoWeek
}

// Prefix is one routed prefix.
type Prefix struct {
	Prefix routing.Prefix
	// AS is the index of the origin AS.
	AS int32
	// Country is the true country of the address range.
	Country string
	// GeoCountry is the country the geolocation database reports
	// (equal to Country except for deliberate GeoErrorRate errors).
	GeoCountry string
	// serversAllocated counts server IPs handed out from the bottom of
	// the prefix; client IPs are drawn above this watermark.
	serversAllocated uint32
}

// asnBase is the first ASN handed out. Matching nothing real on purpose.
const asnBase = 100_000

// World is the fully generated synthetic Internet plus IXP.
type World struct {
	Cfg      Config
	ASes     []AS
	Prefixes []Prefix
	Orgs     []Org
	Servers  []Server

	// Special entity indices (see orgs.go).
	Special SpecialIndex

	// Fake443 lists endpoints that receive TCP/443 traffic but are not
	// HTTPS web servers (VPNs, SSH-over-443, dead cloud IPs). Index i
	// also encodes behaviour: see certsim.
	Fake443 []Fake443Endpoint

	geoDB *geo.DB
	rib   *routing.Table

	serverByIP map[packet.IPv4Addr]int32
}

// Fake443Behaviour says how a non-HTTPS port-443 endpoint reacts to a
// certificate crawl.
type Fake443Behaviour uint8

// Fake 443 behaviours, mirroring Section 2.2.2's reject reasons.
const (
	Fake443NoResponse    Fake443Behaviour = iota // never answers the crawl
	Fake443NotTLS                                // answers garbage (SSH banner)
	Fake443BadChain                              // self-signed / broken chain
	Fake443Expired                               // expired certificate
	Fake443Unstable                              // cloud IP changing role between crawls
	Fake443BadName                               // invalid subject / ccSLD
	Fake443WrongKeyUsage                         // cert not issued for server auth
)

// Fake443Endpoint is one such endpoint.
type Fake443Endpoint struct {
	IP        packet.IPv4Addr
	AS        int32
	Behaviour Fake443Behaviour
}

// Generate builds a world from cfg. It is deterministic in cfg.Seed.
func Generate(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &World{Cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w.genASes(rng)
	w.genPrefixes(rng)
	w.genOrgs(rng)
	w.genServers(rng)
	w.genFake443(rng)
	return w, nil
}

// NumMembersInWeek returns the IXP member count in isoWeek.
func (w *World) NumMembersInWeek(isoWeek int) int {
	n := 0
	for i := range w.ASes {
		if w.ASes[i].IsMemberInWeek(isoWeek) {
			n++
		}
	}
	return n
}

// MemberASes returns the indices of all ASes that are members in isoWeek.
func (w *World) MemberASes(isoWeek int) []int32 {
	var out []int32
	for i := range w.ASes {
		if w.ASes[i].IsMemberInWeek(isoWeek) {
			out = append(out, int32(i))
		}
	}
	return out
}

// GeoDB returns (building lazily) the geolocation database derived from
// the prefix allocation, including any configured error rate.
func (w *World) GeoDB() *geo.DB {
	if w.geoDB != nil {
		return w.geoDB
	}
	ranges := make([]geo.Range, 0, len(w.Prefixes))
	for i := range w.Prefixes {
		p := &w.Prefixes[i]
		ranges = append(ranges, geo.Range{
			First:   p.Prefix.First(),
			Last:    p.Prefix.Last(),
			Country: p.GeoCountry,
		})
	}
	db, err := geo.Build(ranges)
	if err != nil {
		// Prefix allocation guarantees disjoint ranges; an overlap is a
		// generator bug worth failing loudly on.
		panic(fmt.Sprintf("netmodel: geo build: %v", err))
	}
	w.geoDB = db
	return db
}

// RIB returns (building lazily) the routing table mapping every routed
// prefix to its origin AS.
func (w *World) RIB() *routing.Table {
	if w.rib != nil {
		return w.rib
	}
	t := routing.NewTable()
	for i := range w.Prefixes {
		p := &w.Prefixes[i]
		t.Insert(p.Prefix, w.ASes[p.AS].ASN)
	}
	w.rib = t
	return t
}

// ASGraph builds the AS-level connectivity graph: members are meshed
// through the IXP's route servers (modelled as a chain, which is enough
// for hop distances of 0/1/2), every other AS hangs off its upstream.
func (w *World) ASGraph() *routing.ASGraph {
	g := routing.NewASGraph()
	var prevMember int32 = -1
	for i := range w.ASes {
		a := &w.ASes[i]
		g.AddAS(a.ASN)
		if a.MemberWeek != 0 {
			if prevMember >= 0 {
				g.AddEdge(w.ASes[prevMember].ASN, a.ASN)
			}
			prevMember = int32(i)
			continue
		}
		if a.Upstream >= 0 {
			g.AddEdge(a.ASN, w.ASes[a.Upstream].ASN)
		}
	}
	return g
}

// ASIndexByASN returns the index of the AS with the given ASN.
func (w *World) ASIndexByASN(asn uint32) (int32, bool) {
	i := int32(asn) - asnBase
	if i < 0 || int(i) >= len(w.ASes) || w.ASes[i].ASN != asn {
		return 0, false
	}
	return i, true
}

// ServerByIP returns the server index owning ip, if any. The lookup map
// is built on first use.
func (w *World) ServerByIP(ip packet.IPv4Addr) (int32, bool) {
	if w.serverByIP == nil {
		w.serverByIP = make(map[packet.IPv4Addr]int32, len(w.Servers))
		for i := range w.Servers {
			w.serverByIP[w.Servers[i].IP] = int32(i)
		}
	}
	i, ok := w.serverByIP[ip]
	return i, ok
}

// CountryOfIP returns the true country of an address (ground truth, not
// the geo DB's possibly-wrong answer).
func (w *World) CountryOfIP(ip packet.IPv4Addr) string {
	r, ok := w.RIB().Lookup(ip)
	if !ok {
		return ""
	}
	asIdx, ok := w.ASIndexByASN(r.ASN)
	if !ok {
		return ""
	}
	// The prefix carries the country; find it via the route's prefix.
	for _, pi := range w.ASes[asIdx].Prefixes {
		if w.Prefixes[pi].Prefix == r.Prefix {
			return w.Prefixes[pi].Country
		}
	}
	return w.ASes[asIdx].Country
}
